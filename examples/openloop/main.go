// Openloop reproduces the shape of the paper's Fig 21: latency versus
// offered load for many-to-few-to-many traffic (1-flit requests from 28
// compute nodes, 4-flit replies from 8 MCs) on the baseline top-bottom
// mesh and on the checkerboard design with 2 MC injection ports, under
// uniform-random and hotspot request patterns.
//
//	go run ./examples/openloop
package main

import (
	"fmt"

	"repro/internal/noc"
	"repro/internal/traffic"
)

func main() {
	tb := noc.DefaultConfig()

	cpcr2p := tb
	cpcr2p.Checkerboard = true
	cpcr2p.Routing = noc.RoutingCheckerboard
	cpcr2p.MCs = noc.CheckerboardPlacement(6, 6, 8)
	cpcr2p.NumVCs = 4
	cpcr2p.MCInjPorts = 2

	configs := []struct {
		name string
		cfg  noc.Config
	}{
		{"TB-DOR", tb},
		{"CP-CR-2P", cpcr2p},
	}
	rates := []float64{0.005, 0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.08}

	for _, pattern := range []traffic.Pattern{traffic.UniformRandom, traffic.Hotspot} {
		fmt.Printf("== %s many-to-few-to-many ==\n", pattern)
		fmt.Printf("%-10s", "offered")
		for _, c := range configs {
			fmt.Printf("  %12s", c.name)
		}
		fmt.Println()
		runners := make([]*traffic.Runner, len(configs))
		for i, c := range configs {
			runners[i] = traffic.NewMeshRunner(c.cfg)
		}
		for _, rate := range rates {
			fmt.Printf("%-10.3f", rate)
			for i := range configs {
				cfg := traffic.DefaultConfig()
				cfg.Pattern = pattern
				cfg.InjectionRate = rate
				cfg.WarmupCycles = 1000
				cfg.MeasureCycles = 4000
				cfg.DrainCycles = 8000
				res := runners[i].Run(cfg)
				mark := ""
				if res.Saturated {
					mark = "*"
				}
				fmt.Printf("  %10.1f%-2s", res.AvgLatency, mark)
			}
			fmt.Println()
		}
		fmt.Println("(* = offered load beyond saturation)")
		fmt.Println()
	}
}
