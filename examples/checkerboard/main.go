// Checkerboard visualizes the checkerboard mesh (§IV) on a 6x6 layout:
// which tiles hold full routers, half-routers and memory controllers, and
// how the two-phase checkerboard routing algorithm steers packets that
// plain XY routing cannot deliver.
//
//	go run ./examples/checkerboard
package main

import (
	"fmt"
	"strings"

	"repro/internal/noc"
	"repro/internal/xrand"
)

func main() {
	topo := noc.MustNewTopology(6, 6, true, noc.CheckerboardPlacement(6, 6, 8))

	fmt.Println("6x6 checkerboard mesh (F=full router, h=half router, M=MC at half router):")
	for y := 0; y < 6; y++ {
		row := make([]string, 6)
		for x := 0; x < 6; x++ {
			n := topo.Node(x, y)
			switch {
			case topo.IsMC(n):
				row[x] = "M"
			case topo.IsHalf(n):
				row[x] = "h"
			default:
				row[x] = "F"
			}
		}
		fmt.Println("   " + strings.Join(row, " "))
	}
	fmt.Println()

	// Demonstrate the three routing situations of §IV-B.
	cases := []struct {
		what     string
		src, dst noc.NodeID
	}{
		{"plain XY (turn at a full router)", topo.Node(0, 0), topo.Node(2, 2)},
		{"case 1: full->half, odd columns away: YX", topo.Node(0, 0), topo.Node(1, 2)},
		{"case 2: half->half, even columns away: YX via intermediate", topo.Node(1, 0), topo.Node(3, 2)},
	}
	rng := xrand.New(42)
	for _, c := range cases {
		fmt.Printf("%s:\n", c.what)
		path := tracePath(topo, c.src, c.dst, rng)
		fmt.Printf("  %v\n\n", path)
	}
}

// tracePath walks a checkerboard route and renders each hop.
func tracePath(topo *noc.Topology, src, dst noc.NodeID, rng *xrand.Rand) string {
	pkt, err := noc.PlanPacket(topo, src, dst, rng)
	if err != nil {
		return "unroutable: " + err.Error()
	}
	var steps []string
	cur := src
	steps = append(steps, coord(topo, cur))
	for cur != dst {
		out, eject := noc.NextHopPort(topo, cur, pkt)
		if eject {
			break
		}
		cur = topo.Neighbor(cur, out)
		steps = append(steps, fmt.Sprintf("-%v->%s", out, coord(topo, cur)))
	}
	return strings.Join(steps, " ")
}

func coord(topo *noc.Topology, n noc.NodeID) string {
	c := topo.Coord(n)
	kind := "F"
	if topo.IsHalf(n) {
		kind = "h"
	}
	if topo.IsMC(n) {
		kind = "M"
	}
	return fmt.Sprintf("(%d,%d)%s", c.X, c.Y, kind)
}
