// Quickstart: run one memory-bound Table I benchmark (MUMmerGPU) on the
// paper's baseline mesh and on the combined throughput-effective NoC, and
// compare application throughput and throughput per unit area.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/area"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	profile, err := workload.ByAbbr("MUM")
	if err != nil {
		panic(err)
	}

	// The kernel is shortened so the example finishes in a few seconds;
	// drop ScaleWork for full-length runs.
	baseline := core.Baseline(profile).ScaleWork(0.4)
	thrEff := core.ThroughputEffective(profile).ScaleWork(0.4)             // paper-exact (sliced)
	thrEffSingle := core.ThroughputEffectiveSingle(profile).ScaleWork(0.4) // single-network variant

	baseRes := core.MustRun(baseline)
	teRes := core.MustRun(thrEff)
	te1Res := core.MustRun(thrEffSingle)

	baseArea := area.FromConfig(baseline.Noc, false)
	teArea := area.FromConfig(thrEff.Noc, true)
	te1Area := area.FromConfig(thrEffSingle.Noc, false)

	fmt.Printf("benchmark: %s (%s)\n\n", profile.Name, profile.Abbr)
	fmt.Printf("%-28s %10s %12s %12s\n", "config", "IPC", "chip mm^2", "IPC/mm^2")
	row := func(name string, ipc, chip float64) {
		fmt.Printf("%-28s %10.1f %12.1f %12.4f\n", name, ipc, chip, ipc/chip)
	}
	row(baseRes.Config, baseRes.IPC, baseArea.Chip())
	row(teRes.Config, teRes.IPC, teArea.Chip())
	row(te1Res.Config, te1Res.IPC, te1Area.Chip())

	gain := (te1Res.IPC / te1Area.Chip()) / (baseRes.IPC / baseArea.Chip())
	fmt.Printf("\nthroughput-effectiveness gain (single-net variant): %+.1f%%\n", 100*(gain-1))
	fmt.Printf("baseline MC reply-path stall:  %.0f%% of cycles\n", 100*baseRes.MCStallFraction)
	fmt.Printf("thr-eff  MC reply-path stall:  %.0f%% of cycles\n", 100*te1Res.MCStallFraction)
}
