// Designspace reproduces the shape of the paper's Fig 2: the
// throughput-effective design space. For a mix of Table I benchmarks it
// places the designs on the (average IPC, 1/area) plane: the balanced
// baseline mesh, the naive 2x-bandwidth mesh, the combined
// throughput-effective NoC, the alternative topology backends (Wu-style
// ring, BaseJump single-flit mesh), and the ideal (zero-area,
// infinite-bandwidth) network.
//
//	go run ./examples/designspace
package main

import (
	"fmt"

	"repro/internal/area"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	// A representative subset (one LL, two LH, three HH) keeps the example
	// fast; use cmd/experiments fig2 for all 31 benchmarks.
	var profiles []workload.Profile
	for _, abbr := range []string{"HIS", "CON", "BLK", "MUM", "FWT", "RD"} {
		p, err := workload.ByAbbr(abbr)
		if err != nil {
			panic(err)
		}
		profiles = append(profiles, p)
	}

	type design struct {
		name  string
		build func(workload.Profile) core.Config
		area  float64 // chip mm^2
	}
	teNoc := core.ThroughputEffective(profiles[0]).Noc
	te1Noc := core.ThroughputEffectiveSingle(profiles[0]).Noc
	bw2 := core.Baseline(profiles[0]).With2xBW().Noc
	designs := []design{
		{"Balanced Mesh", core.Baseline, area.FromConfig(core.Baseline(profiles[0]).Noc, false).Chip()},
		{"2x BW", func(p workload.Profile) core.Config { return core.Baseline(p).With2xBW() },
			area.FromConfig(bw2, false).Chip()},
		{"Thr. Eff.", core.ThroughputEffective, area.FromConfig(teNoc, true).Chip()},
		{"Thr. Eff. (1net)", core.ThroughputEffectiveSingle, area.FromConfig(te1Noc, false).Chip()},
		{"Ring", core.Ring, area.FromConfig(core.Ring(profiles[0]).Noc, false).Chip()},
		{"BaseJump", core.BaseJump, area.FromConfig(core.BaseJump(profiles[0]).Noc, false).Chip()},
		{"Ideal NoC", core.Perfect, area.ComputeAreaMM2},
	}

	fmt.Printf("%-17s %10s %12s %14s %16s\n",
		"design", "avg IPC", "chip mm^2", "1/mm^2 (x1e3)", "IPC/mm^2 (x1e3)")
	var baseEff float64
	for _, d := range designs {
		var ipcs []float64
		for _, p := range profiles {
			ipcs = append(ipcs, core.MustRun(d.build(p).ScaleWork(0.4)).IPC)
		}
		avg := stats.ArithmeticMean(ipcs)
		eff := avg / d.area
		if baseEff == 0 {
			baseEff = eff
		}
		fmt.Printf("%-17s %10.1f %12.1f %14.4f %16.3f   (%+.1f%% vs baseline)\n",
			d.name, avg, d.area, 1e3/d.area, 1e3*eff, 100*(eff/baseEff-1))
	}
	fmt.Println("\nCurves of constant IPC/mm^2 run diagonally in Fig 2; designs to the")
	fmt.Println("upper-right are more throughput-effective.")
}
