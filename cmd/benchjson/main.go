// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a JSON capture and appends it to a capture file, so the repository
// records its performance trajectory (ns/op, B/op, allocs/op and custom
// metrics like hm_speedup_pct) across PRs instead of losing it in CI logs.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -label after-refactor -out BENCH_2026-08-06.json
//
// The output file holds {"captures": [...]}: one entry per invocation, in
// order, each with its label, timestamp, toolchain and benchmark table.
// scripts/bench.sh wraps the whole flow.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"` // unit -> value (ns/op, B/op, allocs/op, ...)
}

// Capture is one benchjson invocation.
type Capture struct {
	Label      string      `json:"label"`
	Date       string      `json:"date"`
	Go         string      `json:"go"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// File is the on-disk shape of a capture file.
type File struct {
	Captures []Capture `json:"captures"`
}

func main() {
	label := flag.String("label", "capture", "label for this capture (e.g. before-refactor)")
	out := flag.String("out", "", "capture file to append to (default: stdout, single capture)")
	flag.Parse()

	benches, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	deriveSpeedups(benches)
	cap := Capture{
		Label:      *label,
		Date:       time.Now().UTC().Format(time.RFC3339),
		Go:         runtime.Version(),
		Benchmarks: benches,
	}

	var f File
	if *out != "" {
		if raw, err := os.ReadFile(*out); err == nil {
			if err := json.Unmarshal(raw, &f); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %s is not a capture file: %v\n", *out, err)
				os.Exit(1)
			}
		}
	}
	f.Captures = append(f.Captures, cap)
	enc, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: appended capture %q (%d benchmarks) to %s\n",
		cap.Label, len(benches), *out)
}

// parse extracts Benchmark lines ("BenchmarkX-8  N  v1 unit1  v2 unit2 ...")
// from go test output, passing everything else through to stderr so a piped
// run still shows progress and failures.
func parse(r *os.File) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		b := Benchmark{
			// Strip the -GOMAXPROCS suffix so captures on different hosts compare.
			Name:       stripProcs(fields[0]),
			Iterations: iters,
			Metrics:    make(map[string]float64, (len(fields)-2)/2),
		}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			b.Metrics[fields[i+1]] = v
		}
		if !ok {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		out = append(out, b)
	}
	return out, sc.Err()
}

// shardSuffix matches the "-s<N>" shard-count suffix the sharded-kernel
// benchmarks put on their sub-benchmark names (after the GOMAXPROCS suffix
// has been stripped).
var shardSuffix = regexp.MustCompile(`^(.*)-s(\d+)$`)

// deriveSpeedups adds a speedup_vs_s1 metric to every benchmark named
// "<base>-s<N>" (N > 1) that has a "<base>-s1" serial baseline in the same
// capture: serial ns/op divided by sharded ns/op, so >1 means the sharded
// kernel is faster. Values below 1 on low-core hosts are expected — they
// record the coordination overhead honestly instead of hiding it.
func deriveSpeedups(benches []Benchmark) {
	serial := make(map[string]float64)
	for _, b := range benches {
		if m := shardSuffix.FindStringSubmatch(b.Name); m != nil && m[2] == "1" {
			serial[m[1]] = b.Metrics["ns/op"]
		}
	}
	for i := range benches {
		m := shardSuffix.FindStringSubmatch(benches[i].Name)
		if m == nil || m[2] == "1" {
			continue
		}
		base, ok := serial[m[1]]
		ns := benches[i].Metrics["ns/op"]
		if !ok || base <= 0 || ns <= 0 {
			continue
		}
		benches[i].Metrics["speedup_vs_s1"] = base / ns
	}
}

// stripProcs removes a trailing "-N" GOMAXPROCS suffix from a benchmark name.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
