// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a JSON capture and appends it to a capture file, so the repository
// records its performance trajectory (ns/op, B/op, allocs/op and custom
// metrics like hm_speedup_pct) across PRs instead of losing it in CI logs.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -label after-refactor -out BENCH_2026-08-06.json
//
// The output file holds {"captures": [...]}: one entry per invocation, in
// order, each with its label, timestamp, toolchain, host parallelism and
// benchmark table, plus a per-family geometric-mean summary.
// scripts/bench.sh wraps the whole flow.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Procs is the GOMAXPROCS the row ran under (go test's "-N" name
	// suffix). Interpreting parallel rows — sharded-kernel speedups above
	// all — requires it: a speedup measured on one core is pure overhead.
	Procs   int                `json:"procs,omitempty"`
	Metrics map[string]float64 `json:"metrics"` // unit -> value (ns/op, B/op, allocs/op, ...)
}

// FamilySummary aggregates one benchmark family (the name up to the first
// '/' or shard suffix) into a geometric-mean ns/op, so a capture can be
// compared at a glance without reading every row.
type FamilySummary struct {
	Family         string  `json:"family"`
	Count          int     `json:"count"`
	GeomeanNsPerOp float64 `json:"geomean_ns_per_op"`
}

// Capture is one benchjson invocation.
type Capture struct {
	Label string `json:"label"`
	Date  string `json:"date"`
	Go    string `json:"go"`
	// GoMaxProcs and NumCPU record the capturing host's parallelism so a
	// reader can tell real sharded speedups from single-core overhead runs.
	GoMaxProcs int             `json:"gomaxprocs"`
	NumCPU     int             `json:"numcpu"`
	Benchmarks []Benchmark     `json:"benchmarks"`
	Summary    []FamilySummary `json:"summary,omitempty"`
}

// File is the on-disk shape of a capture file.
type File struct {
	Captures []Capture `json:"captures"`
}

func main() {
	label := flag.String("label", "capture", "label for this capture (e.g. before-refactor)")
	out := flag.String("out", "", "capture file to append to (default: stdout, single capture)")
	flag.Parse()

	benches, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	deriveSpeedups(benches)
	deriveSkipSpeedups(benches)
	deriveLaneSpeedups(benches)
	cap := Capture{
		Label:      *label,
		Date:       time.Now().UTC().Format(time.RFC3339),
		Go:         runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Benchmarks: benches,
		Summary:    summarize(benches),
	}
	for _, s := range cap.Summary {
		fmt.Fprintf(os.Stderr, "benchjson: %-28s geomean %s ns/op over %d benchmark(s)\n",
			s.Family, strconv.FormatFloat(s.GeomeanNsPerOp, 'f', -1, 64), s.Count)
	}

	var f File
	if *out != "" {
		if raw, err := os.ReadFile(*out); err == nil {
			if err := json.Unmarshal(raw, &f); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %s is not a capture file: %v\n", *out, err)
				os.Exit(1)
			}
		}
	}
	f.Captures = append(f.Captures, cap)
	enc, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: appended capture %q (%d benchmarks) to %s\n",
		cap.Label, len(benches), *out)
}

// parse extracts Benchmark lines ("BenchmarkX-8  N  v1 unit1  v2 unit2 ...")
// from go test output, passing everything else through to stderr so a piped
// run still shows progress and failures.
func parse(r *os.File) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		// Record the -GOMAXPROCS suffix as Procs, then strip it from the
		// name so captures on different hosts compare.
		name, procs := splitProcs(fields[0])
		b := Benchmark{
			Name:       name,
			Iterations: iters,
			Procs:      procs,
			Metrics:    make(map[string]float64, (len(fields)-2)/2),
		}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			b.Metrics[fields[i+1]] = v
		}
		if !ok {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		out = append(out, b)
	}
	return out, sc.Err()
}

// shardSuffix matches the "-s<N>" shard-count suffix the sharded-kernel
// benchmarks put on their sub-benchmark names (after the GOMAXPROCS suffix
// has been stripped).
var shardSuffix = regexp.MustCompile(`^(.*)-s(\d+)$`)

// deriveSpeedups adds a speedup_vs_s1 metric to every benchmark named
// "<base>-s<N>" (N > 1) that has a "<base>-s1" serial baseline in the same
// capture: serial ns/op divided by sharded ns/op, so >1 means the sharded
// kernel is faster. Rows that ran on a single processor are skipped: with
// one core a sharded kernel cannot run its bands in parallel, so the ratio
// would measure pure coordination overhead and read as a regression.
func deriveSpeedups(benches []Benchmark) {
	serial := make(map[string]float64)
	for _, b := range benches {
		if m := shardSuffix.FindStringSubmatch(b.Name); m != nil && m[2] == "1" {
			serial[m[1]] = b.Metrics["ns/op"]
		}
	}
	for i := range benches {
		m := shardSuffix.FindStringSubmatch(benches[i].Name)
		if m == nil || m[2] == "1" {
			continue
		}
		if benches[i].Procs <= 1 {
			continue // single-core host: the ratio would be meaningless
		}
		base, ok := serial[m[1]]
		ns := benches[i].Metrics["ns/op"]
		if !ok || base <= 0 || ns <= 0 {
			continue
		}
		benches[i].Metrics["speedup_vs_s1"] = base / ns
	}
}

// deriveSkipSpeedups adds a speedup_vs_noskip metric to every "<base>/skip"
// benchmark with a "<base>/noskip" sibling in the same capture: edge-by-edge
// ns/op divided by fast-forwarding ns/op. Unlike the sharded speedups this
// holds on any host — idle-horizon skipping is single-threaded work
// avoidance, not parallelism.
func deriveSkipSpeedups(benches []Benchmark) {
	noskip := make(map[string]float64)
	for _, b := range benches {
		if base, ok := strings.CutSuffix(b.Name, "/noskip"); ok {
			noskip[base] = b.Metrics["ns/op"]
		}
	}
	for i := range benches {
		base, ok := strings.CutSuffix(benches[i].Name, "/skip")
		if !ok {
			continue
		}
		ref, ok := noskip[base]
		ns := benches[i].Metrics["ns/op"]
		if !ok || ref <= 0 || ns <= 0 {
			continue
		}
		benches[i].Metrics["speedup_vs_noskip"] = ref / ns
	}
}

// laneSuffix matches the "-l<N>" lane-count suffix the lane-batched kernel
// benchmarks put on their sub-benchmark names (after the GOMAXPROCS suffix
// has been stripped).
var laneSuffix = regexp.MustCompile(`^(.*)-l(\d+)$`)

// deriveLaneSpeedups adds a speedup_vs_l1 metric to every benchmark named
// "<base>-l<N>" (N > 1) that has a "<base>-l1" solo baseline in the same
// capture. Lane benchmarks report ns/op per batch, so the per-seed ratio is
// base_ns × N / ns: >1 means each seed got cheaper when batched. Unlike the
// sharded speedups this holds on any host — lane batching amortizes the
// cycle loop and shares idle-skip horizons across replicas (work elision,
// not parallelism), so a single-core measurement is real.
func deriveLaneSpeedups(benches []Benchmark) {
	solo := make(map[string]float64)
	for _, b := range benches {
		if m := laneSuffix.FindStringSubmatch(b.Name); m != nil && m[2] == "1" {
			solo[m[1]] = b.Metrics["ns/op"]
		}
	}
	for i := range benches {
		m := laneSuffix.FindStringSubmatch(benches[i].Name)
		if m == nil || m[2] == "1" {
			continue
		}
		lanes, err := strconv.Atoi(m[2])
		if err != nil || lanes <= 1 {
			continue
		}
		base, ok := solo[m[1]]
		ns := benches[i].Metrics["ns/op"]
		if !ok || base <= 0 || ns <= 0 {
			continue
		}
		benches[i].Metrics["speedup_vs_l1"] = base * float64(lanes) / ns
	}
}

// summarize returns one geometric-mean ns/op entry per benchmark family,
// sorted by family name. The family is the benchmark name with its
// sub-benchmark path and any shard suffix removed, so e.g.
// "BenchmarkShardedKernel/uniform-s4" and "...-s1" aggregate together.
func summarize(benches []Benchmark) []FamilySummary {
	type acc struct {
		logSum float64
		n      int
	}
	fams := make(map[string]*acc)
	for _, b := range benches {
		ns := b.Metrics["ns/op"]
		if ns <= 0 {
			continue
		}
		f := family(b.Name)
		a := fams[f]
		if a == nil {
			a = &acc{}
			fams[f] = a
		}
		a.logSum += math.Log(ns)
		a.n++
	}
	out := make([]FamilySummary, 0, len(fams))
	for f, a := range fams {
		out = append(out, FamilySummary{
			Family:         f,
			Count:          a.n,
			GeomeanNsPerOp: math.Exp(a.logSum / float64(a.n)),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Family < out[j].Family })
	return out
}

// family strips the sub-benchmark path and any shard or lane suffix from a
// name.
func family(name string) string {
	if i := strings.IndexByte(name, '/'); i >= 0 {
		name = name[:i]
	}
	if m := shardSuffix.FindStringSubmatch(name); m != nil {
		name = m[1]
	}
	if m := laneSuffix.FindStringSubmatch(name); m != nil {
		name = m[1]
	}
	return name
}

// splitProcs splits a trailing "-N" GOMAXPROCS suffix off a benchmark name,
// returning the bare name and N. go test omits the suffix entirely when
// GOMAXPROCS is 1, so a name without one ran single-core.
func splitProcs(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name, 1
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n <= 0 {
		return name, 1
	}
	return name[:i], n
}
