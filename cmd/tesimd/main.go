// Command tesimd is the simulation-as-a-service daemon: a long-running
// HTTP/JSON server that accepts simulation and sweep requests, executes
// them on the resilient runner pool, and persists completed runs in a
// crash-safe content-addressed store so repeat queries are O(1) and a
// killed daemon resumes without re-simulating.
//
// Usage:
//
//	tesimd [-addr host:port] [-store file.jsonl] [-queue-cap N]
//	       [-jobs N] [-shards K] [-lanes L] [-run-timeout d] [-retries N]
//	       [-max-runs-per-job N] [-default-deadline d] [-max-deadline d]
//	       [-drain-timeout d] [-idle-skip]
//
// API:
//
//	POST /v1/runs              submit a sweep ({"configs":[...],"benchmarks":[...],...})
//	GET  /v1/runs/{id}         job status
//	GET  /v1/runs/{id}/result  canonical result document (byte-stable)
//	GET  /v1/runs/{id}/events  NDJSON progress stream
//	GET  /v1/configs           accepted design-point names
//	GET  /healthz, /readyz, /statusz
//
// Shutdown: SIGTERM/SIGINT starts a graceful drain — readiness flips to
// 503, new submissions are refused, in-flight jobs finish (or are
// checkpointed when -drain-timeout expires; the store is fsynced per
// record so nothing completed is ever lost) — and the process exits 0. A
// second signal force-quits with exit 130.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/iofault"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8844", "listen address")
	store := flag.String("store", "tesimd.jsonl", "content-addressed result store journal (\"\" = memory only)")
	queueCap := flag.Int("queue-cap", service.DefaultQueueCap, "max admitted unfinished jobs before shedding with 429")
	jobs := flag.Int("jobs", 0, "concurrent simulations (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 0, "intra-run column-band shards (0 = serial, -1 = auto)")
	lanes := flag.Int("lanes", 0,
		"lane-batch a job's same-config different-seed runs (see \"seeds\" in POST /v1/runs; 0/1 = solo, bit-identical results)")
	runTimeout := flag.Duration("run-timeout", 5*time.Minute, "per-run wall-clock deadline (0 = none)")
	retries := flag.Int("retries", service.DefaultRetries, "extra attempts for transient DNFs (stall/timeout)")
	maxRuns := flag.Int("max-runs-per-job", service.DefaultMaxRunsPerJob, "max configs×benchmarks per request")
	defDeadline := flag.Duration("default-deadline", service.DefaultDeadline, "end-to-end deadline for jobs that request none")
	maxDeadline := flag.Duration("max-deadline", service.DefaultMaxDeadline, "clamp on requested job deadlines")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain budget after SIGTERM/SIGINT")
	idleSkip := flag.Bool("idle-skip", true, "fast-forward fully idle simulation windows (bit-identical results)")
	listCPs := flag.Bool("list-crashpoints", false, "print registered crashpoint names (for scripts/chaos.sh) and exit")
	flag.Parse()

	if *listCPs {
		for _, p := range iofault.Points() {
			fmt.Println(p)
		}
		return
	}

	logger := log.New(os.Stderr, "tesimd: ", log.LstdFlags|log.Lmsgprefix)
	srv, err := service.New(service.Options{
		StorePath:       *store,
		QueueCap:        *queueCap,
		Jobs:            *jobs,
		Shards:          *shards,
		Lanes:           *lanes,
		RunTimeout:      *runTimeout,
		Retries:         *retries,
		MaxRunsPerJob:   *maxRuns,
		DefaultDeadline: *defDeadline,
		MaxDeadline:     *maxDeadline,
		NoIdleSkip:      !*idleSkip,
		Logf:            func(format string, args ...any) { logger.Printf(format, args...) },
	})
	if err != nil {
		logger.Printf("startup failed: %v", err)
		os.Exit(1)
	}

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Printf("listen %s: %v", *addr, err)
		os.Exit(1)
	}
	logger.Printf("serving on http://%s (store %q, queue %d)", ln.Addr(), *store, *queueCap)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case got := <-sig:
		logger.Printf("received %v; draining (budget %v)", got, *drainTimeout)
	case err := <-serveErr:
		logger.Printf("serve failed: %v", err)
		srv.Close()
		os.Exit(1)
	}

	// A second signal force-quits: the store is fsynced per record, so
	// even this loses only the runs still in flight.
	go func() {
		<-sig
		logger.Printf("second signal; force quit")
		os.Exit(130)
	}()

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain flips readiness and refuses new work immediately; Shutdown
	// stops the listener and waits for in-flight HTTP requests (event
	// streams end as their jobs finish or are checkpointed).
	drainDone := make(chan error, 1)
	go func() { drainDone <- srv.Drain(drainCtx) }()
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("http shutdown: %v", err)
	}
	if err := <-drainDone; err != nil {
		// A drain error (e.g. a journal close failure) is worth logging
		// but the drain contract — finished work is durable — held, so
		// the exit is still clean for the supervisor.
		logger.Printf("drain: %v", err)
	}
	logger.Printf("drained; bye")
	os.Exit(0)
}
