// Command experiments regenerates the paper's evaluation tables and
// figures. Each figure/table has an identifier (fig2..fig21, table6,
// headline); "all" runs the full evaluation in paper order.
//
// Usage:
//
//	experiments [-scale f] [-bench AES,MUM,...] [-v] all|fig7|table6|...
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 1.0, "kernel length scale (lower = faster, less accurate)")
	bench := flag.String("bench", "", "comma-separated benchmark abbreviations (default: all 31)")
	verbose := flag.Bool("v", false, "print per-run progress to stderr")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: experiments [flags] %s|all\n", strings.Join(experiments.IDs(), "|"))
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	opts := experiments.Options{Scale: *scale}
	if *bench != "" {
		opts.Benchmarks = strings.Split(*bench, ",")
	}
	if *verbose {
		opts.Progress = os.Stderr
	}
	suite, err := experiments.New(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	ids := flag.Args()
	if len(ids) == 1 && ids[0] == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		rep, err := suite.ByID(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println(rep)
	}
	if dnf := suite.DNF(); len(dnf) > 0 {
		fmt.Printf("%d run(s) did not finish (excluded from aggregates):\n", len(dnf))
		for _, line := range dnf {
			fmt.Println("  " + line)
		}
	}
}
