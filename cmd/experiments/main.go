// Command experiments regenerates the paper's evaluation tables and
// figures. Each figure/table has an identifier (fig2..fig21, table6,
// headline); "all" runs the full evaluation in paper order. The separate
// "explore" experiment sweeps the full design-space grid through
// successive-halving rungs toward a throughput-effectiveness Pareto
// frontier (-frontier-json writes the machine-readable result); it is too
// expensive to ride along in "all", so it only runs when named.
//
// Simulations run through a resilient worker pool: -jobs bounds
// concurrency (tables are byte-identical for any value), -run-timeout
// turns wedged runs into DNF rows, -retries re-attempts transient
// failures, and -checkpoint/-resume journal finished runs so an
// interrupted sweep (SIGINT/SIGTERM included) picks up where it left off.
//
// Usage:
//
//	experiments [-scale f] [-bench AES,MUM,...] [-jobs N] [-shards K]
//	            [-run-timeout d] [-checkpoint file [-resume]] [-v]
//	            all|fig7|table6|...
//
// Exit status: 0 on a clean sweep, 1 when any run did not finish (so CI
// catches silently degraded sweeps), 130 when interrupted.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/noc"
	"repro/internal/prof"
	"repro/internal/runner"
	"repro/internal/stats"
)

func main() {
	scale := flag.Float64("scale", 1.0, "kernel length scale (lower = faster, less accurate)")
	bench := flag.String("bench", "", "comma-separated benchmark abbreviations (default: all 31)")
	jobs := flag.Int("jobs", 0, "concurrent simulations (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 0,
		"column-band shards per network tick (0 = serial kernel, -1 = auto; capped so jobs*lanes*shards <= GOMAXPROCS)")
	lanes := flag.Int("lanes", 0,
		"lane-batch same-config different-seed runs that many at a time through one cycle loop (0 = let the sweep planner pick; bit-identical results)")
	seeds := flag.String("seeds", "",
		"comma-separated traffic seeds for seed-averaged sweeps (resilience, explore); replicas run as one lane batch")
	frontierJSON := flag.String("frontier-json", "",
		"write the explore experiment's machine-readable frontier to this file")
	runTimeout := flag.Duration("run-timeout", 0, "per-run wall-clock deadline (0 = none); expired runs become DNF rows")
	retries := flag.Int("retries", 1, "extra attempts for transient DNFs (stall/timeout)")
	checkpoint := flag.String("checkpoint", "", "JSONL journal recording each finished run (fsynced per record)")
	resume := flag.Bool("resume", false, "reload -checkpoint and skip finished runs")
	idleSkip := flag.Bool("idle-skip", true,
		"fast-forward fully idle windows across clock domains (bit-identical results; disable to force edge-by-edge stepping)")
	verbose := flag.Bool("v", false, "print per-run progress to stderr")
	pprofOut := prof.AddFlags()
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: experiments [flags] %s|explore|all\n", strings.Join(experiments.IDs(), "|"))
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *resume && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "experiments: -resume needs -checkpoint")
		os.Exit(2)
	}

	// SIGINT/SIGTERM cancel the sweep: in-flight runs finish as
	// "canceled" DNFs, the journal is already fsynced per record, and we
	// exit with a partial-progress summary.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := experiments.Options{
		Scale:      *scale,
		Jobs:       *jobs,
		Shards:     *shards,
		Lanes:      *lanes,
		NoIdleSkip: !*idleSkip,
		RunTimeout: *runTimeout,
		Retries:    *retries,
		Checkpoint: *checkpoint,
		Resume:     *resume,
		Context:    ctx,
	}
	if *bench != "" {
		opts.Benchmarks = strings.Split(*bench, ",")
	}
	if *seeds != "" {
		for _, s := range strings.Split(*seeds, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: -seeds: %v\n", err)
				os.Exit(2)
			}
			opts.Seeds = append(opts.Seeds, v)
		}
	}
	if *verbose {
		opts.Progress = os.Stderr
	}
	suite, err := experiments.New(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if *resume {
		if n := suite.SkippedJournalLines(); n > 0 {
			fmt.Fprintf(os.Stderr, "experiments: skipped %d torn checkpoint line(s); those runs re-execute\n", n)
		}
		if n := suite.QuarantinedJournalLines(); n > 0 {
			fmt.Fprintf(os.Stderr, "experiments: quarantined %d corrupt checkpoint record(s) to %s; those runs re-execute\n",
				n, runner.QuarantinePath(*checkpoint))
		}
	}

	ids := flag.Args()
	if len(ids) == 1 && ids[0] == "all" {
		ids = experiments.IDs()
	}
	start := time.Now()
	if err := pprofOut.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	// Tag shard workers in the CPU profile (pprof label noc_shard=<k>);
	// off without -cpuprofile since the labelling allocates per tick.
	noc.SetShardProfiling(pprofOut.CPUActive())
	for _, id := range ids {
		if ctx.Err() != nil {
			break
		}
		rep, err := suite.ByID(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			suite.Close()
			os.Exit(1)
		}
		fmt.Println(rep)
	}
	pprofOut.Stop() // profile covers the sweep, not the summary

	// Machine-readable frontier for downstream tooling.
	if f := suite.Frontier(); f != nil && *frontierJSON != "" {
		data, err := f.JSON()
		if err == nil {
			err = os.WriteFile(*frontierJSON, data, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: frontier-json:", err)
			suite.Close()
			os.Exit(1)
		}
		fmt.Printf("frontier written to %s (%d points)\n", *frontierJSON, len(f.Points))
	}

	// Closing summary: per-status outcome counts, attempt accounting, the
	// explorer's early-termination savings, and the DNF rows excluded from
	// the aggregates.
	var outcomes stats.Outcomes
	for _, o := range suite.Outcomes() {
		outcomes.Observe(o.Result.Status, o.Attempts)
	}
	if f := suite.Frontier(); f != nil {
		outcomes.AddEarlyTermination(f.KilledEarly, f.SimulatedCycles, f.ExhaustiveCycles)
	}
	dnf := suite.DNF()
	if outcomes.Total() > 0 {
		fmt.Printf("%s in %.0fs (%d simulated here)\n",
			outcomes.Summary(), time.Since(start).Seconds(), suite.Executed())
	}
	if len(dnf) > 0 {
		fmt.Printf("%d run(s) did not finish (excluded from aggregates):\n", len(dnf))
		for _, line := range dnf {
			fmt.Println("  " + line)
		}
	}
	if err := suite.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments: checkpoint:", err)
		os.Exit(1)
	}
	if ctx.Err() != nil {
		where := ""
		if *checkpoint != "" {
			where = fmt.Sprintf("; resume with -checkpoint %s -resume", *checkpoint)
		}
		fmt.Printf("sweep interrupted: %d run(s) completed%s\n",
			outcomes.Total()-outcomes.Count("canceled"), where)
		os.Exit(130)
	}
	if len(dnf) > 0 {
		os.Exit(1)
	}
}
