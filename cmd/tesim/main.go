// Command tesim runs one closed-loop simulation: a Table I benchmark (or
// all of them) on one of the paper's network configurations, printing the
// run's throughput and memory-system statistics.
//
// Usage:
//
//	tesim -bench MUM -config TE
//	tesim -bench all -config baseline -scale 0.5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/noc"
	"repro/internal/stats"
	"repro/internal/workload"
)

// configs maps CLI names to configuration builders.
var configs = map[string]func(workload.Profile) core.Config{
	"baseline": core.Baseline,
	"2xbw":     func(p workload.Profile) core.Config { return core.Baseline(p).With2xBW() },
	"1cycle":   func(p workload.Profile) core.Config { return core.Baseline(p).With1CycleRouters() },
	"cp":       func(p workload.Profile) core.Config { return core.Baseline(p).WithCheckerboardPlacement() },
	"cpcr":     func(p workload.Profile) core.Config { return core.Baseline(p).WithCheckerboardRouting() },
	"double": func(p workload.Profile) core.Config {
		return core.Baseline(p).WithCheckerboardRouting().WithDoubleNetwork()
	},
	"te":      core.ThroughputEffective,
	"te1net":  core.ThroughputEffectiveSingle,
	"perfect": core.Perfect,
	"romm": func(p workload.Profile) core.Config {
		c := core.Baseline(p).WithCheckerboardPlacement()
		c.Name = "CP-ROMM"
		c.Noc.Routing = noc.RoutingROMM
		c.Noc.NumVCs = 4
		return c
	},
}

func main() {
	bench := flag.String("bench", "MUM", `benchmark abbreviation from Table I, or "all"`)
	config := flag.String("config", "baseline", "network configuration: "+strings.Join(configNames(), "|"))
	scale := flag.Float64("scale", 1.0, "kernel length scale")
	seed := flag.Uint64("seed", 1, "simulation seed")
	sched := flag.String("sched", "rr", "warp scheduler: rr|gto")
	flag.Parse()

	build, ok := configs[strings.ToLower(*config)]
	if !ok {
		fmt.Fprintf(os.Stderr, "tesim: unknown config %q (have %s)\n", *config, strings.Join(configNames(), ", "))
		os.Exit(2)
	}
	var profiles []workload.Profile
	if *bench == "all" {
		profiles = workload.Catalog()
	} else {
		p, err := workload.ByAbbr(strings.ToUpper(*bench))
		if err != nil {
			fmt.Fprintln(os.Stderr, "tesim:", err)
			os.Exit(2)
		}
		profiles = []workload.Profile{p}
	}

	tb := stats.NewTable("tesim results",
		"bench", "config", "IPC", "icnt cycles", "net lat", "MC stall", "DRAM eff", "L1 hit", "L2 hit")
	var ipcs []float64
	for _, p := range profiles {
		cfg := build(p).ScaleWork(*scale)
		cfg.Seed = *seed
		if strings.ToLower(*sched) == "gto" {
			cfg.Core.Scheduler = gpu.SchedGTO
		}
		res, err := core.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tesim:", err)
			os.Exit(1)
		}
		if res.TimedOut {
			fmt.Fprintf(os.Stderr, "tesim: %s timed out\n", p.Abbr)
		}
		ipcs = append(ipcs, res.IPC)
		tb.AddRow(p.Abbr, res.Config, res.IPC, res.IcntCycles, res.AvgNetLatency,
			fmt.Sprintf("%.1f%%", 100*res.MCStallFraction),
			fmt.Sprintf("%.2f", res.DRAMEfficiency),
			fmt.Sprintf("%.2f", res.L1HitRate),
			fmt.Sprintf("%.2f", res.L2HitRate))
	}
	fmt.Print(tb)
	if len(ipcs) > 1 {
		fmt.Printf("harmonic mean IPC: %.2f\n", stats.HarmonicMean(ipcs))
	}
}

func configNames() []string {
	names := make([]string, 0, len(configs))
	for k := range configs {
		names = append(names, k)
	}
	// Stable order for help text.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	return names
}
