// Command tesim runs one closed-loop simulation: a Table I benchmark (or
// all of them) on one of the paper's network configurations, printing the
// run's throughput and memory-system statistics. Multi-benchmark runs go
// through the resilient worker pool (-jobs, -run-timeout, -retries): a
// wedged or panicking run becomes a DNF row instead of a hung or dead
// process, and rows always print in catalog order.
//
// Usage:
//
//	tesim -bench MUM -config TE
//	tesim -bench all -config baseline -scale 0.5 -jobs 8 -run-timeout 10m
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gpu"
	"repro/internal/noc"
	"repro/internal/prof"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/workload"
)

// configs maps CLI names to configuration builders.
var configs = map[string]func(workload.Profile) core.Config{
	"baseline": core.Baseline,
	"2xbw":     func(p workload.Profile) core.Config { return core.Baseline(p).With2xBW() },
	"1cycle":   func(p workload.Profile) core.Config { return core.Baseline(p).With1CycleRouters() },
	"cp":       func(p workload.Profile) core.Config { return core.Baseline(p).WithCheckerboardPlacement() },
	"cpcr":     func(p workload.Profile) core.Config { return core.Baseline(p).WithCheckerboardRouting() },
	"double": func(p workload.Profile) core.Config {
		return core.Baseline(p).WithCheckerboardRouting().WithDoubleNetwork()
	},
	"te":       core.ThroughputEffective,
	"te1net":   core.ThroughputEffectiveSingle,
	"perfect":  core.Perfect,
	"ring":     core.Ring,
	"basejump": core.BaseJump,
	"romm": func(p workload.Profile) core.Config {
		c := core.Baseline(p).WithCheckerboardPlacement()
		c.Name = "CP-ROMM"
		c.Noc.Routing = noc.RoutingROMM
		c.Noc.NumVCs = 4
		return c
	},
}

func main() {
	bench := flag.String("bench", "MUM", `benchmark abbreviation from Table I, or "all"`)
	config := flag.String("config", "baseline", "network configuration: "+strings.Join(configNames(), "|"))
	topology := flag.String("topology", "mesh",
		"network substrate for topology-neutral configs: mesh|ring|basejump (named configs like -config ring already pick theirs)")
	scale := flag.Float64("scale", 1.0, "kernel length scale")
	seed := flag.Uint64("seed", 1, "simulation seed")
	sched := flag.String("sched", "rr", "warp scheduler: rr|gto")
	faultRate := flag.Float64("fault-rate", 0, "network fault injection master rate (0 disables)")
	faultSeed := flag.Uint64("fault-seed", 1, "fault injector seed (independent of -seed)")
	watchdog := flag.Uint64("watchdog-cycles", fault.DefaultConfig().WatchdogCycles,
		"deadlock watchdog no-movement window in icnt cycles (0 disables health checks)")
	jobs := flag.Int("jobs", 0, "concurrent simulations (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 0,
		"column-band shards per network tick (0 = serial kernel, -1 = auto; capped so jobs*lanes*shards <= GOMAXPROCS)")
	lanes := flag.Int("lanes", 1,
		"seed replicas per run (-seed, -seed+1, …), lane-batched through one lockstep cycle loop; each replica is bit-identical to a solo run of its seed")
	plan := flag.Bool("plan", true,
		"submit the sweep through the lane-aware planner: replica batch width and shard count are auto-tuned from the jobs*lanes*shards <= GOMAXPROCS budget (results are bit-identical either way); -plan=false forces -lanes-wide batches and the exact -shards request")
	runTimeout := flag.Duration("run-timeout", 0, "per-run wall-clock deadline (0 = none); expired runs become DNF rows")
	retries := flag.Int("retries", 1, "extra attempts for transient DNFs (stall/timeout)")
	idleSkip := flag.Bool("idle-skip", true,
		"fast-forward fully idle windows across clock domains (bit-identical results; disable to force edge-by-edge stepping)")
	pprofOut := prof.AddFlags()
	flag.Parse()

	if *faultRate < 0 || *faultRate > 1 {
		fmt.Fprintf(os.Stderr, "tesim: -fault-rate %g outside [0,1]\n", *faultRate)
		os.Exit(2)
	}
	build, ok := configs[strings.ToLower(*config)]
	if !ok {
		fmt.Fprintf(os.Stderr, "tesim: unknown config %q (have %s)\n", *config, strings.Join(configNames(), ", "))
		os.Exit(2)
	}
	kind, err := noc.ParseBackendKind(strings.ToLower(*topology))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tesim:", err)
		os.Exit(2)
	}
	var profiles []workload.Profile
	if *bench == "all" {
		profiles = workload.Catalog()
	} else {
		p, err := workload.ByAbbr(strings.ToUpper(*bench))
		if err != nil {
			fmt.Fprintln(os.Stderr, "tesim:", err)
			os.Exit(2)
		}
		profiles = []workload.Profile{p}
	}

	// SIGINT/SIGTERM cancel the sweep; in-flight runs finish as
	// "canceled" DNF rows and the partial table still prints.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	nLanes := *lanes
	if nLanes < 1 {
		nLanes = 1
	}
	// With the planner active the pool stays silent on lane width and
	// shard count, so the per-batch plan fills them; -plan=false pins the
	// old fixed-flag behaviour.
	poolLanes, poolShards := 0, 0
	if !*plan {
		poolLanes, poolShards = nLanes, *shards
	}
	pool, err := runner.New(ctx, runner.Options{
		Jobs:       *jobs,
		Shards:     poolShards,
		Lanes:      poolLanes,
		RunTimeout: *runTimeout,
		Retries:    *retries,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tesim:", err)
		os.Exit(2)
	}

	// Each benchmark expands into nLanes seed replicas (-seed, -seed+1, …);
	// the pool coalesces the replicas into one lane-batched execution.
	type runRow struct {
		prof workload.Profile
		seed uint64
	}
	rows := make([]runRow, 0, len(profiles)*nLanes)
	cfgs := make([]core.Config, 0, len(profiles)*nLanes)
	for _, p := range profiles {
		cfg, err := build(p).WithTopology(kind)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tesim: -topology %s with -config %s: %v\n", kind, *config, err)
			os.Exit(2)
		}
		cfg = cfg.ScaleWork(*scale)
		if strings.ToLower(*sched) == "gto" {
			cfg.Core.Scheduler = gpu.SchedGTO
		}
		if *faultRate > 0 {
			cfg = cfg.WithFaults(*faultRate, *faultSeed)
		}
		cfg.NoIdleSkip = !*idleSkip
		cfg = cfg.WithWatchdog(*watchdog)
		if *plan && *shards != 0 {
			cfg.Shards = *shards // explicit -shards outranks the plan
		}
		for l := 0; l < nLanes; l++ {
			c := cfg
			c.Seed = *seed + uint64(l)
			rows = append(rows, runRow{prof: p, seed: c.Seed})
			cfgs = append(cfgs, c)
		}
	}
	if err := pprofOut.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "tesim:", err)
		os.Exit(2)
	}
	// Tag shard workers in the CPU profile (pprof label noc_shard=<k>) so
	// per-shard time is attributable; off without -cpuprofile since the
	// labelling allocates per tick.
	noc.SetShardProfiling(pprofOut.CPUActive())
	var outs []runner.Outcome
	if *plan {
		outs = pool.DoAllPlanned(ctx, cfgs)
	} else {
		outs = pool.DoAll(cfgs)
	}
	pprofOut.Stop() // profile covers the simulations, not the report

	headers := []string{"bench", "config"}
	if nLanes > 1 {
		headers = append(headers, "seed")
	}
	headers = append(headers, "IPC", "icnt cycles", "net lat",
		"MC stall", "DRAM eff", "L1 hit", "L2 hit", "status")
	if *faultRate > 0 {
		headers = append(headers, "retx", "dropped", "avg retries")
	}
	if *retries > 0 {
		headers = append(headers, "attempts")
	}
	tb := stats.NewTable("tesim results", headers...)
	var ipcs []float64
	dnf := 0
	for i, rr := range rows {
		p := rr.prof
		out := outs[i]
		res := out.Result
		if !out.OK() {
			// Degraded run (deadlock, livelock, cycle cap, stall, timeout,
			// panic, config error): report the row plus any diagnostic and
			// keep going.
			dnf++
			fmt.Fprintf(os.Stderr, "tesim: %s did not finish: %s (attempt %d)\n",
				p.Abbr, res.Status, out.Attempts)
			var he *fault.HangError
			if fault.AsHang(out.Err, &he) && !he.Diag.Empty() {
				fmt.Fprintln(os.Stderr, he.Diag.String())
			}
			if out.Stack != "" {
				fmt.Fprintln(os.Stderr, out.Stack)
			}
		} else {
			ipcs = append(ipcs, res.IPC)
		}
		status := res.Status
		if status == "" {
			status = "ok"
		}
		row := []interface{}{p.Abbr, res.Config}
		if nLanes > 1 {
			row = append(row, rr.seed)
		}
		row = append(row, res.IPC, res.IcntCycles, res.AvgNetLatency,
			fmt.Sprintf("%.1f%%", 100*res.MCStallFraction),
			fmt.Sprintf("%.2f", res.DRAMEfficiency),
			fmt.Sprintf("%.2f", res.L1HitRate),
			fmt.Sprintf("%.2f", res.L2HitRate),
			status)
		if *faultRate > 0 {
			row = append(row, res.RetxPackets, res.DroppedPackets, fmt.Sprintf("%.3f", res.AvgRetries))
		}
		if *retries > 0 {
			row = append(row, out.Attempts)
		}
		tb.AddRow(row...)
	}
	fmt.Print(tb)
	if len(ipcs) > 1 {
		fmt.Printf("harmonic mean IPC: %.2f\n", stats.HarmonicMean(ipcs))
	}
	if dnf > 0 {
		fmt.Printf("%d of %d run(s) did not finish\n", dnf, len(rows))
		os.Exit(1)
	}
}

func configNames() []string {
	names := make([]string, 0, len(configs))
	for k := range configs {
		names = append(names, k)
	}
	// Stable order for help text.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	return names
}
