package noc

import "fmt"

// vcState is the lifecycle of an input virtual channel.
type vcState int

const (
	vcIdle   vcState = iota // no packet, or next head not yet route-computed
	vcWaitVA                // route computed, waiting for an output VC
	vcActive                // output VC held, flits compete in switch allocation
)

// inVC is one input virtual channel: a flit FIFO plus allocation state.
type inVC struct {
	buf     []Flit
	state   vcState
	outPort int   // granted output port (valid from vcWaitVA on)
	outVC   int   // granted output VC (valid in vcActive)
	allowed []int // output VCs this packet may use at this hop
	readyAt uint64
}

// outVC is the book-keeping for one (output port, VC) pair.
type outVC struct {
	credits int // free buffer slots at the downstream input VC
	owner   int // input index holding this VC, or -1 when free
}

// pipeDelays maps a router pipeline depth to stage delays. The uncontended
// per-hop latency is rc+va+st+channelLatency, so the paper's 4-stage router
// with 1-cycle channels costs 5 cycles per hop, and the aggressive 1-cycle
// router costs 2.
func pipeDelays(stages int) (rc, va, st uint64) {
	switch {
	case stages <= 1:
		return 0, 0, 1
	case stages == 2:
		return 0, 1, 1
	default:
		return uint64(stages) - 2, 1, 1
	}
}

// routerParams configures one router instance.
type routerParams struct {
	node     NodeID
	half     bool // half-router: no turns between dimensions (§IV-A)
	numVCs   int
	bufDepth int
	nInj     int // injection (terminal input) ports
	nEj      int // ejection (terminal output) ports
	stages   int // pipeline depth (4 baseline, 3 half, 1 aggressive)
	chanLat  uint64
	credLat  uint64
	ejCap    int // ejection queue capacity, in flits
}

// router is a VC wormhole router with separable round-robin (iSLIP-style)
// VC and switch allocation.
type router struct {
	p    routerParams
	net  *meshNet
	rcD  uint64
	vaD  uint64
	stD  uint64
	nIn  int // 4 dirs + nInj
	nOut int // 4 dirs + nEj

	inputs  [][]inVC // [inPort][vc]
	outputs [][]outVC

	outChans  []*channel       // per dir output port; nil at mesh edge
	credChans []*creditChannel // per dir input port, back to upstream; nil at edge or terminal

	ejQ [][]flitEvent // per ejection port

	// stuck[port][vc] holds the cycle until which a stuck-VC fault freezes
	// that input VC's switch allocation; nil when faults are disabled.
	stuck [][]uint64

	// Round-robin pointers.
	vaPtr    []int // per outPort*numVCs+outVC, over input index
	saInPtr  []int // per input port, over VCs
	saOutPtr []int // per output port, over input ports
	ejRR     int

	// scratch, reused across cycles
	vaReqs map[int][]int
	saReqs map[int][]int
}

func newRouter(p routerParams, net *meshNet) *router {
	r := &router{p: p, net: net}
	r.rcD, r.vaD, r.stD = pipeDelays(p.stages)
	r.nIn = int(numDirs) + p.nInj
	r.nOut = int(numDirs) + p.nEj
	r.inputs = make([][]inVC, r.nIn)
	for i := range r.inputs {
		r.inputs[i] = make([]inVC, p.numVCs)
		for v := range r.inputs[i] {
			r.inputs[i][v].outPort = -1
		}
	}
	r.outputs = make([][]outVC, r.nOut)
	for o := range r.outputs {
		r.outputs[o] = make([]outVC, p.numVCs)
		for v := range r.outputs[o] {
			r.outputs[o][v].owner = -1
		}
	}
	r.outChans = make([]*channel, numDirs)
	r.credChans = make([]*creditChannel, numDirs)
	r.ejQ = make([][]flitEvent, p.nEj)
	r.vaPtr = make([]int, r.nOut*p.numVCs)
	r.saInPtr = make([]int, r.nIn)
	r.saOutPtr = make([]int, r.nOut)
	r.vaReqs = make(map[int][]int)
	r.saReqs = make(map[int][]int)
	if net != nil && net.fs != nil {
		r.stuck = make([][]uint64, r.nIn)
		for i := range r.stuck {
			r.stuck[i] = make([]uint64, p.numVCs)
		}
	}
	return r
}

func (r *router) inIdx(port, vc int) int { return port*r.p.numVCs + vc }

// acceptFlit enqueues an arriving flit into its input VC buffer. Credit
// accounting upstream guarantees space; overflow means a protocol bug.
func (r *router) acceptFlit(port int, f Flit, cycle uint64) {
	ivc := &r.inputs[port][f.VC]
	if len(ivc.buf) >= r.p.bufDepth {
		panic(fmt.Sprintf("noc: router %d port %d vc %d buffer overflow", r.p.node, port, f.VC))
	}
	f.arrived = cycle
	ivc.buf = append(ivc.buf, f)
}

// acceptCredit returns a buffer slot for (output port, vc).
func (r *router) acceptCredit(port, vc int) {
	o := &r.outputs[port][vc]
	o.credits++
	if o.credits > r.p.bufDepth {
		panic(fmt.Sprintf("noc: router %d port %d vc %d credit overflow", r.p.node, port, vc))
	}
}

// injSpace reports free slots in an injection port VC buffer (used by the
// network interface, which writes flits directly).
func (r *router) injSpace(injPort, vc int) int {
	return r.p.bufDepth - len(r.inputs[int(numDirs)+injPort][vc].buf)
}

// injectFlit writes one flit into an injection buffer.
func (r *router) injectFlit(injPort int, f Flit, cycle uint64) {
	r.acceptFlit(int(numDirs)+injPort, f, cycle)
}

// legalOutput reports whether this router can forward from input port in to
// output port out. Half-routers cannot change dimension (§IV-A, Fig 13).
func (r *router) legalOutput(in, out int) bool {
	inDir := in < int(numDirs)
	outDir := out < int(numDirs)
	if !inDir || !outDir {
		return true // terminal ports connect to everything
	}
	if in == out {
		return false // no U-turns
	}
	if !r.p.half {
		return true
	}
	return Port(out) == Port(in).opposite()
}

// step runs one router cycle: route computation, VC allocation, switch
// allocation and switch traversal.
func (r *router) step(cycle uint64) {
	r.routeCompute(cycle)
	r.vcAllocate(cycle)
	r.switchAllocate(cycle)
}

// routeCompute processes new head flits at the front of idle VCs.
func (r *router) routeCompute(cycle uint64) {
	for in := 0; in < r.nIn; in++ {
		for v := 0; v < r.p.numVCs; v++ {
			ivc := &r.inputs[in][v]
			if ivc.state != vcIdle || len(ivc.buf) == 0 {
				continue
			}
			head := ivc.buf[0]
			if !head.Head {
				panic(fmt.Sprintf("noc: router %d: non-head flit (pkt %d seq %d) at front of idle vc",
					r.p.node, head.Pkt.ID, head.Seq))
			}
			pkt := head.Pkt
			out, eject := nextHop(r.net.topo, r.p.node, pkt)
			outPort := int(out)
			if eject {
				outPort = int(numDirs) + r.ejRR
				r.ejRR = (r.ejRR + 1) % r.p.nEj
			}
			if !r.legalOutput(in, outPort) {
				panic(fmt.Sprintf("noc: illegal turn at router %d (half=%v): in %d -> out %d for pkt %d (%d->%d)",
					r.p.node, r.p.half, in, outPort, pkt.ID, pkt.Src, pkt.Dst))
			}
			ivc.outPort = outPort
			ivc.allowed = r.net.vcs.allowed(pkt.Class, pkt.YXPhase)
			ivc.state = vcWaitVA
			// Heads that queued behind a previous packet already overlapped
			// their buffer-write/RC stages with its drain.
			ivc.readyAt = head.arrived + r.rcD
			if ivc.readyAt < cycle {
				ivc.readyAt = cycle
			}
		}
	}
}

// vcAllocate matches waiting input VCs to free output VCs: each input VC
// bids for the first free VC in its allowed set; each contested output VC
// grants round-robin.
func (r *router) vcAllocate(cycle uint64) {
	reqs := r.vaReqs
	for k := range reqs {
		delete(reqs, k)
	}
	for in := 0; in < r.nIn; in++ {
		for v := 0; v < r.p.numVCs; v++ {
			ivc := &r.inputs[in][v]
			if ivc.state != vcWaitVA || ivc.readyAt > cycle {
				continue
			}
			for _, ov := range ivc.allowed {
				if r.outputs[ivc.outPort][ov].owner < 0 {
					key := ivc.outPort*r.p.numVCs + ov
					reqs[key] = append(reqs[key], r.inIdx(in, v))
					break
				}
			}
		}
	}
	for key, bidders := range reqs {
		winner := pickRR(bidders, &r.vaPtr[key])
		in, v := winner/r.p.numVCs, winner%r.p.numVCs
		ivc := &r.inputs[in][v]
		op, ov := key/r.p.numVCs, key%r.p.numVCs
		r.outputs[op][ov].owner = winner
		ivc.outVC = ov
		ivc.state = vcActive
		ivc.readyAt = cycle + r.vaD
	}
}

// switchAllocate picks one flit per input port and one per output port
// (input-first separable allocation) and traverses the switch.
func (r *router) switchAllocate(cycle uint64) {
	reqs := r.saReqs
	for k := range reqs {
		delete(reqs, k)
	}
	for in := 0; in < r.nIn; in++ {
		v, ok := r.pickSAInput(in, cycle)
		if !ok {
			continue
		}
		out := r.inputs[in][v].outPort
		reqs[out] = append(reqs[out], r.inIdx(in, v))
	}
	// Grant in output-port order, not map order: traverse draws from the
	// fault RNG (credit-loss per send), so the iteration order must be
	// deterministic for equal-seeded runs to stay bit-identical.
	for out := 0; out < r.nOut; out++ {
		bidders := reqs[out]
		if len(bidders) == 0 {
			continue
		}
		winner := pickRR(bidders, &r.saOutPtr[out])
		r.traverse(winner/r.p.numVCs, winner%r.p.numVCs, cycle)
	}
}

// pickSAInput selects, round-robin, an eligible VC at input port in.
func (r *router) pickSAInput(in int, cycle uint64) (int, bool) {
	n := r.p.numVCs
	start := r.saInPtr[in]
	for k := 0; k < n; k++ {
		v := (start + k) % n
		ivc := &r.inputs[in][v]
		if ivc.state != vcActive || ivc.readyAt > cycle || len(ivc.buf) == 0 {
			continue
		}
		if r.stuck != nil && r.stuck[in][v] > cycle {
			continue // transient stuck-VC fault freezes this VC's allocation
		}
		if !r.outputReady(ivc.outPort, ivc.outVC) {
			continue
		}
		r.saInPtr[in] = (v + 1) % n
		return v, true
	}
	return 0, false
}

// outputReady reports whether a flit can leave via (port, vc) this cycle:
// a downstream credit for direction ports, a queue slot for ejection ports.
func (r *router) outputReady(port, vc int) bool {
	if port < int(numDirs) {
		return r.outputs[port][vc].credits > 0
	}
	return len(r.ejQ[port-int(numDirs)]) < r.p.ejCap
}

// traverse moves the front flit of (in, v) through the switch.
func (r *router) traverse(in, v int, cycle uint64) {
	ivc := &r.inputs[in][v]
	f := ivc.buf[0]
	ivc.buf = ivc.buf[:copy(ivc.buf, ivc.buf[1:])]
	op, ov := ivc.outPort, ivc.outVC
	f.VC = ov
	if op < int(numDirs) {
		r.outputs[op][ov].credits--
		r.outChans[op].send(f, cycle+r.stD+r.p.chanLat)
	} else {
		r.ejQ[op-int(numDirs)] = append(r.ejQ[op-int(numDirs)], flitEvent{flit: f, due: cycle + r.stD})
	}
	r.net.stats.FlitHops++
	r.net.moveCount++
	if f.Head {
		r.net.noteHop(f.Pkt)
	}
	// Return the freed buffer slot upstream (direction inputs only; the
	// network interface reads injection buffer occupancy directly).
	if in < int(numDirs) && r.credChans[in] != nil {
		r.credChans[in].send(v, cycle+r.p.credLat)
	}
	if f.Tail {
		r.outputs[op][ov].owner = -1
		ivc.state = vcIdle
		ivc.outPort = -1
		ivc.allowed = nil
	}
}

// drainEjected pops all arrived flits from the ejection queues.
func (r *router) drainEjected(cycle uint64, visit func(Flit)) {
	for e := range r.ejQ {
		q := r.ejQ[e]
		n := 0
		for _, ev := range q {
			if ev.due <= cycle {
				visit(ev.flit)
				n++
			} else {
				break
			}
		}
		if n > 0 {
			r.ejQ[e] = q[:copy(q, q[n:])]
		}
	}
}

// pickRR chooses the first bidder at or after *ptr (wrapping), then advances
// the pointer past the winner.
func pickRR(bidders []int, ptr *int) int {
	best := -1
	bestKey := 0
	for _, b := range bidders {
		key := b - *ptr
		if key < 0 {
			key += 1 << 20 // wrap below pointer to the end of the order
		}
		if best < 0 || key < bestKey {
			best, bestKey = b, key
		}
	}
	*ptr = best + 1
	return best
}
