package noc

import (
	"fmt"

	"repro/internal/ring"
)

// vcState is the lifecycle of an input virtual channel.
type vcState int

const (
	vcIdle   vcState = iota // no packet, or next head not yet route-computed
	vcWaitVA                // route computed, waiting for an output VC
	vcActive                // output VC held, flits compete in switch allocation
)

// inVC is one input virtual channel: a flit FIFO plus allocation state.
type inVC struct {
	buf     ring.Ring[Flit]
	state   vcState
	outPort int   // granted output port (valid from vcWaitVA on)
	outVC   int   // granted output VC (valid in vcActive)
	allowed []int // output VCs this packet may use at this hop
	readyAt uint64
}

// outVC is the book-keeping for one (output port, VC) pair.
type outVC struct {
	credits int // free buffer slots at the downstream input VC
	owner   int // input index holding this VC, or -1 when free
}

// pipeDelays maps a router pipeline depth to stage delays. The uncontended
// per-hop latency is rc+va+st+channelLatency, so the paper's 4-stage router
// with 1-cycle channels costs 5 cycles per hop, and the aggressive 1-cycle
// router costs 2.
func pipeDelays(stages int) (rc, va, st uint64) {
	switch {
	case stages <= 1:
		return 0, 0, 1
	case stages == 2:
		return 0, 1, 1
	default:
		return uint64(stages) - 2, 1, 1
	}
}

// routerParams configures one router instance.
type routerParams struct {
	node     NodeID
	half     bool // half-router: no turns between dimensions (§IV-A)
	numVCs   int
	bufDepth int
	nInj     int // injection (terminal input) ports
	nEj      int // ejection (terminal output) ports
	stages   int // pipeline depth (4 baseline, 3 half, 1 aggressive)
	chanLat  uint64
	credLat  uint64
	ejCap    int // ejection queue capacity, in flits
}

// router is a VC wormhole router with separable round-robin (iSLIP-style)
// VC and switch allocation.
type router struct {
	p    routerParams
	net  *meshNet
	sh   *meshShard // owning column-band shard (assigned by buildShards)
	rcD  uint64
	vaD  uint64
	stD  uint64
	nIn  int // 4 dirs + nInj
	nOut int // 4 dirs + nEj

	inputs  [][]inVC // [inPort][vc]
	outputs [][]outVC

	outChans  []*channel       // per dir output port; nil at mesh edge
	credChans []*creditChannel // per dir input port, back to upstream; nil at edge or terminal

	ejQ []ring.Ring[flitEvent] // per ejection port

	// busy counts input VCs holding work (buffered flits or allocation
	// state); step is a no-op at busy == 0, so the network skips the router.
	// ejCount counts flits across the ejection queues, the analogous
	// condition for the ejection phase.
	busy    int
	ejCount int

	// stuck[port][vc] holds the cycle until which a stuck-VC fault freezes
	// that input VC's switch allocation; nil when faults are disabled.
	stuck [][]uint64

	// Round-robin pointers.
	vaPtr    []int // per outPort*numVCs+outVC, over input index
	saInPtr  []int // per input port, over VCs
	saOutPtr []int // per output port, over input ports
	ejRR     int

	// Allocation scratch, reused across cycles: vaBids[key] holds the input
	// indices bidding for output VC key = outPort*numVCs+outVC and vaKeys the
	// dirty keys in discovery order; saBids[out] holds the switch bidders per
	// output port. All preallocated to their worst case, so the allocators
	// never touch the heap.
	vaBids [][]int
	vaKeys []int
	saBids [][]int
}

func newRouter(p routerParams, net *meshNet) *router {
	r := &router{p: p, net: net}
	r.rcD, r.vaD, r.stD = pipeDelays(p.stages)
	r.nIn = int(numDirs) + p.nInj
	r.nOut = int(numDirs) + p.nEj
	r.inputs = make([][]inVC, r.nIn)
	for i := range r.inputs {
		r.inputs[i] = make([]inVC, p.numVCs)
		for v := range r.inputs[i] {
			r.inputs[i][v].outPort = -1
			r.inputs[i][v].buf = ring.New[Flit](p.bufDepth, p.bufDepth)
		}
	}
	r.outputs = make([][]outVC, r.nOut)
	for o := range r.outputs {
		r.outputs[o] = make([]outVC, p.numVCs)
		for v := range r.outputs[o] {
			r.outputs[o][v].owner = -1
		}
	}
	r.outChans = make([]*channel, numDirs)
	r.credChans = make([]*creditChannel, numDirs)
	r.ejQ = make([]ring.Ring[flitEvent], p.nEj)
	for e := range r.ejQ {
		r.ejQ[e] = ring.New[flitEvent](p.ejCap, p.ejCap)
	}
	r.vaPtr = make([]int, r.nOut*p.numVCs)
	r.saInPtr = make([]int, r.nIn)
	r.saOutPtr = make([]int, r.nOut)
	r.vaBids = make([][]int, r.nOut*p.numVCs)
	for i := range r.vaBids {
		r.vaBids[i] = make([]int, 0, r.nIn*p.numVCs)
	}
	r.vaKeys = make([]int, 0, r.nOut*p.numVCs)
	r.saBids = make([][]int, r.nOut)
	for i := range r.saBids {
		r.saBids[i] = make([]int, 0, r.nIn)
	}
	if net != nil && net.fs != nil {
		r.stuck = make([][]uint64, r.nIn)
		for i := range r.stuck {
			r.stuck[i] = make([]uint64, p.numVCs)
		}
	}
	return r
}

func (r *router) inIdx(port, vc int) int { return port*r.p.numVCs + vc }

// acceptFlit enqueues an arriving flit into its input VC buffer. Credit
// accounting upstream guarantees space; overflow means a protocol bug.
// A flit landing on a fully idle VC is new work: it raises the busy count
// and puts the router on the network's active list.
func (r *router) acceptFlit(port int, f Flit, cycle uint64) {
	ivc := &r.inputs[port][f.VC]
	if ivc.buf.Full() {
		panic(fmt.Sprintf("noc: router %d port %d vc %d buffer overflow", r.p.node, port, f.VC))
	}
	f.arrived = cycle
	if ivc.buf.Len() == 0 && ivc.state == vcIdle {
		r.busy++
		r.sh.rtrActive.set(int(r.p.node))
	}
	ivc.buf.Push(f)
}

// acceptCredit returns a buffer slot for (output port, vc).
func (r *router) acceptCredit(port, vc int) {
	o := &r.outputs[port][vc]
	o.credits++
	if o.credits > r.p.bufDepth {
		panic(fmt.Sprintf("noc: router %d port %d vc %d credit overflow", r.p.node, port, vc))
	}
}

// injSpace reports free slots in an injection port VC buffer (used by the
// network interface, which writes flits directly).
func (r *router) injSpace(injPort, vc int) int {
	return r.p.bufDepth - r.inputs[int(numDirs)+injPort][vc].buf.Len()
}

// injectFlit writes one flit into an injection buffer.
func (r *router) injectFlit(injPort int, f Flit, cycle uint64) {
	r.acceptFlit(int(numDirs)+injPort, f, cycle)
}

// legalOutput reports whether this router can forward from input port in to
// output port out. Half-routers cannot change dimension (§IV-A, Fig 13).
func (r *router) legalOutput(in, out int) bool {
	inDir := in < int(numDirs)
	outDir := out < int(numDirs)
	if !inDir || !outDir {
		return true // terminal ports connect to everything
	}
	if in == out {
		return false // no U-turns
	}
	if !r.p.half {
		return true
	}
	return Port(out) == Port(in).opposite()
}

// step runs one router cycle: route computation, VC allocation, switch
// allocation and switch traversal.
func (r *router) step(cycle uint64) {
	r.routeCompute(cycle)
	r.vcAllocate(cycle)
	r.switchAllocate(cycle)
}

// routeCompute processes new head flits at the front of idle VCs.
func (r *router) routeCompute(cycle uint64) {
	for in := 0; in < r.nIn; in++ {
		for v := 0; v < r.p.numVCs; v++ {
			ivc := &r.inputs[in][v]
			if ivc.state != vcIdle || ivc.buf.Len() == 0 {
				continue
			}
			head := *ivc.buf.Front()
			if !head.Head {
				panic(fmt.Sprintf("noc: router %d: non-head flit (pkt %d seq %d) at front of idle vc",
					r.p.node, head.Pkt.ID, head.Seq))
			}
			pkt := head.Pkt
			out, eject := r.net.backend.NextHop(r.p.node, pkt)
			outPort := int(out)
			if eject {
				outPort = int(numDirs) + r.ejRR
				r.ejRR = (r.ejRR + 1) % r.p.nEj
			}
			if !r.legalOutput(in, outPort) {
				panic(fmt.Sprintf("noc: illegal turn at router %d (half=%v): in %d -> out %d for pkt %d (%d->%d)",
					r.p.node, r.p.half, in, outPort, pkt.ID, pkt.Src, pkt.Dst))
			}
			ivc.outPort = outPort
			ivc.allowed = r.net.vcs.allowed(pkt.Class, pkt.YXPhase)
			ivc.state = vcWaitVA
			// Heads that queued behind a previous packet already overlapped
			// their buffer-write/RC stages with its drain.
			ivc.readyAt = head.arrived + r.rcD
			if ivc.readyAt < cycle {
				ivc.readyAt = cycle
			}
		}
	}
}

// vcAllocate matches waiting input VCs to free output VCs: each input VC
// bids for the first free VC in its allowed set; each contested output VC
// grants round-robin. Grants are processed in key-discovery order; they are
// independent per key (every input VC bids on exactly one key), so the
// order does not affect the outcome.
func (r *router) vcAllocate(cycle uint64) {
	n := r.p.numVCs
	for in := 0; in < r.nIn; in++ {
		for v := 0; v < n; v++ {
			ivc := &r.inputs[in][v]
			if ivc.state != vcWaitVA || ivc.readyAt > cycle {
				continue
			}
			for _, ov := range ivc.allowed {
				if r.outputs[ivc.outPort][ov].owner < 0 {
					key := ivc.outPort*n + ov
					if len(r.vaBids[key]) == 0 {
						r.vaKeys = append(r.vaKeys, key)
					}
					r.vaBids[key] = append(r.vaBids[key], r.inIdx(in, v))
					break
				}
			}
		}
	}
	for _, key := range r.vaKeys {
		bidders := r.vaBids[key]
		winner := pickRR(bidders, &r.vaPtr[key], r.nIn*n)
		in, v := winner/n, winner%n
		ivc := &r.inputs[in][v]
		op, ov := key/n, key%n
		r.outputs[op][ov].owner = winner
		ivc.outVC = ov
		ivc.state = vcActive
		ivc.readyAt = cycle + r.vaD
		r.vaBids[key] = bidders[:0]
	}
	r.vaKeys = r.vaKeys[:0]
}

// switchAllocate picks one flit per input port and one per output port
// (input-first separable allocation) and traverses the switch. Grants run
// in output-port order: traverse draws from the fault RNG (credit-loss per
// send), so the iteration order must be deterministic for equal-seeded runs
// to stay bit-identical.
func (r *router) switchAllocate(cycle uint64) {
	for in := 0; in < r.nIn; in++ {
		v, ok := r.pickSAInput(in, cycle)
		if !ok {
			continue
		}
		out := r.inputs[in][v].outPort
		r.saBids[out] = append(r.saBids[out], r.inIdx(in, v))
	}
	for out := 0; out < r.nOut; out++ {
		bidders := r.saBids[out]
		if len(bidders) == 0 {
			continue
		}
		winner := pickRR(bidders, &r.saOutPtr[out], r.nIn*r.p.numVCs)
		r.traverse(winner/r.p.numVCs, winner%r.p.numVCs, cycle)
		r.saBids[out] = bidders[:0]
	}
}

// pickSAInput selects, round-robin, an eligible VC at input port in.
func (r *router) pickSAInput(in int, cycle uint64) (int, bool) {
	n := r.p.numVCs
	start := r.saInPtr[in]
	for k := 0; k < n; k++ {
		v := (start + k) % n
		ivc := &r.inputs[in][v]
		if ivc.state != vcActive || ivc.readyAt > cycle || ivc.buf.Len() == 0 {
			continue
		}
		if r.stuck != nil && r.stuck[in][v] > cycle {
			continue // transient stuck-VC fault freezes this VC's allocation
		}
		if !r.outputReady(ivc.outPort, ivc.outVC) {
			continue
		}
		r.saInPtr[in] = (v + 1) % n
		return v, true
	}
	return 0, false
}

// outputReady reports whether a flit can leave via (port, vc) this cycle:
// a downstream credit for direction ports, a queue slot for ejection ports.
func (r *router) outputReady(port, vc int) bool {
	if port < int(numDirs) {
		return r.outputs[port][vc].credits > 0
	}
	return !r.ejQ[port-int(numDirs)].Full()
}

// traverse moves the front flit of (in, v) through the switch.
func (r *router) traverse(in, v int, cycle uint64) {
	ivc := &r.inputs[in][v]
	f := ivc.buf.Pop()
	op, ov := ivc.outPort, ivc.outVC
	f.VC = ov
	if op < int(numDirs) {
		r.outputs[op][ov].credits--
		r.outChans[op].send(f, cycle+r.stD+r.p.chanLat)
	} else {
		r.ejQ[op-int(numDirs)].Push(flitEvent{flit: f, due: cycle + r.stD})
		r.ejCount++
		r.sh.ejActive.set(int(r.p.node))
	}
	r.sh.flitHops++
	r.sh.moves++
	if f.Head {
		r.sh.noteHop(f.Pkt, r.p.node)
	}
	// Return the freed buffer slot upstream (direction inputs only; the
	// network interface reads injection buffer occupancy directly).
	if in < int(numDirs) && r.credChans[in] != nil {
		r.credChans[in].send(v, cycle+r.p.credLat)
	}
	if f.Tail {
		r.outputs[op][ov].owner = -1
		ivc.state = vcIdle
		ivc.outPort = -1
		ivc.allowed = nil
	}
	if ivc.buf.Len() == 0 && ivc.state == vcIdle {
		r.busy--
	}
}

// drainEjected pops all arrived flits from the ejection queues.
func (r *router) drainEjected(cycle uint64, visit func(Flit)) {
	for e := range r.ejQ {
		q := &r.ejQ[e]
		for q.Len() > 0 && q.Front().due <= cycle {
			r.ejCount--
			visit(q.Pop().flit)
		}
	}
}

// pickRR chooses the first bidder at or after *ptr in cyclic order over the
// index space [0, n), then advances the pointer past the winner. Bidders are
// input indices in [0, n) and the pointer rests in [0, n] (n after a
// last-index win), so one conditional add of n restores the cyclic distance
// for bidders that wrapped below the pointer.
func pickRR(bidders []int, ptr *int, n int) int {
	best := -1
	bestKey := 0
	for _, b := range bidders {
		key := b - *ptr
		if key < 0 {
			key += n // wrap below pointer to the end of the order
		}
		if best < 0 || key < bestKey {
			best, bestKey = b, key
		}
	}
	*ptr = best + 1
	return best
}
