package noc

import (
	"testing"
	"testing/quick"
)

func TestIdealValidation(t *testing.T) {
	if _, err := NewIdeal(0, 16, 0); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := NewIdeal(36, 0, 0); err == nil {
		t.Error("zero flit size accepted")
	}
}

func TestPerfectNetworkSameCycleDelivery(t *testing.T) {
	n := MustNewIdeal(36, 16, 0) // uncapped = perfect
	for i := 0; i < 100; i++ {
		n.TryInject(&Packet{Src: 0, Dst: 35, Class: ClassReply, Bytes: 64})
	}
	n.Tick()
	got := n.Delivered(35)
	if len(got) != 100 {
		t.Fatalf("perfect network delivered %d/100 in one cycle", len(got))
	}
	for _, p := range got {
		if p.NetworkLatency() != 0 {
			t.Fatalf("perfect network latency = %d, want 0", p.NetworkLatency())
		}
	}
	if !n.Quiet() {
		t.Error("network should be quiet")
	}
}

func TestIdealBandwidthCap(t *testing.T) {
	// Cap of 8 flits/cycle with 4-flit packets => 2 packets/cycle.
	n := MustNewIdeal(36, 16, 8)
	const pkts = 20
	for i := 0; i < pkts; i++ {
		n.TryInject(&Packet{Src: NodeID(i % 8), Dst: 35, Class: ClassReply, Bytes: 64})
	}
	perCycle := []int{}
	for c := 0; c < 15 && !n.Quiet(); c++ {
		n.Tick()
		perCycle = append(perCycle, len(n.Delivered(35)))
	}
	if !n.Quiet() {
		t.Fatal("did not drain")
	}
	total := 0
	for i, c := range perCycle {
		total += c
		if c > 2 {
			t.Errorf("cycle %d delivered %d packets, cap allows 2", i, c)
		}
	}
	if total != pkts {
		t.Errorf("delivered %d/%d", total, pkts)
	}
	if len(perCycle) < 10 {
		t.Errorf("drained in %d cycles, cap should need 10", len(perCycle))
	}
}

func TestIdealFractionalBudgetCarries(t *testing.T) {
	// Cap 0.5 flits/cycle with 1-flit packets => one packet every 2 cycles.
	n := MustNewIdeal(4, 16, 0.5)
	for i := 0; i < 5; i++ {
		n.TryInject(&Packet{Src: 0, Dst: 1, Class: ClassRequest, Bytes: 8})
	}
	delivered := 0
	cycles := 0
	for ; cycles < 100 && !n.Quiet(); cycles++ {
		n.Tick()
		delivered += len(n.Delivered(1))
	}
	if delivered != 5 {
		t.Fatalf("delivered %d/5", delivered)
	}
	if cycles < 9 {
		t.Errorf("drained in %d cycles; 0.5 flits/cycle needs ~10", cycles)
	}
}

func TestIdealLargePacketNotStarved(t *testing.T) {
	// A packet larger than the per-cycle budget must still go through
	// (budget overdraws and recovers).
	n := MustNewIdeal(4, 16, 1)
	n.TryInject(&Packet{Src: 0, Dst: 1, Class: ClassReply, Bytes: 64}) // 4 flits
	for c := 0; c < 10 && !n.Quiet(); c++ {
		n.Tick()
	}
	if !n.Quiet() {
		t.Fatal("large packet starved by small budget")
	}
}

func TestIdealFIFOAcrossSources(t *testing.T) {
	n := MustNewIdeal(8, 16, 1)
	a := &Packet{Src: 0, Dst: 7, Class: ClassRequest, Bytes: 8, Meta: "a"}
	b := &Packet{Src: 1, Dst: 7, Class: ClassRequest, Bytes: 8, Meta: "b"}
	n.TryInject(a)
	n.TryInject(b)
	n.Tick()
	first := n.Delivered(7)
	if len(first) != 1 || first[0].Meta != "a" {
		t.Errorf("first delivery = %v, want a", first)
	}
}

func TestIdealPropertyConservation(t *testing.T) {
	f := func(seed uint64, capRaw uint8, count uint8) bool {
		capFlits := float64(capRaw%16) / 2 // 0 .. 7.5 (0 = perfect)
		n := MustNewIdeal(16, 16, capFlits)
		want := int(count)%100 + 1
		for i := 0; i < want; i++ {
			n.TryInject(&Packet{Src: NodeID(i % 16), Dst: NodeID((i + 1) % 16),
				Class: ClassRequest, Bytes: 8 + int(seed%64)})
		}
		got := 0
		for c := 0; c < 10000 && !n.Quiet(); c++ {
			n.Tick()
			got += len(collectAll(n, 16))
		}
		return n.Quiet() && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
