package noc

import "repro/internal/ring"

// injWriter streams one packet's flits into an injection buffer VC. Flits
// are synthesized on the fly from (pkt, next) rather than materialized as a
// slice, so starting a packet allocates nothing. A writer with pkt == nil
// is free.
type injWriter struct {
	pkt   *Packet
	next  int // next flit sequence to write
	total int // flit count of pkt
	vc    int
}

// netIface is the per-node network interface: bounded source queues feeding
// the router's injection port(s), and packet reassembly on the ejection
// side. Each injection port writes at most one flit per cycle, so a 2-port
// MC router has twice the terminal injection bandwidth (§IV-D).
type netIface struct {
	node    NodeID
	rtr     *router
	net     *meshNet
	srcQ    [NumClasses]ring.Ring[*Packet]
	writers [][]injWriter // [injPort][vc]
	pend    int           // queued packets + in-progress writers; injectStep is a no-op at 0
	classRR int
	asm     map[uint64]int

	// delivered/spare double-buffer the per-tick delivery batch: Delivered
	// swaps them instead of dropping the slice, so the steady state reuses
	// two backing arrays per node instead of allocating one per batch.
	delivered []*Packet
	spare     []*Packet
}

func newNetIface(node NodeID, rtr *router, net *meshNet) *netIface {
	ni := &netIface{node: node, rtr: rtr, net: net, asm: make(map[uint64]int)}
	for c := range ni.srcQ {
		ni.srcQ[c] = ring.New[*Packet](net.cfg.SrcQueueCap, net.cfg.SrcQueueCap)
	}
	ni.writers = make([][]injWriter, rtr.p.nInj)
	for p := range ni.writers {
		ni.writers[p] = make([]injWriter, rtr.p.numVCs)
	}
	return ni
}

// enqueue appends p to its class's source queue and marks the interface
// active. The caller has already checked CanInject.
func (ni *netIface) enqueue(p *Packet) {
	ni.srcQ[p.Class].Push(p)
	ni.pend++
	ni.rtr.sh.injActive.set(int(ni.node))
}

// injectStep advances injection by up to one flit per port.
func (ni *netIface) injectStep(cycle uint64) {
	for port := range ni.writers {
		if ni.continueWrite(port, cycle) {
			continue
		}
		ni.startWrite(port, cycle)
	}
}

// continueWrite pushes the next flit of an in-progress packet on port,
// returning whether a flit was written.
func (ni *netIface) continueWrite(port int, cycle uint64) bool {
	for v := range ni.writers[port] {
		w := &ni.writers[port][v]
		if w.pkt == nil {
			continue
		}
		if ni.rtr.injSpace(port, v) == 0 {
			continue
		}
		ni.writeFlit(port, w, cycle)
		return true
	}
	return false
}

// startWrite begins injecting the next queued packet on port, if any class
// has a packet whose VC set offers a free writer slot with buffer space.
func (ni *netIface) startWrite(port int, cycle uint64) {
	for k := 0; k < int(NumClasses); k++ {
		class := TrafficClass((ni.classRR + k) % int(NumClasses))
		q := &ni.srcQ[class]
		if q.Len() == 0 {
			continue
		}
		pkt := *q.Front()
		vc := ni.pickInjVC(port, pkt)
		if vc < 0 {
			continue
		}
		q.Pop() // the packet stays counted in pend until its writer finishes
		ni.classRR = (int(class) + 1) % int(NumClasses)
		pkt.InjectedAt = cycle
		pkt.flits = ni.net.flitsFor(pkt.Bytes)
		ni.net.stats.InjectedPackets[ni.node]++
		ni.net.stats.InjectedBytes[ni.node] += uint64(pkt.Bytes)
		w := &ni.writers[port][vc]
		*w = injWriter{pkt: pkt, total: pkt.flits, vc: vc}
		ni.writeFlit(port, w, cycle)
		return
	}
}

// pickInjVC returns a VC from the packet's allowed set with no in-progress
// writer on this port and at least one free buffer slot, or -1.
func (ni *netIface) pickInjVC(port int, pkt *Packet) int {
	for _, v := range ni.net.vcs.allowed(pkt.Class, pkt.YXPhase) {
		if ni.writers[port][v].pkt == nil && ni.rtr.injSpace(port, v) > 0 {
			return v
		}
	}
	return -1
}

func (ni *netIface) writeFlit(port int, w *injWriter, cycle uint64) {
	f := Flit{
		Pkt:  w.pkt,
		Seq:  w.next,
		Head: w.next == 0,
		Tail: w.next == w.total-1,
		VC:   w.vc,
	}
	ni.rtr.injectFlit(port, f, cycle)
	w.next++
	ni.net.stats.InjectedFlits[ni.node]++
	ni.rtr.sh.moves++
	if w.next == w.total {
		w.pkt = nil
		ni.pend--
	}
}

// ejectStep drains arrived flits and assembles packets. Flits of one packet
// arrive in order, but packets on different VCs may interleave, so assembly
// counts flits per packet ID. Latency observations are order-sensitive
// float sums, so they are deferred into the shard's sample buffer and
// replayed in serial (node-ascending) order by the cycle epilogue.
func (ni *netIface) ejectStep(cycle uint64) {
	sh := ni.rtr.sh
	ni.rtr.drainEjected(cycle, func(f Flit) {
		ni.net.stats.EjectedFlits[ni.node]++
		sh.moves++
		pkt := f.Pkt
		got := ni.asm[pkt.ID] + 1
		if got < pkt.flits {
			ni.asm[pkt.ID] = got
			return
		}
		delete(ni.asm, pkt.ID)
		pkt.ArrivedAt = cycle
		sh.assembled++
		if ni.net.fs != nil && !ni.net.fs.onAssembled(ni.net, pkt) {
			return // failed the end-to-end check: corrupt, duplicate or lost
		}
		ni.delivered = append(ni.delivered, pkt)
		sh.samples = append(sh.samples, latSample{
			node:  ni.node,
			net:   float64(pkt.NetworkLatency()),
			tot:   float64(pkt.TotalLatency()),
			class: pkt.Class,
		})
	})
}
