package noc

// injWriter streams one packet's flits into an injection buffer VC.
type injWriter struct {
	flits []Flit
	next  int
	vc    int
}

// netIface is the per-node network interface: bounded source queues feeding
// the router's injection port(s), and packet reassembly on the ejection
// side. Each injection port writes at most one flit per cycle, so a 2-port
// MC router has twice the terminal injection bandwidth (§IV-D).
type netIface struct {
	node      NodeID
	rtr       *router
	net       *meshNet
	srcQ      [NumClasses][]*Packet
	writers   [][]*injWriter // [injPort][vc]
	classRR   int
	asm       map[uint64]int
	delivered []*Packet
}

func newNetIface(node NodeID, rtr *router, net *meshNet) *netIface {
	ni := &netIface{node: node, rtr: rtr, net: net, asm: make(map[uint64]int)}
	ni.writers = make([][]*injWriter, rtr.p.nInj)
	for p := range ni.writers {
		ni.writers[p] = make([]*injWriter, rtr.p.numVCs)
	}
	return ni
}

// injectStep advances injection by up to one flit per port.
func (ni *netIface) injectStep(cycle uint64) {
	for port := range ni.writers {
		if ni.continueWrite(port, cycle) {
			continue
		}
		ni.startWrite(port, cycle)
	}
}

// continueWrite pushes the next flit of an in-progress packet on port,
// returning whether a flit was written.
func (ni *netIface) continueWrite(port int, cycle uint64) bool {
	for v, w := range ni.writers[port] {
		if w == nil {
			continue
		}
		if ni.rtr.injSpace(port, v) == 0 {
			continue
		}
		ni.writeFlit(port, w, cycle)
		return true
	}
	return false
}

// startWrite begins injecting the next queued packet on port, if any class
// has a packet whose VC set offers a free writer slot with buffer space.
func (ni *netIface) startWrite(port int, cycle uint64) {
	for k := 0; k < int(NumClasses); k++ {
		class := TrafficClass((ni.classRR + k) % int(NumClasses))
		q := ni.srcQ[class]
		if len(q) == 0 {
			continue
		}
		pkt := q[0]
		vc := ni.pickInjVC(port, pkt)
		if vc < 0 {
			continue
		}
		ni.srcQ[class] = q[1:]
		ni.classRR = (int(class) + 1) % int(NumClasses)
		pkt.InjectedAt = cycle
		ni.net.stats.InjectedPackets[ni.node]++
		ni.net.stats.InjectedBytes[ni.node] += uint64(pkt.Bytes)
		w := &injWriter{flits: makeFlits(pkt, ni.net.cfg.FlitBytes), vc: vc}
		ni.writers[port][vc] = w
		ni.writeFlit(port, w, cycle)
		return
	}
}

// pickInjVC returns a VC from the packet's allowed set with no in-progress
// writer on this port and at least one free buffer slot, or -1.
func (ni *netIface) pickInjVC(port int, pkt *Packet) int {
	for _, v := range ni.net.vcs.allowed(pkt.Class, pkt.YXPhase) {
		if ni.writers[port][v] == nil && ni.rtr.injSpace(port, v) > 0 {
			return v
		}
	}
	return -1
}

func (ni *netIface) writeFlit(port int, w *injWriter, cycle uint64) {
	f := w.flits[w.next]
	f.VC = w.vc
	ni.rtr.injectFlit(port, f, cycle)
	w.next++
	ni.net.stats.InjectedFlits[ni.node]++
	ni.net.moveCount++
	if w.next == len(w.flits) {
		ni.writers[port][w.vc] = nil
	}
}

// ejectStep drains arrived flits and assembles packets. Flits of one packet
// arrive in order, but packets on different VCs may interleave, so assembly
// counts flits per packet ID.
func (ni *netIface) ejectStep(cycle uint64) {
	ni.rtr.drainEjected(cycle, func(f Flit) {
		ni.net.stats.EjectedFlits[ni.node]++
		ni.net.moveCount++
		pkt := f.Pkt
		got := ni.asm[pkt.ID] + 1
		if got < pkt.flits {
			ni.asm[pkt.ID] = got
			return
		}
		delete(ni.asm, pkt.ID)
		pkt.ArrivedAt = cycle
		ni.net.active--
		if ni.net.fs != nil && !ni.net.fs.onAssembled(ni.net, pkt) {
			return // failed the end-to-end check: corrupt, duplicate or lost
		}
		ni.delivered = append(ni.delivered, pkt)
		st := &ni.net.stats
		st.NetLatency.Add(float64(pkt.NetworkLatency()))
		st.TotalLatency.Add(float64(pkt.TotalLatency()))
		st.LatencyByClass[pkt.Class].Add(float64(pkt.NetworkLatency()))
	})
}
