package noc

import "testing"

// backendPartitionConfigs returns one buildable configuration per topology
// backend, tuned the way the core design points tune them.
func backendPartitionConfigs() map[string]Config {
	mesh := DefaultConfig()
	ring := DefaultConfig()
	ring.Topology = BackendRing
	ring.NumVCs = 4
	ring.BufDepth = 4
	ring.RouterStages = 2
	bj := DefaultConfig()
	bj.Topology = BackendBaseJump
	bj.FlitBytes = 64
	bj.NumVCs = 2
	bj.BufDepth = 2
	bj.RouterStages = 2
	return map[string]Config{"mesh": mesh, "ring": ring, "basejump": bj}
}

// TestBackendPartitionContract property-checks every backend's ShardOf for
// every shard count up to MaxShards: each node maps to exactly one in-range
// shard, no shard is empty (MaxShards must not overpromise), and bands are
// contiguous — wired neighbours sit in the same or an adjacent band (the
// ring's wrap link joining the last band back to the first). Contiguity is
// what guarantees every cross-shard channel straddles a band boundary,
// which the mailbox hand-off design rests on.
func TestBackendPartitionContract(t *testing.T) {
	for name, cfg := range backendPartitionConfigs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			backend := MustBuildBackend(cfg)
			for S := 1; S <= backend.MaxShards(); S++ {
				counts := make([]int, S)
				for id := 0; id < backend.NumNodes(); id++ {
					sh := backend.ShardOf(NodeID(id), S)
					if sh < 0 || sh >= S {
						t.Fatalf("S=%d: node %d in shard %d, out of [0,%d)", S, id, sh, S)
					}
					counts[sh]++
				}
				total := 0
				for k, c := range counts {
					if c == 0 {
						t.Fatalf("S=%d: shard %d empty (MaxShards=%d overpromises)",
							S, k, backend.MaxShards())
					}
					total += c
				}
				if total != backend.NumNodes() {
					t.Fatalf("S=%d: %d nodes assigned, want %d", S, total, backend.NumNodes())
				}
				for id := 0; id < backend.NumNodes(); id++ {
					a := backend.ShardOf(NodeID(id), S)
					for d := Port(0); d < numDirs; d++ {
						nb := backend.Neighbor(NodeID(id), d)
						if nb < 0 {
							continue
						}
						diff := a - backend.ShardOf(nb, S)
						if diff < 0 {
							diff = -diff
						}
						if diff > 1 && diff != S-1 {
							t.Fatalf("S=%d: wired neighbours %d (shard %d) and %d (shard %d) skip a band",
								S, id, a, nb, backend.ShardOf(nb, S))
						}
					}
				}
			}
		})
	}
}

// TestBackendMailboxCaps extends the mailbox sizing invariant of
// TestShardPartitionInvariants to every backend: each channel is owned by
// its destination's shard, exactly the cross-shard channels get a mailbox,
// and each mailbox's hard capacity equals the number of boundary channels
// feeding it — the most the one-send-per-channel flow-control bound lets
// arrive in a single cycle.
func TestBackendMailboxCaps(t *testing.T) {
	for name, cfg := range backendPartitionConfigs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			cfg.Shards = 3
			cfg.Fault.WatchdogCycles = 0
			m := MustNewMesh(cfg)
			n := &m.meshNet
			if len(n.shards) != 3 {
				t.Fatalf("got %d shards, want 3", len(n.shards))
			}
			nbf := make([]int, len(n.shards))
			for _, ch := range n.flitChans {
				srcSh, dstSh := n.shardOf(ch.src), n.shardOf(ch.dst.p.node)
				if ch.sh != dstSh {
					t.Fatalf("flit channel %d owned by shard %d, want destination shard %d",
						ch.idx, ch.sh.idx, dstSh.idx)
				}
				if srcSh != dstSh {
					if ch.xmail != &srcSh.outFlit {
						t.Fatalf("cross-shard flit channel %d not wired to source shard %d's mailbox",
							ch.idx, srcSh.idx)
					}
					nbf[srcSh.idx]++
				} else if ch.xmail != nil {
					t.Fatalf("intra-shard flit channel %d has a mailbox", ch.idx)
				}
			}
			nbc := make([]int, len(n.shards))
			for _, cc := range n.credChans {
				srcSh, dstSh := n.shardOf(cc.src), n.shardOf(cc.dst.p.node)
				if cc.sh != dstSh {
					t.Fatalf("credit channel %d owned by shard %d, want destination shard %d",
						cc.idx, cc.sh.idx, dstSh.idx)
				}
				if srcSh != dstSh {
					if cc.xmail != &srcSh.outCred {
						t.Fatalf("cross-shard credit channel %d not wired to source shard %d's mailbox",
							cc.idx, srcSh.idx)
					}
					nbc[srcSh.idx]++
				} else if cc.xmail != nil {
					t.Fatalf("intra-shard credit channel %d has a mailbox", cc.idx)
				}
			}
			for k, sh := range n.shards {
				if sh.outFlit.Cap() != nbf[k] {
					t.Errorf("shard %d flit mailbox cap %d, want boundary count %d",
						k, sh.outFlit.Cap(), nbf[k])
				}
				if sh.outCred.Cap() != nbc[k] {
					t.Errorf("shard %d credit mailbox cap %d, want boundary count %d",
						k, sh.outCred.Cap(), nbc[k])
				}
			}
		})
	}
}
