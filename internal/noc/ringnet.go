package noc

import (
	"fmt"

	"repro/internal/xrand"
)

// ringBackend is a Wu-style unified bidirectional ring: Width×Height nodes
// in id order around a circle, each wired only East ((n+1) mod N) and West
// ((n-1) mod N). Per-hop routing takes the shorter arc (East on ties), which
// is stable under per-hop recomputation because the remaining clockwise
// distance shrinks monotonically along the chosen direction.
//
// Deadlock freedom uses the classic dateline discipline instead of turn
// restrictions: the phase-0 VC class is used until a packet crosses a
// dateline link — East over N-1→0 or West over 0→N-1 — where NextHop flips
// the packet's phase bit so the outgoing link and every later hop allocate
// from the phase-1 class. Each direction's channel cycle is thus broken at
// its dateline, and a minimal route (≤ ⌊N/2⌋ hops) can never cross the same
// dateline twice, so phase 1 is acyclic. Phases() is therefore 2, and with
// split traffic classes the VC budget must divide by 4.
type ringBackend struct {
	n      int
	mcs    map[NodeID]bool
	mcList []NodeID
}

func newRingBackend(cfg Config) (*ringBackend, error) {
	n := cfg.Width * cfg.Height
	if n < 4 {
		return nil, fmt.Errorf("noc: ring needs at least 4 nodes, got %dx%d", cfg.Width, cfg.Height)
	}
	if cfg.Checkerboard {
		return nil, fmt.Errorf("noc: ring topology has no half-routers (Checkerboard must be off)")
	}
	if cfg.Routing != RoutingDOR {
		return nil, fmt.Errorf("noc: ring topology routes shortest-arc only (set Routing to DOR), got %v", cfg.Routing)
	}
	b := &ringBackend{n: n, mcs: make(map[NodeID]bool)}
	for _, mc := range cfg.MCs {
		if mc < 0 || int(mc) >= n {
			return nil, fmt.Errorf("noc: MC node %d out of range for %d-node ring", mc, n)
		}
		if b.mcs[mc] {
			return nil, fmt.Errorf("noc: duplicate MC node %d", mc)
		}
		b.mcs[mc] = true
		b.mcList = append(b.mcList, mc)
	}
	return b, nil
}

func (b *ringBackend) Kind() BackendKind  { return BackendRing }
func (b *ringBackend) NumNodes() int      { return b.n }
func (b *ringBackend) IsHalf(NodeID) bool { return false }
func (b *ringBackend) IsMC(n NodeID) bool { return b.mcs[n] }
func (b *ringBackend) MCs() []NodeID      { return b.mcList }
func (b *ringBackend) SingleFlit() bool   { return false }
func (b *ringBackend) Phases() int        { return 2 }

func (b *ringBackend) ComputeNodes() []NodeID {
	var out []NodeID
	for n := 0; n < b.n; n++ {
		if !b.mcs[NodeID(n)] {
			out = append(out, NodeID(n))
		}
	}
	return out
}

// Neighbor wires only the East/West ports; North/South carry no channels.
func (b *ringBackend) Neighbor(n NodeID, d Port) NodeID {
	switch d {
	case East:
		return NodeID((int(n) + 1) % b.n)
	case West:
		return NodeID((int(n) - 1 + b.n) % b.n)
	case North, South:
		return -1
	}
	panic("noc: Neighbor of non-direction port")
}

// HopCount is the shorter arc between a and c.
func (b *ringBackend) HopCount(a, c NodeID) int {
	cw := int(c) - int(a)
	if cw < 0 {
		cw += b.n
	}
	if ccw := b.n - cw; ccw < cw {
		return ccw
	}
	return cw
}

// PlanRoute is trivial: the ring picks its direction per hop and starts
// every packet in the phase-0 VC class.
func (b *ringBackend) PlanRoute(src, dst NodeID, rng *xrand.Rand, scratch []NodeID) (bool, NodeID, error) {
	return false, -1, nil
}

// NextHop takes the shorter arc (East on ties) and flips the packet to the
// phase-1 VC class when the chosen hop crosses that direction's dateline.
// The router reads the allowed-VC set after NextHop, so the flip governs the
// dateline link itself, not just the hops beyond it.
func (b *ringBackend) NextHop(cur NodeID, p *Packet) (Port, bool) {
	if cur == p.Dst {
		return 0, true
	}
	cw := int(p.Dst) - int(cur)
	if cw < 0 {
		cw += b.n
	}
	if cw <= b.n-cw {
		if int(cur) == b.n-1 {
			p.YXPhase = true
		}
		return East, false
	}
	if cur == 0 {
		p.YXPhase = true
	}
	return West, false
}

// ShardOf maps a node to its arc segment: shard k owns nodes
// [k*N/S, (k+1)*N/S), the near-equal contiguous split. Arc segments share
// only the two boundary links per edge (plus the wrap), so the column-band
// mailbox hand-off applies unchanged.
func (b *ringBackend) ShardOf(n NodeID, nShards int) int {
	return int(n) * nShards / b.n
}

func (b *ringBackend) MaxShards() int { return b.n }

// Links counts the unidirectional channels: one East and one West per node.
func (b *ringBackend) Links() int { return RingLinkCount(b.n) }

// RingLinkCount returns the number of unidirectional channels in an N-node
// bidirectional ring.
func RingLinkCount(n int) int { return 2 * n }
