package noc

import "fmt"

// LaneSet batches L seed-replica networks of ONE configuration behind a
// single cycle loop. All lanes share one immutable Backend — geometry,
// route tables and shard plans are built once — while every lane keeps its
// own mutable network state (buffers, allocators, rng, stats), the
// structure-of-arrays layout the lane-batched simulation kernel steps in
// lockstep. Lanes advance together through Tick/SkipAhead and retire
// individually: a drained lane leaves the live set and costs nothing on
// subsequent cycles or horizon scans.
type LaneSet struct {
	backend Backend
	lanes   []*Mesh
	live    []bool
	liveN   int
}

// NewLaneSet builds n lane replicas of cfg over one shared backend. Lane i
// seeds its rng with cfg.Seed+i so replicas draw independent streams (see
// xrand's stream-independence guarantee) while staying individually
// reproducible: lane i is bit-identical to a solo network built from cfg
// with Seed+i.
func NewLaneSet(cfg Config, n int) (*LaneSet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("noc: lane count must be positive, got %d", n)
	}
	backend, err := BuildBackend(cfg)
	if err != nil {
		return nil, err
	}
	ls := &LaneSet{
		backend: backend,
		lanes:   make([]*Mesh, n),
		live:    make([]bool, n),
		liveN:   n,
	}
	for i := range ls.lanes {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)
		m, err := NewMeshWithBackend(c, backend)
		if err != nil {
			return nil, fmt.Errorf("noc: lane %d: %w", i, err)
		}
		ls.lanes[i] = m
		ls.live[i] = true
	}
	return ls, nil
}

// MustNewLaneSet is NewLaneSet for static configurations.
func MustNewLaneSet(cfg Config, n int) *LaneSet {
	ls, err := NewLaneSet(cfg, n)
	if err != nil {
		panic(err)
	}
	return ls
}

// Backend returns the shared immutable substrate.
func (ls *LaneSet) Backend() Backend { return ls.backend }

// Len returns the number of lanes, live or retired.
func (ls *LaneSet) Len() int { return len(ls.lanes) }

// Lane returns lane i's network. Valid for retired lanes too — stats stay
// readable after retirement.
func (ls *LaneSet) Lane(i int) *Mesh { return ls.lanes[i] }

// Live reports whether lane i still participates in Tick/SkipAhead.
func (ls *LaneSet) Live(i int) bool { return ls.live[i] }

// LiveCount returns how many lanes are still advancing.
func (ls *LaneSet) LiveCount() int { return ls.liveN }

// Retire removes lane i from the live set; subsequent Tick, SkipAhead and
// NextWorkCycle calls skip it entirely. Idempotent.
func (ls *LaneSet) Retire(i int) {
	if ls.live[i] {
		ls.live[i] = false
		ls.liveN--
	}
}

// Tick advances every live lane by one interconnect cycle, lane-major.
func (ls *LaneSet) Tick() {
	for i, m := range ls.lanes {
		if ls.live[i] {
			m.Tick()
		}
	}
}

// SkipAhead credits k idle cycles to every live lane. Callers must respect
// each lane's NextWorkCycle bound — the min-reduce below yields the largest
// k that is simultaneously safe for the whole set.
func (ls *LaneSet) SkipAhead(k uint64) {
	for i, m := range ls.lanes {
		if ls.live[i] {
			m.SkipAhead(k)
		}
	}
}

// NextWorkCycle min-reduces the idle-skip horizon across live lanes: the
// earliest cycle at which ANY live lane can make progress. Lanes advance in
// lockstep, so their cycle frames coincide and the min is well-defined.
// With no live lanes it returns NeverCycle.
func (ls *LaneSet) NextWorkCycle() uint64 {
	h := uint64(NeverCycle)
	for i, m := range ls.lanes {
		if !ls.live[i] {
			continue
		}
		if w := m.NextWorkCycle(); w < h {
			h = w
		}
	}
	return h
}

// Quiet reports whether every live lane is drained. Vacuously true once all
// lanes have retired.
func (ls *LaneSet) Quiet() bool {
	for i, m := range ls.lanes {
		if ls.live[i] && !m.Quiet() {
			return false
		}
	}
	return true
}
