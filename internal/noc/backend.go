package noc

import (
	"fmt"

	"repro/internal/xrand"
)

// BackendKind selects the interconnect substrate a Config builds. The zero
// value is the 2D mesh, so existing configurations are unchanged.
type BackendKind int

// Topology backends.
const (
	// BackendMesh is the paper's 2D mesh (full or checkerboard routers,
	// DOR/CR/ROMM routing).
	BackendMesh BackendKind = iota
	// BackendRing is a Wu-style unified bidirectional ring: every node has
	// exactly two neighbours, shortest-path per-hop routing, and a dateline
	// VC discipline for deadlock freedom. Minimal buffering and 2-port
	// crossbars make it the area floor of the design space.
	BackendRing
	// BackendBaseJump is a BaseJump-style (Xie & Taylor) single-flit DOR
	// mesh: every packet is exactly one flit wide, routers run plain XY
	// routing on full-width channels, and the VC budget collapses to one
	// per traffic class.
	BackendBaseJump
)

// String names the backend.
func (k BackendKind) String() string {
	switch k {
	case BackendMesh:
		return "mesh"
	case BackendRing:
		return "ring"
	case BackendBaseJump:
		return "basejump"
	}
	return fmt.Sprintf("backend(%d)", int(k))
}

// ParseBackendKind resolves a -topology flag value.
func ParseBackendKind(s string) (BackendKind, error) {
	switch s {
	case "", "mesh":
		return BackendMesh, nil
	case "ring":
		return BackendRing, nil
	case "basejump":
		return BackendBaseJump, nil
	}
	return 0, fmt.Errorf("noc: unknown topology %q (want mesh, ring or basejump)", s)
}

// singleFlit reports whether the kind carries whole packets in one flit
// (checkable before a backend is built, e.g. by Double's slicing guard).
func (k BackendKind) singleFlit() bool { return k == BackendBaseJump }

// Backend abstracts the interconnect substrate behind the cycle kernel:
// node/channel enumeration, per-packet route planning and per-hop route
// computation, MC placement validation, and the shard partition. The kernel
// (routers, VCs, credits, NIs, sharding, fault injection) is
// backend-agnostic; a backend contributes only geometry and routing.
//
// Contract notes:
//   - Channels: the kernel wires one flit channel and one credit channel for
//     every (node, direction) with Neighbor >= 0, and Neighbor must be
//     symmetric under Port.opposite (Neighbor(Neighbor(n,d), d.opposite())
//     == n) so credits return on the reverse port.
//   - NextHop may mutate the packet's phase state (checkerboard
//     intermediates, ring datelines); the router reads the allowed-VC set
//     after NextHop, so a phase flip applies to the outgoing link.
//   - ShardOf must map each node to exactly one shard, with bands contiguous
//     enough that every cross-shard channel straddles a band boundary; the
//     mailbox hand-off (shard.go) is otherwise backend-independent.
type Backend interface {
	// Kind identifies the backend.
	Kind() BackendKind
	// NumNodes returns the node count.
	NumNodes() int
	// Neighbor returns the node reached from n via direction d, or -1 when
	// the backend wires no channel there.
	Neighbor(n NodeID, d Port) NodeID
	// HopCount returns the minimal hop distance between two nodes; planned
	// routes never exceed it (two-phase routes are bounded by the sum over
	// their legs).
	HopCount(a, b NodeID) int
	// IsHalf reports whether node n holds a turn-restricted half-router.
	IsHalf(n NodeID) bool
	// IsMC reports whether node n hosts a memory controller.
	IsMC(n NodeID) bool
	// MCs returns the MC nodes in declaration order.
	MCs() []NodeID
	// ComputeNodes returns all non-MC nodes in id order.
	ComputeNodes() []NodeID
	// PlanRoute fills in a packet's routing state (YXPhase, Intermediate) at
	// injection time; scratch is an optional candidate buffer so hot-path
	// planning never allocates.
	PlanRoute(src, dst NodeID, rng *xrand.Rand, scratch []NodeID) (yxPhase bool, intermediate NodeID, err error)
	// NextHop performs per-hop route computation at router cur for packet p,
	// returning a direction port or eject=true.
	NextHop(cur NodeID, p *Packet) (out Port, eject bool)
	// Phases is how many VC phase classes routing needs (1 or 2); the VC
	// plan splits the VC budget across them.
	Phases() int
	// SingleFlit reports whether every packet must fit in one flit.
	SingleFlit() bool
	// ShardOf maps a node to its shard index in [0, nShards).
	ShardOf(n NodeID, nShards int) int
	// MaxShards bounds the useful shard count for this backend.
	MaxShards() int
	// Links returns the number of unidirectional channels (the area model's
	// link count).
	Links() int
}

// BuildBackend validates cfg's geometry/routing combination and builds its
// topology backend.
func BuildBackend(cfg Config) (Backend, error) {
	switch cfg.Topology {
	case BackendMesh:
		return newMeshBackend(cfg)
	case BackendRing:
		return newRingBackend(cfg)
	case BackendBaseJump:
		return newBaseJumpBackend(cfg)
	}
	return nil, fmt.Errorf("noc: unknown topology backend %d", int(cfg.Topology))
}

// MustBuildBackend is BuildBackend but panics on error (area model, tools).
func MustBuildBackend(cfg Config) Backend {
	b, err := BuildBackend(cfg)
	if err != nil {
		panic(err)
	}
	return b
}

// meshBackend is the 2D mesh behind the Backend interface: geometry and MC
// validation from Topology, routing from the precomputed per-phase tables.
// It is a thin adapter — planRoute/nextHop are shared with the standalone
// tracing helpers, so mesh behaviour is bit-identical to the pre-backend
// kernel.
type meshBackend struct {
	topo *Topology
	algo RoutingAlgo
}

func newMeshBackend(cfg Config) (*meshBackend, error) {
	if cfg.Routing == RoutingCheckerboard && !cfg.Checkerboard {
		return nil, fmt.Errorf("noc: checkerboard routing requires a checkerboard mesh")
	}
	if cfg.Routing == RoutingROMM && cfg.Checkerboard {
		return nil, fmt.Errorf("noc: ROMM turns anywhere and needs full routers")
	}
	topo, err := NewTopology(cfg.Width, cfg.Height, cfg.Checkerboard, cfg.MCs)
	if err != nil {
		return nil, err
	}
	return &meshBackend{topo: topo, algo: cfg.Routing}, nil
}

func (b *meshBackend) Kind() BackendKind                { return BackendMesh }
func (b *meshBackend) NumNodes() int                    { return b.topo.NumNodes() }
func (b *meshBackend) Neighbor(n NodeID, d Port) NodeID { return b.topo.Neighbor(n, d) }
func (b *meshBackend) HopCount(a, c NodeID) int         { return b.topo.HopCount(a, c) }
func (b *meshBackend) IsHalf(n NodeID) bool             { return b.topo.IsHalf(n) }
func (b *meshBackend) IsMC(n NodeID) bool               { return b.topo.IsMC(n) }
func (b *meshBackend) MCs() []NodeID                    { return b.topo.MCs() }
func (b *meshBackend) ComputeNodes() []NodeID           { return b.topo.ComputeNodes() }
func (b *meshBackend) SingleFlit() bool                 { return false }
func (b *meshBackend) topology() *Topology              { return b.topo }

func (b *meshBackend) PlanRoute(src, dst NodeID, rng *xrand.Rand, scratch []NodeID) (bool, NodeID, error) {
	return planRouteScratch(b.topo, b.algo, src, dst, rng, scratch)
}

func (b *meshBackend) NextHop(cur NodeID, p *Packet) (Port, bool) {
	return nextHop(b.topo, cur, p)
}

// Phases: two-phase algorithms (CR, ROMM) need disjoint XY and YX VC
// classes; plain DOR needs one.
func (b *meshBackend) Phases() int {
	if b.algo != RoutingDOR {
		return 2
	}
	return 1
}

// ShardOf maps a node to its column band: band k covers columns
// [k*W/S, (k+1)*W/S), the near-equal split. Column bands share only
// east/west links, so all cross-shard traffic crosses a band edge.
func (b *meshBackend) ShardOf(n NodeID, nShards int) int {
	return (int(n) % b.topo.Width) * nShards / b.topo.Width
}

func (b *meshBackend) MaxShards() int { return b.topo.Width }

func (b *meshBackend) Links() int { return MeshLinkCount(b.topo.Width, b.topo.Height) }

// MeshLinkCount returns the number of unidirectional channels in a W×H mesh.
func MeshLinkCount(width, height int) int {
	return 2 * (width*(height-1) + height*(width-1))
}

// basejumpBackend is the BaseJump-style single-flit DOR mesh: mesh geometry
// and XY routing (always full routers), but whole packets ride in one
// full-width flit, so wormhole state, multi-flit credits and deep VC budgets
// all collapse. The kernel enforces the one-flit contract at injection.
type basejumpBackend struct {
	meshBackend
}

func newBaseJumpBackend(cfg Config) (*basejumpBackend, error) {
	if cfg.Checkerboard {
		return nil, fmt.Errorf("noc: basejump topology uses full routers only (Checkerboard must be off)")
	}
	if cfg.Routing != RoutingDOR {
		return nil, fmt.Errorf("noc: basejump topology routes XY DOR only, got %v", cfg.Routing)
	}
	mb, err := newMeshBackend(cfg)
	if err != nil {
		return nil, err
	}
	return &basejumpBackend{meshBackend: *mb}, nil
}

func (b *basejumpBackend) Kind() BackendKind { return BackendBaseJump }
func (b *basejumpBackend) SingleFlit() bool  { return true }
