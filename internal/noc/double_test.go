package noc

import (
	"testing"

	"repro/internal/xrand"
)

// doubleConfig is the Fig 18 configuration: checkerboard placement and
// routing, 16B single-network equivalent (8B slices), 2 VCs per slice.
func doubleConfig() Config {
	cfg := DefaultConfig()
	cfg.Checkerboard = true
	cfg.Routing = RoutingCheckerboard
	cfg.MCs = CheckerboardPlacement(6, 6, 8)
	cfg.NumVCs = 2
	return cfg
}

func TestDoubleValidation(t *testing.T) {
	cfg := doubleConfig()
	cfg.FlitBytes = 15
	if _, err := NewDouble(cfg); err == nil {
		t.Error("odd channel width accepted for slicing")
	}
}

func TestDoubleSlicesHalfWidth(t *testing.T) {
	d := MustNewDouble(doubleConfig())
	if got := d.Subnet(ClassRequest).FlitBytes(); got != 8 {
		t.Errorf("request slice flit size = %d, want 8", got)
	}
	if got := d.Subnet(ClassReply).FlitBytes(); got != 8 {
		t.Errorf("reply slice flit size = %d, want 8", got)
	}
}

func TestDoubleClassSeparation(t *testing.T) {
	d := MustNewDouble(doubleConfig())
	req := &Packet{Src: 0, Dst: 1, Class: ClassRequest, Bytes: 8}
	rep := &Packet{Src: 1, Dst: 0, Class: ClassReply, Bytes: 64}
	d.TryInject(req)
	d.TryInject(rep)
	runUntilQuiet(t, d, 1000)
	// Each subnet must have carried exactly its class.
	reqStats := d.Subnet(ClassRequest).Stats()
	repStats := d.Subnet(ClassReply).Stats()
	if reqStats.InjectedPackets[0] != 1 || repStats.InjectedPackets[1] != 1 {
		t.Errorf("classes not separated: req net %v, reply net %v",
			reqStats.InjectedPackets[0], repStats.InjectedPackets[1])
	}
	if len(d.Delivered(1)) != 1 || len(d.Delivered(0)) != 1 {
		t.Error("deliveries missing")
	}
}

func TestDoubleSerializationLatency(t *testing.T) {
	// A 64-byte reply is 8 flits on an 8B slice vs 4 on the 16B single
	// network: tail latency grows by the extra serialization.
	singleCfg := doubleConfig()
	singleCfg.NumVCs = 4 // single network needs class x phase VCs
	single := MustNewMesh(singleCfg)
	d := MustNewDouble(doubleConfig())
	ps := &Packet{Src: 1, Dst: 30, Class: ClassReply, Bytes: 64}
	pd := &Packet{Src: 1, Dst: 30, Class: ClassReply, Bytes: 64}
	single.TryInject(ps)
	d.TryInject(pd)
	runUntilQuiet(t, single, 1000)
	runUntilQuiet(t, d, 1000)
	if pd.NetworkLatency() != ps.NetworkLatency()+4 {
		t.Errorf("sliced latency = %d, single = %d; want +4 serialization",
			pd.NetworkLatency(), ps.NetworkLatency())
	}
}

func TestDoubleHeavyTrafficDrains(t *testing.T) {
	d := MustNewDouble(doubleConfig())
	topo := d.Subnet(ClassRequest).Topology()
	rng := xrand.New(21)
	comp := topo.ComputeNodes()
	mcs := topo.MCs()
	sent, recv := 0, 0
	const total = 2000
	for cycle := 0; cycle < 200000 && recv < total; cycle++ {
		if sent < total {
			var p *Packet
			if sent%2 == 0 {
				p = &Packet{Src: comp[rng.Intn(len(comp))], Dst: mcs[rng.Intn(len(mcs))],
					Class: ClassRequest, Bytes: 8}
			} else {
				p = &Packet{Src: mcs[rng.Intn(len(mcs))], Dst: comp[rng.Intn(len(comp))],
					Class: ClassReply, Bytes: 64}
			}
			if d.TryInject(p) {
				sent++
			}
		}
		d.Tick()
		recv += len(collectAll(d, topo.NumNodes()))
	}
	if recv != total {
		t.Fatalf("delivered %d/%d", recv, total)
	}
	merged := d.Stats()
	if merged.NetLatency.N() != total {
		t.Errorf("merged latency samples = %d, want %d", merged.NetLatency.N(), total)
	}
}

func TestDoubleCycleLockstep(t *testing.T) {
	d := MustNewDouble(doubleConfig())
	for i := 0; i < 17; i++ {
		d.Tick()
	}
	if d.Cycle() != 17 {
		t.Errorf("cycle = %d, want 17", d.Cycle())
	}
	if d.Subnet(ClassRequest).Cycle() != d.Subnet(ClassReply).Cycle() {
		t.Error("slices out of lockstep")
	}
}

func TestBalancedDoubleDelivers(t *testing.T) {
	cfg := doubleConfig()
	cfg.NumVCs = 4 // balanced slices need class x phase VCs
	d, err := NewDoubleBalanced(cfg)
	if err != nil {
		t.Fatal(err)
	}
	topo := d.Subnet(ClassRequest).Topology()
	rng := xrand.New(61)
	comp := topo.ComputeNodes()
	mcs := topo.MCs()
	sent, recv := 0, 0
	const total = 800
	for cycle := 0; cycle < 100000 && recv < total; cycle++ {
		if sent < total {
			var p *Packet
			if sent%2 == 0 {
				p = &Packet{Src: comp[rng.Intn(len(comp))], Dst: mcs[rng.Intn(len(mcs))],
					Class: ClassRequest, Bytes: 8}
			} else {
				p = &Packet{Src: mcs[rng.Intn(len(mcs))], Dst: comp[rng.Intn(len(comp))],
					Class: ClassReply, Bytes: 64}
			}
			if d.TryInject(p) {
				sent++
			}
		}
		d.Tick()
		recv += len(collectAll(d, topo.NumNodes()))
	}
	if recv != total {
		t.Fatalf("balanced double delivered %d/%d", recv, total)
	}
	// Both slices must have carried traffic of both kinds.
	for i := 0; i < 2; i++ {
		st := d.nets[i].Stats()
		var pkts uint64
		for _, n := range st.InjectedPackets {
			pkts += n
		}
		if pkts < total/4 {
			t.Errorf("slice %d carried only %d packets: not balanced", i, pkts)
		}
	}
}

func TestBalancedDoubleNeedsProtocolVCs(t *testing.T) {
	cfg := doubleConfig() // 2 VCs: too few for class x phase per slice
	if _, err := NewDoubleBalanced(cfg); err == nil {
		t.Error("balanced double accepted without protocol VCs")
	}
}

func TestBalancedBeatsDedicatedOnReplyHeavyTraffic(t *testing.T) {
	// With reply-dominated traffic, spreading replies over both slices uses
	// wires the dedicated split reserves for (nearly idle) requests.
	run := func(d *Double) int {
		topo := d.Subnet(ClassRequest).Topology()
		rng := xrand.New(62)
		comp := topo.ComputeNodes()
		mcs := topo.MCs()
		recv := 0
		for cycle := 0; cycle < 6000; cycle++ {
			for k := 0; k < 2; k++ {
				d.TryInject(&Packet{Src: mcs[rng.Intn(len(mcs))], Dst: comp[rng.Intn(len(comp))],
					Class: ClassReply, Bytes: 64})
			}
			d.Tick()
			recv += len(collectAll(d, topo.NumNodes()))
		}
		return recv
	}
	balCfg := doubleConfig()
	balCfg.NumVCs = 4
	dedicated := run(MustNewDouble(doubleConfig()))
	balanced := run(MustNewDoubleBalanced(balCfg))
	if balanced <= dedicated {
		t.Errorf("balanced (%d) not above dedicated (%d) on reply-heavy traffic",
			balanced, dedicated)
	}
}
