package noc

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

// shardTestMesh builds a mesh with the given shard count and the health
// monitors disabled, so tests can feed channels by hand without tripping
// the flit-conservation audit.
func shardTestMesh(t *testing.T, shards int) *Mesh {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Shards = shards
	cfg.Fault.WatchdogCycles = 0
	m, err := NewMesh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestShardPartitionInvariants checks the three structural facts the sharded
// kernel rests on: routers land in contiguous column bands, every channel is
// owned by its destination's shard, and exactly the cross-band channels get
// a mailbox — whose hard capacity equals the number of channels feeding it,
// the most the flow-control bound lets arrive in one cycle.
func TestShardPartitionInvariants(t *testing.T) {
	m := shardTestMesh(t, 4)
	n := &m.meshNet
	if len(n.shards) != 4 {
		t.Fatalf("got %d shards, want 4", len(n.shards))
	}
	for id, r := range n.routers {
		x := id % n.cfg.Width
		if want := n.shards[n.backend.ShardOf(NodeID(id), len(n.shards))]; r.sh != want {
			t.Fatalf("router %d (x=%d) in shard %d, want %d", id, x, r.sh.idx, want.idx)
		}
	}
	nbf := make([]int, len(n.shards))
	for _, ch := range n.flitChans {
		srcSh, dstSh := n.shardOf(ch.src), n.shardOf(ch.dst.p.node)
		if ch.sh != dstSh {
			t.Fatalf("flit channel %d owned by shard %d, want destination shard %d", ch.idx, ch.sh.idx, dstSh.idx)
		}
		sx, dx := int(ch.src)%n.cfg.Width, int(ch.dst.p.node)%n.cfg.Width
		if sx == dx && ch.xmail != nil {
			t.Fatalf("N/S channel %d (column %d) has a cross-shard mailbox", ch.idx, sx)
		}
		switch {
		case srcSh == dstSh:
			if ch.xmail != nil {
				t.Fatalf("intra-shard channel %d has a mailbox", ch.idx)
			}
		default:
			if ch.xmail != &srcSh.outFlit {
				t.Fatalf("cross-shard channel %d not wired to source shard %d's mailbox", ch.idx, srcSh.idx)
			}
			nbf[srcSh.idx]++
		}
	}
	nbc := make([]int, len(n.shards))
	for _, cc := range n.credChans {
		srcSh, dstSh := n.shardOf(cc.src), n.shardOf(cc.dst.p.node)
		if cc.sh != dstSh {
			t.Fatalf("credit channel %d owned by shard %d, want destination shard %d", cc.idx, cc.sh.idx, dstSh.idx)
		}
		if srcSh != dstSh {
			if cc.xmail != &srcSh.outCred {
				t.Fatalf("cross-shard credit channel %d not wired to source shard %d's mailbox", cc.idx, srcSh.idx)
			}
			nbc[srcSh.idx]++
		} else if cc.xmail != nil {
			t.Fatalf("intra-shard credit channel %d has a mailbox", cc.idx)
		}
	}
	for k, sh := range n.shards {
		if sh.outFlit.Cap() != nbf[k] {
			t.Errorf("shard %d flit mailbox cap %d, want boundary count %d", k, sh.outFlit.Cap(), nbf[k])
		}
		if sh.outCred.Cap() != nbc[k] {
			t.Errorf("shard %d credit mailbox cap %d, want boundary count %d", k, sh.outCred.Cap(), nbc[k])
		}
	}
}

// TestShardClamping pins the shard-count policy: requests are clamped to
// [1, Width], and fault injection forces the serial kernel so the single
// fault RNG keeps its draw order.
func TestShardClamping(t *testing.T) {
	if got := len(shardTestMesh(t, 100).shards); got != 6 {
		t.Errorf("Shards=100 on a 6-wide mesh: got %d shards, want 6 (clamp to Width)", got)
	}
	if got := len(shardTestMesh(t, 0).shards); got != 1 {
		t.Errorf("Shards=0: got %d shards, want 1", got)
	}
	if got := len(shardTestMesh(t, -3).shards); got != 1 {
		t.Errorf("Shards=-3: got %d shards, want 1", got)
	}
	cfg := DefaultConfig()
	cfg.Shards = 4
	cfg.Fault.Rate = 0.001
	m := MustNewMesh(cfg)
	if got := len(m.shards); got != 1 {
		t.Errorf("fault injection enabled: got %d shards, want 1 (forced serial)", got)
	}
}

// TestBoundaryMailboxHardBound fills one shard's outgoing flit mailbox to
// its credit-conservation bound — one flit per boundary channel, the most a
// single cycle can produce — and demands a panic on the first push past it.
// A silent grow would hide a broken single-send-per-channel invariant.
func TestBoundaryMailboxHardBound(t *testing.T) {
	m := shardTestMesh(t, 2)
	n := &m.meshNet
	var boundary []*channel
	for _, ch := range n.flitChans {
		if ch.xmail == &n.shards[0].outFlit {
			boundary = append(boundary, ch)
		}
	}
	if len(boundary) == 0 {
		t.Fatal("no boundary channels out of shard 0")
	}
	if got := n.shards[0].outFlit.Cap(); got != len(boundary) {
		t.Fatalf("mailbox cap %d != boundary channel count %d", got, len(boundary))
	}
	for _, ch := range boundary {
		ch.send(Flit{}, n.cycle+1)
	}
	defer func() {
		if recover() == nil {
			t.Error("push past the mailbox hard bound did not panic")
		}
	}()
	boundary[0].send(Flit{}, n.cycle+1)
}

// TestBoundaryMailboxWrapDrain runs one boundary channel through several
// times its mailbox's capacity, draining via the epilogue each cycle, so the
// ring head wraps repeatedly. Events must come out in send order and mark
// the owning shard's channel active list.
func TestBoundaryMailboxWrapDrain(t *testing.T) {
	m := shardTestMesh(t, 2)
	n := &m.meshNet
	var ch *channel
	for _, c := range n.flitChans {
		if c.xmail == &n.shards[0].outFlit {
			ch = c
			break
		}
	}
	if ch == nil {
		t.Fatal("no boundary channel out of shard 0")
	}
	rounds := 3*n.shards[0].outFlit.Cap() + 5
	for i := 0; i < rounds; i++ {
		ch.send(Flit{Seq: i}, n.cycle+1)
		n.epilogue()
		if ch.q.Len() != 1 {
			t.Fatalf("round %d: channel queue has %d events after drain, want 1", i, ch.q.Len())
		}
		if !ch.sh.flitActive.has(ch.idx) {
			t.Fatalf("round %d: drained channel not marked active in owning shard", i)
		}
		if ev := ch.q.Pop(); ev.flit.Seq != i {
			t.Fatalf("round %d: got flit seq %d, want %d (FIFO order broken across wrap)", i, ev.flit.Seq, i)
		}
		ch.sh.flitActive.clear(ch.idx)
	}
}

// refTraffic drives one randomized injection step against a mesh: the trace
// is a pure function of the xrand stream, so two meshes fed from identically
// seeded streams see byte-identical offered traffic.
func refTraffic(rng *xrand.Rand, nodes int) (src, dst NodeID, class TrafficClass, bytes int) {
	src = NodeID(rng.Intn(nodes))
	dst = NodeID(rng.Intn(nodes - 1))
	if dst >= src {
		dst++ // uniform over dst != src
	}
	class = TrafficClass(rng.Intn(int(NumClasses)))
	bytes = 8
	if rng.Bool(0.5) {
		bytes = 64
	}
	return src, dst, class, bytes
}

// TestShardedMatchesSerialReference is the reference-model cross-check: a
// serial mesh and a sharded mesh consume the same randomized traffic trace
// in lockstep, and every cycle the sharded kernel must eject exactly the
// packets the serial kernel ejects, at the same nodes, in the same order,
// with the same timestamps. Final counters and latency sums must match to
// the bit. This catches ordering bugs the aggregate golden digests could
// mask (e.g. two reorderings that cancel in a sum).
func TestShardedMatchesSerialReference(t *testing.T) {
	for _, shards := range []int{2, 4} {
		shards := shards
		t.Run(map[int]string{2: "two-shard", 4: "four-shard"}[shards], func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Seed = 99
			ref := MustNewMesh(cfg)
			cfg.Shards = shards
			shd := MustNewMesh(cfg)

			nodes := ref.Topology().NumNodes()
			// Two identically seeded streams, one per mesh, so packet
			// construction cannot leak state between the two models.
			rngRef := xrand.New(0xfeed)
			rngShd := xrand.New(0xfeed)

			const warm = 2500
			const drain = 8000
			for cycle := 0; cycle < warm+drain; cycle++ {
				if cycle < warm {
					for k := 0; k < 3; k++ {
						s1, d1, c1, b1 := refTraffic(rngRef, nodes)
						s2, d2, c2, b2 := refTraffic(rngShd, nodes)
						if s1 != s2 || d1 != d2 || c1 != c2 || b1 != b2 {
							t.Fatal("traffic streams diverged; test harness bug")
						}
						ok1 := ref.CanInject(s1, c1)
						ok2 := shd.CanInject(s2, c2)
						if ok1 != ok2 {
							t.Fatalf("cycle %d: CanInject(%d,%v) disagrees: serial=%v sharded=%v",
								cycle, s1, c1, ok1, ok2)
						}
						if !ok1 {
							continue
						}
						p1 := &Packet{Src: s1, Dst: d1, Class: c1, Bytes: b1}
						p2 := &Packet{Src: s2, Dst: d2, Class: c2, Bytes: b2}
						if !ref.TryInject(p1) || !shd.TryInject(p2) {
							t.Fatalf("cycle %d: inject disagreed after CanInject", cycle)
						}
					}
				}
				ref.Tick()
				shd.Tick()
				for node := 0; node < nodes; node++ {
					got := shd.Delivered(NodeID(node))
					want := ref.Delivered(NodeID(node))
					if len(got) != len(want) {
						t.Fatalf("cycle %d node %d: sharded delivered %d packets, serial %d",
							cycle, node, len(got), len(want))
					}
					for i := range want {
						w, g := want[i], got[i]
						if g.ID != w.ID || g.Src != w.Src || g.Dst != w.Dst || g.Class != w.Class ||
							g.InjectedAt != w.InjectedAt || g.ArrivedAt != w.ArrivedAt {
							t.Fatalf("cycle %d node %d slot %d: packet mismatch\n got  %+v\n want %+v",
								cycle, node, i, g, w)
						}
					}
				}
				if cycle >= warm && ref.Quiet() && shd.Quiet() {
					break
				}
			}
			if !ref.Quiet() || !shd.Quiet() {
				t.Fatal("meshes did not drain; raise drain budget")
			}

			rs, ss := ref.Stats(), shd.Stats()
			if rs.FlitHops != ss.FlitHops {
				t.Errorf("FlitHops: serial %d, sharded %d", rs.FlitHops, ss.FlitHops)
			}
			if rs.Cycles != ss.Cycles {
				t.Errorf("Cycles: serial %d, sharded %d", rs.Cycles, ss.Cycles)
			}
			for n := 0; n < nodes; n++ {
				if rs.InjectedFlits[n] != ss.InjectedFlits[n] || rs.EjectedFlits[n] != ss.EjectedFlits[n] {
					t.Errorf("node %d flit counters diverge: inj %d/%d ej %d/%d", n,
						rs.InjectedFlits[n], ss.InjectedFlits[n], rs.EjectedFlits[n], ss.EjectedFlits[n])
				}
			}
			// Latency sums must match BITWISE: the epilogue's node-ascending
			// sample replay exists precisely so float accumulation order is
			// identical to the serial kernel's ejection order.
			pairs := [][2]float64{
				{rs.NetLatency.Sum(), ss.NetLatency.Sum()},
				{rs.TotalLatency.Sum(), ss.TotalLatency.Sum()},
			}
			for c := 0; c < int(NumClasses); c++ {
				pairs = append(pairs, [2]float64{rs.LatencyByClass[c].Sum(), ss.LatencyByClass[c].Sum()})
			}
			for i, p := range pairs {
				if math.Float64bits(p[0]) != math.Float64bits(p[1]) {
					t.Errorf("latency sum %d not bit-identical: serial %x, sharded %x",
						i, math.Float64bits(p[0]), math.Float64bits(p[1]))
				}
			}
		})
	}
}
