package noc

import (
	"testing"

	"repro/internal/xrand"
)

// checkCreditConservation verifies, for every direction link and VC, that
//
//	upstream credits + flits on the wire + flits buffered downstream
//	+ credits on the wire back == buffer depth
//
// This is the fundamental credit-based flow-control invariant; any leak or
// double-count breaks it immediately.
func checkCreditConservation(t *testing.T, m *Mesh, cycle int) {
	t.Helper()
	n := &m.meshNet
	depth := n.cfg.BufDepth
	for id, r := range n.routers {
		for d := Port(0); d < numDirs; d++ {
			ch := r.outChans[d]
			if ch == nil {
				continue
			}
			down := ch.dst
			// Find the credit channel going back to (r, d).
			var back *creditChannel
			for _, cc := range n.credChans {
				if cc.dst == r && cc.dstPort == int(d) {
					back = cc
					break
				}
			}
			if back == nil {
				t.Fatalf("router %d dir %v: no credit channel", id, d)
			}
			for vc := 0; vc < n.cfg.NumVCs; vc++ {
				credits := r.outputs[d][vc].credits
				onWire := 0
				for i := 0; i < ch.q.Len(); i++ {
					if ch.q.At(i).flit.VC == vc {
						onWire++
					}
				}
				buffered := down.inputs[ch.dstPort][vc].buf.Len()
				creditsBack := 0
				for i := 0; i < back.q.Len(); i++ {
					if back.q.At(i).vc == vc {
						creditsBack++
					}
				}
				total := credits + onWire + buffered + creditsBack
				if total != depth {
					t.Fatalf("cycle %d router %d dir %v vc %d: credits=%d wire=%d buf=%d back=%d, sum %d != depth %d",
						cycle, id, d, vc, credits, onWire, buffered, creditsBack, total, depth)
				}
			}
		}
	}
}

// TestCreditConservationUnderLoad drives heavy mixed traffic and checks the
// invariant every cycle.
func TestCreditConservationUnderLoad(t *testing.T) {
	for _, cb := range []bool{false, true} {
		cfg := DefaultConfig()
		if cb {
			cfg.Checkerboard = true
			cfg.Routing = RoutingCheckerboard
			cfg.NumVCs = 4
			cfg.MCs = CheckerboardPlacement(6, 6, 8)
			cfg.MCInjPorts = 2
		}
		m := MustNewMesh(cfg)
		topo := m.Topology()
		rng := xrand.New(99)
		comp := topo.ComputeNodes()
		mcs := topo.MCs()
		for cycle := 0; cycle < 3000; cycle++ {
			if cycle < 2000 {
				for k := 0; k < 3; k++ {
					var p *Packet
					if k == 2 {
						p = &Packet{Src: mcs[rng.Intn(len(mcs))], Dst: comp[rng.Intn(len(comp))],
							Class: ClassReply, Bytes: 64}
					} else {
						p = &Packet{Src: comp[rng.Intn(len(comp))], Dst: mcs[rng.Intn(len(mcs))],
							Class: ClassRequest, Bytes: 8}
					}
					m.TryInject(p)
				}
			}
			m.Tick()
			collectAll(m, topo.NumNodes())
			checkCreditConservation(t, m, cycle)
		}
	}
}

// TestHalfRouterNeverTurns inspects every switch traversal in a loaded
// checkerboard mesh: flits entering a half-router on a direction port must
// leave straight through or eject.
func TestHalfRouterNeverTurns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Checkerboard = true
	cfg.Routing = RoutingCheckerboard
	cfg.NumVCs = 4
	cfg.MCs = CheckerboardPlacement(6, 6, 8)
	m := MustNewMesh(cfg)
	topo := m.Topology()
	rng := xrand.New(123)
	comp := topo.ComputeNodes()
	mcs := topo.MCs()
	// The legality check inside the router panics on an illegal turn, so
	// driving traffic through every half-router suffices.
	for cycle := 0; cycle < 4000; cycle++ {
		if cycle < 3000 {
			p := &Packet{Src: comp[rng.Intn(len(comp))], Dst: mcs[rng.Intn(len(mcs))],
				Class: ClassRequest, Bytes: 8}
			m.TryInject(p)
			q := &Packet{Src: mcs[rng.Intn(len(mcs))], Dst: comp[rng.Intn(len(comp))],
				Class: ClassReply, Bytes: 64}
			m.TryInject(q)
		}
		m.Tick()
		collectAll(m, topo.NumNodes())
	}
	if !m.Quiet() {
		for i := 0; i < 20000 && !m.Quiet(); i++ {
			m.Tick()
			collectAll(m, topo.NumNodes())
		}
	}
	if !m.Quiet() {
		t.Fatal("checkerboard mesh failed to drain")
	}
}

// TestVCClassIsolation checks that request flits never occupy reply VCs and
// vice versa on a class-split network.
func TestVCClassIsolation(t *testing.T) {
	cfg := DefaultConfig() // 2 VCs: vc0 = request, vc1 = reply
	m := MustNewMesh(cfg)
	topo := m.Topology()
	rng := xrand.New(7)
	comp := topo.ComputeNodes()
	mcs := topo.MCs()
	check := func(cycle int) {
		for id, r := range m.meshNet.routers {
			for in := 0; in < r.nIn; in++ {
				for vc := 0; vc < cfg.NumVCs; vc++ {
					buf := &r.inputs[in][vc].buf
					for i := 0; i < buf.Len(); i++ {
						f := buf.At(i)
						wantVC := 0
						if f.Pkt.Class == ClassReply {
							wantVC = 1
						}
						if vc != wantVC {
							t.Fatalf("cycle %d router %d: %v flit on vc %d", cycle, id, f.Pkt.Class, vc)
						}
					}
				}
			}
		}
	}
	for cycle := 0; cycle < 1500; cycle++ {
		if cycle < 1000 {
			m.TryInject(&Packet{Src: comp[rng.Intn(len(comp))], Dst: mcs[rng.Intn(len(mcs))],
				Class: ClassRequest, Bytes: 8})
			m.TryInject(&Packet{Src: mcs[rng.Intn(len(mcs))], Dst: comp[rng.Intn(len(comp))],
				Class: ClassReply, Bytes: 64})
		}
		m.Tick()
		collectAll(m, topo.NumNodes())
		check(cycle)
	}
}

// TestWormholeContiguityPerVC asserts flits of one packet stay in order on
// each VC buffer (no interleaving within a VC).
func TestWormholeContiguityPerVC(t *testing.T) {
	cfg := DefaultConfig()
	m := MustNewMesh(cfg)
	topo := m.Topology()
	rng := xrand.New(31)
	mcs := topo.MCs()
	comp := topo.ComputeNodes()
	check := func() {
		for _, r := range m.meshNet.routers {
			for in := 0; in < r.nIn; in++ {
				for vc := 0; vc < cfg.NumVCs; vc++ {
					buf := &r.inputs[in][vc].buf
					for i := 1; i < buf.Len(); i++ {
						cur, prev := buf.At(i), buf.At(i-1)
						if cur.Pkt == prev.Pkt {
							if cur.Seq != prev.Seq+1 {
								t.Fatalf("out-of-order flits of pkt %d: %d after %d",
									cur.Pkt.ID, cur.Seq, prev.Seq)
							}
						} else if !cur.Head {
							// A different packet may only start at a head flit.
							if prev.Tail {
								t.Fatalf("non-head flit of pkt %d follows tail of pkt %d",
									cur.Pkt.ID, prev.Pkt.ID)
							}
							t.Fatalf("interleaved packets %d and %d in one VC",
								prev.Pkt.ID, cur.Pkt.ID)
						}
					}
				}
			}
		}
	}
	for cycle := 0; cycle < 2000; cycle++ {
		if cycle < 1500 {
			m.TryInject(&Packet{Src: mcs[rng.Intn(len(mcs))], Dst: comp[rng.Intn(len(comp))],
				Class: ClassReply, Bytes: 64})
		}
		m.Tick()
		collectAll(m, topo.NumNodes())
		check()
	}
}
