package noc

import (
	"fmt"
	"testing"
)

// driveLaneProtocol runs the closed-loop request/reply protocol against a
// single network for `cycles` ticks and returns a digest of its stats.
func driveLaneProtocol(t *testing.T, m *Mesh, cycles int) string {
	t.Helper()
	backend := m.Backend()
	comp := backend.ComputeNodes()
	mcs := backend.MCs()
	var pool PacketPool
	inflight := make([]int, len(comp))
	rr := 0
	for c := 0; c < cycles; c++ {
		for i, node := range comp {
			for inflight[i] < 2 {
				p := pool.Get()
				p.Src, p.Dst = node, mcs[rr%len(mcs)]
				p.Class, p.Bytes = ClassRequest, 8
				p.Line = uint64(i)
				rr++
				if !m.TryInject(p) {
					pool.Put(p)
					break
				}
				inflight[i]++
			}
		}
		for _, mc := range mcs {
			for _, pkt := range m.Delivered(mc) {
				r := pool.Get()
				r.Src, r.Dst = mc, pkt.Src
				r.Class, r.Bytes = ClassReply, 64
				r.Line = pkt.Line
				if !m.TryInject(r) {
					pool.Put(r)
				}
				pool.Put(pkt)
			}
		}
		for _, node := range comp {
			for _, pkt := range m.Delivered(node) {
				inflight[pkt.Line]--
				pool.Put(pkt)
			}
		}
		m.Tick()
	}
	st := m.Stats()
	return fmt.Sprintf("hops=%d inj=%v ej=%v", st.FlitHops, st.InjectedFlits, st.EjectedFlits)
}

// TestLaneSetMatchesSoloNetworks pins the lane-batched network identity:
// lane i of a LaneSet, driven by a deterministic protocol, accumulates
// exactly the stats of a solo network built with Seed+i — sharing one
// Backend across lanes changes nothing observable.
func TestLaneSetMatchesSoloNetworks(t *testing.T) {
	for _, kind := range []BackendKind{BackendMesh, BackendRing, BackendBaseJump} {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Topology = kind
			switch kind {
			case BackendRing:
				cfg.NumVCs = 4 // dateline VC classes need the split
			case BackendBaseJump:
				cfg.FlitBytes = 64 // single-flit substrate wants line-sized flits
			}
			const lanes, cycles = 3, 400
			ls, err := NewLaneSet(cfg, lanes)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < lanes; i++ {
				got := driveLaneProtocol(t, ls.Lane(i), cycles)
				solo := cfg
				solo.Seed = cfg.Seed + uint64(i)
				ref, err := NewMesh(solo)
				if err != nil {
					t.Fatal(err)
				}
				want := driveLaneProtocol(t, ref, cycles)
				if got != want {
					t.Errorf("lane %d diverged from its solo network:\n got  %s\n want %s", i, got, want)
				}
			}
		})
	}
}

// TestLaneSetRetire pins retirement semantics: a retired lane stops ticking
// (its cycle counter freezes), leaves the live set, drops out of the
// min-reduced horizon, and stays readable.
func TestLaneSetRetire(t *testing.T) {
	ls := MustNewLaneSet(DefaultConfig(), 2)
	for i := 0; i < 10; i++ {
		ls.Tick()
	}
	ls.Retire(0)
	ls.Retire(0) // idempotent
	if ls.LiveCount() != 1 || ls.Live(0) || !ls.Live(1) {
		t.Fatalf("live set wrong after retire: count=%d live0=%v live1=%v",
			ls.LiveCount(), ls.Live(0), ls.Live(1))
	}
	frozen := ls.Lane(0).Stats().Cycles
	for i := 0; i < 5; i++ {
		ls.Tick()
	}
	if got := ls.Lane(0).Stats().Cycles; got != frozen {
		t.Errorf("retired lane still ticking: %d -> %d cycles", frozen, got)
	}
	if got := ls.Lane(1).Stats().Cycles; got != frozen+5 {
		t.Errorf("live lane cycles = %d, want %d", got, frozen+5)
	}
	// Both lanes idle: the min-reduced horizon must come from the live lane
	// only, and SkipAhead must advance only the live lane.
	ls.SkipAhead(3)
	if got := ls.Lane(0).Stats().Cycles; got != frozen {
		t.Errorf("SkipAhead advanced a retired lane to %d cycles", got)
	}
	ls.Retire(1)
	if ls.LiveCount() != 0 {
		t.Fatalf("live count = %d after retiring all", ls.LiveCount())
	}
	if h := ls.NextWorkCycle(); h != NeverCycle {
		t.Errorf("horizon of empty live set = %d, want NeverCycle", h)
	}
	if !ls.Quiet() {
		t.Error("empty live set should be vacuously quiet")
	}
}
