package noc

import (
	"fmt"
	"sync"

	"repro/internal/fault"
	"repro/internal/ring"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// Network is the closed-loop simulator's view of an interconnect: offer
// packets, advance cycles, and collect delivered packets per node. Mesh,
// DoubleMesh and Ideal all implement it.
type Network interface {
	// TryInject offers a packet at its source node. It returns false when
	// the source queue for the packet's class is full (the caller stalls).
	TryInject(p *Packet) bool
	// CanInject reports whether a packet of the given class would be
	// accepted at node n this cycle.
	CanInject(n NodeID, class TrafficClass) bool
	// Tick advances the network one interconnect cycle.
	Tick()
	// Delivered returns (and clears) the packets fully ejected at node n.
	// The returned slice is only valid until the next Delivered call for
	// the same node: implementations recycle the backing array to keep the
	// cycle loop allocation-free, so callers must consume (or copy) the
	// batch before asking again.
	Delivered(n NodeID) []*Packet
	// Cycle returns the elapsed interconnect cycles.
	Cycle() uint64
	// Quiet reports whether no packets are queued or in flight.
	Quiet() bool
	// Stats exposes aggregate counters.
	Stats() *NetStats
	// Health returns nil while the network is sound, or a sticky
	// *fault.HangError once the deadlock/livelock/invariant monitors trip.
	Health() error
	// NextWorkCycle returns a conservative bound on the next cycle count
	// at which Tick would do anything beyond the deterministic idle-tick
	// credits SkipAhead replays, or NeverCycle when only an injection can
	// create work. "Conservative" means it may name an earlier cycle than
	// the real one (forcing a harmless edge-by-edge tick) but never a
	// later one.
	NextWorkCycle() uint64
	// SkipAhead credits k consecutive idle ticks in O(1), bit-identical
	// to calling Tick k times under NextWorkCycle's guarantee. Callers
	// must not skip at or past the cycle NextWorkCycle returned and must
	// recompute the horizon after any injection.
	SkipAhead(k uint64)
}

// NeverCycle is the NextWorkCycle sentinel for "idle until an external
// event (an injection) creates work".
const NeverCycle = ^uint64(0)

// NetStats aggregates network activity.
type NetStats struct {
	Cycles          uint64
	FlitHops        uint64 // switch traversals, network-wide
	InjectedFlits   []uint64
	InjectedPackets []uint64
	InjectedBytes   []uint64 // packet payload bytes offered per source node
	EjectedFlits    []uint64
	NetLatency      stats.Mean // head injection -> tail ejection
	TotalLatency    stats.Mean // includes source queueing
	LatencyByClass  [NumClasses]stats.Mean

	// Fault-injection and resilience counters (all zero when faults are off).
	CorruptFlits     uint64        // flit deliveries struck by a link fault
	DroppedPackets   uint64        // packets failing the end-to-end check at ejection
	DroppedFlits     uint64        // flits belonging to dropped packets
	DuplicatePackets uint64        // late copies of already-delivered transfers
	Retransmits      uint64        // wire packets re-injected by the timeout
	LostPackets      uint64        // transfers abandoned after MaxRetries
	LostCredits      uint64        // credits delayed by the resync protocol
	StuckVCFaults    uint64        // stuck-VC faults placed
	RetriesPerPacket stats.IntDist // retries per delivered transfer
}

// InjectionRate returns node n's injection rate in flits/cycle.
func (s *NetStats) InjectionRate(n NodeID) float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.InjectedFlits[n]) / float64(s.Cycles)
}

// AcceptedFlitsPerCycle returns network-wide accepted traffic averaged over
// all nodes, in flits/cycle/node.
func (s *NetStats) AcceptedFlitsPerCycle() float64 {
	if s.Cycles == 0 || len(s.InjectedFlits) == 0 {
		return 0
	}
	var total uint64
	for _, f := range s.InjectedFlits {
		total += f
	}
	return float64(total) / float64(s.Cycles) / float64(len(s.InjectedFlits))
}

// AcceptedBytesPerCycle returns accepted traffic averaged over all nodes,
// in payload bytes/cycle/node (the §III-B classification metric).
func (s *NetStats) AcceptedBytesPerCycle() float64 {
	if s.Cycles == 0 || len(s.InjectedBytes) == 0 {
		return 0
	}
	var total uint64
	for _, b := range s.InjectedBytes {
		total += b
	}
	return float64(total) / float64(s.Cycles) / float64(len(s.InjectedBytes))
}

// Config parameterizes a network (defaults are Table III).
type Config struct {
	// Topology selects the interconnect backend; the zero value is the 2D
	// mesh. Width×Height always names the node count; the ring backend
	// arranges those nodes in id order around a circle.
	Topology         BackendKind
	Width, Height    int
	FlitBytes        int
	NumVCs           int
	BufDepth         int         // flits per VC
	RouterStages     int         // full-router pipeline depth
	HalfRouterStages int         // half-router pipeline depth
	ChannelLatency   uint64      // cycles
	CreditLatency    uint64      // cycles
	Checkerboard     bool        // half-routers at odd-parity tiles
	Routing          RoutingAlgo // DOR or checkerboard routing
	SplitClasses     bool        // reserve disjoint VCs for request/reply
	MCs              []NodeID    // memory-controller tiles
	MCInjPorts       int         // injection ports at MC routers (2P: 2)
	MCEjPorts        int         // ejection ports at MC routers
	SrcQueueCap      int         // source queue capacity per class, packets
	EjQueueCap       int         // ejection queue capacity, flits
	Seed             uint64
	Fault            fault.Config // fault injection + health monitoring policy

	// Shards partitions the network into contiguous bands (mesh/basejump:
	// column bands; ring: arc segments) that tick on parallel worker
	// goroutines (see shard.go). 0 or 1 runs the serial kernel; any value
	// is clamped to the backend's MaxShards, and fault injection forces 1 (the
	// injector's RNG draw order cannot be preserved across shards). Results
	// are bit-identical for every value, so Shards never needs to appear in
	// cache keys or config names.
	Shards int
}

// DefaultConfig returns the paper's baseline mesh (Tables II/III): 6×6,
// 16-byte channels, 2 VCs × 8-flit buffers, 4-stage routers, 1-cycle
// channels, DOR, MCs on the top and bottom rows.
func DefaultConfig() Config {
	return Config{
		Width: 6, Height: 6,
		FlitBytes:        16,
		NumVCs:           2,
		BufDepth:         8,
		RouterStages:     4,
		HalfRouterStages: 3,
		ChannelLatency:   1,
		CreditLatency:    1,
		Checkerboard:     false,
		Routing:          RoutingDOR,
		SplitClasses:     true,
		MCs:              TopBottomPlacement(6, 6, 8),
		MCInjPorts:       1,
		MCEjPorts:        1,
		SrcQueueCap:      8,
		EjQueueCap:       8,
		Seed:             1,
		Fault:            fault.DefaultConfig(),
	}
}

// vcPlan maps (traffic class, routing phase) to the allowed output VCs.
type vcPlan struct {
	sets [NumClasses][2][]int
}

func buildVCPlan(numVCs int, split bool, phases int) (vcPlan, error) {
	div := 1
	if split {
		div *= 2
	}
	if phases > 1 {
		div *= 2 // two-phase routing needs disjoint phase VC classes
	}
	if numVCs < div || numVCs%div != 0 {
		return vcPlan{}, fmt.Errorf("noc: %d VCs not divisible across %d class/phase sets", numVCs, div)
	}
	per := numVCs / div
	var p vcPlan
	for class := 0; class < int(NumClasses); class++ {
		for phase := 0; phase < 2; phase++ {
			base := 0
			if split {
				base += class * (numVCs / 2)
			}
			if phases > 1 {
				base += phase * per
			}
			set := make([]int, per)
			for i := range set {
				set[i] = base + i
			}
			p.sets[class][phase] = set
		}
	}
	return p, nil
}

func (p *vcPlan) allowed(class TrafficClass, yxPhase bool) []int {
	phase := 0
	if yxPhase {
		phase = 1
	}
	return p.sets[class][phase]
}

// Mesh is the cycle-level network engine. Despite the historical name it
// serves every topology backend (mesh, ring, basejump): routers, VCs,
// credits, NIs, sharding and fault injection are backend-agnostic, and the
// backend contributes geometry and routing.
type Mesh struct{ meshNet }

type meshNet struct {
	cfg       Config
	backend   Backend
	topo      *Topology // mesh geometry; nil for non-mesh backends
	vcs       vcPlan
	routers   []*router
	nis       []*netIface
	flitChans []*channel
	credChans []*creditChannel
	cycle     uint64
	rng       *xrand.Rand
	stats     NetStats
	active    int
	nextPkt   uint64

	// Active-component work lists live on the shards: one bitset per Tick
	// phase per shard, indexed like the matching component slice but only
	// ever holding bits for shard-owned components. A component sets its
	// owner's bit when it gains work (a queued event, packet or flit) and
	// the phase loop clears the bit once the component goes idle, so the
	// common case — most tiles idle — costs nothing per cycle. Bits are
	// only ever set for phases at or after the setter's own (channel sends
	// from the router phase target the NEXT cycle's channel phase), so the
	// in-order bitset iteration visits exactly the components the dense
	// loops would have found non-idle, keeping equal-seeded runs
	// bit-identical. A serial mesh is simply one shard covering every
	// column.
	shards []*meshShard
	tickWG sync.WaitGroup

	// interScratch is the reusable candidate buffer for checkerboard
	// case-2 intermediate selection, sized once to the node count so route
	// planning never allocates.
	interScratch []NodeID

	// Resilience machinery (see resilience.go). fs is nil at fault rate 0,
	// wd is nil with the watchdog disabled; both nil-paths leave behaviour
	// bit-identical to a build without the subsystem.
	fs         *faultState
	wd         *fault.Watchdog
	health     *fault.HangError
	moveCount  uint64 // monotonic flit-movement counter for the watchdog
	hopBudget  int    // livelock bound, switch traversals per wire packet
	auditEvery uint64 // flit-conservation audit period
}

// NewMesh validates cfg and builds the network.
func NewMesh(cfg Config) (*Mesh, error) {
	backend, err := BuildBackend(cfg)
	if err != nil {
		return nil, err
	}
	return newMeshNet(cfg, backend)
}

// NewMeshWithBackend builds a network on a prebuilt backend, so lane-batched
// seed replicas of one configuration (see core.RunLanes) pay for geometry and
// route tables once. Backends are immutable at runtime — PlanRoute threads
// the caller's rng and scratch through — so sharing one across networks is
// race-free. cfg must describe the same substrate the backend was built from.
func NewMeshWithBackend(cfg Config, backend Backend) (*Mesh, error) {
	if backend == nil {
		return nil, fmt.Errorf("noc: NewMeshWithBackend needs a backend")
	}
	if backend.Kind() != cfg.Topology {
		return nil, fmt.Errorf("noc: backend is %v but config wants %v", backend.Kind(), cfg.Topology)
	}
	if got, want := backend.NumNodes(), cfg.Width*cfg.Height; got != want {
		return nil, fmt.Errorf("noc: backend has %d nodes but config describes %d", got, want)
	}
	mcs := backend.MCs()
	if len(mcs) != len(cfg.MCs) {
		return nil, fmt.Errorf("noc: backend has %d MCs but config places %d", len(mcs), len(cfg.MCs))
	}
	for i, mc := range mcs {
		if mc != cfg.MCs[i] {
			return nil, fmt.Errorf("noc: backend MC %d is node %d but config places node %d", i, mc, cfg.MCs[i])
		}
	}
	return newMeshNet(cfg, backend)
}

// newMeshNet builds the network body on an already-validated backend.
func newMeshNet(cfg Config, backend Backend) (*Mesh, error) {
	if cfg.FlitBytes <= 0 || cfg.BufDepth <= 0 || cfg.NumVCs <= 0 {
		return nil, fmt.Errorf("noc: FlitBytes, BufDepth and NumVCs must be positive")
	}
	if cfg.RouterStages <= 0 || cfg.HalfRouterStages <= 0 {
		return nil, fmt.Errorf("noc: router stages must be positive")
	}
	if cfg.MCInjPorts <= 0 || cfg.MCEjPorts <= 0 {
		return nil, fmt.Errorf("noc: MC port counts must be positive")
	}
	if cfg.SrcQueueCap <= 0 || cfg.EjQueueCap <= 0 {
		return nil, fmt.Errorf("noc: queue capacities must be positive")
	}
	plan, err := buildVCPlan(cfg.NumVCs, cfg.SplitClasses, backend.Phases())
	if err != nil {
		return nil, err
	}
	if err := cfg.Fault.Validate(); err != nil {
		return nil, err
	}
	m := &Mesh{}
	n := &m.meshNet
	n.cfg, n.backend, n.vcs, n.rng = cfg, backend, plan, xrand.New(cfg.Seed)
	if mb, ok := backend.(interface{ topology() *Topology }); ok {
		n.topo = mb.topology()
	}
	if cfg.Fault.Enabled() {
		n.fs = newFaultState(cfg.Fault)
	}
	if cfg.Fault.Monitored() {
		n.wd = fault.NewWatchdog(cfg.Fault.WatchdogCycles)
		n.hopBudget = cfg.Fault.HopBudget
		if n.hopBudget <= 0 {
			n.hopBudget = 16 * (cfg.Width + cfg.Height)
		}
		n.auditEvery = cfg.Fault.AuditCycles
		if n.auditEvery == 0 {
			n.auditEvery = cfg.Fault.WatchdogCycles / 4
		}
	}
	nNodes := backend.NumNodes()
	n.stats.InjectedFlits = make([]uint64, nNodes)
	n.stats.InjectedPackets = make([]uint64, nNodes)
	n.stats.InjectedBytes = make([]uint64, nNodes)
	n.stats.EjectedFlits = make([]uint64, nNodes)
	n.interScratch = make([]NodeID, 0, nNodes)

	for id := 0; id < nNodes; id++ {
		node := NodeID(id)
		p := routerParams{
			node:     node,
			half:     backend.IsHalf(node),
			numVCs:   cfg.NumVCs,
			bufDepth: cfg.BufDepth,
			nInj:     1,
			nEj:      1,
			stages:   cfg.RouterStages,
			chanLat:  cfg.ChannelLatency,
			credLat:  cfg.CreditLatency,
			ejCap:    cfg.EjQueueCap,
		}
		if p.half {
			p.stages = cfg.HalfRouterStages
		}
		if backend.IsMC(node) {
			p.nInj = cfg.MCInjPorts
			p.nEj = cfg.MCEjPorts
		}
		n.routers = append(n.routers, newRouter(p, n))
	}
	// Wire direction channels and credits. Channel event queues are bounded
	// by credit flow control: at most numVCs*bufDepth flits (or credits) can
	// be in flight on one link.
	chanCap := cfg.NumVCs * cfg.BufDepth
	for id := 0; id < nNodes; id++ {
		r := n.routers[id]
		for d := Port(0); d < numDirs; d++ {
			nb := backend.Neighbor(NodeID(id), d)
			if nb < 0 {
				continue
			}
			ch := &channel{idx: len(n.flitChans), src: NodeID(id), dst: n.routers[nb], dstPort: int(d.opposite())}
			ch.q = ring.New[flitEvent](chanCap, chanCap)
			r.outChans[d] = ch
			n.flitChans = append(n.flitChans, ch)
			cc := &creditChannel{idx: len(n.credChans), src: nb, dst: r, dstPort: int(d)}
			cc.q = ring.New[creditEvent](chanCap, chanCap)
			n.routers[nb].credChans[int(d.opposite())] = cc
			n.credChans = append(n.credChans, cc)
			for v := 0; v < cfg.NumVCs; v++ {
				r.outputs[d][v].credits = cfg.BufDepth
			}
		}
	}
	for id := 0; id < nNodes; id++ {
		n.nis = append(n.nis, newNetIface(NodeID(id), n.routers[id], n))
	}
	n.buildShards(cfg.Shards)
	return m, nil
}

// MustNewMesh is NewMesh but panics on error.
func MustNewMesh(cfg Config) *Mesh {
	m, err := NewMesh(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Topology exposes the mesh geometry, or nil for backends without one
// (ring). Prefer Backend for topology-agnostic callers.
func (n *meshNet) Topology() *Topology { return n.topo }

// Backend exposes the topology backend.
func (n *meshNet) Backend() Backend { return n.backend }

// FlitBytes returns the channel flit size.
func (n *meshNet) FlitBytes() int { return n.cfg.FlitBytes }

// flitsFor sizes a payload in flits, enforcing the single-flit contract of
// backends whose packets must fit one channel word (basejump).
func (n *meshNet) flitsFor(bytes int) int {
	f := flitCount(bytes, n.cfg.FlitBytes)
	if f > 1 && n.backend.SingleFlit() {
		panic(fmt.Sprintf("noc: %d-byte packet exceeds the %d-byte single-flit channel of the %s backend",
			bytes, n.cfg.FlitBytes, n.backend.Kind()))
	}
	return f
}

// Cycle returns the elapsed cycles.
func (n *meshNet) Cycle() uint64 { return n.cycle }

// Stats returns the live counters.
func (n *meshNet) Stats() *NetStats { return &n.stats }

// Quiet reports whether the network holds no packets and no transfer is
// awaiting a retransmission timeout.
func (n *meshNet) Quiet() bool {
	return n.active == 0 && (n.fs == nil || n.fs.pending == 0)
}

// CanInject reports source-queue space for class at node.
func (n *meshNet) CanInject(node NodeID, class TrafficClass) bool {
	return !n.nis[node].srcQ[class].Full()
}

// TryInject offers p at p.Src. On success the network owns the packet until
// it reappears in Delivered(p.Dst).
func (n *meshNet) TryInject(p *Packet) bool {
	if p.Src < 0 || int(p.Src) >= n.backend.NumNodes() || p.Dst < 0 || int(p.Dst) >= n.backend.NumNodes() {
		panic(fmt.Sprintf("noc: inject with bad endpoints %d->%d", p.Src, p.Dst))
	}
	if !n.CanInject(p.Src, p.Class) {
		return false
	}
	yx, inter, err := n.backend.PlanRoute(p.Src, p.Dst, n.rng, n.interScratch)
	if err != nil {
		panic(err)
	}
	p.YXPhase, p.Intermediate = yx, inter
	p.ID = n.nextPkt
	n.nextPkt++
	p.OfferedAt = n.cycle
	n.nis[p.Src].enqueue(p)
	n.active++
	if n.fs != nil {
		n.fs.onInject(n, p)
	}
	return true
}

// Delivered returns and clears packets assembled at node. The batch and its
// spare predecessor are double-buffered per node; the returned slice is
// valid until the next Delivered call for the same node.
func (n *meshNet) Delivered(node NodeID) []*Packet {
	ni := n.nis[node]
	out := ni.delivered
	ni.delivered = ni.spare[:0]
	ni.spare = out
	return out
}

// Tick advances one network cycle: the serial prologue (cycle count, fault
// machinery), the shard segments — each phase walking only its active
// components in ascending index order, the same order the dense loops used,
// so arbitration and fault-RNG draw sequences are unchanged — and the serial
// epilogue (boundary hand-off, counter/sample merge, health monitors). With
// one shard the segment runs inline and the tick is the serial kernel; with
// more, the calling goroutine runs shard 0 itself while the executor runs
// the rest, and the WaitGroup join is the cycle barrier.
func (n *meshNet) Tick() {
	n.tickPrologue()
	if len(n.shards) == 1 {
		n.shards[0].runSegment(n.cycle)
	} else {
		n.tickWG.Add(len(n.shards) - 1)
		for _, sh := range n.shards[1:] {
			submitShard(&sh.task)
		}
		n.shards[0].task.execute()
		n.tickWG.Wait()
	}
	n.epilogue()
}

func (n *meshNet) tickPrologue() {
	n.cycle++
	if n.fs != nil {
		n.fs.tick(n)
	}
}

// tickAsync starts a cycle and dispatches every shard segment (including
// shard 0) to the executor without waiting, so a Double network can overlap
// its two slices' cycles; tickJoin completes it. The caller must pair every
// tickAsync with a tickJoin before touching the network again.
func (n *meshNet) tickAsync() {
	n.tickPrologue()
	n.tickWG.Add(len(n.shards))
	for _, sh := range n.shards {
		submitShard(&sh.task)
	}
}

func (n *meshNet) tickJoin() {
	n.tickWG.Wait()
	n.epilogue()
}

// NextWorkCycle scans the per-shard work lists for the earliest cycle with
// real work: any queued injection, busy router, pending ejection or parked
// boundary event means the very next tick works; otherwise the earliest
// due channel/credit event (flit-channel dues are monotonic so the front
// is the minimum; resync-delayed credits are not, so credit queues scan in
// full). Fault injection draws its RNG every cycle and a tripped monitor
// must keep reporting, so both force edge-by-edge ticking. With an armed
// deadlock watchdog and work in flight, the horizon also never passes the
// cycle the watchdog would trip, so a wedged network is detected on
// exactly the same cycle as when stepping.
func (n *meshNet) NextWorkCycle() uint64 {
	if n.fs != nil || n.health != nil {
		return n.cycle + 1
	}
	next := NeverCycle
	for _, sh := range n.shards {
		if !sh.injActive.isEmpty() || !sh.rtrActive.isEmpty() || !sh.ejActive.isEmpty() ||
			sh.outFlit.Len() > 0 || sh.outCred.Len() > 0 {
			return n.cycle + 1
		}
		sh.flitActive.forEach(func(i int) {
			if q := &n.flitChans[i].q; q.Len() > 0 {
				if d := q.Front().due; d < next {
					next = d
				}
			}
		})
		sh.credActive.forEach(func(i int) {
			q := &n.credChans[i].q
			for j := 0; j < q.Len(); j++ {
				if d := q.At(j).due; d < next {
					next = d
				}
			}
		})
	}
	if n.wd != nil && n.inFlightTotal() > 0 {
		// observeHealth ran at the last cycle boundary, so the watchdog is
		// synced and an un-tripped monitor means lastMove+Window is still
		// ahead of the current cycle.
		if trip := n.wd.LastMovement() + n.wd.Window; trip < next {
			next = trip
		}
	}
	if next <= n.cycle {
		next = n.cycle + 1
	}
	return next
}

// SkipAhead credits k idle ticks: with no due events and no active
// components, a tick is exactly cycle/stat increments plus the end-of-
// cycle health observation, which is replayed once at the landing cycle
// (the intermediate observations are no-ops: an idle network resets the
// watchdog's movement mark, which the final observation reproduces, and
// the conservation audit is pure on a consistent network).
func (n *meshNet) SkipAhead(k uint64) {
	n.cycle += k
	n.stats.Cycles += k
	n.observeHealth()
}
