package noc

import "fmt"

// Double is the channel-sliced network of §IV-C: two physical mesh networks
// at half channel width. In the paper's dedicated form one slice carries
// request traffic and the other replies, which needs no protocol-deadlock
// VCs; the alternative §IV-C mentions is a load-balanced pair where both
// slices carry both classes (each slice then splits its VCs by class).
// Either way, the quadratic dependence of crossbar area on channel width
// makes the pair cheaper than one full-width network (Table VI).
type Double struct {
	nets     [2]*Mesh
	balanced bool
	overlap  bool    // tick the slices concurrently (cfg.Shards > 1)
	rr       []uint8 // per-source slice rotation (balanced mode)
}

// NewDouble builds the paper's dedicated pair from cfg. cfg describes the
// equivalent single network: each slice gets cfg.FlitBytes/2-byte channels
// and all of its VCs for a single traffic class (cfg.SplitClasses is
// ignored).
func NewDouble(cfg Config) (*Double, error) {
	return newDouble(cfg, false)
}

// NewDoubleBalanced builds the load-balanced alternative: both slices carry
// both classes (so each slice keeps class-split VCs against protocol
// deadlock) and every source spreads its packets across the slices
// round-robin.
func NewDoubleBalanced(cfg Config) (*Double, error) {
	return newDouble(cfg, true)
}

func newDouble(cfg Config, balanced bool) (*Double, error) {
	if cfg.FlitBytes%2 != 0 {
		return nil, fmt.Errorf("noc: cannot slice odd channel width %d", cfg.FlitBytes)
	}
	if cfg.Topology.singleFlit() {
		return nil, fmt.Errorf("noc: cannot channel-slice the single-flit %s backend (half-width flits could no longer carry a packet)", cfg.Topology)
	}
	// The slices are independent networks, so a shard budget of S splits
	// into S/2-shard groups ticking concurrently (tickAsync overlaps the
	// slices; each mesh further clamps its own count). The two independent
	// per-slice fault streams stay deterministic under overlap because each
	// slice's draws happen inside its own single-shard segment.
	d := &Double{balanced: balanced, overlap: cfg.Shards > 1}
	for c := 0; c < 2; c++ {
		sub := cfg
		sub.FlitBytes = cfg.FlitBytes / 2
		sub.SplitClasses = balanced
		sub.Seed = cfg.Seed + uint64(c)
		sub.Fault.Seed = cfg.Fault.Seed + uint64(c) // decorrelate the slices' fault streams
		sub.Shards = (cfg.Shards + 1) / 2
		m, err := NewMesh(sub)
		if err != nil {
			return nil, err
		}
		d.nets[c] = m
	}
	if balanced {
		d.rr = make([]uint8, cfg.Width*cfg.Height)
	}
	return d, nil
}

// MustNewDouble is NewDouble but panics on error.
func MustNewDouble(cfg Config) *Double {
	d, err := NewDouble(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// MustNewDoubleBalanced is NewDoubleBalanced but panics on error.
func MustNewDoubleBalanced(cfg Config) *Double {
	d, err := NewDoubleBalanced(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Subnet returns the physical network carrying class c.
func (d *Double) Subnet(c TrafficClass) *Mesh { return d.nets[c] }

// CanInject checks whether some slice can take a packet of class at n.
func (d *Double) CanInject(n NodeID, class TrafficClass) bool {
	if !d.balanced {
		return d.nets[class].CanInject(n, class)
	}
	return d.nets[0].CanInject(n, class) || d.nets[1].CanInject(n, class)
}

// TryInject routes p to its class's slice (dedicated) or to the source's
// next slice in rotation (balanced), falling back to the other slice when
// the preferred one is full.
func (d *Double) TryInject(p *Packet) bool {
	if !d.balanced {
		return d.nets[p.Class].TryInject(p)
	}
	first := int(d.rr[p.Src]) % 2
	d.rr[p.Src]++
	if d.nets[first].TryInject(p) {
		return true
	}
	return d.nets[1-first].TryInject(p)
}

// Tick advances both slices. With a shard budget above one the slices —
// independent networks that never touch each other's state mid-cycle —
// overlap: both dispatch their shard groups to the executor before either
// joins, so a Double run uses its full budget even when each slice clamps
// to few shards. The serial order (slice 0 then slice 1) is preserved for
// the epilogues, keeping results bit-identical to sequential ticking.
func (d *Double) Tick() {
	if d.overlap {
		d.nets[0].tickAsync()
		d.nets[1].tickAsync()
		d.nets[0].tickJoin()
		d.nets[1].tickJoin()
		return
	}
	for _, n := range d.nets {
		n.Tick()
	}
}

// Delivered merges deliveries from both slices.
func (d *Double) Delivered(node NodeID) []*Packet {
	out := d.nets[0].Delivered(node)
	if more := d.nets[1].Delivered(node); len(more) > 0 {
		out = append(out, more...)
	}
	return out
}

// Cycle returns elapsed cycles (slices tick in lockstep).
func (d *Double) Cycle() uint64 { return d.nets[0].Cycle() }

// Quiet reports whether both slices are empty.
func (d *Double) Quiet() bool { return d.nets[0].Quiet() && d.nets[1].Quiet() }

// Health returns the first slice's verdict that is non-nil.
func (d *Double) Health() error {
	for _, n := range d.nets {
		if err := n.Health(); err != nil {
			return err
		}
	}
	return nil
}

// NextWorkCycle returns the earlier of the two slices' horizons; the
// slices tick in lockstep so their cycle counters agree.
func (d *Double) NextWorkCycle() uint64 {
	a, b := d.nets[0].NextWorkCycle(), d.nets[1].NextWorkCycle()
	if b < a {
		return b
	}
	return a
}

// SkipAhead credits k idle ticks to both slices (serially, matching the
// epilogue order of Tick).
func (d *Double) SkipAhead(k uint64) {
	d.nets[0].SkipAhead(k)
	d.nets[1].SkipAhead(k)
}

// Stats merges both slices' counters into a fresh snapshot.
func (d *Double) Stats() *NetStats {
	a, b := d.nets[0].Stats(), d.nets[1].Stats()
	merged := &NetStats{
		Cycles:   a.Cycles,
		FlitHops: a.FlitHops + b.FlitHops,
	}
	merged.InjectedFlits = addSlices(a.InjectedFlits, b.InjectedFlits)
	merged.InjectedPackets = addSlices(a.InjectedPackets, b.InjectedPackets)
	merged.InjectedBytes = addSlices(a.InjectedBytes, b.InjectedBytes)
	merged.EjectedFlits = addSlices(a.EjectedFlits, b.EjectedFlits)
	merged.NetLatency = a.NetLatency.Merge(b.NetLatency)
	merged.TotalLatency = a.TotalLatency.Merge(b.TotalLatency)
	for c := range merged.LatencyByClass {
		merged.LatencyByClass[c] = a.LatencyByClass[c].Merge(b.LatencyByClass[c])
	}
	merged.CorruptFlits = a.CorruptFlits + b.CorruptFlits
	merged.DroppedPackets = a.DroppedPackets + b.DroppedPackets
	merged.DroppedFlits = a.DroppedFlits + b.DroppedFlits
	merged.DuplicatePackets = a.DuplicatePackets + b.DuplicatePackets
	merged.Retransmits = a.Retransmits + b.Retransmits
	merged.LostPackets = a.LostPackets + b.LostPackets
	merged.LostCredits = a.LostCredits + b.LostCredits
	merged.StuckVCFaults = a.StuckVCFaults + b.StuckVCFaults
	merged.RetriesPerPacket = a.RetriesPerPacket.Merge(b.RetriesPerPacket)
	return merged
}

func addSlices(a, b []uint64) []uint64 {
	out := make([]uint64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}
