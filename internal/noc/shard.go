package noc

import (
	"runtime/pprof"
	"strconv"

	"repro/internal/ring"
)

// The sharded cycle kernel partitions the network into the backend's
// contiguous bands — column bands on the mesh and basejump backends, arc
// segments on the ring — and runs each band's channel/NI/router phases on
// its own worker goroutine, with a serial epilogue at the cycle boundary.
// Determinism is the design constraint: a sharded run must be bit-identical
// to the serial kernel. The scheme rests on three structural facts:
//
//  1. Single writer per channel. Every flit channel and credit channel has
//     exactly one sending router, which sends at most one event per cycle
//     (one switch-allocation grant per output port; one credit per input
//     port). Channel queues are owned by the DESTINATION router's shard,
//     which is the only code that pops them (the deliver phases).
//  2. Bands only share boundary links. On the mesh, north/south channels
//     stay inside a column band, so cross-shard traffic is exactly the E/W
//     links that straddle a band edge; on the ring, it is the pair of links
//     at each arc boundary. A cross-shard send is buffered in the sending
//     shard's outgoing mailbox ring instead of touching the foreign queue;
//     the serial epilogue drains the mailboxes into the owning queues in
//     shard order. Channel latency means every sent event is due no earlier
//     than the next cycle, so moving the hand-off from "during the cycle"
//     to "end of the cycle" is invisible to the simulation.
//  3. Order-sensitive global state is deferred and replayed. Float latency
//     accumulators (stats.Mean sums depend on addition order), the livelock
//     verdict (first trip wins) and scalar counters are recorded per shard
//     during the parallel segment and merged in the epilogue in the exact
//     order the serial kernel would have produced.
//
// During the parallel segment shards touch disjoint state only, so one
// dispatch and one join per cycle suffice — there is no mid-cycle barrier
// to amortize, and idle-shard workers park on the executor channel.

// latSample is one delivered packet's deferred latency observation. Samples
// are replayed into the stats.Mean accumulators in ascending node order
// (the serial ejection-phase order), keeping float sums bit-identical.
type latSample struct {
	node  NodeID
	net   float64
	tot   float64
	class TrafficClass
}

// flitMail is a cross-shard flit send parked in the source shard's mailbox.
type flitMail struct {
	ch *channel
	ev flitEvent
}

// credMail is a cross-shard credit send parked in the source shard's mailbox.
type credMail struct {
	cc *creditChannel
	ev creditEvent
}

// meshShard is one column band of the mesh: the per-phase active bitsets for
// the components it owns, outgoing boundary mailboxes, and the deferred
// fragments of global state its segment produces each cycle. Active sets are
// indexed over the GLOBAL component index space but only ever hold bits for
// owned components, so no bitset word is shared between shards.
type meshShard struct {
	idx int
	net *meshNet

	// Per-phase active work lists (see the activeSet comment in network.go);
	// the per-shard split is what lets segments run without locks.
	flitActive activeSet
	credActive activeSet
	injActive  activeSet
	rtrActive  activeSet
	ejActive   activeSet

	// Outgoing boundary mailboxes, drained by the serial epilogue. Hard
	// bounds: each boundary channel carries at most one event per cycle
	// (one SA grant per output port, one credit per input port), so the
	// rings are sized to the shard's boundary channel counts and a push
	// past the bound is a protocol bug, not backpressure.
	outFlit ring.Ring[flitMail]
	outCred ring.Ring[credMail]

	// Deferred integer counters, merged (summed) in the epilogue.
	flitHops  uint64
	moves     uint64
	assembled int // packets fully assembled this cycle (decrements net.active)

	// Deferred order-sensitive float samples, replayed node-ascending.
	samples   []latSample
	samplePos int

	// Deferred livelock verdict: the shard's first over-budget packet. The
	// epilogue picks the minimum router node across shards, matching the
	// serial kernel's first-trip-wins order.
	llPkt  *Packet
	llNode NodeID

	task shardTask
}

// shardOf maps a node to its owning shard via the backend's partition
// (mesh/basejump: column bands; ring: arc segments).
func (n *meshNet) shardOf(node NodeID) *meshShard {
	return n.shards[n.backend.ShardOf(node, len(n.shards))]
}

// buildShards partitions the network into the backend's contiguous bands and
// assigns component ownership. requested is clamped to [1, MaxShards]; fault
// injection forces one shard because the injector's single RNG stream draws
// during flit/credit sends and deliveries, whose interleaving across shards
// is not defined.
func (n *meshNet) buildShards(requested int) {
	s := requested
	if s < 1 {
		s = 1
	}
	if max := n.backend.MaxShards(); s > max {
		s = max
	}
	if n.fs != nil {
		s = 1
	}
	n.shards = make([]*meshShard, s)
	for k := range n.shards {
		sh := &meshShard{
			idx:        k,
			net:        n,
			flitActive: newActiveSet(len(n.flitChans)),
			credActive: newActiveSet(len(n.credChans)),
			injActive:  newActiveSet(len(n.nis)),
			rtrActive:  newActiveSet(len(n.routers)),
			ejActive:   newActiveSet(len(n.routers)),
		}
		sh.task = shardTask{
			wg:     &n.tickWG,
			labels: pprof.Labels("noc_shard", strconv.Itoa(k)),
		}
		sh.task.run = func() { sh.runSegment(n.cycle) }
		n.shards[k] = sh
	}
	for _, r := range n.routers {
		r.sh = n.shardOf(r.p.node)
	}
	// Channel ownership: the destination router's shard pops the queue and
	// tracks the active bit. A channel whose source router lives in another
	// shard routes its sends through that shard's outgoing mailbox.
	nbf := make([]int, s)
	nbc := make([]int, s)
	for _, ch := range n.flitChans {
		src, dst := n.shardOf(ch.src), n.shardOf(ch.dst.p.node)
		ch.sh = dst
		if src != dst {
			ch.xmail = &src.outFlit
			nbf[src.idx]++
		}
	}
	for _, cc := range n.credChans {
		src, dst := n.shardOf(cc.src), n.shardOf(cc.dst.p.node)
		cc.sh = dst
		if src != dst {
			cc.xmail = &src.outCred
			nbc[src.idx]++
		}
	}
	for k, sh := range n.shards {
		if nbf[k] > 0 {
			sh.outFlit = ring.New[flitMail](nbf[k], nbf[k])
		}
		if nbc[k] > 0 {
			sh.outCred = ring.New[credMail](nbc[k], nbc[k])
		}
	}
}

// runSegment is one shard's slice of a cycle: the five phases over the
// shard's own active components, in ascending index order (the serial
// kernel's order restricted to this band). It touches only shard-owned
// state plus this shard's outgoing mailboxes.
func (sh *meshShard) runSegment(cycle uint64) {
	n := sh.net
	sh.flitActive.forEach(func(i int) {
		ch := n.flitChans[i]
		ch.deliver(cycle)
		if ch.q.Len() == 0 {
			sh.flitActive.clear(i)
		}
	})
	sh.credActive.forEach(func(i int) {
		cc := n.credChans[i]
		cc.deliver(cycle)
		if cc.q.Len() == 0 {
			sh.credActive.clear(i)
		}
	})
	sh.injActive.forEach(func(i int) {
		ni := n.nis[i]
		ni.injectStep(cycle)
		if ni.pend == 0 {
			sh.injActive.clear(i)
		}
	})
	sh.rtrActive.forEach(func(i int) {
		r := n.routers[i]
		r.step(cycle)
		if r.busy == 0 {
			sh.rtrActive.clear(i)
		}
	})
	sh.ejActive.forEach(func(i int) {
		n.nis[i].ejectStep(cycle)
		if n.routers[i].ejCount == 0 {
			sh.ejActive.clear(i)
		}
	})
}

// noteHop charges one switch traversal to pkt and records the shard's first
// hop-budget violation for the epilogue's livelock resolution. n.health is
// only written in serial sections, so the read here is race-free.
func (sh *meshShard) noteHop(pkt *Packet, node NodeID) {
	pkt.hops++
	n := sh.net
	if n.wd == nil || n.health != nil || n.hopBudget <= 0 ||
		pkt.hops <= n.hopBudget || sh.llPkt != nil {
		return
	}
	sh.llPkt, sh.llNode = pkt, node
}

// epilogue is the serial tail of a cycle: it drains the boundary mailboxes
// into their owning queues, merges the shards' deferred counters and
// samples in serial-kernel order, resolves the livelock verdict, and runs
// the end-of-cycle health monitors. Mailboxes drain here — not at the top
// of the next cycle — so the conservation audit sees boundary flits in
// their channel queues; every mailed event is due next cycle at the
// earliest, so the owning shard processes it at the same cycle the serial
// kernel would have.
func (n *meshNet) epilogue() {
	for _, sh := range n.shards {
		for sh.outFlit.Len() > 0 {
			m := sh.outFlit.Pop()
			m.ch.q.Push(m.ev)
			m.ch.sh.flitActive.set(m.ch.idx)
		}
		for sh.outCred.Len() > 0 {
			m := sh.outCred.Pop()
			m.cc.q.Push(m.ev)
			m.cc.sh.credActive.set(m.cc.idx)
		}
		n.stats.FlitHops += sh.flitHops
		n.moveCount += sh.moves
		n.active -= sh.assembled
		sh.flitHops, sh.moves, sh.assembled = 0, 0, 0
	}
	n.applySamples()
	n.resolveLivelock()
	n.stats.Cycles++
	n.observeHealth()
}

// applySamples replays the shards' deferred latency samples into the float
// accumulators in ascending node order — a k-way merge over the per-shard
// buffers, each already node-sorted because a segment ejects in ascending
// node order and every node belongs to exactly one shard. This reproduces
// the serial kernel's Mean.Add sequence exactly, which is what keeps the
// float sums (and so the golden digests) bit-identical.
func (n *meshNet) applySamples() {
	if len(n.shards) == 1 {
		sh := n.shards[0]
		for i := range sh.samples {
			n.addSample(&sh.samples[i])
		}
		sh.samples = sh.samples[:0]
		return
	}
	for {
		var best *meshShard
		for _, sh := range n.shards {
			if sh.samplePos == len(sh.samples) {
				continue
			}
			if best == nil || sh.samples[sh.samplePos].node < best.samples[best.samplePos].node {
				best = sh
			}
		}
		if best == nil {
			break
		}
		node := best.samples[best.samplePos].node
		for best.samplePos < len(best.samples) && best.samples[best.samplePos].node == node {
			n.addSample(&best.samples[best.samplePos])
			best.samplePos++
		}
	}
	for _, sh := range n.shards {
		sh.samples = sh.samples[:0]
		sh.samplePos = 0
	}
}

func (n *meshNet) addSample(s *latSample) {
	n.stats.NetLatency.Add(s.net)
	n.stats.TotalLatency.Add(s.tot)
	n.stats.LatencyByClass[s.class].Add(s.net)
}

// resolveLivelock turns the shards' deferred hop-budget violations into the
// sticky health verdict. The minimum router node wins, matching the serial
// kernel's ascending-order first trip.
func (n *meshNet) resolveLivelock() {
	var best *meshShard
	for _, sh := range n.shards {
		if sh.llPkt == nil {
			continue
		}
		if best == nil || sh.llNode < best.llNode {
			best = sh
		}
	}
	if best == nil {
		return
	}
	if n.wd != nil && n.health == nil {
		n.tripLivelock(best.llPkt)
	}
	for _, sh := range n.shards {
		sh.llPkt = nil
	}
}
