package noc

import (
	"fmt"

	"repro/internal/xrand"
)

// RoutingAlgo selects the oblivious routing algorithm of a network.
type RoutingAlgo int

// Routing algorithms.
const (
	// RoutingDOR is dimension-order XY routing (baseline, Table III).
	RoutingDOR RoutingAlgo = iota
	// RoutingCheckerboard is the paper's two-phase checkerboard routing
	// (§IV-B): XY by default, YX for full→half routes whose XY turn lands
	// on a half-router (case 1), and YX-then-XY through a random
	// intermediate full-router for half→half routes neither DOR can serve
	// (case 2).
	RoutingCheckerboard
	// RoutingROMM is two-phase ROMM (Nesson & Johnsson), the algorithm the
	// paper compares checkerboard routing against (§VI): every packet
	// routes YX to a random intermediate node in the minimal quadrant and
	// XY onward. It requires full routers (turns anywhere), so it is the
	// natural ablation partner for checkerboard routing.
	RoutingROMM
)

// String names the algorithm.
func (r RoutingAlgo) String() string {
	switch r {
	case RoutingDOR:
		return "DOR"
	case RoutingCheckerboard:
		return "CR"
	case RoutingROMM:
		return "ROMM"
	}
	return fmt.Sprintf("routing(%d)", int(r))
}

// planRoute fills in the packet's routing state (YXPhase, Intermediate) at
// injection time. For DOR it is always XY. For checkerboard routing it
// implements the case analysis of §IV-B. It returns an error for
// source/destination pairs the checkerboard network cannot route (full→full
// with an odd column offset on different rows), which do not occur when MCs
// and cache banks are placed at half-routers.
func planRoute(t *Topology, algo RoutingAlgo, src, dst NodeID, rng *xrand.Rand) (yxPhase bool, intermediate NodeID, err error) {
	return planRouteScratch(t, algo, src, dst, rng, nil)
}

// planRouteScratch is planRoute with a caller-provided candidate scratch
// buffer for intermediate-node selection. The mesh passes a buffer sized to
// the node count so hot-path route planning never allocates; a nil scratch
// falls back to allocating (cold callers and tests).
func planRouteScratch(t *Topology, algo RoutingAlgo, src, dst NodeID, rng *xrand.Rand, scratch []NodeID) (yxPhase bool, intermediate NodeID, err error) {
	intermediate = -1
	if algo == RoutingDOR || src == dst {
		return false, -1, nil
	}
	cs, cd := t.Coord(src), t.Coord(dst)
	if cs.X == cd.X || cs.Y == cd.Y {
		// Straight routes never turn, so half-routers do not constrain them
		// and they are deadlock-free on either VC class; spreading them over
		// both phases' VCs balances load (the YX header bit is free to set).
		return rng.Intn(2) == 1, -1, nil
	}
	if algo == RoutingROMM {
		// Two-phase ROMM: YX to a random minimal-quadrant intermediate,
		// then XY. Needs full routers for the unrestricted turns.
		xlo, xhi := minMax(cs.X, cd.X)
		ylo, yhi := minMax(cs.Y, cd.Y)
		w := t.Node(xlo+rng.Intn(xhi-xlo+1), ylo+rng.Intn(yhi-ylo+1))
		if w == src || w == dst {
			return rng.Intn(2) == 1, -1, nil // degenerate pick: plain DOR
		}
		return true, w, nil
	}
	// The XY turn happens at (dst.X, src.Y); the YX turn at (src.X, dst.Y).
	// A turn is only possible at a full router.
	if !t.IsHalf(t.Node(cd.X, cs.Y)) {
		return false, -1, nil // XY legal
	}
	if !t.IsHalf(t.Node(cs.X, cd.Y)) {
		return true, -1, nil // case 1: YX legal
	}
	// Case 2: half→half an even number of columns apart on different rows.
	// Route YX to an intermediate full-router in the minimal quadrant that
	// is not in the source row and an even number of columns from the
	// source, then XY to the destination.
	if !t.IsHalf(src) || !t.IsHalf(dst) {
		return false, -1, fmt.Errorf("noc: no checkerboard route from %v to %v (full-router pair with odd offset)", cs, cd)
	}
	inter, ok := pickIntermediate(t, cs, cd, rng, scratch)
	if !ok {
		return false, -1, fmt.Errorf("noc: no intermediate full-router between %v and %v", cs, cd)
	}
	return true, inter, nil
}

// pickIntermediate selects a random full-router W in the minimal quadrant
// spanned by src and dst with W.Y != src.Y and W.X an even column offset
// from src. Both routing phases (YX src→W, XY W→dst) are then turn-legal.
// Candidates accumulate in scratch (its backing array, when capacious
// enough, is reused without allocation).
func pickIntermediate(t *Topology, cs, cd Coord, rng *xrand.Rand, scratch []NodeID) (NodeID, bool) {
	xlo, xhi := minMax(cs.X, cd.X)
	ylo, yhi := minMax(cs.Y, cd.Y)
	candidates := scratch[:0]
	for y := ylo; y <= yhi; y++ {
		if y == cs.Y {
			continue
		}
		for x := xlo; x <= xhi; x++ {
			if (x-cs.X)%2 != 0 {
				continue
			}
			n := t.Node(x, y)
			if !t.IsHalf(n) {
				candidates = append(candidates, n)
			}
		}
	}
	if len(candidates) == 0 {
		return -1, false
	}
	return candidates[rng.Intn(len(candidates))], true
}

func minMax(a, b int) (int, int) {
	if a < b {
		return a, b
	}
	return b, a
}

// PlanPacket builds a packet with its checkerboard routing state planned,
// for tools that trace routes without running a network.
func PlanPacket(t *Topology, src, dst NodeID, rng *xrand.Rand) (*Packet, error) {
	yx, inter, err := planRoute(t, RoutingCheckerboard, src, dst, rng)
	if err != nil {
		return nil, err
	}
	return &Packet{Src: src, Dst: dst, YXPhase: yx, Intermediate: inter}, nil
}

// NextHopPort exposes per-hop route computation for tracing tools; it
// mutates p's phase state exactly as the routers do.
func NextHopPort(t *Topology, cur NodeID, p *Packet) (out Port, eject bool) {
	return nextHop(t, cur, p)
}

// nextHop performs per-hop route computation at router cur for packet p,
// returning either a direction port or eject=true. It consumes the packet's
// phase state: reaching the intermediate node switches a case-2 packet from
// its YX phase to the final XY phase. The directional decision itself is a
// single load from the topology's precomputed per-phase route tables
// (cur != target always holds by the time the table is consulted).
func nextHop(t *Topology, cur NodeID, p *Packet) (out Port, eject bool) {
	if cur == p.Dst {
		return 0, true
	}
	if p.Intermediate >= 0 && cur == p.Intermediate {
		p.Intermediate = -1
		p.YXPhase = false
	}
	target := p.Dst
	if p.Intermediate >= 0 {
		target = p.Intermediate
	}
	phase := 0
	if p.YXPhase {
		phase = 1
	}
	return Port(t.routes[phase][int(cur)*t.Width*t.Height+int(target)]), false
}

func horizontal(from, to Coord) Port {
	if to.X > from.X {
		return East
	}
	return West
}

func vertical(from, to Coord) Port {
	if to.Y > from.Y {
		return South
	}
	return North
}
