package noc

import (
	"fmt"
	"testing"
)

// BenchmarkCycleKernel measures the steady-state cost of one interconnect
// cycle (one op = one Tick) under a closed-loop request/reply protocol:
// every compute node keeps a fixed number of read requests outstanding to
// the memory-controller tiles, and each MC echoes a 4-flit reply. The
// harness itself is allocation-free (packet pool, preallocated backlogs),
// so allocs/op isolates the cycle kernel's own heap traffic — the number
// the allocation-free refactor drives to zero.
//
// Capture before/after numbers with scripts/bench.sh (emits BENCH_<date>.json).
func BenchmarkCycleKernel(b *testing.B) {
	b.Run("low-load", func(b *testing.B) { benchCycleKernel(b, DefaultConfig(), 1) })
	b.Run("high-load", func(b *testing.B) { benchCycleKernel(b, DefaultConfig(), 8) })
	b.Run("checkerboard", func(b *testing.B) {
		cfg := DefaultConfig()
		cfg.Checkerboard = true
		cfg.Routing = RoutingCheckerboard
		cfg.NumVCs = 4
		cfg.MCs = CheckerboardPlacement(6, 6, 8)
		cfg.MCInjPorts = 2
		benchCycleKernel(b, cfg, 4)
	})
	// Convergence tail: the network drains after a burst, so most tiles are
	// idle most cycles — the case active-component lists exist for.
	b.Run("drain-tail", func(b *testing.B) { benchDrainTail(b, DefaultConfig()) })
}

// BenchmarkShardedKernel measures the column-band sharded cycle kernel
// against its own serial baseline: the same closed-loop workload at 1, 2 and
// 4 shards on a small and a large mesh. Sub-benchmark names end in -s<N> so
// cmd/benchjson can derive a speedup_vs_s1 metric for each sharded row in
// the capture. On a single-core host the sharded rows measure pure
// coordination overhead (goroutine dispatch + epilogue); the speedup only
// materialises when GOMAXPROCS gives the shard workers real CPUs.
func BenchmarkShardedKernel(b *testing.B) {
	small := DefaultConfig()
	large := DefaultConfig()
	large.Width, large.Height = 12, 12
	large.MCs = TopBottomPlacement(12, 12, 8)
	for _, mesh := range []struct {
		name string
		cfg  Config
	}{
		{"small-6x6", small},
		{"large-12x12", large},
	} {
		for _, shards := range []int{1, 2, 4} {
			cfg := mesh.cfg
			cfg.Shards = shards
			b.Run(fmt.Sprintf("%s-s%d", mesh.name, shards), func(b *testing.B) {
				benchCycleKernel(b, cfg, 8)
			})
		}
	}
}

// BenchmarkBackendKernel measures the cycle kernel across the topology
// backends at two scales — the paper's 6×6 and a 12×12 stress geometry —
// under the same closed-loop request/reply protocol. Identical harness,
// identical load, so the rows compare what a tick costs on each substrate
// (and keep the 0 allocs/op gate honest on every backend's hot path).
func BenchmarkBackendKernel(b *testing.B) {
	backendCfg := func(kind BackendKind, w, h int) Config {
		cfg := DefaultConfig()
		if w != 6 || h != 6 {
			cfg.Width, cfg.Height = w, h
			cfg.MCs = TopBottomPlacement(w, h, 8)
		}
		switch kind {
		case BackendRing:
			cfg.Topology = BackendRing
			cfg.NumVCs, cfg.BufDepth, cfg.RouterStages = 4, 4, 2
		case BackendBaseJump:
			cfg.Topology = BackendBaseJump
			cfg.FlitBytes, cfg.NumVCs, cfg.BufDepth, cfg.RouterStages = 64, 2, 2, 2
		}
		return cfg
	}
	for _, kind := range []BackendKind{BackendMesh, BackendRing, BackendBaseJump} {
		for _, dim := range []struct{ w, h int }{{6, 6}, {12, 12}} {
			cfg := backendCfg(kind, dim.w, dim.h)
			b.Run(fmt.Sprintf("%s-%dx%d", kind, dim.w, dim.h), func(b *testing.B) {
				benchCycleKernel(b, cfg, 4)
			})
		}
	}
}

// BenchmarkLaneKernel measures the lane-batched cycle kernel on every
// topology backend: one op advances a LaneSet of L seed replicas by one
// cycle under the closed-loop request/reply protocol, so the -l4 rows cost
// roughly 4× the -l1 rows in ns/op while sharing a single Backend (route
// tables and geometry built once). Sub-benchmark names end in -l<N> so
// cmd/benchjson derives a per-lane speedup_vs_l1 metric. The harness is
// allocation-free like benchCycleKernel, keeping the 0 allocs/op gate
// honest on the lane hot path.
func BenchmarkLaneKernel(b *testing.B) {
	backendCfg := func(kind BackendKind) Config {
		cfg := DefaultConfig()
		switch kind {
		case BackendRing:
			cfg.Topology = BackendRing
			cfg.NumVCs, cfg.BufDepth, cfg.RouterStages = 4, 4, 2
		case BackendBaseJump:
			cfg.Topology = BackendBaseJump
			cfg.FlitBytes, cfg.NumVCs, cfg.BufDepth, cfg.RouterStages = 64, 2, 2, 2
		}
		return cfg
	}
	for _, kind := range []BackendKind{BackendMesh, BackendRing, BackendBaseJump} {
		for _, lanes := range []int{1, 4} {
			cfg := backendCfg(kind)
			b.Run(fmt.Sprintf("%s-l%d", kind, lanes), func(b *testing.B) {
				benchLaneKernel(b, cfg, lanes, 4)
			})
		}
	}
}

// benchLaneKernel drives a LaneSet with `outstanding` requests in flight
// per compute node per lane, warms every lane to steady state, then times
// b.N lockstep ticks.
func benchLaneKernel(b *testing.B, cfg Config, lanes, outstanding int) {
	ls := MustNewLaneSet(cfg, lanes)
	backend := ls.Backend()
	comp := backend.ComputeNodes()
	mcs := backend.MCs()
	pools := make([]PacketPool, lanes)
	inflight := make([][]int, lanes)
	backlog := make([][][]*Packet, lanes)
	rr := make([]int, lanes)
	for l := 0; l < lanes; l++ {
		inflight[l] = make([]int, len(comp))
		backlog[l] = make([][]*Packet, len(mcs))
		for i := range backlog[l] {
			backlog[l][i] = make([]*Packet, 0, outstanding*len(comp))
		}
	}

	tick := func() {
		for l := 0; l < lanes; l++ {
			m := ls.Lane(l)
			pool := &pools[l]
			for i, c := range comp {
				for inflight[l][i] < outstanding {
					p := pool.Get()
					p.Src, p.Dst = c, mcs[rr[l]%len(mcs)]
					p.Class, p.Bytes = ClassRequest, 8
					p.Line = uint64(i)
					rr[l]++
					if !m.TryInject(p) {
						pool.Put(p)
						break
					}
					inflight[l][i]++
				}
			}
			for j, mc := range mcs {
				for _, pkt := range m.Delivered(mc) {
					r := pool.Get()
					r.Src, r.Dst = mc, pkt.Src
					r.Class, r.Bytes = ClassReply, 64
					r.Line = pkt.Line
					backlog[l][j] = append(backlog[l][j], r)
					pool.Put(pkt)
				}
				q := backlog[l][j]
				n := 0
				for _, r := range q {
					if !m.TryInject(r) {
						break
					}
					n++
				}
				backlog[l][j] = q[:copy(q, q[n:])]
			}
			for _, c := range comp {
				for _, pkt := range m.Delivered(c) {
					inflight[l][pkt.Line]--
					pool.Put(pkt)
				}
			}
		}
		ls.Tick()
	}

	for i := 0; i < 3000; i++ { // warm every lane to steady state
		tick()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tick()
	}
	b.StopTimer()
	var hops, cycles uint64
	for l := 0; l < lanes; l++ {
		st := ls.Lane(l).Stats()
		hops += st.FlitHops
		cycles = st.Cycles
	}
	if cycles > 0 {
		b.ReportMetric(float64(hops)/float64(cycles), "hops/cycle")
	}
}

// benchCycleKernel drives cfg with `outstanding` requests in flight per
// compute node, warms the queues to steady state, then times b.N ticks.
func benchCycleKernel(b *testing.B, cfg Config, outstanding int) {
	m := MustNewMesh(cfg)
	backend := m.Backend()
	comp := backend.ComputeNodes()
	mcs := backend.MCs()
	var pool PacketPool
	inflight := make([]int, len(comp))
	// Reply backlog per MC, preallocated to the in-flight bound so the
	// harness never allocates mid-measurement.
	backlog := make([][]*Packet, len(mcs))
	for i := range backlog {
		backlog[i] = make([]*Packet, 0, outstanding*len(comp))
	}
	rr := 0

	tick := func() {
		for i, c := range comp {
			for inflight[i] < outstanding {
				p := pool.Get()
				p.Src, p.Dst = c, mcs[rr%len(mcs)]
				p.Class, p.Bytes = ClassRequest, 8
				p.Line = uint64(i) // requester index rides in the typed payload
				rr++
				if !m.TryInject(p) {
					pool.Put(p)
					break
				}
				inflight[i]++
			}
		}
		for j, mc := range mcs {
			for _, pkt := range m.Delivered(mc) {
				r := pool.Get()
				r.Src, r.Dst = mc, pkt.Src
				r.Class, r.Bytes = ClassReply, 64
				r.Line = pkt.Line
				backlog[j] = append(backlog[j], r)
				pool.Put(pkt)
			}
			q := backlog[j]
			n := 0
			for _, r := range q {
				if !m.TryInject(r) {
					break
				}
				n++
			}
			backlog[j] = q[:copy(q, q[n:])]
		}
		for _, c := range comp {
			for _, pkt := range m.Delivered(c) {
				inflight[pkt.Line]--
				pool.Put(pkt)
			}
		}
		m.Tick()
	}

	for i := 0; i < 3000; i++ { // warm to steady state
		tick()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tick()
	}
	b.StopTimer()
	st := m.Stats()
	if st.Cycles > 0 {
		b.ReportMetric(float64(st.FlitHops)/float64(st.Cycles), "hops/cycle")
	}
}

// benchDrainTail times the idle-dominated convergence tail: a short burst of
// traffic, then ticks on a draining (and eventually empty) network.
func benchDrainTail(b *testing.B, cfg Config) {
	m := MustNewMesh(cfg)
	backend := m.Backend()
	comp := backend.ComputeNodes()
	mcs := backend.MCs()
	var pool PacketPool
	for i, c := range comp {
		p := pool.Get()
		p.Src, p.Dst = c, mcs[i%len(mcs)]
		p.Class, p.Bytes = ClassRequest, 8
		m.TryInject(p)
	}
	drain := func() {
		for _, n := range backend.MCs() {
			for _, pkt := range m.Delivered(n) {
				pool.Put(pkt)
			}
		}
	}
	for i := 0; i < 200 && !m.Quiet(); i++ { // let the burst drain
		m.Tick()
		drain()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Tick()
	}
}
