package noc

import (
	"context"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
)

// shardTask is one shard's per-cycle work item for the shared executor. The
// task is preallocated per shard and resubmitted each cycle, so dispatching a
// sharded tick allocates nothing.
type shardTask struct {
	run    func()
	wg     *sync.WaitGroup
	labels pprof.LabelSet
}

// shardProfiling gates pprof goroutine labels around shard execution.
// pprof.Do allocates per call, so labels are off unless a CPU profile is
// being collected (the CLIs flip this when -cpuprofile is set).
var shardProfiling atomic.Bool

// SetShardProfiling toggles pprof labels ("noc_shard" = shard index) around
// every shard segment, so per-shard time is attributable in CPU profiles.
// Enable only while profiling: the labeling path allocates per task.
func SetShardProfiling(on bool) { shardProfiling.Store(on) }

// execute runs the task body, labeled when profiling is on. It does not
// signal the WaitGroup: the executor workers do that, and the coordinator
// runs its own shard inline without a pending Add.
func (t *shardTask) execute() {
	if shardProfiling.Load() {
		pprof.Do(context.Background(), t.labels, func(context.Context) { t.run() })
		return
	}
	t.run()
}

// executor is the package-wide worker pool shared by every sharded mesh in
// the process. It is sized to GOMAXPROCS and started lazily on the first
// sharded tick, so serial runs spawn no goroutines. Workers live for the
// process lifetime (meshes have no Close in the Network interface); they are
// parked on a channel receive when idle, which is what lets idle-shard
// workers cost nothing between cycles. Tasks never block on other tasks —
// the only waiter is the goroutine that called Tick — so a fixed-size pool
// cannot deadlock even with many meshes ticking concurrently.
var executor struct {
	once sync.Once
	ch   chan *shardTask
}

func submitShard(t *shardTask) {
	executor.once.Do(startExecutor)
	executor.ch <- t
}

func startExecutor() {
	executor.ch = make(chan *shardTask, 256)
	for i := 0; i < runtime.GOMAXPROCS(0); i++ {
		go func() {
			for t := range executor.ch {
				t.execute()
				t.wg.Done()
			}
		}()
	}
}
