package noc

import "testing"

func TestTopologyValidation(t *testing.T) {
	if _, err := NewTopology(1, 6, false, nil); err == nil {
		t.Error("1-wide mesh accepted")
	}
	if _, err := NewTopology(6, 6, false, []NodeID{99}); err == nil {
		t.Error("out-of-range MC accepted")
	}
	if _, err := NewTopology(6, 6, false, []NodeID{1, 1}); err == nil {
		t.Error("duplicate MC accepted")
	}
	// MC at a full-router tile in a checkerboard mesh is invalid.
	if _, err := NewTopology(6, 6, true, []NodeID{0}); err == nil {
		t.Error("MC at full-router tile accepted in checkerboard mesh")
	}
	if _, err := NewTopology(6, 6, true, []NodeID{1}); err != nil {
		t.Errorf("MC at half-router tile rejected: %v", err)
	}
}

func TestCoordRoundTrip(t *testing.T) {
	topo := MustNewTopology(6, 6, false, nil)
	for n := 0; n < topo.NumNodes(); n++ {
		c := topo.Coord(NodeID(n))
		if topo.Node(c.X, c.Y) != NodeID(n) {
			t.Fatalf("coord round trip failed for node %d", n)
		}
	}
}

func TestNeighborEdges(t *testing.T) {
	topo := MustNewTopology(6, 6, false, nil)
	if topo.Neighbor(topo.Node(0, 0), North) != -1 {
		t.Error("north of top-left should be off-mesh")
	}
	if topo.Neighbor(topo.Node(0, 0), West) != -1 {
		t.Error("west of top-left should be off-mesh")
	}
	if got := topo.Neighbor(topo.Node(0, 0), East); got != topo.Node(1, 0) {
		t.Errorf("east neighbor = %d", got)
	}
	if got := topo.Neighbor(topo.Node(2, 3), South); got != topo.Node(2, 4) {
		t.Errorf("south neighbor = %d", got)
	}
}

func TestNeighborSymmetry(t *testing.T) {
	topo := MustNewTopology(5, 7, false, nil)
	for n := 0; n < topo.NumNodes(); n++ {
		for d := Port(0); d < numDirs; d++ {
			nb := topo.Neighbor(NodeID(n), d)
			if nb < 0 {
				continue
			}
			if back := topo.Neighbor(nb, d.opposite()); back != NodeID(n) {
				t.Fatalf("neighbor symmetry broken at %d dir %v", n, d)
			}
		}
	}
}

func TestHalfRouterParity(t *testing.T) {
	topo := MustNewTopology(6, 6, true, nil)
	half := 0
	for n := 0; n < topo.NumNodes(); n++ {
		c := topo.Coord(NodeID(n))
		want := (c.X+c.Y)%2 == 1
		if topo.IsHalf(NodeID(n)) != want {
			t.Errorf("node %d parity mismatch", n)
		}
		if want {
			half++
		}
	}
	if half != 18 {
		t.Errorf("6x6 checkerboard should have 18 half-routers, got %d", half)
	}
	// No half-routers without checkerboard.
	flat := MustNewTopology(6, 6, false, nil)
	for n := 0; n < flat.NumNodes(); n++ {
		if flat.IsHalf(NodeID(n)) {
			t.Fatalf("non-checkerboard mesh reported half-router at %d", n)
		}
	}
}

func TestTopBottomPlacement(t *testing.T) {
	mcs := TopBottomPlacement(6, 6, 8)
	if len(mcs) != 8 {
		t.Fatalf("want 8 MCs, got %d", len(mcs))
	}
	topo := MustNewTopology(6, 6, false, mcs)
	for _, mc := range mcs {
		c := topo.Coord(mc)
		if c.Y != 0 && c.Y != 5 {
			t.Errorf("MC %v not on top or bottom row", c)
		}
	}
	if len(topo.ComputeNodes()) != 28 {
		t.Errorf("compute nodes = %d, want 28", len(topo.ComputeNodes()))
	}
}

func TestCheckerboardPlacement(t *testing.T) {
	mcs := CheckerboardPlacement(6, 6, 8)
	if len(mcs) != 8 {
		t.Fatalf("want 8 MCs, got %d", len(mcs))
	}
	// All MCs must be on half-router (odd-parity) tiles so the mesh accepts
	// them; NewTopology enforces this.
	topo, err := NewTopology(6, 6, true, mcs)
	if err != nil {
		t.Fatalf("checkerboard placement invalid: %v", err)
	}
	// Staggered: MCs span more than two rows (unlike top-bottom).
	rows := map[int]bool{}
	for _, mc := range mcs {
		rows[topo.Coord(mc).Y] = true
	}
	if len(rows) < 4 {
		t.Errorf("staggered placement spans only %d rows", len(rows))
	}
}

func TestCheckerboardPlacementGenericSizes(t *testing.T) {
	for _, tc := range []struct{ w, h, mcs int }{{4, 4, 4}, {8, 8, 8}, {6, 8, 8}} {
		mcs := CheckerboardPlacement(tc.w, tc.h, tc.mcs)
		if len(mcs) != tc.mcs {
			t.Errorf("%dx%d: got %d MCs, want %d", tc.w, tc.h, len(mcs), tc.mcs)
		}
		if _, err := NewTopology(tc.w, tc.h, true, mcs); err != nil {
			t.Errorf("%dx%d placement invalid: %v", tc.w, tc.h, err)
		}
	}
}

func TestHopCount(t *testing.T) {
	topo := MustNewTopology(6, 6, false, nil)
	if got := topo.HopCount(topo.Node(0, 0), topo.Node(3, 4)); got != 7 {
		t.Errorf("hop count = %d, want 7", got)
	}
	if got := topo.HopCount(5, 5); got != 0 {
		t.Errorf("self hop count = %d, want 0", got)
	}
}
