package noc

import (
	"testing"

	"repro/internal/xrand"
)

// refPickRR is an obviously-correct reference for pickRR: scan the cyclic
// order starting at the pointer and return the first bidder.
func refPickRR(bidders []int, ptr, n int) int {
	has := make(map[int]bool, len(bidders))
	for _, b := range bidders {
		has[b] = true
	}
	for o := 0; o < n; o++ {
		if idx := (ptr + o) % n; has[idx] {
			return idx
		}
	}
	return -1
}

// TestPickRRMatchesReference exercises pickRR over every pointer position
// (including the post-win resting value n, which behaves as 0) and random
// bidder sets, for several index-space sizes.
func TestPickRRMatchesReference(t *testing.T) {
	rng := xrand.New(42)
	for _, n := range []int{2, 4, 9, 24} {
		for ptr := 0; ptr <= n; ptr++ {
			for trial := 0; trial < 20; trial++ {
				var bidders []int
				for b := 0; b < n; b++ {
					if rng.Intn(3) == 0 {
						bidders = append(bidders, b)
					}
				}
				if len(bidders) == 0 {
					bidders = append(bidders, rng.Intn(n))
				}
				p := ptr
				got := pickRR(bidders, &p, n)
				want := refPickRR(bidders, ptr, n)
				if got != want {
					t.Fatalf("pickRR(n=%d, ptr=%d, %v) = %d, want %d", n, ptr, bidders, got, want)
				}
				if p != got+1 {
					t.Fatalf("pointer after win = %d, want %d", p, got+1)
				}
			}
		}
	}
}

// TestPickRRWrapAfterLastIndexWin is the regression for the old 1<<20 wrap
// sentinel: after a win at index n-1 the pointer rests at n, and the next
// allocation must treat every bidder as wrapped, preferring index 0.
func TestPickRRWrapAfterLastIndexWin(t *testing.T) {
	n := 6
	ptr := 0
	if got := pickRR([]int{n - 1}, &ptr, n); got != n-1 {
		t.Fatalf("first pick = %d, want %d", got, n-1)
	}
	if ptr != n {
		t.Fatalf("pointer = %d, want %d", ptr, n)
	}
	if got := pickRR([]int{0, 2, n - 1}, &ptr, n); got != 0 {
		t.Fatalf("wrapped pick = %d, want 0 (cyclic restart)", got)
	}
}

// TestChannelPartialDelivery checks a flit channel delivers exactly the due
// prefix of its (monotonic) event queue, leaving later flits in flight.
func TestChannelPartialDelivery(t *testing.T) {
	m := MustNewMesh(DefaultConfig())
	ch := m.meshNet.flitChans[0]
	buf := &ch.dst.inputs[ch.dstPort][0].buf
	ch.send(Flit{VC: 0, Head: true, Tail: true}, 3)
	ch.send(Flit{VC: 0, Head: true, Tail: true}, 5)
	ch.send(Flit{VC: 0, Head: true, Tail: true}, 9)
	ch.deliver(2)
	if buf.Len() != 0 || ch.q.Len() != 3 {
		t.Fatalf("before due: delivered %d, queued %d", buf.Len(), ch.q.Len())
	}
	ch.deliver(5)
	if buf.Len() != 2 || ch.q.Len() != 1 {
		t.Fatalf("at cycle 5: delivered %d (want 2), queued %d (want 1)", buf.Len(), ch.q.Len())
	}
	ch.deliver(9)
	if buf.Len() != 3 || ch.q.Len() != 0 {
		t.Fatalf("at cycle 9: delivered %d (want 3), queued %d (want 0)", buf.Len(), ch.q.Len())
	}
}

// TestCreditChannelOutOfOrderDues checks credit delivery with non-monotonic
// due times (the fault model's resync delay): due credits are returned even
// when queued behind later ones, and the remainder is compacted in order.
func TestCreditChannelOutOfOrderDues(t *testing.T) {
	m := MustNewMesh(DefaultConfig())
	cc := m.meshNet.credChans[0]
	out := &cc.dst.outputs[cc.dstPort][0]
	out.credits = 0 // make room so returned credits are countable
	for _, due := range []uint64{5, 2, 9, 1} {
		cc.send(0, due)
	}
	cc.deliver(4)
	if out.credits != 2 {
		t.Fatalf("credits after cycle 4 = %d, want 2 (dues 2 and 1)", out.credits)
	}
	if cc.q.Len() != 2 || cc.q.At(0).due != 5 || cc.q.At(1).due != 9 {
		t.Fatalf("remainder not compacted in order: len %d", cc.q.Len())
	}
	cc.deliver(9)
	if out.credits != 4 || cc.q.Len() != 0 {
		t.Fatalf("after cycle 9: credits %d (want 4), queued %d (want 0)", out.credits, cc.q.Len())
	}
}

// TestDrainEjectedPartial checks drainEjected visits only matured flits and
// keeps the ejection-work counter consistent across partial drains.
func TestDrainEjectedPartial(t *testing.T) {
	m := MustNewMesh(DefaultConfig())
	r := m.meshNet.routers[0]
	for _, due := range []uint64{1, 2, 5} {
		r.ejQ[0].Push(flitEvent{flit: Flit{Head: true, Tail: true}, due: due})
		r.ejCount++
	}
	visits := 0
	r.drainEjected(2, func(Flit) { visits++ })
	if visits != 2 || r.ejCount != 1 || r.ejQ[0].Len() != 1 {
		t.Fatalf("partial drain: visits=%d ejCount=%d queued=%d, want 2/1/1",
			visits, r.ejCount, r.ejQ[0].Len())
	}
	r.drainEjected(5, func(Flit) { visits++ })
	if visits != 3 || r.ejCount != 0 || r.ejQ[0].Len() != 0 {
		t.Fatalf("final drain: visits=%d ejCount=%d queued=%d, want 3/0/0",
			visits, r.ejCount, r.ejQ[0].Len())
	}
}
