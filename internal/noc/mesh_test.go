package noc

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// runUntilQuiet ticks the network until it drains or maxCycles pass.
func runUntilQuiet(t *testing.T, n Network, maxCycles int) {
	t.Helper()
	for i := 0; i < maxCycles; i++ {
		if n.Quiet() {
			return
		}
		n.Tick()
	}
	t.Fatalf("network did not drain within %d cycles", maxCycles)
}

// collectAll drains delivered packets at every node.
func collectAll(n Network, nodes int) []*Packet {
	var out []*Packet
	for id := 0; id < nodes; id++ {
		out = append(out, n.Delivered(NodeID(id))...)
	}
	return out
}

func TestMeshConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.FlitBytes = 0 },
		func(c *Config) { c.NumVCs = 3 }, // not divisible by class split
		func(c *Config) { c.BufDepth = 0 },
		func(c *Config) { c.RouterStages = 0 },
		func(c *Config) { c.MCInjPorts = 0 },
		func(c *Config) { c.SrcQueueCap = 0 },
		func(c *Config) { c.Routing = RoutingCheckerboard }, // without checkerboard mesh
		func(c *Config) { c.Width = 1 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := NewMesh(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := NewMesh(DefaultConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestVCPlan(t *testing.T) {
	// Baseline: 2 VCs split by class.
	p, err := buildVCPlan(2, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.allowed(ClassRequest, false); len(got) != 1 || got[0] != 0 {
		t.Errorf("request VCs = %v, want [0]", got)
	}
	if got := p.allowed(ClassReply, false); len(got) != 1 || got[0] != 1 {
		t.Errorf("reply VCs = %v, want [1]", got)
	}
	// CR single network: 4 VCs = class × phase.
	p, err = buildVCPlan(4, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]int{
		"req-xy": {0}, "req-yx": {1}, "reply-xy": {2}, "reply-yx": {3},
	}
	got := map[string][]int{
		"req-xy":   p.allowed(ClassRequest, false),
		"req-yx":   p.allowed(ClassRequest, true),
		"reply-xy": p.allowed(ClassReply, false),
		"reply-yx": p.allowed(ClassReply, true),
	}
	for k, w := range want {
		g := got[k]
		if len(g) != 1 || g[0] != w[0] {
			t.Errorf("%s VCs = %v, want %v", k, g, w)
		}
	}
	// CR needs 4 VCs on a single class-split network.
	if _, err := buildVCPlan(2, true, 2); err == nil {
		t.Error("2 VCs accepted for split CR")
	}
	// Double-network slice: CR with 2 VCs, no class split.
	p, err = buildVCPlan(2, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.allowed(ClassReply, true); len(got) != 1 || got[0] != 1 {
		t.Errorf("YX VCs = %v, want [1]", got)
	}
}

func TestSinglePacketZeroLoadLatency(t *testing.T) {
	cfg := DefaultConfig()
	m := MustNewMesh(cfg)
	src, dst := m.Topology().Node(0, 2), m.Topology().Node(3, 2) // 3 hops
	p := &Packet{Src: src, Dst: dst, Class: ClassRequest, Bytes: 8}
	if !m.TryInject(p) {
		t.Fatal("inject failed")
	}
	runUntilQuiet(t, m, 1000)
	if p.ArrivedAt == 0 {
		t.Fatal("packet not delivered")
	}
	// 4-stage routers, 1-cycle channels: 5 cycles per hop plus the final
	// router's 4 stages: 3*5 + 4 = 19.
	if got := p.NetworkLatency(); got != 19 {
		t.Errorf("zero-load latency = %d, want 19", got)
	}
	got := m.Delivered(dst)
	if len(got) != 1 || got[0] != p {
		t.Errorf("Delivered = %v", got)
	}
}

func TestSinglePacketAggressiveRouterLatency(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RouterStages = 1
	m := MustNewMesh(cfg)
	src, dst := m.Topology().Node(0, 2), m.Topology().Node(3, 2)
	p := &Packet{Src: src, Dst: dst, Class: ClassRequest, Bytes: 8}
	m.TryInject(p)
	runUntilQuiet(t, m, 1000)
	// 1-cycle routers: 2 cycles per hop + final router 1 = 7.
	if got := p.NetworkLatency(); got != 7 {
		t.Errorf("aggressive zero-load latency = %d, want 7", got)
	}
}

func TestMultiFlitSerialization(t *testing.T) {
	cfg := DefaultConfig()
	m := MustNewMesh(cfg)
	src, dst := m.Topology().Node(0, 2), m.Topology().Node(3, 2)
	p := &Packet{Src: src, Dst: dst, Class: ClassReply, Bytes: 64} // 4 flits
	m.TryInject(p)
	runUntilQuiet(t, m, 1000)
	// Tail trails head by 3 cycles: 19 + 3 = 22.
	if got := p.NetworkLatency(); got != 22 {
		t.Errorf("4-flit latency = %d, want 22", got)
	}
}

func TestDeliveryOrderSameFlow(t *testing.T) {
	// Packets of one class between one src/dst pair must arrive in order.
	cfg := DefaultConfig()
	cfg.SrcQueueCap = 64
	m := MustNewMesh(cfg)
	src, dst := m.Topology().Node(0, 0), m.Topology().Node(5, 5)
	const n = 30
	for i := 0; i < n; i++ {
		p := &Packet{Src: src, Dst: dst, Class: ClassRequest, Bytes: 8, Meta: i}
		if !m.TryInject(p) {
			t.Fatalf("inject %d refused", i)
		}
	}
	runUntilQuiet(t, m, 10000)
	got := m.Delivered(dst)
	if len(got) != n {
		t.Fatalf("delivered %d/%d", len(got), n)
	}
	for i, p := range got {
		if p.Meta.(int) != i {
			t.Fatalf("out-of-order delivery: position %d has packet %v", i, p.Meta)
		}
	}
}

func TestSrcQueueBackpressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SrcQueueCap = 2
	m := MustNewMesh(cfg)
	src, dst := m.Topology().Node(0, 0), m.Topology().Node(5, 5)
	accepted := 0
	for i := 0; i < 10; i++ {
		if m.TryInject(&Packet{Src: src, Dst: dst, Class: ClassRequest, Bytes: 8}) {
			accepted++
		}
	}
	if accepted != 2 {
		t.Errorf("accepted %d packets with queue cap 2", accepted)
	}
	if m.CanInject(src, ClassRequest) {
		t.Error("CanInject true with full queue")
	}
	if !m.CanInject(src, ClassReply) {
		t.Error("reply class should still have space")
	}
}

// crossTraffic drives random compute->MC requests plus MC->compute replies
// and checks complete delivery. Returns mean network latency.
func crossTraffic(t *testing.T, cfg Config, packets int, seed uint64) float64 {
	t.Helper()
	m := MustNewMesh(cfg)
	var net Network = m
	topo := m.Topology()
	rng := xrand.New(seed)
	comp := topo.ComputeNodes()
	mcs := topo.MCs()
	if len(mcs) == 0 {
		t.Fatal("config has no MCs")
	}
	sent, recv := 0, 0
	for cycle := 0; cycle < 200000 && recv < packets; cycle++ {
		if sent < packets {
			var p *Packet
			if sent%2 == 0 {
				p = &Packet{Src: comp[rng.Intn(len(comp))], Dst: mcs[rng.Intn(len(mcs))],
					Class: ClassRequest, Bytes: 8}
			} else {
				p = &Packet{Src: mcs[rng.Intn(len(mcs))], Dst: comp[rng.Intn(len(comp))],
					Class: ClassReply, Bytes: 64}
			}
			if net.TryInject(p) {
				sent++
			}
		}
		net.Tick()
		recv += len(collectAll(net, topo.NumNodes()))
	}
	if recv != packets {
		t.Fatalf("delivered %d/%d packets", recv, packets)
	}
	return net.Stats().NetLatency.Value()
}

func TestHeavyCrossTrafficDrains(t *testing.T) {
	crossTraffic(t, DefaultConfig(), 2000, 11)
}

func TestCheckerboardMeshTrafficDrains(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Checkerboard = true
	cfg.Routing = RoutingCheckerboard
	cfg.NumVCs = 4
	cfg.MCs = CheckerboardPlacement(6, 6, 8)
	crossTraffic(t, cfg, 2000, 12)
}

func TestCheckerboardPlacementDORTrafficDrains(t *testing.T) {
	// Fig 16 config: staggered placement, full routers, DOR.
	cfg := DefaultConfig()
	cfg.MCs = CheckerboardPlacement(6, 6, 8)
	crossTraffic(t, cfg, 2000, 13)
}

func TestMultiPortMCDrains(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Checkerboard = true
	cfg.Routing = RoutingCheckerboard
	cfg.NumVCs = 4
	cfg.MCs = CheckerboardPlacement(6, 6, 8)
	cfg.MCInjPorts = 2
	cfg.MCEjPorts = 2
	crossTraffic(t, cfg, 2000, 14)
}

func TestAggressiveRouterLowersLatency(t *testing.T) {
	cfg := DefaultConfig()
	base := crossTraffic(t, cfg, 1500, 15)
	cfg.RouterStages = 1
	fast := crossTraffic(t, cfg, 1500, 15)
	if fast >= base {
		t.Errorf("1-cycle router latency %v not lower than 4-stage %v", fast, base)
	}
}

func TestWiderChannelsFewerFlits(t *testing.T) {
	cfg := DefaultConfig()
	m16 := MustNewMesh(cfg)
	cfg.FlitBytes = 32
	m32 := MustNewMesh(cfg)
	p16 := &Packet{Src: 0, Dst: 35, Class: ClassReply, Bytes: 64}
	p32 := &Packet{Src: 0, Dst: 35, Class: ClassReply, Bytes: 64}
	m16.TryInject(p16)
	m32.TryInject(p32)
	runUntilQuiet(t, m16, 2000)
	runUntilQuiet(t, m32, 2000)
	if p32.NetworkLatency() >= p16.NetworkLatency() {
		t.Errorf("32B latency %d not below 16B %d (serialization)",
			p32.NetworkLatency(), p16.NetworkLatency())
	}
}

func TestMeshDeterminism(t *testing.T) {
	run := func() (uint64, float64) {
		cfg := DefaultConfig()
		m := MustNewMesh(cfg)
		topo := m.Topology()
		rng := xrand.New(77)
		comp := topo.ComputeNodes()
		mcs := topo.MCs()
		for i := 0; i < 300; i++ {
			m.TryInject(&Packet{Src: comp[rng.Intn(len(comp))], Dst: mcs[rng.Intn(len(mcs))],
				Class: ClassRequest, Bytes: 8})
			m.Tick()
		}
		for i := 0; i < 5000 && !m.Quiet(); i++ {
			m.Tick()
		}
		return m.Stats().FlitHops, m.Stats().NetLatency.Value()
	}
	h1, l1 := run()
	h2, l2 := run()
	if h1 != h2 || l1 != l2 {
		t.Errorf("nondeterministic: (%d,%v) vs (%d,%v)", h1, l1, h2, l2)
	}
}

func TestMeshPropertyAllConfigsDeliver(t *testing.T) {
	// Property: across router latencies, VC counts and port counts, all
	// offered packets are delivered exactly once.
	f := func(seed uint64, stages, vcs, inj uint8) bool {
		cfg := DefaultConfig()
		cfg.RouterStages = int(stages%4) + 1
		cfg.NumVCs = 2 << (vcs % 2) // 2 or 4
		cfg.MCInjPorts = int(inj%2) + 1
		cfg.MCEjPorts = int(inj%2) + 1
		cfg.SrcQueueCap = 4
		m := MustNewMesh(cfg)
		topo := m.Topology()
		rng := xrand.New(seed)
		comp := topo.ComputeNodes()
		mcs := topo.MCs()
		want := 0
		for i := 0; i < 200; i++ {
			var p *Packet
			if i%3 == 0 {
				p = &Packet{Src: mcs[rng.Intn(len(mcs))], Dst: comp[rng.Intn(len(comp))],
					Class: ClassReply, Bytes: 64}
			} else {
				p = &Packet{Src: comp[rng.Intn(len(comp))], Dst: mcs[rng.Intn(len(mcs))],
					Class: ClassRequest, Bytes: 8}
			}
			if m.TryInject(p) {
				want++
			}
			m.Tick()
		}
		got := 0
		got += len(collectAll(m, topo.NumNodes()))
		for i := 0; i < 50000 && !m.Quiet(); i++ {
			m.Tick()
			got += len(collectAll(m, topo.NumNodes()))
		}
		return m.Quiet() && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestInjectionRateStat(t *testing.T) {
	cfg := DefaultConfig()
	m := MustNewMesh(cfg)
	p := &Packet{Src: 0, Dst: 35, Class: ClassReply, Bytes: 64}
	m.TryInject(p)
	runUntilQuiet(t, m, 1000)
	st := m.Stats()
	if st.InjectedFlits[0] != 4 {
		t.Errorf("injected flits at node 0 = %d, want 4", st.InjectedFlits[0])
	}
	if st.EjectedFlits[35] != 4 {
		t.Errorf("ejected flits at node 35 = %d, want 4", st.EjectedFlits[35])
	}
	if st.InjectionRate(0) <= 0 {
		t.Error("injection rate should be positive")
	}
	if st.AcceptedFlitsPerCycle() <= 0 {
		t.Error("accepted traffic should be positive")
	}
}
