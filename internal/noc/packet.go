// Package noc implements the cycle-level on-chip network models of the
// paper: a 2D mesh of virtual-channel wormhole routers (full and half
// routers, multi-port memory-controller routers), dimension-order and
// checkerboard routing, credit-based flow control, channel-sliced double
// networks, and idealized (zero-latency) networks for limit studies.
package noc

import "fmt"

// NodeID identifies a mesh tile: id = y*width + x.
type NodeID int

// TrafficClass separates request and reply traffic, which must use disjoint
// virtual channels (or disjoint physical networks) to avoid protocol
// deadlock.
type TrafficClass int

// Traffic classes.
const (
	ClassRequest TrafficClass = iota
	ClassReply
	NumClasses
)

// String names the class.
func (c TrafficClass) String() string {
	switch c {
	case ClassRequest:
		return "request"
	case ClassReply:
		return "reply"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Packet is one network transaction. Routing state (YX flag, intermediate
// node) is planned at injection by the routing algorithm and consumed by
// per-hop route computation.
type Packet struct {
	ID    uint64
	Src   NodeID
	Dst   NodeID
	Class TrafficClass
	Bytes int // payload size; flit count = ceil(Bytes/flitBytes)

	// Routing state for checkerboard routing (§IV-B).
	YXPhase      bool   // currently routing Y-first
	Intermediate NodeID // CR case-2 intermediate full-router; < 0 when unused

	// Line and Write carry the closed-loop memory protocol's payload (a
	// cache-line address and the read/write flag) without boxing it into
	// Meta: storing a uint64 or a struct in an interface{} allocates on
	// every packet, which the allocation-free cycle kernel forbids. Traffic
	// harnesses with richer payloads may still use Meta; the two coexist.
	Line  uint64
	Write bool

	Meta interface{} // opaque caller payload (nil on the closed-loop hot path)

	// Timing, in network cycles.
	OfferedAt  uint64 // when handed to the network interface
	InjectedAt uint64 // when the head flit entered the injection buffer
	ArrivedAt  uint64 // when the last flit was ejected

	flits int // cached flit count

	// Resilience state (used only when fault injection is enabled).
	lid     uint64 // logical transfer id: wire ID of the first attempt
	attempt int    // 1-based transmission attempt this wire packet carries
	corrupt bool   // a link fault struck a flit; discard at the ejection NI
	hops    int    // switch traversals so far, for the livelock budget
}

// Attempt returns which end-to-end transmission attempt this wire packet
// was (1 = original injection, 0 = fault injection disabled).
func (p *Packet) Attempt() int { return p.attempt }

// Corrupt reports whether a link fault struck one of the packet's flits;
// such packets fail their end-to-end check and are dropped at the ejection
// network interface, to be recovered by retransmission.
func (p *Packet) Corrupt() bool { return p.corrupt }

// NetworkLatency is the in-network latency (head injection to tail arrival).
func (p *Packet) NetworkLatency() uint64 { return p.ArrivedAt - p.InjectedAt }

// TotalLatency includes source-queue waiting time.
func (p *Packet) TotalLatency() uint64 { return p.ArrivedAt - p.OfferedAt }

// Flit is the flow-control unit. Flits of one packet always travel in order
// on a single virtual channel per link.
type Flit struct {
	Pkt  *Packet
	Seq  int // 0-based position within the packet
	Head bool
	Tail bool
	VC   int // virtual channel on the link the flit currently occupies

	arrived uint64 // cycle the flit entered its current input buffer; lets a
	// queued head overlap its buffer-write/RC stages with the
	// previous packet's drain (pipelined routers do this)
}

// PacketPool is a free list of Packet objects for steady-state
// allocation-free simulation. A run's packet population is bounded by the
// in-flight work, so after warm-up every Get is served from the free list
// and the cycle loop performs no heap allocation for packets.
//
// The pool is deliberately NOT safe for concurrent use: each simulation run
// is single-threaded (the parallel experiment runner isolates runs in
// separate goroutines with separate pools), and a mutex or sync.Pool would
// put synchronization on the hot path for no benefit. Ownership contract:
// whoever drains a packet from the network (ejection-side consumer) is
// responsible for returning it with Put once the payload is extracted;
// packets still referenced anywhere must never be Put.
type PacketPool struct {
	free []*Packet
	gets uint64 // total Get calls
	news uint64 // Gets that had to allocate
}

// Get returns a zeroed packet, reusing a recycled one when available.
func (pp *PacketPool) Get() *Packet {
	pp.gets++
	if n := len(pp.free); n > 0 {
		p := pp.free[n-1]
		pp.free[n-1] = nil
		pp.free = pp.free[:n-1]
		*p = Packet{}
		return p
	}
	pp.news++
	return &Packet{}
}

// Put recycles p. The caller must hold the only live reference.
func (pp *PacketPool) Put(p *Packet) {
	if p == nil {
		return
	}
	pp.free = append(pp.free, p)
}

// Stats reports (total Gets, Gets that allocated); the difference is the
// number of reuses, a direct measure of steady-state pooling health.
func (pp *PacketPool) Stats() (gets, news uint64) { return pp.gets, pp.news }

// flitCount returns the number of flits a payload of n bytes needs on links
// with the given flit size.
func flitCount(n, flitBytes int) int {
	if n <= 0 {
		return 1
	}
	return (n + flitBytes - 1) / flitBytes
}

// makeFlits materializes the flits of p for a network with the given flit
// size.
func makeFlits(p *Packet, flitBytes int) []Flit {
	n := flitCount(p.Bytes, flitBytes)
	p.flits = n
	fs := make([]Flit, n)
	for i := range fs {
		fs[i] = Flit{Pkt: p, Seq: i, Head: i == 0, Tail: i == n-1}
	}
	return fs
}
