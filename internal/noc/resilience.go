package noc

import (
	"fmt"

	"repro/internal/fault"
)

// xfer tracks one logical end-to-end transfer across its transmission
// attempts. The first wire packet's ID doubles as the logical id.
type xfer struct {
	pkt       *Packet // original packet: the clone template, owns Meta
	attempts  int     // wire packets injected so far (1 = original)
	inFlight  int     // wire packets currently queued or in the network
	delivered bool    // an uncorrupted copy reached the destination
	lost      bool    // retry budget exhausted; transfer abandoned
	nextRetx  uint64  // cycle the retransmission timeout fires
}

// faultState is the per-mesh fault-injection and recovery machinery:
// the injector (private RNG stream), the end-to-end retransmission table,
// and the bookkeeping the watchdog and Quiet() need. It exists only when
// cfg.Fault.Rate > 0, so the zero-fault fast path stays untouched.
type faultState struct {
	cfg     fault.Config
	inj     *fault.Injector
	xfers   map[uint64]*xfer
	order   []uint64 // lids in injection order, for deterministic timeout scans
	pending int      // transfers neither delivered nor abandoned
}

func newFaultState(cfg fault.Config) *faultState {
	return &faultState{
		cfg:   cfg,
		inj:   fault.NewInjector(cfg),
		xfers: make(map[uint64]*xfer),
	}
}

// onInject registers a fresh logical transfer for packet p (already queued
// at its source NI with wire ID assigned).
func (fs *faultState) onInject(n *meshNet, p *Packet) {
	p.lid = p.ID
	p.attempt = 1
	fs.xfers[p.lid] = &xfer{
		pkt:      p,
		attempts: 1,
		inFlight: 1,
		nextRetx: fs.cfg.RetxDeadline(n.cycle, 1),
	}
	fs.order = append(fs.order, p.lid)
	fs.pending++
}

// tick drives the cycle-granular fault machinery: places stuck-VC faults
// and fires due retransmission timeouts. Runs at the top of meshNet.Tick,
// so re-injected packets compete for injection bandwidth this cycle.
func (fs *faultState) tick(n *meshNet) {
	// Transient stuck-at fault on a random input VC's switch allocation.
	if fs.inj.StickVC() {
		r := n.routers[fs.inj.Pick(len(n.routers))]
		port := fs.inj.Pick(r.nIn)
		vc := fs.inj.Pick(r.p.numVCs)
		until := n.cycle + fs.cfg.StuckCycles
		if r.stuck[port][vc] < until {
			r.stuck[port][vc] = until
		}
		n.stats.StuckVCFaults++
	}

	// Timeout-driven retransmission with bounded exponential backoff.
	kept := fs.order[:0]
	for _, lid := range fs.order {
		x, ok := fs.xfers[lid]
		if !ok {
			continue
		}
		kept = append(kept, lid)
		if x.delivered || x.lost || n.cycle < x.nextRetx {
			continue
		}
		retries := x.attempts - 1
		if fs.cfg.MaxRetries > 0 && retries >= fs.cfg.MaxRetries {
			x.lost = true
			fs.pending--
			n.stats.LostPackets++
			continue
		}
		if !fs.reinject(n, x) {
			x.nextRetx = n.cycle + 1 // source queue full; retry next cycle
		}
	}
	fs.order = kept
}

// reinject clones the transfer's packet and offers it at the source NI.
// The clone keeps the logical id, Meta and original offer time (so
// TotalLatency spans the whole recovery), but gets a fresh wire ID, route
// plan and hop budget.
func (fs *faultState) reinject(n *meshNet, x *xfer) bool {
	orig := x.pkt
	if !n.CanInject(orig.Src, orig.Class) {
		return false
	}
	clone := &Packet{
		Src:       orig.Src,
		Dst:       orig.Dst,
		Class:     orig.Class,
		Bytes:     orig.Bytes,
		Line:      orig.Line,
		Write:     orig.Write,
		Meta:      orig.Meta,
		OfferedAt: orig.OfferedAt,
		lid:       orig.lid,
	}
	yx, inter, err := n.backend.PlanRoute(clone.Src, clone.Dst, n.rng, n.interScratch)
	if err != nil {
		panic(err) // the original routed; a replan cannot fail
	}
	clone.YXPhase, clone.Intermediate = yx, inter
	clone.ID = n.nextPkt
	n.nextPkt++
	x.attempts++
	x.inFlight++
	clone.attempt = x.attempts
	x.nextRetx = fs.cfg.RetxDeadline(n.cycle, x.attempts)
	n.nis[clone.Src].enqueue(clone)
	n.active++
	n.stats.Retransmits++
	return true
}

// onAssembled is the end-to-end check at the ejection NI: it decides
// whether the assembled wire packet is delivered to the caller, dropped as
// corrupt (to be recovered by timeout), or discarded as a duplicate of an
// already-delivered transfer.
func (fs *faultState) onAssembled(n *meshNet, pkt *Packet) (deliver bool) {
	x := fs.xfers[pkt.lid]
	if x == nil {
		// A transfer injected before faults were enabled mid-run; pass through.
		return true
	}
	x.inFlight--
	switch {
	case pkt.corrupt:
		n.stats.DroppedPackets++
		n.stats.DroppedFlits += uint64(pkt.flits)
	case x.lost:
		// A straggler of an abandoned transfer; discard silently.
	case x.delivered:
		n.stats.DuplicatePackets++
	default:
		x.delivered = true
		fs.pending--
		n.stats.RetriesPerPacket.Add(x.attempts - 1)
		deliver = true
	}
	if (x.delivered || x.lost) && x.inFlight == 0 {
		delete(fs.xfers, pkt.lid)
	}
	return deliver
}

// corruptDelivery applies the link-fault draw for one flit delivery and
// marks the packet corrupt on a hit. Corrupted flits keep flowing (credit
// flow control acknowledges them), so network invariants hold; the damage
// surfaces at the ejection NI's end-to-end check.
func (fs *faultState) corruptDelivery(n *meshNet, f *Flit) {
	if fs.inj.CorruptFlit() {
		f.Pkt.corrupt = true
		n.stats.CorruptFlits++
	}
}

// delayCredit applies the credit-loss draw to one credit transfer and
// returns the extra delay: a lost credit is recovered by the upstream
// resync protocol after CreditResyncCycles.
func (fs *faultState) delayCredit(n *meshNet) uint64 {
	if fs.inj.LoseCredit() {
		n.stats.LostCredits++
		return fs.cfg.CreditResyncCycles
	}
	return 0
}

// Health returns the sticky watchdog verdict: nil while the network is
// sound, a *fault.HangError (deadlock, livelock or conservation violation)
// once the monitor has tripped.
func (n *meshNet) Health() error {
	if n.health == nil {
		return nil
	}
	return n.health
}

// Diagnostics returns the structured dump behind a non-nil Health verdict.
func (n *meshNet) Diagnostics() *fault.Diagnostic {
	if n.health == nil {
		return nil
	}
	return n.health.Diag
}

// inFlightTotal counts work that should eventually cause movement: wire
// packets (queued or in-network) plus transfers awaiting a retransmission
// timeout.
func (n *meshNet) inFlightTotal() int {
	t := n.active
	if n.fs != nil {
		t += n.fs.pending
	}
	return t
}

// observeHealth runs the cycle-driven monitors: deadlock watchdog and the
// periodic flit-conservation audit. The first trip wins and sticks.
func (n *meshNet) observeHealth() {
	if n.wd == nil || n.health != nil {
		return
	}
	if n.wd.Observe(n.cycle, n.moveCount, n.inFlightTotal()) {
		n.health = fault.Hang(fault.ErrDeadlock, n.diagnose("deadlock"))
		return
	}
	if n.auditEvery > 0 && n.cycle%n.auditEvery == 0 {
		if err := n.CheckFlitConservation(); err != nil {
			d := n.diagnose("invariant")
			d.Notes = append(d.Notes, err.Error())
			n.health = fault.Hang(fault.ErrInvariant, d)
		}
	}
}

// tripLivelock raises the sticky livelock verdict for pkt, the cycle's
// winning hop-budget violation (resolved across shards by the epilogue).
// Runs only in the serial epilogue, so the diagnostic snapshot is taken at
// a cycle boundary with every queue in a consistent state.
func (n *meshNet) tripLivelock(pkt *Packet) {
	d := n.diagnose("livelock")
	d.Notes = append(d.Notes,
		fmt.Sprintf("packet %d (%d->%d, attempt %d) exceeded hop budget %d",
			pkt.ID, pkt.Src, pkt.Dst, pkt.attempt, n.hopBudget))
	n.health = fault.Hang(fault.ErrLivelock, d)
}

// inNetworkFlits counts every flit currently buffered in the mesh: input
// VC buffers, flits on channel wires, and ejection queues.
func (n *meshNet) inNetworkFlits() uint64 {
	var total uint64
	for _, r := range n.routers {
		for in := range r.inputs {
			for v := range r.inputs[in] {
				total += uint64(r.inputs[in][v].buf.Len())
			}
		}
		for e := range r.ejQ {
			total += uint64(r.ejQ[e].Len())
		}
	}
	for _, ch := range n.flitChans {
		total += uint64(ch.q.Len())
	}
	return total
}

// CheckFlitConservation audits the invariant
//
//	injected flits == flits in the network + ejected flits
//
// With the end-to-end fault model no flit is destroyed mid-network
// (corrupted flits still traverse and eject), so any imbalance is a
// simulator bug or an unmodeled loss. Returns nil when the books balance.
func (n *meshNet) CheckFlitConservation() error {
	var injected, ejected uint64
	for _, v := range n.stats.InjectedFlits {
		injected += v
	}
	for _, v := range n.stats.EjectedFlits {
		ejected += v
	}
	return fault.CheckConservation(injected, n.inNetworkFlits(), ejected)
}

// vcStateName renders an input VC lifecycle state for diagnostics.
func vcStateName(s vcState) string {
	switch s {
	case vcIdle:
		return "idle"
	case vcWaitVA:
		return "vc-alloc"
	case vcActive:
		return "active"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// diagnose snapshots the network for a structured hang report: every
// occupied input VC with its head packet, why it is blocked, plus source
// queue and retransmission bookkeeping.
func (n *meshNet) diagnose(kind string) *fault.Diagnostic {
	d := &fault.Diagnostic{
		Kind:     kind,
		Cycle:    n.cycle,
		InFlight: n.inFlightTotal(),
	}
	if n.wd != nil {
		d.LastMove = n.wd.LastMovement()
	}
	for _, r := range n.routers {
		for in := range r.inputs {
			for v := range r.inputs[in] {
				ivc := &r.inputs[in][v]
				if ivc.buf.Len() == 0 {
					continue
				}
				head := *ivc.buf.Front()
				age := n.cycle - head.Pkt.OfferedAt
				if age > d.OldestPkt {
					d.OldestPkt = age
				}
				dump := fault.VCDump{
					Node:      int(r.p.node),
					Port:      in,
					VC:        v,
					Occupancy: ivc.buf.Len(),
					State:     vcStateName(ivc.state),
					PktID:     head.Pkt.ID,
					PktAge:    age,
					Hops:      head.Pkt.hops,
				}
				switch {
				case r.stuck != nil && r.stuck[in][v] > n.cycle:
					dump.Blocked = fmt.Sprintf("stuck-VC fault until cycle %d", r.stuck[in][v])
				case ivc.state == vcActive && !r.outputReady(ivc.outPort, ivc.outVC):
					dump.Blocked = fmt.Sprintf("no credit for out port %d vc %d", ivc.outPort, ivc.outVC)
				case ivc.state == vcWaitVA:
					dump.Blocked = fmt.Sprintf("waiting for an output VC on port %d", ivc.outPort)
				}
				d.VCs = append(d.VCs, dump)
			}
		}
	}
	queued := 0
	for _, ni := range n.nis {
		for c := range ni.srcQ {
			queued += ni.srcQ[c].Len()
		}
	}
	d.Notes = append(d.Notes, fmt.Sprintf(
		"%d wire packets active, %d queued at sources, %d flits in network",
		n.active, queued, n.inNetworkFlits()))
	if n.fs != nil {
		d.Notes = append(d.Notes, fmt.Sprintf(
			"%d transfers pending end-to-end, %d retransmits, %d corrupt flits, %d lost credits",
			n.fs.pending, n.stats.Retransmits, n.stats.CorruptFlits, n.stats.LostCredits))
	}
	return d
}
