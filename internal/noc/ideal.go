package noc

import (
	"fmt"

	"repro/internal/ring"
)

// Ideal is a zero-latency network with an optional aggregate bandwidth cap,
// used for the paper's limit studies: Fig 6 sweeps the cap (in flits per
// interconnect cycle across the whole chip), and the "perfect network" of
// Fig 7 is the uncapped case. Once accepted, a packet is delivered to its
// destination in the same cycle; acceptance consumes budget equal to the
// packet's flit count, and multiple sources and destinations may transfer
// in one cycle.
type Ideal struct {
	numNodes  int
	flitBytes int
	cap       float64 // flits/cycle accepted; <= 0 means infinite
	budget    float64
	pending   ring.Ring[*Packet] // grows on demand; steady state never reallocates
	delivered [][]*Packet
	spare     [][]*Packet // double-buffers delivered batches per node
	cycle     uint64
	active    int
	nextPkt   uint64
	stats     NetStats
}

// NewIdeal builds an ideal network over numNodes nodes. flitsPerCycleCap
// <= 0 gives the perfect (infinite-bandwidth) network.
func NewIdeal(numNodes, flitBytes int, flitsPerCycleCap float64) (*Ideal, error) {
	if numNodes <= 0 || flitBytes <= 0 {
		return nil, fmt.Errorf("noc: ideal network needs positive node count and flit size")
	}
	n := &Ideal{numNodes: numNodes, flitBytes: flitBytes, cap: flitsPerCycleCap}
	n.pending = ring.New[*Packet](16, 0)
	n.delivered = make([][]*Packet, numNodes)
	n.spare = make([][]*Packet, numNodes)
	n.stats.InjectedFlits = make([]uint64, numNodes)
	n.stats.InjectedPackets = make([]uint64, numNodes)
	n.stats.InjectedBytes = make([]uint64, numNodes)
	n.stats.EjectedFlits = make([]uint64, numNodes)
	return n, nil
}

// MustNewIdeal is NewIdeal but panics on error.
func MustNewIdeal(numNodes, flitBytes int, cap float64) *Ideal {
	n, err := NewIdeal(numNodes, flitBytes, cap)
	if err != nil {
		panic(err)
	}
	return n
}

// CanInject always reports true: the ideal network has unbounded source
// queues; the bandwidth cap delays rather than refuses packets.
func (n *Ideal) CanInject(NodeID, TrafficClass) bool { return true }

// TryInject accepts p unconditionally.
func (n *Ideal) TryInject(p *Packet) bool {
	if p.Src < 0 || int(p.Src) >= n.numNodes || p.Dst < 0 || int(p.Dst) >= n.numNodes {
		panic(fmt.Sprintf("noc: inject with bad endpoints %d->%d", p.Src, p.Dst))
	}
	p.ID = n.nextPkt
	n.nextPkt++
	p.OfferedAt = n.cycle
	n.pending.Push(p)
	n.active++
	return true
}

// Tick delivers queued packets in arrival order until the cycle's flit
// budget is spent. The budget may go negative on the last packet (large
// packets are not starved by small budgets); the deficit carries over.
func (n *Ideal) Tick() {
	n.cycle++
	n.stats.Cycles++
	if n.cap > 0 {
		n.budget += n.cap
		if n.budget > n.cap {
			// Idle cycles do not bank unlimited credit.
			n.budget = n.cap
		}
	}
	for n.pending.Len() > 0 {
		if n.cap > 0 && n.budget <= 0 {
			break
		}
		p := n.pending.Pop()
		flits := flitCount(p.Bytes, n.flitBytes)
		p.flits = flits
		if n.cap > 0 {
			n.budget -= float64(flits)
		}
		p.InjectedAt = n.cycle
		p.ArrivedAt = n.cycle
		n.delivered[p.Dst] = append(n.delivered[p.Dst], p)
		n.stats.InjectedFlits[p.Src] += uint64(flits)
		n.stats.InjectedPackets[p.Src]++
		n.stats.InjectedBytes[p.Src] += uint64(p.Bytes)
		n.stats.EjectedFlits[p.Dst] += uint64(flits)
		n.stats.NetLatency.Add(0)
		n.stats.TotalLatency.Add(float64(p.ArrivedAt - p.OfferedAt))
		n.stats.LatencyByClass[p.Class].Add(0)
		n.active--
	}
}

// Delivered returns and clears packets delivered at node. The batch is
// double-buffered per node: the returned slice is valid until the next
// Delivered call for the same node.
func (n *Ideal) Delivered(node NodeID) []*Packet {
	out := n.delivered[node]
	n.delivered[node] = n.spare[node][:0]
	n.spare[node] = out
	return out
}

// Cycle returns elapsed cycles.
func (n *Ideal) Cycle() uint64 { return n.cycle }

// Quiet reports whether no packets are pending.
func (n *Ideal) Quiet() bool { return n.active == 0 }

// Stats returns the counters.
func (n *Ideal) Stats() *NetStats { return &n.stats }

// Health always reports sound: the ideal network models no faults and
// cannot deadlock.
func (n *Ideal) Health() error { return nil }

// NextWorkCycle reports work on the very next tick while packets are
// pending (the budget replenishes and deliveries drain), and NeverCycle
// once the queue is empty.
func (n *Ideal) NextWorkCycle() uint64 {
	if n.pending.Len() > 0 {
		return n.cycle + 1
	}
	return NeverCycle
}

// SkipAhead credits k idle ticks: cycle counters advance and the budget
// replays its per-tick replenish-and-clamp, which reaches the cap fixed
// point after at most one tick and then stops.
func (n *Ideal) SkipAhead(k uint64) {
	n.cycle += k
	n.stats.Cycles += k
	if n.cap > 0 {
		for ; k > 0; k-- {
			n.budget += n.cap
			if n.budget > n.cap {
				n.budget = n.cap
				break
			}
		}
	}
}
