package noc

import "repro/internal/ring"

// flitEvent is a flit in flight on a channel, delivered when due <= cycle.
type flitEvent struct {
	flit Flit
	due  uint64
}

// channel is a unidirectional link between two routers (or from a router to
// its local ejection queue). Flits arrive after the link latency. The event
// queue is a hard-bounded ring: wire occupancy per VC is credit-limited to
// the downstream buffer depth, so numVCs*bufDepth flits is a proven bound.
//
// Sharding: the queue belongs to the destination router's shard (sh), the
// only code that pops it. A channel crossing a shard boundary has xmail set
// to the SOURCE shard's outgoing mailbox; sends park there and the serial
// epilogue moves them into q at the cycle boundary, so shards never write
// each other's queues. Channel latency makes every event due next cycle at
// the earliest, so the deferred hand-off is invisible to the simulation.
type channel struct {
	idx     int    // index into net.flitChans, for the active list
	src     NodeID // sending router (shard assignment)
	dst     *router
	dstPort int // input port index at dst
	sh      *meshShard
	xmail   *ring.Ring[flitMail] // source shard's mailbox; nil intra-shard
	q       ring.Ring[flitEvent]
}

func (c *channel) send(f Flit, due uint64) {
	ev := flitEvent{flit: f, due: due}
	if c.xmail != nil {
		c.xmail.Push(flitMail{ch: c, ev: ev})
		return
	}
	c.q.Push(ev)
	c.sh.flitActive.set(c.idx)
}

// deliver moves all arrived flits into the destination input buffers.
// Flits are queued in send order and due values are monotonic per channel,
// so delivery preserves order. Each delivery is the link fault model's
// strike point: a corrupted flit still occupies its buffer slot and flows
// on (flow control acknowledges it), but poisons its packet for the
// end-to-end check at the ejection interface.
func (c *channel) deliver(cycle uint64) {
	for c.q.Len() > 0 && c.q.Front().due <= cycle {
		ev := c.q.Pop()
		if fs := c.dst.net.fs; fs != nil {
			fs.corruptDelivery(c.dst.net, &ev.flit)
		}
		c.dst.acceptFlit(c.dstPort, ev.flit, cycle)
	}
}

// creditEvent returns one buffer slot to the upstream router's output unit.
type creditEvent struct {
	vc  int
	due uint64
}

// creditChannel carries credits back along a link: dst is the upstream
// router and dstPort its output port feeding the link. Credit conservation
// bounds the in-flight credits per VC by the buffer depth, so the ring is
// hard-bounded at numVCs*bufDepth like the flit channel. Shard ownership
// mirrors the flit channel: the upstream (dst) shard owns the queue, and a
// boundary-crossing credit parks in the sender's mailbox.
type creditChannel struct {
	idx     int    // index into net.credChans, for the active list
	src     NodeID // sending (downstream) router
	dst     *router
	dstPort int
	sh      *meshShard
	xmail   *ring.Ring[credMail] // source shard's mailbox; nil intra-shard
	q       ring.Ring[creditEvent]
}

// send queues one credit. A credit-loss fault delays it by the resync
// window instead of destroying it, so credit conservation holds at
// quiescence and the invariant checks stay valid.
func (c *creditChannel) send(vc int, due uint64) {
	if fs := c.dst.net.fs; fs != nil {
		due += fs.delayCredit(c.dst.net)
	}
	ev := creditEvent{vc: vc, due: due}
	if c.xmail != nil {
		c.xmail.Push(credMail{cc: c, ev: ev})
		return
	}
	c.q.Push(ev)
	c.sh.credActive.set(c.idx)
}

// deliver returns all due credits. Resync-delayed credits make due values
// non-monotonic, so the whole queue is scanned, compacting the not-yet-due
// remainder in place; credits on one VC are fungible, and the scan order is
// the deterministic send order.
func (c *creditChannel) deliver(cycle uint64) {
	kept := 0
	n := c.q.Len()
	for i := 0; i < n; i++ {
		ev := *c.q.At(i)
		if ev.due <= cycle {
			c.dst.acceptCredit(c.dstPort, ev.vc)
		} else {
			*c.q.At(kept) = ev
			kept++
		}
	}
	c.q.Truncate(kept)
}
