package noc

// flitEvent is a flit in flight on a channel, delivered when due <= cycle.
type flitEvent struct {
	flit Flit
	due  uint64
}

// channel is a unidirectional link between two routers (or from a router to
// its local ejection queue). Flits arrive after the link latency.
type channel struct {
	dst     *router
	dstPort int // input port index at dst
	q       []flitEvent
}

func (c *channel) send(f Flit, due uint64) {
	c.q = append(c.q, flitEvent{flit: f, due: due})
}

// deliver moves all arrived flits into the destination input buffers.
// Flits are queued in send order and due values are monotonic per channel,
// so delivery preserves order.
func (c *channel) deliver(cycle uint64) {
	n := 0
	for _, ev := range c.q {
		if ev.due <= cycle {
			c.dst.acceptFlit(c.dstPort, ev.flit, cycle)
			n++
		} else {
			break
		}
	}
	if n > 0 {
		c.q = c.q[:copy(c.q, c.q[n:])]
	}
}

// creditEvent returns one buffer slot to the upstream router's output unit.
type creditEvent struct {
	vc  int
	due uint64
}

// creditChannel carries credits back along a link: dst is the upstream
// router and dstPort its output port feeding the link.
type creditChannel struct {
	dst     *router
	dstPort int
	q       []creditEvent
}

func (c *creditChannel) send(vc int, due uint64) {
	c.q = append(c.q, creditEvent{vc: vc, due: due})
}

func (c *creditChannel) deliver(cycle uint64) {
	n := 0
	for _, ev := range c.q {
		if ev.due <= cycle {
			c.dst.acceptCredit(c.dstPort, ev.vc)
			n++
		} else {
			break
		}
	}
	if n > 0 {
		c.q = c.q[:copy(c.q, c.q[n:])]
	}
}
