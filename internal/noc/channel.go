package noc

// flitEvent is a flit in flight on a channel, delivered when due <= cycle.
type flitEvent struct {
	flit Flit
	due  uint64
}

// channel is a unidirectional link between two routers (or from a router to
// its local ejection queue). Flits arrive after the link latency.
type channel struct {
	dst     *router
	dstPort int // input port index at dst
	q       []flitEvent
}

func (c *channel) send(f Flit, due uint64) {
	c.q = append(c.q, flitEvent{flit: f, due: due})
}

// deliver moves all arrived flits into the destination input buffers.
// Flits are queued in send order and due values are monotonic per channel,
// so delivery preserves order. Each delivery is the link fault model's
// strike point: a corrupted flit still occupies its buffer slot and flows
// on (flow control acknowledges it), but poisons its packet for the
// end-to-end check at the ejection interface.
func (c *channel) deliver(cycle uint64) {
	n := 0
	for _, ev := range c.q {
		if ev.due <= cycle {
			if fs := c.dst.net.fs; fs != nil {
				fs.corruptDelivery(c.dst.net, &ev.flit)
			}
			c.dst.acceptFlit(c.dstPort, ev.flit, cycle)
			n++
		} else {
			break
		}
	}
	if n > 0 {
		c.q = c.q[:copy(c.q, c.q[n:])]
	}
}

// creditEvent returns one buffer slot to the upstream router's output unit.
type creditEvent struct {
	vc  int
	due uint64
}

// creditChannel carries credits back along a link: dst is the upstream
// router and dstPort its output port feeding the link.
type creditChannel struct {
	dst     *router
	dstPort int
	q       []creditEvent
}

// send queues one credit. A credit-loss fault delays it by the resync
// window instead of destroying it, so credit conservation holds at
// quiescence and the invariant checks stay valid.
func (c *creditChannel) send(vc int, due uint64) {
	if fs := c.dst.net.fs; fs != nil {
		due += fs.delayCredit(c.dst.net)
	}
	c.q = append(c.q, creditEvent{vc: vc, due: due})
}

// deliver returns all due credits. Resync-delayed credits make due values
// non-monotonic, so the whole queue is scanned; credits on one VC are
// fungible, and the scan order is the deterministic send order.
func (c *creditChannel) deliver(cycle uint64) {
	kept := c.q[:0]
	for _, ev := range c.q {
		if ev.due <= cycle {
			c.dst.acceptCredit(c.dstPort, ev.vc)
		} else {
			kept = append(kept, ev)
		}
	}
	c.q = kept
}
