package noc

import (
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/xrand"
)

// faultyTraffic drives compute<->MC traffic through a faulty mesh until
// every logical transfer is delivered, checking flit conservation along the
// way. Returns the mesh for stat assertions.
func faultyTraffic(t *testing.T, cfg Config, packets int, seed uint64) *Mesh {
	t.Helper()
	m := MustNewMesh(cfg)
	topo := m.Topology()
	rng := xrand.New(seed)
	comp := topo.ComputeNodes()
	mcs := topo.MCs()
	seen := make(map[uint64]bool)
	sent, recv := 0, 0
	for cycle := 0; cycle < 400000 && (recv < packets || !m.Quiet()); cycle++ {
		if sent < packets {
			var p *Packet
			if sent%2 == 0 {
				p = &Packet{Src: comp[rng.Intn(len(comp))], Dst: mcs[rng.Intn(len(mcs))],
					Class: ClassRequest, Bytes: 8}
			} else {
				p = &Packet{Src: mcs[rng.Intn(len(mcs))], Dst: comp[rng.Intn(len(comp))],
					Class: ClassReply, Bytes: 64}
			}
			if m.TryInject(p) {
				sent++
			}
		}
		m.Tick()
		for _, p := range collectAll(m, topo.NumNodes()) {
			if seen[p.lid] {
				t.Fatalf("logical transfer %d delivered twice", p.lid)
			}
			seen[p.lid] = true
			recv++
		}
		if cycle%1000 == 999 {
			if err := m.CheckFlitConservation(); err != nil {
				t.Fatalf("cycle %d: %v", cycle, err)
			}
		}
	}
	if recv != packets {
		t.Fatalf("delivered %d/%d transfers (active=%d)", recv, packets, m.active)
	}
	if err := m.CheckFlitConservation(); err != nil {
		t.Fatalf("after drain: %v", err)
	}
	if err := m.Health(); err != nil {
		t.Fatalf("healthy faulty run reported %v", err)
	}
	return m
}

func TestFaultyRunRecoversAllTransfers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Fault = cfg.Fault.WithRate(0.002, 7)
	cfg.Fault.RetxTimeout = 512 // keep recovery fast enough for the test cap
	m := faultyTraffic(t, cfg, 2000, 21)
	st := m.Stats()
	if st.CorruptFlits == 0 || st.DroppedPackets == 0 || st.Retransmits == 0 {
		t.Errorf("fault path never exercised: corrupt=%d dropped=%d retx=%d",
			st.CorruptFlits, st.DroppedPackets, st.Retransmits)
	}
	if st.StuckVCFaults == 0 || st.LostCredits == 0 {
		t.Errorf("router/credit faults never placed: stuck=%d lostCred=%d",
			st.StuckVCFaults, st.LostCredits)
	}
	if st.LostPackets != 0 {
		t.Errorf("%d transfers lost despite unlimited retries", st.LostPackets)
	}
	if n := st.RetriesPerPacket.N(); n != 2000 {
		t.Errorf("retry distribution has %d samples, want 2000", n)
	}
	if st.RetriesPerPacket.Max() == 0 {
		t.Error("no delivered transfer needed a retry at rate 0.002")
	}
}

func TestFaultyRunDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Fault = cfg.Fault.WithRate(0.005, 99)
	cfg.Fault.RetxTimeout = 512
	a := faultyTraffic(t, cfg, 1000, 33)
	b := faultyTraffic(t, cfg, 1000, 33)
	sa, sb := a.Stats(), b.Stats()
	if a.Cycle() != b.Cycle() {
		t.Errorf("runs drained at different cycles: %d vs %d", a.Cycle(), b.Cycle())
	}
	if sa.CorruptFlits != sb.CorruptFlits || sa.Retransmits != sb.Retransmits ||
		sa.DroppedPackets != sb.DroppedPackets || sa.LostCredits != sb.LostCredits ||
		sa.StuckVCFaults != sb.StuckVCFaults || sa.FlitHops != sb.FlitHops {
		t.Errorf("equal-seeded faulty runs diverged:\n%+v\nvs\n%+v", *sa, *sb)
	}
	if sa.NetLatency.Value() != sb.NetLatency.Value() {
		t.Errorf("latency diverged: %v vs %v", sa.NetLatency.Value(), sb.NetLatency.Value())
	}
}

// TestZeroRateBitIdentical checks the acceptance criterion that a rate-0
// fault config (watchdog on or off) leaves the network bit-identical to the
// zero-value config: same drain cycle, same hop and latency totals.
func TestZeroRateBitIdentical(t *testing.T) {
	base := DefaultConfig()
	base.Fault = fault.Config{} // subsystem entirely absent
	watch := DefaultConfig()    // watchdog on, rate 0

	run := func(cfg Config) (uint64, uint64, float64) {
		m := MustNewMesh(cfg)
		topo := m.Topology()
		rng := xrand.New(5)
		comp := topo.ComputeNodes()
		mcs := topo.MCs()
		sent := 0
		for cycle := 0; cycle < 200000 && (sent < 1500 || !m.Quiet()); cycle++ {
			if sent < 1500 {
				p := &Packet{Src: comp[rng.Intn(len(comp))], Dst: mcs[rng.Intn(len(mcs))],
					Class: ClassRequest, Bytes: 32}
				if m.TryInject(p) {
					sent++
				}
			}
			m.Tick()
			collectAll(m, topo.NumNodes())
		}
		st := m.Stats()
		return m.Cycle(), st.FlitHops, st.NetLatency.Value()
	}

	c1, h1, l1 := run(base)
	c2, h2, l2 := run(watch)
	if c1 != c2 || h1 != h2 || l1 != l2 {
		t.Errorf("rate-0 monitored run diverged from unmonitored: cycles %d/%d hops %d/%d lat %v/%v",
			c1, c2, h1, h2, l1, l2)
	}
}

func TestWatchdogDetectsDeadlock(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Fault = cfg.Fault.WithRate(1, 3) // every flit corrupt, heavy credit loss
	cfg.Fault.CreditResyncCycles = 1 << 40
	cfg.Fault.RetxTimeout = 1 << 40 // no recovery: the network must wedge
	cfg.Fault.WatchdogCycles = 2000
	m := MustNewMesh(cfg)
	topo := m.Topology()
	comp := topo.ComputeNodes()
	mcs := topo.MCs()
	for i := 0; i < 200; i++ {
		m.TryInject(&Packet{Src: comp[i%len(comp)], Dst: mcs[i%len(mcs)],
			Class: ClassRequest, Bytes: 64})
	}
	var verdict error
	for cycle := 0; cycle < 100000; cycle++ {
		m.Tick()
		collectAll(m, topo.NumNodes())
		if verdict = m.Health(); verdict != nil {
			break
		}
	}
	if verdict == nil {
		t.Fatal("watchdog never tripped on a wedged network")
	}
	if !errors.Is(verdict, fault.ErrDeadlock) {
		t.Fatalf("verdict %v is not ErrDeadlock", verdict)
	}
	var he *fault.HangError
	if !fault.AsHang(verdict, &he) {
		t.Fatal("verdict does not carry a HangError")
	}
	if he.Diag.Empty() {
		t.Fatal("deadlock verdict has an empty diagnostic")
	}
	if he.Diag.InFlight == 0 {
		t.Error("deadlock declared with nothing in flight")
	}
	// The verdict is sticky and the simulation remains steppable (graceful
	// degradation: no panic, callers choose when to stop).
	m.Tick()
	if !errors.Is(m.Health(), fault.ErrDeadlock) {
		t.Error("health verdict did not stick")
	}
}

func TestFlitConservationAcross10kFaultyCycles(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Fault = cfg.Fault.WithRate(0.01, 11)
	cfg.Fault.RetxTimeout = 256
	m := MustNewMesh(cfg)
	topo := m.Topology()
	rng := xrand.New(17)
	comp := topo.ComputeNodes()
	mcs := topo.MCs()
	for cycle := 0; cycle < 10000; cycle++ {
		p := &Packet{Src: comp[rng.Intn(len(comp))], Dst: mcs[rng.Intn(len(mcs))],
			Class: ClassRequest, Bytes: 64}
		m.TryInject(p)
		m.Tick()
		collectAll(m, topo.NumNodes())
		if cycle%500 == 499 {
			if err := m.CheckFlitConservation(); err != nil {
				t.Fatalf("cycle %d: %v", cycle, err)
			}
		}
	}
	if m.Stats().CorruptFlits == 0 {
		t.Error("10k faulty cycles produced no corrupt flits")
	}
}

func TestDoubleNetworkHealthAndFaults(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Fault = cfg.Fault.WithRate(0.002, 13)
	cfg.Fault.RetxTimeout = 512
	d := MustNewDouble(cfg)
	if err := d.Health(); err != nil {
		t.Fatalf("fresh double network unhealthy: %v", err)
	}
	topo := d.Subnet(ClassRequest).Topology()
	rng := xrand.New(29)
	comp := topo.ComputeNodes()
	mcs := topo.MCs()
	sent, recv := 0, 0
	for cycle := 0; cycle < 400000 && (recv < 1000 || !d.Quiet()); cycle++ {
		if sent < 1000 {
			var p *Packet
			if sent%2 == 0 {
				p = &Packet{Src: comp[rng.Intn(len(comp))], Dst: mcs[rng.Intn(len(mcs))],
					Class: ClassRequest, Bytes: 8}
			} else {
				p = &Packet{Src: mcs[rng.Intn(len(mcs))], Dst: comp[rng.Intn(len(comp))],
					Class: ClassReply, Bytes: 64}
			}
			if d.TryInject(p) {
				sent++
			}
		}
		d.Tick()
		recv += len(collectAll(d, topo.NumNodes()))
	}
	if recv != 1000 {
		t.Fatalf("delivered %d/1000 transfers", recv)
	}
	st := d.Stats()
	if st.CorruptFlits == 0 || st.Retransmits == 0 {
		t.Errorf("sliced network fault path not exercised: corrupt=%d retx=%d",
			st.CorruptFlits, st.Retransmits)
	}
	if err := d.Health(); err != nil {
		t.Fatalf("healthy faulty double run reported %v", err)
	}
}
