package noc

import (
	"testing"

	"repro/internal/xrand"
)

// fuzzRouteConfig decodes the fuzzer's raw selectors into a buildable
// geometry/routing configuration. kind picks the backend (and, for the
// mesh, the routing algorithm); w/h bound the dims to 2..9; mcSel places
// a strided MC set. Decoding never fails — invalid combinations are left
// for BuildBackend to reject, which is itself part of the surface under
// test (it must reject, not panic).
func fuzzRouteConfig(kind, w, h, mcSel uint8) Config {
	cfg := DefaultConfig()
	cfg.Width = 2 + int(w%8)
	cfg.Height = 2 + int(h%8)
	n := cfg.Width * cfg.Height
	stride := 2 + int(mcSel%5)
	cfg.MCs = cfg.MCs[:0]
	for id := int(mcSel % 3); id < n; id += stride {
		cfg.MCs = append(cfg.MCs, NodeID(id))
	}
	switch kind % 5 {
	case 0:
		// mesh, DOR
	case 1:
		cfg.Checkerboard = true
		cfg.Routing = RoutingCheckerboard
		cfg.MCs = CheckerboardPlacement(cfg.Width, cfg.Height, 1+int(mcSel%8))
	case 2:
		cfg.Routing = RoutingROMM
	case 3:
		cfg.Topology = BackendRing
	case 4:
		cfg.Topology = BackendBaseJump
	}
	return cfg
}

// FuzzPlanRoute drives every backend's route planner and per-hop dispatch
// on fuzzer-chosen geometry, MC placement, endpoints and RNG seed. For any
// (src, dst) a planned route must walk NextHop to an ejection exactly at
// dst, never leave through a port the backend wires no channel on, and
// never exceed the minimal hop bound — HopCount(src, dst) for direct
// routes, the sum over both legs for two-phase routes through an
// intermediate (CR case 2, ROMM).
func FuzzPlanRoute(f *testing.F) {
	f.Add(uint8(0), uint8(4), uint8(4), uint8(0), uint8(3), uint8(30), uint64(1))
	f.Add(uint8(1), uint8(4), uint8(4), uint8(6), uint8(0), uint8(35), uint64(7))
	f.Add(uint8(2), uint8(2), uint8(5), uint8(9), uint8(11), uint8(2), uint64(42))
	f.Add(uint8(3), uint8(4), uint8(0), uint8(2), uint8(5), uint8(17), uint64(3))
	f.Add(uint8(4), uint8(6), uint8(6), uint8(12), uint8(63), uint8(1), uint64(9))
	f.Fuzz(func(t *testing.T, kind, w, h, mcSel, src, dst uint8, seed uint64) {
		cfg := fuzzRouteConfig(kind, w, h, mcSel)
		backend, err := BuildBackend(cfg)
		if err != nil {
			return // rejection is a valid verdict; it just must not panic
		}
		n := backend.NumNodes()
		s := NodeID(int(src) % n)
		d := NodeID(int(dst) % n)
		rng := xrand.New(seed | 1)
		yx, inter, err := backend.PlanRoute(s, d, rng, make([]NodeID, 0, n))
		if err != nil {
			// Planners may reject unroutable pairs (checkerboard routing has
			// no path between full-router pairs at odd offsets); rejection
			// must be an error, never a panic or a wandering route.
			return
		}
		bound := backend.HopCount(s, d)
		if inter >= 0 {
			bound = backend.HopCount(s, inter) + backend.HopCount(inter, d)
		}
		p := &Packet{Src: s, Dst: d, Class: ClassRequest, Bytes: 8,
			YXPhase: yx, Intermediate: inter}
		cur := s
		for hops := 0; ; hops++ {
			if hops > bound {
				t.Fatalf("%s: route %d->%d (inter %d) still at node %d after %d hops (bound %d)",
					backend.Kind(), s, d, inter, cur, hops, bound)
			}
			out, eject := backend.NextHop(cur, p)
			if eject {
				if cur != d {
					t.Fatalf("%s: route %d->%d ejected at %d", backend.Kind(), s, d, cur)
				}
				return
			}
			if out >= numDirs {
				t.Fatalf("%s: NextHop at %d returned non-direction port %d",
					backend.Kind(), cur, out)
			}
			next := backend.Neighbor(cur, out)
			if next < 0 {
				t.Fatalf("%s: NextHop at %d left via %v where the backend wires no channel",
					backend.Kind(), cur, out)
			}
			cur = next
		}
	})
}
