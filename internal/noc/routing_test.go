package noc

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// walkRoute follows a planned route hop by hop, validating every turn
// against router connectivity, and returns the hop count.
func walkRoute(t *testing.T, topo *Topology, algo RoutingAlgo, src, dst NodeID, rng *xrand.Rand) int {
	t.Helper()
	yx, inter, err := planRoute(topo, algo, src, dst, rng)
	if err != nil {
		t.Fatalf("planRoute(%d->%d): %v", src, dst, err)
	}
	p := &Packet{Src: src, Dst: dst, YXPhase: yx, Intermediate: inter}
	cur := src
	inPort := -1 // injected
	hops := 0
	for {
		out, eject := nextHop(topo, cur, p)
		if eject {
			return hops
		}
		// A turn at a half-router is only legal going straight through.
		if inPort >= 0 && topo.IsHalf(cur) {
			if Port(out) != Port(inPort).opposite() {
				t.Fatalf("route %d->%d turns at half-router %d (in %v out %v)",
					src, dst, cur, Port(inPort), out)
			}
		}
		next := topo.Neighbor(cur, out)
		if next < 0 {
			t.Fatalf("route %d->%d walks off the mesh at %d via %v", src, dst, cur, out)
		}
		inPort = int(out.opposite())
		cur = next
		hops++
		if hops > topo.NumNodes()*2 {
			t.Fatalf("route %d->%d did not terminate", src, dst)
		}
	}
}

func TestDORRouteShape(t *testing.T) {
	topo := MustNewTopology(6, 6, false, nil)
	rng := xrand.New(1)
	// XY: x first. From (0,0) to (3,2): 3 east then 2 south.
	p := &Packet{Src: topo.Node(0, 0), Dst: topo.Node(3, 2), Intermediate: -1}
	var ports []Port
	cur := p.Src
	for {
		out, eject := nextHop(topo, cur, p)
		if eject {
			break
		}
		ports = append(ports, out)
		cur = topo.Neighbor(cur, out)
	}
	want := []Port{East, East, East, South, South}
	if len(ports) != len(want) {
		t.Fatalf("route = %v, want %v", ports, want)
	}
	for i := range want {
		if ports[i] != want[i] {
			t.Fatalf("route = %v, want %v", ports, want)
		}
	}
	_ = rng
}

func TestDORMinimalForAllPairs(t *testing.T) {
	topo := MustNewTopology(6, 6, false, nil)
	rng := xrand.New(2)
	for s := 0; s < topo.NumNodes(); s++ {
		for d := 0; d < topo.NumNodes(); d++ {
			if s == d {
				continue
			}
			hops := walkRoute(t, topo, RoutingDOR, NodeID(s), NodeID(d), rng)
			if hops != topo.HopCount(NodeID(s), NodeID(d)) {
				t.Fatalf("DOR %d->%d: %d hops, want %d", s, d, hops, topo.HopCount(NodeID(s), NodeID(d)))
			}
		}
	}
}

func TestCheckerboardRoutingAllMixedPairs(t *testing.T) {
	// Every pair with at least one half-router endpoint must route legally
	// and minimally (checkerboard routing is minimal, §V-C).
	topo := MustNewTopology(6, 6, true, nil)
	rng := xrand.New(3)
	checked := 0
	for s := 0; s < topo.NumNodes(); s++ {
		for d := 0; d < topo.NumNodes(); d++ {
			if s == d {
				continue
			}
			src, dst := NodeID(s), NodeID(d)
			if !topo.IsHalf(src) && !topo.IsHalf(dst) {
				cs, cd := topo.Coord(src), topo.Coord(dst)
				if cs.X != cd.X && cs.Y != cd.Y && (cs.X-cd.X)%2 != 0 {
					continue // unroutable full->full pair, excluded by construction
				}
			}
			hops := walkRoute(t, topo, RoutingCheckerboard, src, dst, rng)
			if hops != topo.HopCount(src, dst) {
				t.Fatalf("CR %d->%d: %d hops, want %d (not minimal)", s, d, hops, topo.HopCount(src, dst))
			}
			checked++
		}
	}
	if checked < 900 {
		t.Errorf("only %d pairs checked; expected most of the 1260", checked)
	}
}

func TestCheckerboardCase1UsesYX(t *testing.T) {
	topo := MustNewTopology(6, 6, true, nil)
	rng := xrand.New(4)
	// Full (0,0) -> half (1,2): odd column offset, different row, XY turn at
	// (1,0) which is half => YX required.
	src, dst := topo.Node(0, 0), topo.Node(1, 2)
	yx, inter, err := planRoute(topo, RoutingCheckerboard, src, dst, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !yx || inter != -1 {
		t.Errorf("case 1 plan = (yx=%v inter=%d), want pure YX", yx, inter)
	}
}

func TestCheckerboardCase2UsesIntermediate(t *testing.T) {
	topo := MustNewTopology(6, 6, true, nil)
	rng := xrand.New(5)
	// Half (1,0) -> half (3,2): even column offset, different row, both DOR
	// turn nodes are half => two-phase route via a full intermediate.
	src, dst := topo.Node(1, 0), topo.Node(3, 2)
	yx, inter, err := planRoute(topo, RoutingCheckerboard, src, dst, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !yx || inter < 0 {
		t.Fatalf("case 2 plan = (yx=%v inter=%d), want YX phase with intermediate", yx, inter)
	}
	ci, cs := topo.Coord(inter), topo.Coord(src)
	if topo.IsHalf(inter) {
		t.Error("intermediate must be a full router")
	}
	if ci.Y == cs.Y {
		t.Error("intermediate must not share the source row")
	}
	if (ci.X-cs.X)%2 != 0 {
		t.Error("intermediate must be an even number of columns from the source")
	}
}

func TestCheckerboardIntermediateRandomized(t *testing.T) {
	// Different RNG streams should (eventually) pick different intermediates
	// when several candidates exist.
	topo := MustNewTopology(6, 6, true, nil)
	src, dst := topo.Node(1, 0), topo.Node(5, 4)
	seen := map[NodeID]bool{}
	for seed := uint64(0); seed < 32; seed++ {
		_, inter, err := planRoute(topo, RoutingCheckerboard, src, dst, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		seen[inter] = true
	}
	if len(seen) < 2 {
		t.Errorf("intermediate selection not randomized: always %v", seen)
	}
}

func TestCheckerboardStraightRoutesLegal(t *testing.T) {
	topo := MustNewTopology(6, 6, true, nil)
	rng := xrand.New(6)
	// Same row/column routes pass straight through half-routers.
	for _, pair := range [][2]NodeID{
		{topo.Node(0, 0), topo.Node(5, 0)},
		{topo.Node(2, 0), topo.Node(2, 5)},
		{topo.Node(1, 3), topo.Node(4, 3)},
	} {
		_, inter, err := planRoute(topo, RoutingCheckerboard, pair[0], pair[1], rng)
		if err != nil {
			t.Fatal(err)
		}
		if inter != -1 {
			t.Errorf("straight route %v planned an intermediate (%d)", pair, inter)
		}
		walkRoute(t, topo, RoutingCheckerboard, pair[0], pair[1], rng)
	}
}

func TestCheckerboardUnroutableFullFullPair(t *testing.T) {
	topo := MustNewTopology(6, 6, true, nil)
	rng := xrand.New(7)
	// Full (0,0) -> full (1,1): odd column offset, different rows. §IV-A:
	// cannot be routed without ejection at an intermediate node.
	if _, _, err := planRoute(topo, RoutingCheckerboard, topo.Node(0, 0), topo.Node(1, 1), rng); err == nil {
		t.Error("unroutable full->full pair accepted")
	}
}

func TestPlanRoutePropertyMCTraffic(t *testing.T) {
	// Property: for the paper's actual traffic (compute<->MC with MCs at
	// half-routers), planning always succeeds and routes are minimal.
	topo := MustNewTopology(6, 6, true, CheckerboardPlacement(6, 6, 8))
	rng := xrand.New(8)
	comp := topo.ComputeNodes()
	mcs := topo.MCs()
	f := func(ci, mi uint8, toMC bool) bool {
		c := comp[int(ci)%len(comp)]
		m := mcs[int(mi)%len(mcs)]
		src, dst := c, m
		if !toMC {
			src, dst = m, c
		}
		if src == dst {
			return true
		}
		yx, inter, err := planRoute(topo, RoutingCheckerboard, src, dst, rng)
		if err != nil {
			return false
		}
		p := &Packet{Src: src, Dst: dst, YXPhase: yx, Intermediate: inter}
		cur := src
		hops := 0
		for cur != dst {
			out, eject := nextHop(topo, cur, p)
			if eject {
				return false
			}
			cur = topo.Neighbor(cur, out)
			if cur < 0 {
				return false
			}
			hops++
			if hops > 100 {
				return false
			}
		}
		return hops == topo.HopCount(src, dst)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNextHopPhaseSwitchAtIntermediate(t *testing.T) {
	topo := MustNewTopology(6, 6, true, nil)
	src, dst := topo.Node(1, 0), topo.Node(3, 2)
	inter := topo.Node(1, 2) // full router: (1+2) odd? 3 odd -> half! pick (3,... )
	// Choose a valid intermediate manually: full, not src row, even columns
	// from src: (1,1): parity 2 even -> full, row 1 != 0, dx 0 even. Valid.
	inter = topo.Node(1, 1)
	p := &Packet{Src: src, Dst: dst, YXPhase: true, Intermediate: inter}
	cur := src
	sawSwitch := false
	for cur != dst {
		before := p.YXPhase
		out, eject := nextHop(topo, cur, p)
		if eject {
			t.Fatal("premature ejection")
		}
		if before && !p.YXPhase {
			if cur != inter {
				t.Fatalf("phase switched at %d, want %d", cur, inter)
			}
			sawSwitch = true
		}
		cur = topo.Neighbor(cur, out)
	}
	if !sawSwitch {
		t.Error("no phase switch observed")
	}
	if p.Intermediate != -1 || p.YXPhase {
		t.Error("packet state not cleared after phase switch")
	}
}

func TestROMMDeliversMinimally(t *testing.T) {
	topo := MustNewTopology(6, 6, false, nil)
	rng := xrand.New(17)
	for s := 0; s < topo.NumNodes(); s++ {
		for d := 0; d < topo.NumNodes(); d++ {
			if s == d {
				continue
			}
			hops := walkRoute(t, topo, RoutingROMM, NodeID(s), NodeID(d), rng)
			if hops != topo.HopCount(NodeID(s), NodeID(d)) {
				t.Fatalf("ROMM %d->%d: %d hops, want %d", s, d, hops, topo.HopCount(NodeID(s), NodeID(d)))
			}
		}
	}
}

func TestROMMIntermediateInMinimalQuadrant(t *testing.T) {
	topo := MustNewTopology(6, 6, false, nil)
	for seed := uint64(0); seed < 20; seed++ {
		src, dst := topo.Node(1, 1), topo.Node(4, 4)
		_, inter, err := planRoute(topo, RoutingROMM, src, dst, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if inter < 0 {
			continue // degenerate pick fell back to DOR
		}
		c := topo.Coord(inter)
		if c.X < 1 || c.X > 4 || c.Y < 1 || c.Y > 4 {
			t.Fatalf("intermediate %v outside minimal quadrant", c)
		}
	}
}

func TestROMMRejectedOnCheckerboard(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Checkerboard = true
	cfg.Routing = RoutingROMM
	cfg.NumVCs = 4
	cfg.MCs = CheckerboardPlacement(6, 6, 8)
	if _, err := NewMesh(cfg); err == nil {
		t.Error("ROMM accepted on a checkerboard mesh")
	}
}

func TestROMMMeshTrafficDrains(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Routing = RoutingROMM
	cfg.NumVCs = 4
	crossTraffic(t, cfg, 1500, 44)
}

func TestPlanPacketAndNextHopPort(t *testing.T) {
	topo := MustNewTopology(6, 6, true, CheckerboardPlacement(6, 6, 8))
	rng := xrand.New(9)
	src, dst := topo.ComputeNodes()[0], topo.MCs()[0]
	pkt, err := PlanPacket(topo, src, dst, rng)
	if err != nil {
		t.Fatal(err)
	}
	cur := src
	for hops := 0; cur != dst; hops++ {
		out, eject := NextHopPort(topo, cur, pkt)
		if eject {
			t.Fatal("premature ejection")
		}
		cur = topo.Neighbor(cur, out)
		if hops > 20 {
			t.Fatal("trace did not terminate")
		}
	}
	// Unroutable pairs surface as errors.
	if _, err := PlanPacket(topo, topo.Node(0, 0), topo.Node(1, 1), rng); err == nil {
		t.Error("unroutable pair accepted by PlanPacket")
	}
}
