package noc

import "fmt"

// Port is a direction port of a mesh router. Terminal (injection/ejection)
// ports are numbered after the four directions.
type Port int

// Direction ports.
const (
	North Port = iota
	East
	South
	West
	numDirs
)

// String names the port.
func (p Port) String() string {
	switch p {
	case North:
		return "N"
	case East:
		return "E"
	case South:
		return "S"
	case West:
		return "W"
	}
	return fmt.Sprintf("T%d", int(p-numDirs))
}

// opposite returns the port on the far end of a channel leaving via p.
func (p Port) opposite() Port {
	switch p {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	}
	panic("noc: opposite of non-direction port")
}

// Coord is a mesh coordinate; (0,0) is the top-left tile, Y grows downward.
type Coord struct{ X, Y int }

// Topology describes the mesh geometry and node roles.
type Topology struct {
	Width, Height int
	checkerboard  bool
	mcs           map[NodeID]bool
	mcList        []NodeID
	// routes holds the precomputed per-hop route tables, one per routing
	// phase (0 = XY, 1 = YX), indexed cur×numNodes+target. Route planning
	// (planRoute) decides the phase and intermediate once at injection;
	// every subsequent hop is a single table load. Entries with
	// cur == target are never consulted (routers eject, or retarget, first)
	// and hold routeUnreachable.
	routes [2][]uint8
}

// routeUnreachable marks route-table entries that per-hop routing never
// consults (cur == target).
const routeUnreachable = uint8(numDirs)

// NewTopology builds a W×H mesh. When checkerboard is true, odd-parity
// tiles ((x+y) odd) hold half-routers; mcs lists the tiles hosting memory
// controllers, which must then all sit at half-router tiles (§IV-A).
func NewTopology(width, height int, checkerboard bool, mcs []NodeID) (*Topology, error) {
	if width < 2 || height < 2 {
		return nil, fmt.Errorf("noc: mesh must be at least 2x2, got %dx%d", width, height)
	}
	t := &Topology{Width: width, Height: height, checkerboard: checkerboard, mcs: make(map[NodeID]bool)}
	for _, mc := range mcs {
		if mc < 0 || int(mc) >= width*height {
			return nil, fmt.Errorf("noc: MC node %d out of range for %dx%d mesh", mc, width, height)
		}
		if t.mcs[mc] {
			return nil, fmt.Errorf("noc: duplicate MC node %d", mc)
		}
		if checkerboard && !t.IsHalf(mc) {
			return nil, fmt.Errorf("noc: MC node %d (%v) must be at a half-router tile in a checkerboard mesh",
				mc, t.Coord(mc))
		}
		t.mcs[mc] = true
		t.mcList = append(t.mcList, mc)
	}
	t.buildRoutes()
	return t, nil
}

// buildRoutes precomputes the per-phase next-hop tables. Both phases are
// pure functions of (cur, target) — XY moves horizontally until the column
// matches, YX vertically until the row matches — so the per-flit case
// analysis collapses to one array load at simulation time.
func (t *Topology) buildRoutes() {
	n := t.NumNodes()
	for phase := range t.routes {
		tab := make([]uint8, n*n)
		for cur := 0; cur < n; cur++ {
			cc := t.Coord(NodeID(cur))
			for target := 0; target < n; target++ {
				p := routeUnreachable
				if cur != target {
					ct := t.Coord(NodeID(target))
					if phase == 1 { // YX: vertical first
						if cc.Y != ct.Y {
							p = uint8(vertical(cc, ct))
						} else {
							p = uint8(horizontal(cc, ct))
						}
					} else { // XY: horizontal first
						if cc.X != ct.X {
							p = uint8(horizontal(cc, ct))
						} else {
							p = uint8(vertical(cc, ct))
						}
					}
				}
				tab[cur*n+target] = p
			}
		}
		t.routes[phase] = tab
	}
}

// MustNewTopology is NewTopology but panics on error.
func MustNewTopology(width, height int, checkerboard bool, mcs []NodeID) *Topology {
	t, err := NewTopology(width, height, checkerboard, mcs)
	if err != nil {
		panic(err)
	}
	return t
}

// NumNodes returns the tile count.
func (t *Topology) NumNodes() int { return t.Width * t.Height }

// Node returns the id of the tile at (x, y).
func (t *Topology) Node(x, y int) NodeID { return NodeID(y*t.Width + x) }

// Coord returns the coordinate of node n.
func (t *Topology) Coord(n NodeID) Coord {
	return Coord{X: int(n) % t.Width, Y: int(n) / t.Width}
}

// IsHalf reports whether node n holds a half-router.
func (t *Topology) IsHalf(n NodeID) bool {
	if !t.checkerboard {
		return false
	}
	c := t.Coord(n)
	return (c.X+c.Y)%2 == 1
}

// Checkerboard reports whether half-routers are enabled.
func (t *Topology) Checkerboard() bool { return t.checkerboard }

// IsMC reports whether node n hosts a memory controller.
func (t *Topology) IsMC(n NodeID) bool { return t.mcs[n] }

// MCs returns the MC nodes in declaration order.
func (t *Topology) MCs() []NodeID { return t.mcList }

// ComputeNodes returns all non-MC nodes in id order.
func (t *Topology) ComputeNodes() []NodeID {
	var out []NodeID
	for n := 0; n < t.NumNodes(); n++ {
		if !t.mcs[NodeID(n)] {
			out = append(out, NodeID(n))
		}
	}
	return out
}

// Neighbor returns the node reached from n via direction p, or -1 at the
// mesh edge.
func (t *Topology) Neighbor(n NodeID, p Port) NodeID {
	c := t.Coord(n)
	switch p {
	case North:
		c.Y--
	case South:
		c.Y++
	case East:
		c.X++
	case West:
		c.X--
	default:
		panic("noc: Neighbor of non-direction port")
	}
	if c.X < 0 || c.X >= t.Width || c.Y < 0 || c.Y >= t.Height {
		return -1
	}
	return t.Node(c.X, c.Y)
}

// HopCount returns the minimal hop distance between two nodes.
func (t *Topology) HopCount(a, b NodeID) int {
	ca, cb := t.Coord(a), t.Coord(b)
	return abs(ca.X-cb.X) + abs(ca.Y-cb.Y)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// TopBottomPlacement returns the baseline MC placement (Fig 3): MCs spread
// along the top and bottom rows, like Intel's 80-core and Tilera TILE64.
// For the paper's 6x6 mesh with 8 MCs this is columns 1-4 of rows 0 and 5.
func TopBottomPlacement(width, height, numMCs int) []NodeID {
	perRow := numMCs / 2
	mcs := make([]NodeID, 0, numMCs)
	// Center the MCs within each row.
	start := (width - perRow) / 2
	for i := 0; i < perRow; i++ {
		mcs = append(mcs, NodeID(start+i)) // top row, y = 0
	}
	for i := 0; i < numMCs-perRow; i++ {
		mcs = append(mcs, NodeID((height-1)*width+start+i)) // bottom row
	}
	return mcs
}

// CheckerboardPlacement returns a staggered MC placement on half-router
// (odd-parity) tiles, per §IV-A and Fig 12. For the paper's 6x6 mesh with
// 8 MCs it spreads controllers across rows and columns to avoid the
// hot-spotting of the top-bottom layout. Placements for other sizes pick
// evenly spaced odd-parity tiles.
func CheckerboardPlacement(width, height, numMCs int) []NodeID {
	if width == 6 && height == 6 && numMCs == 8 {
		// Interior diamond: every MC keeps all four mesh directions, so
		// reply traffic fans out instead of concentrating on edge links.
		coords := []Coord{
			{2, 1}, {4, 1}, {1, 2}, {3, 2}, {2, 3}, {4, 3}, {1, 4}, {3, 4},
		}
		mcs := make([]NodeID, len(coords))
		for i, c := range coords {
			mcs[i] = NodeID(c.Y*width + c.X)
		}
		return mcs
	}
	// Generic fallback: evenly sample odd-parity tiles.
	var odd []NodeID
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			if (x+y)%2 == 1 {
				odd = append(odd, NodeID(y*width+x))
			}
		}
	}
	if numMCs > len(odd) {
		numMCs = len(odd)
	}
	mcs := make([]NodeID, 0, numMCs)
	for i := 0; i < numMCs; i++ {
		mcs = append(mcs, odd[i*len(odd)/numMCs])
	}
	return mcs
}
