package noc

import "math/bits"

// activeSet is a fixed-size bitset over component indices (routers, network
// interfaces, channels) tracking which ones hold queued work. The cycle loop
// iterates only the set bits — in ascending index order, which is what keeps
// equal-seeded runs bit-identical: skipped components are exactly those that
// would have no-opped, so arbitration and fault-RNG draw order are unchanged
// while idle tiles (the common case at low injection rates and in the
// convergence tail) cost nothing.
type activeSet struct {
	words []uint64
}

// newActiveSet builds a set over indices [0, n).
func newActiveSet(n int) activeSet {
	return activeSet{words: make([]uint64, (n+63)/64)}
}

// set marks index i active.
func (s *activeSet) set(i int) { s.words[i>>6] |= 1 << (uint(i) & 63) }

// clear marks index i inactive.
func (s *activeSet) clear(i int) { s.words[i>>6] &^= 1 << (uint(i) & 63) }

// has reports whether index i is active.
func (s *activeSet) has(i int) bool { return s.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// isEmpty reports whether no index is active.
func (s *activeSet) isEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// count returns the number of active indices (diagnostics only).
func (s *activeSet) count() int {
	total := 0
	for _, w := range s.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// forEach visits active indices in ascending order. Each word is snapshotted
// when iteration reaches it: the callback may clear any bit (including its
// own) and may set bits in other activeSets, but setting bits in THIS set
// for positions at or before the cursor is not visible until the next
// traversal — the cycle loop's phases are arranged so that never happens
// (components only activate members of later phases).
func (s *activeSet) forEach(fn func(i int)) {
	for wi, w := range s.words {
		base := wi << 6
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}
