package traffic

import (
	"testing"

	"repro/internal/noc"
)

func testRunner() *Runner {
	return NewMeshRunner(noc.DefaultConfig())
}

func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.WarmupCycles = 300
	cfg.MeasureCycles = 1500
	cfg.DrainCycles = 4000
	return cfg
}

func TestLowLoadLatencyNearZeroLoad(t *testing.T) {
	cfg := quickConfig()
	cfg.InjectionRate = 0.002
	res := testRunner().Run(cfg)
	if res.MeasuredPackets == 0 {
		t.Fatal("no packets measured")
	}
	// Zero-load request latency is ~20-30 cycles on a 6x6 mesh with
	// 4-stage routers; at trivial load the average must stay low.
	if res.AvgLatency > 45 {
		t.Errorf("low-load latency = %v, want < 45", res.AvgLatency)
	}
	if res.Saturated {
		t.Error("trivial load reported as saturated")
	}
}

func TestLatencyIncreasesWithLoad(t *testing.T) {
	r := testRunner()
	lo := quickConfig()
	lo.InjectionRate = 0.005
	hi := quickConfig()
	hi.InjectionRate = 0.05
	resLo := r.Run(lo)
	resHi := r.Run(hi)
	if resHi.AvgLatency <= resLo.AvgLatency {
		t.Errorf("latency did not grow with load: %.1f @0.005 vs %.1f @0.05",
			resLo.AvgLatency, resHi.AvgLatency)
	}
}

func TestSaturationDetected(t *testing.T) {
	cfg := quickConfig()
	cfg.InjectionRate = 0.30 // far beyond any mesh capacity here
	res := testRunner().Run(cfg)
	if !res.Saturated {
		t.Error("extreme load not reported as saturated")
	}
	if res.ReplyInjectRate <= 0 {
		t.Error("no replies injected at saturation")
	}
}

func TestAcceptedTracksOfferedBelowSaturation(t *testing.T) {
	cfg := quickConfig()
	cfg.InjectionRate = 0.01
	res := testRunner().Run(cfg)
	// Accepted load (all nodes, incl. replies) must exceed the request-only
	// offered load but stay in the same regime.
	if res.AcceptedLoad <= 0 {
		t.Fatal("no accepted traffic")
	}
	if res.Saturated {
		t.Error("low load saturated")
	}
}

func TestHotspotSaturatesEarlier(t *testing.T) {
	// At a load where the uniform pattern is comfortably below saturation,
	// concentrating 20% of requests on one MC pushes that MC's reply path
	// over the edge: latency rises and fewer replies get through.
	r := testRunner()
	uni := quickConfig()
	uni.InjectionRate = 0.03
	hot := uni
	hot.Pattern = Hotspot
	uniRes := r.Run(uni)
	hotRes := r.Run(hot)
	if hotRes.AvgLatency <= uniRes.AvgLatency {
		t.Errorf("hotspot latency %.1f not above uniform %.1f",
			hotRes.AvgLatency, uniRes.AvgLatency)
	}
}

func TestCheckerboard2PSaturatesLater(t *testing.T) {
	// The paper's Fig 21 ordering: CP-CR-2P sustains more load than TB-DOR.
	tb := noc.DefaultConfig()
	cpcr2p := tb
	cpcr2p.Checkerboard = true
	cpcr2p.Routing = noc.RoutingCheckerboard
	cpcr2p.MCs = noc.CheckerboardPlacement(6, 6, 8)
	cpcr2p.NumVCs = 4
	cpcr2p.MCInjPorts = 2
	cfg := quickConfig()
	cfg.InjectionRate = 0.30
	tbRes := NewMeshRunner(tb).Run(cfg)
	teRes := NewMeshRunner(cpcr2p).Run(cfg)
	if teRes.ReplyInjectRate <= tbRes.ReplyInjectRate {
		t.Errorf("CP-CR-2P reply throughput %.3f not above TB-DOR %.3f",
			teRes.ReplyInjectRate, tbRes.ReplyInjectRate)
	}
}

func TestSweepOrdering(t *testing.T) {
	r := testRunner()
	base := quickConfig()
	results := r.Sweep(base, []float64{0.005, 0.02})
	if len(results) != 2 {
		t.Fatalf("sweep returned %d results", len(results))
	}
	if results[0].OfferedLoad != 0.005 || results[1].OfferedLoad != 0.02 {
		t.Error("sweep results out of order")
	}
}

func TestDeterministicRuns(t *testing.T) {
	r := testRunner()
	cfg := quickConfig()
	cfg.InjectionRate = 0.02
	a := r.Run(cfg)
	b := r.Run(cfg)
	if a.AvgLatency != b.AvgLatency || a.MeasuredPackets != b.MeasuredPackets {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestPatternString(t *testing.T) {
	if UniformRandom.String() != "uniform" || Hotspot.String() != "hotspot" {
		t.Error("pattern names wrong")
	}
}

func TestLatencyPercentilesOrdered(t *testing.T) {
	cfg := quickConfig()
	cfg.InjectionRate = 0.03
	res := testRunner().Run(cfg)
	if res.P50Latency <= 0 || res.P99Latency < res.P50Latency {
		t.Errorf("percentiles inconsistent: p50=%v p99=%v", res.P50Latency, res.P99Latency)
	}
	if res.AvgLatency < res.P50Latency/4 || res.AvgLatency > res.P99Latency*2 {
		t.Errorf("mean %v far outside [p50=%v, p99=%v]", res.AvgLatency, res.P50Latency, res.P99Latency)
	}
}
