// Package traffic provides the open-loop network evaluation harness used
// for Fig 21: synthetic many-to-few-to-many traffic (uniform-random and
// hotspot), Bernoulli injection at a swept offered load, and latency /
// accepted-throughput measurement.
//
// Following the paper's open-loop setup, compute nodes inject single-flit
// read requests to the memory-controller nodes; each request arriving at an
// MC triggers a multi-flit reply back to the requester. Only read traffic
// is simulated.
package traffic

import (
	"fmt"

	"repro/internal/noc"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// Pattern selects the request destination distribution.
type Pattern int

// Patterns.
const (
	// UniformRandom sends each request to an MC chosen uniformly.
	UniformRandom Pattern = iota
	// Hotspot sends 20% of requests to one MC and spreads the rest
	// uniformly (the Fig 21(b) configuration).
	Hotspot
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case UniformRandom:
		return "uniform"
	case Hotspot:
		return "hotspot"
	}
	return fmt.Sprintf("pattern(%d)", int(p))
}

// HotspotFraction is the share of requests aimed at the hotspot MC.
const HotspotFraction = 0.20

// Config parameterizes one open-loop run.
type Config struct {
	Pattern        Pattern
	InjectionRate  float64 // offered load, flits/cycle per compute node
	ReplyBytes     int     // reply payload size (64 B => 4 flits at 16 B)
	WarmupCycles   int
	MeasureCycles  int
	DrainCycles    int // extra cycles to let measured packets arrive
	Seed           uint64
	MaxQueuedPerMC int // reply backlog cap per MC before it stalls (0: unbounded)

	// NoIdleSkip disables idle-horizon fast-forwarding during the drain
	// phase. Once injection stops and every reply backlog is empty the
	// only remaining work is the network's own, so the harness normally
	// jumps the cycle loop to the network's NextWorkCycle horizon instead
	// of ticking an empty mesh. Results are bit-identical either way (the
	// Bernoulli injectors draw no RNG outside the injection phases); the
	// zero value keeps skipping on.
	NoIdleSkip bool
}

// DefaultConfig returns the Fig 21 setup: 1-flit requests, 4-flit replies.
func DefaultConfig() Config {
	return Config{
		Pattern:       UniformRandom,
		InjectionRate: 0.02,
		ReplyBytes:    64,
		WarmupCycles:  2000,
		MeasureCycles: 8000,
		DrainCycles:   20000,
		Seed:          7,
	}
}

// Result reports one open-loop measurement.
type Result struct {
	OfferedLoad     float64 // flits/cycle/node offered at compute nodes
	AcceptedLoad    float64 // flits/cycle/node accepted network-wide
	AvgLatency      float64 // mean request+reply packet network latency
	P50Latency      float64 // median packet latency
	P99Latency      float64 // tail packet latency
	AvgRoundTrip    float64 // mean request-inject to reply-arrival latency
	Saturated       bool    // reply backlogs grew or source queues overflowed
	MeasuredPackets int
	ReplyInjectRate float64 // mean reply packets/cycle injected per MC node
}

// Runner drives one network configuration across offered loads.
type Runner struct {
	build func() (noc.Network, noc.Backend)
}

// NewRunner wraps a network constructor. build must return a fresh network
// (and its topology backend, which supplies node roles) on every call so
// sweeps are independent.
func NewRunner(build func() (noc.Network, noc.Backend)) *Runner {
	return &Runner{build: build}
}

// NewMeshRunner is a convenience Runner over a noc.Config of any topology
// backend (the name is historical; cfg.Topology may select ring or basejump).
func NewMeshRunner(cfg noc.Config) *Runner {
	return NewRunner(func() (noc.Network, noc.Backend) {
		m := noc.MustNewMesh(cfg)
		return m, m.Backend()
	})
}

type pendingReply struct {
	dst       noc.NodeID
	offeredAt uint64 // request offer time, for round-trip measurement
	measured  bool
}

// Run measures one offered load point.
func (r *Runner) Run(cfg Config) Result {
	net, backend := r.build()
	rng := xrand.New(cfg.Seed)
	comp := backend.ComputeNodes()
	mcs := backend.MCs()
	if len(mcs) == 0 {
		panic("traffic: network has no MC nodes")
	}
	hot := mcs[0]

	var lat stats.Mean
	var rtt stats.Mean
	hist := stats.NewHistogram(4, 1024) // latency buckets up to 4096 cycles
	measured := 0
	dropCycles := 0
	replyFlitsInjected := uint64(0)

	// Per-compute-node Bernoulli injectors; per-MC reply backlogs.
	backlog := make(map[noc.NodeID][]pendingReply)

	total := cfg.WarmupCycles + cfg.MeasureCycles + cfg.DrainCycles
	measureStart := uint64(cfg.WarmupCycles)
	measureEnd := uint64(cfg.WarmupCycles + cfg.MeasureCycles)

	for cyc := 0; cyc < total; cyc++ {
		now := net.Cycle()
		injecting := cyc < cfg.WarmupCycles+cfg.MeasureCycles
		if injecting {
			for _, c := range comp {
				if !rng.Bool(cfg.InjectionRate) {
					continue
				}
				var dst noc.NodeID
				if cfg.Pattern == Hotspot {
					// Exactly HotspotFraction of requests target the hot MC;
					// the rest spread over the remaining controllers.
					if rng.Bool(HotspotFraction) {
						dst = hot
					} else {
						dst = mcs[1+rng.Intn(len(mcs)-1)]
					}
				} else {
					dst = mcs[rng.Intn(len(mcs))]
				}
				inMeasure := now >= measureStart && now < measureEnd
				pkt := &noc.Packet{Src: c, Dst: dst, Class: noc.ClassRequest, Bytes: 8,
					Meta: pendingReply{dst: c, offeredAt: now, measured: inMeasure}}
				if !net.TryInject(pkt) {
					dropCycles++
				}
			}
		}
		// MCs turn arrived requests into replies.
		for _, mc := range mcs {
			for _, pkt := range net.Delivered(mc) {
				pr := pkt.Meta.(pendingReply)
				if pr.measured {
					lat.Add(float64(pkt.TotalLatency()))
					hist.Add(float64(pkt.TotalLatency()))
				}
				backlog[mc] = append(backlog[mc], pr)
			}
			q := backlog[mc]
			n := 0
			for _, pr := range q {
				reply := &noc.Packet{Src: mc, Dst: pr.dst, Class: noc.ClassReply,
					Bytes: cfg.ReplyBytes, Meta: pr}
				if !net.TryInject(reply) {
					break
				}
				replyFlitsInjected++
				n++
			}
			backlog[mc] = q[:copy(q, q[n:])]
		}
		// Compute nodes absorb replies.
		for _, c := range comp {
			for _, pkt := range net.Delivered(c) {
				pr := pkt.Meta.(pendingReply)
				if pr.measured {
					lat.Add(float64(pkt.TotalLatency()))
					hist.Add(float64(pkt.TotalLatency()))
					rtt.Add(float64(pkt.ArrivedAt - pr.offeredAt))
					measured++
				}
			}
		}
		// Drain-phase fast-forward: with injection over, all deliveries
		// absorbed and no queued replies, nothing outside the network can
		// act until the network itself does. Credit the idle ticks in bulk
		// (SkipAhead is defined to be bit-identical to that many empty
		// Ticks) and leave the remaining real ticks to the loop.
		if !cfg.NoIdleSkip && !injecting && backlogEmpty(backlog, mcs) {
			if w := net.NextWorkCycle(); w > uint64(cyc)+1 {
				k := w - uint64(cyc) - 1
				if left := uint64(total - cyc - 1); k > left {
					k = left
				}
				if k > 0 {
					net.SkipAhead(k)
					cyc += int(k)
				}
			}
		}
		net.Tick()
	}

	st := net.Stats()
	backlogged := 0
	for _, q := range backlog {
		backlogged += len(q)
	}
	res := Result{
		OfferedLoad:     cfg.InjectionRate,
		AcceptedLoad:    st.AcceptedFlitsPerCycle(),
		AvgLatency:      lat.Value(),
		P50Latency:      hist.Percentile(0.50),
		P99Latency:      hist.Percentile(0.99),
		AvgRoundTrip:    rtt.Value(),
		MeasuredPackets: measured,
		Saturated: dropCycles > cfg.MeasureCycles*len(comp)/20 ||
			backlogged > 10*len(mcs),
		ReplyInjectRate: float64(replyFlitsInjected) / float64(st.Cycles) / float64(len(mcs)),
	}
	return res
}

// backlogEmpty reports whether no MC holds a queued reply.
func backlogEmpty(backlog map[noc.NodeID][]pendingReply, mcs []noc.NodeID) bool {
	for _, mc := range mcs {
		if len(backlog[mc]) > 0 {
			return false
		}
	}
	return true
}

// Sweep runs ascending offered loads and returns one Result per point.
// Reply size scales with the network's flit width via replyBytes.
func (r *Runner) Sweep(base Config, rates []float64) []Result {
	out := make([]Result, 0, len(rates))
	for _, rate := range rates {
		cfg := base
		cfg.InjectionRate = rate
		out = append(out, r.Run(cfg))
	}
	return out
}
