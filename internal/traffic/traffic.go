// Package traffic provides the open-loop network evaluation harness used
// for Fig 21: synthetic many-to-few-to-many traffic (uniform-random and
// hotspot), Bernoulli injection at a swept offered load, and latency /
// accepted-throughput measurement.
//
// Following the paper's open-loop setup, compute nodes inject single-flit
// read requests to the memory-controller nodes; each request arriving at an
// MC triggers a multi-flit reply back to the requester. Only read traffic
// is simulated.
package traffic

import (
	"fmt"

	"repro/internal/noc"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// Pattern selects the request destination distribution.
type Pattern int

// Patterns.
const (
	// UniformRandom sends each request to an MC chosen uniformly.
	UniformRandom Pattern = iota
	// Hotspot sends 20% of requests to one MC and spreads the rest
	// uniformly (the Fig 21(b) configuration).
	Hotspot
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case UniformRandom:
		return "uniform"
	case Hotspot:
		return "hotspot"
	}
	return fmt.Sprintf("pattern(%d)", int(p))
}

// HotspotFraction is the share of requests aimed at the hotspot MC.
const HotspotFraction = 0.20

// Config parameterizes one open-loop run.
type Config struct {
	Pattern        Pattern
	InjectionRate  float64 // offered load, flits/cycle per compute node
	ReplyBytes     int     // reply payload size (64 B => 4 flits at 16 B)
	WarmupCycles   int
	MeasureCycles  int
	DrainCycles    int // extra cycles to let measured packets arrive
	Seed           uint64
	MaxQueuedPerMC int // reply backlog cap per MC before it stalls (0: unbounded)

	// NoIdleSkip disables idle-horizon fast-forwarding during the drain
	// phase. Once injection stops and every reply backlog is empty the
	// only remaining work is the network's own, so the harness normally
	// jumps the cycle loop to the network's NextWorkCycle horizon instead
	// of ticking an empty mesh. Results are bit-identical either way (the
	// Bernoulli injectors draw no RNG outside the injection phases); the
	// zero value keeps skipping on.
	NoIdleSkip bool

	// Lanes batches that many seed replicas (Seed, Seed+1, …) of this
	// operating point through one lockstep cycle loop (RunLanes). Like the
	// closed-loop lane kernel, batching is wall-clock-only: lane i is
	// bit-identical to a solo Run with Seed+i. 0 and 1 both mean solo.
	Lanes int
}

// DefaultConfig returns the Fig 21 setup: 1-flit requests, 4-flit replies.
func DefaultConfig() Config {
	return Config{
		Pattern:       UniformRandom,
		InjectionRate: 0.02,
		ReplyBytes:    64,
		WarmupCycles:  2000,
		MeasureCycles: 8000,
		DrainCycles:   20000,
		Seed:          7,
	}
}

// Result reports one open-loop measurement.
type Result struct {
	OfferedLoad     float64 // flits/cycle/node offered at compute nodes
	AcceptedLoad    float64 // flits/cycle/node accepted network-wide
	AvgLatency      float64 // mean request+reply packet network latency
	P50Latency      float64 // median packet latency
	P99Latency      float64 // tail packet latency
	AvgRoundTrip    float64 // mean request-inject to reply-arrival latency
	Saturated       bool    // reply backlogs grew or source queues overflowed
	MeasuredPackets int
	ReplyInjectRate float64 // mean reply packets/cycle injected per MC node
}

// Runner drives one network configuration across offered loads.
type Runner struct {
	build func() (noc.Network, noc.Backend)
}

// NewRunner wraps a network constructor. build must return a fresh network
// (and its topology backend, which supplies node roles) on every call so
// sweeps are independent.
func NewRunner(build func() (noc.Network, noc.Backend)) *Runner {
	return &Runner{build: build}
}

// NewMeshRunner is a convenience Runner over a noc.Config of any topology
// backend (the name is historical; cfg.Topology may select ring or basejump).
func NewMeshRunner(cfg noc.Config) *Runner {
	return NewRunner(func() (noc.Network, noc.Backend) {
		m := noc.MustNewMesh(cfg)
		return m, m.Backend()
	})
}

type pendingReply struct {
	dst       noc.NodeID
	offeredAt uint64 // request offer time, for round-trip measurement
	measured  bool
}

// laneRun is one seed replica's mutable state in the lockstep cycle loop:
// its own network, rng stream, reply backlogs and accumulators. The loop
// shares only the cycle counter and the immutable node-role geometry.
type laneRun struct {
	net                noc.Network
	rng                *xrand.Rand
	lat, rtt           stats.Mean
	hist               *stats.Histogram
	measured           int
	dropCycles         int
	replyFlitsInjected uint64
	backlog            map[noc.NodeID][]pendingReply
	live               bool
}

// Run measures one offered load point. It is the single-lane case of the
// lockstep loop — with one lane the min-reduced drain skip degenerates to
// the solo fast-forward, which the open-loop golden digests pin bit-exactly.
func (r *Runner) Run(cfg Config) Result {
	cfg.Lanes = 1
	return r.RunLanes(cfg)[0]
}

// RunLanes measures cfg.Lanes seed replicas (Seed, Seed+1, …) of one
// offered load point through a single lockstep cycle loop, returning one
// Result per lane. Each lane keeps its own network and rng; the loop
// advances all live lanes together, min-reduces the drain-phase idle-skip
// horizon across them, and retires a lane individually the moment its
// remaining drain window is provably empty — a retired lane's cycles are
// credited in bulk and it stops contributing to horizons and ticks. Lane i
// is bit-identical to a solo Run with Seed+i.
func (r *Runner) RunLanes(cfg Config) []Result {
	n := cfg.Lanes
	if n <= 0 {
		n = 1
	}
	var comp, mcs []noc.NodeID
	lanes := make([]*laneRun, n)
	for i := range lanes {
		net, backend := r.build()
		if i == 0 {
			comp = backend.ComputeNodes()
			mcs = backend.MCs()
			if len(mcs) == 0 {
				panic("traffic: network has no MC nodes")
			}
		}
		lanes[i] = &laneRun{
			net:     net,
			rng:     xrand.New(cfg.Seed + uint64(i)),
			hist:    stats.NewHistogram(4, 1024), // latency buckets up to 4096 cycles
			backlog: make(map[noc.NodeID][]pendingReply),
			live:    true,
		}
	}
	hot := mcs[0]
	liveN := n

	total := cfg.WarmupCycles + cfg.MeasureCycles + cfg.DrainCycles
	measureStart := uint64(cfg.WarmupCycles)
	measureEnd := uint64(cfg.WarmupCycles + cfg.MeasureCycles)

	for cyc := 0; cyc < total && liveN > 0; cyc++ {
		injecting := cyc < cfg.WarmupCycles+cfg.MeasureCycles
		for _, l := range lanes {
			if !l.live {
				continue
			}
			now := l.net.Cycle()
			if injecting {
				for _, c := range comp {
					if !l.rng.Bool(cfg.InjectionRate) {
						continue
					}
					var dst noc.NodeID
					if cfg.Pattern == Hotspot {
						// Exactly HotspotFraction of requests target the hot
						// MC; the rest spread over the remaining controllers.
						if l.rng.Bool(HotspotFraction) {
							dst = hot
						} else {
							dst = mcs[1+l.rng.Intn(len(mcs)-1)]
						}
					} else {
						dst = mcs[l.rng.Intn(len(mcs))]
					}
					inMeasure := now >= measureStart && now < measureEnd
					pkt := &noc.Packet{Src: c, Dst: dst, Class: noc.ClassRequest, Bytes: 8,
						Meta: pendingReply{dst: c, offeredAt: now, measured: inMeasure}}
					if !l.net.TryInject(pkt) {
						l.dropCycles++
					}
				}
			}
			// MCs turn arrived requests into replies.
			for _, mc := range mcs {
				for _, pkt := range l.net.Delivered(mc) {
					pr := pkt.Meta.(pendingReply)
					if pr.measured {
						l.lat.Add(float64(pkt.TotalLatency()))
						l.hist.Add(float64(pkt.TotalLatency()))
					}
					l.backlog[mc] = append(l.backlog[mc], pr)
				}
				q := l.backlog[mc]
				nAcc := 0
				for _, pr := range q {
					reply := &noc.Packet{Src: mc, Dst: pr.dst, Class: noc.ClassReply,
						Bytes: cfg.ReplyBytes, Meta: pr}
					if !l.net.TryInject(reply) {
						break
					}
					l.replyFlitsInjected++
					nAcc++
				}
				l.backlog[mc] = q[:copy(q, q[nAcc:])]
			}
			// Compute nodes absorb replies.
			for _, c := range comp {
				for _, pkt := range l.net.Delivered(c) {
					pr := pkt.Meta.(pendingReply)
					if pr.measured {
						l.lat.Add(float64(pkt.TotalLatency()))
						l.hist.Add(float64(pkt.TotalLatency()))
						l.rtt.Add(float64(pkt.ArrivedAt - pr.offeredAt))
						l.measured++
					}
				}
			}
		}
		// Drain-phase fast-forward, min-reduced across live lanes: with
		// injection over, a lane whose deliveries are absorbed and whose
		// reply backlogs are empty can only wait on its own network, so the
		// loop may credit idle ticks in bulk (SkipAhead is bit-identical to
		// that many empty Ticks). The shared cycle counter advances by the
		// LARGEST skip every live lane permits; a lane that could skip
		// further just takes provably-idle Ticks instead, which is the same
		// thing. A lane whose horizon clears the end of the run retires on
		// the spot: its remaining window is credited in one skip plus the
		// final tick (exactly the solo epilogue), after which it stops
		// contributing ticks, skips or horizon terms.
		if !cfg.NoIdleSkip && !injecting {
			left := uint64(total - cyc - 1)
			k := left
			for _, l := range lanes {
				if !l.live {
					continue
				}
				if !backlogEmpty(l.backlog, mcs) {
					k = 0
					continue
				}
				w := l.net.NextWorkCycle()
				if w >= uint64(total) {
					if left > 0 {
						l.net.SkipAhead(left)
					}
					l.net.Tick()
					l.live = false
					liveN--
					continue
				}
				kl := uint64(0)
				if w > uint64(cyc)+1 {
					kl = w - uint64(cyc) - 1
				}
				if kl < k {
					k = kl
				}
			}
			if liveN == 0 {
				break
			}
			if k > 0 {
				for _, l := range lanes {
					if l.live {
						l.net.SkipAhead(k)
					}
				}
				cyc += int(k)
			}
		}
		for _, l := range lanes {
			if l.live {
				l.net.Tick()
			}
		}
	}

	out := make([]Result, n)
	for i, l := range lanes {
		st := l.net.Stats()
		backlogged := 0
		for _, q := range l.backlog {
			backlogged += len(q)
		}
		out[i] = Result{
			OfferedLoad:     cfg.InjectionRate,
			AcceptedLoad:    st.AcceptedFlitsPerCycle(),
			AvgLatency:      l.lat.Value(),
			P50Latency:      l.hist.Percentile(0.50),
			P99Latency:      l.hist.Percentile(0.99),
			AvgRoundTrip:    l.rtt.Value(),
			MeasuredPackets: l.measured,
			Saturated: l.dropCycles > cfg.MeasureCycles*len(comp)/20 ||
				backlogged > 10*len(mcs),
			ReplyInjectRate: float64(l.replyFlitsInjected) / float64(st.Cycles) / float64(len(mcs)),
		}
	}
	return out
}

// backlogEmpty reports whether no MC holds a queued reply.
func backlogEmpty(backlog map[noc.NodeID][]pendingReply, mcs []noc.NodeID) bool {
	for _, mc := range mcs {
		if len(backlog[mc]) > 0 {
			return false
		}
	}
	return true
}

// Sweep runs ascending offered loads and returns one Result per point.
// Reply size scales with the network's flit width via replyBytes.
func (r *Runner) Sweep(base Config, rates []float64) []Result {
	out := make([]Result, 0, len(rates))
	for _, rate := range rates {
		cfg := base
		cfg.InjectionRate = rate
		out = append(out, r.Run(cfg))
	}
	return out
}
