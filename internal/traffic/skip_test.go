package traffic

import (
	"fmt"
	"testing"

	"repro/internal/noc"
)

// TestOpenLoopIdleSkipEquivalence proves the drain-phase fast-forward is
// invisible: every open-loop golden point must digest identically with
// skipping enabled (the default) and disabled, at every shard count.
func TestOpenLoopIdleSkipEquivalence(t *testing.T) {
	for _, og := range openMatrix() {
		og := og
		for _, shards := range []int{1, 2, 4} {
			shards := shards
			t.Run(fmt.Sprintf("%s/shards-%d", og.id, shards), func(t *testing.T) {
				run := func(noSkip bool) string {
					var last noc.Network
					runner := NewRunner(func() (noc.Network, noc.Backend) {
						mc := og.mesh()
						mc.Shards = shards
						m := noc.MustNewMesh(mc)
						last = m
						return m, m.Backend()
					})
					cfg := DefaultConfig()
					cfg.Pattern = og.pattern
					cfg.InjectionRate = og.rate
					cfg.WarmupCycles = 500
					cfg.MeasureCycles = 2000
					cfg.DrainCycles = 4000
					cfg.NoIdleSkip = noSkip
					res := runner.Run(cfg)
					return digestOpenLoop(res, last.Stats())
				}
				on, off := run(false), run(true)
				if on != off {
					t.Errorf("digest differs with drain skipping: %s vs %s", on, off)
				}
			})
		}
	}
}
