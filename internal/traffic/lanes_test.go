package traffic

import (
	"testing"

	"repro/internal/noc"
)

// horizonStub is a scripted noc.Network for probing the lockstep loop's
// retirement and min-reduce behaviour: it carries no packets, reports a
// busy horizon (next cycle) until busyUntil, then goes permanently idle.
// Counters record how the loop drove it.
type horizonStub struct {
	cycle     uint64
	busyUntil uint64 // horizon = cycle+1 while cycle < busyUntil, then Never
	ticks     int
	skipped   uint64
	skipCalls int
	stats     noc.NetStats
}

func (h *horizonStub) TryInject(p *noc.Packet) bool                    { return false }
func (h *horizonStub) CanInject(n noc.NodeID, c noc.TrafficClass) bool { return false }
func (h *horizonStub) Tick()                                           { h.cycle++; h.ticks++ }
func (h *horizonStub) Delivered(n noc.NodeID) []*noc.Packet            { return nil }
func (h *horizonStub) Cycle() uint64                                   { return h.cycle }
func (h *horizonStub) Quiet() bool                                     { return true }
func (h *horizonStub) Health() error                                   { return nil }
func (h *horizonStub) Stats() *noc.NetStats {
	h.stats.Cycles = h.cycle
	return &h.stats
}
func (h *horizonStub) NextWorkCycle() uint64 {
	if h.cycle < h.busyUntil {
		return h.cycle + 1
	}
	return noc.NeverCycle
}
func (h *horizonStub) SkipAhead(k uint64) {
	h.cycle += k
	h.skipped += k
	h.skipCalls++
}

// TestLaneRetirementMixedHorizons pins the lockstep loop's retirement
// contract on a mixed-horizon batch: one lane goes idle thousands of cycles
// before the other. The early lane must retire the moment its horizon
// clears the end of the run — its remaining window credited in ONE bulk
// skip plus the final tick, after which it stops ticking and stops
// clamping the sibling's horizon — while the busy lane ticks edge-by-edge
// to the end. Both lanes must still account for every cycle of the run.
func TestLaneRetirementMixedHorizons(t *testing.T) {
	const (
		warmup  = 10
		measure = 10
		drain   = 5000
		total   = warmup + measure + drain
	)
	// Lane 0 drains right after injection stops; lane 1 stays busy for
	// thousands of drain cycles.
	stubs := []*horizonStub{
		{busyUntil: warmup + measure + 3},
		{busyUntil: warmup + measure + 4000},
	}
	backend := noc.MustBuildBackend(noc.DefaultConfig())
	next := 0
	runner := NewRunner(func() (noc.Network, noc.Backend) {
		s := stubs[next]
		next++
		return s, backend
	})
	cfg := DefaultConfig()
	cfg.InjectionRate = 0 // stubs accept nothing; drive pure cycle accounting
	cfg.WarmupCycles = warmup
	cfg.MeasureCycles = measure
	cfg.DrainCycles = drain
	cfg.Lanes = 2
	runner.RunLanes(cfg)

	early, late := stubs[0], stubs[1]
	if early.cycle != total || late.cycle != total {
		t.Fatalf("lanes must account for every cycle: early=%d late=%d want %d",
			early.cycle, late.cycle, total)
	}
	// The early lane retires at its first idle horizon check: everything
	// after busyUntil lands in exactly one bulk skip (plus the final tick),
	// not in edge-by-edge ticks alongside the still-busy sibling.
	if early.skipCalls != 1 {
		t.Errorf("early lane skip calls = %d, want 1 (single retirement credit)", early.skipCalls)
	}
	if wantSkip := uint64(total) - early.busyUntil - 1; early.skipped != wantSkip {
		t.Errorf("early lane skipped %d cycles, want %d", early.skipped, wantSkip)
	}
	if maxTicks := int(early.busyUntil) + 1; early.ticks > maxTicks {
		t.Errorf("early lane ticked %d times after retiring (want <= %d)", early.ticks, maxTicks)
	}
	// The late lane's horizon is next-cycle until it drains at busyUntil,
	// so the early lane's retirement must not drag it forward: it ticks
	// edge-by-edge through its whole busy window (4000 drain cycles after
	// the sibling went idle) and only then takes its own retirement credit.
	if wantTicks := int(late.busyUntil) + 1; late.ticks != wantTicks {
		t.Errorf("late lane ticked %d times, want %d (edge-by-edge to its own horizon)",
			late.ticks, wantTicks)
	}
	if wantSkip := uint64(total) - late.busyUntil - 1; late.skipCalls != 1 || late.skipped != wantSkip {
		t.Errorf("late lane skipped %d cycles in %d calls, want %d in 1 (own retirement only)",
			late.skipped, late.skipCalls, wantSkip)
	}
}
