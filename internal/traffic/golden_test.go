package traffic

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"os"
	"testing"

	"repro/internal/noc"
)

// Open-loop golden digests: the synthetic many-to-few-to-many harness pins
// the cycle kernel's behaviour under Bernoulli injection, covering the
// injection-rate paths (source-queue overflow, reply backlogs) that the
// closed-loop goldens in internal/core exercise only lightly. Recorded
// before the allocation-free kernel refactor; see internal/core/golden_test.go
// for the re-record procedure (env GOLDEN_RECORD=1).

type openGolden struct {
	id      string
	pattern Pattern
	rate    float64
	mesh    func() noc.Config
}

func openMatrix() []openGolden {
	base := func() noc.Config { return noc.DefaultConfig() }
	cb := func() noc.Config {
		cfg := noc.DefaultConfig()
		cfg.Checkerboard = true
		cfg.Routing = noc.RoutingCheckerboard
		cfg.NumVCs = 4
		cfg.MCs = noc.CheckerboardPlacement(6, 6, 8)
		return cfg
	}
	ringCfg := func() noc.Config {
		cfg := noc.DefaultConfig()
		cfg.Topology = noc.BackendRing
		cfg.NumVCs = 4 // class × dateline phase
		cfg.BufDepth = 4
		cfg.RouterStages = 2
		return cfg
	}
	bjCfg := func() noc.Config {
		cfg := noc.DefaultConfig()
		cfg.Topology = noc.BackendBaseJump
		cfg.FlitBytes = 64 // whole reply in one flit
		cfg.NumVCs = 2
		cfg.BufDepth = 2
		cfg.RouterStages = 2
		return cfg
	}
	return []openGolden{
		{"uniform-low", UniformRandom, 0.02, base},
		{"uniform-high", UniformRandom, 0.08, base},
		{"hotspot", Hotspot, 0.04, base},
		{"uniform-cb", UniformRandom, 0.04, cb},
		{"uniform-ring", UniformRandom, 0.02, ringCfg},
		{"uniform-bj", UniformRandom, 0.04, bjCfg},
	}
}

var openGoldenDigests = map[string]string{
	"uniform-low":  "867304abbd27626400e110bd73cf6af7b65290eb8cdb82e12213841ce5cf5f14",
	"uniform-high": "30441cffff5917d81ce04f9d9e258d8fcb41ffb3b7ac73cd3b6b9cfa9e2f9a61",
	"hotspot":      "7bc469d273d16a039b431391b233656b92826f37b54c79cd5fd07944f19fb944",
	"uniform-cb":   "a04734af6ef791e75c420d3d21a20d3d7231125d2f8a5f823977b5519b16c0c5",
	"uniform-ring": "1f3a596721767b7e6f491f5f2da0a80fd03c8192832312c93b4044b4702ca816",
	"uniform-bj":   "06595778788992f3eaa01a4fa076d21f8f6c4cb654dbcd3ad4416978f7b33622",
}

func digestOpenLoop(res Result, ns *noc.NetStats) string {
	h := sha256.New()
	wf := func(v float64) { fmt.Fprintf(h, "%x,", math.Float64bits(v)) }
	wf(res.OfferedLoad)
	wf(res.AcceptedLoad)
	wf(res.AvgLatency)
	wf(res.P50Latency)
	wf(res.P99Latency)
	wf(res.AvgRoundTrip)
	wf(res.ReplyInjectRate)
	fmt.Fprintf(h, "%d,%v,", res.MeasuredPackets, res.Saturated)
	fmt.Fprintf(h, "%d,", ns.FlitHops)
	for _, v := range ns.InjectedFlits {
		fmt.Fprintf(h, "%d,", v)
	}
	for _, v := range ns.EjectedFlits {
		fmt.Fprintf(h, "%d,", v)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestOpenLoopGoldenDigests pins the open-loop harness bit-exactly at six
// seeded operating points (four mesh, one ring, one basejump), for the serial
// kernel and under 2- and 4-way sharding — one digest table covers all three,
// since sharding must never change simulated behaviour.
func TestOpenLoopGoldenDigests(t *testing.T) {
	record := os.Getenv("GOLDEN_RECORD") != ""
	for _, og := range openMatrix() {
		og := og
		for _, shards := range []int{1, 2, 4} {
			shards := shards
			t.Run(fmt.Sprintf("%s/shards-%d", og.id, shards), func(t *testing.T) {
				var last noc.Network
				runner := NewRunner(func() (noc.Network, noc.Backend) {
					mc := og.mesh()
					mc.Shards = shards
					m := noc.MustNewMesh(mc)
					last = m
					return m, m.Backend()
				})
				cfg := DefaultConfig()
				cfg.Pattern = og.pattern
				cfg.InjectionRate = og.rate
				cfg.WarmupCycles = 500
				cfg.MeasureCycles = 2000
				cfg.DrainCycles = 4000
				res := runner.Run(cfg)
				got := digestOpenLoop(res, last.Stats())
				if record {
					if shards == 1 {
						fmt.Printf("\t%q: %q,\n", og.id, got)
					}
					return
				}
				want := openGoldenDigests[og.id]
				if got != want {
					t.Errorf("open-loop digest mismatch for %s at %d shards:\n got  %s\n want %s",
						og.id, shards, got, want)
				}
			})
		}
	}
}

// TestOpenLoopGoldenDigestsLanes proves each lane of a lane-batched
// open-loop run is bit-identical to its solo run: lane 0 carries the golden
// seed and must reproduce the recorded digest; every sibling lane (seed+i)
// must reproduce the digest of its own solo run, computed on the fly. The
// lanes×shards point pins the composition of the two wall-clock-only
// kernels. Lane count 1 is TestOpenLoopGoldenDigests itself (Run delegates
// to the single-lane loop), so only 2 and 4 appear here.
func TestOpenLoopGoldenDigestsLanes(t *testing.T) {
	for _, og := range openMatrix() {
		og := og
		for _, lanesN := range []int{2, 4} {
			lanesN := lanesN
			for _, shards := range []int{1, 2} {
				shards := shards
				if shards != 1 && lanesN != 2 {
					continue // one composition point per case keeps runtime sane
				}
				t.Run(fmt.Sprintf("%s/lanes-%d/shards-%d", og.id, lanesN, shards), func(t *testing.T) {
					var nets []noc.Network
					runner := NewRunner(func() (noc.Network, noc.Backend) {
						mc := og.mesh()
						mc.Shards = shards
						m := noc.MustNewMesh(mc)
						nets = append(nets, m)
						return m, m.Backend()
					})
					cfg := DefaultConfig()
					cfg.Pattern = og.pattern
					cfg.InjectionRate = og.rate
					cfg.WarmupCycles = 500
					cfg.MeasureCycles = 2000
					cfg.DrainCycles = 4000
					cfg.Lanes = lanesN
					results := runner.RunLanes(cfg)
					if len(results) != lanesN || len(nets) != lanesN {
						t.Fatalf("got %d results over %d nets, want %d lanes", len(results), len(nets), lanesN)
					}
					for i := range results {
						got := digestOpenLoop(results[i], nets[i].Stats())
						var want string
						if i == 0 {
							want = openGoldenDigests[og.id]
						} else {
							// Sibling seeds have no recorded digest; their
							// reference is the solo run of the same seed.
							var soloNet noc.Network
							soloRunner := NewRunner(func() (noc.Network, noc.Backend) {
								mc := og.mesh()
								mc.Shards = shards
								m := noc.MustNewMesh(mc)
								soloNet = m
								return m, m.Backend()
							})
							solo := cfg
							solo.Lanes = 1
							solo.Seed = cfg.Seed + uint64(i)
							want = digestOpenLoop(soloRunner.Run(solo), soloNet.Stats())
						}
						if got != want {
							t.Errorf("lane %d (seed %d) is not bit-identical to its solo run:\n got  %s\n want %s",
								i, cfg.Seed+uint64(i), got, want)
						}
					}
				})
			}
		}
	}
}
