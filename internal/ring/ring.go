// Package ring provides a generic circular FIFO used for every queue on the
// simulator's cycle-level hot path: input VC buffers, source queues,
// ejection queues, channel event queues and core/memory-controller service
// queues. Unlike an append/copy slice queue, a ring never moves elements on
// pop and never reallocates in steady state: push and pop are index
// arithmetic on a fixed backing array, which is what makes the cycle kernel
// allocation-free after warm-up.
package ring

// Ring is a circular FIFO.
//
// Capacity policy: a Ring built with max > 0 is hard-bounded — pushing past
// max panics, which in this simulator always indicates a flow-control
// protocol bug (credit overflow, queue-cap bypass). max == 0 allows growth
// by doubling, for queues whose steady-state bound is known but whose worst
// case is load-dependent; growth happens O(log n) times per run and then
// never again.
type Ring[T any] struct {
	buf  []T
	head int // index of the front element
	n    int // occupied count
	max  int // hard capacity bound; 0 = grow by doubling
}

// New builds a Ring with the given initial capacity (rounded up to 1) and
// hard bound (0 = unbounded growth). An initial capacity below the bound is
// allowed; the ring grows on demand up to the bound.
func New[T any](capacity, max int) Ring[T] {
	if capacity < 1 {
		capacity = 1
	}
	if max > 0 && capacity > max {
		capacity = max
	}
	return Ring[T]{buf: make([]T, capacity), max: max}
}

// Len returns the number of queued elements.
func (r *Ring[T]) Len() int { return r.n }

// Cap returns the current backing capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Full reports whether the ring is at its hard bound (always false for
// growable rings).
func (r *Ring[T]) Full() bool { return r.max > 0 && r.n == r.max }

// idx maps a logical position (0 = front) to a buffer index.
func (r *Ring[T]) idx(i int) int {
	i += r.head
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	return i
}

// At returns a pointer to the i-th element from the front (0-based). The
// pointer is invalidated by the next Push that grows the ring.
func (r *Ring[T]) At(i int) *T { return &r.buf[r.idx(i)] }

// Front returns a pointer to the oldest element.
func (r *Ring[T]) Front() *T { return &r.buf[r.head] }

// Push appends v at the tail, growing a ring that is out of space and
// panicking when that would exceed the hard bound (a flow-control invariant
// violation).
func (r *Ring[T]) Push(v T) {
	if r.n == len(r.buf) {
		if r.max > 0 && r.n >= r.max {
			panic("ring: push past hard capacity bound")
		}
		r.grow()
	}
	r.buf[r.idx(r.n)] = v
	r.n++
}

// Pop removes and returns the front element.
func (r *Ring[T]) Pop() T {
	if r.n == 0 {
		panic("ring: pop from empty ring")
	}
	v := r.buf[r.head]
	var zero T
	r.buf[r.head] = zero // drop references for the GC
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	return v
}

// Truncate keeps the first m elements and discards the rest, zeroing the
// dropped slots. Used by compacting scans that rewrite the kept prefix in
// place (credit delivery with fault-delayed, non-monotonic due times).
func (r *Ring[T]) Truncate(m int) {
	if m > r.n {
		panic("ring: truncate beyond length")
	}
	var zero T
	for i := m; i < r.n; i++ {
		r.buf[r.idx(i)] = zero
	}
	r.n = m
}

// grow enlarges the backing array (doubling, clamped to the hard bound),
// linearizing the elements to the front.
func (r *Ring[T]) grow() {
	size := 2 * len(r.buf)
	if r.max > 0 && size > r.max {
		size = r.max
	}
	nb := make([]T, size)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[r.idx(i)]
	}
	r.buf = nb
	r.head = 0
}
