package ring

import "testing"

// TestWrapAround pushes and pops across the wrap point many times and
// checks FIFO order survives: the head index crosses the backing array
// boundary on most iterations.
func TestWrapAround(t *testing.T) {
	r := New[int](4, 4)
	next := 0 // next value to push
	want := 0 // next value expected from Pop
	for i := 0; i < 100; i++ {
		for r.Len() < 3 {
			r.Push(next)
			next++
		}
		for r.Len() > 1 {
			if got := r.Pop(); got != want {
				t.Fatalf("iteration %d: popped %d, want %d", i, got, want)
			}
			want++
		}
	}
}

// TestAtIndexesFromFront checks At(i) addresses the i-th oldest element
// even when the ring's contents straddle the wrap point.
func TestAtIndexesFromFront(t *testing.T) {
	r := New[int](4, 4)
	// Advance head to 3 so pushes wrap.
	for i := 0; i < 3; i++ {
		r.Push(i)
		r.Pop()
	}
	for i := 10; i < 14; i++ {
		r.Push(i)
	}
	for i := 0; i < 4; i++ {
		if got := *r.At(i); got != 10+i {
			t.Fatalf("At(%d) = %d, want %d", i, got, 10+i)
		}
	}
	if r.Front() != r.At(0) {
		t.Error("Front and At(0) disagree")
	}
}

// TestHardBoundGrowsThenPanics verifies a ring created below its hard
// bound grows up to the bound and panics only past it.
func TestHardBoundGrowsThenPanics(t *testing.T) {
	r := New[int](2, 5)
	for i := 0; i < 5; i++ {
		r.Push(i) // grows 2 -> 4 -> 5, no panic
	}
	if !r.Full() {
		t.Fatalf("ring with 5/5 elements not Full")
	}
	defer func() {
		if recover() == nil {
			t.Error("push past the hard capacity bound did not panic")
		}
	}()
	r.Push(5)
}

// TestGrowPreservesOrder fills an unbounded ring across several growth
// steps, with the contents wrapped at each growth, and checks order.
func TestGrowPreservesOrder(t *testing.T) {
	r := New[int](2, 0)
	// Offset head so every grow() has to linearize a wrapped buffer.
	r.Push(-1)
	r.Pop()
	for i := 0; i < 100; i++ {
		r.Push(i)
	}
	for i := 0; i < 100; i++ {
		if got := r.Pop(); got != i {
			t.Fatalf("popped %d, want %d", got, i)
		}
	}
}

// TestTruncateDropsNewest checks Truncate keeps the m oldest elements.
func TestTruncateDropsNewest(t *testing.T) {
	r := New[int](8, 8)
	for i := 0; i < 6; i++ {
		r.Push(i)
	}
	r.Truncate(2)
	if r.Len() != 2 {
		t.Fatalf("Len after Truncate(2) = %d", r.Len())
	}
	if *r.At(0) != 0 || *r.At(1) != 1 {
		t.Errorf("Truncate kept [%d %d], want [0 1]", *r.At(0), *r.At(1))
	}
	// Dropped and popped slots must be zeroed so pointer elements do not
	// pin garbage (white-box: inspect the backing array directly).
	p := New[*int](2, 2)
	v := 7
	p.Push(&v)
	p.Pop()
	if p.buf[0] != nil {
		t.Error("popped slot not zeroed")
	}
	p.Push(&v)
	p.Truncate(0)
	if p.buf[1] != nil {
		t.Error("truncated slot not zeroed")
	}
}
