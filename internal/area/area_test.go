package area

import (
	"math"
	"testing"

	"repro/internal/noc"
)

func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol*want {
		t.Errorf("%s = %.3f, want %.3f (±%.0f%%)", name, got, want, tol*100)
	}
}

// Table VI row 1: baseline 16B, 2VC, full routers.
func TestTableVIBaselineRouter(t *testing.T) {
	r := Router(FullRouter, 16, 2, 8, 1, 1)
	within(t, "crossbar", r.Crossbar, 1.73, 0.02)
	within(t, "buffer", r.Buffer, 0.17, 0.02)
	within(t, "allocator", r.Allocator, 0.004, 0.05)
	within(t, "router", r.Total(), 1.916, 0.03)
	within(t, "link", Link(16), 0.175, 0.02)
}

// Table VI row 2: 2x bandwidth (32B channels): crossbar grows 4x.
func TestTableVI2xBW(t *testing.T) {
	r := Router(FullRouter, 32, 2, 8, 1, 1)
	within(t, "crossbar", r.Crossbar, 6.95, 0.02)
	within(t, "buffer", r.Buffer, 0.34, 0.02)
	within(t, "router", r.Total(), 7.305, 0.03)
	within(t, "link", Link(32), 0.349, 0.02)
}

// Table VI row 3: CP-CR at 16B with 4 VCs: half-router crossbar 0.83,
// full-router 1.73 with buffers 0.34 and allocator 0.015.
func TestTableVICPCR(t *testing.T) {
	full := Router(FullRouter, 16, 4, 8, 1, 1)
	half := Router(HalfRouter, 16, 4, 8, 1, 1)
	within(t, "full crossbar", full.Crossbar, 1.73, 0.02)
	within(t, "full buffer", full.Buffer, 0.34, 0.02)
	within(t, "full allocator", full.Allocator, 0.015, 0.10)
	within(t, "full router", full.Total(), 2.10, 0.03)
	within(t, "half crossbar", half.Crossbar, 0.83, 0.02)
	within(t, "half router", half.Total(), 1.18, 0.03)
	// Half-router is roughly half the area of a full router (§IV-A "56%").
	ratio := half.Total() / full.Total()
	if ratio < 0.45 || ratio > 0.65 {
		t.Errorf("half/full router ratio = %.2f, want ~0.56", ratio)
	}
}

// Table VI row 4: double network at 8B, 2VC per slice.
func TestTableVIDouble(t *testing.T) {
	full := Router(FullRouter, 8, 2, 8, 1, 1)
	half := Router(HalfRouter, 8, 2, 8, 1, 1)
	within(t, "full crossbar", full.Crossbar, 0.43, 0.02)
	within(t, "full buffer", full.Buffer, 0.087, 0.03)
	within(t, "full router", full.Total(), 0.522, 0.03)
	within(t, "half crossbar", half.Crossbar, 0.20, 0.05)
	within(t, "half router", half.Total(), 0.30, 0.05)
	within(t, "link", Link(8), 0.087, 0.03)
}

// Table VI row 5: double network with 2 injection ports at MC routers.
func TestTableVIDouble2P(t *testing.T) {
	half2p := Router(HalfRouter, 8, 2, 8, 2, 1)
	within(t, "2P crossbar", half2p.Crossbar, 0.28, 0.03)
	within(t, "2P buffer", half2p.Buffer, 0.10, 0.05)
	within(t, "2P router", half2p.Total(), 0.395, 0.05)
}

// Ring stops expose only East/West, so their crossbar is 9/25 of a full
// mesh router's and their buffering covers 3 in-ports rather than 5.
func TestRingRouterArea(t *testing.T) {
	ringr := Router(RingRouter, 16, 4, 4, 1, 1)
	fullr := Router(FullRouter, 16, 4, 4, 1, 1)
	within(t, "ring crossbar", ringr.Crossbar, fullr.Crossbar*9/25, 0.001)
	within(t, "ring buffer", ringr.Buffer, fullr.Buffer*3/5, 0.001)
	if ringr.Total() >= fullr.Total() {
		t.Errorf("ring router (%.3f) not smaller than full router (%.3f)",
			ringr.Total(), fullr.Total())
	}
}

// FromConfig dispatches on the topology backend: a 36-node ring prices 36
// ring stops and 72 unidirectional channels.
func TestRingFromConfig(t *testing.T) {
	cfg := noc.DefaultConfig()
	cfg.Topology = noc.BackendRing
	cfg.NumVCs = 4
	cfg.BufDepth = 4
	a := FromConfig(cfg, false)
	r := Router(RingRouter, cfg.FlitBytes, cfg.NumVCs, cfg.BufDepth, 1, 1)
	within(t, "ring router sum", a.Routers, 36*r.Total(), 0.001)
	within(t, "ring link sum", a.Links, 72*Link(cfg.FlitBytes), 0.001)
	base := FromConfig(noc.DefaultConfig(), false)
	if a.NoC() >= base.NoC() {
		t.Errorf("ring NoC area %.2f not below mesh %.2f at equal width",
			a.NoC(), base.NoC())
	}
}

func TestMeshLinks(t *testing.T) {
	if got := MeshLinks(6, 6); got != 120 {
		t.Errorf("6x6 mesh links = %d, want 120", got)
	}
	if got := MeshLinks(2, 2); got != 8 {
		t.Errorf("2x2 mesh links = %d, want 8", got)
	}
}

// Chip-level sums of Table VI.
func TestTableVINetworkSums(t *testing.T) {
	base := FromConfig(noc.DefaultConfig(), false)
	within(t, "baseline router sum", base.Routers, 69.0, 0.03)
	within(t, "baseline link sum", base.Links, 21.015, 0.02)
	within(t, "baseline chip", base.Chip(), 576, 0.01)

	bw2 := noc.DefaultConfig()
	bw2.FlitBytes = 32
	a2 := FromConfig(bw2, false)
	within(t, "2xBW router sum", a2.Routers, 263.0, 0.03)
	within(t, "2xBW chip", a2.Chip(), 790.9, 0.02)

	cpcr := noc.DefaultConfig()
	cpcr.Checkerboard = true
	cpcr.Routing = noc.RoutingCheckerboard
	cpcr.MCs = noc.CheckerboardPlacement(6, 6, 8)
	cpcr.NumVCs = 4
	acr := FromConfig(cpcr, false)
	within(t, "CP-CR router sum", acr.Routers, 59.2, 0.03)
	within(t, "CP-CR chip", acr.Chip(), 566.2, 0.01)

	dbl := cpcr
	dbl.NumVCs = 2
	ad := FromConfig(dbl, true)
	within(t, "double router sum", ad.Routers, 29.74, 0.05)
	within(t, "double chip", ad.Chip(), 536.74, 0.01)

	dbl2p := dbl
	dbl2p.MCInjPorts = 2
	ad2 := FromConfig(dbl2p, true)
	within(t, "double 2P router sum", ad2.Routers, 30.44, 0.05)
	within(t, "double 2P chip", ad2.Chip(), 537.44, 0.01)
}

// The headline: +17% IPC at the double-CP-CR-2P area over the baseline
// gives +25.4% IPC/mm² (§V-F).
func TestHeadlineAreaRatio(t *testing.T) {
	base := FromConfig(noc.DefaultConfig(), false)
	te := noc.DefaultConfig()
	te.Checkerboard = true
	te.Routing = noc.RoutingCheckerboard
	te.MCs = noc.CheckerboardPlacement(6, 6, 8)
	te.NumVCs = 2
	te.MCInjPorts = 2
	a := FromConfig(te, true)
	gain := ThroughputEffectiveness(1.17, a) / ThroughputEffectiveness(1.0, base)
	if gain < 1.24 || gain < 1.0 || gain > 1.27 {
		t.Errorf("throughput-effectiveness gain = %.3f, want ~1.254", gain)
	}
}

func TestCrosspointsPanicsOnUnknownKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for unknown kind")
		}
	}()
	Crosspoints(RouterKind(9), 1, 1)
}
