// Package area is an ORION-2.0-style analytic area model for the paper's
// routers and links at 65 nm, with coefficients fitted to the paper's own
// Table VI (which was produced with ORION 2.0). It reproduces every row of
// that table to within a few percent and supplies the denominators for the
// throughput-effectiveness (IPC/mm²) results.
//
// Model shape:
//
//	crossbar  ∝ crosspoints · width²   (matrix crossbar)
//	buffers   ∝ total buffered bytes   (SRAM)
//	allocator ∝ (ports · VCs)²         (arbitration logic)
//	link      ∝ width                  (wires at fixed length)
package area

import (
	"fmt"

	"repro/internal/noc"
)

// Fitted coefficients (mm² units, 65 nm). Derived from Table VI row 1:
// a 5×5 16-byte 2VC×8 router has crossbar 1.73, buffers 0.17,
// allocator 0.004 and links of 0.175 per 16-byte channel.
const (
	xbarPerCrosspointByte2 = 1.73 / (25 * 16 * 16) // mm² per crosspoint·byte²
	bufferPerByte          = 0.17 / 1280           // 5 ports × 2 VCs × 8 flits × 16 B
	allocPerPortVC2        = 0.004 / (10 * 10)     // (5 ports × 2 VCs)²
	linkPerByte            = 0.175 / 16            // mm² per byte of channel width
)

// GTX280 die constants used by the paper (§V-F).
const (
	ChipAreaMM2    = 576.0
	ComputeAreaMM2 = 486.0
)

// RouterKind captures the connectivity patterns with distinct crossbars.
type RouterKind int

// Router kinds.
const (
	FullRouter RouterKind = iota
	HalfRouter
	// RingRouter has only the two East/West direction ports of the
	// bidirectional ring backend.
	RingRouter
)

// dirPorts is the number of direction (non-terminal) ports per kind.
func dirPorts(kind RouterKind) int {
	if kind == RingRouter {
		return 2
	}
	return 4
}

// Crosspoints returns the crossbar crosspoint count for a router with the
// given terminal port counts. A full mesh router connects every input to
// every output except U-turns; the paper counts a 5×5 crossbar for the
// baseline (§IV-A) and ~half for the half-router: injection→4 directions,
// 4 directions→ejection, E↔W and N↔S (12 points for 1 injection/ejection
// port, matching Table VI's 0.83 mm² at 16 B).
func Crosspoints(kind RouterKind, injPorts, ejPorts int) int {
	switch kind {
	case FullRouter:
		// (4 dirs + inj) × (4 dirs + ej), as the paper sizes it (5×5).
		return (4 + injPorts) * (4 + ejPorts)
	case HalfRouter:
		// inj→{N,S,E,W}, {N,S,E,W}→ej, E↔W, N↔S.
		return injPorts*4 + ejPorts*4 + 4
	case RingRouter:
		// (E + W + inj) × (E + W + ej): the full crossbar of a 2-direction
		// ring stop.
		return (2 + injPorts) * (2 + ejPorts)
	}
	panic(fmt.Sprintf("area: unknown router kind %d", kind))
}

// RouterArea is the per-component area of one router in mm².
type RouterArea struct {
	Crossbar  float64
	Buffer    float64
	Allocator float64
}

// Total returns the router's total area.
func (r RouterArea) Total() float64 { return r.Crossbar + r.Buffer + r.Allocator }

// Router computes the area of one router.
//
// channelBytes is the flit width; vcs and bufDepth describe each input
// port's buffering. Ports = 4 directions plus the given terminal ports.
func Router(kind RouterKind, channelBytes, vcs, bufDepth, injPorts, ejPorts int) RouterArea {
	w := float64(channelBytes)
	xp := float64(Crosspoints(kind, injPorts, ejPorts))
	inPorts := dirPorts(kind) + injPorts
	bufBytes := float64(inPorts * vcs * bufDepth * channelBytes)
	pv := float64(inPorts * vcs)
	return RouterArea{
		Crossbar:  xbarPerCrosspointByte2 * xp * w * w,
		Buffer:    bufferPerByte * bufBytes,
		Allocator: allocPerPortVC2 * pv * pv,
	}
}

// Link returns the area of one unidirectional mesh channel of the given
// width in bytes.
func Link(channelBytes int) float64 { return linkPerByte * float64(channelBytes) }

// NetworkArea is the chip-level network area breakdown.
type NetworkArea struct {
	Routers float64
	Links   float64
}

// NoC returns Routers + Links.
func (n NetworkArea) NoC() float64 { return n.Routers + n.Links }

// Chip returns the total die area assuming the paper's fixed compute area.
func (n NetworkArea) Chip() float64 { return ComputeAreaMM2 + n.NoC() }

// MeshLinks returns the number of unidirectional channels in a W×H mesh.
func MeshLinks(width, height int) int {
	return 2 * (width*(height-1) + height*(width-1))
}

// FromConfig computes the network area of any topology backend's
// configuration, including double (channel-sliced) networks when sliced is
// true: two networks at half channel width, mirroring noc.NewDouble. Router
// kinds follow the backend: mesh/basejump nodes are full (or checkerboard
// half-) routers, ring nodes are 2-direction ring stops, and the link count
// comes from the backend's own channel enumeration.
func FromConfig(cfg noc.Config, sliced bool) NetworkArea {
	copies := 1
	channel := cfg.FlitBytes
	if sliced {
		copies = 2
		channel = cfg.FlitBytes / 2
	}
	backend := noc.MustBuildBackend(cfg)
	ring := backend.Kind() == noc.BackendRing
	var routers float64
	for n := 0; n < backend.NumNodes(); n++ {
		node := noc.NodeID(n)
		kind := FullRouter
		switch {
		case ring:
			kind = RingRouter
		case backend.IsHalf(node):
			kind = HalfRouter
		}
		inj, ej := 1, 1
		if backend.IsMC(node) {
			inj, ej = cfg.MCInjPorts, cfg.MCEjPorts
		}
		routers += Router(kind, channel, cfg.NumVCs, cfg.BufDepth, inj, ej).Total()
	}
	links := float64(backend.Links()) * Link(channel)
	return NetworkArea{
		Routers: routers * float64(copies),
		Links:   links * float64(copies),
	}
}

// ThroughputEffectiveness returns IPC per mm² for a measured throughput on
// a chip with the given network area.
func ThroughputEffectiveness(ipc float64, n NetworkArea) float64 {
	return ipc / n.Chip()
}
