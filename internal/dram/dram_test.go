package dram

import (
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

func newTestController(t *testing.T) *Controller {
	t.Helper()
	m := addr.MustNewMapper(addr.Config{})
	c, err := NewController(DefaultConfig(), m)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// run ticks the controller until n requests complete or maxCycles elapse.
func run(t *testing.T, c *Controller, n int, maxCycles int) []Request {
	t.Helper()
	var done []Request
	for i := 0; i < maxCycles && len(done) < n; i++ {
		done = append(done, c.Tick()...)
	}
	if len(done) < n {
		t.Fatalf("only %d/%d requests completed in %d cycles", len(done), n, maxCycles)
	}
	return done
}

func TestNewControllerValidation(t *testing.T) {
	m := addr.MustNewMapper(addr.Config{})
	if _, err := NewController(Config{QueueCapacity: 0, NumBanks: 8}, m); err == nil {
		t.Error("zero queue capacity accepted")
	}
	if _, err := NewController(Config{QueueCapacity: 32, NumBanks: 0}, m); err == nil {
		t.Error("zero banks accepted")
	}
	if _, err := NewController(DefaultConfig(), nil); err == nil {
		t.Error("nil mapper accepted")
	}
}

func TestSingleReadLatency(t *testing.T) {
	c := newTestController(t)
	c.Enqueue(Request{Addr: 0, Meta: "r0"})
	done := run(t, c, 1, 200)
	// Cold bank: activate (tRCD=12) + CAS (tCL=9) + burst (4) after issue on
	// cycle 1 => completion around cycle 26. Allow slack for model details.
	tm := DefaultTiming()
	minLat := tm.RCD + tm.CL + tm.Bust
	if c.now < minLat {
		t.Errorf("completed at cycle %d, faster than tRCD+tCL+tBurst=%d", c.now, minLat)
	}
	if done[0].Meta != "r0" {
		t.Errorf("wrong meta: %v", done[0].Meta)
	}
}

func TestRowHitFasterThanRowMiss(t *testing.T) {
	// Two requests to the same row complete much sooner than two to
	// different rows of the same bank.
	sameRowCycles := cyclesFor(t, []addr.Address{0, 64})
	sameBankDiffRow := cyclesFor(t, []addr.Address{0, bankStride() * 8}) // same bank, different row
	if sameRowCycles >= sameBankDiffRow {
		t.Errorf("row hit (%d cycles) not faster than row conflict (%d cycles)",
			sameRowCycles, sameBankDiffRow)
	}
}

// bankStride returns the global address stride that advances one full row
// within one MC (local stride rowBytes, times 8 MCs for global).
func bankStride() addr.Address { return 2048 * 8 }

func cyclesFor(t *testing.T, addrs []addr.Address) uint64 {
	t.Helper()
	c := newTestController(t)
	for _, a := range addrs {
		c.Enqueue(Request{Addr: a})
	}
	run(t, c, len(addrs), 1000)
	return c.now
}

func TestBankParallelismBeatsBankConflict(t *testing.T) {
	// 4 requests across 4 banks should finish sooner than 4 row-conflicting
	// requests in one bank.
	var spread, conflict []addr.Address
	for i := 0; i < 4; i++ {
		spread = append(spread, addr.Address(i)*bankStride())                // different banks
		conflict = append(conflict, addr.Address(i)*bankStride()*8+64*8*100) // same bank, different rows
	}
	sc := cyclesFor(t, spread)
	cc := cyclesFor(t, conflict)
	if sc >= cc {
		t.Errorf("bank-parallel (%d) not faster than bank-conflict (%d)", sc, cc)
	}
}

func TestFRFCFSPrioritizesRowHits(t *testing.T) {
	c := newTestController(t)
	// Open row 0 of bank 0 with one request, then enqueue a conflicting
	// request (different row) followed by a row hit; FR-FCFS should finish
	// the row hit before the conflict despite arrival order.
	c.Enqueue(Request{Addr: 0, Meta: "opener"})
	for i := 0; i < 60; i++ {
		c.Tick()
	}
	c.Enqueue(Request{Addr: bankStride() * 8 * 100, Meta: "conflict"}) // same bank, row 100
	c.Enqueue(Request{Addr: 64 * 8, Meta: "hit"})                      // same row as opener
	var order []string
	for i := 0; i < 500 && len(order) < 2; i++ {
		for _, r := range c.Tick() {
			order = append(order, r.Meta.(string))
		}
	}
	if len(order) != 2 || order[0] != "hit" {
		t.Errorf("completion order = %v, want hit before conflict", order)
	}
	if c.Stats().RowHits == 0 {
		t.Error("expected at least one row hit recorded")
	}
}

func TestQueueCapacity(t *testing.T) {
	c := newTestController(t)
	for i := 0; i < 32; i++ {
		if !c.CanAccept() {
			t.Fatalf("queue refused entry %d", i)
		}
		if !c.Enqueue(Request{Addr: addr.Address(i * 64 * 8)}) {
			t.Fatalf("queue with space rejected entry %d", i)
		}
	}
	if c.CanAccept() {
		t.Error("queue should be full at 32 entries")
	}
	if c.Enqueue(Request{}) {
		t.Error("full queue accepted a request instead of applying backpressure")
	}
	if c.QueueLen() != 32 {
		t.Errorf("refused enqueue changed queue length to %d", c.QueueLen())
	}
}

func TestEfficiencyHigherForSequential(t *testing.T) {
	seq := effFor(t, func(i int) addr.Address { return addr.Address(i * 64) })
	scatter := effFor(t, func(i int) addr.Address {
		// Same bank, new row every request: worst case.
		return addr.Address(i) * bankStride() * 8
	})
	if seq <= scatter {
		t.Errorf("sequential efficiency %v not higher than scattered %v", seq, scatter)
	}
	if seq < 0.3 {
		t.Errorf("sequential efficiency %v unexpectedly low", seq)
	}
}

func effFor(t *testing.T, gen func(i int) addr.Address) float64 {
	t.Helper()
	c := newTestController(t)
	fed, completed := 0, 0
	const total = 200
	for cycle := 0; cycle < 100000 && completed < total; cycle++ {
		if fed < total && c.CanAccept() {
			c.Enqueue(Request{Addr: gen(fed)})
			fed++
		}
		completed += len(c.Tick())
	}
	if completed < total {
		t.Fatalf("only %d/%d completed", completed, total)
	}
	return c.Stats().Efficiency()
}

func TestAllRequestsEventuallyComplete(t *testing.T) {
	// Property: any batch of requests completes, exactly once each.
	f := func(raws []uint32) bool {
		c := MustNewController(DefaultConfig(), addr.MustNewMapper(addr.Config{}))
		want := len(raws)
		if want > 64 {
			raws = raws[:64]
			want = 64
		}
		seen := map[int]int{}
		fed := 0
		got := 0
		for cycle := 0; cycle < 200000 && got < want; cycle++ {
			if fed < want && c.CanAccept() {
				c.Enqueue(Request{Addr: addr.Address(raws[fed]) &^ 63, IsWrite: raws[fed]%3 == 0, Meta: fed})
				fed++
			}
			for _, r := range c.Tick() {
				seen[r.Meta.(int)]++
				got++
			}
		}
		if got != want {
			return false
		}
		for i := 0; i < want; i++ {
			if seen[i] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestStatsCounts(t *testing.T) {
	c := newTestController(t)
	c.Enqueue(Request{Addr: 0, IsWrite: false})
	c.Enqueue(Request{Addr: 64, IsWrite: true})
	run(t, c, 2, 1000)
	st := c.Stats()
	if st.Reads != 1 || st.Writes != 1 {
		t.Errorf("reads/writes = %d/%d, want 1/1", st.Reads, st.Writes)
	}
	if st.RowHits+st.RowMiss != 2 {
		t.Errorf("row events = %d, want 2", st.RowHits+st.RowMiss)
	}
}

func TestRowLocalityMetric(t *testing.T) {
	var s Stats
	if s.RowLocality() != 0 {
		t.Error("empty locality should be 0")
	}
	s = Stats{RowHits: 3, RowMiss: 1}
	if s.RowLocality() != 0.75 {
		t.Errorf("locality = %v, want 0.75", s.RowLocality())
	}
}
