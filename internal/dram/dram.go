// Package dram models one GDDR3 memory channel behind a memory controller:
// a bank state machine honoring the Table II timing parameters
// (tCL=9, tRP=13, tRC=34, tRAS=21, tRCD=12, tRRD=8, in DRAM cycles), an
// out-of-order FR-FCFS (first-ready, first-come-first-served) scheduler with
// a 32-entry request queue, and a shared data bus transferring 16 bytes per
// DRAM clock.
//
// The model is transaction level: when the scheduler issues a request it
// reserves the bank and data bus for the exact command timing the request
// needs (precharge / activate / CAS / burst), which reproduces row-locality
// and bus-efficiency effects without simulating individual DRAM commands.
package dram

import (
	"fmt"

	"repro/internal/addr"
)

// Timing holds GDDR3 timing parameters in DRAM clock cycles.
type Timing struct {
	CL   uint64 // CAS latency (read command -> first data)
	RP   uint64 // precharge period
	RC   uint64 // activate -> activate, same bank
	RAS  uint64 // activate -> precharge, same bank
	RCD  uint64 // activate -> CAS, same bank
	RRD  uint64 // activate -> activate, different banks
	Bust uint64 // data burst duration (64 B at 16 B/cycle = 4)
}

// DefaultTiming is the paper's GDDR3 configuration (Table II).
func DefaultTiming() Timing {
	return Timing{CL: 9, RP: 13, RC: 34, RAS: 21, RCD: 12, RRD: 8, Bust: 4}
}

// Config parameterizes a Controller.
type Config struct {
	Timing        Timing
	QueueCapacity int // FR-FCFS queue entries (32 in the paper)
	NumBanks      int // banks per channel
}

// DefaultConfig returns the paper configuration.
func DefaultConfig() Config {
	return Config{Timing: DefaultTiming(), QueueCapacity: 32, NumBanks: addr.DefaultBanksPerMC}
}

// Request is one line-sized DRAM transaction.
type Request struct {
	Addr    addr.Address
	IsWrite bool
	Meta    interface{} // opaque caller payload, returned on completion
}

type queued struct {
	req   Request
	bank  uint64
	row   uint64
	entry uint64 // arrival order for FCFS tie-break
}

type inflight struct {
	req    Request
	doneAt uint64
}

type bank struct {
	rowOpen     bool
	row         uint64
	readyAt     uint64 // earliest cycle the bank accepts its next command
	lastActAt   uint64 // for tRC and tRAS accounting
	everActed   bool
	prechargeAt uint64 // when the currently-scheduled precharge completes (== readyAt path)
}

// Stats aggregates controller activity.
type Stats struct {
	Reads, Writes     uint64
	RowHits, RowMiss  uint64
	BusBusyCycles     uint64
	ActiveCycles      uint64 // cycles with pending or in-flight work
	TotalQueueSamples uint64
	QueueOccupancySum uint64
}

// Efficiency is the paper's DRAM-efficiency metric: the fraction of cycles
// the data pins transfer data, out of cycles where requests are pending.
func (s Stats) Efficiency() float64 {
	if s.ActiveCycles == 0 {
		return 0
	}
	return float64(s.BusBusyCycles) / float64(s.ActiveCycles)
}

// RowLocality returns rowHits / (rowHits+rowMisses).
func (s Stats) RowLocality() float64 {
	total := s.RowHits + s.RowMiss
	if total == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(total)
}

// Controller is one memory channel. Drive it with Tick once per DRAM cycle.
type Controller struct {
	cfg      Config
	mapper   *addr.Mapper
	now      uint64
	queue    []queued
	nextID   uint64
	banks    []bank
	lastAct  uint64 // last activate on any bank, for tRRD
	anyActed bool
	busFree  uint64 // first cycle the data bus is free
	inflight []inflight
	stats    Stats
}

// NewController builds a controller; mapper supplies bank/row decoding.
func NewController(cfg Config, mapper *addr.Mapper) (*Controller, error) {
	if cfg.QueueCapacity <= 0 {
		return nil, fmt.Errorf("dram: queue capacity must be positive, got %d", cfg.QueueCapacity)
	}
	if cfg.NumBanks <= 0 {
		return nil, fmt.Errorf("dram: bank count must be positive, got %d", cfg.NumBanks)
	}
	if mapper == nil {
		return nil, fmt.Errorf("dram: mapper must not be nil")
	}
	return &Controller{
		cfg:    cfg,
		mapper: mapper,
		banks:  make([]bank, cfg.NumBanks),
	}, nil
}

// MustNewController is NewController but panics on error.
func MustNewController(cfg Config, mapper *addr.Mapper) *Controller {
	c, err := NewController(cfg, mapper)
	if err != nil {
		panic(err)
	}
	return c
}

// CanAccept reports whether the request queue has a free entry.
func (c *Controller) CanAccept() bool { return len(c.queue) < c.cfg.QueueCapacity }

// Enqueue adds a request, reporting whether the queue accepted it. A full
// queue refuses the request (returns false) and the caller applies
// backpressure — the NoC ejection path stalls until a slot frees up.
func (c *Controller) Enqueue(req Request) bool {
	if !c.CanAccept() {
		return false
	}
	br := c.mapper.Decode(req.Addr)
	c.queue = append(c.queue, queued{req: req, bank: br.Bank % uint64(c.cfg.NumBanks), row: br.Row, entry: c.nextID})
	c.nextID++
	return true
}

// QueueLen returns the current queue occupancy.
func (c *Controller) QueueLen() int { return len(c.queue) }

// Busy reports whether any work is queued or in flight.
func (c *Controller) Busy() bool { return len(c.queue) > 0 || len(c.inflight) > 0 }

// Now returns the controller's cycle counter (Tick count so far).
func (c *Controller) Now() uint64 { return c.now }

// NeverCycle is the NextWorkCycle sentinel for "idle until new requests
// arrive".
const NeverCycle = ^uint64(0)

// NextWorkCycle returns the exact cycle count at which the next Tick does
// real work — issues a transaction or completes a burst. With an empty
// machine it returns NeverCycle; only Enqueue creates new work. Between
// now and the returned cycle each Tick only advances the clock and accrues
// the busy/occupancy counters, which SkipAhead replays in O(1).
//
// Exactness: a queued request issues on the first tick where its bank's
// readyAt has passed, so the earliest candidate is max(now+1, min over
// queue of readyAt); no earlier tick can issue anything, and completions
// fire precisely at their recorded doneAt.
func (c *Controller) NextWorkCycle() uint64 {
	if !c.Busy() {
		return NeverCycle
	}
	next := NeverCycle
	for i := range c.inflight {
		if c.inflight[i].doneAt < next {
			next = c.inflight[i].doneAt
		}
	}
	if len(c.queue) > 0 {
		minReady := NeverCycle
		for i := range c.queue {
			if r := c.banks[c.queue[i].bank].readyAt; r < minReady {
				minReady = r
			}
		}
		if issueAt := max64(c.now+1, minReady); issueAt < next {
			next = issueAt
		}
	}
	return next
}

// SkipAhead credits k idle ticks in O(1): the clock and the busy-time /
// queue-occupancy statistics advance exactly as k Ticks would (Busy() is
// invariant over a window with no issues, completions or enqueues).
func (c *Controller) SkipAhead(k uint64) {
	c.now += k
	if c.Busy() {
		c.stats.ActiveCycles += k
		c.stats.TotalQueueSamples += k
		c.stats.QueueOccupancySum += k * uint64(len(c.queue))
	}
}

// Stats returns activity counters.
func (c *Controller) Stats() Stats { return c.stats }

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Tick advances one DRAM cycle and returns requests whose data transfer
// completed this cycle.
func (c *Controller) Tick() []Request {
	c.now++
	if c.Busy() {
		c.stats.ActiveCycles++
		c.stats.TotalQueueSamples++
		c.stats.QueueOccupancySum += uint64(len(c.queue))
	}
	c.schedule()
	return c.complete()
}

// schedule issues at most one transaction per cycle using FR-FCFS: the
// oldest row-hit request that can issue now wins; otherwise the oldest
// issuable request.
func (c *Controller) schedule() {
	pick := -1
	pickHit := false
	for i := range c.queue {
		q := &c.queue[i]
		b := &c.banks[q.bank]
		if b.readyAt > c.now {
			continue
		}
		hit := b.rowOpen && b.row == q.row
		if hit {
			if !pickHit || c.queue[pick].entry > q.entry {
				pick, pickHit = i, true
			}
		} else if !pickHit && (pick < 0 || c.queue[pick].entry > q.entry) {
			pick = i
		}
	}
	if pick < 0 {
		return
	}
	q := c.queue[pick]
	c.queue = append(c.queue[:pick], c.queue[pick+1:]...)
	c.issue(q, pickHit)
}

func (c *Controller) issue(q queued, rowHit bool) {
	t := &c.cfg.Timing
	b := &c.banks[q.bank]
	casAt := c.now
	if rowHit {
		c.stats.RowHits++
	} else {
		c.stats.RowMiss++
		actAt := c.now
		if b.rowOpen {
			// Precharge first: respect tRAS since activate.
			preAt := max64(c.now, b.lastActAt+t.RAS)
			actAt = preAt + t.RP
		}
		// Respect tRC (same bank) and tRRD (any bank).
		if b.everActed {
			actAt = max64(actAt, b.lastActAt+t.RC)
		}
		if c.anyActed {
			actAt = max64(actAt, c.lastAct+t.RRD)
		}
		b.lastActAt = actAt
		b.everActed = true
		c.lastAct = actAt
		c.anyActed = true
		b.rowOpen = true
		b.row = q.row
		casAt = actAt + t.RCD
	}
	dataStart := max64(casAt+t.CL, c.busFree)
	dataEnd := dataStart + t.Bust
	c.busFree = dataEnd
	// The bus transfers for exactly the burst duration; the reservation gap
	// before dataStart is idle time and must not count toward efficiency.
	c.stats.BusBusyCycles += t.Bust
	// The bank can take its next CAS once this burst is underway; next
	// activate timing is enforced via lastActAt. Approximate bank busy
	// until the burst completes.
	b.readyAt = dataEnd
	if q.req.IsWrite {
		c.stats.Writes++
	} else {
		c.stats.Reads++
	}
	c.inflight = append(c.inflight, inflight{req: q.req, doneAt: dataEnd})
}

func (c *Controller) complete() []Request {
	var done []Request
	kept := c.inflight[:0]
	for _, f := range c.inflight {
		if f.doneAt <= c.now {
			done = append(done, f.req)
		} else {
			kept = append(kept, f)
		}
	}
	c.inflight = kept
	return done
}
