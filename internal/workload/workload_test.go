package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

func testProfile() Profile {
	return Profile{
		Name: "test", Abbr: "TST", Class: "HH",
		Warps: 8, InstrsPerWarp: 100, MemFraction: 0.3, WriteFraction: 0.2,
		LinesPerMemInstr: 2, ActiveThreads: 32, WorkingSetKB: 256,
		Sequential: 0.6, Reuse: 0.2,
	}
}

func TestProfileValidate(t *testing.T) {
	good := testProfile()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	mutations := []func(*Profile){
		func(p *Profile) { p.Warps = 0 },
		func(p *Profile) { p.Warps = 33 },
		func(p *Profile) { p.InstrsPerWarp = 0 },
		func(p *Profile) { p.MemFraction = 1.5 },
		func(p *Profile) { p.WriteFraction = -0.1 },
		func(p *Profile) { p.LinesPerMemInstr = 0 },
		func(p *Profile) { p.LinesPerMemInstr = 64 },
		func(p *Profile) { p.ActiveThreads = 0 },
		func(p *Profile) { p.WorkingSetKB = 0 },
		func(p *Profile) { p.Sequential = 0.8; p.Reuse = 0.4 },
	}
	for i, m := range mutations {
		p := testProfile()
		m(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestCatalogComplete(t *testing.T) {
	cat := Catalog()
	if len(cat) != 31 {
		t.Fatalf("catalog has %d benchmarks, Table I lists 31", len(cat))
	}
	classes := map[string]int{}
	seen := map[string]bool{}
	for _, p := range cat {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Abbr, err)
		}
		if seen[p.Abbr] {
			t.Errorf("duplicate abbreviation %s", p.Abbr)
		}
		seen[p.Abbr] = true
		classes[p.Class]++
	}
	// Fig 7 grouping: 11 LL, 11 LH, 9 HH.
	if classes["LL"] != 11 || classes["LH"] != 11 || classes["HH"] != 9 {
		t.Errorf("class counts = %v, want LL:11 LH:11 HH:9", classes)
	}
}

func TestByAbbr(t *testing.T) {
	p, err := ByAbbr("MUM")
	if err != nil || p.Name != "MUMmerGPU" {
		t.Errorf("ByAbbr(MUM) = %+v, %v", p, err)
	}
	if _, err := ByAbbr("nope"); err == nil {
		t.Error("unknown abbreviation accepted")
	}
}

func TestGeneratorInstrCount(t *testing.T) {
	g := MustNewGenerator(testProfile(), 0, 1, 1)
	for w := 0; w < 8; w++ {
		n := 0
		for {
			_, ok := g.Next(w)
			if !ok {
				break
			}
			n++
		}
		if n != 100 {
			t.Errorf("warp %d issued %d instrs, want 100", w, n)
		}
		if !g.Done(w) {
			t.Errorf("warp %d not done", w)
		}
	}
	if !g.AllDone() {
		t.Error("generator not AllDone")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	collect := func() []Instr {
		g := MustNewGenerator(testProfile(), 3, 28, 42)
		var out []Instr
		for w := 0; w < 8; w++ {
			for {
				ins, ok := g.Next(w)
				if !ok {
					break
				}
				cp := ins
				cp.Lines = append([]addr.Address(nil), ins.Lines...)
				out = append(out, cp)
			}
		}
		return out
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Mem != b[i].Mem || a[i].Write != b[i].Write || len(a[i].Lines) != len(b[i].Lines) {
			t.Fatalf("instr %d differs", i)
		}
		for j := range a[i].Lines {
			if a[i].Lines[j] != b[i].Lines[j] {
				t.Fatalf("instr %d line %d differs", i, j)
			}
		}
	}
}

func TestGeneratorCoresInterleaveStreams(t *testing.T) {
	// Streaming cores of one kernel share the address space (like CTAs of
	// one CUDA grid): at the same progress point, core 0 and core 1 touch
	// adjacent chunks, k*warps lines apart.
	p := testProfile()
	p.Sequential, p.Reuse = 1.0, 0.0
	p.MemFraction = 1.0
	g0 := MustNewGenerator(p, 0, 2, 1)
	g1 := MustNewGenerator(p, 1, 2, 1)
	i0, _ := g0.Next(0)
	i1, _ := g1.Next(0)
	stride := addr.Address(p.Warps * p.LinesPerMemInstr * 64)
	if i1.Lines[0] != i0.Lines[0]+stride {
		t.Errorf("core 1 first line %#x, want %#x (core 0 + %d)",
			i1.Lines[0], i0.Lines[0]+stride, stride)
	}
}

func TestGeneratorRejectsBadCoreIndex(t *testing.T) {
	if _, err := NewGenerator(testProfile(), 3, 2, 1); err == nil {
		t.Error("coreID >= numCores accepted")
	}
	if _, err := NewGenerator(testProfile(), 0, 0, 1); err == nil {
		t.Error("zero cores accepted")
	}
}

func TestGeneratorMemFraction(t *testing.T) {
	p := testProfile()
	p.InstrsPerWarp = 5000
	g := MustNewGenerator(p, 0, 1, 7)
	mem, total := 0, 0
	for w := 0; w < p.Warps; w++ {
		for {
			ins, ok := g.Next(w)
			if !ok {
				break
			}
			total++
			if ins.Mem {
				mem++
				if len(ins.Lines) != p.LinesPerMemInstr {
					t.Fatalf("mem instr has %d lines, want %d", len(ins.Lines), p.LinesPerMemInstr)
				}
			} else if len(ins.Lines) != 0 {
				t.Fatal("compute instr carries addresses")
			}
		}
	}
	frac := float64(mem) / float64(total)
	if frac < 0.27 || frac > 0.33 {
		t.Errorf("memory fraction %v, want ~0.3", frac)
	}
}

func TestGeneratorAddressesLineAlignedInWorkingSet(t *testing.T) {
	f := func(seed uint64, core uint8) bool {
		p := testProfile()
		p.InstrsPerWarp = 60
		g := MustNewGenerator(p, int(core%28), 28, seed)
		ws := uint64(p.WorkingSetKB) * 1024
		for w := 0; w < p.Warps; w++ {
			for {
				ins, ok := g.Next(w)
				if !ok {
					break
				}
				for _, l := range ins.Lines {
					a := uint64(l)
					if a%64 != 0 {
						return false
					}
					if a >= ws {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSequentialProfileHasLocality(t *testing.T) {
	// A 100%-sequential profile must produce mostly consecutive lines.
	p := testProfile()
	p.Sequential, p.Reuse = 1.0, 0.0
	p.Warps = 1
	p.MemFraction = 1.0
	p.InstrsPerWarp = 200
	g := MustNewGenerator(p, 0, 1, 3)
	var prev addr.Address
	consecutive, total := 0, 0
	for {
		ins, ok := g.Next(0)
		if !ok {
			break
		}
		for _, l := range ins.Lines {
			if prev != 0 && l == prev+64 {
				consecutive++
			}
			prev = l
			total++
		}
	}
	if frac := float64(consecutive) / float64(total); frac < 0.9 {
		t.Errorf("sequential fraction %v, want > 0.9", frac)
	}
}
