package workload

import "fmt"

// Catalog returns the 31 benchmarks of Table I as synthetic profiles.
//
// Parameters are calibrated (see EXPERIMENTS.md) so that under the paper's
// baseline configuration each benchmark reproduces its published traffic
// class: the first letter is H when the perfect-network speedup exceeds 30%
// and the second is H when accepted traffic exceeds 1 byte/cycle/node
// (§III-B). LL kernels are compute-bound with strong locality; LH kernels
// stream heavily but stay below network saturation; HH kernels are
// memory-bound and expose the many-to-few-to-many reply bottleneck.
func Catalog() []Profile {
	return []Profile{
		// ---- LL: low speedup with a perfect NoC, light traffic ----
		{Name: "AES Cryptography", Abbr: "AES", Class: "LL",
			Warps: 24, InstrsPerWarp: 500, MemFraction: 0.022, WriteFraction: 0.20,
			LinesPerMemInstr: 2, ActiveThreads: 32, WorkingSetKB: 2048, Sequential: 0.33, Reuse: 0.62},
		{Name: "Binomial Option Pricing", Abbr: "BIN", Class: "LL",
			Warps: 32, InstrsPerWarp: 550, MemFraction: 0.010, WriteFraction: 0.25,
			LinesPerMemInstr: 2, ActiveThreads: 32, WorkingSetKB: 1024, Sequential: 0.40, Reuse: 0.55},
		{Name: "HotSpot", Abbr: "HSP", Class: "LL",
			Warps: 24, InstrsPerWarp: 450, MemFraction: 0.024, WriteFraction: 0.30,
			LinesPerMemInstr: 2, ActiveThreads: 32, WorkingSetKB: 3072, Sequential: 0.30, Reuse: 0.64},
		{Name: "Neural Network Digit Recognition", Abbr: "NE", Class: "LL",
			Warps: 28, InstrsPerWarp: 500, MemFraction: 0.020, WriteFraction: 0.15,
			LinesPerMemInstr: 2, ActiveThreads: 32, WorkingSetKB: 4096, Sequential: 0.36, Reuse: 0.60},
		{Name: "Needleman-Wunsch", Abbr: "NDL", Class: "LL",
			Warps: 16, InstrsPerWarp: 480, MemFraction: 0.022, WriteFraction: 0.35,
			LinesPerMemInstr: 2, ActiveThreads: 28, WorkingSetKB: 2048, Sequential: 0.26, Reuse: 0.66},
		{Name: "Heart Wall Tracking", Abbr: "HW", Class: "LL",
			Warps: 24, InstrsPerWarp: 520, MemFraction: 0.020, WriteFraction: 0.20,
			LinesPerMemInstr: 2, ActiveThreads: 32, WorkingSetKB: 3072, Sequential: 0.32, Reuse: 0.62},
		{Name: "Leukocyte", Abbr: "LE", Class: "LL",
			Warps: 28, InstrsPerWarp: 560, MemFraction: 0.018, WriteFraction: 0.15,
			LinesPerMemInstr: 2, ActiveThreads: 32, WorkingSetKB: 2048, Sequential: 0.36, Reuse: 0.60},
		{Name: "64-bin Histogram", Abbr: "HIS", Class: "LL",
			Warps: 32, InstrsPerWarp: 450, MemFraction: 0.024, WriteFraction: 0.30,
			LinesPerMemInstr: 2, ActiveThreads: 32, WorkingSetKB: 1536, Sequential: 0.26, Reuse: 0.68},
		{Name: "LU Decomposition", Abbr: "LU", Class: "LL",
			Warps: 24, InstrsPerWarp: 480, MemFraction: 0.024, WriteFraction: 0.35,
			LinesPerMemInstr: 2, ActiveThreads: 30, WorkingSetKB: 4096, Sequential: 0.32, Reuse: 0.62},
		{Name: "Scan of Large Arrays", Abbr: "SLA", Class: "LL",
			Warps: 32, InstrsPerWarp: 500, MemFraction: 0.020, WriteFraction: 0.40,
			LinesPerMemInstr: 2, ActiveThreads: 32, WorkingSetKB: 2560, Sequential: 0.38, Reuse: 0.56},
		{Name: "Back Propagation", Abbr: "BP", Class: "LL",
			Warps: 28, InstrsPerWarp: 480, MemFraction: 0.022, WriteFraction: 0.30,
			LinesPerMemInstr: 2, ActiveThreads: 32, WorkingSetKB: 3072, Sequential: 0.34, Reuse: 0.60},

		// ---- LH: heavy traffic but close to peak throughput already ----
		{Name: "Separable Convolution", Abbr: "CON", Class: "LH",
			Warps: 32, InstrsPerWarp: 420, MemFraction: 0.034, WriteFraction: 0.25,
			LinesPerMemInstr: 2, ActiveThreads: 32, WorkingSetKB: 32768, Sequential: 0.92, Reuse: 0.04},
		{Name: "Nearest Neighbor", Abbr: "NNC", Class: "LH",
			Warps: 16, InstrsPerWarp: 420, MemFraction: 0.038, WriteFraction: 0.10,
			LinesPerMemInstr: 2, ActiveThreads: 32, WorkingSetKB: 16384, Sequential: 0.90, Reuse: 0.05},
		{Name: "Black-Scholes Option Pricing", Abbr: "BLK", Class: "LH",
			Warps: 32, InstrsPerWarp: 420, MemFraction: 0.032, WriteFraction: 0.30,
			LinesPerMemInstr: 2, ActiveThreads: 32, WorkingSetKB: 65536, Sequential: 0.95, Reuse: 0.02},
		{Name: "Matrix Multiplication", Abbr: "MM", Class: "LH",
			Warps: 32, InstrsPerWarp: 450, MemFraction: 0.034, WriteFraction: 0.08,
			LinesPerMemInstr: 2, ActiveThreads: 32, WorkingSetKB: 24576, Sequential: 0.85, Reuse: 0.12},
		{Name: "3D Laplace Solver", Abbr: "LPS", Class: "LH",
			Warps: 28, InstrsPerWarp: 420, MemFraction: 0.038, WriteFraction: 0.25,
			LinesPerMemInstr: 2, ActiveThreads: 32, WorkingSetKB: 32768, Sequential: 0.88, Reuse: 0.08},
		{Name: "Ray Tracing", Abbr: "RAY", Class: "LH",
			Warps: 28, InstrsPerWarp: 420, MemFraction: 0.028, WriteFraction: 0.15,
			LinesPerMemInstr: 3, ActiveThreads: 24, WorkingSetKB: 32768, Sequential: 0.75, Reuse: 0.15},
		{Name: "gpuDG", Abbr: "DG", Class: "LH",
			Warps: 32, InstrsPerWarp: 440, MemFraction: 0.034, WriteFraction: 0.20,
			LinesPerMemInstr: 2, ActiveThreads: 32, WorkingSetKB: 49152, Sequential: 0.90, Reuse: 0.05},
		{Name: "Similarity Score", Abbr: "SS", Class: "LH",
			Warps: 28, InstrsPerWarp: 420, MemFraction: 0.036, WriteFraction: 0.25,
			LinesPerMemInstr: 2, ActiveThreads: 30, WorkingSetKB: 32768, Sequential: 0.85, Reuse: 0.08},
		{Name: "Matrix Transpose", Abbr: "TRA", Class: "LH",
			Warps: 32, InstrsPerWarp: 400, MemFraction: 0.035, WriteFraction: 0.45,
			LinesPerMemInstr: 2, ActiveThreads: 32, WorkingSetKB: 32768, Sequential: 0.90, Reuse: 0.02},
		{Name: "Speckle Reducing Anisotropic Diffusion", Abbr: "SR", Class: "LH",
			Warps: 28, InstrsPerWarp: 420, MemFraction: 0.035, WriteFraction: 0.30,
			LinesPerMemInstr: 2, ActiveThreads: 32, WorkingSetKB: 32768, Sequential: 0.88, Reuse: 0.06},
		{Name: "Weather Prediction", Abbr: "WP", Class: "LH",
			Warps: 24, InstrsPerWarp: 420, MemFraction: 0.028, WriteFraction: 0.30,
			LinesPerMemInstr: 3, ActiveThreads: 32, WorkingSetKB: 49152, Sequential: 0.80, Reuse: 0.10},

		// ---- HH: heavy traffic and large perfect-network speedup ----
		{Name: "MUMmerGPU", Abbr: "MUM", Class: "HH",
			Warps: 28, InstrsPerWarp: 220, MemFraction: 0.380, WriteFraction: 0.08,
			LinesPerMemInstr: 5, ActiveThreads: 24, WorkingSetKB: 98304, Sequential: 0.25, Reuse: 0.08},
		{Name: "LIBOR Monte Carlo", Abbr: "LIB", Class: "HH",
			Warps: 28, InstrsPerWarp: 240, MemFraction: 0.250, WriteFraction: 0.10,
			LinesPerMemInstr: 2, ActiveThreads: 32, WorkingSetKB: 65536, Sequential: 0.60, Reuse: 0.02},
		{Name: "Fast Walsh Transform", Abbr: "FWT", Class: "HH",
			Warps: 32, InstrsPerWarp: 240, MemFraction: 0.280, WriteFraction: 0.35,
			LinesPerMemInstr: 2, ActiveThreads: 32, WorkingSetKB: 65536, Sequential: 0.60, Reuse: 0.05},
		{Name: "Scalar Product", Abbr: "SCP", Class: "HH",
			Warps: 32, InstrsPerWarp: 240, MemFraction: 0.260, WriteFraction: 0.05,
			LinesPerMemInstr: 2, ActiveThreads: 32, WorkingSetKB: 131072, Sequential: 0.80, Reuse: 0.00},
		{Name: "Streamcluster", Abbr: "STC", Class: "HH",
			Warps: 28, InstrsPerWarp: 240, MemFraction: 0.235, WriteFraction: 0.15,
			LinesPerMemInstr: 2, ActiveThreads: 32, WorkingSetKB: 65536, Sequential: 0.70, Reuse: 0.05},
		{Name: "Kmeans", Abbr: "KM", Class: "HH",
			Warps: 28, InstrsPerWarp: 230, MemFraction: 0.300, WriteFraction: 0.20,
			LinesPerMemInstr: 3, ActiveThreads: 32, WorkingSetKB: 65536, Sequential: 0.55, Reuse: 0.08},
		{Name: "CFD Solver", Abbr: "CFD", Class: "HH",
			Warps: 24, InstrsPerWarp: 230, MemFraction: 0.420, WriteFraction: 0.25,
			LinesPerMemInstr: 3, ActiveThreads: 32, WorkingSetKB: 98304, Sequential: 0.60, Reuse: 0.05},
		{Name: "BFS Graph Traversal", Abbr: "BFS", Class: "HH",
			Warps: 24, InstrsPerWarp: 220, MemFraction: 0.400, WriteFraction: 0.15,
			LinesPerMemInstr: 6, ActiveThreads: 16, WorkingSetKB: 98304, Sequential: 0.20, Reuse: 0.10},
		{Name: "Parallel Reduction", Abbr: "RD", Class: "HH",
			Warps: 32, InstrsPerWarp: 240, MemFraction: 0.290, WriteFraction: 0.10,
			LinesPerMemInstr: 2, ActiveThreads: 32, WorkingSetKB: 131072, Sequential: 0.80, Reuse: 0.00},
	}
}

// ByAbbr returns the catalog profile with the given abbreviation.
func ByAbbr(abbr string) (Profile, error) {
	for _, p := range Catalog() {
		if p.Abbr == abbr {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q", abbr)
}
