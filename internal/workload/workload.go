// Package workload models the memory behaviour of the paper's 31 CUDA
// benchmarks (Table I) as parameterized synthetic kernels.
//
// The original evaluation ran compiled CUDA binaries on GPGPU-Sim; those
// binaries and the simulator's functional front end are out of scope here,
// and the NoC study only depends on the *timing-visible* behaviour of a
// kernel: how many warps run, how often they touch global memory, how well
// accesses coalesce, how much spatial/temporal locality the streams have,
// and the read/write mix. Each Profile captures exactly those parameters;
// the catalog in table1.go is calibrated so every benchmark falls in the
// LL/LH/HH class the paper reports (Fig 7) and the aggregate behaviours
// (perfect-network speedup, MC stall fractions, injection-rate imbalance)
// match the paper's shape.
package workload

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/xrand"
)

// Profile describes one benchmark's per-core kernel behaviour.
type Profile struct {
	Name  string
	Abbr  string
	Class string // paper-reported class: "LL", "LH" or "HH"

	Warps         int // resident warps per core (occupancy), <= 32
	InstrsPerWarp int // warp instructions each warp executes

	MemFraction      float64 // fraction of warp instructions touching global memory
	WriteFraction    float64 // fraction of memory instructions that are stores
	LinesPerMemInstr int     // coalesced cache-line requests per memory instruction (1..32)
	ActiveThreads    int     // average active scalar threads per warp (branch divergence), <= 32

	WorkingSetKB int     // global working set shared by all cores
	Sequential   float64 // probability a memory instruction continues its warp's stream
	Reuse        float64 // probability a memory instruction re-touches recent lines

	// CTAs groups a core's warps into thread blocks for barrier
	// synchronization (Table II allows up to 8 per core); 0 disables
	// CTA structure. BarrierEvery inserts a barrier instruction every N
	// warp instructions (0: no barriers). Barriers synchronize at warp
	// granularity within a CTA, the behaviour §V-A notes for LE and SS.
	CTAs         int
	BarrierEvery int
}

// Validate checks profile invariants.
func (p Profile) Validate() error {
	switch {
	case p.Warps <= 0 || p.Warps > 32:
		return fmt.Errorf("workload %s: Warps must be in 1..32, got %d", p.Abbr, p.Warps)
	case p.InstrsPerWarp <= 0:
		return fmt.Errorf("workload %s: InstrsPerWarp must be positive", p.Abbr)
	case p.MemFraction < 0 || p.MemFraction > 1:
		return fmt.Errorf("workload %s: MemFraction out of [0,1]", p.Abbr)
	case p.WriteFraction < 0 || p.WriteFraction > 1:
		return fmt.Errorf("workload %s: WriteFraction out of [0,1]", p.Abbr)
	case p.LinesPerMemInstr < 1 || p.LinesPerMemInstr > 32:
		return fmt.Errorf("workload %s: LinesPerMemInstr must be in 1..32", p.Abbr)
	case p.ActiveThreads < 1 || p.ActiveThreads > 32:
		return fmt.Errorf("workload %s: ActiveThreads must be in 1..32", p.Abbr)
	case p.WorkingSetKB <= 0:
		return fmt.Errorf("workload %s: WorkingSetKB must be positive", p.Abbr)
	case p.Sequential < 0 || p.Reuse < 0 || p.Sequential+p.Reuse > 1:
		return fmt.Errorf("workload %s: Sequential/Reuse must be non-negative with sum <= 1", p.Abbr)
	case p.CTAs < 0 || (p.CTAs > 0 && p.Warps%p.CTAs != 0):
		return fmt.Errorf("workload %s: CTAs must evenly divide Warps", p.Abbr)
	case p.BarrierEvery < 0 || (p.BarrierEvery > 0 && p.CTAs == 0):
		return fmt.Errorf("workload %s: barriers require CTA structure", p.Abbr)
	}
	return nil
}

// Instr is one warp instruction as seen by the timing model.
type Instr struct {
	Mem           bool
	Write         bool
	Barrier       bool           // CTA-wide synchronization point
	Lines         []addr.Address // cache-line base addresses (Mem only)
	ActiveThreads int            // scalar instructions this warp instruction retires
}

const lineBytes = 64

// historyLen is the per-warp window of recently touched lines used for
// temporal-reuse traffic.
const historyLen = 16

type warpGen struct {
	issued  int
	cursor  uint64 // next sequential line offset within the warp's partition
	history [historyLen]uint64
	histN   int
	histPos int
}

// Generator produces the instruction stream of one core running a profile.
// Streams are deterministic given (profile, coreID, numCores, seed).
//
// All cores share one address space, the way CTAs of one CUDA kernel share
// its arrays: streaming cores interleave chunks at fine granularity, so
// concurrently-progressing cores touch adjacent lines. That cross-core
// spatial locality is what lets the FR-FCFS memory controllers find DRAM
// row hits on coalesced kernels.
type Generator struct {
	prof     Profile
	rng      *xrand.Rand
	warps    []warpGen
	coreID   uint64
	numCores uint64
	wsLines  uint64 // working-set size in lines
	scratch  []addr.Address
}

// NewGenerator builds the stream generator for one of numCores cores.
func NewGenerator(p Profile, coreID, numCores int, seed uint64) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if numCores <= 0 || coreID < 0 || coreID >= numCores {
		return nil, fmt.Errorf("workload: core %d of %d out of range", coreID, numCores)
	}
	wsLines := uint64(p.WorkingSetKB) * 1024 / lineBytes
	g := &Generator{
		prof:     p,
		rng:      xrand.New(seed ^ (uint64(coreID)+1)*0x9e3779b97f4a7c15),
		warps:    make([]warpGen, p.Warps),
		coreID:   uint64(coreID),
		numCores: uint64(numCores),
		wsLines:  wsLines,
		scratch:  make([]addr.Address, 0, 32),
	}
	return g, nil
}

// MustNewGenerator is NewGenerator but panics on error.
func MustNewGenerator(p Profile, coreID, numCores int, seed uint64) *Generator {
	g, err := NewGenerator(p, coreID, numCores, seed)
	if err != nil {
		panic(err)
	}
	return g
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.prof }

// Done reports whether warp w has retired all of its instructions.
func (g *Generator) Done(w int) bool { return g.warps[w].issued >= g.prof.InstrsPerWarp }

// AllDone reports whether every warp has finished.
func (g *Generator) AllDone() bool {
	for w := range g.warps {
		if !g.Done(w) {
			return false
		}
	}
	return true
}

// Next produces the next instruction of warp w. ok is false when the warp
// has finished. The returned Lines slice is reused by the next call.
func (g *Generator) Next(w int) (ins Instr, ok bool) {
	if g.Done(w) {
		return Instr{}, false
	}
	wg := &g.warps[w]
	wg.issued++
	ins.ActiveThreads = g.prof.ActiveThreads
	if g.prof.BarrierEvery > 0 && wg.issued%g.prof.BarrierEvery == 0 && wg.issued < g.prof.InstrsPerWarp {
		ins.Barrier = true
		return ins, true
	}
	if !g.rng.Bool(g.prof.MemFraction) {
		return ins, true
	}
	ins.Mem = true
	ins.Write = g.rng.Bool(g.prof.WriteFraction)
	ins.Lines = g.genLines(w, wg)
	return ins, true
}

// genLines produces the coalesced line addresses of one memory instruction.
func (g *Generator) genLines(w int, wg *warpGen) []addr.Address {
	k := g.prof.LinesPerMemInstr
	lines := g.scratch[:0]
	mode := g.rng.Float64()
	switch {
	case mode < g.prof.Reuse && wg.histN > 0:
		// Temporal reuse: re-touch recently used lines.
		for i := 0; i < k; i++ {
			lines = append(lines, g.lineAddr(wg.history[g.rng.Intn(wg.histN)]))
		}
	case mode < g.prof.Reuse+g.prof.Sequential:
		// Streaming: every (core, warp) pair owns one slot of a globally
		// interleaved stream, the layout a coalesced BSP kernel produces.
		// Cores and warps progressing in lockstep touch adjacent chunks
		// concurrently, giving the memory controllers DRAM row locality.
		nw := uint64(len(g.warps))
		slot := (wg.cursor*g.numCores+g.coreID)*nw + uint64(w)
		base := slot * uint64(k)
		for i := 0; i < k; i++ {
			lines = append(lines, g.lineAddr(base+uint64(i)))
		}
		wg.cursor++
	default:
		// Scatter: uniform over the core's working set.
		for i := 0; i < k; i++ {
			lines = append(lines, g.lineAddr(uint64(g.rng.Intn(int(g.wsLines)))))
		}
	}
	for _, ln := range lines {
		g.remember(wg, uint64(ln)/lineBytes)
	}
	g.scratch = lines
	return lines
}

func (g *Generator) lineAddr(lineOff uint64) addr.Address {
	return addr.Address((lineOff % g.wsLines) * lineBytes)
}

func (g *Generator) remember(wg *warpGen, lineOff uint64) {
	wg.history[wg.histPos] = lineOff
	wg.histPos = (wg.histPos + 1) % historyLen
	if wg.histN < historyLen {
		wg.histN++
	}
}
