package timing

import (
	"testing"
	"testing/quick"
)

func TestNewSchedulerRejectsBadFrequencies(t *testing.T) {
	cases := []struct{ core, icnt, dram float64 }{
		{0, 602, 1107},
		{1296, -1, 1107},
		{1296, 602, 0},
	}
	for _, c := range cases {
		if _, err := NewScheduler(c.core, c.icnt, c.dram); err == nil {
			t.Errorf("NewScheduler(%v,%v,%v): want error, got nil", c.core, c.icnt, c.dram)
		}
	}
}

func TestSchedulerRelativeRates(t *testing.T) {
	// Over a long horizon the cycle counts must track the frequency ratios.
	s := MustNewScheduler(1296, 602, 1107)
	var buf []Domain
	for i := 0; i < 3_000_000; i++ {
		buf = s.Step(buf)
		if len(buf) == 0 {
			t.Fatal("Step returned no ticking domains")
		}
	}
	core := float64(s.Cycles(DomainCore))
	icnt := float64(s.Cycles(DomainInterconnect))
	dram := float64(s.Cycles(DomainDRAM))
	checkRatio(t, "core/icnt", core/icnt, 1296.0/602.0)
	checkRatio(t, "dram/icnt", dram/icnt, 1107.0/602.0)
}

func checkRatio(t *testing.T, name string, got, want float64) {
	t.Helper()
	if diff := got/want - 1; diff > 1e-3 || diff < -1e-3 {
		t.Errorf("%s ratio: got %v, want %v (diff %v)", name, got, want, diff)
	}
}

func TestSchedulerEqualFrequenciesTickTogether(t *testing.T) {
	s := MustNewScheduler(1000, 1000, 1000)
	var buf []Domain
	for i := 0; i < 100; i++ {
		buf = s.Step(buf)
		if len(buf) != 3 {
			t.Fatalf("step %d: want all 3 domains ticking together, got %v", i, buf)
		}
	}
	if s.Cycles(DomainCore) != 100 || s.Cycles(DomainDRAM) != 100 {
		t.Errorf("cycle counts: core=%d dram=%d, want 100 each", s.Cycles(DomainCore), s.Cycles(DomainDRAM))
	}
}

func TestSchedulerTimeMonotonic(t *testing.T) {
	s := MustNewScheduler(1296, 602, 1107)
	var buf []Domain
	prev := uint64(0)
	for i := 0; i < 10000; i++ {
		buf = s.Step(buf)
		if s.NowFs() <= prev {
			t.Fatalf("time not strictly increasing at step %d: %d -> %d", i, prev, s.NowFs())
		}
		prev = s.NowFs()
	}
}

func TestSchedulerDeterminism(t *testing.T) {
	run := func() []uint64 {
		s := MustNewScheduler(1296, 602, 1107)
		var buf []Domain
		var trace []uint64
		for i := 0; i < 5000; i++ {
			buf = s.Step(buf)
			var mask uint64
			for _, d := range buf {
				mask |= 1 << uint(d)
			}
			trace = append(trace, s.NowFs()<<3|mask)
		}
		return trace
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverged at step %d", i)
		}
	}
}

func TestSchedulerSkipToMatchesStepping(t *testing.T) {
	// One SkipTo to an arbitrary future edge must leave Cycles() and the
	// pending-edge schedule identical to stepping edge by edge up to (but
	// not including) that edge, and the credited counts must match the
	// per-domain tick counts stepping observed.
	for _, horizonSteps := range []int{1, 2, 3, 7, 100, 12345} {
		stepped := MustNewScheduler(1296, 602, 1107)
		var buf []Domain
		var ticked [NumDomains]uint64
		for i := 0; i < horizonSteps; i++ {
			buf = stepped.Step(buf)
			for _, d := range buf {
				ticked[d]++
			}
		}
		target := stepped.NextFs()

		skipped := MustNewScheduler(1296, 602, 1107)
		credited := skipped.SkipTo(target)

		if credited != ticked {
			t.Fatalf("horizon %d: credited %v, stepping ticked %v", horizonSteps, credited, ticked)
		}
		for d := DomainCore; d <= DomainDRAM; d++ {
			if skipped.Cycles(d) != stepped.Cycles(d) {
				t.Errorf("horizon %d: %s cycles: skip %d, step %d",
					horizonSteps, d, skipped.Cycles(d), stepped.Cycles(d))
			}
		}
		if skipped.NowFs() != stepped.NowFs() {
			t.Errorf("horizon %d: NowFs: skip %d, step %d", horizonSteps, skipped.NowFs(), stepped.NowFs())
		}
		if skipped.NextFs() != stepped.NextFs() {
			t.Errorf("horizon %d: NextFs: skip %d, step %d", horizonSteps, skipped.NextFs(), stepped.NextFs())
		}
	}
}

func TestSchedulerSkipToCoincidentEdges(t *testing.T) {
	// With equal frequencies every edge is coincident across all three
	// domains; a skip to edge N must credit N-1 edges to each domain and
	// leave edge N pending for Step.
	s := MustNewScheduler(1000, 1000, 1000)
	period := s.PeriodFs(DomainCore)
	credited := s.SkipTo(5 * period)
	for d := 0; d < NumDomains; d++ {
		if credited[d] != 4 {
			t.Fatalf("domain %d credited %d, want 4", d, credited[d])
		}
	}
	var buf []Domain
	buf = s.Step(buf)
	if len(buf) != 3 {
		t.Fatalf("edge after skip: want all 3 domains, got %v", buf)
	}
	if s.NowFs() != 5*period || s.Cycles(DomainCore) != 5 {
		t.Fatalf("after skip+step: nowFs=%d cycles=%d, want %d and 5", s.NowFs(), s.Cycles(DomainCore), 5*period)
	}
}

func TestSchedulerSkipToNoPendingEdgeIsNoop(t *testing.T) {
	// A target at or before the earliest pending edge credits nothing.
	s := MustNewScheduler(1296, 602, 1107)
	for _, target := range []uint64{0, 1, s.NextFs()} {
		credited := s.SkipTo(target)
		if credited != [NumDomains]uint64{} {
			t.Fatalf("SkipTo(%d) credited %v, want nothing", target, credited)
		}
	}
	if s.NowFs() != 0 {
		t.Fatalf("no-op skip moved time to %d", s.NowFs())
	}
}

func TestSchedulerTruncatedPeriodDrift(t *testing.T) {
	// Periods are truncated to integer femtoseconds (1296 MHz → 771604 fs,
	// exact value 771604.938…), so domain edges drift slightly fast
	// relative to ideal real time. This is a property of the femtosecond
	// representation, not of SkipTo: bulk advance reproduces exactly the
	// same truncated edge times as stepping. This test documents the
	// drift bound: after N edges the accumulated error is N × frac(period)
	// < N fs, i.e. under one nanosecond per million cycles.
	s := MustNewScheduler(1296, 602, 1107)
	const n = 1_000_000
	s.SkipTo(s.EdgeFs(DomainCore, n+1))
	if got := s.Cycles(DomainCore); got < n {
		t.Fatalf("core cycles after skip: %d, want >= %d", got, n)
	}
	idealFs := float64(n) * femtosPerSecond / (1296e6)
	truncFs := float64(n * s.PeriodFs(DomainCore))
	drift := idealFs - truncFs
	if drift < 0 || drift > n {
		t.Fatalf("truncation drift %v fs outside [0, %d) fs after %d cycles", drift, n, n)
	}
}

func TestSchedulerPropertySkipEquivalence(t *testing.T) {
	// Property: for any step count, stepping N edges then reading NextFs
	// gives a target where SkipTo on a fresh scheduler reproduces the
	// exact same state.
	f := func(steps uint16) bool {
		n := int(steps%3000) + 1
		a := MustNewScheduler(1296, 602, 1107)
		var buf []Domain
		for i := 0; i < n; i++ {
			buf = a.Step(buf)
		}
		b := MustNewScheduler(1296, 602, 1107)
		b.SkipTo(a.NextFs())
		return *a == *b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSchedulerPropertyCycleCountMatchesPeriod(t *testing.T) {
	// Property: after any number of steps, cycles(d)*period(d) is within one
	// period of current time for every domain.
	f := func(steps uint16) bool {
		s := MustNewScheduler(1296, 602, 1107)
		var buf []Domain
		n := int(steps%2000) + 1
		for i := 0; i < n; i++ {
			buf = s.Step(buf)
		}
		for d := DomainCore; d <= DomainDRAM; d++ {
			elapsed := s.Cycles(d) * s.PeriodFs(d)
			if elapsed > s.NowFs()+s.PeriodFs(d) || elapsed+s.PeriodFs(d) < s.NowFs() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
