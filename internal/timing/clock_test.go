package timing

import (
	"testing"
	"testing/quick"
)

func TestNewSchedulerRejectsBadFrequencies(t *testing.T) {
	cases := []struct{ core, icnt, dram float64 }{
		{0, 602, 1107},
		{1296, -1, 1107},
		{1296, 602, 0},
	}
	for _, c := range cases {
		if _, err := NewScheduler(c.core, c.icnt, c.dram); err == nil {
			t.Errorf("NewScheduler(%v,%v,%v): want error, got nil", c.core, c.icnt, c.dram)
		}
	}
}

func TestSchedulerRelativeRates(t *testing.T) {
	// Over a long horizon the cycle counts must track the frequency ratios.
	s := MustNewScheduler(1296, 602, 1107)
	var buf []Domain
	for i := 0; i < 3_000_000; i++ {
		buf = s.Step(buf)
		if len(buf) == 0 {
			t.Fatal("Step returned no ticking domains")
		}
	}
	core := float64(s.Cycles(DomainCore))
	icnt := float64(s.Cycles(DomainInterconnect))
	dram := float64(s.Cycles(DomainDRAM))
	checkRatio(t, "core/icnt", core/icnt, 1296.0/602.0)
	checkRatio(t, "dram/icnt", dram/icnt, 1107.0/602.0)
}

func checkRatio(t *testing.T, name string, got, want float64) {
	t.Helper()
	if diff := got/want - 1; diff > 1e-3 || diff < -1e-3 {
		t.Errorf("%s ratio: got %v, want %v (diff %v)", name, got, want, diff)
	}
}

func TestSchedulerEqualFrequenciesTickTogether(t *testing.T) {
	s := MustNewScheduler(1000, 1000, 1000)
	var buf []Domain
	for i := 0; i < 100; i++ {
		buf = s.Step(buf)
		if len(buf) != 3 {
			t.Fatalf("step %d: want all 3 domains ticking together, got %v", i, buf)
		}
	}
	if s.Cycles(DomainCore) != 100 || s.Cycles(DomainDRAM) != 100 {
		t.Errorf("cycle counts: core=%d dram=%d, want 100 each", s.Cycles(DomainCore), s.Cycles(DomainDRAM))
	}
}

func TestSchedulerTimeMonotonic(t *testing.T) {
	s := MustNewScheduler(1296, 602, 1107)
	var buf []Domain
	prev := uint64(0)
	for i := 0; i < 10000; i++ {
		buf = s.Step(buf)
		if s.NowFs() <= prev {
			t.Fatalf("time not strictly increasing at step %d: %d -> %d", i, prev, s.NowFs())
		}
		prev = s.NowFs()
	}
}

func TestSchedulerDeterminism(t *testing.T) {
	run := func() []uint64 {
		s := MustNewScheduler(1296, 602, 1107)
		var buf []Domain
		var trace []uint64
		for i := 0; i < 5000; i++ {
			buf = s.Step(buf)
			var mask uint64
			for _, d := range buf {
				mask |= 1 << uint(d)
			}
			trace = append(trace, s.NowFs()<<3|mask)
		}
		return trace
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverged at step %d", i)
		}
	}
}

func TestSchedulerPropertyCycleCountMatchesPeriod(t *testing.T) {
	// Property: after any number of steps, cycles(d)*period(d) is within one
	// period of current time for every domain.
	f := func(steps uint16) bool {
		s := MustNewScheduler(1296, 602, 1107)
		var buf []Domain
		n := int(steps%2000) + 1
		for i := 0; i < n; i++ {
			buf = s.Step(buf)
		}
		for d := DomainCore; d <= DomainDRAM; d++ {
			elapsed := s.Cycles(d) * s.PeriodFs(d)
			if elapsed > s.NowFs()+s.PeriodFs(d) || elapsed+s.PeriodFs(d) < s.NowFs() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
