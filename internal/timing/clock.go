// Package timing provides multi-rate clock domains and a deterministic
// scheduler that interleaves them, in the style of GPGPU-Sim's clock-domain
// crossing: on every step, every domain whose next edge is earliest (within
// a small epsilon expressed in integer femtoseconds) ticks once.
//
// The accelerator modeled in this repository uses three domains (Table II of
// the paper): compute cores at 1296 MHz, interconnect and L2 at 602 MHz, and
// GDDR3 DRAM at 1107 MHz.
package timing

import "fmt"

// Domain identifies one clock domain in a Scheduler.
type Domain int

// Clock domains used by the closed-loop simulator.
const (
	DomainCore Domain = iota
	DomainInterconnect
	DomainDRAM
	numDomains
)

// String returns the conventional short name of the domain.
func (d Domain) String() string {
	switch d {
	case DomainCore:
		return "core"
	case DomainInterconnect:
		return "icnt"
	case DomainDRAM:
		return "dram"
	}
	return fmt.Sprintf("domain(%d)", int(d))
}

// femtosPerSecond is the time base. Integer femtoseconds keep the scheduler
// exactly deterministic: there is no floating-point drift between domains.
const femtosPerSecond = 1e15

// domainState tracks one domain's period and next edge.
type domainState struct {
	periodFs uint64 // clock period in femtoseconds
	nextFs   uint64 // absolute time of the next rising edge
	cycles   uint64 // edges elapsed so far
}

// Scheduler interleaves a fixed set of clock domains deterministically.
// The zero value is not usable; construct with NewScheduler.
type Scheduler struct {
	domains [numDomains]domainState
	nowFs   uint64
}

// NewScheduler builds a scheduler with the three standard domains running at
// the given frequencies in MHz. Frequencies must be positive.
func NewScheduler(coreMHz, icntMHz, dramMHz float64) (*Scheduler, error) {
	s := &Scheduler{}
	freqs := [numDomains]float64{coreMHz, icntMHz, dramMHz}
	for d, f := range freqs {
		if f <= 0 {
			return nil, fmt.Errorf("timing: %s frequency must be positive, got %v MHz", Domain(d), f)
		}
		period := uint64(femtosPerSecond / (f * 1e6))
		if period == 0 {
			return nil, fmt.Errorf("timing: %s frequency %v MHz too high to represent", Domain(d), f)
		}
		s.domains[d] = domainState{periodFs: period, nextFs: period}
	}
	return s, nil
}

// MustNewScheduler is NewScheduler but panics on error; intended for the
// standard Table II frequencies which are known to be valid.
func MustNewScheduler(coreMHz, icntMHz, dramMHz float64) *Scheduler {
	s, err := NewScheduler(coreMHz, icntMHz, dramMHz)
	if err != nil {
		panic(err)
	}
	return s
}

// Step advances simulated time to the next clock edge and reports which
// domains tick on that edge. Multiple domains tick together when their edges
// coincide exactly. The returned slice is valid until the next call to Step.
func (s *Scheduler) Step(buf []Domain) []Domain {
	next := s.domains[0].nextFs
	for d := 1; d < int(numDomains); d++ {
		if s.domains[d].nextFs < next {
			next = s.domains[d].nextFs
		}
	}
	s.nowFs = next
	buf = buf[:0]
	for d := 0; d < int(numDomains); d++ {
		st := &s.domains[d]
		if st.nextFs == next {
			st.cycles++
			st.nextFs += st.periodFs
			buf = append(buf, Domain(d))
		}
	}
	return buf
}

// NowFs returns the current simulated time in femtoseconds.
func (s *Scheduler) NowFs() uint64 { return s.nowFs }

// Cycles returns the number of rising edges domain d has seen.
func (s *Scheduler) Cycles(d Domain) uint64 { return s.domains[d].cycles }

// PeriodFs returns the period of domain d in femtoseconds.
func (s *Scheduler) PeriodFs(d Domain) uint64 { return s.domains[d].periodFs }
