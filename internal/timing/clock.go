// Package timing provides multi-rate clock domains and a deterministic
// scheduler that interleaves them, in the style of GPGPU-Sim's clock-domain
// crossing: on every step, every domain whose next edge is earliest (within
// a small epsilon expressed in integer femtoseconds) ticks once.
//
// The accelerator modeled in this repository uses three domains (Table II of
// the paper): compute cores at 1296 MHz, interconnect and L2 at 602 MHz, and
// GDDR3 DRAM at 1107 MHz.
package timing

import (
	"fmt"
	"math/bits"
)

// Domain identifies one clock domain in a Scheduler.
type Domain int

// Clock domains used by the closed-loop simulator.
const (
	DomainCore Domain = iota
	DomainInterconnect
	DomainDRAM
	numDomains
)

// String returns the conventional short name of the domain.
func (d Domain) String() string {
	switch d {
	case DomainCore:
		return "core"
	case DomainInterconnect:
		return "icnt"
	case DomainDRAM:
		return "dram"
	}
	return fmt.Sprintf("domain(%d)", int(d))
}

// femtosPerSecond is the time base. Integer femtoseconds keep the scheduler
// exactly deterministic: there is no floating-point drift between domains.
const femtosPerSecond = 1e15

// domainState tracks one domain's period and next edge.
type domainState struct {
	periodFs uint64 // clock period in femtoseconds
	nextFs   uint64 // absolute time of the next rising edge
	cycles   uint64 // edges elapsed so far
}

// Scheduler interleaves a fixed set of clock domains deterministically.
// The zero value is not usable; construct with NewScheduler.
type Scheduler struct {
	domains [numDomains]domainState
	nowFs   uint64
}

// NewScheduler builds a scheduler with the three standard domains running at
// the given frequencies in MHz. Frequencies must be positive.
func NewScheduler(coreMHz, icntMHz, dramMHz float64) (*Scheduler, error) {
	s := &Scheduler{}
	freqs := [numDomains]float64{coreMHz, icntMHz, dramMHz}
	for d, f := range freqs {
		if f <= 0 {
			return nil, fmt.Errorf("timing: %s frequency must be positive, got %v MHz", Domain(d), f)
		}
		period := uint64(femtosPerSecond / (f * 1e6))
		if period == 0 {
			return nil, fmt.Errorf("timing: %s frequency %v MHz too high to represent", Domain(d), f)
		}
		s.domains[d] = domainState{periodFs: period, nextFs: period}
	}
	return s, nil
}

// MustNewScheduler is NewScheduler but panics on error; intended for the
// standard Table II frequencies which are known to be valid.
func MustNewScheduler(coreMHz, icntMHz, dramMHz float64) *Scheduler {
	s, err := NewScheduler(coreMHz, icntMHz, dramMHz)
	if err != nil {
		panic(err)
	}
	return s
}

// Step advances simulated time to the next clock edge and reports which
// domains tick on that edge. Multiple domains tick together when their edges
// coincide exactly. The returned slice is valid until the next call to Step.
func (s *Scheduler) Step(buf []Domain) []Domain {
	next := s.domains[0].nextFs
	for d := 1; d < int(numDomains); d++ {
		if s.domains[d].nextFs < next {
			next = s.domains[d].nextFs
		}
	}
	s.nowFs = next
	buf = buf[:0]
	for d := 0; d < int(numDomains); d++ {
		st := &s.domains[d]
		if st.nextFs == next {
			st.cycles++
			st.nextFs += st.periodFs
			buf = append(buf, Domain(d))
		}
	}
	return buf
}

// NumDomains is the number of clock domains a Scheduler interleaves,
// exported so callers can size per-domain credit arrays.
const NumDomains = int(numDomains)

// NextFs returns the absolute time of the earliest pending clock edge —
// the edge the next call to Step would execute.
func (s *Scheduler) NextFs() uint64 {
	next := s.domains[0].nextFs
	for d := 1; d < int(numDomains); d++ {
		if s.domains[d].nextFs < next {
			next = s.domains[d].nextFs
		}
	}
	return next
}

// EdgeFs returns the absolute time of the edge that brings domain d's
// cycle counter to the given value (edge k fires at k×period). The result
// saturates at the maximum representable time instead of wrapping, so a
// +∞-style cycle bound stays an upper bound.
func (s *Scheduler) EdgeFs(d Domain, cycle uint64) uint64 {
	return satMulAdd(cycle, s.domains[d].periodFs, 0)
}

// HorizonFs returns the absolute time of domain d's next edge after
// idleTicks further edges — i.e. the edge a component whose next work is
// idleTicks ticks away will execute on. idleTicks of zero names the very
// next edge. Saturates instead of wrapping.
func (s *Scheduler) HorizonFs(d Domain, idleTicks uint64) uint64 {
	return satMulAdd(idleTicks, s.domains[d].periodFs, s.domains[d].nextFs)
}

// SkipTo bulk-advances every domain past all of its edges strictly before
// targetFs, crediting cycle counters exactly as the equivalent sequence of
// Step calls would, and returns the per-domain credited edge counts. Time
// advances to the latest credited edge (it never moves backwards). The
// edge at targetFs itself is left pending, so the next Step executes it
// normally — callers pick targetFs as the earliest edge on which any
// component has real work, and the skipped window is provably empty.
func (s *Scheduler) SkipTo(targetFs uint64) [NumDomains]uint64 {
	var credited [NumDomains]uint64
	for d := 0; d < int(numDomains); d++ {
		st := &s.domains[d]
		if st.nextFs >= targetFs {
			continue
		}
		var n, last uint64
		if span := targetFs - st.nextFs; span <= st.periodFs<<2 {
			// Small window (a handful of edges, the common case when a
			// caller strides one fast-domain cycle at a time): count edges
			// additively instead of paying a 64-bit division.
			last = st.nextFs
			n = 1
			for e := last + st.periodFs; e < targetFs; e += st.periodFs {
				last = e
				n++
			}
		} else {
			n = (targetFs-1-st.nextFs)/st.periodFs + 1
			last = st.nextFs + (n-1)*st.periodFs
		}
		st.cycles += n
		st.nextFs += n * st.periodFs
		credited[d] = n
		if last > s.nowFs {
			s.nowFs = last
		}
	}
	return credited
}

// satMulAdd returns a×b+c, saturating at the maximum uint64 instead of
// wrapping.
func satMulAdd(a, b, c uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	if hi != 0 {
		return ^uint64(0)
	}
	sum, carry := bits.Add64(lo, c, 0)
	if carry != 0 {
		return ^uint64(0)
	}
	return sum
}

// NowFs returns the current simulated time in femtoseconds.
func (s *Scheduler) NowFs() uint64 { return s.nowFs }

// Cycles returns the number of rising edges domain d has seen.
func (s *Scheduler) Cycles(d Domain) uint64 { return s.domains[d].cycles }

// PeriodFs returns the period of domain d in femtoseconds.
func (s *Scheduler) PeriodFs(d Domain) uint64 { return s.domains[d].periodFs }
