// Package mem implements the memory-controller nodes of the baseline
// architecture (Fig 5): each MC tile ejects request packets from the NoC,
// services them in a shared L2 bank, schedules misses into a GDDR3 channel
// (FR-FCFS), and injects 64-byte read-reply packets back into the network.
//
// The reply-injection path is the bottleneck the paper's Fig 11 measures:
// a memory controller is "stalled" in a cycle when it holds a ready reply
// that the reply network refuses to accept.
package mem

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/noc"
)

// Request is the payload of a memory request packet (stored in Packet.Meta).
type Request struct {
	Line  addr.Address
	Write bool
}

// ReplyBytes is the size of a read-reply packet (§III-D).
const ReplyBytes = 64

// ReadRequestBytes and WriteRequestBytes are the request packet sizes.
const (
	ReadRequestBytes  = 8
	WriteRequestBytes = 64
)

// Config parameterizes an MC node.
type Config struct {
	L2        cache.Config
	L2Latency uint64 // L2 hit latency in interconnect cycles
	L2MSHRs   int
	DRAM      dram.Config
}

// DefaultConfig returns the Table II memory node: a 128 KB 8-way L2 bank
// and the paper's GDDR3 timing.
func DefaultConfig() Config {
	return Config{
		L2:        cache.Config{SizeBytes: 128 * 1024, LineBytes: 64, Ways: 8},
		L2Latency: 16,
		L2MSHRs:   64,
		DRAM:      dram.DefaultConfig(),
	}
}

// Stats aggregates MC activity.
type Stats struct {
	Requests        uint64
	Writes          uint64
	RepliesInjected uint64
	StallCycles     uint64 // cycles a ready reply was refused by the network
	Cycles          uint64 // interconnect cycles observed
	ActiveCycles    uint64 // cycles with any work present
}

// StallFraction returns stalled cycles over all cycles (Fig 11's metric).
func (s Stats) StallFraction() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.StallCycles) / float64(s.Cycles)
}

type timedReply struct {
	due       uint64
	line      addr.Address
	requester noc.NodeID
}

// MCNode is one memory-controller tile.
type MCNode struct {
	cfg    Config
	node   noc.NodeID
	l2     *cache.Cache
	l2mshr *cache.MSHR
	ctl    *dram.Controller

	inQ    []*noc.Packet
	hitQ   []timedReply // L2 hits waiting out the bank latency
	replyQ []timedReply // ready to inject
	writeQ []addr.Address

	stats    Stats
	progress uint64 // monotonic work counter for the system stall watchdog
}

// New builds an MC node at the given mesh tile.
func New(cfg Config, node noc.NodeID, mapper *addr.Mapper) (*MCNode, error) {
	l2, err := cache.New(cfg.L2)
	if err != nil {
		return nil, err
	}
	if cfg.L2MSHRs <= 0 {
		return nil, fmt.Errorf("mem: L2MSHRs must be positive")
	}
	ctl, err := dram.NewController(cfg.DRAM, mapper)
	if err != nil {
		return nil, err
	}
	return &MCNode{
		cfg:    cfg,
		node:   node,
		l2:     l2,
		l2mshr: cache.MustNewMSHR(cfg.L2MSHRs, 0),
		ctl:    ctl,
	}, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config, node noc.NodeID, mapper *addr.Mapper) *MCNode {
	m, err := New(cfg, node, mapper)
	if err != nil {
		panic(err)
	}
	return m
}

// Node returns the MC's mesh tile.
func (m *MCNode) Node() noc.NodeID { return m.node }

// AcceptRequest takes ownership of an ejected request packet.
func (m *MCNode) AcceptRequest(pkt *noc.Packet) {
	if _, ok := pkt.Meta.(Request); !ok {
		panic(fmt.Sprintf("mem: packet %d has no Request payload", pkt.ID))
	}
	m.inQ = append(m.inQ, pkt)
	m.progress++
}

// TickIcnt advances the MC by one interconnect cycle: one L2 bank access,
// hit-latency progression, and reply injection into net.
func (m *MCNode) TickIcnt(cycle uint64, net noc.Network) {
	m.stats.Cycles++
	if m.Busy() {
		m.stats.ActiveCycles++
	}
	m.serviceOne(cycle)
	m.promoteHits(cycle)
	m.injectReplies(cycle, net)
}

// serviceOne processes the oldest ejected request through the L2 bank.
func (m *MCNode) serviceOne(cycle uint64) {
	if len(m.inQ) == 0 {
		return
	}
	pkt := m.inQ[0]
	req := pkt.Meta.(Request)
	if req.Write {
		m.stats.Writes++
		// Write-backs carry a full line: write-validate without fetching.
		if !m.l2.Access(req.Line, true) {
			if victim, wb := m.l2.Fill(req.Line, true); wb {
				m.writeQ = append(m.writeQ, victim)
			}
		}
		m.popInQ()
		return
	}
	m.stats.Requests++
	if m.l2.Access(req.Line, false) {
		m.hitQ = append(m.hitQ, timedReply{due: cycle + m.cfg.L2Latency, line: req.Line, requester: pkt.Src})
		m.popInQ()
		return
	}
	// L2 miss: merge or fetch from DRAM.
	if m.l2mshr.Pending(req.Line) {
		if m.l2mshr.Allocate(req.Line, cache.Waiter(pkt.Src)) == cache.AllocStallFull {
			m.stats.Requests--
			return // retry next cycle
		}
	} else {
		if m.l2mshr.Full() || !m.ctl.Enqueue(dram.Request{Addr: req.Line, Meta: req.Line}) {
			m.stats.Requests--
			return // DRAM queue backpressure; retry next cycle
		}
		m.l2mshr.Allocate(req.Line, cache.Waiter(pkt.Src))
	}
	m.popInQ()
}

func (m *MCNode) popInQ() {
	m.inQ = m.inQ[:copy(m.inQ, m.inQ[1:])]
	m.progress++
}

// promoteHits moves matured L2 hits into the reply queue.
func (m *MCNode) promoteHits(cycle uint64) {
	n := 0
	for _, h := range m.hitQ {
		if h.due <= cycle {
			m.replyQ = append(m.replyQ, h)
			n++
		} else {
			break
		}
	}
	if n > 0 {
		m.hitQ = m.hitQ[:copy(m.hitQ, m.hitQ[n:])]
	}
}

// injectReplies pushes ready replies into the network until it refuses.
func (m *MCNode) injectReplies(cycle uint64, net noc.Network) {
	for len(m.replyQ) > 0 {
		r := m.replyQ[0]
		pkt := &noc.Packet{
			Src:   m.node,
			Dst:   r.requester,
			Class: noc.ClassReply,
			Bytes: ReplyBytes,
			Meta:  r.line,
		}
		if !net.TryInject(pkt) {
			m.stats.StallCycles++
			return
		}
		m.stats.RepliesInjected++
		m.progress++
		m.replyQ = m.replyQ[:copy(m.replyQ, m.replyQ[1:])]
	}
}

// TickDRAM advances the GDDR3 channel one DRAM clock: completed reads fill
// the L2 and produce replies; pending write-backs drain into the channel.
func (m *MCNode) TickDRAM() {
	for len(m.writeQ) > 0 && m.ctl.Enqueue(dram.Request{Addr: m.writeQ[0], IsWrite: true}) {
		m.writeQ = m.writeQ[:copy(m.writeQ, m.writeQ[1:])]
		m.progress++
	}
	for _, done := range m.ctl.Tick() {
		m.progress++
		if done.IsWrite {
			continue
		}
		line := done.Meta.(addr.Address)
		if victim, wb := m.l2.Fill(line, false); wb {
			m.writeQ = append(m.writeQ, victim)
		}
		for _, w := range m.l2mshr.Fill(line) {
			m.replyQ = append(m.replyQ, timedReply{line: line, requester: noc.NodeID(w)})
		}
	}
}

// Busy reports whether the MC holds or awaits any work.
func (m *MCNode) Busy() bool {
	return len(m.inQ) > 0 || len(m.hitQ) > 0 || len(m.replyQ) > 0 ||
		len(m.writeQ) > 0 || m.ctl.Busy() || m.l2mshr.InFlight() > 0
}

// Progress returns a monotonic counter of work the MC has completed
// (requests accepted and consumed, replies injected, DRAM commands
// finished). The system stall watchdog compares it across cycles.
func (m *MCNode) Progress() uint64 { return m.progress }

// Stats returns the MC counters.
func (m *MCNode) Stats() Stats { return m.stats }

// L2Stats exposes the L2 bank's cache counters.
func (m *MCNode) L2Stats() cache.Stats { return m.l2.Stats() }

// DRAMStats exposes the memory channel's counters.
func (m *MCNode) DRAMStats() dram.Stats { return m.ctl.Stats() }
