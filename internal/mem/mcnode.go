// Package mem implements the memory-controller nodes of the baseline
// architecture (Fig 5): each MC tile ejects request packets from the NoC,
// services them in a shared L2 bank, schedules misses into a GDDR3 channel
// (FR-FCFS), and injects 64-byte read-reply packets back into the network.
//
// The reply-injection path is the bottleneck the paper's Fig 11 measures:
// a memory controller is "stalled" in a cycle when it holds a ready reply
// that the reply network refuses to accept.
package mem

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/noc"
	"repro/internal/ring"
)

// Request describes one memory request. The hot path carries its fields in
// the typed Packet.Line/Packet.Write slots (boxing a struct into Packet.Meta
// allocates per packet); the type remains for harnesses that prefer Meta.
type Request struct {
	Line  addr.Address
	Write bool
}

// inReq is an accepted request waiting for L2 bank service. Requests are
// copied out of their packets at acceptance so the packet object can be
// recycled immediately.
type inReq struct {
	line  addr.Address
	write bool
	src   noc.NodeID
}

// ReplyBytes is the size of a read-reply packet (§III-D).
const ReplyBytes = 64

// ReadRequestBytes and WriteRequestBytes are the request packet sizes.
const (
	ReadRequestBytes  = 8
	WriteRequestBytes = 64
)

// Config parameterizes an MC node.
type Config struct {
	L2        cache.Config
	L2Latency uint64 // L2 hit latency in interconnect cycles
	L2MSHRs   int
	DRAM      dram.Config
}

// DefaultConfig returns the Table II memory node: a 128 KB 8-way L2 bank
// and the paper's GDDR3 timing.
func DefaultConfig() Config {
	return Config{
		L2:        cache.Config{SizeBytes: 128 * 1024, LineBytes: 64, Ways: 8},
		L2Latency: 16,
		L2MSHRs:   64,
		DRAM:      dram.DefaultConfig(),
	}
}

// Stats aggregates MC activity.
type Stats struct {
	Requests        uint64
	Writes          uint64
	RepliesInjected uint64
	StallCycles     uint64 // cycles a ready reply was refused by the network
	Cycles          uint64 // interconnect cycles observed
	ActiveCycles    uint64 // cycles with any work present
}

// StallFraction returns stalled cycles over all cycles (Fig 11's metric).
func (s Stats) StallFraction() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.StallCycles) / float64(s.Cycles)
}

type timedReply struct {
	due       uint64
	line      addr.Address
	requester noc.NodeID
}

// MCNode is one memory-controller tile.
type MCNode struct {
	cfg    Config
	node   noc.NodeID
	l2     *cache.Cache
	l2mshr *cache.MSHR
	ctl    *dram.Controller

	inQ    ring.Ring[inReq]
	hitQ   ring.Ring[timedReply]   // L2 hits waiting out the bank latency
	replyQ ring.Ring[timedReply]   // ready to inject
	writeQ ring.Ring[addr.Address] // victim lines awaiting DRAM write-back

	// pool recycles packet objects for injected replies; nil falls back to
	// plain allocation (standalone MC nodes in tests).
	pool *noc.PacketPool

	stats    Stats
	progress uint64 // monotonic work counter for the system stall watchdog
}

// New builds an MC node at the given mesh tile.
func New(cfg Config, node noc.NodeID, mapper *addr.Mapper) (*MCNode, error) {
	l2, err := cache.New(cfg.L2)
	if err != nil {
		return nil, err
	}
	if cfg.L2MSHRs <= 0 {
		return nil, fmt.Errorf("mem: L2MSHRs must be positive")
	}
	ctl, err := dram.NewController(cfg.DRAM, mapper)
	if err != nil {
		return nil, err
	}
	return &MCNode{
		cfg:    cfg,
		node:   node,
		l2:     l2,
		l2mshr: cache.MustNewMSHR(cfg.L2MSHRs, 0),
		ctl:    ctl,
		inQ:    ring.New[inReq](16, 0),
		hitQ:   ring.New[timedReply](16, 0),
		replyQ: ring.New[timedReply](16, 0),
		writeQ: ring.New[addr.Address](8, 0),
	}, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config, node noc.NodeID, mapper *addr.Mapper) *MCNode {
	m, err := New(cfg, node, mapper)
	if err != nil {
		panic(err)
	}
	return m
}

// Node returns the MC's mesh tile.
func (m *MCNode) Node() noc.NodeID { return m.node }

// SetPool installs a packet pool for reply injection. The system harness
// shares one pool across the whole simulation so the steady-state cycle
// loop allocates no packets.
func (m *MCNode) SetPool(pool *noc.PacketPool) { m.pool = pool }

// AcceptRequest consumes an ejected request packet, copying its payload
// (Packet.Line, Packet.Write, Packet.Src) into the service queue. The
// packet is NOT retained: the caller may recycle it immediately.
func (m *MCNode) AcceptRequest(pkt *noc.Packet) {
	if pkt.Class != noc.ClassRequest {
		panic(fmt.Sprintf("mem: packet %d is not a request", pkt.ID))
	}
	m.inQ.Push(inReq{line: addr.Address(pkt.Line), write: pkt.Write, src: pkt.Src})
	m.progress++
}

// TickIcnt advances the MC by one interconnect cycle: one L2 bank access,
// hit-latency progression, and reply injection into net.
func (m *MCNode) TickIcnt(cycle uint64, net noc.Network) {
	m.stats.Cycles++
	if m.Busy() {
		m.stats.ActiveCycles++
	}
	m.serviceOne(cycle)
	m.promoteHits(cycle)
	m.injectReplies(cycle, net)
}

// serviceOne processes the oldest ejected request through the L2 bank.
func (m *MCNode) serviceOne(cycle uint64) {
	if m.inQ.Len() == 0 {
		return
	}
	req := *m.inQ.Front()
	if req.write {
		m.stats.Writes++
		// Write-backs carry a full line: write-validate without fetching.
		if !m.l2.Access(req.line, true) {
			if victim, wb := m.l2.Fill(req.line, true); wb {
				m.writeQ.Push(victim)
			}
		}
		m.popInQ()
		return
	}
	m.stats.Requests++
	if m.l2.Access(req.line, false) {
		m.hitQ.Push(timedReply{due: cycle + m.cfg.L2Latency, line: req.line, requester: req.src})
		m.popInQ()
		return
	}
	// L2 miss: merge or fetch from DRAM.
	if m.l2mshr.Pending(req.line) {
		if m.l2mshr.Allocate(req.line, cache.Waiter(req.src)) == cache.AllocStallFull {
			m.stats.Requests--
			return // retry next cycle
		}
	} else {
		if m.l2mshr.Full() || !m.ctl.Enqueue(dram.Request{Addr: req.line}) {
			m.stats.Requests--
			return // DRAM queue backpressure; retry next cycle
		}
		m.l2mshr.Allocate(req.line, cache.Waiter(req.src))
	}
	m.popInQ()
}

func (m *MCNode) popInQ() {
	m.inQ.Pop()
	m.progress++
}

// promoteHits moves matured L2 hits into the reply queue (due times are
// monotonic, so popping stops at the first immature entry).
func (m *MCNode) promoteHits(cycle uint64) {
	for m.hitQ.Len() > 0 && m.hitQ.Front().due <= cycle {
		m.replyQ.Push(m.hitQ.Pop())
	}
}

// injectReplies pushes ready replies into the network until it refuses.
func (m *MCNode) injectReplies(cycle uint64, net noc.Network) {
	for m.replyQ.Len() > 0 {
		r := *m.replyQ.Front()
		pkt := m.getPacket()
		pkt.Src = m.node
		pkt.Dst = r.requester
		pkt.Class = noc.ClassReply
		pkt.Bytes = ReplyBytes
		pkt.Line = uint64(r.line)
		if !net.TryInject(pkt) {
			m.putPacket(pkt)
			m.stats.StallCycles++
			return
		}
		m.stats.RepliesInjected++
		m.progress++
		m.replyQ.Pop()
	}
}

// getPacket draws a zeroed packet from the pool, or allocates without one.
func (m *MCNode) getPacket() *noc.Packet {
	if m.pool != nil {
		return m.pool.Get()
	}
	return &noc.Packet{}
}

// putPacket returns a packet the network refused.
func (m *MCNode) putPacket(p *noc.Packet) {
	if m.pool != nil {
		m.pool.Put(p)
	}
}

// TickDRAM advances the GDDR3 channel one DRAM clock: completed reads fill
// the L2 and produce replies; pending write-backs drain into the channel.
func (m *MCNode) TickDRAM() {
	for m.writeQ.Len() > 0 && m.ctl.Enqueue(dram.Request{Addr: *m.writeQ.Front(), IsWrite: true}) {
		m.writeQ.Pop()
		m.progress++
	}
	for _, done := range m.ctl.Tick() {
		m.progress++
		if done.IsWrite {
			continue
		}
		line := done.Addr // reads carry the line address; no Meta boxing
		if victim, wb := m.l2.Fill(line, false); wb {
			m.writeQ.Push(victim)
		}
		for _, w := range m.l2mshr.Fill(line) {
			m.replyQ.Push(timedReply{line: line, requester: noc.NodeID(w)})
		}
	}
}

// NeverCycle is the horizon sentinel for "no future work without an
// external event".
const NeverCycle = ^uint64(0)

// NextIcntWorkCycle returns a conservative bound on the next TickIcnt
// cycle argument at which the MC does interconnect-side work, given that
// the next TickIcnt call would carry the argument now. Queued requests or
// ready replies mean work immediately; a maturing L2 hit works when its
// latency expires; an MC waiting only on DRAM (or idle) never works on
// the interconnect clock until an external event, and its per-tick
// cycle/active counters are credited by SkipIcnt.
func (m *MCNode) NextIcntWorkCycle(now uint64) uint64 {
	if m.inQ.Len() > 0 || m.replyQ.Len() > 0 {
		return now
	}
	if m.hitQ.Len() > 0 {
		if d := m.hitQ.Front().due; d > now {
			return d
		}
		return now
	}
	return NeverCycle
}

// SkipIcnt credits k idle interconnect ticks: cycle and active-cycle
// counters advance exactly as k TickIcnt calls would (Busy() is invariant
// over a window with no work on any clock domain).
func (m *MCNode) SkipIcnt(k uint64) {
	m.stats.Cycles += k
	if m.Busy() {
		m.stats.ActiveCycles += k
	}
}

// NextDRAMWorkCycle returns the controller-cycle count at which the next
// TickDRAM does real work: drains a pending write-back into a free queue
// slot, issues a DRAM transaction, or completes a burst.
func (m *MCNode) NextDRAMWorkCycle() uint64 {
	next := m.ctl.NextWorkCycle()
	if m.writeQ.Len() > 0 && m.ctl.CanAccept() {
		if w := m.ctl.Now() + 1; w < next {
			next = w
		}
	}
	return next
}

// SkipDRAM credits k idle DRAM ticks through to the channel controller.
func (m *MCNode) SkipDRAM(k uint64) { m.ctl.SkipAhead(k) }

// Busy reports whether the MC holds or awaits any work.
func (m *MCNode) Busy() bool {
	return m.inQ.Len() > 0 || m.hitQ.Len() > 0 || m.replyQ.Len() > 0 ||
		m.writeQ.Len() > 0 || m.ctl.Busy() || m.l2mshr.InFlight() > 0
}

// Progress returns a monotonic counter of work the MC has completed
// (requests accepted and consumed, replies injected, DRAM commands
// finished). The system stall watchdog compares it across cycles.
func (m *MCNode) Progress() uint64 { return m.progress }

// Stats returns the MC counters.
func (m *MCNode) Stats() Stats { return m.stats }

// L2Stats exposes the L2 bank's cache counters.
func (m *MCNode) L2Stats() cache.Stats { return m.l2.Stats() }

// DRAMStats exposes the memory channel's counters.
func (m *MCNode) DRAMStats() dram.Stats { return m.ctl.Stats() }
