package mem

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/noc"
)

func newTestMC(t *testing.T) *MCNode {
	t.Helper()
	m, err := New(DefaultConfig(), 1, addr.MustNewMapper(addr.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func reqPacket(line addr.Address, write bool, src noc.NodeID) *noc.Packet {
	bytes := ReadRequestBytes
	if write {
		bytes = WriteRequestBytes
	}
	return &noc.Packet{Src: src, Dst: 1, Class: noc.ClassRequest, Bytes: bytes,
		Line: uint64(line), Write: write}
}

// run drives the MC with a perfect network for n icnt cycles, ticking DRAM
// at roughly the paper's clock ratio, and returns delivered replies.
func run(t *testing.T, m *MCNode, net noc.Network, cycles int) []*noc.Packet {
	t.Helper()
	var replies []*noc.Packet
	dramAcc := 0.0
	for c := uint64(1); c <= uint64(cycles); c++ {
		m.TickIcnt(c, net)
		dramAcc += 1107.0 / 602.0
		for ; dramAcc >= 1; dramAcc-- {
			m.TickDRAM()
		}
		net.Tick()
		for node := 0; node < 36; node++ {
			replies = append(replies, net.Delivered(noc.NodeID(node))...)
		}
	}
	return replies
}

func TestValidation(t *testing.T) {
	mapper := addr.MustNewMapper(addr.Config{})
	cfg := DefaultConfig()
	cfg.L2MSHRs = 0
	if _, err := New(cfg, 1, mapper); err == nil {
		t.Error("zero L2 MSHRs accepted")
	}
	cfg = DefaultConfig()
	cfg.L2.Ways = 0
	if _, err := New(cfg, 1, mapper); err == nil {
		t.Error("bad L2 config accepted")
	}
}

func TestAcceptRequiresRequestClass(t *testing.T) {
	m := newTestMC(t)
	defer func() {
		if recover() == nil {
			t.Error("non-request packet accepted")
		}
	}()
	m.AcceptRequest(&noc.Packet{Class: noc.ClassReply})
}

func TestReadMissProducesReply(t *testing.T) {
	m := newTestMC(t)
	net := noc.MustNewIdeal(36, 16, 0)
	m.AcceptRequest(reqPacket(0x40*8, false, 7))
	replies := run(t, m, net, 500)
	if len(replies) != 1 {
		t.Fatalf("got %d replies, want 1", len(replies))
	}
	r := replies[0]
	if r.Dst != 7 || r.Class != noc.ClassReply || r.Bytes != ReplyBytes {
		t.Errorf("reply = %+v", r)
	}
	if m.Busy() {
		t.Error("MC still busy after completion")
	}
}

func TestL2HitFasterThanMiss(t *testing.T) {
	m := newTestMC(t)
	net := noc.MustNewIdeal(36, 16, 0)
	line := addr.Address(0x80 * 8)
	m.AcceptRequest(reqPacket(line, false, 3))
	run(t, m, net, 500) // warm the L2
	missCycles := m.Stats().Cycles

	// Second access to the same line: L2 hit.
	m.AcceptRequest(reqPacket(line, false, 3))
	start := m.Stats().Cycles
	net2 := noc.MustNewIdeal(36, 16, 0)
	for c := start + 1; ; c++ {
		m.TickIcnt(c, net2)
		net2.Tick()
		if len(net2.Delivered(3)) > 0 {
			hitLatency := c - start
			if hitLatency > m.cfg.L2Latency+5 {
				t.Errorf("L2 hit took %d cycles, want ~%d", hitLatency, m.cfg.L2Latency)
			}
			break
		}
		if c > start+1000 {
			t.Fatal("hit reply never produced")
		}
	}
	_ = missCycles
	if m.L2Stats().Hits == 0 {
		t.Error("no L2 hit recorded")
	}
}

func TestL2MSHRMerging(t *testing.T) {
	m := newTestMC(t)
	net := noc.MustNewIdeal(36, 16, 0)
	line := addr.Address(0x1000 * 8)
	// Two cores request the same line before DRAM returns: one DRAM read,
	// two replies.
	m.AcceptRequest(reqPacket(line, false, 2))
	m.AcceptRequest(reqPacket(line, false, 5))
	replies := run(t, m, net, 500)
	if len(replies) != 2 {
		t.Fatalf("got %d replies, want 2", len(replies))
	}
	dsts := map[noc.NodeID]bool{replies[0].Dst: true, replies[1].Dst: true}
	if !dsts[2] || !dsts[5] {
		t.Errorf("reply destinations %v, want {2,5}", dsts)
	}
	if got := m.DRAMStats().Reads; got != 1 {
		t.Errorf("DRAM reads = %d, want 1 (merged)", got)
	}
}

func TestWriteNoReply(t *testing.T) {
	m := newTestMC(t)
	net := noc.MustNewIdeal(36, 16, 0)
	m.AcceptRequest(reqPacket(0x40*8, true, 4))
	replies := run(t, m, net, 300)
	if len(replies) != 0 {
		t.Errorf("write produced %d replies, want 0", len(replies))
	}
	if m.Stats().Writes != 1 {
		t.Errorf("writes = %d, want 1", m.Stats().Writes)
	}
}

func TestL2EvictionWritesToDRAM(t *testing.T) {
	m := newTestMC(t)
	net := noc.MustNewIdeal(36, 16, 0)
	// Write enough distinct lines to overflow the 128 KB L2 (2048 lines).
	// All addresses map to MC-local space; stride keeps them in this MC.
	for i := 0; i < 4096; i++ {
		m.AcceptRequest(reqPacket(addr.Address(i*64*8), true, 2))
	}
	run(t, m, net, 30000)
	if m.Busy() {
		t.Fatal("MC did not drain")
	}
	if m.DRAMStats().Writes == 0 {
		t.Error("L2 overflow produced no DRAM writes")
	}
}

// blockedNet refuses all injections, for stall accounting tests.
type blockedNet struct{ noc.Network }

func (b blockedNet) TryInject(*noc.Packet) bool                  { return false }
func (b blockedNet) CanInject(noc.NodeID, noc.TrafficClass) bool { return false }

func TestStallAccounting(t *testing.T) {
	m := newTestMC(t)
	inner := noc.MustNewIdeal(36, 16, 0)
	m.AcceptRequest(reqPacket(0x40*8, false, 7))
	// Service with a network that refuses replies.
	blocked := blockedNet{inner}
	dramAcc := 0.0
	for c := uint64(1); c <= 500; c++ {
		m.TickIcnt(c, blocked)
		dramAcc += 1107.0 / 602.0
		for ; dramAcc >= 1; dramAcc-- {
			m.TickDRAM()
		}
	}
	st := m.Stats()
	if st.StallCycles == 0 {
		t.Error("no stall cycles recorded against a blocked network")
	}
	if st.StallFraction() <= 0 || st.StallFraction() > 1 {
		t.Errorf("stall fraction = %v", st.StallFraction())
	}
	if st.RepliesInjected != 0 {
		t.Error("replies injected into a blocked network")
	}
}

func TestManyRequestsAllServed(t *testing.T) {
	m := newTestMC(t)
	net := noc.MustNewIdeal(36, 16, 0)
	const n = 300
	for i := 0; i < n; i++ {
		m.AcceptRequest(reqPacket(addr.Address(i*64*8), false, noc.NodeID(i%28)))
	}
	replies := run(t, m, net, 50000)
	if len(replies) != n {
		t.Fatalf("served %d/%d requests", len(replies), n)
	}
	if m.Busy() {
		t.Error("MC busy after serving everything")
	}
}
