package fault

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Rate: -0.1},
		{Rate: 1.5},
		{Rate: 0.1, RetxTimeout: 0},
		{MaxRetries: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config %+v accepted", i, c)
		}
	}
}

func TestEnabledAndMonitored(t *testing.T) {
	c := DefaultConfig()
	if c.Enabled() {
		t.Error("default config must not inject faults")
	}
	if !c.Monitored() {
		t.Error("default config must run the watchdog")
	}
	c = c.WithRate(0.01, 7)
	if !c.Enabled() || c.Seed != 7 {
		t.Error("WithRate did not enable injection")
	}
	c.WatchdogCycles = 0
	if c.Monitored() {
		t.Error("WatchdogCycles=0 must disable monitoring")
	}
}

func TestInjectorDisabledIsNil(t *testing.T) {
	if inj := NewInjector(DefaultConfig()); inj != nil {
		t.Fatal("rate-0 config must yield a nil injector")
	}
	var inj *Injector
	if inj.CorruptFlit() || inj.LoseCredit() || inj.StickVC() {
		t.Error("nil injector fired a fault")
	}
}

func TestInjectorDeterministicAndCalibrated(t *testing.T) {
	cfg := DefaultConfig().WithRate(0.1, 42)
	a, b := NewInjector(cfg), NewInjector(cfg)
	hitsA, hitsB := 0, 0
	const n = 100_000
	for i := 0; i < n; i++ {
		fa, fb := a.CorruptFlit(), b.CorruptFlit()
		if fa != fb {
			t.Fatalf("draw %d diverged between equal-seeded injectors", i)
		}
		if fa {
			hitsA++
		}
		if fb {
			hitsB++
		}
	}
	got := float64(hitsA) / n
	if got < 0.09 || got > 0.11 {
		t.Errorf("corruption rate %.4f far from configured 0.1", got)
	}
	// Credit loss runs at a quarter of the master rate.
	credit := 0
	for i := 0; i < n; i++ {
		if a.LoseCredit() {
			credit++
		}
	}
	if r := float64(credit) / n; r < 0.015 || r > 0.035 {
		t.Errorf("credit-loss rate %.4f far from 0.025", r)
	}
}

func TestRetxDeadlineBackoff(t *testing.T) {
	c := DefaultConfig()
	c.RetxTimeout = 100
	c.RetxBackoffMax = 4
	want := []uint64{100, 200, 400, 400, 400} // capped at 4x
	for i, w := range want {
		if got := c.RetxDeadline(0, i+1); got != w {
			t.Errorf("attempt %d: deadline %d, want %d", i+1, got, w)
		}
	}
}

func TestWatchdogFiresOnlyOnStuckInFlight(t *testing.T) {
	w := NewWatchdog(10)
	moved := uint64(0)
	// Healthy: movement every cycle.
	for c := uint64(0); c < 50; c++ {
		moved++
		if w.Observe(c, moved, 3) {
			t.Fatalf("watchdog fired at cycle %d despite movement", c)
		}
	}
	// Idle: no movement, nothing in flight.
	for c := uint64(50); c < 100; c++ {
		if w.Observe(c, moved, 0) {
			t.Fatalf("watchdog fired at idle cycle %d", c)
		}
	}
	// Wedged: no movement with work in flight.
	fired := uint64(0)
	for c := uint64(100); c < 200; c++ {
		if w.Observe(c, moved, 3) {
			fired = c
			break
		}
	}
	if fired == 0 {
		t.Fatal("watchdog never fired on a wedged network")
	}
	if fired < 109 || fired > 111 {
		t.Errorf("watchdog fired at cycle %d, want ~110", fired)
	}
}

func TestWatchdogDisabled(t *testing.T) {
	w := NewWatchdog(0)
	for c := uint64(0); c < 1000; c++ {
		if w.Observe(c, 0, 5) {
			t.Fatal("disabled watchdog fired")
		}
	}
	var nilW *Watchdog
	if nilW.Observe(1, 0, 5) {
		t.Fatal("nil watchdog fired")
	}
}

func TestHangErrorWrapping(t *testing.T) {
	diag := &Diagnostic{Kind: "deadlock", Cycle: 123, InFlight: 4,
		VCs: []VCDump{{Node: 3, Port: 1, VC: 0, Occupancy: 8, State: "active", PktID: 9, PktAge: 5000}}}
	err := Hang(ErrDeadlock, diag)
	if !errors.Is(err, ErrDeadlock) {
		t.Error("errors.Is failed to match ErrDeadlock")
	}
	if errors.Is(err, ErrLivelock) {
		t.Error("matched the wrong condition")
	}
	if !IsHang(err) || !IsHang(fmt.Errorf("outer: %w", err)) {
		t.Error("IsHang missed a wrapped HangError")
	}
	if IsHang(errors.New("plain")) {
		t.Error("IsHang matched a plain error")
	}
	if diag.Empty() {
		t.Error("populated diagnostic reported Empty")
	}
	out := err.Error() + "\n" + diag.String()
	for _, want := range []string{"deadlock", "cycle 123", "router 3", "pkt 9"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered diagnostic missing %q:\n%s", want, out)
		}
	}
}

func TestCheckConservation(t *testing.T) {
	if err := CheckConservation(100, 40, 60); err != nil {
		t.Errorf("balanced books flagged: %v", err)
	}
	err := CheckConservation(100, 40, 59)
	if err == nil {
		t.Fatal("missing flit not flagged")
	}
	if !errors.Is(err, ErrInvariant) {
		t.Error("conservation error is not ErrInvariant")
	}
}
