// Package fault is the simulator's fault-injection and resilience toolkit.
// It supplies three things to the rest of the stack:
//
//   - a deterministic fault model: seeded, schedulable transient faults on
//     links (flit corruption), router input VCs (stuck buffer control) and
//     credit channels (lost credit, recovered by a timeout resync), drawn
//     from an Injector that is independent of the traffic RNG so enabling
//     faults never perturbs a run's packet streams;
//   - a health Watchdog: a cycle-driven monitor that detects deadlock (no
//     flit movement for a window of cycles while packets are in flight) and
//     that, together with per-packet hop budgets and flit-conservation
//     audits, turns silent hangs into typed errors carrying a structured
//     Diagnostic dump instead of a panic;
//   - the typed error vocabulary (ErrDeadlock, ErrLivelock, ErrCycleCap,
//     ErrInvariant, ErrStall) that lets the experiment harness record a
//     degraded-but-reported result per benchmark rather than aborting.
//
// The network's recovery mechanism (end-to-end sequence tracking with
// timeout retransmission at the injecting network interfaces) lives in
// internal/noc; this package holds the policy knobs and the shared
// machinery that must not depend on the network implementation.
package fault

import (
	"errors"
	"fmt"

	"repro/internal/xrand"
)

// Typed failure conditions surfaced by the watchdog and the run harness.
// They are wrapped in a *HangError carrying the diagnostic dump; match with
// errors.Is.
var (
	// ErrDeadlock: packets are in flight but nothing has moved for the
	// watchdog window.
	ErrDeadlock = errors.New("fault: network deadlock detected")
	// ErrLivelock: a packet exceeded its hop budget without ejecting.
	ErrLivelock = errors.New("fault: packet exceeded hop budget (livelock)")
	// ErrCycleCap: a closed-loop run hit its safety cycle cap.
	ErrCycleCap = errors.New("fault: simulation hit the cycle cap")
	// ErrInvariant: a conservation audit failed (flits created or lost).
	ErrInvariant = errors.New("fault: flit conservation violated")
	// ErrStall: the whole system (cores, MCs and network together) made no
	// forward progress for the watchdog window.
	ErrStall = errors.New("fault: system-wide stall detected")
	// ErrTimeout: the run exceeded its wall-clock deadline (the harness's
	// per-run context timed out). Unlike ErrCycleCap this is a property of
	// the host machine, not the simulated system, so it is the one verdict
	// a retry can legitimately clear.
	ErrTimeout = errors.New("fault: run exceeded its wall-clock deadline")
	// ErrCanceled: the run was abandoned because the whole sweep was
	// cancelled (SIGINT/SIGTERM or a parent context). Never retried and
	// never checkpointed.
	ErrCanceled = errors.New("fault: run canceled")
)

// Config parameterizes fault injection and health monitoring for one run.
// The zero value disables injection; DefaultConfig enables only the
// watchdog.
type Config struct {
	// Rate is the master fault probability. It applies per flit-delivery
	// for link corruption; credit loss and stuck-VC events are derived from
	// it (Rate/4 per credit and Rate per cycle respectively). 0 disables
	// injection entirely: no fault RNG is created and no draws happen, so a
	// zero-rate run is bit-identical to one without the subsystem.
	Rate float64
	// Seed seeds the fault injector's private RNG stream.
	Seed uint64

	// StuckCycles is how long a stuck-VC fault freezes an input VC's switch
	// allocation.
	StuckCycles uint64
	// CreditResyncCycles models the credit-resync protocol: a lost credit
	// is recovered (redelivered upstream) after this many cycles.
	CreditResyncCycles uint64

	// RetxTimeout is the end-to-end retransmission timeout in network
	// cycles: a transfer not acknowledged (delivered) within the timeout is
	// re-injected at the source network interface.
	RetxTimeout uint64
	// RetxBackoffMax caps the exponential backoff multiplier applied to
	// RetxTimeout on successive retries (1, 2, 4, ... up to this value).
	RetxBackoffMax uint64
	// MaxRetries bounds re-injections per transfer; 0 means unlimited
	// (transient faults guarantee eventual delivery). When the bound is hit
	// the transfer is dropped and counted as lost.
	MaxRetries int

	// WatchdogCycles is the no-movement window after which the watchdog
	// declares deadlock; 0 disables the watchdog, the hop budget and the
	// conservation audit.
	WatchdogCycles uint64
	// HopBudget is the livelock bound in switch traversals per packet;
	// 0 derives a generous bound from the mesh diagonal.
	HopBudget int
	// AuditCycles is the period of the flit-conservation audit; 0 derives
	// a default from WatchdogCycles.
	AuditCycles uint64
}

// DefaultConfig returns the default policy: injection off, watchdog on with
// a window far beyond any legitimate stall, timeout retransmission with
// exponential backoff and unlimited retries.
func DefaultConfig() Config {
	return Config{
		Rate:               0,
		Seed:               1,
		StuckCycles:        64,
		CreditResyncCycles: 512,
		RetxTimeout:        4096,
		RetxBackoffMax:     8,
		MaxRetries:         0,
		WatchdogCycles:     50_000,
		HopBudget:          0,
		AuditCycles:        0,
	}
}

// Enabled reports whether fault injection is active.
func (c Config) Enabled() bool { return c.Rate > 0 }

// Monitored reports whether the health watchdog is active.
func (c Config) Monitored() bool { return c.WatchdogCycles > 0 }

// WithRate returns the config with the master fault rate (and seed) set.
func (c Config) WithRate(rate float64, seed uint64) Config {
	c.Rate = rate
	c.Seed = seed
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Rate < 0 || c.Rate > 1 {
		return fmt.Errorf("fault: rate %v outside [0,1]", c.Rate)
	}
	if c.Enabled() && c.RetxTimeout == 0 {
		return fmt.Errorf("fault: injection needs a positive RetxTimeout")
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("fault: MaxRetries must be >= 0")
	}
	return nil
}

// RetxDeadline returns the cycle a transfer's next retransmission fires,
// given the attempt count so far (1 = the original injection). Backoff is
// exponential in the retry count, capped at RetxBackoffMax.
func (c Config) RetxDeadline(now uint64, attempts int) uint64 {
	mult := uint64(1)
	for i := 1; i < attempts; i++ {
		if mult >= c.RetxBackoffMax && c.RetxBackoffMax > 0 {
			mult = c.RetxBackoffMax
			break
		}
		mult *= 2
	}
	if c.RetxBackoffMax > 0 && mult > c.RetxBackoffMax {
		mult = c.RetxBackoffMax
	}
	return now + c.RetxTimeout*mult
}

// Injector draws fault events from a private deterministic stream. All
// methods are cheap; callers must not invoke them when the corresponding
// rate is zero if they need bit-identical no-fault behaviour (Config.Rate 0
// yields a nil-safe injector that never fires and never draws).
type Injector struct {
	rng        *xrand.Rand
	flitRate   float64
	creditRate float64
	vcRate     float64
}

// NewInjector builds an injector for cfg, or nil when injection is off.
func NewInjector(cfg Config) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	return &Injector{
		rng:        xrand.New(cfg.Seed ^ 0x666175_6c74), // "fault", decorrelated from traffic seeds
		flitRate:   cfg.Rate,
		creditRate: cfg.Rate / 4,
		vcRate:     cfg.Rate,
	}
}

// CorruptFlit reports whether the current flit delivery is corrupted.
func (i *Injector) CorruptFlit() bool {
	if i == nil {
		return false
	}
	return i.rng.Bool(i.flitRate)
}

// LoseCredit reports whether the current credit transfer is lost (to be
// recovered by the resync timeout).
func (i *Injector) LoseCredit() bool {
	if i == nil {
		return false
	}
	return i.rng.Bool(i.creditRate)
}

// StickVC reports whether a stuck-VC fault strikes this cycle.
func (i *Injector) StickVC() bool {
	if i == nil {
		return false
	}
	return i.rng.Bool(i.vcRate)
}

// Pick returns a uniform int in [0, n) from the fault stream (used to place
// stuck-VC faults).
func (i *Injector) Pick(n int) int { return i.rng.Intn(n) }
