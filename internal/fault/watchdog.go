package fault

import (
	"fmt"
	"strings"
)

// Watchdog detects deadlock from a movement counter: if work is in flight
// but the counter has not advanced for Window cycles, the network (or
// system) is wedged. The caller feeds it once per cycle; the watchdog keeps
// no reference to the monitored component, so the same type serves the NoC
// (flit movement) and the closed-loop system (instruction/memory progress).
type Watchdog struct {
	Window uint64

	lastMove  uint64 // cycle the movement counter last advanced
	lastCount uint64
	primed    bool
}

// NewWatchdog returns a watchdog with the given no-movement window;
// window 0 disables it (Observe always reports healthy).
func NewWatchdog(window uint64) *Watchdog { return &Watchdog{Window: window} }

// Observe records one cycle. moved is a monotonic movement counter (any
// unit: flit events, retired instructions); inFlight is the amount of work
// that should eventually cause movement. It returns true when the
// no-movement window is exceeded while work is in flight.
func (w *Watchdog) Observe(cycle, moved uint64, inFlight int) bool {
	if w == nil || w.Window == 0 {
		return false
	}
	if !w.primed || moved != w.lastCount {
		w.lastCount = moved
		w.lastMove = cycle
		w.primed = true
		return false
	}
	if inFlight == 0 {
		w.lastMove = cycle // idle is not deadlock
		return false
	}
	return cycle-w.lastMove >= w.Window
}

// LastMovement returns the cycle of the last observed movement.
func (w *Watchdog) LastMovement() uint64 { return w.lastMove }

// Synced reports whether the watchdog has already recorded the given
// movement-counter value: a further Observe with the same count will not
// reset the no-movement window. Idle-horizon skipping uses this to decide
// whether LastMovement()+Window bounds the next possible trip cycle.
func (w *Watchdog) Synced(moved uint64) bool {
	return w != nil && w.primed && w.lastCount == moved
}

// VCDump is one occupied virtual channel in a diagnostic snapshot.
type VCDump struct {
	Node      int    // router (mesh tile) id
	Port      int    // input port index (0-3 directions, then terminals)
	VC        int    // virtual channel index
	Occupancy int    // buffered flits
	State     string // idle / vc-alloc / active
	PktID     uint64 // packet at the buffer head
	PktAge    uint64 // cycles since that packet was offered
	Hops      int    // switch traversals the head packet has made
	Blocked   string // why the head cannot advance (no credits, ...)
}

// Diagnostic is the structured dump emitted instead of a panic when the
// watchdog (or an audit) trips.
type Diagnostic struct {
	Kind      string // "deadlock", "livelock", "cycle-cap", "stall", "invariant"
	Cycle     uint64 // cycle the condition was declared
	InFlight  int    // packets in flight (queued, in-network, awaiting retx)
	LastMove  uint64 // last cycle anything moved
	OldestPkt uint64 // age of the oldest in-flight packet, cycles
	VCs       []VCDump
	Notes     []string // free-form component summaries (blocked ports, queue depths)
}

// Empty reports whether the diagnostic carries no detail.
func (d *Diagnostic) Empty() bool {
	return d == nil || (len(d.VCs) == 0 && len(d.Notes) == 0)
}

// String renders the dump in a compact, grep-friendly form.
func (d *Diagnostic) String() string {
	if d == nil {
		return "(no diagnostic)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s at cycle %d: %d in flight, last movement at cycle %d, oldest packet %d cycles old\n",
		d.Kind, d.Cycle, d.InFlight, d.LastMove, d.OldestPkt)
	for _, v := range d.VCs {
		fmt.Fprintf(&b, "  router %d port %d vc %d: %d flits, %s, head pkt %d (age %d, %d hops)",
			v.Node, v.Port, v.VC, v.Occupancy, v.State, v.PktID, v.PktAge, v.Hops)
		if v.Blocked != "" {
			fmt.Fprintf(&b, " blocked: %s", v.Blocked)
		}
		b.WriteByte('\n')
	}
	for _, n := range d.Notes {
		fmt.Fprintf(&b, "  %s\n", n)
	}
	return b.String()
}

// HangError wraps a typed failure condition with its diagnostic dump. Use
// errors.Is against ErrDeadlock / ErrLivelock / ErrCycleCap / ErrInvariant /
// ErrStall to classify it.
type HangError struct {
	Err  error
	Diag *Diagnostic
}

// Error summarizes the condition; the full dump is in Diag.
func (e *HangError) Error() string {
	if e.Diag == nil {
		return e.Err.Error()
	}
	return fmt.Sprintf("%v (cycle %d, %d in flight)", e.Err, e.Diag.Cycle, e.Diag.InFlight)
}

// Unwrap exposes the typed condition to errors.Is.
func (e *HangError) Unwrap() error { return e.Err }

// Hang wraps cond and diag into a HangError.
func Hang(cond error, diag *Diagnostic) *HangError { return &HangError{Err: cond, Diag: diag} }

// IsHang reports whether err is one of the degraded-run conditions a
// harness should record as DNF rather than treat as a configuration error.
func IsHang(err error) bool {
	var he *HangError
	return AsHang(err, &he)
}

// AsHang extracts the *HangError from err's chain.
func AsHang(err error, out **HangError) bool {
	for err != nil {
		if he, ok := err.(*HangError); ok {
			*out = he
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// CheckConservation verifies the flit-conservation invariant
//
//	injected == inNetwork + ejected
//
// (with the end-to-end fault model, corrupted flits still traverse and
// eject before their packet is discarded, so no flits vanish mid-network).
// It returns an ErrInvariant-wrapping error describing the imbalance.
func CheckConservation(injected, inNetwork, ejected uint64) error {
	if injected == inNetwork+ejected {
		return nil
	}
	return fmt.Errorf("%w: injected %d != in-network %d + ejected %d (delta %d)",
		ErrInvariant, injected, inNetwork, ejected,
		int64(injected)-int64(inNetwork+ejected))
}
