// Package explore is the design-space exploration engine: it enumerates a
// configurable grid over the axes the paper co-explores — topology, MC
// placement, VC count, buffer depth, channel width, routing algorithm and
// channel slicing — and drives the candidates through successive-halving
// rungs toward a Pareto frontier of throughput-effectiveness (IPC against
// chip area). Every simulation goes through a runner.Pool via the
// lane-aware sweep planner, so seed replicas coalesce into lane batches and
// an interrupted exploration resumes from the pool's checkpoint journal.
package explore

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/area"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/workload"
)

// Grid spans the design space. Every combination of the axes is a
// candidate; combinations the simulator rejects (VC plans that do not
// divide across class/phase sets, slicing a single-flit network,
// checkerboard routing without checkerboard placement) are filtered out
// during enumeration, not at run time.
type Grid struct {
	// Topologies lists backend substrates: "mesh", "ring", "basejump".
	Topologies []string
	// Placements lists MC placements for the mesh: "tb" (top-bottom
	// rows) or "cp" (checkerboard-staggered). Non-mesh backends keep
	// their natural placement.
	Placements []string
	// Routings lists mesh routing algorithms: "dor" or "cr"
	// (checkerboard routing, which requires "cp" placement and
	// half-routers). Non-mesh backends always route DOR.
	Routings []string
	// VCCounts lists virtual-channel counts per physical network.
	VCCounts []int
	// BufDepths lists per-VC buffer depths in flits.
	BufDepths []int
	// FlitBytes lists channel widths. The basejump backend ignores this
	// axis: its single-flit contract fixes the channel to the widest
	// packet.
	FlitBytes []int
	// Double adds the channel-sliced dedicated double network (§IV-C)
	// as an axis: false keeps the single network, true slices it into
	// two half-width class-dedicated networks.
	Double []bool
	// MCInjPorts lists injection-port counts at MC routers (the 2P axis).
	MCInjPorts []int
}

// DefaultGrid spans the paper's evaluation space plus the two non-mesh
// backends: 3 topologies, both MC placements, both routing algorithms,
// 2/4 VCs, 4/8-flit buffers, the paper's 16-byte baseline and 32-byte
// doubled channels, single and double networks, 1 or 2 MC injection ports.
// After validity filtering this enumerates on the order of a hundred
// candidates — the successive-halving schedule is what keeps running all
// of them tractable.
func DefaultGrid() Grid {
	return Grid{
		Topologies: []string{"mesh", "ring", "basejump"},
		Placements: []string{"tb", "cp"},
		Routings:   []string{"dor", "cr"},
		VCCounts:   []int{2, 4},
		BufDepths:  []int{4, 8},
		FlitBytes:  []int{16, 32},
		Double:     []bool{false, true},
		MCInjPorts: []int{1, 2},
	}
}

// PaperPointName is the canonical candidate name of the paper's combined
// throughput-effective design: checkerboard placement + routing, dedicated
// double network at 16-byte (pre-slice) channels with 2 VCs per slice, and
// 2 MC injection ports. The validation check asserts this point is
// recovered on the frontier.
const PaperPointName = "x-mesh-cp-cr-vc2-bd8-fb16-p2-dbl"

// Candidate is one enumerated design point: the axis values, the canonical
// name that keys every run of the point, and its area under the analytic
// model (the denominator of throughput-effectiveness, identical for every
// workload).
type Candidate struct {
	Name string

	Topology  string
	Placement string
	Routing   string
	VCs       int
	BufDepth  int
	FlitB     int
	Double    bool
	InjPorts  int

	NoCArea  float64 // network overhead, mm²
	ChipArea float64 // compute + network, mm²
}

// Build instantiates the candidate for one workload. The returned config
// carries the candidate's canonical Name, so every run of this design point
// shares cache/journal identity across rungs only when the kernel length
// also matches (runner.Key includes InstrsPerWarp — each rung's budget is
// its own key).
func (c Candidate) Build(p workload.Profile) core.Config {
	cfg := core.Baseline(p)
	cfg.Noc.NumVCs = c.VCs
	cfg.Noc.BufDepth = c.BufDepth
	cfg.Noc.MCInjPorts = c.InjPorts
	switch c.Topology {
	case "ring":
		cfg.Noc.Topology = noc.BackendRing
		cfg.Noc.RouterStages = 2
		cfg.Noc.HalfRouterStages = 2
		cfg.Noc.FlitBytes = c.FlitB
	case "basejump":
		cfg.Noc.Topology = noc.BackendBaseJump
		cfg.Noc.RouterStages = 2
		cfg.Noc.HalfRouterStages = 2
		cfg.Noc.FlitBytes = c.FlitB // pinned to the single-flit width by enumeration
	default: // mesh
		cfg.Noc.FlitBytes = c.FlitB
		if c.Placement == "cp" {
			cfg.Noc.MCs = noc.CheckerboardPlacement(cfg.Noc.Width, cfg.Noc.Height, len(cfg.Noc.MCs))
		}
		if c.Routing == "cr" {
			cfg.Noc.Checkerboard = true
			cfg.Noc.Routing = noc.RoutingCheckerboard
		}
	}
	if c.Double {
		cfg.Net = core.NetDouble
	}
	cfg.Name = c.Name
	return cfg
}

// name derives the canonical candidate name from the axes. It doubles as
// the runner cache identity prefix, so it must be injective over the grid.
func (c Candidate) name() string {
	var b strings.Builder
	fmt.Fprintf(&b, "x-%s", c.Topology)
	if c.Topology == "mesh" {
		fmt.Fprintf(&b, "-%s-%s", c.Placement, c.Routing)
	}
	fmt.Fprintf(&b, "-vc%d-bd%d-fb%d-p%d", c.VCs, c.BufDepth, c.FlitB, c.InjPorts)
	if c.Double {
		b.WriteString("-dbl")
	}
	return b.String()
}

// singleFlitWidth is the basejump backend's fixed channel width: the widest
// packet must ride in one flit (mirrors core.Config.WithTopology).
func singleFlitWidth() int {
	w := mem.ReplyBytes
	if mem.WriteRequestBytes > w {
		w = mem.WriteRequestBytes
	}
	return w
}

// Candidates enumerates the grid, drops invalid combinations, names and
// prices the rest, and returns them sorted by name. Validity is decided by
// actually constructing the system (core.NewSystem) on a minimal workload,
// so the filter can never drift from the simulator's own rules.
func (g Grid) Candidates() ([]Candidate, error) {
	probe, err := workload.ByAbbr("MUM")
	if err != nil {
		return nil, err
	}
	probe.InstrsPerWarp = 1

	seen := make(map[string]bool)
	var out []Candidate
	for _, topo := range g.Topologies {
		placements, routings, flits := g.Placements, g.Routings, g.FlitBytes
		if topo != "mesh" {
			placements, routings = []string{"tb"}, []string{"dor"}
		}
		if topo == "basejump" {
			flits = []int{singleFlitWidth()}
		}
		for _, pl := range placements {
			for _, rt := range routings {
				if rt == "cr" && pl != "cp" {
					continue // checkerboard routing needs MCs at half-router tiles
				}
				for _, vc := range g.VCCounts {
					for _, bd := range g.BufDepths {
						for _, fb := range flits {
							for _, dbl := range g.Double {
								for _, inj := range g.MCInjPorts {
									c := Candidate{
										Topology: topo, Placement: pl, Routing: rt,
										VCs: vc, BufDepth: bd, FlitB: fb,
										Double: dbl, InjPorts: inj,
									}
									c.Name = c.name()
									if seen[c.Name] {
										continue // collapsed axes (non-mesh placements)
									}
									seen[c.Name] = true
									cfg := c.Build(probe)
									if _, err := core.NewSystem(cfg); err != nil {
										continue // the simulator rejects this combination
									}
									na := area.FromConfig(cfg.Noc, c.Double)
									c.NoCArea = na.NoC()
									c.ChipArea = na.Chip()
									out = append(out, c)
								}
							}
						}
					}
				}
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("explore: grid enumerates no valid candidates")
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}
