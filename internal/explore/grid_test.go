package explore

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/stats"
)

// TestGridCandidates pins the enumeration contract on the default grid:
// names are unique and sorted, the paper's combined design is present, the
// simulator-invalid combinations are filtered, and the backend-specific
// axis collapses hold.
func TestGridCandidates(t *testing.T) {
	cands, err := DefaultGrid().Candidates()
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 100 {
		t.Fatalf("default grid enumerates %d candidates, want >= 100", len(cands))
	}
	seen := make(map[string]bool, len(cands))
	paper := false
	for i, c := range cands {
		if seen[c.Name] {
			t.Errorf("duplicate candidate %s", c.Name)
		}
		seen[c.Name] = true
		if i > 0 && cands[i-1].Name >= c.Name {
			t.Errorf("candidates not sorted: %s before %s", cands[i-1].Name, c.Name)
		}
		if c.Name == PaperPointName {
			paper = true
		}
		if c.NoCArea <= 0 || c.ChipArea <= c.NoCArea {
			t.Errorf("%s: bad areas NoC=%v chip=%v", c.Name, c.NoCArea, c.ChipArea)
		}
		switch c.Topology {
		case "basejump":
			if c.FlitB != singleFlitWidth() {
				t.Errorf("%s: basejump channel %dB, want pinned %dB", c.Name, c.FlitB, singleFlitWidth())
			}
			if c.Double {
				t.Errorf("%s: single-flit backend cannot slice into a double network", c.Name)
			}
		case "ring":
			if c.Placement != "tb" || c.Routing != "dor" {
				t.Errorf("%s: non-mesh placement/routing axes should collapse, got %s/%s",
					c.Name, c.Placement, c.Routing)
			}
		}
		if c.Routing == "cr" && c.Placement != "cp" {
			t.Errorf("%s: checkerboard routing without checkerboard placement", c.Name)
		}
	}
	if !paper {
		t.Errorf("paper point %s not enumerated", PaperPointName)
	}
	// Checkerboard routing on a single network needs 4 VCs (two phases ×
	// split classes); the 2-VC variant only exists sliced.
	if seen["x-mesh-cp-cr-vc2-bd8-fb16-p2"] {
		t.Error("invalid single-network CR 2-VC candidate survived enumeration")
	}
	if !seen["x-mesh-cp-cr-vc2-bd8-fb16-p2-dbl"] {
		t.Error("sliced CR 2-VC candidate missing")
	}
}

// TestCandidateBuildCarriesName: runner cache identity comes from the
// candidate name, and rung budgets land in the kernel length.
func TestCandidateBuildCarriesName(t *testing.T) {
	cands, err := tinyGrid().Candidates()
	if err != nil {
		t.Fatal(err)
	}
	prof := mumProfile(t)
	for _, c := range cands {
		cfg := c.Build(prof)
		if cfg.Name != c.Name {
			t.Errorf("Build name %q, want %q", cfg.Name, c.Name)
		}
		if got := cfg.ScaleWork(0.05).Workload.InstrsPerWarp; got >= cfg.Workload.InstrsPerWarp {
			t.Errorf("%s: budget scaling did not shorten the kernel (%d -> %d)",
				c.Name, cfg.Workload.InstrsPerWarp, got)
		}
	}
}

// TestKillPass pins the dominance-kill semantics: only surviving candidates
// kill, the margin protects near-ties, and margin 0 reproduces the exact
// Pareto frontier.
func TestKillPass(t *testing.T) {
	est := map[int]Estimate{
		0: {Candidate: "a", IPC: 10.0, ChipArea: 5},
		1: {Candidate: "b", IPC: 9.3, ChipArea: 5},  // within 10% of a: survives at margin 0.10
		2: {Candidate: "c", IPC: 8.6, ChipArea: 5},  // dominated by a beyond the margin
		3: {Candidate: "d", IPC: 11.0, ChipArea: 9}, // bigger area, best IPC: survives
	}
	scored := []int{0, 1, 2, 3}

	survivors, kills := killPass(scored, est, 0.10)
	if want := []int{0, 1, 3}; !equalInts(survivors, want) {
		t.Errorf("margin 0.10 survivors = %v, want %v", survivors, want)
	}
	if len(kills) != 1 || kills[0].Candidate != "c" || kills[0].By != "a" {
		t.Errorf("margin 0.10 kills = %+v, want c killed by a", kills)
	}

	// Margin 0 must equal the exact Pareto frontier.
	survivors, _ = killPass(scored, est, 0)
	var ipc, chip []float64
	for _, i := range scored {
		ipc = append(ipc, est[i].IPC)
		chip = append(chip, est[i].ChipArea)
	}
	frontier := stats.ParetoFrontier(ipc, chip)
	sort.Ints(frontier)
	if !equalInts(survivors, frontier) {
		t.Errorf("margin 0 survivors = %v, want Pareto frontier %v", survivors, frontier)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPaperPointNameMatchesGrammar: the validation constant stays in sync
// with the name derivation.
func TestPaperPointNameMatchesGrammar(t *testing.T) {
	c := Candidate{Topology: "mesh", Placement: "cp", Routing: "cr",
		VCs: 2, BufDepth: 8, FlitB: 16, Double: true, InjPorts: 2}
	if got := c.name(); got != PaperPointName {
		t.Errorf("derived name %q, constant %q", got, PaperPointName)
	}
	if !strings.HasPrefix(PaperPointName, "x-mesh-cp-cr") {
		t.Errorf("paper point %q should be a checkerboard mesh design", PaperPointName)
	}
}
