package explore

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Rung is one stage of the successive-halving schedule: every surviving
// candidate runs at Budget (a fraction of the full kernel length), then
// candidates dominated on the running IPC/area estimate — with Margin of
// slack protecting near-frontier points from short-budget estimation noise
// — are killed before the next, longer rung.
type Rung struct {
	// Budget multiplies the kernel length for this rung; the final rung
	// should run the full kernel (1.0).
	Budget float64 `json:"budget"`
	// Margin is the dominance confidence margin: a candidate is killed
	// only by a competitor whose IPC estimate exceeds the candidate's by
	// more than Margin (relative) at no larger area. 0 is exact Pareto
	// dominance.
	Margin float64 `json:"margin"`
}

// DefaultRungs is the three-stage schedule the explorer uses when the
// caller does not supply one: a 5% warm-up that kills candidates dominated
// by more than a 15% IPC margin, a 25% middle rung at a 5% margin, and the
// full-length final rung at exact dominance. The margins were calibrated
// against exhaustive full-grid runs: they are the tightest schedule that
// still reproduces the exhaustive Pareto frontier exactly (tighter margins
// start mis-killing near-tie frontier points whose sub-5% IPC gaps only
// resolve at full length — adding a half-budget rung does not help, the
// near-ties flip between budgets). Budgets must ascend so a promoted
// candidate never re-runs a shorter kernel than it already has.
func DefaultRungs() []Rung {
	return []Rung{
		{Budget: 0.05, Margin: 0.15},
		{Budget: 0.25, Margin: 0.05},
		{Budget: 1.0, Margin: 0},
	}
}

// Options configures an exploration.
type Options struct {
	// Grid spans the design space; the zero value means DefaultGrid.
	Grid Grid
	// Benchmarks are the workloads every candidate is scored on (the
	// harmonic mean across them is the IPC estimate). Must be non-empty.
	Benchmarks []workload.Profile
	// Seeds lists the traffic seeds averaged per (candidate, benchmark);
	// empty means {1}. Replicas ride one lane batch via the planner.
	Seeds []uint64
	// Rungs is the successive-halving schedule; empty means DefaultRungs.
	Rungs []Rung
	// Scale multiplies kernel length before rung budgets apply (the
	// suite's -scale knob); 0 means 1.0.
	Scale float64
	// Jobs is the worker-slot count of the pool the exploration runs on,
	// for the sweep planner's lane/shard budget; 0 means the core count.
	Jobs int
	// MaxProcs overrides the planner's core budget (tests); 0 means
	// runtime.GOMAXPROCS.
	MaxProcs int
	// NoIdleSkip forwards the suite's idle-skip override to every run.
	NoIdleSkip bool
	// Progress, when non-nil, receives one line per rung.
	Progress io.Writer
}

// Estimate is one candidate's running score at a rung: the harmonic mean
// over benchmarks of the mean-over-seeds IPC, the analytic areas, and the
// simulation cost the estimate consumed.
type Estimate struct {
	Candidate string  `json:"candidate"`
	IPC       float64 `json:"ipc"`
	NoCArea   float64 `json:"noc_mm2"`
	ChipArea  float64 `json:"chip_mm2"`
	TE        float64 `json:"ipc_per_mm2"`
	Runs      int     `json:"runs"` // OK runs contributing to IPC
	DNF       int     `json:"dnf"`  // degraded runs at this rung
	Cycles    uint64  `json:"icnt_cycles"`
}

// Kill records one dominance kill: who died, who dominated, at what score.
type Kill struct {
	Candidate string  `json:"candidate"`
	By        string  `json:"by"`
	IPC       float64 `json:"ipc"`
	ChipArea  float64 `json:"chip_mm2"`
}

// RungLog is the per-rung kill/promote accounting.
type RungLog struct {
	Index    int      `json:"rung"`
	Budget   float64  `json:"budget"`
	Margin   float64  `json:"margin"`
	Entered  int      `json:"entered"`
	Killed   []Kill   `json:"killed"`
	DNF      []string `json:"dnf"` // candidates dropped: every run degraded
	Promoted int      `json:"promoted"`
	Cycles   uint64   `json:"icnt_cycles"`
}

// Frontier is the machine-readable result of one exploration.
type Frontier struct {
	Grid       int       `json:"grid"` // valid candidates enumerated
	Benchmarks []string  `json:"benchmarks"`
	Seeds      []uint64  `json:"seeds"`
	Rungs      []RungLog `json:"rungs"`
	// Points is the Pareto frontier over the final-rung estimates,
	// sorted by chip area ascending.
	Points []Estimate `json:"frontier"`
	// Survivors is every candidate that completed the final rung
	// (frontier and dominated alike), sorted by candidate name.
	Survivors []Estimate `json:"survivors"`
	// PaperPointOnFrontier reports whether the paper's combined design
	// (PaperPoint) was recovered on Points — the validation check.
	PaperPoint           string `json:"paper_point"`
	PaperPointOnFrontier bool   `json:"paper_point_on_frontier"`
	// KilledEarly counts candidates terminated before the final rung
	// (dominance kills plus all-DNF drops).
	KilledEarly int `json:"killed_early"`
	// SimulatedCycles is the interconnect-cycle cost actually paid;
	// ExhaustiveCycles extrapolates what running every enumerated
	// candidate at full budget would have cost.
	SimulatedCycles  uint64 `json:"simulated_cycles"`
	ExhaustiveCycles uint64 `json:"exhaustive_cycles_estimate"`
}

// CycleSavings returns ExhaustiveCycles/SimulatedCycles (0 when unknown).
func (f *Frontier) CycleSavings() float64 {
	if f.SimulatedCycles == 0 || f.ExhaustiveCycles == 0 {
		return 0
	}
	return float64(f.ExhaustiveCycles) / float64(f.SimulatedCycles)
}

// JSON renders the frontier for machines.
func (f *Frontier) JSON() ([]byte, error) { return json.MarshalIndent(f, "", "  ") }

// Explorer drives a grid through the successive-halving schedule on a
// runner.Pool. The pool supplies workers, memoization, retries, DNF
// isolation and the checkpoint journal; the explorer never runs a
// simulation itself, so an exploration interrupted at any point resumes
// from the journal with every finished run served from cache — each rung's
// budget is part of the cache key (runner.Key includes the kernel length),
// so partial rungs resume mid-flight.
type Explorer struct {
	opts    Options
	pool    *runner.Pool
	planner runner.Planner
}

// New builds an explorer on pool.
func New(pool *runner.Pool, opts Options) (*Explorer, error) {
	if pool == nil {
		return nil, fmt.Errorf("explore: nil pool")
	}
	if len(opts.Benchmarks) == 0 {
		return nil, fmt.Errorf("explore: no benchmarks to score candidates on")
	}
	if len(opts.Grid.Topologies) == 0 {
		opts.Grid = DefaultGrid()
	}
	if len(opts.Seeds) == 0 {
		opts.Seeds = []uint64{1}
	}
	if len(opts.Rungs) == 0 {
		opts.Rungs = DefaultRungs()
	}
	if opts.Scale <= 0 {
		opts.Scale = 1.0
	}
	prev := 0.0
	for i, r := range opts.Rungs {
		if r.Budget <= prev {
			return nil, fmt.Errorf("explore: rung %d budget %g must exceed rung %d's %g (budgets ascend)",
				i, r.Budget, i-1, prev)
		}
		if r.Margin < 0 {
			return nil, fmt.Errorf("explore: rung %d margin %g must be >= 0", i, r.Margin)
		}
		prev = r.Budget
	}
	e := &Explorer{opts: opts, pool: pool}
	e.planner.Jobs = opts.Jobs
	e.planner.MaxProcs = opts.MaxProcs
	return e, nil
}

// Run executes the exploration. The frontier, rung logs and savings are
// deterministic for any worker count, lane width or shard count, and for a
// resumed run: every number derives from memoized per-run results and the
// candidate enumeration order. A cancelled context aborts with an error —
// the pool's journal keeps what finished.
func (e *Explorer) Run(ctx context.Context) (*Frontier, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cands, err := e.opts.Grid.Candidates()
	if err != nil {
		return nil, err
	}

	f := &Frontier{
		Grid:       len(cands),
		Seeds:      e.opts.Seeds,
		PaperPoint: PaperPointName,
	}
	for _, p := range e.opts.Benchmarks {
		f.Benchmarks = append(f.Benchmarks, p.Abbr)
	}

	alive := make([]int, len(cands))
	for i := range cands {
		alive[i] = i
	}
	// lastCycles/lastBudget remember each candidate's most recent rung
	// cost, the basis of the exhaustive-cost extrapolation.
	lastCycles := make([]uint64, len(cands))
	lastBudget := make([]float64, len(cands))

	var final []Estimate
	for ri, rung := range e.opts.Rungs {
		est, rungCycles, err := e.scoreRung(ctx, cands, alive, rung.Budget)
		if err != nil {
			return nil, err
		}
		f.SimulatedCycles += rungCycles
		for _, idx := range alive {
			lastCycles[idx] = est[idx].Cycles
			lastBudget[idx] = rung.Budget
		}

		log := RungLog{Index: ri, Budget: rung.Budget, Margin: rung.Margin,
			Entered: len(alive), Cycles: rungCycles}

		// Candidates whose every run degraded have no estimate to
		// compete with: they leave as DNF rows, not dominance kills.
		scored := alive[:0]
		for _, idx := range alive {
			if est[idx].Runs == 0 {
				log.DNF = append(log.DNF, cands[idx].Name)
				continue
			}
			scored = append(scored, idx)
		}

		survivors, kills := killPass(scored, est, rung.Margin)
		log.Killed = kills
		log.Promoted = len(survivors)
		f.Rungs = append(f.Rungs, log)
		if ri < len(e.opts.Rungs)-1 {
			f.KilledEarly += len(kills) + len(log.DNF)
		}
		if e.opts.Progress != nil {
			fmt.Fprintf(e.opts.Progress,
				"explore rung %d: budget %.2f margin %.2f: %d entered, %d killed, %d dnf, %d promoted (%d icnt cycles)\n",
				ri, rung.Budget, rung.Margin, log.Entered, len(kills), len(log.DNF), log.Promoted, rungCycles)
		}
		alive = survivors

		if ri == len(e.opts.Rungs)-1 {
			for _, idx := range scored {
				final = append(final, est[idx])
			}
		}
		if len(alive) == 0 {
			break
		}
	}

	// Survivors: every final-rung entrant with a score, by name. Points:
	// the exact Pareto frontier over them, by area. (The final kill pass
	// already applied the last rung's margin; re-filtering at margin 0
	// yields the same frontier for any non-negative margin.)
	sort.Slice(final, func(i, j int) bool { return final[i].Candidate < final[j].Candidate })
	f.Survivors = final
	ipc := make([]float64, len(final))
	chip := make([]float64, len(final))
	for i, s := range final {
		ipc[i], chip[i] = s.IPC, s.ChipArea
	}
	for _, i := range stats.ParetoFrontier(ipc, chip) {
		f.Points = append(f.Points, final[i])
		if final[i].Candidate == PaperPointName {
			f.PaperPointOnFrontier = true
		}
	}

	for idx := range cands {
		if lastBudget[idx] > 0 {
			f.ExhaustiveCycles += uint64(float64(lastCycles[idx]) / lastBudget[idx])
		}
	}
	return f, nil
}

// scoreRung runs every (alive candidate × benchmark × seed) combination at
// the given budget through the planned submission path and aggregates the
// per-candidate estimates. Cached and journal-resumed outcomes count their
// cycles like fresh ones, so the savings accounting is identical for a
// resumed exploration.
func (e *Explorer) scoreRung(ctx context.Context, cands []Candidate, alive []int, budget float64) (map[int]Estimate, uint64, error) {
	benches, seeds := e.opts.Benchmarks, e.opts.Seeds
	per := len(benches) * len(seeds)
	cfgs := make([]core.Config, 0, len(alive)*per)
	for _, idx := range alive {
		for _, p := range benches {
			cfg := cands[idx].Build(p).ScaleWork(e.opts.Scale * budget)
			cfg.NoIdleSkip = e.opts.NoIdleSkip
			for _, seed := range seeds {
				c := cfg
				c.Seed = seed
				cfgs = append(cfgs, c)
			}
		}
	}
	outs := e.pool.DoAllWithPlan(ctx, cfgs, e.planner.Plan(cfgs))
	if err := ctx.Err(); err != nil {
		return nil, 0, fmt.Errorf("explore: rung aborted: %w", err)
	}

	est := make(map[int]Estimate, len(alive))
	var total uint64
	pos := 0
	for _, idx := range alive {
		ev := Estimate{
			Candidate: cands[idx].Name,
			NoCArea:   cands[idx].NoCArea,
			ChipArea:  cands[idx].ChipArea,
		}
		var perBench []float64
		for range benches {
			var sum float64
			var n int
			for range seeds {
				o := outs[pos]
				pos++
				ev.Cycles += o.Result.IcntCycles
				if o.OK() && o.Result.IPC > 0 {
					sum += o.Result.IPC
					n++
					ev.Runs++
				} else {
					ev.DNF++
				}
			}
			if n > 0 {
				perBench = append(perBench, sum/float64(n))
			}
		}
		if len(perBench) > 0 {
			ev.IPC = stats.HarmonicMean(perBench)
			ev.TE = ev.IPC / ev.ChipArea
		}
		total += ev.Cycles
		est[idx] = ev
	}
	return est, total, nil
}

// killPass partitions the scored candidates into survivors and
// margin-dominated kills. Candidates are scanned in (area asc, IPC desc,
// name) order, so every potential dominator of a candidate — smaller or
// equal area — is classified before it, and only candidates that
// themselves survived may kill: a chain of borderline points cannot
// eliminate each other transitively. At margin 0 the survivors are exactly
// the Pareto frontier.
func killPass(scored []int, est map[int]Estimate, margin float64) ([]int, []Kill) {
	order := append([]int(nil), scored...)
	sort.Slice(order, func(i, j int) bool {
		a, b := est[order[i]], est[order[j]]
		if a.ChipArea != b.ChipArea {
			return a.ChipArea < b.ChipArea
		}
		if a.IPC != b.IPC {
			return a.IPC > b.IPC
		}
		return a.Candidate < b.Candidate
	})
	var accepted []int
	var kills []Kill
	for _, idx := range order {
		x := est[idx]
		killedBy := -1
		for _, a := range accepted {
			d := est[a]
			if stats.DominatesWithMargin(d.IPC, d.ChipArea, x.IPC, x.ChipArea, margin) {
				killedBy = a
				break
			}
		}
		if killedBy >= 0 {
			kills = append(kills, Kill{
				Candidate: x.Candidate, By: est[killedBy].Candidate,
				IPC: x.IPC, ChipArea: x.ChipArea,
			})
			continue
		}
		accepted = append(accepted, idx)
	}
	sort.Ints(accepted)
	sort.Slice(kills, func(i, j int) bool { return kills[i].Candidate < kills[j].Candidate })
	return accepted, kills
}
