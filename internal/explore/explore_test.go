package explore

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/runner"
	"repro/internal/workload"
)

// tinyGrid is the smoke grid: 3 mesh placement/routing combinations × the
// double-network axis × MC injection ports = 12 candidates, small enough
// for the race-enabled CI step.
func tinyGrid() Grid {
	return Grid{
		Topologies: []string{"mesh"},
		Placements: []string{"tb", "cp"},
		Routings:   []string{"dor", "cr"},
		VCCounts:   []int{4},
		BufDepths:  []int{8},
		FlitBytes:  []int{16},
		Double:     []bool{false, true},
		MCInjPorts: []int{1, 2},
	}
}

func mumProfile(t testing.TB) workload.Profile {
	t.Helper()
	p, err := workload.ByAbbr("MUM")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newExplorerPool(t testing.TB, opts runner.Options) *runner.Pool {
	t.Helper()
	pool, err := runner.New(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pool.Close() })
	return pool
}

// TestExploreSmokeTinyGrid: the end-to-end engine on the smoke grid — rung
// accounting adds up, the frontier is a non-empty subset of the survivors,
// and the JSON round-trip works. This is the CI -race smoke step.
func TestExploreSmokeTinyGrid(t *testing.T) {
	pool := newExplorerPool(t, runner.Options{Jobs: 2})
	ex, err := New(pool, Options{
		Grid:       tinyGrid(),
		Benchmarks: []workload.Profile{mumProfile(t)},
		Scale:      0.01,
		Jobs:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := ex.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if f.Grid != 12 {
		t.Errorf("grid enumerated %d candidates, want 12", f.Grid)
	}
	if len(f.Rungs) != len(DefaultRungs()) {
		t.Fatalf("rung log has %d entries, want %d", len(f.Rungs), len(DefaultRungs()))
	}
	for i, rl := range f.Rungs {
		if got := len(rl.Killed) + len(rl.DNF) + rl.Promoted; got != rl.Entered {
			t.Errorf("rung %d: killed+dnf+promoted = %d, want entered %d", i, got, rl.Entered)
		}
		if i > 0 && rl.Entered != f.Rungs[i-1].Promoted {
			t.Errorf("rung %d entered %d, want previous rung's promoted %d", i, rl.Entered, f.Rungs[i-1].Promoted)
		}
	}
	if len(f.Points) == 0 || len(f.Points) > len(f.Survivors) {
		t.Fatalf("frontier has %d points over %d survivors", len(f.Points), len(f.Survivors))
	}
	surv := make(map[string]bool, len(f.Survivors))
	for _, s := range f.Survivors {
		surv[s.Candidate] = true
	}
	for i, pt := range f.Points {
		if !surv[pt.Candidate] {
			t.Errorf("frontier point %s is not a survivor", pt.Candidate)
		}
		if i > 0 && pt.ChipArea < f.Points[i-1].ChipArea {
			t.Errorf("frontier not sorted by area: %v after %v", pt.ChipArea, f.Points[i-1].ChipArea)
		}
	}
	if f.SimulatedCycles == 0 || f.ExhaustiveCycles < f.SimulatedCycles {
		t.Errorf("savings accounting: simulated %d, exhaustive %d", f.SimulatedCycles, f.ExhaustiveCycles)
	}
	if _, err := f.JSON(); err != nil {
		t.Fatalf("frontier JSON: %v", err)
	}
}

// TestExploreDeterministicAcrossJobs pins the determinism contract: the
// full machine-readable frontier — points, rung kill/promote logs, cycle
// accounting — is byte-identical for any worker count, lane width or shard
// plan.
func TestExploreDeterministicAcrossJobs(t *testing.T) {
	run := func(jobs, maxprocs int) []byte {
		pool := newExplorerPool(t, runner.Options{Jobs: jobs})
		ex, err := New(pool, Options{
			Grid:       tinyGrid(),
			Benchmarks: []workload.Profile{mumProfile(t)},
			Seeds:      []uint64{1, 2},
			Scale:      0.01,
			Jobs:       jobs,
			MaxProcs:   maxprocs,
		})
		if err != nil {
			t.Fatal(err)
		}
		f, err := ex.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		data, err := f.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	ref := run(1, 1) // solo everything: 1-core degrade plan
	for _, c := range []struct{ jobs, maxprocs int }{{2, 8}, {4, 16}} {
		if got := run(c.jobs, c.maxprocs); string(got) != string(ref) {
			t.Errorf("frontier JSON differs between jobs=1 and jobs=%d (maxprocs=%d):\n--- ref ---\n%s\n--- got ---\n%s",
				c.jobs, c.maxprocs, ref, got)
		}
	}
}

// TestExploreResumesMidRung: an exploration interrupted partway through its
// first rung — some runs journaled, the rest never started — resumes from
// the checkpoint and reproduces the completed run's frontier byte for byte,
// re-executing only the missing simulations.
func TestExploreResumesMidRung(t *testing.T) {
	prof := mumProfile(t)
	opts := func(jobs int) Options {
		return Options{
			Grid:       tinyGrid(),
			Benchmarks: []workload.Profile{prof},
			Scale:      0.01,
			Jobs:       jobs,
		}
	}

	// The reference: a clean uninterrupted exploration.
	refPool := newExplorerPool(t, runner.Options{Jobs: 1})
	ex, err := New(refPool, opts(1))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ex.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	refJSON, err := ref.JSON()
	if err != nil {
		t.Fatal(err)
	}
	refExecuted := refPool.Executed()

	// "Interrupt" mid-rung-0: journal only the first three candidates'
	// warm-up runs — exactly the configs the explorer would submit.
	journal := filepath.Join(t.TempDir(), "explore.ckpt")
	cands, err := tinyGrid().Candidates()
	if err != nil {
		t.Fatal(err)
	}
	partial := newExplorerPool(t, runner.Options{Jobs: 1, Checkpoint: journal})
	warmup := DefaultRungs()[0].Budget
	for _, c := range cands[:3] {
		cfg := c.Build(prof).ScaleWork(0.01 * warmup)
		cfg.Seed = 1
		if out := partial.Do(cfg); !out.OK() {
			t.Fatalf("warm-up run for %s degraded: %+v", c.Name, out.Result)
		}
	}
	if err := partial.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume: the journaled runs come back from the checkpoint, the rest
	// execute, and the frontier is identical.
	resumed := newExplorerPool(t, runner.Options{Jobs: 1, Checkpoint: journal, Resume: true})
	ex2, err := New(resumed, opts(1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ex2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := got.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(refJSON) {
		t.Errorf("resumed frontier differs from clean run:\n--- clean ---\n%s\n--- resumed ---\n%s", refJSON, gotJSON)
	}
	if resumed.Executed() != refExecuted-3 {
		t.Errorf("resumed exploration executed %d runs, want %d (3 served from checkpoint)",
			resumed.Executed(), refExecuted-3)
	}
}

// TestExploreValidatesOptions: the constructor rejects broken schedules.
func TestExploreValidatesOptions(t *testing.T) {
	pool := newExplorerPool(t, runner.Options{Jobs: 1})
	bench := []workload.Profile{mumProfile(t)}
	if _, err := New(nil, Options{Benchmarks: bench}); err == nil {
		t.Error("nil pool accepted")
	}
	if _, err := New(pool, Options{}); err == nil {
		t.Error("empty benchmark set accepted")
	}
	if _, err := New(pool, Options{Benchmarks: bench,
		Rungs: []Rung{{Budget: 0.5, Margin: 0}, {Budget: 0.25, Margin: 0}}}); err == nil {
		t.Error("descending budgets accepted")
	}
	if _, err := New(pool, Options{Benchmarks: bench,
		Rungs: []Rung{{Budget: 0.5, Margin: -0.1}, {Budget: 1, Margin: 0}}}); err == nil {
		t.Error("negative margin accepted")
	}
}

// TestExploreDefaultGridAcceptance is the paper-validation check: on the
// default multi-topology grid the successive-halving search must (a)
// recover the paper's combined checkerboard+CP+double-network design point
// on the Pareto frontier, (b) log >= 3x cycle savings over the exhaustive
// grid, and (c) produce the exact frontier an exhaustive full-budget sweep
// of the same grid produces. The exhaustive pass shares the pool, so the
// survivors' full-length runs come back from cache (their cycles still
// count, keeping the comparison honest).
func TestExploreDefaultGridAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("full default-grid exploration skipped in -short mode")
	}
	const scale = 0.02
	pool := newExplorerPool(t, runner.Options{Jobs: 2})
	bench := []workload.Profile{mumProfile(t)}
	ex, err := New(pool, Options{Benchmarks: bench, Scale: scale, Jobs: 2, Progress: os.Stderr})
	if err != nil {
		t.Fatal(err)
	}
	f, err := ex.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !f.PaperPointOnFrontier {
		t.Errorf("paper point %s not recovered on the frontier:\n%v", f.PaperPoint, f.Points)
	}
	if s := f.CycleSavings(); s < 3 {
		t.Errorf("logged savings %.2fx, want >= 3x (simulated %d, exhaustive %d)",
			s, f.SimulatedCycles, f.ExhaustiveCycles)
	}

	exh, err := New(pool, Options{Benchmarks: bench, Scale: scale, Jobs: 2,
		Rungs: []Rung{{Budget: 1.0, Margin: 0}}})
	if err != nil {
		t.Fatal(err)
	}
	fe, err := exh.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	halved := make(map[string]bool, len(f.Points))
	for _, pt := range f.Points {
		halved[pt.Candidate] = true
	}
	if len(f.Points) != len(fe.Points) {
		t.Errorf("halving frontier has %d points, exhaustive %d", len(f.Points), len(fe.Points))
	}
	for _, pt := range fe.Points {
		if !halved[pt.Candidate] {
			t.Errorf("exhaustive frontier point %s missing from halving frontier (ipc=%.3f chip=%.1f)",
				pt.Candidate, pt.IPC, pt.ChipArea)
		}
	}
}
