package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// testCfg builds a distinct config without needing a real simulation.
func testCfg(t *testing.T, name string) core.Config {
	t.Helper()
	p, err := workload.ByAbbr("MUM")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Baseline(p)
	cfg.Name = name
	return cfg
}

// okRun is a RunFunc returning a clean result.
func okRun(_ context.Context, cfg core.Config) (core.Result, error) {
	return core.Result{Benchmark: cfg.Workload.Abbr, Config: cfg.Name, Status: "ok", IPC: 1}, nil
}

func newPool(t *testing.T, opts Options) *Pool {
	t.Helper()
	if opts.Backoff == 0 {
		opts.Backoff = time.Millisecond
	}
	p, err := New(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestPoolMemoizesAndSingleflights(t *testing.T) {
	var calls atomic.Int64
	p := newPool(t, Options{Jobs: 4, Run: func(ctx context.Context, cfg core.Config) (core.Result, error) {
		calls.Add(1)
		time.Sleep(5 * time.Millisecond) // widen the race window
		return okRun(ctx, cfg)
	}})
	cfg := testCfg(t, "memo")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); p.Do(cfg) }()
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Errorf("8 concurrent identical requests executed %d times, want 1", n)
	}
	out := p.Do(cfg)
	if !out.Cached {
		t.Error("repeat request not served from cache")
	}
	if p.Executed() != 1 {
		t.Errorf("Executed() = %d, want 1", p.Executed())
	}
}

func TestPanicIsolation(t *testing.T) {
	p := newPool(t, Options{Jobs: 4, Run: func(ctx context.Context, cfg core.Config) (core.Result, error) {
		if cfg.Name == "boom" {
			panic("injected failure")
		}
		return okRun(ctx, cfg)
	}})
	cfgs := []core.Config{
		testCfg(t, "a"), testCfg(t, "boom"), testCfg(t, "b"), testCfg(t, "c"),
	}
	outs := p.DoAll(cfgs)
	ok := 0
	var bad Outcome
	for _, o := range outs {
		if o.OK() {
			ok++
		} else {
			bad = o
		}
	}
	if ok != 3 {
		t.Fatalf("%d runs survived the panicking sibling, want 3", ok)
	}
	if bad.Result.Status != "panic" {
		t.Errorf("panicked run status = %q, want panic", bad.Result.Status)
	}
	if bad.Attempts != 1 {
		t.Errorf("panic retried: attempts = %d, want 1 (panics are deterministic)", bad.Attempts)
	}
	if !strings.Contains(bad.Stack, "goroutine") {
		t.Errorf("panic outcome missing stack: %q", bad.Stack)
	}
	if bad.Err == nil || !strings.Contains(bad.Err.Error(), "injected failure") {
		t.Errorf("panic outcome error = %v", bad.Err)
	}
}

func TestTransientRetrySucceeds(t *testing.T) {
	var calls atomic.Int64
	p := newPool(t, Options{Jobs: 1, Retries: 2, Run: func(_ context.Context, cfg core.Config) (core.Result, error) {
		if calls.Add(1) < 3 {
			return core.Result{Benchmark: cfg.Workload.Abbr, Config: cfg.Name, Status: "timeout"}, nil
		}
		return core.Result{Benchmark: cfg.Workload.Abbr, Config: cfg.Name, Status: "ok", IPC: 2}, nil
	}})
	out := p.Do(testCfg(t, "flaky"))
	if !out.OK() {
		t.Fatalf("flaky run did not recover: status %q", out.Result.Status)
	}
	if out.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", out.Attempts)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	p := newPool(t, Options{Jobs: 1, Retries: 2, Run: func(_ context.Context, cfg core.Config) (core.Result, error) {
		return core.Result{Benchmark: cfg.Workload.Abbr, Config: cfg.Name, Status: "stall"}, nil
	}})
	out := p.Do(testCfg(t, "stuck"))
	if out.OK() || out.Result.Status != "stall" {
		t.Fatalf("outcome = %+v, want stall DNF", out.Result)
	}
	if out.Attempts != 3 {
		t.Errorf("attempts = %d, want 1 + 2 retries", out.Attempts)
	}
}

func TestDeterministicVerdictsNeverRetried(t *testing.T) {
	for _, status := range []string{"deadlock", "livelock", "cycle-cap", "invariant", "panic"} {
		var calls atomic.Int64
		p := newPool(t, Options{Jobs: 1, Retries: 5, Run: func(_ context.Context, cfg core.Config) (core.Result, error) {
			calls.Add(1)
			return core.Result{Benchmark: cfg.Workload.Abbr, Config: cfg.Name, Status: status}, nil
		}})
		out := p.Do(testCfg(t, "det-"+status))
		if calls.Load() != 1 || out.Attempts != 1 {
			t.Errorf("%s: executed %d times (attempts %d), want exactly 1", status, calls.Load(), out.Attempts)
		}
	}
}

func TestErrorBecomesDNFWithMessage(t *testing.T) {
	p := newPool(t, Options{Jobs: 1, Run: func(_ context.Context, _ core.Config) (core.Result, error) {
		return core.Result{}, errors.New("bad configuration: no MCs")
	}})
	out := p.Do(testCfg(t, "badcfg"))
	if out.OK() {
		t.Fatal("error outcome reported OK")
	}
	if !strings.Contains(out.Result.Status, "no MCs") {
		t.Errorf("status = %q, want the error message", out.Result.Status)
	}
	if out.Result.Benchmark != "MUM" || out.Result.Config != "badcfg" {
		t.Errorf("identity not backfilled: %q/%q", out.Result.Config, out.Result.Benchmark)
	}
}

// TestRunTimeoutVerdict exercises the real core.Run path: a slow run must
// surface as one "timeout" DNF row with its attempt count while the fast
// sibling in the same sweep completes. BIN at scale 0.05 finishes in tens
// of milliseconds; MUM at full scale needs ~10s, far past the 1s deadline
// on any plausible machine.
func TestRunTimeoutVerdict(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock timeout test skipped in -short mode")
	}
	bin, err := workload.ByAbbr("BIN")
	if err != nil {
		t.Fatal(err)
	}
	mum, err := workload.ByAbbr("MUM")
	if err != nil {
		t.Fatal(err)
	}
	p := newPool(t, Options{Jobs: 2, RunTimeout: time.Second})
	outs := p.DoAll([]core.Config{
		core.Baseline(bin).ScaleWork(0.05),
		core.Baseline(mum),
	})
	if !outs[0].OK() {
		t.Errorf("fast run status = %q, want ok", outs[0].Result.Status)
	}
	if outs[1].Result.Status != "timeout" {
		t.Fatalf("slow run status = %q, want timeout", outs[1].Result.Status)
	}
	if outs[1].Attempts != 1 {
		// Retries default to 0 here.
		t.Errorf("attempts = %d, want 1", outs[1].Attempts)
	}
}

func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	p, err := New(ctx, Options{Jobs: 1, Run: func(ctx context.Context, cfg core.Config) (core.Result, error) {
		close(started)
		<-ctx.Done()
		return core.Result{Benchmark: cfg.Workload.Abbr, Config: cfg.Name, Status: "canceled"}, ctx.Err()
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	go func() { <-started; cancel() }()
	out := p.Do(testCfg(t, "longrun"))
	if out.Result.Status != "canceled" {
		t.Fatalf("status = %q, want canceled", out.Result.Status)
	}
	// Post-cancel requests must not execute at all.
	out2 := p.Do(testCfg(t, "never"))
	if out2.Result.Status != "canceled" {
		t.Errorf("post-cancel status = %q, want canceled", out2.Result.Status)
	}
}

func TestDoAllPreservesOrder(t *testing.T) {
	p := newPool(t, Options{Jobs: 8, Run: okRun})
	var cfgs []core.Config
	for i := 0; i < 20; i++ {
		cfgs = append(cfgs, testCfg(t, fmt.Sprintf("cfg-%02d", i)))
	}
	outs := p.DoAll(cfgs)
	for i, o := range outs {
		if want := fmt.Sprintf("cfg-%02d", i); o.Result.Config != want {
			t.Fatalf("outs[%d] = %s, want %s", i, o.Result.Config, want)
		}
	}
}

func TestKeyDistinguishesSeedAndScale(t *testing.T) {
	a := testCfg(t, "X")
	b := a
	b.Seed = 2
	c := a.ScaleWork(0.5)
	keys := map[string]bool{Key(a): true, Key(b): true, Key(c): true}
	if len(keys) != 3 {
		t.Errorf("seed/scale variants share keys: %v", keys)
	}
}

// TestCapShards pins the jobs×lanes×shards oversubscription policy: every
// run gets at most its fair share of GOMAXPROCS — divided across concurrent
// jobs AND across the lanes of its own batch, each of which keeps a shard
// team alive — auto resolves to exactly that share, serial stays serial,
// and no input yields less than one shard.
func TestCapShards(t *testing.T) {
	cases := []struct {
		requested, jobs, lanes, maxprocs, want int
	}{
		{0, 4, 1, 16, 0},                // serial stays serial
		{1, 4, 1, 16, 1},                // modest ask under the share
		{4, 4, 1, 16, 4},                // exactly the fair share
		{8, 4, 1, 16, 4},                // over-ask capped to the share
		{core.ShardsAuto, 4, 1, 16, 4},  // auto = fair share
		{core.ShardsAuto, 1, 1, 16, 16}, // sole run gets the machine
		{core.ShardsAuto, 32, 1, 16, 1}, // more jobs than CPUs: 1 each
		{6, 3, 1, 8, 2},                 // integer fair share (8/3)
		{2, 0, 8, 2, 1},                 // jobs<1 treated as one run; lanes still divide
		{5, 16, 1, 1, 1},                // single-CPU host: never below 1

		// The three-way budget: lanes divide the per-job share.
		{core.ShardsAuto, 2, 4, 16, 2},  // 16 procs / (2 jobs × 4 lanes) = 2 each
		{8, 1, 4, 16, 4},                // sole batch: 16/4 lanes, over-ask capped
		{2, 2, 2, 16, 2},                // modest ask under the 4-way share
		{core.ShardsAuto, 4, 4, 16, 1},  // jobs×lanes saturate the box: 1 each
		{0, 2, 4, 16, 0},                // serial stays serial in a batch too
		{core.ShardsAuto, 1, 0, 16, 16}, // lanes<1 treated as solo
	}
	for _, c := range cases {
		if got := CapShards(c.requested, c.jobs, c.lanes, c.maxprocs); got != c.want {
			t.Errorf("CapShards(%d, %d, %d, %d) = %d, want %d",
				c.requested, c.jobs, c.lanes, c.maxprocs, got, c.want)
		}
	}
}

// TestPoolCapsShards proves the pool applies the cap to every executed
// config: the total shard workers of concurrently running simulations
// cannot exceed GOMAXPROCS even when each config over-asks.
func TestPoolCapsShards(t *testing.T) {
	jobs := 4
	var seen sync.Map
	p := newPool(t, Options{Jobs: jobs, Run: func(_ context.Context, cfg core.Config) (core.Result, error) {
		seen.Store(cfg.Name, cfg.Shards)
		return core.Result{Benchmark: cfg.Workload.Abbr, Config: cfg.Name, Status: "ok"}, nil
	}})
	cfgs := []core.Config{
		testCfg(t, "over-ask").WithShards(1 << 20),
		testCfg(t, "auto").WithShards(core.ShardsAuto),
		testCfg(t, "serial"), // Shards zero stays serial
	}
	p.DoAll(cfgs)
	share := runtime.GOMAXPROCS(0) / jobs
	if share < 1 {
		share = 1
	}
	for _, name := range []string{"over-ask", "auto"} {
		got, ok := seen.Load(name)
		if !ok {
			t.Fatalf("config %s never ran", name)
		}
		if got.(int) != share {
			t.Errorf("%s ran with %d shards, want fair share %d", name, got, share)
		}
	}
	if got, _ := seen.Load("serial"); got.(int) != 0 {
		t.Errorf("serial config ran with %d shards, want 0", got)
	}
}

// TestPoolDefaultShards proves Options.Shards fills in configs that do not
// set their own request, without overriding explicit per-config values.
func TestPoolDefaultShards(t *testing.T) {
	var seen sync.Map
	p := newPool(t, Options{Jobs: 1, Shards: 2, Run: func(_ context.Context, cfg core.Config) (core.Result, error) {
		seen.Store(cfg.Name, cfg.Shards)
		return core.Result{Benchmark: cfg.Workload.Abbr, Config: cfg.Name, Status: "ok"}, nil
	}})
	p.Do(testCfg(t, "default"))
	p.Do(testCfg(t, "explicit").WithShards(1))
	want := CapShards(2, 1, 1, runtime.GOMAXPROCS(0))
	if got, _ := seen.Load("default"); got.(int) != want {
		t.Errorf("default config ran with %v shards, want %d (pool default, capped)", got, want)
	}
	if got, _ := seen.Load("explicit"); got.(int) != 1 {
		t.Errorf("explicit config ran with %v shards, want its own 1", got)
	}
}

// TestRetryableClassification pins the full verdict table: transient
// verdicts retry, deterministic ones are terminal, and an unknown status
// (a future verdict nobody classified yet) defaults to terminal.
func TestRetryableClassification(t *testing.T) {
	cases := map[string]bool{
		"stall":   true,
		"timeout": true,

		"ok":        false,
		"deadlock":  false,
		"livelock":  false,
		"cycle-cap": false,
		"invariant": false,
		"panic":     false,
		"canceled":  false,
		"error":     false,
		"io_error":  false,

		// Outside the vocabulary: an invalid-config message promoted
		// into Status, and a verdict that does not exist yet.
		"core: configuration has no memory controllers": false,
		"some-future-verdict":                           false,
		"":                                              false,
	}
	for status, want := range cases {
		if got := Retryable(status); got != want {
			t.Errorf("Retryable(%q) = %v, want %v", status, got, want)
		}
	}
}

// TestBackoffDelayBounds asserts the jitter and cap contract: every delay
// lies in [cap/2, 3*cap/2] where cap = min(base<<(retry-1), max), and huge
// retry budgets can neither overflow nor exceed the cap.
func TestBackoffDelayBounds(t *testing.T) {
	base := 10 * time.Millisecond
	max := 160 * time.Millisecond
	jitter := xrand.New(42)
	for retry := 1; retry <= 200; retry++ {
		exp := base
		for i := 1; i < retry && exp < max; i++ {
			exp <<= 1
		}
		if exp > max {
			exp = max
		}
		d := backoffDelay(base, max, retry, jitter)
		if d < exp/2 || d > exp+exp/2 {
			t.Fatalf("retry %d: delay %v outside [%v, %v]", retry, d, exp/2, exp+exp/2)
		}
		if d < 0 || d > max+max/2 {
			t.Fatalf("retry %d: delay %v breaches the cap %v (overflow?)", retry, d, max+max/2)
		}
	}
	// Uncapped growth for the first few retries: retry 3 must be able to
	// exceed retry 1's ceiling, or the backoff is not exponential at all.
	saw := false
	for i := 0; i < 64; i++ {
		if backoffDelay(base, max, 3, jitter) > 3*base/2 {
			saw = true
			break
		}
	}
	if !saw {
		t.Error("retry 3 never exceeded retry 1's jitter ceiling; backoff not growing")
	}
}

// TestDoContextClientDisconnect is the service-daemon contract: cancelling
// the per-call context aborts the in-flight run (no other caller is
// interested), the caller gets a transient "canceled" outcome, and a later
// request re-executes the run instead of being served the stale verdict.
func TestDoContextClientDisconnect(t *testing.T) {
	var calls atomic.Int64
	started := make(chan struct{}, 8)
	p := newPool(t, Options{Jobs: 2, Run: func(ctx context.Context, cfg core.Config) (core.Result, error) {
		n := calls.Add(1)
		if n == 1 {
			started <- struct{}{}
			<-ctx.Done() // simulate core.Run honouring cancellation
			return core.Result{Benchmark: cfg.Workload.Abbr, Config: cfg.Name, Status: "canceled"}, ctx.Err()
		}
		return okRun(ctx, cfg)
	}})
	cfg := testCfg(t, "disconnect")

	ctx, cancel := context.WithCancel(context.Background())
	outCh := make(chan Outcome, 1)
	go func() { outCh <- p.DoContext(ctx, cfg) }()
	<-started
	cancel() // the only client walks away
	out := <-outCh
	if out.Result.Status != "canceled" {
		t.Fatalf("disconnected call: status %q, want canceled", out.Result.Status)
	}

	// The canceled verdict must not poison the cache: a fresh request
	// re-executes and completes.
	out = p.Do(cfg)
	if out.Cached || !out.OK() {
		t.Fatalf("re-request after disconnect: cached=%v status=%q, want fresh ok run",
			out.Cached, out.Result.Status)
	}
	if p.Executed() != 1 {
		t.Errorf("Executed() = %d, want 1 (the abandoned run is not a completed simulation)", p.Executed())
	}
}

// TestDoContextSharedRunSurvivesOneDisconnect: two callers share one
// flight; the first disconnecting must not cancel the run the second is
// still waiting for.
func TestDoContextSharedRunSurvivesOneDisconnect(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 2)
	p := newPool(t, Options{Jobs: 2, Run: func(ctx context.Context, cfg core.Config) (core.Result, error) {
		started <- struct{}{}
		select {
		case <-release:
			return okRun(ctx, cfg)
		case <-ctx.Done():
			return core.Result{Benchmark: cfg.Workload.Abbr, Config: cfg.Name, Status: "canceled"}, ctx.Err()
		}
	}})
	cfg := testCfg(t, "shared")

	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	out1 := make(chan Outcome, 1)
	go func() { out1 <- p.DoContext(ctx1, cfg) }()
	<-started

	out2 := make(chan Outcome, 1)
	go func() { out2 <- p.DoContext(context.Background(), cfg) }()
	// Give the second caller time to join the flight, then drop the first.
	time.Sleep(10 * time.Millisecond)
	cancel1()
	select {
	case o := <-out2:
		t.Fatalf("second caller returned %q before the run was released", o.Result.Status)
	case <-time.After(20 * time.Millisecond):
		// Still waiting: the run survived the first disconnect.
	}
	close(release)
	if o := <-out2; !o.OK() {
		t.Fatalf("surviving caller: status %q, want ok", o.Result.Status)
	}
	<-out1
}

// TestLookupHookServesExternalStore: a cache miss consults the external
// content-addressed store before executing anything.
func TestLookupHookServesExternalStore(t *testing.T) {
	cfg := testCfg(t, "stored")
	key := Key(cfg)
	var calls atomic.Int64
	p := newPool(t, Options{
		Jobs: 2,
		Run: func(ctx context.Context, c core.Config) (core.Result, error) {
			calls.Add(1)
			return okRun(ctx, c)
		},
		Lookup: func(k string) (Record, bool) {
			if k == key {
				return Record{Key: k, Attempts: 2,
					Result: core.Result{Benchmark: cfg.Workload.Abbr, Config: cfg.Name, Status: "ok", IPC: 7}}, true
			}
			return Record{}, false
		},
	})
	out := p.Do(cfg)
	if !out.Resumed || out.Result.IPC != 7 || out.Attempts != 2 {
		t.Fatalf("store hit not honoured: %+v", out)
	}
	if calls.Load() != 0 {
		t.Errorf("run executed %d times despite store hit", calls.Load())
	}
	// Misses still execute.
	other := testCfg(t, "fresh")
	if out := p.Do(other); out.Resumed || !out.OK() {
		t.Fatalf("store miss mishandled: %+v", out)
	}
	if calls.Load() != 1 {
		t.Errorf("store miss executed %d times, want 1", calls.Load())
	}
}
