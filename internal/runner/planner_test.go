package runner

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// plannerSweep builds groups×seeds configs (groups distinct names, seeds
// replicas each) shuffled deterministically, so tests and benchmarks plan a
// sweep whose replicas arrive interleaved — the shape the explorer emits.
func plannerSweep(t testing.TB, groups, seeds int) []core.Config {
	t.Helper()
	prof, err := workload.ByAbbr("MUM")
	if err != nil {
		t.Fatal(err)
	}
	cfgs := make([]core.Config, 0, groups*seeds)
	for g := 0; g < groups; g++ {
		base := core.Baseline(prof)
		base.Name = "plan-" + string(rune('A'+g%26)) + string(rune('a'+g/26))
		for s := 1; s <= seeds; s++ {
			cfg := base
			cfg.Seed = uint64(s)
			cfgs = append(cfgs, cfg)
		}
	}
	r := xrand.New(42)
	for i := len(cfgs) - 1; i > 0; i-- {
		j := int(r.Uint64() % uint64(i+1))
		cfgs[i], cfgs[j] = cfgs[j], cfgs[i]
	}
	return cfgs
}

// TestPlannerGroupsReplicas pins the planning contract: the order is a
// permutation, every lane group is contiguous with seeds ascending, groups
// collate by name, and the accounting matches the grid shape.
func TestPlannerGroupsReplicas(t *testing.T) {
	cfgs := plannerSweep(t, 4, 6)
	var pl Planner
	pl.MaxProcs = 8
	pl.Jobs = 8
	plan := pl.Plan(cfgs)

	if len(plan.Order) != len(cfgs) || len(plan.Width) != len(cfgs) {
		t.Fatalf("plan sized %d/%d, want %d", len(plan.Order), len(plan.Width), len(cfgs))
	}
	seen := make([]bool, len(cfgs))
	for _, i := range plan.Order {
		if i < 0 || i >= len(cfgs) || seen[i] {
			t.Fatalf("Order %v is not a permutation of the input", plan.Order)
		}
		seen[i] = true
	}
	for j := 1; j < len(plan.Order); j++ {
		a, b := cfgs[plan.Order[j-1]], cfgs[plan.Order[j]]
		if a.Name > b.Name {
			t.Fatalf("groups out of order at %d: %q after %q", j, b.Name, a.Name)
		}
		if a.Name == b.Name && a.Seed >= b.Seed {
			t.Fatalf("seeds not ascending within group %q at %d", a.Name, j)
		}
	}
	if plan.Groups != 4 {
		t.Errorf("Groups = %d, want 4", plan.Groups)
	}
	// 24 runs over 8 slots → target width 3; 6 seeds per group → two
	// 3-wide batches per group, everything batched.
	if plan.Batched != 24 || plan.Batches != 8 {
		t.Errorf("Batched/Batches = %d/%d, want 24/8", plan.Batched, plan.Batches)
	}
	for j, w := range plan.Width {
		if w != 3 {
			t.Errorf("Width[%d] = %d, want 3", j, w)
		}
	}
	// 8 batches on 8 slots at width 3 saturate the 8-core budget: no
	// spare for intra-run sharding.
	if plan.Shards != 1 {
		t.Errorf("Shards = %d, want 1 (budget saturated)", plan.Shards)
	}
}

// TestPlannerSpareCoresRequestSharding: a sweep too narrow to fill the
// machine asks for auto shards so CapShards can spend the idle cores.
func TestPlannerSpareCoresRequestSharding(t *testing.T) {
	cfgs := plannerSweep(t, 2, 1) // two solo configs
	var pl Planner
	pl.MaxProcs = 16
	pl.Jobs = 16
	plan := pl.Plan(cfgs)
	if plan.Shards != core.ShardsAuto {
		t.Errorf("Shards = %d, want ShardsAuto (2 units on 16 cores)", plan.Shards)
	}
	if plan.Batches != 0 || plan.Batched != 0 {
		t.Errorf("solo configs planned into batches: %+v", plan)
	}
}

// TestPlannerOneCoreDegrade pins the satellite contract: on a 1-core host
// the plan degrades to lanes=1, shards=1 — no batch ever holds more than
// one lane and no run requests intra-run sharding, so a degraded CI box
// never oversubscribes itself and bench capture rows stay honest.
func TestPlannerOneCoreDegrade(t *testing.T) {
	cfgs := plannerSweep(t, 3, 8)
	var pl Planner
	pl.MaxProcs = 1
	pl.Jobs = 1
	plan := pl.Plan(cfgs)
	for j, w := range plan.Width {
		if w != 1 {
			t.Fatalf("Width[%d] = %d, want 1 on a 1-core host", j, w)
		}
	}
	if plan.Shards != 1 {
		t.Errorf("Shards = %d, want 1 on a 1-core host", plan.Shards)
	}
	if plan.Batches != 0 || plan.Batched != 0 {
		t.Errorf("1-core plan still batches lanes: %+v", plan)
	}
}

// TestPlannerDeterministicAcrossPermutations: the planned submission
// sequence (the configs in plan order) is identical no matter how the
// caller permuted the sweep, so planned tables cannot depend on emission
// order.
func TestPlannerDeterministicAcrossPermutations(t *testing.T) {
	base := plannerSweep(t, 3, 4)
	var pl Planner
	pl.MaxProcs = 8
	ref := pl.Plan(base)
	refKeys := make([]string, len(ref.Order))
	for j, i := range ref.Order {
		refKeys[j] = Key(base[i])
	}

	shuffled := append([]core.Config(nil), base...)
	r := xrand.New(7)
	for round := 0; round < 5; round++ {
		for i := len(shuffled) - 1; i > 0; i-- {
			j := int(r.Uint64() % uint64(i+1))
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		}
		plan := pl.Plan(shuffled)
		for j, i := range plan.Order {
			if got := Key(shuffled[i]); got != refKeys[j] {
				t.Fatalf("round %d: planned position %d = %q, want %q", round, j, got, refKeys[j])
			}
		}
	}
}

// TestPlannerZeroAllocs: a warm Planner plans without allocating, so the
// explorer can re-plan every rung for free. This is the same guarantee the
// CI alloc gate pins via BenchmarkSweepPlanner.
func TestPlannerZeroAllocs(t *testing.T) {
	cfgs := plannerSweep(t, 8, 8)
	var pl Planner
	pl.MaxProcs = 8
	pl.Plan(cfgs) // warm the scratch
	if allocs := testing.AllocsPerRun(20, func() { pl.Plan(cfgs) }); allocs != 0 {
		t.Errorf("Plan allocated %.1f times per run, want 0", allocs)
	}
}

// TestDoAllPlannedMatchesDoAll: the planned path returns outcomes in the
// caller's order with per-seed identity intact, coalesces replicas into
// lane batches, and a later unplanned request is served from the same
// cache.
func TestDoAllPlannedMatchesDoAll(t *testing.T) {
	rec := &laneBatchRecorder{}
	var soloRuns atomic.Int64
	p := newPool(t, Options{Jobs: 2,
		RunLanes: rec.run,
		Run: func(_ context.Context, cfg core.Config) (core.Result, error) {
			soloRuns.Add(1)
			return core.Result{Benchmark: cfg.Workload.Abbr, Config: cfg.Name,
				Status: "ok", IPC: float64(cfg.Seed)}, nil
		}})
	cfgs := plannerSweep(t, 2, 6) // 12 runs on 2 jobs → width 6 batches
	pl := Planner{MaxProcs: 8, Jobs: 2}
	outs := p.DoAllWithPlan(context.Background(), cfgs, pl.Plan(cfgs))
	for i, o := range outs {
		if want := Key(cfgs[i]); o.Key != want {
			t.Errorf("outs[%d].Key = %q, want caller-order key %q", i, o.Key, want)
		}
		if !o.OK() || o.Result.IPC != float64(cfgs[i].Seed) {
			t.Errorf("outs[%d] = %+v, want ok carrying seed %d", i, o.Result, cfgs[i].Seed)
		}
	}
	batched := 0
	for _, b := range rec.batches {
		batched += len(b)
	}
	if batched != 12 || soloRuns.Load() != 0 {
		t.Errorf("batched %d seeds, solo %d; planner should coalesce all 12 replicas",
			batched, soloRuns.Load())
	}
	if p.Executed() != 12 {
		t.Errorf("Executed() = %d, want 12", p.Executed())
	}
	if out := p.Do(cfgs[5]); !out.Cached {
		t.Errorf("unplanned repeat missed the cache: %+v", out)
	}
}

// TestDoAllPlannedExplicitRequestsWin: a config's own Lanes/Shards survive
// planning untouched — the plan only fills silence.
func TestDoAllPlannedExplicitRequestsWin(t *testing.T) {
	rec := &laneBatchRecorder{}
	p := newPool(t, Options{Jobs: 1, RunLanes: rec.run, Run: okRun})
	cfgs := plannerSweep(t, 1, 4)
	for i := range cfgs {
		cfgs[i].Lanes = 1 // caller explicitly demands solo runs
	}
	pl := Planner{MaxProcs: 8, Jobs: 1}
	outs := p.DoAllWithPlan(context.Background(), cfgs, pl.Plan(cfgs))
	if len(rec.batches) != 0 {
		t.Errorf("explicit Lanes=1 still produced lane batches %v", rec.batches)
	}
	for i, o := range outs {
		if !o.OK() {
			t.Errorf("outs[%d].Status = %q, want ok", i, o.Result.Status)
		}
	}
}

// BenchmarkSweepPlanner measures a warm re-plan of an explorer-shaped sweep
// (64 groups × 8 seeds, shuffled). It must stay allocation-free: the CI
// bench gate fails on any nonzero allocs/op.
func BenchmarkSweepPlanner(b *testing.B) {
	cfgs := plannerSweep(b, 64, 8)
	var pl Planner
	pl.MaxProcs = 16
	pl.Jobs = 8
	pl.Plan(cfgs) // warm the scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl.Plan(cfgs)
	}
}

// BenchmarkSweepSubmission compares submitting a replica-heavy sweep
// through the naive per-config path against the planner (batched) path,
// with a stub kernel so the measured cost is the runner's own
// orchestration. Not alloc-gated: pool bookkeeping allocates by design.
func BenchmarkSweepSubmission(b *testing.B) {
	laneRun := func(_ context.Context, cfg core.Config, seeds []uint64) ([]core.Result, []error) {
		results := make([]core.Result, len(seeds))
		for i := range seeds {
			results[i] = core.Result{Benchmark: cfg.Workload.Abbr, Config: cfg.Name, Status: "ok"}
		}
		return results, make([]error, len(seeds))
	}
	soloRun := func(_ context.Context, cfg core.Config) (core.Result, error) {
		return core.Result{Benchmark: cfg.Workload.Abbr, Config: cfg.Name, Status: "ok"}, nil
	}
	cfgs := plannerSweep(b, 16, 8)
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := New(context.Background(), Options{Jobs: 4, RunLanes: laneRun, Run: soloRun})
			if err != nil {
				b.Fatal(err)
			}
			p.DoAll(cfgs)
			p.Close()
		}
	})
	b.Run("planned", func(b *testing.B) {
		pl := Planner{MaxProcs: 16, Jobs: 4}
		for i := 0; i < b.N; i++ {
			p, err := New(context.Background(), Options{Jobs: 4, RunLanes: laneRun, Run: soloRun})
			if err != nil {
				b.Fatal(err)
			}
			p.DoAllWithPlan(context.Background(), cfgs, pl.Plan(cfgs))
			p.Close()
		}
	})
}
