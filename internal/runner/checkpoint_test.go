package runner

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "sweep.jsonl")
}

func TestJournalRoundTrip(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Key: "A|MUM|s1|i100", Attempts: 1, Result: core.Result{Benchmark: "MUM", Config: "A", Status: "ok", IPC: 42.5}},
		{Key: "B|MUM|s1|i100", Attempts: 3, Result: core.Result{Benchmark: "MUM", Config: "B", Status: "stall"}},
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, skipped, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("skipped = %d, want 0", skipped)
	}
	if len(got) != 2 || got[0] != recs[0] || got[1] != recs[1] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestLoadJournalSkipsCorruptLines(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Key: "good|run|s1|i1", Attempts: 1,
		Result: core.Result{Status: "ok"}}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// Simulate a crash mid-write: a garbage line and a truncated record.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("this is not json\n")
	f.WriteString(`{"key":"torn|run|s1|i1","attempts":1,"result":{"Stat`)
	f.Close()

	got, skipped, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Key != "good|run|s1|i1" {
		t.Fatalf("records = %+v, want just the good one", got)
	}
	if skipped != 2 {
		t.Errorf("skipped = %d, want 2", skipped)
	}
}

func TestLoadJournalMissingFile(t *testing.T) {
	recs, skipped, err := LoadJournal(journalPath(t))
	if err != nil || recs != nil || skipped != 0 {
		t.Errorf("missing journal: recs=%v skipped=%d err=%v, want all zero", recs, skipped, err)
	}
}

func TestLoadJournalRejectsFutureVersion(t *testing.T) {
	path := journalPath(t)
	os.WriteFile(path, []byte(`{"kind":"journal-header","version":999}`+"\n"), 0o644)
	if _, _, err := LoadJournal(path); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future-version journal accepted: %v", err)
	}
}

// TestResumeSkipsFinishedRuns is the core checkpoint contract: a second
// pool resuming the journal must not re-execute journaled runs, and the
// journal must never hold a duplicate key.
func TestResumeSkipsFinishedRuns(t *testing.T) {
	path := journalPath(t)
	cfgA, cfgB, cfgC := testCfg(t, "A"), testCfg(t, "B"), testCfg(t, "C")

	p1, err := New(context.Background(), Options{Jobs: 2, Checkpoint: path, Run: okRun})
	if err != nil {
		t.Fatal(err)
	}
	p1.DoAll([]core.Config{cfgA, cfgB})
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}

	executed := make(map[string]int)
	p2, err := New(context.Background(), Options{Jobs: 2, Checkpoint: path, Resume: true,
		Run: func(ctx context.Context, cfg core.Config) (core.Result, error) {
			executed[cfg.Name]++
			return okRun(ctx, cfg)
		}})
	if err != nil {
		t.Fatal(err)
	}
	outs := p2.DoAll([]core.Config{cfgA, cfgB, cfgC})
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}

	if len(executed) != 1 || executed["C"] != 1 {
		t.Errorf("resumed pool executed %v, want only C once", executed)
	}
	if !outs[0].Resumed || !outs[1].Resumed || outs[2].Resumed {
		t.Errorf("resumed flags = %v %v %v, want true true false",
			outs[0].Resumed, outs[1].Resumed, outs[2].Resumed)
	}
	recs, _, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("journal has %d records, want 3 (A, B, C once each)", len(recs))
	}
	seen := make(map[string]bool)
	for _, r := range recs {
		if seen[r.Key] {
			t.Errorf("journal key %s appears twice: a finished run re-executed", r.Key)
		}
		seen[r.Key] = true
	}
}

// Canceled and timed-out runs are not "finished": they must not be
// journaled, so a resumed sweep re-executes them.
func TestTransientOutcomesNotJournaled(t *testing.T) {
	path := journalPath(t)
	p, err := New(context.Background(), Options{Jobs: 1, Checkpoint: path,
		Run: func(_ context.Context, cfg core.Config) (core.Result, error) {
			return core.Result{Benchmark: cfg.Workload.Abbr, Config: cfg.Name, Status: "timeout"}, nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	p.Do(testCfg(t, "slow"))
	p.Close()
	recs, _, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("timeout outcome journaled: %+v", recs)
	}
}

// TestLoadJournalTruncatedFinalLine covers the canonical crash wound in
// isolation: a journal whose final record was torn mid-write (no garbage
// lines, no trailing newline). Every intact record loads, the torn line is
// counted exactly once for the caller's warning, and reopening the journal
// seals the tear so the next record starts cleanly.
func TestLoadJournalTruncatedFinalLine(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"A|MUM|s1|i10", "B|MUM|s1|i10"} {
		if err := j.Append(Record{Key: key, Attempts: 1, Result: core.Result{Status: "ok", IPC: 3}}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Tear the last record the way kill -9 during write(2) would: keep a
	// prefix of its JSON with no newline.
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"C|MUM|s1|i10","attempts":1,"result":{"IPC":`)
	f.Close()

	recs, skipped, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Key != "A|MUM|s1|i10" || recs[1].Key != "B|MUM|s1|i10" {
		t.Fatalf("records after torn final line: %+v, want the two intact ones", recs)
	}
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1 (the torn final line)", skipped)
	}

	// Reopen-and-append must seal the tear: the new record lands on its
	// own line and both it and the intact prefix survive a second load.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Append(Record{Key: "D|MUM|s1|i10", Attempts: 1, Result: core.Result{Status: "ok"}}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	recs, skipped, err = LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[2].Key != "D|MUM|s1|i10" || skipped != 1 {
		t.Fatalf("after sealing: recs=%+v skipped=%d, want 3 records and 1 skip", recs, skipped)
	}
	if len(full) == 0 {
		t.Fatal("journal unexpectedly empty before the tear")
	}
}
