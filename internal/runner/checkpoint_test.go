package runner

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"repro/internal/core"
	"repro/internal/iofault"
)

func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "sweep.jsonl")
}

func TestJournalRoundTrip(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Key: "A|MUM|s1|i100", Attempts: 1, Result: core.Result{Benchmark: "MUM", Config: "A", Status: "ok", IPC: 42.5}},
		{Key: "B|MUM|s1|i100", Attempts: 3, Result: core.Result{Benchmark: "MUM", Config: "B", Status: "stall"}},
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, stats, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Skipped != 0 || stats.Quarantined != 0 {
		t.Errorf("replay stats = %+v, want clean", stats)
	}
	if len(got) != 2 || got[0] != recs[0] || got[1] != recs[1] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestLoadJournalQuarantinesCorruptLines(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Key: "good|run|s1|i1", Attempts: 1,
		Result: core.Result{Status: "ok"}}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// Simulate a crash mid-write preceded by real corruption: a garbage
	// line (quarantined to the sidecar) and a truncated record (the torn
	// final line, counted as skipped).
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("this is not json\n")
	f.WriteString(`{"key":"torn|run|s1|i1","attempts":1,"result":{"Stat`)
	f.Close()

	got, stats, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Key != "good|run|s1|i1" {
		t.Fatalf("records = %+v, want just the good one", got)
	}
	if stats.Quarantined != 1 || stats.Skipped != 1 {
		t.Errorf("stats = %+v, want 1 quarantined + 1 skipped", stats)
	}
	side, err := os.ReadFile(QuarantinePath(path))
	if err != nil {
		t.Fatalf("quarantine sidecar missing: %v", err)
	}
	if !strings.Contains(string(side), "this is not json") {
		t.Errorf("sidecar does not preserve the corrupt line: %q", side)
	}
}

// TestFlippedByteQuarantinesExactlyOne is the acceptance criterion for the
// v2 framing: a single flipped byte in the middle of the file must cost
// exactly the record it hit — every other record replays, the corrupt one
// is quarantined, and nothing is falsely accepted. (Under the v1 plain-JSON
// format a flipped byte inside a string value still parsed and was served
// as truth.)
func TestFlippedByteQuarantinesExactlyOne(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"A|MUM|s1|i10", "B|MUM|s1|i10", "C|MUM|s1|i10"}
	for _, key := range keys {
		if err := j.Append(Record{Key: key, Attempts: 1, Result: core.Result{Status: "ok", IPC: 7.25}}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the middle record's JSON payload.
	mid := []byte(`"key":"B|MUM`)
	i := strings.Index(string(raw), string(mid))
	if i < 0 {
		t.Fatal("middle record not found in journal bytes")
	}
	raw[i+8] ^= 0x20 // 'B' -> 'b': still perfectly valid JSON, wrong data
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	got, stats, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Key != keys[0] || got[1].Key != keys[2] {
		t.Fatalf("records after flip = %+v, want A and C", got)
	}
	if stats.Quarantined != 1 || stats.Skipped != 0 {
		t.Errorf("stats = %+v, want exactly 1 quarantined, 0 skipped", stats)
	}
	if _, err := os.Stat(QuarantinePath(path)); err != nil {
		t.Errorf("quarantine sidecar missing: %v", err)
	}
	// The journal must remain appendable past the wound.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Append(Record{Key: "D|MUM|s1|i10", Attempts: 1, Result: core.Result{Status: "ok"}}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	got, stats, err = LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || stats.Quarantined != 1 {
		t.Fatalf("after append past wound: %d records, stats %+v", len(got), stats)
	}
}

// TestV1JournalMigration pins that a journal written by the previous
// format (version-1 header, plain JSONL records, no checksums) still
// replays, and that appending to it writes v2 frames the loader accepts
// alongside the legacy lines.
func TestV1JournalMigration(t *testing.T) {
	path := journalPath(t)
	v1 := `{"kind":"journal-header","version":1}
{"key":"A|MUM|s1|i10","attempts":1,"result":{"Benchmark":"MUM","Config":"A","Status":"ok","IPC":3.5}}
{"key":"B|MUM|s1|i10","attempts":2,"result":{"Benchmark":"MUM","Config":"B","Status":"stall"}}
`
	if err := os.WriteFile(path, []byte(v1), 0o644); err != nil {
		t.Fatal(err)
	}
	got, stats, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Key != "A|MUM|s1|i10" || got[1].Attempts != 2 {
		t.Fatalf("v1 journal replay = %+v", got)
	}
	if stats.Skipped != 0 || stats.Quarantined != 0 {
		t.Errorf("v1 replay stats = %+v, want clean", stats)
	}

	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Key: "C|MUM|s1|i10", Attempts: 1, Result: core.Result{Status: "ok"}}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	raw, _ := os.ReadFile(path)
	if !strings.Contains(string(raw), "\n*") {
		t.Errorf("append to v1 journal did not write a v2 frame:\n%s", raw)
	}
	got, _, err = LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2].Key != "C|MUM|s1|i10" {
		t.Fatalf("mixed v1+v2 replay = %+v", got)
	}
}

func TestLoadJournalMissingFile(t *testing.T) {
	recs, stats, err := LoadJournal(journalPath(t))
	if err != nil || recs != nil || stats != (ReplayStats{}) {
		t.Errorf("missing journal: recs=%v stats=%+v err=%v, want all zero", recs, stats, err)
	}
}

func TestLoadJournalRejectsFutureVersion(t *testing.T) {
	path := journalPath(t)
	os.WriteFile(path, []byte(`{"kind":"journal-header","version":999}`+"\n"), 0o644)
	if _, _, err := LoadJournal(path); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future-version journal accepted: %v", err)
	}
}

// TestWoundedJournalRefusesThenHeals: an append that fails fsync wounds
// the journal (read-only, error surfaced); once the fault clears the next
// append heals — truncating back to the durable boundary — and the file
// replays with zero corruption.
func TestWoundedJournalRefusesThenHeals(t *testing.T) {
	ff := iofault.NewFaultFS(iofault.OS)
	path := journalPath(t)
	j, err := OpenJournalFS(ff, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Key: "A|MUM|s1|i1", Attempts: 1, Result: core.Result{Status: "ok"}}); err != nil {
		t.Fatal(err)
	}

	ff.Inject(iofault.Fault{Op: "sync", Err: syscall.ENOSPC})
	err = j.Append(Record{Key: "B|MUM|s1|i1", Attempts: 1, Result: core.Result{Status: "ok"}})
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append under ENOSPC = %v, want ENOSPC", err)
	}
	if j.Wounded() == nil {
		t.Fatal("journal not wounded after fsync failure")
	}
	// While wounded and the disk still broken, appends refuse loudly.
	ff.Inject(iofault.Fault{Op: "truncate", Err: syscall.EIO})
	if err := j.Append(Record{Key: "C|MUM|s1|i1", Attempts: 1, Result: core.Result{Status: "ok"}}); !errors.Is(err, ErrWounded) {
		t.Fatalf("wounded append = %v, want ErrWounded", err)
	}

	// Fault cleared: the next append heals (truncate to the durable
	// boundary) and succeeds.
	if err := j.Append(Record{Key: "D|MUM|s1|i1", Attempts: 1, Result: core.Result{Status: "ok"}}); err != nil {
		t.Fatalf("append after fault cleared: %v", err)
	}
	if j.Wounded() != nil {
		t.Errorf("journal still wounded after heal: %v", j.Wounded())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, stats, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Quarantined != 0 || stats.Skipped != 0 {
		t.Errorf("healed journal replays dirty: %+v", stats)
	}
	keys := make([]string, len(recs))
	for i, r := range recs {
		keys[i] = r.Key
	}
	if len(recs) != 2 || recs[0].Key != "A|MUM|s1|i1" || recs[1].Key != "D|MUM|s1|i1" {
		t.Fatalf("healed journal holds %v, want [A D]", keys)
	}
}

// TestJournalPowerCut drives the nastiest realistic wound: a filesystem
// that acknowledges fsync without making data durable, then loses power.
// Only the honestly-synced prefix survives; replay must recover every
// record in it, quarantine or skip the garbage, and never fabricate a
// record (zero false positives).
func TestJournalPowerCut(t *testing.T) {
	for _, garble := range []bool{false, true} {
		ff := iofault.NewFaultFS(iofault.OS)
		path := journalPath(t)
		j, err := OpenJournalFS(ff, path)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Append(Record{Key: "durable|MUM|s1|i1", Attempts: 1, Result: core.Result{Status: "ok", IPC: 1}}); err != nil {
			t.Fatal(err)
		}
		// From here on, fsync lies: records appear committed but are not.
		ff.DropSyncs(true)
		for _, key := range []string{"lost1|MUM|s1|i1", "lost2|MUM|s1|i1"} {
			if err := j.Append(Record{Key: key, Attempts: 1, Result: core.Result{Status: "ok"}}); err != nil {
				t.Fatal(err)
			}
		}
		if err := ff.PowerCut(1234, garble); err != nil {
			t.Fatal(err)
		}

		recs, stats, err := LoadJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		found := map[string]bool{}
		for _, r := range recs {
			found[r.Key] = true
			switch r.Key {
			case "durable|MUM|s1|i1", "lost1|MUM|s1|i1", "lost2|MUM|s1|i1":
			default:
				t.Fatalf("garble=%v: replay fabricated record %+v", garble, r)
			}
		}
		if !found["durable|MUM|s1|i1"] {
			t.Fatalf("garble=%v: honestly-synced record lost: %+v", garble, recs)
		}
		// Whatever survived of the unsynced tail must be either a bit-exact
		// record (kept), garbage (quarantined/skipped) — never a corrupted
		// record accepted as valid. CRC gives us that; here we just assert
		// the loader terminated with sane accounting.
		if stats.Quarantined < 0 || stats.Skipped > 1 {
			t.Errorf("garble=%v: stats = %+v", garble, stats)
		}

		// The journal must reopen and accept new records after the cut.
		j2, err := OpenJournalFS(iofault.NewFaultFS(iofault.OS), path)
		if err != nil {
			t.Fatal(err)
		}
		if err := j2.Append(Record{Key: "post|MUM|s1|i1", Attempts: 1, Result: core.Result{Status: "ok"}}); err != nil {
			t.Fatal(err)
		}
		j2.Close()
		recs2, _, err := LoadJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		if !containsKey(recs2, "post|MUM|s1|i1") || !containsKey(recs2, "durable|MUM|s1|i1") {
			t.Fatalf("garble=%v: post-cut append lost records: %+v", garble, recs2)
		}
	}
}

func containsKey(recs []Record, key string) bool {
	for _, r := range recs {
		if r.Key == key {
			return true
		}
	}
	return false
}

// TestResumeSkipsFinishedRuns is the core checkpoint contract: a second
// pool resuming the journal must not re-execute journaled runs, and the
// journal must never hold a duplicate key.
func TestResumeSkipsFinishedRuns(t *testing.T) {
	path := journalPath(t)
	cfgA, cfgB, cfgC := testCfg(t, "A"), testCfg(t, "B"), testCfg(t, "C")

	p1, err := New(context.Background(), Options{Jobs: 2, Checkpoint: path, Run: okRun})
	if err != nil {
		t.Fatal(err)
	}
	p1.DoAll([]core.Config{cfgA, cfgB})
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}

	executed := make(map[string]int)
	p2, err := New(context.Background(), Options{Jobs: 2, Checkpoint: path, Resume: true,
		Run: func(ctx context.Context, cfg core.Config) (core.Result, error) {
			executed[cfg.Name]++
			return okRun(ctx, cfg)
		}})
	if err != nil {
		t.Fatal(err)
	}
	outs := p2.DoAll([]core.Config{cfgA, cfgB, cfgC})
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}

	if len(executed) != 1 || executed["C"] != 1 {
		t.Errorf("resumed pool executed %v, want only C once", executed)
	}
	if !outs[0].Resumed || !outs[1].Resumed || outs[2].Resumed {
		t.Errorf("resumed flags = %v %v %v, want true true false",
			outs[0].Resumed, outs[1].Resumed, outs[2].Resumed)
	}
	recs, _, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("journal has %d records, want 3 (A, B, C once each)", len(recs))
	}
	seen := make(map[string]bool)
	for _, r := range recs {
		if seen[r.Key] {
			t.Errorf("journal key %s appears twice: a finished run re-executed", r.Key)
		}
		seen[r.Key] = true
	}
}

// Canceled and timed-out runs are not "finished": they must not be
// journaled, so a resumed sweep re-executes them.
func TestTransientOutcomesNotJournaled(t *testing.T) {
	path := journalPath(t)
	p, err := New(context.Background(), Options{Jobs: 1, Checkpoint: path,
		Run: func(_ context.Context, cfg core.Config) (core.Result, error) {
			return core.Result{Benchmark: cfg.Workload.Abbr, Config: cfg.Name, Status: "timeout"}, nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	p.Do(testCfg(t, "slow"))
	p.Close()
	recs, _, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("timeout outcome journaled: %+v", recs)
	}
}

// TestLoadJournalTruncatedFinalLine covers the canonical crash wound in
// isolation: a journal whose final record was torn mid-write (no garbage
// lines, no trailing newline). Every intact record loads, the torn line is
// counted exactly once for the caller's warning, and reopening the journal
// seals the tear so the next record starts cleanly (after which the sealed
// wreckage reads as one quarantined line, not a tear).
func TestLoadJournalTruncatedFinalLine(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"A|MUM|s1|i10", "B|MUM|s1|i10"} {
		if err := j.Append(Record{Key: key, Attempts: 1, Result: core.Result{Status: "ok", IPC: 3}}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Tear the last record the way kill -9 during write(2) would: keep a
	// prefix of its frame with no newline.
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`*deadbeef 52 {"key":"C|MUM|s1|i10","attempts":1,"result":{"IPC":`)
	f.Close()

	recs, stats, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Key != "A|MUM|s1|i10" || recs[1].Key != "B|MUM|s1|i10" {
		t.Fatalf("records after torn final line: %+v, want the two intact ones", recs)
	}
	if stats.Skipped != 1 || stats.Quarantined != 0 {
		t.Errorf("stats = %+v, want 1 skipped (the torn final line), 0 quarantined", stats)
	}

	// Reopen-and-append must seal the tear: the new record lands on its
	// own line and both it and the intact prefix survive a second load.
	// The sealed wreckage is now a complete (newline-terminated) corrupt
	// line, so it moves from "skipped" to "quarantined".
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Append(Record{Key: "D|MUM|s1|i10", Attempts: 1, Result: core.Result{Status: "ok"}}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	recs, stats, err = LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[2].Key != "D|MUM|s1|i10" {
		t.Fatalf("after sealing: recs=%+v, want 3 records", recs)
	}
	if stats.Quarantined != 1 || stats.Skipped != 0 {
		t.Errorf("after sealing: stats = %+v, want the sealed tear quarantined", stats)
	}
	if len(full) == 0 {
		t.Fatal("journal unexpectedly empty before the tear")
	}
}
