package runner

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/core"
)

// journalVersion is bumped whenever the record schema changes
// incompatibly; Load rejects journals from a different version.
const journalVersion = 1

// Record is one checkpointed run: the cache key, how many attempts it
// took, and the full Result so a resumed sweep renders identical tables
// without re-simulating.
type Record struct {
	Key      string      `json:"key"`
	Attempts int         `json:"attempts"`
	Result   core.Result `json:"result"`
}

// journalHeader is the first line of every journal file.
type journalHeader struct {
	Kind    string `json:"kind"`
	Version int    `json:"version"`
}

// Journal appends checkpoint records to a JSONL file, fsyncing after
// every record so a killed process loses at most the runs still in
// flight — never a completed one.
type Journal struct {
	f *os.File
}

// OpenJournal opens (or creates) the journal at path for appending,
// writing the version header when the file is new or empty. A file whose
// last line was torn by a crash (no trailing newline) is sealed with one
// first, so the next record starts on its own line instead of merging
// into the wreckage.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runner: open checkpoint: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("runner: stat checkpoint: %w", err)
	}
	j := &Journal{f: f}
	if st.Size() == 0 {
		hdr, _ := json.Marshal(journalHeader{Kind: "journal-header", Version: journalVersion})
		if err := j.writeLine(hdr); err != nil {
			f.Close()
			return nil, err
		}
		return j, nil
	}
	last := make([]byte, 1)
	if _, err := f.ReadAt(last, st.Size()-1); err != nil {
		f.Close()
		return nil, fmt.Errorf("runner: inspect checkpoint tail: %w", err)
	}
	if last[0] != '\n' {
		if _, err := f.Write([]byte{'\n'}); err != nil {
			f.Close()
			return nil, fmt.Errorf("runner: seal torn checkpoint line: %w", err)
		}
	}
	return j, nil
}

// Append writes one record and forces it to stable storage.
func (j *Journal) Append(rec Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("runner: encode checkpoint record: %w", err)
	}
	return j.writeLine(line)
}

func (j *Journal) writeLine(line []byte) error {
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("runner: write checkpoint: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("runner: fsync checkpoint: %w", err)
	}
	return nil
}

// Close closes the journal file.
func (j *Journal) Close() error { return j.f.Close() }

// LoadJournal reads every valid record from the journal at path. Corrupt
// or truncated lines — the expected wound of a process killed mid-write —
// are skipped and counted, never fatal: losing one record costs one
// re-run, while refusing the file would cost the whole sweep. A missing
// file yields no records and no error (a fresh sweep with -resume is
// legal). When the same key appears more than once the last record wins.
func LoadJournal(path string) (recs []Record, skipped int, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("runner: open checkpoint for resume: %w", err)
	}
	defer f.Close()

	byKey := make(map[string]int) // key -> index in recs
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if first {
			first = false
			var hdr journalHeader
			if json.Unmarshal(line, &hdr) == nil && hdr.Kind == "journal-header" {
				if hdr.Version != journalVersion {
					return nil, 0, fmt.Errorf("runner: checkpoint %s is version %d, want %d",
						path, hdr.Version, journalVersion)
				}
				continue
			}
			// Headerless journal: fall through and try the line as a record.
		}
		var rec Record
		if json.Unmarshal(line, &rec) != nil || rec.Key == "" {
			skipped++
			continue
		}
		if i, ok := byKey[rec.Key]; ok {
			recs[i] = rec
			continue
		}
		byKey[rec.Key] = len(recs)
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("runner: read checkpoint: %w", err)
	}
	return recs, skipped, nil
}
