package runner

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strconv"

	"repro/internal/core"
	"repro/internal/iofault"
)

// journalVersion is the format written by this build. Version 2 frames
// every record with a CRC32C and an explicit length so replay detects a
// corrupt record anywhere in the file — not just a torn final line — and
// quarantines it instead of silently accepting flipped bytes that happen
// to still parse as JSON. Version 1 (plain JSONL, no checksums) remains
// readable for migration: a v1 journal replays, and appends to it simply
// start writing v2 frames (the loader accepts both line formats in any
// mix).
const journalVersion = 2

// oldestReadableVersion is the floor for migration reads.
const oldestReadableVersion = 1

// castagnoli is the CRC32C table (the polynomial used by ext4, btrfs and
// iSCSI for exactly this job).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrWounded marks a journal that failed a durable write. A wounded
// journal refuses further appends (each attempt first tries to heal:
// truncate back to the last fsynced boundary and retry) so that no caller
// ever believes a record durable that the disk rejected.
var ErrWounded = errors.New("journal wounded: a durable write failed; appends are refused until a retry heals it")

// Record is one checkpointed run: the cache key, how many attempts it
// took, and the full Result so a resumed sweep renders identical tables
// without re-simulating.
type Record struct {
	Key      string      `json:"key"`
	Attempts int         `json:"attempts"`
	Result   core.Result `json:"result"`
}

// journalHeader is the first line of every journal file.
type journalHeader struct {
	Kind    string `json:"kind"`
	Version int    `json:"version"`
}

// ReplayStats summarizes what LoadJournal found besides valid records.
type ReplayStats struct {
	// Skipped counts torn final lines — the expected wound of a process
	// killed mid-write. At most 1 per crash; sealed on the next open.
	Skipped int
	// Quarantined counts corrupt records found anywhere else in the file
	// (CRC mismatch, length mismatch, garbage bytes). Each one's raw line
	// is preserved in the .corrupt sidecar for forensics; replay continues
	// past it, so one flipped byte costs one re-run, never the file.
	Quarantined int
	// SidecarErr is the first error writing the quarantine sidecar.
	// Replay itself still succeeded; callers should log it loudly.
	SidecarErr error
}

// QuarantinePath is the sidecar file that receives corrupt journal lines.
func QuarantinePath(path string) string { return path + ".corrupt" }

// Journal appends checkpoint records to a CRC-framed JSONL file, fsyncing
// after every record so a killed process loses at most the runs still in
// flight — never a completed one. Methods are not safe for concurrent use;
// the Pool and service Store serialize access under their own locks.
type Journal struct {
	fs   iofault.FS
	f    iofault.File
	path string

	size    int64 // bytes written (best effort; authoritative after sync)
	synced  int64 // bytes known durable (last successful fsync)
	wounded error // first durable-write failure; non-nil = read-only
}

// OpenJournal opens (or creates) the journal at path on the real
// filesystem; see OpenJournalFS.
func OpenJournal(path string) (*Journal, error) {
	return OpenJournalFS(iofault.OS, path)
}

// OpenJournalFS opens (or creates) the journal at path for appending
// through fs, writing the version header when the file is new or empty. A
// file whose last line was torn by a crash (no trailing newline) is sealed
// with one first — and the seal is fsynced and error-checked, so a failure
// there surfaces immediately instead of leaving a half-sealed file behind.
func OpenJournalFS(fs iofault.FS, path string) (*Journal, error) {
	if fs == nil {
		fs = iofault.OS
	}
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runner: open checkpoint: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("runner: stat checkpoint: %w", err)
	}
	j := &Journal{fs: fs, f: f, path: path, size: st.Size(), synced: st.Size()}
	if st.Size() == 0 {
		hdr, _ := json.Marshal(journalHeader{Kind: "journal-header", Version: journalVersion})
		// The header is not a record append: a crash while writing it
		// leaves an empty-or-torn header, which replay treats as a fresh
		// (or headerless) journal — trivially safe, so no crashpoints.
		if err := j.writeLine(append(hdr, '\n'), false); err != nil {
			f.Close()
			return nil, err
		}
		return j, nil
	}
	last := make([]byte, 1)
	if _, err := f.ReadAt(last, st.Size()-1); err != nil {
		f.Close()
		return nil, fmt.Errorf("runner: inspect checkpoint tail: %w", err)
	}
	if last[0] != '\n' {
		// Seal the tear. The seal itself must be durable and loud: an
		// error here means the device is refusing writes, and pretending
		// the journal is appendable would wound it on the first record.
		if _, err := f.Write([]byte{'\n'}); err != nil {
			f.Close()
			return nil, fmt.Errorf("runner: seal torn checkpoint line: %w", err)
		}
		iofault.Crashpoint(iofault.CPSealBeforeSync)
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("runner: fsync torn-line seal: %w", err)
		}
		iofault.Crashpoint(iofault.CPSealAfterSync)
		j.size++
		j.synced = j.size
	}
	return j, nil
}

// Append frames, writes and fsyncs one record. On a wounded journal it
// first attempts to heal — truncate back to the last durable boundary so
// a torn partial write cannot corrupt the next record — and refuses (with
// ErrWounded) if the heal fails. An append that fails wounds the journal.
func (j *Journal) Append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("runner: encode checkpoint record: %w", err)
	}
	if j.wounded != nil {
		if err := j.heal(); err != nil {
			return fmt.Errorf("runner: %w (cause: %v; heal failed: %v)", ErrWounded, j.wounded, err)
		}
	}
	return j.writeLine(frameRecord(payload), true)
}

// heal truncates the file back to the last fsynced boundary, discarding
// whatever a failed append left behind. On success the journal is
// appendable again (the caller's write+fsync is the real probe).
func (j *Journal) heal() error {
	if err := j.f.Truncate(j.synced); err != nil {
		return err
	}
	j.size = j.synced
	j.wounded = nil
	return nil
}

// writeLine writes one newline-terminated line and forces it to stable
// storage, advancing the durable horizon only after a clean fsync. crash
// enables the append crashpoints (record appends only — the chaos
// harness's hit counting must see exactly one hit per record).
func (j *Journal) writeLine(line []byte, crash bool) error {
	if crash {
		iofault.Crashpoint(iofault.CPAppendBeforeWrite)
	}
	n, err := j.f.Write(line)
	j.size += int64(n)
	if err != nil {
		j.wounded = err
		return fmt.Errorf("runner: write checkpoint: %w", err)
	}
	if crash {
		iofault.Crashpoint(iofault.CPAppendAfterWrite)
	}
	if err := j.f.Sync(); err != nil {
		j.wounded = err
		return fmt.Errorf("runner: fsync checkpoint: %w", err)
	}
	j.synced = j.size
	if crash {
		iofault.Crashpoint(iofault.CPAppendAfterSync)
	}
	return nil
}

// Wounded returns the first durable-write failure, or nil for a healthy
// journal.
func (j *Journal) Wounded() error { return j.wounded }

// Path returns the journal file path.
func (j *Journal) Path() string { return j.path }

// Close closes the journal file. A healthy journal is fsynced first (and
// the error checked — records already acknowledged were each fsynced by
// Append, but this catches metadata-only failures); a wounded journal is
// just closed, its failure already surfaced by Append.
func (j *Journal) Close() error {
	if j.wounded == nil {
		if err := j.f.Sync(); err != nil {
			j.wounded = err
			j.f.Close()
			return fmt.Errorf("runner: fsync checkpoint on close: %w", err)
		}
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("runner: close checkpoint: %w", err)
	}
	return nil
}

// frameRecord wraps a JSON payload in the v2 frame:
//
//	*<crc32c hex8> <payload length> <payload>\n
//
// The leading '*' cannot begin a JSON value, so v1 lines and v2 frames
// coexist unambiguously in one file.
func frameRecord(payload []byte) []byte {
	crc := crc32.Checksum(payload, castagnoli)
	line := make([]byte, 0, len(payload)+20)
	line = append(line, fmt.Sprintf("*%08x %d ", crc, len(payload))...)
	line = append(line, payload...)
	return append(line, '\n')
}

// parseFrame validates a v2 frame and returns its payload.
func parseFrame(line []byte) (payload []byte, ok bool) {
	// Shortest legal frame: "*%08x 0 " (empty payload) = 12 bytes.
	if len(line) < 12 || line[0] != '*' || line[9] != ' ' {
		return nil, false
	}
	crcWant, err := strconv.ParseUint(string(line[1:9]), 16, 32)
	if err != nil {
		return nil, false
	}
	rest := line[10:]
	sp := bytes.IndexByte(rest, ' ')
	if sp <= 0 {
		return nil, false
	}
	n, err := strconv.Atoi(string(rest[:sp]))
	if err != nil || n < 0 {
		return nil, false
	}
	payload = rest[sp+1:]
	if len(payload) != n {
		return nil, false
	}
	if crc32.Checksum(payload, castagnoli) != uint32(crcWant) {
		return nil, false
	}
	return payload, true
}

// LoadJournal reads every valid record from the journal at path on the
// real filesystem; see LoadJournalFS.
func LoadJournal(path string) (recs []Record, stats ReplayStats, err error) {
	return LoadJournalFS(iofault.OS, path)
}

// LoadJournalFS reads every valid record from the journal at path.
// Corruption is never fatal: a torn final line (the expected wound of a
// killed process) is skipped and counted, and a corrupt record anywhere
// else — CRC mismatch, length mismatch, garbage — is copied to the
// .corrupt sidecar and counted as quarantined while every other record
// replays. Losing one record costs one re-run; refusing the file would
// cost the whole sweep. A missing file yields no records and no error (a
// fresh sweep with -resume is legal). When the same key appears more than
// once the last record wins.
func LoadJournalFS(fs iofault.FS, path string) (recs []Record, stats ReplayStats, err error) {
	if fs == nil {
		fs = iofault.OS
	}
	f, err := fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ReplayStats{}, nil
		}
		return nil, ReplayStats{}, fmt.Errorf("runner: open checkpoint for resume: %w", err)
	}
	defer f.Close()

	var sidecar iofault.File
	defer func() {
		if sidecar != nil {
			if serr := sidecar.Sync(); serr != nil && stats.SidecarErr == nil {
				stats.SidecarErr = serr
			}
			if cerr := sidecar.Close(); cerr != nil && stats.SidecarErr == nil {
				stats.SidecarErr = cerr
			}
		}
	}()
	quarantine := func(line []byte) {
		stats.Quarantined++
		if stats.SidecarErr != nil {
			return
		}
		if sidecar == nil {
			sc, oerr := fs.OpenFile(QuarantinePath(path), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if oerr != nil {
				stats.SidecarErr = oerr
				return
			}
			sidecar = sc
		}
		iofault.Crashpoint(iofault.CPQuarantineBeforeWrite)
		if _, werr := sidecar.Write(append(line, '\n')); werr != nil {
			stats.SidecarErr = werr
		}
	}

	byKey := make(map[string]int) // key -> index in recs
	rd := bufio.NewReaderSize(f, 64*1024)
	first := true
	for {
		line, rerr := rd.ReadBytes('\n')
		torn := false
		if rerr == io.EOF {
			if len(line) == 0 {
				break
			}
			torn = true // final line has no newline: a mid-write crash
		} else if rerr != nil {
			return nil, stats, fmt.Errorf("runner: read checkpoint: %w", rerr)
		} else {
			line = line[:len(line)-1] // strip '\n'
		}
		if len(line) == 0 {
			continue
		}
		if first {
			first = false
			var hdr journalHeader
			if json.Unmarshal(line, &hdr) == nil && hdr.Kind == "journal-header" {
				if hdr.Version < oldestReadableVersion || hdr.Version > journalVersion {
					return nil, stats, fmt.Errorf("runner: checkpoint %s is version %d, want %d..%d",
						path, hdr.Version, oldestReadableVersion, journalVersion)
				}
				continue
			}
			// Headerless journal: fall through and try the line as a record.
		}
		var rec Record
		valid := false
		if line[0] == '*' {
			if payload, ok := parseFrame(line); ok {
				valid = json.Unmarshal(payload, &rec) == nil && rec.Key != ""
			}
		} else {
			// Legacy v1 record: plain JSON, parseability is the only check.
			valid = json.Unmarshal(line, &rec) == nil && rec.Key != ""
		}
		switch {
		case valid:
			if i, ok := byKey[rec.Key]; ok {
				recs[i] = rec
			} else {
				byKey[rec.Key] = len(recs)
				recs = append(recs, rec)
			}
		case torn:
			stats.Skipped++
		default:
			quarantine(line)
		}
		if torn {
			break
		}
	}
	return recs, stats, nil
}
