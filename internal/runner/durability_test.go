package runner

import (
	"context"
	"errors"
	"sync/atomic"
	"syscall"
	"testing"

	"repro/internal/core"
)

// TestPersistFailureNotCached is the pool half of the daemon's durability
// contract: an outcome whose Persist hook fails is returned as a
// non-cached "io_error", and a later request for the same key re-executes
// the run; once Persist succeeds the outcome is cached like any other.
func TestPersistFailureNotCached(t *testing.T) {
	var fail atomic.Bool
	fail.Store(true)
	var persisted atomic.Int64
	p := newPool(t, Options{Jobs: 1,
		Run: okRun,
		Persist: func(rec Record) error {
			if fail.Load() {
				return syscall.ENOSPC
			}
			persisted.Add(1)
			return nil
		}})
	cfg := testCfg(t, "durable")

	out := p.Do(cfg)
	if out.Result.Status != "io_error" {
		t.Fatalf("status under persist failure = %q, want io_error", out.Result.Status)
	}
	if !errors.Is(out.Err, syscall.ENOSPC) {
		t.Errorf("outcome Err = %v, want the persist ENOSPC", out.Err)
	}
	if out.Cached || out.Resumed {
		t.Errorf("io_error outcome flagged cached=%v resumed=%v", out.Cached, out.Resumed)
	}

	// The failed outcome must not have been cached: the next request
	// re-executes rather than serving the unpersisted result from memory.
	out = p.Do(cfg)
	if out.Cached {
		t.Fatal("unpersisted outcome was served from cache")
	}
	if p.Executed() != 2 {
		t.Errorf("Executed = %d after two requests under persist failure, want 2", p.Executed())
	}

	// Fault clears: re-execution persists, caches, and later calls hit.
	fail.Store(false)
	out = p.Do(cfg)
	if out.Result.Status != "ok" || out.Cached {
		t.Fatalf("post-heal outcome = status %q cached %v, want fresh ok", out.Result.Status, out.Cached)
	}
	if persisted.Load() != 1 {
		t.Errorf("persisted %d records, want 1", persisted.Load())
	}
	out = p.Do(cfg)
	if !out.Cached || out.Result.Status != "ok" {
		t.Errorf("persisted outcome not served from cache: %+v", out)
	}
}

// TestPersistSkipsTransients: canceled and timeout verdicts are not
// durable, so the Persist hook must never see them.
func TestPersistSkipsTransients(t *testing.T) {
	var persisted atomic.Int64
	p := newPool(t, Options{Jobs: 1,
		Run: func(_ context.Context, cfg core.Config) (core.Result, error) {
			return core.Result{Benchmark: cfg.Workload.Abbr, Config: cfg.Name, Status: "timeout"}, nil
		},
		Persist: func(Record) error { persisted.Add(1); return nil }})
	p.Do(testCfg(t, "slow"))
	if persisted.Load() != 0 {
		t.Errorf("Persist saw %d transient outcomes, want 0", persisted.Load())
	}
}
