package runner

import (
	"context"
	"runtime"
	"sort"

	"repro/internal/core"
)

// Plan is a submission schedule produced by Planner.Plan: the order in which
// a sweep's configs should be handed to DoAllContext, the lane width chosen
// for each position, and the shard request to apply where the caller was
// silent. Order and Width alias the Planner's scratch storage and are valid
// only until the next Plan call.
type Plan struct {
	// Order holds indices into the planned cfgs slice in submission
	// order: same lane group (identity minus seed) adjacent, groups
	// sorted by (Name, Workload.Abbr, InstrsPerWarp), seeds ascending
	// within a group — the order that maximizes DoAllContext's lane
	// coalescing and keeps cache/journal writes for one configuration
	// together.
	Order []int
	// Width holds, for each position j in Order, the lane width chosen
	// for the group containing Order[j]. DoAllPlanned applies it only to
	// configs whose own Lanes request (and the pool's) is zero.
	Width []int
	// Shards is the per-lane shard request to apply where both the
	// config and the pool are silent: core.ShardsAuto when the
	// jobs×lanes budget leaves spare cores for intra-run sharding, 1
	// (serial-equivalent) when it does not — in particular always 1 on a
	// 1-core host, so a degraded box never oversubscribes itself.
	// CapShards re-caps the request per batch at execution time with the
	// batch's true width.
	Shards int
	// Groups is the number of distinct lane groups in the sweep.
	Groups int
	// Batches is the number of >=2-wide lane chunks the plan will
	// submit; Batched is the number of configs riding in them. The
	// remaining len(Order)-Batched configs run solo.
	Batches int
	Batched int
}

// Planner turns an unordered sweep into a lane-aware submission plan:
// same-config/different-seed replicas are grouped so DoAllContext coalesces
// them into single RunLanes batches, groups are ordered for cache/journal
// locality, and lane width and shard count are auto-tuned from the
// jobs×lanes×shards ≤ maxprocs budget instead of fixed flags.
//
// The zero value is ready to use. Plan reuses internal scratch across calls
// and performs no allocations once warm, so a long-running explorer can
// re-plan every rung for free; a Planner must not be used from multiple
// goroutines concurrently.
type Planner struct {
	// MaxProcs is the core budget; 0 means runtime.GOMAXPROCS(0).
	MaxProcs int
	// Jobs is the worker-slot count the sweep will run under; 0 means
	// the core budget (the pool's own default).
	Jobs int

	cfgs  []core.Config // sweep being sorted; nil outside Plan
	order []int         // scratch backing Plan.Order
	width []int         // scratch backing Plan.Width
}

// Plan schedules cfgs. It never mutates cfgs; the returned Plan's slices
// alias the Planner's scratch and are valid until the next call.
//
// Lane width per group is the even spread of the whole sweep across the
// worker slots — ceil(n/jobs) replicas per slot — clamped to the group's
// size and the core budget, and forced to 1 on a 1-core host: wide lanes
// only pay off when they soak otherwise-idle slots, and a group can never
// lend lanes to a different configuration.
func (pl *Planner) Plan(cfgs []core.Config) Plan {
	n := len(cfgs)
	maxprocs := pl.MaxProcs
	if maxprocs <= 0 {
		maxprocs = runtime.GOMAXPROCS(0)
	}
	jobs := pl.Jobs
	if jobs <= 0 {
		jobs = maxprocs
	}

	if cap(pl.order) < n {
		pl.order = make([]int, n)
		pl.width = make([]int, n)
	}
	pl.order = pl.order[:n]
	pl.width = pl.width[:n]
	for i := range pl.order {
		pl.order[i] = i
	}
	pl.cfgs = cfgs
	sort.Sort(pl)
	pl.cfgs = nil

	plan := Plan{Order: pl.order, Width: pl.width}
	target := (n + jobs - 1) / jobs
	if target < 1 {
		target = 1
	}
	widest := 1
	for start := 0; start < n; {
		end := start + 1
		for end < n && samePlanGroup(&cfgs[pl.order[start]], &cfgs[pl.order[end]]) {
			end++
		}
		g := end - start
		w := target
		if w > g {
			w = g
		}
		if w > maxprocs {
			w = maxprocs
		}
		if maxprocs <= 1 {
			w = 1
		}
		for j := start; j < end; j++ {
			pl.width[j] = w
		}
		plan.Groups++
		if w >= 2 {
			full := g / w
			plan.Batches += full
			plan.Batched += full * w
			if rem := g % w; rem >= 2 {
				plan.Batches++
				plan.Batched += rem
			}
		}
		if w > widest {
			widest = w
		}
		start = end
	}

	// Shard budget: jobs×lanes×shards must fit in maxprocs. The number
	// of concurrently runnable submission units (lane batches + solo
	// runs) bounds how many worker slots can actually be busy; only when
	// that times the widest batch still leaves spare cores is intra-run
	// sharding worth requesting.
	units := plan.Batches + (n - plan.Batched)
	concurrent := jobs
	if concurrent > units {
		concurrent = units
	}
	if concurrent < 1 {
		concurrent = 1
	}
	if concurrent*widest < maxprocs {
		plan.Shards = core.ShardsAuto
	} else {
		plan.Shards = 1
	}
	return plan
}

// samePlanGroup reports whether two configs share a lane group: the cache
// identity (runner.Key) minus the seed, compared field-by-field so planning
// never builds key strings.
func samePlanGroup(a, b *core.Config) bool {
	return a.Name == b.Name &&
		a.Workload.Abbr == b.Workload.Abbr &&
		a.Workload.InstrsPerWarp == b.Workload.InstrsPerWarp
}

// sort.Interface over the order permutation: groups collate by identity,
// seeds ascend within a group, and the original index breaks remaining ties
// so the order is total and the (unstable) sort deterministic. Implemented
// on the Planner itself — not a closure — so sorting allocates nothing.
func (pl *Planner) Len() int      { return len(pl.order) }
func (pl *Planner) Swap(i, j int) { pl.order[i], pl.order[j] = pl.order[j], pl.order[i] }
func (pl *Planner) Less(i, j int) bool {
	a, b := &pl.cfgs[pl.order[i]], &pl.cfgs[pl.order[j]]
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	if a.Workload.Abbr != b.Workload.Abbr {
		return a.Workload.Abbr < b.Workload.Abbr
	}
	if a.Workload.InstrsPerWarp != b.Workload.InstrsPerWarp {
		return a.Workload.InstrsPerWarp < b.Workload.InstrsPerWarp
	}
	if a.Seed != b.Seed {
		return a.Seed < b.Seed
	}
	return pl.order[i] < pl.order[j]
}

// DoAllPlanned is DoAll routed through the sweep planner: cfgs are
// submitted to DoAllContext in plan order with the planned lane width and
// shard request applied wherever the caller was silent, and the outcomes
// are scattered back so outs[i] still corresponds to cfgs[i]. Explicit
// requests always win: a config's own Lanes/Shards, then the pool options,
// then the plan. Planning is order-insensitive modulo input permutation, so
// tables rendered from the outcomes are byte-identical to the unplanned
// path for any submission order.
func (p *Pool) DoAllPlanned(ctx context.Context, cfgs []core.Config) []Outcome {
	pl := Planner{Jobs: p.opts.Jobs}
	return p.DoAllWithPlan(ctx, cfgs, pl.Plan(cfgs))
}

// DoAllWithPlan submits cfgs according to a plan the caller produced —
// typically from a long-lived Planner reused across explorer rungs (Plan is
// allocation-free once warm). The plan must have been produced from exactly
// this cfgs slice.
func (p *Pool) DoAllWithPlan(ctx context.Context, cfgs []core.Config, plan Plan) []Outcome {
	if len(cfgs) == 0 {
		return nil
	}
	ordered := make([]core.Config, len(cfgs))
	for j, i := range plan.Order {
		c := cfgs[i]
		if c.Lanes == 0 && p.opts.Lanes == 0 {
			c.Lanes = plan.Width[j]
		}
		if c.Shards == 0 && p.opts.Shards == 0 {
			c.Shards = plan.Shards
		}
		ordered[j] = c
	}
	outs := p.DoAllContext(ctx, ordered)
	scattered := make([]Outcome, len(cfgs))
	for j, i := range plan.Order {
		scattered[i] = outs[j]
	}
	return scattered
}
