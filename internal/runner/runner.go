// Package runner is the resilient execution layer between the experiment
// harnesses and core.Run. Every closed-loop simulation in the repository —
// the experiments suite, tesim, and any future sweep — goes through a Pool,
// which provides what a 600-run paper sweep needs to survive a long night:
//
//   - a bounded worker pool (Jobs workers, default GOMAXPROCS) with a
//     memoizing, singleflight result cache, so figures sharing a
//     configuration still reuse each other's simulations and the rendered
//     tables are bit-identical regardless of worker count;
//   - a per-run wall-clock deadline (RunTimeout) and sweep-wide
//     cancellation via the pool's context: a wedged run becomes a DNF row
//     with a "timeout" status, never a hung process;
//   - panic isolation: a recover around every run converts an unexpected
//     panic into a typed DNF outcome carrying the stack, so one bad
//     configuration cannot kill the rest of the sweep;
//   - bounded retry with jittered exponential backoff for transient
//     verdicts ("stall", "timeout") — never for deterministic deadlocks —
//     with per-run attempt accounting surfaced in the Outcome;
//   - an fsynced JSONL checkpoint journal (Checkpoint/Resume) recording
//     each finished run, so an interrupted sweep resumes without
//     re-executing completed simulations (see checkpoint.go).
package runner

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/iofault"
	"repro/internal/xrand"
)

// RunFunc executes one simulation. The default is core.Run; tests inject
// panicking or flaky substitutes to exercise the isolation machinery.
type RunFunc func(ctx context.Context, cfg core.Config) (core.Result, error)

// Options configures a Pool. The zero value is usable: GOMAXPROCS workers,
// no per-run deadline, no retries, no checkpoint.
type Options struct {
	// Jobs bounds concurrent simulations; 0 means GOMAXPROCS.
	Jobs int
	// RunTimeout is the per-run wall-clock deadline; 0 disables it.
	RunTimeout time.Duration
	// Retries is how many extra attempts a transient DNF ("stall",
	// "timeout") gets before it is recorded; deterministic verdicts
	// (deadlock, livelock, cycle-cap, panic) are never retried.
	Retries int
	// Shards is the default intra-run shard request applied to every
	// config whose own Shards field is zero (core.ShardsAuto = machine
	// pick). Whatever the source, the pool caps the effective value with
	// CapShards so Jobs×Shards worker goroutines never exceed GOMAXPROCS.
	// Sharding is result-invariant, so it does not participate in cache
	// keys or checkpoint identity.
	Shards int
	// Backoff is the base delay before the first retry; successive
	// retries double it (capped by MaxBackoff), each with ±50%
	// deterministic jitter. 0 means DefaultBackoff.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth of retry delays before
	// jitter is applied, so a long retry budget cannot stretch a single
	// wait into minutes. 0 means DefaultMaxBackoff.
	MaxBackoff time.Duration
	// Lookup, when non-nil, is consulted on every cache miss before a
	// run executes: an external content-addressed result store (the
	// service daemon's journal-backed store). A hit whose Key matches is
	// cached and returned as a Resumed outcome without executing. Called
	// with the pool lock held; it must be fast and must not call back
	// into the pool.
	Lookup func(key string) (Record, bool)
	// Checkpoint, when non-empty, is the JSONL journal path; every
	// finished run is appended and fsynced so a killed sweep loses at
	// most the runs still in flight.
	Checkpoint string
	// Resume preloads the journal into the cache so finished runs are
	// never re-executed.
	Resume bool
	// FS is the filesystem seam under the checkpoint journal; nil means
	// the real filesystem. Tests inject iofault.FaultFS to prove the
	// durability contract under EIO/ENOSPC/power-cut.
	FS iofault.FS
	// Persist, when non-nil, is called with every freshly executed
	// durable outcome BEFORE it is published to the cache — the service
	// daemon's fsynced store append. A non-nil error means the outcome
	// could not be made durable: the pool then refuses to cache it and
	// returns it with Status "io_error", so nothing is ever acknowledged
	// or served from memory that would not survive a restart. Calls are
	// serialized.
	Persist func(Record) error
	// Run overrides the simulation entry point (tests only).
	Run RunFunc
	// OnDone, when non-nil, receives every freshly executed outcome.
	// Calls are serialized; cache and journal state are consistent when
	// it fires.
	OnDone func(Outcome)
}

// DefaultBackoff is the base retry delay when Options.Backoff is zero.
const DefaultBackoff = 250 * time.Millisecond

// DefaultMaxBackoff is the retry-delay cap when Options.MaxBackoff is zero.
const DefaultMaxBackoff = 15 * time.Second

// Outcome is the terminal state of one run request.
type Outcome struct {
	// Key identifies the (config, benchmark, seed, kernel-length) tuple.
	Key string
	// Result is the simulation's (possibly partial) statistics. For a
	// panic or configuration error the Status carries the message.
	Result core.Result
	// Attempts is how many executions the run took (1 = no retry).
	Attempts int
	// Err is the final attempt's error (nil for clean runs; not
	// preserved across checkpoint resume).
	Err error
	// Stack is the captured goroutine stack when the run panicked.
	Stack string
	// Cached reports the outcome was served from the in-memory cache
	// rather than executed by this call.
	Cached bool
	// Resumed reports the outcome was loaded from a checkpoint journal.
	Resumed bool
}

// OK reports whether the run completed without a degradation verdict.
func (o Outcome) OK() bool { return o.Result.OK() }

// retryableStatus classifies every verdict in the Result.Status
// vocabulary. Transient verdicts are worth another attempt: a wall-clock
// timeout is host scheduling, not simulated behaviour, and fault injection
// can make system stalls load-dependent. Deterministic verdicts —
// deadlock, livelock, cycle-cap, invariant, panic, an invalid
// configuration — always reproduce, so retrying them only wastes the
// sweep's time, and "canceled" means the harness itself is shutting down.
// A status outside the table (a future verdict, or an error message
// promoted into Status) is terminal until someone classifies it here;
// TestRetryableClassification pins the full table.
var retryableStatus = map[string]bool{
	"stall":   true,
	"timeout": true,

	"ok":        false,
	"deadlock":  false,
	"livelock":  false,
	"cycle-cap": false,
	"invariant": false,
	"panic":     false,
	"canceled":  false,
	"error":     false,
	// io_error: the run itself finished but its result could not be made
	// durable (store append failed). Retrying the simulation while the
	// disk is still broken just burns a worker; the outcome is never
	// cached, so a later re-submission re-executes once the fault clears.
	"io_error": false,
}

// Retryable reports whether a status is a transient verdict worth another
// attempt; see retryableStatus for the classification table.
func Retryable(status string) bool { return retryableStatus[status] }

// backoffDelay returns the jittered delay before retry number retry
// (1-based): base doubled per retry, capped at max before ±50% jitter, so
// the result always lies in [cap/2, 3·cap/2] where cap = min(base<<(retry-1),
// max). The doubling loop (rather than a shift) cannot overflow however
// large the retry budget is.
func backoffDelay(base, max time.Duration, retry int, jitter *xrand.Rand) time.Duration {
	d := base
	for i := 1; i < retry && d < max; i++ {
		d <<= 1
	}
	if d > max {
		d = max
	}
	return time.Duration(float64(d) * (0.5 + jitter.Float64()))
}

// CapShards bounds one run's intra-run shard request so that jobs
// concurrent runs never oversubscribe the machine: every run gets at most
// its fair share of maxprocs (but never less than one worker). A request of
// core.ShardsAuto (or any negative) resolves to exactly the fair share, so
// "-jobs 4 -shards auto" on a 16-way box gives each run 4 shards instead of
// 4×16 runnable goroutines. Zero stays zero: a serial run stays serial.
// Sharding never changes results, so capping is invisible to cache keys.
func CapShards(requested, jobs, maxprocs int) int {
	if requested == 0 {
		return 0
	}
	if jobs < 1 {
		jobs = 1
	}
	per := maxprocs / jobs
	if per < 1 {
		per = 1
	}
	if requested < 0 || requested > per {
		return per
	}
	return requested
}

// Key derives the cache/journal identity of a configuration: name,
// benchmark, seed and scaled kernel length. Two configs that differ only
// in fields outside the key must also differ in Name (the Config builders
// maintain this by suffixing every mutation).
func Key(cfg core.Config) string {
	return fmt.Sprintf("%s|%s|s%d|i%d",
		cfg.Name, cfg.Workload.Abbr, cfg.Seed, cfg.Workload.InstrsPerWarp)
}

// Pool executes runs through a bounded set of workers with memoization,
// retries, panic isolation and checkpointing. All methods are safe for
// concurrent use.
type Pool struct {
	ctx  context.Context
	opts Options
	run  RunFunc
	sem  chan struct{}

	mu         sync.Mutex
	cache      map[string]Outcome
	inflight   map[string]*flight
	executed   int
	replay     ReplayStats // what resume found besides valid records
	journal    *Journal
	journalErr error // first journal write failure, surfaced by Close

	cbMu sync.Mutex // serializes OnDone callbacks
}

// New builds a pool bound to ctx; cancelling ctx aborts in-flight runs
// (they finish with a "canceled" verdict) and makes further requests
// return immediately.
func New(ctx context.Context, opts Options) (*Pool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Jobs <= 0 {
		opts.Jobs = runtime.GOMAXPROCS(0)
	}
	if opts.Backoff <= 0 {
		opts.Backoff = DefaultBackoff
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = DefaultMaxBackoff
	}
	if opts.MaxBackoff < opts.Backoff {
		opts.MaxBackoff = opts.Backoff
	}
	if opts.Retries < 0 {
		return nil, fmt.Errorf("runner: Retries must be >= 0, got %d", opts.Retries)
	}
	p := &Pool{
		ctx:      ctx,
		opts:     opts,
		run:      opts.Run,
		sem:      make(chan struct{}, opts.Jobs),
		cache:    make(map[string]Outcome),
		inflight: make(map[string]*flight),
	}
	if p.run == nil {
		p.run = core.Run
	}
	if opts.Checkpoint != "" {
		if opts.Resume {
			recs, stats, err := LoadJournalFS(opts.FS, opts.Checkpoint)
			if err != nil {
				return nil, err
			}
			p.replay = stats
			for _, rec := range recs {
				p.cache[rec.Key] = Outcome{
					Key:      rec.Key,
					Result:   rec.Result,
					Attempts: rec.Attempts,
					Resumed:  true,
				}
			}
		}
		j, err := OpenJournalFS(opts.FS, opts.Checkpoint)
		if err != nil {
			return nil, err
		}
		p.journal = j
	}
	return p, nil
}

// flight is one in-progress execution and the callers awaiting it.
// waiters counts the contexts still interested in the outcome; when the
// last waiter abandons (its context died), the run itself is cancelled.
type flight struct {
	done    chan struct{}
	cancel  context.CancelFunc
	waiters int
}

// abandon withdraws one caller's stake in a flight, cancelling the run
// when nobody is left to receive the outcome.
func (p *Pool) abandon(fl *flight) {
	p.mu.Lock()
	fl.waiters--
	if fl.waiters <= 0 {
		fl.cancel()
	}
	p.mu.Unlock()
}

// Do executes (or recalls) one run. It blocks until the outcome is
// terminal; duplicate concurrent requests for the same key share a single
// execution.
func (p *Pool) Do(cfg core.Config) Outcome {
	return p.DoContext(context.Background(), cfg)
}

// DoContext is Do bounded by a per-call context — the service daemon's
// end-to-end request deadline. The run executes under the pool context as
// before, but every concurrent caller for the key holds a stake in it:
// when ctx dies the caller gets a "canceled" outcome immediately, and when
// the last interested caller is gone the in-flight run itself is cancelled
// (a disconnected client must not keep burning a worker).
//
// An outcome forced by per-call cancellation ("canceled"/"timeout" with
// the run context dead while the pool is still alive) is transient: it is
// returned to the caller but neither cached, journaled nor counted as
// executed, so a later request re-executes the run. Pool-context
// cancellation (harness shutdown) keeps the historical behaviour: the
// canceled outcome is cached so sweep summaries can render it.
func (p *Pool) DoContext(ctx context.Context, cfg core.Config) Outcome {
	if ctx == nil {
		ctx = context.Background()
	}
	key := Key(cfg)
	for {
		if ctx.Err() != nil {
			return canceledOutcome(cfg, key, 0, ctx.Err())
		}
		p.mu.Lock()
		if out, ok := p.cache[key]; ok {
			p.mu.Unlock()
			out.Cached = true
			return out
		}
		if p.opts.Lookup != nil {
			if rec, ok := p.opts.Lookup(key); ok && rec.Key == key {
				out := Outcome{Key: key, Result: rec.Result, Attempts: rec.Attempts, Resumed: true}
				p.cache[key] = out
				p.mu.Unlock()
				return out
			}
		}
		if fl, ok := p.inflight[key]; ok {
			fl.waiters++
			p.mu.Unlock()
			select {
			case <-fl.done:
				continue // the winner has populated the cache (or left a transient gap)
			case <-ctx.Done():
				p.abandon(fl)
				return canceledOutcome(cfg, key, 0, ctx.Err())
			}
		}
		runCtx, cancel := context.WithCancel(p.ctx)
		fl := &flight{done: make(chan struct{}), cancel: cancel, waiters: 1}
		p.inflight[key] = fl
		p.mu.Unlock()

		// The winner's own context dying abandons its stake like any
		// other waiter's; the run is cancelled only when no caller
		// remains interested.
		stop := context.AfterFunc(ctx, func() { p.abandon(fl) })
		out := p.acquireAndRun(runCtx, cfg, key)
		transient := (out.Result.Status == "canceled" || out.Result.Status == "timeout") &&
			runCtx.Err() != nil && p.ctx.Err() == nil
		stop()
		cancel()

		// Durability gate: a durable outcome must be persisted BEFORE it
		// is published to the cache, so the pool never serves from memory
		// a result that would not survive a restart. A persist failure
		// turns the outcome into an uncached "io_error": the caller sees
		// the degradation, and a later request re-executes the run.
		durable := !transient && out.Result.Status != "canceled" && out.Result.Status != "timeout"
		var persistErr error
		if durable && p.opts.Persist != nil {
			p.cbMu.Lock()
			persistErr = p.opts.Persist(Record{Key: out.Key, Attempts: out.Attempts, Result: out.Result})
			p.cbMu.Unlock()
			if persistErr != nil {
				out.Result.Status = "io_error"
				out.Err = persistErr
			}
		}

		p.mu.Lock()
		if !transient && persistErr == nil {
			p.cache[key] = out
		}
		delete(p.inflight, key)
		if !transient {
			p.executed++
			if persistErr == nil {
				p.appendJournalLocked(out)
			}
		}
		p.mu.Unlock()
		close(fl.done)

		if p.opts.OnDone != nil {
			p.cbMu.Lock()
			p.opts.OnDone(out)
			p.cbMu.Unlock()
		}
		return out
	}
}

// DoAll fans cfgs out across the worker pool and waits for every outcome;
// outs[i] corresponds to cfgs[i]. Harnesses use it to warm the cache in
// parallel before rendering tables serially (and deterministically) from
// cache hits.
func (p *Pool) DoAll(cfgs []core.Config) []Outcome {
	outs := make([]Outcome, len(cfgs))
	var wg sync.WaitGroup
	for i := range cfgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i] = p.Do(cfgs[i])
		}(i)
	}
	wg.Wait()
	return outs
}

// acquireAndRun takes a worker slot and executes the retry loop under ctx
// (the flight's run context: the pool context narrowed by per-call
// cancellation).
func (p *Pool) acquireAndRun(ctx context.Context, cfg core.Config, key string) Outcome {
	select {
	case p.sem <- struct{}{}:
		defer func() { <-p.sem }()
	case <-ctx.Done():
		return canceledOutcome(cfg, key, 0, ctx.Err())
	}
	if ctx.Err() != nil {
		return canceledOutcome(cfg, key, 0, ctx.Err())
	}

	maxAttempts := 1 + p.opts.Retries
	// The jitter stream is keyed off the run identity so backoff delays
	// are reproducible; it only perturbs timing, never results.
	jitter := xrand.New(hashKey(key) ^ 0x6a6974746572) // "jitter"
	var out Outcome
	for attempt := 1; ; attempt++ {
		res, err, stack := p.runOnce(ctx, cfg)
		out = Outcome{Key: key, Result: res, Attempts: attempt, Err: err, Stack: stack}
		if res.OK() || !Retryable(res.Status) || attempt >= maxAttempts || ctx.Err() != nil {
			return out
		}
		delay := backoffDelay(p.opts.Backoff, p.opts.MaxBackoff, attempt, jitter)
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return out
		}
	}
}

// runOnce executes a single attempt with the per-run deadline and panic
// isolation. A panic becomes a "panic" DNF with the stack attached; an
// error outside the typed vocabulary (e.g. an invalid configuration)
// becomes a DNF whose Status carries the message.
func (p *Pool) runOnce(ctx context.Context, cfg core.Config) (res core.Result, err error, stack string) {
	if p.opts.RunTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.opts.RunTimeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			stack = string(debug.Stack())
			err = fmt.Errorf("runner: run %s/%s panicked: %v", cfg.Name, cfg.Workload.Abbr, r)
			res = core.Result{Benchmark: cfg.Workload.Abbr, Config: cfg.Name, Status: "panic"}
		}
	}()
	if cfg.Shards == 0 {
		cfg.Shards = p.opts.Shards
	}
	cfg.Shards = CapShards(cfg.Shards, p.opts.Jobs, runtime.GOMAXPROCS(0))
	res, err = p.run(ctx, cfg)
	if res.Benchmark == "" {
		res.Benchmark = cfg.Workload.Abbr
	}
	if res.Config == "" {
		res.Config = cfg.Name
	}
	if err != nil && (res.Status == "" || res.Status == "ok") {
		res.Status = err.Error()
	}
	return res, err, ""
}

func canceledOutcome(cfg core.Config, key string, attempts int, err error) Outcome {
	if attempts == 0 {
		attempts = 1
	}
	return Outcome{
		Key:      key,
		Result:   core.Result{Benchmark: cfg.Workload.Abbr, Config: cfg.Name, Status: "canceled"},
		Attempts: attempts,
		Err:      err,
	}
}

// appendJournalLocked checkpoints a finished run. "canceled" runs are not
// finished (the sweep is shutting down) and "timeout" verdicts are
// host-transient, so neither is journaled: both re-execute on resume.
func (p *Pool) appendJournalLocked(out Outcome) {
	if p.journal == nil || out.Result.Status == "canceled" || out.Result.Status == "timeout" {
		return
	}
	// A journal write failure must not kill the sweep it exists to
	// protect; the error is remembered and surfaced via Close.
	if err := p.journal.Append(Record{Key: out.Key, Attempts: out.Attempts, Result: out.Result}); err != nil {
		p.journalErr = err
	}
}

// Executed returns how many simulations this pool actually ran (cache hits
// and resumed runs excluded).
func (p *Pool) Executed() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.executed
}

// Skipped returns how many torn journal lines resume ignored.
func (p *Pool) Skipped() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.replay.Skipped
}

// Quarantined returns how many corrupt journal records resume moved to
// the .corrupt sidecar.
func (p *Pool) Quarantined() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.replay.Quarantined
}

// Replay returns the full resume replay statistics.
func (p *Pool) Replay() ReplayStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.replay
}

// Outcomes snapshots every terminal outcome, sorted by key for stable
// reporting.
func (p *Pool) Outcomes() []Outcome {
	p.mu.Lock()
	defer p.mu.Unlock()
	outs := make([]Outcome, 0, len(p.cache))
	for _, o := range p.cache {
		outs = append(outs, o)
	}
	sort.Slice(outs, func(i, j int) bool { return outs[i].Key < outs[j].Key })
	return outs
}

// Close flushes and closes the checkpoint journal, returning any write
// error swallowed during the sweep.
func (p *Pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var err error
	if p.journal != nil {
		err = p.journal.Close()
		p.journal = nil
	}
	if p.journalErr != nil {
		return p.journalErr
	}
	return err
}

func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}
