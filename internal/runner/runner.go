// Package runner is the resilient execution layer between the experiment
// harnesses and core.Run. Every closed-loop simulation in the repository —
// the experiments suite, tesim, and any future sweep — goes through a Pool,
// which provides what a 600-run paper sweep needs to survive a long night:
//
//   - a bounded worker pool (Jobs workers, default GOMAXPROCS) with a
//     memoizing, singleflight result cache, so figures sharing a
//     configuration still reuse each other's simulations and the rendered
//     tables are bit-identical regardless of worker count;
//   - a per-run wall-clock deadline (RunTimeout) and sweep-wide
//     cancellation via the pool's context: a wedged run becomes a DNF row
//     with a "timeout" status, never a hung process;
//   - panic isolation: a recover around every run converts an unexpected
//     panic into a typed DNF outcome carrying the stack, so one bad
//     configuration cannot kill the rest of the sweep;
//   - bounded retry with jittered exponential backoff for transient
//     verdicts ("stall", "timeout") — never for deterministic deadlocks —
//     with per-run attempt accounting surfaced in the Outcome;
//   - an fsynced JSONL checkpoint journal (Checkpoint/Resume) recording
//     each finished run, so an interrupted sweep resumes without
//     re-executing completed simulations (see checkpoint.go).
package runner

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/iofault"
	"repro/internal/xrand"
)

// RunFunc executes one simulation. The default is core.Run; tests inject
// panicking or flaky substitutes to exercise the isolation machinery.
type RunFunc func(ctx context.Context, cfg core.Config) (core.Result, error)

// LaneRunFunc executes one lane batch: len(seeds) replicas of cfg differing
// only in Seed, advanced through a single lockstep cycle loop. The default
// is core.RunLanes; tests inject substitutes to exercise the coalescing and
// fallback machinery.
type LaneRunFunc func(ctx context.Context, cfg core.Config, seeds []uint64) ([]core.Result, []error)

// Options configures a Pool. The zero value is usable: GOMAXPROCS workers,
// no per-run deadline, no retries, no checkpoint.
type Options struct {
	// Jobs bounds concurrent simulations; 0 means GOMAXPROCS.
	Jobs int
	// RunTimeout is the per-run wall-clock deadline; 0 disables it.
	RunTimeout time.Duration
	// Retries is how many extra attempts a transient DNF ("stall",
	// "timeout") gets before it is recorded; deterministic verdicts
	// (deadlock, livelock, cycle-cap, panic) are never retried.
	Retries int
	// Shards is the default intra-run shard request applied to every
	// config whose own Shards field is zero (core.ShardsAuto = machine
	// pick). Whatever the source, the pool caps the effective value with
	// CapShards so Jobs×Shards×Lanes worker goroutines never exceed
	// GOMAXPROCS. Sharding is result-invariant, so it does not participate
	// in cache keys or checkpoint identity.
	Shards int
	// Lanes is the default lane-batch width applied to every config whose
	// own Lanes field is zero: DoAll/DoAllContext coalesce up to Lanes
	// same-configuration/different-seed requests into one lane-batched
	// execution (core.RunLanes) occupying a single worker slot. Lane
	// batching is result-invariant — every lane is bit-identical to its
	// solo run — so, like Shards, it does not participate in cache keys or
	// checkpoint identity: each seed keeps its own Key, cache entry and
	// journal record. 0 and 1 both disable coalescing.
	Lanes int
	// Backoff is the base delay before the first retry; successive
	// retries double it (capped by MaxBackoff), each with ±50%
	// deterministic jitter. 0 means DefaultBackoff.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth of retry delays before
	// jitter is applied, so a long retry budget cannot stretch a single
	// wait into minutes. 0 means DefaultMaxBackoff.
	MaxBackoff time.Duration
	// Lookup, when non-nil, is consulted on every cache miss before a
	// run executes: an external content-addressed result store (the
	// service daemon's journal-backed store). A hit whose Key matches is
	// cached and returned as a Resumed outcome without executing. Called
	// with the pool lock held; it must be fast and must not call back
	// into the pool.
	Lookup func(key string) (Record, bool)
	// Checkpoint, when non-empty, is the JSONL journal path; every
	// finished run is appended and fsynced so a killed sweep loses at
	// most the runs still in flight.
	Checkpoint string
	// Resume preloads the journal into the cache so finished runs are
	// never re-executed.
	Resume bool
	// FS is the filesystem seam under the checkpoint journal; nil means
	// the real filesystem. Tests inject iofault.FaultFS to prove the
	// durability contract under EIO/ENOSPC/power-cut.
	FS iofault.FS
	// Persist, when non-nil, is called with every freshly executed
	// durable outcome BEFORE it is published to the cache — the service
	// daemon's fsynced store append. A non-nil error means the outcome
	// could not be made durable: the pool then refuses to cache it and
	// returns it with Status "io_error", so nothing is ever acknowledged
	// or served from memory that would not survive a restart. Calls are
	// serialized.
	Persist func(Record) error
	// Run overrides the simulation entry point (tests only).
	Run RunFunc
	// RunLanes overrides the lane-batch entry point (tests only).
	RunLanes LaneRunFunc
	// OnDone, when non-nil, receives every freshly executed outcome.
	// Calls are serialized; cache and journal state are consistent when
	// it fires.
	OnDone func(Outcome)
}

// DefaultBackoff is the base retry delay when Options.Backoff is zero.
const DefaultBackoff = 250 * time.Millisecond

// DefaultMaxBackoff is the retry-delay cap when Options.MaxBackoff is zero.
const DefaultMaxBackoff = 15 * time.Second

// Outcome is the terminal state of one run request.
type Outcome struct {
	// Key identifies the (config, benchmark, seed, kernel-length) tuple.
	Key string
	// Result is the simulation's (possibly partial) statistics. For a
	// panic or configuration error the Status carries the message.
	Result core.Result
	// Attempts is how many executions the run took (1 = no retry).
	Attempts int
	// Err is the final attempt's error (nil for clean runs; not
	// preserved across checkpoint resume).
	Err error
	// Stack is the captured goroutine stack when the run panicked.
	Stack string
	// Cached reports the outcome was served from the in-memory cache
	// rather than executed by this call.
	Cached bool
	// Resumed reports the outcome was loaded from a checkpoint journal.
	Resumed bool
}

// OK reports whether the run completed without a degradation verdict.
func (o Outcome) OK() bool { return o.Result.OK() }

// retryableStatus classifies every verdict in the Result.Status
// vocabulary. Transient verdicts are worth another attempt: a wall-clock
// timeout is host scheduling, not simulated behaviour, and fault injection
// can make system stalls load-dependent. Deterministic verdicts —
// deadlock, livelock, cycle-cap, invariant, panic, an invalid
// configuration — always reproduce, so retrying them only wastes the
// sweep's time, and "canceled" means the harness itself is shutting down.
// A status outside the table (a future verdict, or an error message
// promoted into Status) is terminal until someone classifies it here;
// TestRetryableClassification pins the full table.
var retryableStatus = map[string]bool{
	"stall":   true,
	"timeout": true,

	"ok":        false,
	"deadlock":  false,
	"livelock":  false,
	"cycle-cap": false,
	"invariant": false,
	"panic":     false,
	"canceled":  false,
	"error":     false,
	// io_error: the run itself finished but its result could not be made
	// durable (store append failed). Retrying the simulation while the
	// disk is still broken just burns a worker; the outcome is never
	// cached, so a later re-submission re-executes once the fault clears.
	"io_error": false,
}

// Retryable reports whether a status is a transient verdict worth another
// attempt; see retryableStatus for the classification table.
func Retryable(status string) bool { return retryableStatus[status] }

// backoffDelay returns the jittered delay before retry number retry
// (1-based): base doubled per retry, capped at max before ±50% jitter, so
// the result always lies in [cap/2, 3·cap/2] where cap = min(base<<(retry-1),
// max). The doubling loop (rather than a shift) cannot overflow however
// large the retry budget is.
func backoffDelay(base, max time.Duration, retry int, jitter *xrand.Rand) time.Duration {
	d := base
	for i := 1; i < retry && d < max; i++ {
		d <<= 1
	}
	if d > max {
		d = max
	}
	return time.Duration(float64(d) * (0.5 + jitter.Float64()))
}

// CapShards bounds one run's intra-run shard request so that jobs
// concurrent runs never oversubscribe the machine: every run gets at most
// its fair share of maxprocs (but never less than one worker). A request of
// core.ShardsAuto (or any negative) resolves to exactly the fair share, so
// "-jobs 4 -shards auto" on a 16-way box gives each run 4 shards instead of
// 4×16 runnable goroutines. Zero stays zero: a serial run stays serial.
//
// lanes is the width of the lane batch the run belongs to (1 for a solo
// run): a batch keeps one shard-worker team per lane alive for its whole
// duration, so the three-way budget jobs×lanes×shards is what must fit in
// maxprocs — "-jobs 2 -lanes 4 -shards auto" on a 16-way box gives each
// lane 2 shards, not 8. Neither sharding nor lane batching changes
// results, so capping is invisible to cache keys.
func CapShards(requested, jobs, lanes, maxprocs int) int {
	if requested == 0 {
		return 0
	}
	if jobs < 1 {
		jobs = 1
	}
	if lanes < 1 {
		lanes = 1
	}
	per := maxprocs / (jobs * lanes)
	if per < 1 {
		per = 1
	}
	if requested < 0 || requested > per {
		return per
	}
	return requested
}

// Key derives the cache/journal identity of a configuration: name,
// benchmark, seed and scaled kernel length. Two configs that differ only
// in fields outside the key must also differ in Name (the Config builders
// maintain this by suffixing every mutation).
func Key(cfg core.Config) string {
	return fmt.Sprintf("%s|%s|s%d|i%d",
		cfg.Name, cfg.Workload.Abbr, cfg.Seed, cfg.Workload.InstrsPerWarp)
}

// Pool executes runs through a bounded set of workers with memoization,
// retries, panic isolation and checkpointing. All methods are safe for
// concurrent use.
type Pool struct {
	ctx      context.Context
	opts     Options
	run      RunFunc
	runLanes LaneRunFunc
	sem      chan struct{}

	mu         sync.Mutex
	cache      map[string]Outcome
	inflight   map[string]*flight
	executed   int
	replay     ReplayStats // what resume found besides valid records
	journal    *Journal
	journalErr error // first journal write failure, surfaced by Close

	cbMu sync.Mutex // serializes OnDone callbacks
}

// New builds a pool bound to ctx; cancelling ctx aborts in-flight runs
// (they finish with a "canceled" verdict) and makes further requests
// return immediately.
func New(ctx context.Context, opts Options) (*Pool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Jobs <= 0 {
		opts.Jobs = runtime.GOMAXPROCS(0)
	}
	if opts.Backoff <= 0 {
		opts.Backoff = DefaultBackoff
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = DefaultMaxBackoff
	}
	if opts.MaxBackoff < opts.Backoff {
		opts.MaxBackoff = opts.Backoff
	}
	if opts.Retries < 0 {
		return nil, fmt.Errorf("runner: Retries must be >= 0, got %d", opts.Retries)
	}
	p := &Pool{
		ctx:      ctx,
		opts:     opts,
		run:      opts.Run,
		runLanes: opts.RunLanes,
		sem:      make(chan struct{}, opts.Jobs),
		cache:    make(map[string]Outcome),
		inflight: make(map[string]*flight),
	}
	if p.run == nil {
		p.run = core.Run
	}
	if p.runLanes == nil {
		p.runLanes = core.RunLanes
	}
	if opts.Checkpoint != "" {
		if opts.Resume {
			recs, stats, err := LoadJournalFS(opts.FS, opts.Checkpoint)
			if err != nil {
				return nil, err
			}
			p.replay = stats
			for _, rec := range recs {
				p.cache[rec.Key] = Outcome{
					Key:      rec.Key,
					Result:   rec.Result,
					Attempts: rec.Attempts,
					Resumed:  true,
				}
			}
		}
		j, err := OpenJournalFS(opts.FS, opts.Checkpoint)
		if err != nil {
			return nil, err
		}
		p.journal = j
	}
	return p, nil
}

// flight is one in-progress execution and the callers awaiting it.
// waiters counts the contexts still interested in the outcome; when the
// last waiter abandons (its context died), the run itself is cancelled.
type flight struct {
	done    chan struct{}
	cancel  context.CancelFunc
	waiters int
}

// abandon withdraws one caller's stake in a flight, cancelling the run
// when nobody is left to receive the outcome.
func (p *Pool) abandon(fl *flight) {
	p.mu.Lock()
	fl.waiters--
	if fl.waiters <= 0 {
		fl.cancel()
	}
	p.mu.Unlock()
}

// Do executes (or recalls) one run. It blocks until the outcome is
// terminal; duplicate concurrent requests for the same key share a single
// execution.
func (p *Pool) Do(cfg core.Config) Outcome {
	return p.DoContext(context.Background(), cfg)
}

// DoContext is Do bounded by a per-call context — the service daemon's
// end-to-end request deadline. The run executes under the pool context as
// before, but every concurrent caller for the key holds a stake in it:
// when ctx dies the caller gets a "canceled" outcome immediately, and when
// the last interested caller is gone the in-flight run itself is cancelled
// (a disconnected client must not keep burning a worker).
//
// An outcome forced by per-call cancellation ("canceled"/"timeout" with
// the run context dead while the pool is still alive) is transient: it is
// returned to the caller but neither cached, journaled nor counted as
// executed, so a later request re-executes the run. Pool-context
// cancellation (harness shutdown) keeps the historical behaviour: the
// canceled outcome is cached so sweep summaries can render it.
func (p *Pool) DoContext(ctx context.Context, cfg core.Config) Outcome {
	if ctx == nil {
		ctx = context.Background()
	}
	key := Key(cfg)
	for {
		if ctx.Err() != nil {
			return canceledOutcome(cfg, key, 0, ctx.Err())
		}
		p.mu.Lock()
		if out, ok := p.cache[key]; ok {
			p.mu.Unlock()
			out.Cached = true
			return out
		}
		if p.opts.Lookup != nil {
			if rec, ok := p.opts.Lookup(key); ok && rec.Key == key {
				out := Outcome{Key: key, Result: rec.Result, Attempts: rec.Attempts, Resumed: true}
				p.cache[key] = out
				p.mu.Unlock()
				return out
			}
		}
		if fl, ok := p.inflight[key]; ok {
			fl.waiters++
			p.mu.Unlock()
			select {
			case <-fl.done:
				continue // the winner has populated the cache (or left a transient gap)
			case <-ctx.Done():
				p.abandon(fl)
				return canceledOutcome(cfg, key, 0, ctx.Err())
			}
		}
		runCtx, cancel := context.WithCancel(p.ctx)
		fl := &flight{done: make(chan struct{}), cancel: cancel, waiters: 1}
		p.inflight[key] = fl
		p.mu.Unlock()

		// The winner's own context dying abandons its stake like any
		// other waiter's; the run is cancelled only when no caller
		// remains interested.
		stop := context.AfterFunc(ctx, func() { p.abandon(fl) })
		out := p.acquireAndRun(runCtx, cfg, key)
		transient := (out.Result.Status == "canceled" || out.Result.Status == "timeout") &&
			runCtx.Err() != nil && p.ctx.Err() == nil
		stop()
		cancel()

		// Durability gate: a durable outcome must be persisted BEFORE it
		// is published to the cache, so the pool never serves from memory
		// a result that would not survive a restart. A persist failure
		// turns the outcome into an uncached "io_error": the caller sees
		// the degradation, and a later request re-executes the run.
		durable := !transient && out.Result.Status != "canceled" && out.Result.Status != "timeout"
		var persistErr error
		if durable && p.opts.Persist != nil {
			p.cbMu.Lock()
			persistErr = p.opts.Persist(Record{Key: out.Key, Attempts: out.Attempts, Result: out.Result})
			p.cbMu.Unlock()
			if persistErr != nil {
				out.Result.Status = "io_error"
				out.Err = persistErr
			}
		}

		p.mu.Lock()
		if !transient && persistErr == nil {
			p.cache[key] = out
		}
		delete(p.inflight, key)
		if !transient {
			p.executed++
			if persistErr == nil {
				p.appendJournalLocked(out)
			}
		}
		p.mu.Unlock()
		close(fl.done)

		if p.opts.OnDone != nil {
			p.cbMu.Lock()
			p.opts.OnDone(out)
			p.cbMu.Unlock()
		}
		return out
	}
}

// DoAll fans cfgs out across the worker pool and waits for every outcome;
// outs[i] corresponds to cfgs[i]. Harnesses use it to warm the cache in
// parallel before rendering tables serially (and deterministically) from
// cache hits. When lane batching is enabled (Options.Lanes or per-config
// Lanes >= 2) it coalesces same-configuration/different-seed requests into
// lane-batched executions; see DoAllContext.
func (p *Pool) DoAll(cfgs []core.Config) []Outcome {
	return p.DoAllContext(context.Background(), cfgs)
}

// laneWidth resolves the effective lane-batch width for one config: the
// config's own request, the pool default where the config is silent, floored
// at one (solo).
func (p *Pool) laneWidth(cfg core.Config) int {
	w := cfg.Lanes
	if w == 0 {
		w = p.opts.Lanes
	}
	if w < 1 {
		w = 1
	}
	return w
}

// laneGroupKey identifies configs that may share a lane batch: the cache
// identity (see Key) minus the seed. Configs in one group are identical
// simulations by the Key contract — anything that changes results must also
// change Name — so RunLanes may legally replicate one representative across
// the group's seeds.
func laneGroupKey(cfg core.Config) string {
	return fmt.Sprintf("%s|%s|i%d", cfg.Name, cfg.Workload.Abbr, cfg.Workload.InstrsPerWarp)
}

// DoAllContext is DoAll bounded by a per-call context, with lane-batch
// coalescing: requests that differ only in Seed (same lane group) and carry
// an effective lane width >= 2 are chunked width seeds at a time into single
// core.RunLanes executions. A chunk occupies ONE worker slot — its lanes
// advance round-robin in one goroutine — and every member seed keeps its
// solo identity end to end: its own cache Key, its own flight (so concurrent
// Do/DoContext callers for the same seed share the batched execution), its
// own journal record and its own Outcome, bit-identical to what a solo run
// would have produced.
//
// Everything the lane path cannot settle falls back to the solo path with
// its full retry budget: duplicate keys, seeds already in flight elsewhere,
// leftover chunks of one, and lanes whose verdict is transient-retryable
// ("stall"/"timeout" with retries configured) — a retryable lane verdict is
// deliberately NOT published, so the fallback re-executes it instead of
// serving a DNF that solo execution would have retried away.
func (p *Pool) DoAllContext(ctx context.Context, cfgs []core.Config) []Outcome {
	if ctx == nil {
		ctx = context.Background()
	}
	outs := make([]Outcome, len(cfgs))
	settled := make([]bool, len(cfgs))

	// Partition: lane-eligible requests group by identity-minus-seed;
	// everything else (width < 2, duplicate keys) goes straight to the solo
	// path, where the singleflight cache deduplicates against the batch.
	groups := make(map[string][]int)
	var order []string
	claimed := make(map[string]bool)
	var solo []int
	for i, cfg := range cfgs {
		k := Key(cfg)
		if p.laneWidth(cfg) < 2 || claimed[k] {
			solo = append(solo, i)
			continue
		}
		claimed[k] = true
		gk := laneGroupKey(cfg)
		if _, ok := groups[gk]; !ok {
			order = append(order, gk)
		}
		groups[gk] = append(groups[gk], i)
	}

	var wg sync.WaitGroup
	for _, gk := range order {
		idxs := groups[gk]
		width := p.laneWidth(cfgs[idxs[0]])
		for start := 0; start < len(idxs); start += width {
			end := start + width
			if end > len(idxs) {
				end = len(idxs)
			}
			chunk := idxs[start:end]
			if len(chunk) < 2 {
				solo = append(solo, chunk...) // a lane of one is just a solo run
				continue
			}
			wg.Add(1)
			go func(chunk []int) {
				defer wg.Done()
				p.doLaneChunk(ctx, cfgs, chunk, outs, settled)
			}(chunk)
		}
	}
	for _, i := range solo {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i] = p.DoContext(ctx, cfgs[i])
			settled[i] = true
		}(i)
	}
	wg.Wait()

	// Second pass: chunk members the lane path left unsettled (keys that
	// were already in flight elsewhere, retryable lane verdicts) resolve
	// through the solo path.
	var fb sync.WaitGroup
	for i := range cfgs {
		if settled[i] {
			continue
		}
		fb.Add(1)
		go func(i int) {
			defer fb.Done()
			outs[i] = p.DoContext(ctx, cfgs[i])
		}(i)
	}
	fb.Wait()
	return outs
}

// laneClaim is one seed's stake in a lane chunk: its index in the caller's
// cfgs slice, its cache key, and the flight registered for it.
type laneClaim struct {
	idx int
	key string
	fl  *flight
}

// doLaneChunk executes one lane batch. It claims a flight per member seed
// (cache and Lookup hits settle immediately; keys already in flight
// elsewhere drop out and fall back), runs the claimed seeds through one
// RunLanes call on a single worker slot, and publishes each lane's outcome
// through exactly the DoContext pipeline: transient classification,
// durability gate, cache, journal, executed count, OnDone.
func (p *Pool) doLaneChunk(ctx context.Context, cfgs []core.Config, chunk []int, outs []Outcome, settled []bool) {
	if ctx.Err() != nil {
		for _, i := range chunk {
			outs[i] = canceledOutcome(cfgs[i], Key(cfgs[i]), 0, ctx.Err())
			settled[i] = true
		}
		return
	}

	runCtx, cancel := context.WithCancel(p.ctx)
	defer cancel()

	var claims []laneClaim
	p.mu.Lock()
	for _, i := range chunk {
		key := Key(cfgs[i])
		if out, ok := p.cache[key]; ok {
			out.Cached = true
			outs[i] = out
			settled[i] = true
			continue
		}
		if p.opts.Lookup != nil {
			if rec, ok := p.opts.Lookup(key); ok && rec.Key == key {
				out := Outcome{Key: key, Result: rec.Result, Attempts: rec.Attempts, Resumed: true}
				p.cache[key] = out
				outs[i] = out
				settled[i] = true
				continue
			}
		}
		if _, ok := p.inflight[key]; ok {
			continue // already running elsewhere; the fallback pass waits on it
		}
		fl := &flight{done: make(chan struct{}), cancel: cancel, waiters: 1}
		p.inflight[key] = fl
		claims = append(claims, laneClaim{idx: i, key: key, fl: fl})
	}
	p.mu.Unlock()
	if len(claims) == 0 {
		return
	}

	// The chunk caller's context dying withdraws its stake in every claimed
	// flight. The flights share one cancel, so the batch aborts when ANY
	// claimed seed loses its last waiter — the lanes advance in lockstep and
	// cannot be cancelled individually; an aborted lane's verdict is
	// transient and re-executes on the next request.
	stop := context.AfterFunc(ctx, func() {
		for _, c := range claims {
			p.abandon(c.fl)
		}
	})
	defer stop()

	// One representative config carries the whole batch (the group key
	// guarantees the members are the same simulation modulo seed). The
	// shard cap sees the batch's true width: a chunk is one job holding
	// len(claims) shard-worker teams alive.
	base := cfgs[claims[0].idx]
	if base.Shards == 0 {
		base.Shards = p.opts.Shards
	}
	base.Shards = CapShards(base.Shards, p.opts.Jobs, len(claims), runtime.GOMAXPROCS(0))
	base.Lanes = len(claims)
	seeds := make([]uint64, len(claims))
	for j, c := range claims {
		seeds[j] = cfgs[c.idx].Seed
	}

	// One worker slot serves the whole batch: the lanes run round-robin in
	// this goroutine, so a chunk is one job from the scheduler's view.
	var results []core.Result
	var errs []error
	var stack string
	select {
	case p.sem <- struct{}{}:
		if runCtx.Err() == nil {
			results, errs, stack = p.runLanesOnce(runCtx, base, seeds)
		}
		<-p.sem
	case <-runCtx.Done():
	}

	for j, c := range claims {
		var out Outcome
		if results == nil {
			out = canceledOutcome(cfgs[c.idx], c.key, 0, runCtx.Err())
		} else {
			out = Outcome{Key: c.key, Result: results[j], Attempts: 1, Err: errs[j], Stack: stack}
		}
		if final, ok := p.publishLaneOutcome(runCtx, c, out); ok {
			outs[c.idx] = final
			settled[c.idx] = true
		}
	}
}

// runLanesOnce executes a single lane-batch attempt with panic isolation
// and the per-run deadline scaled by the batch width (one loop carries
// len(seeds) runs' worth of work). Result identity backfill mirrors
// runOnce, per lane.
func (p *Pool) runLanesOnce(ctx context.Context, cfg core.Config, seeds []uint64) (results []core.Result, errs []error, stack string) {
	if p.opts.RunTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(len(seeds))*p.opts.RunTimeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			stack = string(debug.Stack())
			err := fmt.Errorf("runner: lane batch %s/%s panicked: %v", cfg.Name, cfg.Workload.Abbr, r)
			results = make([]core.Result, len(seeds))
			errs = make([]error, len(seeds))
			for i := range seeds {
				results[i] = core.Result{Benchmark: cfg.Workload.Abbr, Config: cfg.Name, Status: "panic"}
				errs[i] = err
			}
		}
	}()
	results, errs = p.runLanes(ctx, cfg, seeds)
	for i := range results {
		if results[i].Benchmark == "" {
			results[i].Benchmark = cfg.Workload.Abbr
		}
		if results[i].Config == "" {
			results[i].Config = cfg.Name
		}
		if errs[i] != nil && (results[i].Status == "" || results[i].Status == "ok") {
			results[i].Status = errs[i].Error()
		}
	}
	return results, errs, ""
}

// publishLaneOutcome pushes one lane's outcome through the DoContext
// publication pipeline, returning the published outcome (persist failure
// rewrites it to "io_error") and whether it settled the request. False
// means the flight closed with a gap — a retryable verdict the solo
// fallback should re-execute with the full retry budget.
func (p *Pool) publishLaneOutcome(runCtx context.Context, c laneClaim, out Outcome) (Outcome, bool) {
	transient := (out.Result.Status == "canceled" || out.Result.Status == "timeout") &&
		runCtx.Err() != nil && p.ctx.Err() == nil
	// A retryable DNF from a lane has spent only attempt 1 of its budget;
	// solo execution would have retried it in place. The lockstep loop
	// cannot re-run one lane, so leave the verdict unpublished and let the
	// fallback pass re-execute the seed solo.
	retryLater := !transient && Retryable(out.Result.Status) &&
		p.opts.Retries > 0 && runCtx.Err() == nil

	durable := !transient && !retryLater &&
		out.Result.Status != "canceled" && out.Result.Status != "timeout"
	var persistErr error
	if durable && p.opts.Persist != nil {
		p.cbMu.Lock()
		persistErr = p.opts.Persist(Record{Key: out.Key, Attempts: out.Attempts, Result: out.Result})
		p.cbMu.Unlock()
		if persistErr != nil {
			out.Result.Status = "io_error"
			out.Err = persistErr
		}
	}

	p.mu.Lock()
	if !transient && !retryLater && persistErr == nil {
		p.cache[c.key] = out
	}
	delete(p.inflight, c.key)
	if !transient && !retryLater {
		p.executed++
		if persistErr == nil {
			p.appendJournalLocked(out)
		}
	}
	p.mu.Unlock()
	close(c.fl.done)

	if retryLater {
		return out, false
	}
	if p.opts.OnDone != nil {
		p.cbMu.Lock()
		p.opts.OnDone(out)
		p.cbMu.Unlock()
	}
	return out, true
}

// acquireAndRun takes a worker slot and executes the retry loop under ctx
// (the flight's run context: the pool context narrowed by per-call
// cancellation).
func (p *Pool) acquireAndRun(ctx context.Context, cfg core.Config, key string) Outcome {
	select {
	case p.sem <- struct{}{}:
		defer func() { <-p.sem }()
	case <-ctx.Done():
		return canceledOutcome(cfg, key, 0, ctx.Err())
	}
	if ctx.Err() != nil {
		return canceledOutcome(cfg, key, 0, ctx.Err())
	}

	maxAttempts := 1 + p.opts.Retries
	// The jitter stream is keyed off the run identity so backoff delays
	// are reproducible; it only perturbs timing, never results.
	jitter := xrand.New(hashKey(key) ^ 0x6a6974746572) // "jitter"
	var out Outcome
	for attempt := 1; ; attempt++ {
		res, err, stack := p.runOnce(ctx, cfg)
		out = Outcome{Key: key, Result: res, Attempts: attempt, Err: err, Stack: stack}
		if res.OK() || !Retryable(res.Status) || attempt >= maxAttempts || ctx.Err() != nil {
			return out
		}
		delay := backoffDelay(p.opts.Backoff, p.opts.MaxBackoff, attempt, jitter)
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return out
		}
	}
}

// runOnce executes a single attempt with the per-run deadline and panic
// isolation. A panic becomes a "panic" DNF with the stack attached; an
// error outside the typed vocabulary (e.g. an invalid configuration)
// becomes a DNF whose Status carries the message.
func (p *Pool) runOnce(ctx context.Context, cfg core.Config) (res core.Result, err error, stack string) {
	if p.opts.RunTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.opts.RunTimeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			stack = string(debug.Stack())
			err = fmt.Errorf("runner: run %s/%s panicked: %v", cfg.Name, cfg.Workload.Abbr, r)
			res = core.Result{Benchmark: cfg.Workload.Abbr, Config: cfg.Name, Status: "panic"}
		}
	}()
	if cfg.Shards == 0 {
		cfg.Shards = p.opts.Shards
	}
	cfg.Shards = CapShards(cfg.Shards, p.opts.Jobs, 1, runtime.GOMAXPROCS(0))
	res, err = p.run(ctx, cfg)
	if res.Benchmark == "" {
		res.Benchmark = cfg.Workload.Abbr
	}
	if res.Config == "" {
		res.Config = cfg.Name
	}
	if err != nil && (res.Status == "" || res.Status == "ok") {
		res.Status = err.Error()
	}
	return res, err, ""
}

func canceledOutcome(cfg core.Config, key string, attempts int, err error) Outcome {
	if attempts == 0 {
		attempts = 1
	}
	return Outcome{
		Key:      key,
		Result:   core.Result{Benchmark: cfg.Workload.Abbr, Config: cfg.Name, Status: "canceled"},
		Attempts: attempts,
		Err:      err,
	}
}

// appendJournalLocked checkpoints a finished run. "canceled" runs are not
// finished (the sweep is shutting down) and "timeout" verdicts are
// host-transient, so neither is journaled: both re-execute on resume.
func (p *Pool) appendJournalLocked(out Outcome) {
	if p.journal == nil || out.Result.Status == "canceled" || out.Result.Status == "timeout" {
		return
	}
	// A journal write failure must not kill the sweep it exists to
	// protect; the error is remembered and surfaced via Close.
	if err := p.journal.Append(Record{Key: out.Key, Attempts: out.Attempts, Result: out.Result}); err != nil {
		p.journalErr = err
	}
}

// Executed returns how many simulations this pool actually ran (cache hits
// and resumed runs excluded).
func (p *Pool) Executed() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.executed
}

// Skipped returns how many torn journal lines resume ignored.
func (p *Pool) Skipped() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.replay.Skipped
}

// Quarantined returns how many corrupt journal records resume moved to
// the .corrupt sidecar.
func (p *Pool) Quarantined() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.replay.Quarantined
}

// Replay returns the full resume replay statistics.
func (p *Pool) Replay() ReplayStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.replay
}

// Outcomes snapshots every terminal outcome, sorted by key for stable
// reporting.
func (p *Pool) Outcomes() []Outcome {
	p.mu.Lock()
	defer p.mu.Unlock()
	outs := make([]Outcome, 0, len(p.cache))
	for _, o := range p.cache {
		outs = append(outs, o)
	}
	sort.Slice(outs, func(i, j int) bool { return outs[i].Key < outs[j].Key })
	return outs
}

// Close flushes and closes the checkpoint journal, returning any write
// error swallowed during the sweep.
func (p *Pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var err error
	if p.journal != nil {
		err = p.journal.Close()
		p.journal = nil
	}
	if p.journalErr != nil {
		return p.journalErr
	}
	return err
}

func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}
