package runner

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

// laneBatchRecorder is a LaneRunFunc that records every batch it executes
// and returns per-seed results through verdict (defaulting to "ok"). IPC
// carries the seed so tests can check each outcome landed on its own key.
type laneBatchRecorder struct {
	mu      sync.Mutex
	batches [][]uint64
	shards  []int
	verdict func(seed uint64) string
}

func (r *laneBatchRecorder) run(_ context.Context, cfg core.Config, seeds []uint64) ([]core.Result, []error) {
	r.mu.Lock()
	r.batches = append(r.batches, append([]uint64(nil), seeds...))
	r.shards = append(r.shards, cfg.Shards)
	r.mu.Unlock()
	results := make([]core.Result, len(seeds))
	errs := make([]error, len(seeds))
	for i, s := range seeds {
		status := "ok"
		if r.verdict != nil {
			status = r.verdict(s)
		}
		results[i] = core.Result{Benchmark: cfg.Workload.Abbr, Config: cfg.Name,
			Status: status, IPC: float64(s)}
	}
	return results, errs
}

// TestDoAllCoalescesLanes pins the coalescing contract: same-config
// different-seed requests chunk into lane batches of Options.Lanes, each
// batch executes once, and every seed keeps its solo cache identity — its
// own Key, its own Outcome carrying that seed's result, and a cache entry a
// later Do serves without re-executing.
func TestDoAllCoalescesLanes(t *testing.T) {
	rec := &laneBatchRecorder{}
	var soloCalls atomic.Int64
	p := newPool(t, Options{Jobs: 2, Lanes: 4,
		RunLanes: rec.run,
		Run: func(ctx context.Context, cfg core.Config) (core.Result, error) {
			soloCalls.Add(1)
			return okRun(ctx, cfg)
		}})
	base := testCfg(t, "coalesce")
	var cfgs []core.Config
	for s := uint64(1); s <= 6; s++ {
		cfg := base
		cfg.Seed = s
		cfgs = append(cfgs, cfg)
	}
	outs := p.DoAll(cfgs)

	if n := soloCalls.Load(); n != 0 {
		t.Errorf("solo path executed %d times; every seed should ride a lane batch", n)
	}
	if len(rec.batches) != 2 || len(rec.batches[0])+len(rec.batches[1]) != 6 {
		t.Fatalf("6 seeds at width 4 ran as batches %v, want one of 4 and one of 2", rec.batches)
	}
	for i, o := range outs {
		if want := Key(cfgs[i]); o.Key != want {
			t.Errorf("outs[%d].Key = %q, want per-seed key %q", i, o.Key, want)
		}
		if !o.OK() || o.Result.IPC != float64(cfgs[i].Seed) {
			t.Errorf("outs[%d] = %+v, want ok result carrying seed %d", i, o.Result, cfgs[i].Seed)
		}
		if o.Attempts != 1 || o.Cached {
			t.Errorf("outs[%d]: attempts=%d cached=%v, want fresh single-attempt run", i, o.Attempts, o.Cached)
		}
	}
	if p.Executed() != 6 {
		t.Errorf("Executed() = %d, want 6 (one per seed, not per batch)", p.Executed())
	}
	// Lane batching must be invisible to the cache: a repeat request for any
	// seed is a hit, no third batch.
	if out := p.Do(cfgs[3]); !out.Cached || out.Result.IPC != float64(cfgs[3].Seed) {
		t.Errorf("repeat request = %+v, want cache hit with that seed's result", out)
	}
	if len(rec.batches) != 2 {
		t.Errorf("repeat request grew batches to %d", len(rec.batches))
	}
}

// TestLaneShardCapSeesBatchWidth proves the chunk caps its shard request
// with the batch's true lane count: jobs × lanes × shards stays within
// GOMAXPROCS even when the config over-asks.
func TestLaneShardCapSeesBatchWidth(t *testing.T) {
	rec := &laneBatchRecorder{}
	p := newPool(t, Options{Jobs: 1, Lanes: 2, RunLanes: rec.run, Run: okRun})
	var cfgs []core.Config
	for s := uint64(1); s <= 2; s++ {
		cfg := testCfg(t, "shardcap").WithShards(1 << 20)
		cfg.Seed = s
		cfgs = append(cfgs, cfg)
	}
	p.DoAll(cfgs)
	want := CapShards(1<<20, 1, 2, runtime.GOMAXPROCS(0))
	if len(rec.shards) != 1 || rec.shards[0] != want {
		t.Errorf("batch ran with shards %v, want [%d] (capped by jobs×lanes)", rec.shards, want)
	}
}

// TestLaneRetryableFallsBackToSolo pins the retry contract: a lane whose
// verdict is transient-retryable is not published — the seed re-executes
// through the solo path with its full retry budget — while its batch
// siblings keep their lane results without re-execution.
func TestLaneRetryableFallsBackToSolo(t *testing.T) {
	const flaky = uint64(2)
	rec := &laneBatchRecorder{verdict: func(seed uint64) string {
		if seed == flaky {
			return "stall"
		}
		return "ok"
	}}
	var soloRuns atomic.Int64
	p := newPool(t, Options{Jobs: 2, Lanes: 3, Retries: 2,
		RunLanes: rec.run,
		Run: func(_ context.Context, cfg core.Config) (core.Result, error) {
			soloRuns.Add(1)
			return core.Result{Benchmark: cfg.Workload.Abbr, Config: cfg.Name,
				Status: "ok", IPC: float64(cfg.Seed)}, nil
		}})
	var cfgs []core.Config
	for s := uint64(1); s <= 3; s++ {
		cfg := testCfg(t, "flaky-lane")
		cfg.Seed = s
		cfgs = append(cfgs, cfg)
	}
	outs := p.DoAll(cfgs)
	for i, o := range outs {
		if !o.OK() || o.Result.IPC != float64(cfgs[i].Seed) {
			t.Errorf("outs[%d] = %+v, want ok with seed %d", i, o.Result, cfgs[i].Seed)
		}
	}
	if n := soloRuns.Load(); n != 1 {
		t.Errorf("solo path executed %d times, want exactly 1 (the stalled lane)", n)
	}
	if len(rec.batches) != 1 {
		t.Errorf("lane batches = %v, want the single original chunk", rec.batches)
	}
}

// TestLaneRetryableTerminalWithoutRetries: with no retry budget a stalled
// lane's DNF is terminal — published as-is, no solo re-execution — matching
// what solo execution would have recorded.
func TestLaneRetryableTerminalWithoutRetries(t *testing.T) {
	rec := &laneBatchRecorder{verdict: func(uint64) string { return "stall" }}
	var soloRuns atomic.Int64
	p := newPool(t, Options{Jobs: 1, Lanes: 2,
		RunLanes: rec.run,
		Run: func(ctx context.Context, cfg core.Config) (core.Result, error) {
			soloRuns.Add(1)
			return okRun(ctx, cfg)
		}})
	var cfgs []core.Config
	for s := uint64(1); s <= 2; s++ {
		cfg := testCfg(t, "stuck-lane")
		cfg.Seed = s
		cfgs = append(cfgs, cfg)
	}
	outs := p.DoAll(cfgs)
	for i, o := range outs {
		if o.Result.Status != "stall" {
			t.Errorf("outs[%d].Status = %q, want the lane's stall verdict", i, o.Result.Status)
		}
	}
	if soloRuns.Load() != 0 {
		t.Errorf("solo path ran %d times despite empty retry budget", soloRuns.Load())
	}
}

// TestLaneDuplicateKeysShareOneExecution: duplicate seeds in one DoAll ride
// the singleflight. Whichever path claims the key first (the duplicate goes
// solo and races the chunk), each distinct seed executes exactly once and
// the duplicate is served the same outcome.
func TestLaneDuplicateKeysShareOneExecution(t *testing.T) {
	rec := &laneBatchRecorder{}
	var soloRuns atomic.Int64
	p := newPool(t, Options{Jobs: 2, Lanes: 2, RunLanes: rec.run,
		Run: func(_ context.Context, cfg core.Config) (core.Result, error) {
			soloRuns.Add(1)
			return core.Result{Benchmark: cfg.Workload.Abbr, Config: cfg.Name,
				Status: "ok", IPC: float64(cfg.Seed)}, nil
		}})
	a := testCfg(t, "dup")
	a.Seed = 1
	b := testCfg(t, "dup")
	b.Seed = 2
	outs := p.DoAll([]core.Config{a, b, a})
	batched := 0
	for _, batch := range rec.batches {
		batched += len(batch)
	}
	if total := batched + int(soloRuns.Load()); total != 2 {
		t.Errorf("executed %d seed-runs (%d batched, %d solo), want 2 (duplicate must not re-execute)",
			total, batched, soloRuns.Load())
	}
	if outs[0].Key != outs[2].Key || outs[0].Result.IPC != outs[2].Result.IPC {
		t.Errorf("duplicate outcome diverged: %+v vs %+v", outs[0], outs[2])
	}
	if p.Executed() != 2 {
		t.Errorf("Executed() = %d, want 2", p.Executed())
	}
}

// TestLanePanicIsolation: a panicking lane batch becomes per-seed "panic"
// DNFs with the stack attached, and the rest of the DoAll survives.
func TestLanePanicIsolation(t *testing.T) {
	p := newPool(t, Options{Jobs: 2, Lanes: 2,
		RunLanes: func(_ context.Context, _ core.Config, _ []uint64) ([]core.Result, []error) {
			panic("lane kernel exploded")
		},
		Run: okRun})
	var cfgs []core.Config
	for s := uint64(1); s <= 2; s++ {
		cfg := testCfg(t, "lane-boom")
		cfg.Seed = s
		cfgs = append(cfgs, cfg)
	}
	outs := p.DoAll(cfgs)
	for i, o := range outs {
		if o.Result.Status != "panic" {
			t.Errorf("outs[%d].Status = %q, want panic", i, o.Result.Status)
		}
		if !strings.Contains(o.Stack, "goroutine") {
			t.Errorf("outs[%d] missing panic stack", i)
		}
		if o.Err == nil || !strings.Contains(o.Err.Error(), "lane kernel exploded") {
			t.Errorf("outs[%d].Err = %v, want the panic message", i, o.Err)
		}
	}
}

// TestLanePersistGatePerSeed: every lane outcome passes through the
// durability gate individually — one Persist record per seed, keyed like a
// solo run — before publication.
func TestLanePersistGatePerSeed(t *testing.T) {
	rec := &laneBatchRecorder{}
	var mu sync.Mutex
	persisted := map[string]Record{}
	p := newPool(t, Options{Jobs: 1, Lanes: 3, RunLanes: rec.run, Run: okRun,
		Persist: func(r Record) error {
			mu.Lock()
			persisted[r.Key] = r
			mu.Unlock()
			return nil
		}})
	var cfgs []core.Config
	for s := uint64(1); s <= 3; s++ {
		cfg := testCfg(t, "persist-lane")
		cfg.Seed = s
		cfgs = append(cfgs, cfg)
	}
	p.DoAll(cfgs)
	if len(persisted) != 3 {
		t.Fatalf("persisted %d records, want 3 (one per seed)", len(persisted))
	}
	for _, cfg := range cfgs {
		r, ok := persisted[Key(cfg)]
		if !ok || r.Result.IPC != float64(cfg.Seed) {
			t.Errorf("seed %d: persisted record %+v missing or wrong", cfg.Seed, r)
		}
	}
}

// TestLaneWidthBelowTwoStaysSolo: Lanes 0/1 (and a leftover chunk of one)
// never touch the lane entry point.
func TestLaneWidthBelowTwoStaysSolo(t *testing.T) {
	var laneCalls atomic.Int64
	p := newPool(t, Options{Jobs: 2, Lanes: 1,
		RunLanes: func(ctx context.Context, cfg core.Config, seeds []uint64) ([]core.Result, []error) {
			laneCalls.Add(1)
			return make([]core.Result, len(seeds)), make([]error, len(seeds))
		},
		Run: okRun})
	var cfgs []core.Config
	for s := uint64(1); s <= 3; s++ {
		cfg := testCfg(t, "solo-width")
		cfg.Seed = s
		cfgs = append(cfgs, cfg)
	}
	outs := p.DoAll(cfgs)
	if laneCalls.Load() != 0 {
		t.Errorf("lane entry point called %d times at width 1", laneCalls.Load())
	}
	for i, o := range outs {
		if !o.OK() {
			t.Errorf("outs[%d].Status = %q, want ok", i, o.Result.Status)
		}
	}
}
