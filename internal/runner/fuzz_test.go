package runner

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzLoadJournal throws arbitrary bytes at the journal loader. Whatever
// the disk hands us — garbage, truncation, headers from the future,
// frames with lying lengths — replay must return without panicking, and
// its accounting must balance: every non-header line is either a replayed
// record, the single torn tail, or a quarantined line in the sidecar.
func FuzzLoadJournal(f *testing.F) {
	rec := func(payload string) []byte { return frameRecord([]byte(payload)) }
	valid := append([]byte("tesim-journal v2\n"), rec(`{"key":"a","result":{"status":"ok"}}`)...)
	f.Add(valid)
	f.Add([]byte("tesim-journal v1\n{\"key\":\"a\"}\n{\"key\":\"b\"}\n"))
	f.Add(append(valid, []byte("*deadbeef 48 {\"half")...))               // torn v2 frame
	f.Add(append(valid, []byte("*00000000 9 {\"bad\":1}\n")...))          // bad CRC
	f.Add(append(valid, []byte("not json at all\n")...))                  // v1-shaped garbage
	f.Add([]byte("tesim-journal v9\n"))                                   // future version
	f.Add([]byte{})                                                       // empty file
	f.Add([]byte("*ffffffff 999999999999999999999999 x\n"))               // absurd length
	f.Add(append(valid, append([]byte("* \n\x00\xff"), rec(`{}`)...)...)) // binary noise mid-file

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		recs, stats, err := LoadJournal(path)
		if err != nil {
			return // rejected whole files (bad header) are a legitimate verdict
		}
		if stats.Skipped > 1 {
			t.Fatalf("more than one torn tail: %+v", stats)
		}
		if stats.Quarantined < 0 || len(recs) < 0 {
			t.Fatalf("negative accounting: %d recs, %+v", len(recs), stats)
		}
		if stats.Quarantined > 0 && stats.SidecarErr == nil {
			if _, serr := os.Stat(QuarantinePath(path)); serr != nil {
				t.Fatalf("quarantined %d line(s) but no sidecar: %v", stats.Quarantined, serr)
			}
		}

		// Replay must be deterministic: a second load of the same bytes
		// yields the same records and the same wreckage counts.
		recs2, stats2, err2 := LoadJournal(path)
		if err2 != nil || len(recs2) != len(recs) ||
			stats2.Skipped != stats.Skipped || stats2.Quarantined != stats.Quarantined {
			t.Fatalf("replay not deterministic: (%d,%+v,%v) then (%d,%+v,%v)",
				len(recs), stats, err, len(recs2), stats2, err2)
		}

		// Appending through the real journal must leave a file whose next
		// replay still recovers everything, plus the new record.
		j, err := OpenJournal(path)
		if err != nil {
			return // e.g. a seal the filesystem refuses; loader stays safe
		}
		if err := j.Append(Record{Key: "fuzz-probe"}); err != nil {
			j.Close()
			return
		}
		if err := j.Close(); err != nil {
			t.Fatalf("close after clean append: %v", err)
		}
		recs3, stats3, err3 := LoadJournal(path)
		if err3 != nil {
			t.Fatalf("journal unreadable after append: %v", err3)
		}
		if stats3.Skipped != 0 {
			t.Fatalf("torn tail survived a seal+append: %+v", stats3)
		}
		found := false
		for _, r := range recs3 {
			if r.Key == "fuzz-probe" {
				found = true
			}
		}
		if !found {
			t.Fatal("acked append lost on replay")
		}
		if len(recs3) < len(recs) {
			t.Fatalf("append lost replayed records: %d before, %d after", len(recs), len(recs3))
		}
	})
}

// FuzzFrameRoundTrip pins the v2 framing itself: any payload without a
// newline frames, parses back byte-identical, and never false-positives
// after single-byte corruption.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte(`{"key":"a"}`), uint8(0))
	f.Add([]byte(""), uint8(3))
	f.Add([]byte("\x00\xff binary"), uint8(7))
	f.Fuzz(func(t *testing.T, payload []byte, flip uint8) {
		if bytes.ContainsRune(payload, '\n') {
			t.Skip() // journal payloads are single lines by construction
		}
		line := frameRecord(payload)
		got, ok := parseFrame(bytes.TrimSuffix(line, []byte("\n")))
		if !ok {
			t.Fatal("own frame rejected")
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip mutated payload: %q -> %q", payload, got)
		}
		// Flip one byte anywhere in the frame: parse must fail or return
		// the original payload (a flip inside a digit of the CRC field can
		// still describe the same payload only if it parses identically).
		mut := bytes.Clone(line)
		idx := int(flip) % len(mut)
		mut[idx] ^= 0x40
		if mutGot, ok := parseFrame(bytes.TrimSuffix(mut, []byte("\n"))); ok && !bytes.Equal(mutGot, payload) {
			t.Fatalf("corrupted frame accepted with different payload: %q", mutGot)
		}
	})
}
