package prof

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// newFlags builds a Flags on a private flag set parsed with args.
func newFlags(t *testing.T, args ...string) *Flags {
	t.Helper()
	fs := flag.NewFlagSet("prof_test", flag.ContinueOnError)
	f := AddFlagsTo(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNoProfilingRequested(t *testing.T) {
	f := newFlags(t)
	if err := f.Start(); err != nil {
		t.Fatalf("Start with no flags: %v", err)
	}
	if f.CPUActive() {
		t.Error("CPUActive true without -cpuprofile")
	}
	// Stop must be a safe no-op, including when called repeatedly (the
	// CLIs call it via defer as well as explicitly).
	f.Stop()
	f.Stop()
}

func TestCPUProfileLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.pprof")
	f := newFlags(t, "-cpuprofile", path)
	if f.CPUActive() {
		t.Error("CPUActive true before Start")
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	if !f.CPUActive() {
		t.Error("CPUActive false while profiling")
	}
	f.Stop()
	if f.CPUActive() {
		t.Error("CPUActive true after Stop")
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("profile file: %v", err)
	}
	if info.Size() == 0 {
		t.Error("CPU profile is empty")
	}
	// A second Stop must not disturb the written profile.
	f.Stop()
	if again, err := os.Stat(path); err != nil || again.Size() != info.Size() {
		t.Errorf("second Stop changed the profile: %v (size %d -> %d)", err, info.Size(), again.Size())
	}
}

func TestMemProfileWrittenAtStop(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mem.pprof")
	f := newFlags(t, "-memprofile", path)
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	if f.CPUActive() {
		t.Error("CPUActive true for a memory-only profile")
	}
	// The heap profile is only snapshotted at Stop, not at Start.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("heap profile exists before Stop: %v", err)
	}
	f.Stop()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("heap profile: %v", err)
	}
	if info.Size() == 0 {
		t.Error("heap profile is empty")
	}
}

func TestStartErrorOnBadPath(t *testing.T) {
	f := newFlags(t, "-cpuprofile", filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.pprof"))
	if err := f.Start(); err == nil {
		f.Stop()
		t.Fatal("Start succeeded with an uncreatable profile path")
	}
	if f.CPUActive() {
		t.Error("CPUActive true after failed Start")
	}
}

func TestStartWhileProfileRunningFails(t *testing.T) {
	dir := t.TempDir()
	first := newFlags(t, "-cpuprofile", filepath.Join(dir, "a.pprof"))
	if err := first.Start(); err != nil {
		t.Fatal(err)
	}
	defer first.Stop()
	second := newFlags(t, "-cpuprofile", filepath.Join(dir, "b.pprof"))
	if err := second.Start(); err == nil {
		second.Stop()
		t.Fatal("second concurrent CPU profile did not error")
	}
	if second.CPUActive() {
		t.Error("CPUActive true on the failed second profile")
	}
}
