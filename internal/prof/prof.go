// Package prof wires the standard -cpuprofile/-memprofile flags into the
// command-line tools. The cycle kernel is allocation-free in steady state,
// so a memory profile that shows hot-path allocations is a regression
// signal; the CPU profile localizes time across the allocator/traversal
// phases (see DESIGN.md, "The allocation-free cycle kernel").
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the profiling destinations registered by AddFlags.
type Flags struct {
	cpu *string
	mem *string

	cpuFile *os.File
}

// AddFlags registers -cpuprofile and -memprofile on the default flag set.
// Call before flag.Parse.
func AddFlags() *Flags {
	return AddFlagsTo(flag.CommandLine)
}

// AddFlagsTo registers -cpuprofile and -memprofile on fs. Call before the
// set is parsed. Split out from AddFlags so tests (and embedders with their
// own flag sets) can exercise the profile lifecycle without mutating the
// process-wide default set.
func AddFlagsTo(fs *flag.FlagSet) *Flags {
	return &Flags{
		cpu: fs.String("cpuprofile", "", "write a CPU profile to this file"),
		mem: fs.String("memprofile", "", "write a heap profile to this file at exit"),
	}
}

// Start begins CPU profiling if requested. It returns an error rather than
// exiting so callers keep their own error conventions.
func (f *Flags) Start() error {
	if *f.cpu == "" {
		return nil
	}
	file, err := os.Create(*f.cpu)
	if err != nil {
		return fmt.Errorf("prof: %w", err)
	}
	if err := pprof.StartCPUProfile(file); err != nil {
		file.Close()
		return fmt.Errorf("prof: %w", err)
	}
	f.cpuFile = file
	return nil
}

// CPUActive reports whether a CPU profile is currently being captured.
// Callers use it to enable per-worker pprof labels (e.g. the sharded cycle
// kernel's noc_shard tags), which cost an allocation per labelled task and
// so stay off unless a profile is actually recording.
func (f *Flags) CPUActive() bool { return f.cpuFile != nil }

// Stop finishes the CPU profile and writes the heap profile. Safe to call
// via defer even when profiling was never requested; errors writing the
// heap profile are reported on stderr (the run's results already printed).
func (f *Flags) Stop() {
	if f.cpuFile != nil {
		pprof.StopCPUProfile()
		f.cpuFile.Close()
		f.cpuFile = nil
	}
	if *f.mem == "" {
		return
	}
	file, err := os.Create(*f.mem)
	if err != nil {
		fmt.Fprintln(os.Stderr, "prof:", err)
		return
	}
	defer file.Close()
	runtime.GC() // materialize the steady-state live set before snapshotting
	if err := pprof.WriteHeapProfile(file); err != nil {
		fmt.Fprintln(os.Stderr, "prof:", err)
	}
}
