package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

func l1Config() Config { return Config{SizeBytes: 16 * 1024, LineBytes: 64, Ways: 4} }

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{},
		{SizeBytes: 1024, LineBytes: 48, Ways: 2},
		{SizeBytes: 1000, LineBytes: 64, Ways: 2},
		{SizeBytes: 1024, LineBytes: 64, Ways: 5},
		{SizeBytes: 64 * 3, LineBytes: 64, Ways: 1}, // 3 sets: not power of two
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d (%+v): want validation error", i, cfg)
		}
	}
	if err := l1Config().Validate(); err != nil {
		t.Errorf("L1 config should validate: %v", err)
	}
}

func TestMissThenFillThenHit(t *testing.T) {
	c := MustNew(l1Config())
	a := addr.Address(0x1000)
	if c.Access(a, false) {
		t.Fatal("cold cache should miss")
	}
	if _, wb := c.Fill(a, false); wb {
		t.Fatal("fill into empty set should not write back")
	}
	if !c.Access(a, false) {
		t.Fatal("line should hit after fill")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit 1 miss", st)
	}
}

func TestSameLineDifferentOffsetsHit(t *testing.T) {
	c := MustNew(l1Config())
	c.Fill(0x2000, false)
	for off := addr.Address(0); off < 64; off += 4 {
		if !c.Access(0x2000+off, false) {
			t.Fatalf("offset %d of a filled line missed", off)
		}
	}
}

func TestLRUEviction(t *testing.T) {
	// 4-way cache: fill 4 lines in one set, touch the first, fill a 5th;
	// the second line (LRU) must be the victim.
	c := MustNew(l1Config())
	sets := uint64(16 * 1024 / 64 / 4) // 64 sets
	stride := addr.Address(sets * 64)  // same set, different tag
	lines := []addr.Address{0, stride, 2 * stride, 3 * stride}
	for _, a := range lines {
		c.Fill(a, false)
	}
	c.Access(lines[0], false) // refresh line 0
	c.Fill(4*stride, false)   // evicts lines[1]
	if !c.Probe(lines[0]) {
		t.Error("recently used line was evicted")
	}
	if c.Probe(lines[1]) {
		t.Error("LRU line should have been evicted")
	}
	for _, a := range lines[2:] {
		if !c.Probe(a) {
			t.Errorf("line %#x unexpectedly evicted", a)
		}
	}
}

func TestDirtyEvictionProducesWriteback(t *testing.T) {
	c := MustNew(Config{SizeBytes: 128, LineBytes: 64, Ways: 1}) // 2 sets, direct-mapped
	c.Fill(0x0, true)                                            // dirty line in set 0
	victim, wb := c.Fill(0x80, false)                            // set 0 again (stride 128)
	if !wb {
		t.Fatal("evicting a dirty line must produce a writeback")
	}
	if victim != 0x0 {
		t.Errorf("writeback victim = %#x, want 0x0", victim)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestWriteHitMarksDirty(t *testing.T) {
	c := MustNew(Config{SizeBytes: 128, LineBytes: 64, Ways: 1})
	c.Fill(0x0, false)
	c.Access(0x0, true) // write hit -> dirty
	if _, wb := c.Fill(0x80, false); !wb {
		t.Error("line dirtied by a write hit should write back on eviction")
	}
}

func TestCleanEvictionSilent(t *testing.T) {
	c := MustNew(Config{SizeBytes: 128, LineBytes: 64, Ways: 1})
	c.Fill(0x0, false)
	if _, wb := c.Fill(0x80, false); wb {
		t.Error("clean eviction should not write back")
	}
}

func TestFillIdempotentWhenPresent(t *testing.T) {
	c := MustNew(l1Config())
	c.Fill(0x40, false)
	if _, wb := c.Fill(0x40, true); wb {
		t.Error("re-fill of resident line must not evict")
	}
	// The re-fill with markDirty must dirty the line.
	cDM := MustNew(Config{SizeBytes: 128, LineBytes: 64, Ways: 1})
	cDM.Fill(0x0, false)
	cDM.Fill(0x0, true)
	if _, wb := cDM.Fill(0x80, false); !wb {
		t.Error("re-fill with markDirty should have dirtied the line")
	}
}

func TestInvalidateAll(t *testing.T) {
	c := MustNew(l1Config())
	c.Fill(0x100, true)
	c.InvalidateAll()
	if c.Probe(0x100) {
		t.Error("line survived InvalidateAll")
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Error("empty stats hit rate should be 0")
	}
	s = Stats{Hits: 3, Misses: 1}
	if s.HitRate() != 0.75 {
		t.Errorf("hit rate = %v, want 0.75", s.HitRate())
	}
}

func TestCachePropertyFilledLinesProbeTrue(t *testing.T) {
	// Property: immediately after Fill(a), Probe(a) is true regardless of
	// the fill history.
	f := func(raws []uint32) bool {
		c := MustNew(Config{SizeBytes: 1024, LineBytes: 64, Ways: 2})
		for _, r := range raws {
			a := addr.Address(r) &^ 63
			c.Fill(a, r%2 == 0)
			if !c.Probe(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCachePropertyCapacityBound(t *testing.T) {
	// Property: the number of distinct probe-true lines never exceeds the
	// cache's line capacity.
	f := func(raws []uint16) bool {
		cfg := Config{SizeBytes: 512, LineBytes: 64, Ways: 2} // 8 lines
		c := MustNew(cfg)
		seen := map[addr.Address]bool{}
		for _, r := range raws {
			a := addr.Address(r) &^ 63
			c.Fill(a, false)
			seen[a] = true
		}
		resident := 0
		for a := range seen {
			if c.Probe(a) {
				resident++
			}
		}
		return resident <= cfg.SizeBytes/cfg.LineBytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
