// Package cache implements the set-associative caches of the baseline
// accelerator (per-core 16 KB L1 data caches and 128 KB L2 banks at each
// memory controller, Table II) plus the miss-status holding registers
// (MSHRs) that merge outstanding misses to the same line.
//
// Caches are write-back, write-allocate with LRU replacement, as described
// in §II of the paper.
package cache

import (
	"fmt"

	"repro/internal/addr"
)

// Config sizes a cache.
type Config struct {
	SizeBytes int // total capacity
	LineBytes int // line size (64 in the paper)
	Ways      int // associativity
}

// Validate checks that the geometry is consistent.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: all config fields must be positive: %+v", c)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: LineBytes must be a power of two, got %d", c.LineBytes)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines*c.LineBytes != c.SizeBytes {
		return fmt.Errorf("cache: SizeBytes %d not a multiple of LineBytes %d", c.SizeBytes, c.LineBytes)
	}
	if lines%c.Ways != 0 {
		return fmt.Errorf("cache: %d lines not divisible by %d ways", lines, c.Ways)
	}
	sets := lines / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count must be a power of two, got %d", sets)
	}
	return nil
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // larger = more recently used
}

// Stats counts cache events.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Writebacks uint64
}

// HitRate returns hits / (hits+misses), 0 when no accesses occurred.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is a blocking set-associative array model: it tracks tag state only
// (no data), which is all a timing simulator needs.
type Cache struct {
	cfg     Config
	sets    [][]line
	setMask uint64
	shift   uint
	tick    uint64
	stats   Stats
}

// New builds a cache from cfg.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nSets := cfg.SizeBytes / cfg.LineBytes / cfg.Ways
	sets := make([][]line, nSets)
	backing := make([]line, nSets*cfg.Ways)
	for i := range sets {
		sets[i], backing = backing[:cfg.Ways:cfg.Ways], backing[cfg.Ways:]
	}
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	return &Cache{cfg: cfg, sets: sets, setMask: uint64(nSets - 1), shift: shift}, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

func (c *Cache) index(a addr.Address) (set uint64, tag uint64) {
	lineAddr := uint64(a) >> c.shift
	return lineAddr & c.setMask, lineAddr >> 0 // tag keeps full line address for simplicity
}

// Probe reports whether a is present, without updating LRU or dirty state.
func (c *Cache) Probe(a addr.Address) bool {
	set, tag := c.index(a)
	for i := range c.sets[set] {
		if c.sets[set][i].valid && c.sets[set][i].tag == tag {
			return true
		}
	}
	return false
}

// Access looks up a. On a hit it updates LRU (and dirty state when isWrite)
// and returns hit=true. On a miss it only records the miss; callers decide
// whether to Fill (write-allocate happens at fill time, mirroring the
// request/reply flow of the real machine).
func (c *Cache) Access(a addr.Address, isWrite bool) (hit bool) {
	set, tag := c.index(a)
	c.tick++
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			ln.lru = c.tick
			if isWrite {
				ln.dirty = true
			}
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// CreditMissRetries accounts k repeated missing Accesses to the same
// blocked line without touching array state. A stalled front-of-queue
// request that retries every cycle ticks the LRU clock and records a miss
// each time but never changes tag/LRU/dirty state (the line is absent, and
// misses do not update LRU); idle-horizon fast-forward uses this to credit
// a skipped window of such retries in O(1) with bit-identical counters.
func (c *Cache) CreditMissRetries(k uint64) {
	c.tick += k
	c.stats.Misses += k
}

// Fill installs the line holding a, evicting the LRU way if needed.
// When the victim is dirty, Fill returns its line base address and
// writeback=true so the caller can issue the write-back request.
// markDirty installs the line already dirty (write-allocate on a store miss).
func (c *Cache) Fill(a addr.Address, markDirty bool) (victim addr.Address, writeback bool) {
	set, tag := c.index(a)
	c.tick++
	ways := c.sets[set]
	// Already present (e.g. filled by a merged miss): just update state.
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].lru = c.tick
			if markDirty {
				ways[i].dirty = true
			}
			return 0, false
		}
	}
	victimIdx := 0
	for i := range ways {
		if !ways[i].valid {
			victimIdx = i
			break
		}
		if ways[i].lru < ways[victimIdx].lru {
			victimIdx = i
		}
	}
	v := &ways[victimIdx]
	if v.valid && v.dirty {
		victim = addr.Address(v.tag << c.shift)
		writeback = true
		c.stats.Writebacks++
	}
	*v = line{tag: tag, valid: true, dirty: markDirty, lru: c.tick}
	return victim, writeback
}

// FlushDirty cleans every dirty line, returning their base addresses so the
// caller can issue write-backs (the software-managed coherence flush at
// kernel boundaries, §II of the paper). Lines stay resident but clean.
func (c *Cache) FlushDirty() []addr.Address {
	var dirty []addr.Address
	for s := range c.sets {
		for w := range c.sets[s] {
			ln := &c.sets[s][w]
			if ln.valid && ln.dirty {
				dirty = append(dirty, addr.Address(ln.tag<<c.shift))
				ln.dirty = false
				c.stats.Writebacks++
			}
		}
	}
	return dirty
}

// InvalidateAll drops every line without writebacks (used between kernels,
// mirroring software-managed coherence flushes).
func (c *Cache) InvalidateAll() {
	for s := range c.sets {
		for w := range c.sets[s] {
			c.sets[s][w] = line{}
		}
	}
}

// Stats returns the event counters so far.
func (c *Cache) Stats() Stats { return c.stats }

// LineBytes returns the configured line size.
func (c *Cache) LineBytes() int { return c.cfg.LineBytes }
