package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

func TestMSHRNewValidation(t *testing.T) {
	if _, err := NewMSHR(0, 0); err == nil {
		t.Error("capacity 0 should be rejected")
	}
	if _, err := NewMSHR(64, 8); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestMSHRAllocateAndMerge(t *testing.T) {
	m := MustNewMSHR(4, 0)
	if got := m.Allocate(0x100, 1); got != AllocNew {
		t.Fatalf("first miss: got %v, want AllocNew", got)
	}
	if got := m.Allocate(0x100, 2); got != AllocMerged {
		t.Fatalf("second miss same line: got %v, want AllocMerged", got)
	}
	if m.InFlight() != 1 {
		t.Errorf("InFlight = %d, want 1", m.InFlight())
	}
	if m.MergedMisses() != 1 {
		t.Errorf("MergedMisses = %d, want 1", m.MergedMisses())
	}
	waiters := m.Fill(0x100)
	if len(waiters) != 2 || waiters[0] != 1 || waiters[1] != 2 {
		t.Errorf("Fill returned %v, want [1 2]", waiters)
	}
	if m.Pending(0x100) {
		t.Error("entry should be released after Fill")
	}
}

func TestMSHRCapacityStall(t *testing.T) {
	m := MustNewMSHR(2, 0)
	m.Allocate(0x0, 1)
	m.Allocate(0x40, 2)
	if !m.Full() {
		t.Error("table should be full")
	}
	if got := m.Allocate(0x80, 3); got != AllocStallFull {
		t.Errorf("allocation beyond capacity: got %v, want AllocStallFull", got)
	}
	// Merging is still allowed when full.
	if got := m.Allocate(0x0, 4); got != AllocMerged {
		t.Errorf("merge when full: got %v, want AllocMerged", got)
	}
}

func TestMSHRPerEntryMergeLimit(t *testing.T) {
	m := MustNewMSHR(4, 2)
	m.Allocate(0x0, 1)
	if got := m.Allocate(0x0, 2); got != AllocMerged {
		t.Fatalf("second waiter: got %v", got)
	}
	if got := m.Allocate(0x0, 3); got != AllocStallFull {
		t.Errorf("third waiter beyond merge limit: got %v, want AllocStallFull", got)
	}
}

func TestMSHRFillUnknownLine(t *testing.T) {
	m := MustNewMSHR(4, 0)
	if ws := m.Fill(0xdead); ws != nil {
		t.Errorf("fill of unknown line returned %v, want nil", ws)
	}
}

func TestMSHRPeak(t *testing.T) {
	m := MustNewMSHR(8, 0)
	for i := 0; i < 5; i++ {
		m.Allocate(addr.Address(i*64), Waiter(i))
	}
	m.Fill(0)
	m.Fill(64)
	if m.Peak() != 5 {
		t.Errorf("peak = %d, want 5", m.Peak())
	}
}

func TestMSHRPropertyConservation(t *testing.T) {
	// Property: every allocated waiter is returned by exactly one Fill.
	f := func(ops []uint16) bool {
		m := MustNewMSHR(8, 0)
		allocated := map[Waiter]bool{}
		released := map[Waiter]bool{}
		next := Waiter(0)
		lines := []addr.Address{0, 64, 128, 192}
		for _, op := range ops {
			line := lines[int(op)%len(lines)]
			if op%3 == 0 {
				for _, w := range m.Fill(line) {
					if released[w] {
						return false // double release
					}
					released[w] = true
				}
			} else {
				if out := m.Allocate(line, next); out != AllocStallFull {
					allocated[next] = true
					next++
				}
			}
		}
		// Drain remaining entries.
		for _, line := range lines {
			for _, w := range m.Fill(line) {
				if released[w] {
					return false
				}
				released[w] = true
			}
		}
		if len(allocated) != len(released) {
			return false
		}
		for w := range allocated {
			if !released[w] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
