package cache

import (
	"fmt"

	"repro/internal/addr"
)

// Waiter is an opaque token identifying who is waiting on a miss (for the
// GPU cores it encodes a warp). It is returned verbatim by Fill.
type Waiter uint64

// MSHR is a miss-status holding register table: it tracks outstanding line
// misses and merges later misses to a line already being fetched, so only
// one request per line is in flight (the paper models 64 MSHRs per core).
type MSHR struct {
	capacity     int
	maxPerEntry  int
	entries      map[addr.Address][]Waiter
	mergedMisses uint64
	peak         int
}

// NewMSHR builds a table with the given number of entries. maxPerEntry
// bounds how many waiters may merge on one line (<=0 means unlimited).
func NewMSHR(capacity, maxPerEntry int) (*MSHR, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("cache: MSHR capacity must be positive, got %d", capacity)
	}
	return &MSHR{
		capacity:    capacity,
		maxPerEntry: maxPerEntry,
		entries:     make(map[addr.Address][]Waiter, capacity),
	}, nil
}

// MustNewMSHR is NewMSHR but panics on error.
func MustNewMSHR(capacity, maxPerEntry int) *MSHR {
	m, err := NewMSHR(capacity, maxPerEntry)
	if err != nil {
		panic(err)
	}
	return m
}

// Outcome reports what Allocate did.
type Outcome int

// Allocate outcomes.
const (
	// AllocNew means a new entry was created: the caller must send a
	// memory request for the line.
	AllocNew Outcome = iota
	// AllocMerged means the miss was merged onto an in-flight entry:
	// no new request is needed.
	AllocMerged
	// AllocStallFull means the table (or the entry's merge capacity) is
	// full: the access must be retried later.
	AllocStallFull
)

// Allocate records a miss on line by w. See Outcome for the contract.
func (m *MSHR) Allocate(line addr.Address, w Waiter) Outcome {
	if waiters, ok := m.entries[line]; ok {
		if m.maxPerEntry > 0 && len(waiters) >= m.maxPerEntry {
			return AllocStallFull
		}
		m.entries[line] = append(waiters, w)
		m.mergedMisses++
		return AllocMerged
	}
	if len(m.entries) >= m.capacity {
		return AllocStallFull
	}
	m.entries[line] = []Waiter{w}
	if len(m.entries) > m.peak {
		m.peak = len(m.entries)
	}
	return AllocNew
}

// Pending reports whether line has an in-flight entry.
func (m *MSHR) Pending(line addr.Address) bool {
	_, ok := m.entries[line]
	return ok
}

// Fill completes the miss on line, releasing and returning all waiters.
// Filling a line with no entry returns nil (harmless, e.g. after a flush).
func (m *MSHR) Fill(line addr.Address) []Waiter {
	waiters := m.entries[line]
	delete(m.entries, line)
	return waiters
}

// InFlight returns the number of occupied entries.
func (m *MSHR) InFlight() int { return len(m.entries) }

// Full reports whether a new (non-merging) allocation would stall.
func (m *MSHR) Full() bool { return len(m.entries) >= m.capacity }

// MergedMisses returns how many misses were merged onto existing entries.
func (m *MSHR) MergedMisses() uint64 { return m.mergedMisses }

// Peak returns the maximum simultaneous occupancy observed.
func (m *MSHR) Peak() int { return m.peak }
