package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"os"
	"testing"

	"repro/internal/noc"
)

// The golden digests below pin the bit-exact behaviour of seeded closed-loop
// runs across the cycle-kernel refactor: any change to allocation order,
// arbitration, queueing or traversal that alters a single flit movement shows
// up as a digest mismatch. They were recorded before the hot path moved onto
// flat allocator state, ring buffers and active-component lists, and every
// stage of that refactor was required to keep them bit-identical (the same
// bar PR 1 set for rate-0 fault injection).
//
// To re-record after an INTENTIONAL behaviour change (never to paper over an
// unexplained mismatch), run:
//
//	GOLDEN_RECORD=1 go test -run TestGoldenDigests -v ./internal/core/
//
// and paste the printed table over goldenDigests.

// goldenCase is one seeded configuration point in the determinism matrix.
type goldenCase struct {
	id    string
	build func() Config
}

// goldenScale keeps each run to a fraction of a second while still driving
// thousands of interconnect cycles through every router feature on the path.
const goldenScale = 0.04

func goldenMatrix() []goldenCase {
	hh := quickProfile("HH") // memory-heavy: real contention in the mesh
	ll := quickProfile("LL")
	return []goldenCase{
		{"baseline-dor", func() Config { return Baseline(hh).ScaleWork(goldenScale) }},
		{"checkerboard-cr", func() Config { return Baseline(hh).WithCheckerboardRouting().ScaleWork(goldenScale) }},
		{"double-net", func() Config {
			return Baseline(hh).WithCheckerboardRouting().WithDoubleNetwork().ScaleWork(goldenScale)
		}},
		{"multiport-mc", func() Config { return Baseline(hh).WithMCInjectionPorts(2).ScaleWork(goldenScale) }},
		{"faults-on", func() Config { return Baseline(ll).WithFaults(0.002, 7).ScaleWork(goldenScale) }},
		{"gto-1cycle", func() Config {
			c := Baseline(hh).With1CycleRouters().ScaleWork(goldenScale)
			c.Core.Scheduler = 1 // gpu.SchedGTO without importing gpu here
			return c
		}},
		// Non-mesh topology backends: the same closed-loop system on the
		// Wu-style ring (dateline VCs, arc-segment shards) and the BaseJump
		// single-flit DOR mesh (column-band shards), pinned through the
		// identical serial-vs-sharded matrix.
		{"ring", func() Config { return Ring(hh).ScaleWork(goldenScale) }},
		{"basejump", func() Config { return BaseJump(hh).ScaleWork(goldenScale) }},
	}
}

// goldenDigests maps case id -> sha256 over the run's Result and per-node
// flit counters, recorded at the pre-refactor seed state.
var goldenDigests = map[string]string{
	"baseline-dor":    "557ff6ccda4c9e8e662596e329c9c95542e3b3f911d64c908f956ffe0d5a8a0f",
	"checkerboard-cr": "f97af32099319b5bde62319898fc2f0b32c9265bc3d494f6a49188f3bcd9ddf6",
	"double-net":      "4efac4ba0ba848726ec33ed51a7da809d8e099b2e7fb4e58167c80dcd791d6fd",
	"multiport-mc":    "e917e230040d206fb4bb39615daeb19934543aff21a2de7818d39ddffbea3fe5",
	"faults-on":       "97847ca5ce152c9f81a316216a962a51d653cb447b99055b9276ac0dbef77d55",
	"gto-1cycle":      "db76eefa868c75cd2876fed07c006084bd5cf30c63cc972fa965b11ec89a00d3",
	"ring":            "51e4b0e39959fe1bc680344dd50762ead988123e32f4179b1857b47490d2c992",
	"basejump":        "1ad401730d4b84114e72652da7d59ec1d2a707ab764f70715b72a84ee896392b",
}

// digestRun hashes everything observable about a seeded run: scalar results
// (floats by their exact bit patterns), cycle counts, resilience counters and
// the per-node injected/ejected flit and packet tallies.
func digestRun(res Result, ns *noc.NetStats) string {
	h := sha256.New()
	wu := func(v uint64) { fmt.Fprintf(h, "%d,", v) }
	wf := func(v float64) { fmt.Fprintf(h, "%x,", math.Float64bits(v)) }
	fmt.Fprintf(h, "%s|%s|", res.Benchmark, res.Config)
	wu(res.ScalarInstrs)
	wu(res.CoreCycles)
	wu(res.IcntCycles)
	wf(res.IPC)
	wf(res.AvgNetLatency)
	wf(res.AcceptedBytes)
	wf(res.MCStallFraction)
	wf(res.MCInjRate)
	wf(res.CoreInjRate)
	wf(res.DRAMEfficiency)
	wf(res.L1HitRate)
	wf(res.L2HitRate)
	fmt.Fprintf(h, "%s|", res.Status)
	wu(res.RetxPackets)
	wu(res.DroppedPackets)
	wf(res.AvgRetries)
	wu(ns.FlitHops)
	wu(ns.CorruptFlits)
	wu(ns.LostCredits)
	wu(ns.StuckVCFaults)
	for _, v := range ns.InjectedFlits {
		wu(v)
	}
	for _, v := range ns.InjectedPackets {
		wu(v)
	}
	for _, v := range ns.EjectedFlits {
		wu(v)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// goldenShardCounts is the sharded-kernel determinism matrix: every golden
// configuration must produce the SAME recorded digest under the serial
// kernel and under 2- and 4-way column-band sharding. One digest table
// serves all three, which is the point — sharding may only change
// wall-clock time, never a single bit of simulated behaviour.
var goldenShardCounts = []int{1, 2, 4}

// TestGoldenDigests proves seeded runs are bit-identical to the recorded
// pre-refactor behaviour across the configuration matrix, for the serial
// and the sharded cycle kernel alike.
func TestGoldenDigests(t *testing.T) {
	record := os.Getenv("GOLDEN_RECORD") != ""
	for _, gc := range goldenMatrix() {
		gc := gc
		for _, shards := range goldenShardCounts {
			shards := shards
			t.Run(fmt.Sprintf("%s/shards-%d", gc.id, shards), func(t *testing.T) {
				sys, err := NewSystem(gc.build().WithShards(shards))
				if err != nil {
					t.Fatal(err)
				}
				res, runErr := sys.Run(nil)
				if runErr != nil {
					t.Fatalf("run degraded: %v", runErr)
				}
				got := digestRun(res, sys.NetStats())
				if record {
					if shards == 1 {
						fmt.Printf("\t%q: %q,\n", gc.id, got)
					}
					return
				}
				want, ok := goldenDigests[gc.id]
				if !ok {
					t.Fatalf("no golden digest recorded for %s", gc.id)
				}
				if got != want {
					t.Errorf("digest mismatch for %s at %d shards:\n got  %s\n want %s\n"+
						"(a seeded run is no longer bit-identical; if the change is intentional, "+
						"re-record with GOLDEN_RECORD=1)", gc.id, shards, got, want)
				}
			})
		}
	}
}

// goldenLaneCounts is the lane-batched determinism matrix: every golden
// configuration must produce the SAME recorded digest when its seed runs
// solo, and when it runs as lane 0 of a 2- or 4-lane batch whose sibling
// lanes carry different seeds. Lane batching — like sharding — may only
// change wall-clock time, never a single bit of any lane's simulated
// behaviour, so the solo digest table serves every lane count.
var goldenLaneCounts = []int{1, 2, 4}

// TestGoldenDigestsLanes proves each lane of a lane-batched run is
// bit-identical to its solo serial run: lane 0 carries the golden seed and
// must reproduce the recorded digest; every sibling lane (seed+i) must
// reproduce the digest of its own solo run, computed on the fly. The
// lanes×shards point (2 lanes × 2 shards) pins the composition of the two
// wall-clock-only kernels.
func TestGoldenDigestsLanes(t *testing.T) {
	for _, gc := range goldenMatrix() {
		gc := gc
		for _, lanesN := range goldenLaneCounts {
			lanesN := lanesN
			for _, shards := range []int{1, 2} {
				shards := shards
				if shards != 1 && lanesN != 2 {
					continue // one composition point per case keeps runtime sane
				}
				t.Run(fmt.Sprintf("%s/lanes-%d/shards-%d", gc.id, lanesN, shards), func(t *testing.T) {
					cfg := gc.build().WithShards(shards).WithLanes(lanesN)
					seeds := make([]uint64, lanesN)
					for i := range seeds {
						seeds[i] = cfg.Seed + uint64(i)
					}
					if lanesN == 1 {
						// One lane delegates to the solo path; the digest
						// identity is the plain golden check.
						results, errs := RunLanes(nil, cfg, seeds)
						if errs[0] != nil {
							t.Fatalf("run degraded: %v", errs[0])
						}
						_ = results
						return
					}
					lanes, buildErrs := runLanes(nil, cfg, seeds)
					for i, l := range lanes {
						if l == nil {
							t.Fatalf("lane %d failed to build: %v", i, buildErrs[i])
						}
						if l.runErr != nil {
							t.Fatalf("lane %d degraded: %v", i, l.runErr)
						}
						got := digestRun(l.res, l.sys.NetStats())
						want := ""
						if i == 0 {
							want = goldenDigests[gc.id]
						} else {
							// Sibling seeds have no recorded digest; their
							// reference is the solo run of the same seed.
							solo := cfg
							solo.Seed = seeds[i]
							sys, err := NewSystem(solo)
							if err != nil {
								t.Fatal(err)
							}
							res, runErr := sys.Run(nil)
							if runErr != nil {
								t.Fatalf("solo reference degraded: %v", runErr)
							}
							want = digestRun(res, sys.NetStats())
						}
						if got != want {
							t.Errorf("lane %d (seed %d) is not bit-identical to its solo run:\n got  %s\n want %s",
								i, seeds[i], got, want)
						}
					}
				})
			}
		}
	}
}

// TestGoldenDigestsStable runs one matrix point twice and demands identical
// digests, so flakiness in the harness itself (map iteration, pooling resets)
// cannot masquerade as refactor-induced drift.
func TestGoldenDigestsStable(t *testing.T) {
	gc := goldenMatrix()[0]
	var digests [2]string
	for i := range digests {
		sys, err := NewSystem(gc.build())
		if err != nil {
			t.Fatal(err)
		}
		res, runErr := sys.Run(nil)
		if runErr != nil {
			t.Fatal(runErr)
		}
		digests[i] = digestRun(res, sys.NetStats())
	}
	if digests[0] != digests[1] {
		t.Fatalf("same config, different digests: %s vs %s", digests[0], digests[1])
	}
}
