package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/addr"
	"repro/internal/fault"
	"repro/internal/gpu"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/timing"
	"repro/internal/workload"
)

// defaultMaxIcntCycles is the safety stop for runs that fail to converge.
const defaultMaxIcntCycles = 30_000_000

// Result summarizes one closed-loop run.
type Result struct {
	Benchmark string
	Config    string

	IPC          float64 // scalar instructions per core clock
	ScalarInstrs uint64
	CoreCycles   uint64
	IcntCycles   uint64

	AvgNetLatency   float64 // mean packet network latency, icnt cycles
	AcceptedBytes   float64 // payload bytes/cycle/node (traffic class metric)
	MCStallFraction float64 // mean over MCs (Fig 11 metric)
	MCInjRate       float64 // mean flits/cycle at MC nodes (Fig 8 x-axis)
	CoreInjRate     float64 // mean flits/cycle at compute nodes
	DRAMEfficiency  float64 // mean over channels
	L1HitRate       float64
	L2HitRate       float64
	TimedOut        bool // hit MaxIcntCycles before completing

	// Resilience outcome.
	Status         string  // "ok", "cycle-cap", "deadlock", "livelock", "stall", "invariant"
	RetxPackets    uint64  // wire packets re-injected by the timeout machinery
	DroppedPackets uint64  // packets discarded by the end-to-end check
	AvgRetries     float64 // mean retries per delivered transfer
}

// OK reports whether the run completed without a degradation verdict.
func (r Result) OK() bool { return r.Status == "" || r.Status == "ok" }

// statusOf maps a run error to the Result.Status vocabulary.
func statusOf(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, fault.ErrCycleCap):
		return "cycle-cap"
	case errors.Is(err, fault.ErrDeadlock):
		return "deadlock"
	case errors.Is(err, fault.ErrLivelock):
		return "livelock"
	case errors.Is(err, fault.ErrStall):
		return "stall"
	case errors.Is(err, fault.ErrInvariant):
		return "invariant"
	case errors.Is(err, fault.ErrTimeout):
		return "timeout"
	case errors.Is(err, fault.ErrCanceled):
		return "canceled"
	}
	return "error"
}

// System is one assembled accelerator.
type System struct {
	cfg       Config
	sched     *timing.Scheduler
	net       noc.Network
	backend   noc.Backend
	mapper    *addr.Mapper
	cores     []*gpu.Core
	coreNodes []noc.NodeID
	coreOf    map[noc.NodeID]int
	mcs       []*mem.MCNode
	mcOf      map[noc.NodeID]*mem.MCNode
	mcNodes   []noc.NodeID
	pool      noc.PacketPool // recycles request/reply packets across the run

	// coreQuiet caches, per core, that NextWorkCycle last returned
	// NeverCycle: the core stays asleep until an external event, so the
	// idle-horizon scan can skip its warp tables. Cleared on the only two
	// events that can wake a quiet core — a DeliverFill in deliver() and a
	// PopRequest in injectCoreRequests().
	coreQuiet []bool
}

// NewSystem builds the system for cfg.
func NewSystem(cfg Config) (*System, error) { return newSystem(cfg, nil) }

// newSystem builds the system, optionally sharing a prebuilt topology
// backend (lane-batched seed replicas build geometry and route tables once;
// see RunLanes). A nil share builds the backend from cfg as usual.
func newSystem(cfg Config, share noc.Backend) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sched, err := timing.NewScheduler(cfg.Clocks.CoreMHz, cfg.Clocks.IcntMHz, cfg.Clocks.DRAMMHz)
	if err != nil {
		return nil, err
	}
	// Thread the shard request into the network config; the mesh performs
	// its own clamping (column count, fault gating).
	cfg.Noc.Shards = ResolveShards(cfg.Shards)
	s := &System{cfg: cfg, sched: sched}

	switch cfg.Net {
	case NetMesh:
		var m *noc.Mesh
		if share != nil {
			m, err = noc.NewMeshWithBackend(cfg.Noc, share)
		} else {
			m, err = noc.NewMesh(cfg.Noc)
		}
		if err != nil {
			return nil, err
		}
		s.net, s.backend = m, m.Backend()
	case NetDouble, NetDoubleBalanced:
		build := noc.NewDouble
		if cfg.Net == NetDoubleBalanced {
			build = noc.NewDoubleBalanced
		}
		d, err := build(cfg.Noc)
		if err != nil {
			return nil, err
		}
		s.net, s.backend = d, d.Subnet(noc.ClassRequest).Backend()
	case NetPerfect, NetIdealCapped:
		capFlits := 0.0
		if cfg.Net == NetIdealCapped {
			capFlits = cfg.IdealCapFlits
		}
		n, err := noc.NewIdeal(cfg.Noc.Width*cfg.Noc.Height, cfg.Noc.FlitBytes, capFlits)
		if err != nil {
			return nil, err
		}
		// Node roles come from a routing-neutral backend of the configured
		// topology (half-routers irrelevant on an ideal network).
		role := cfg.Noc
		role.Checkerboard = false
		role.Routing = noc.RoutingDOR
		backend, err := noc.BuildBackend(role)
		if err != nil {
			return nil, err
		}
		s.net, s.backend = n, backend
	default:
		return nil, fmt.Errorf("core: unknown network kind %v", cfg.Net)
	}

	s.mapper, err = addr.NewMapper(addr.Config{
		NumMCs:     len(cfg.Noc.MCs),
		LineBytes:  uint64(cfg.Core.L1.LineBytes),
		BanksPerMC: uint64(cfg.Mem.DRAM.NumBanks),
	})
	if err != nil {
		return nil, err
	}

	s.coreOf = make(map[noc.NodeID]int)
	computeNodes := s.backend.ComputeNodes()
	for i, node := range computeNodes {
		gen, err := workload.NewGenerator(cfg.Workload, i, len(computeNodes), cfg.Seed)
		if err != nil {
			return nil, err
		}
		c, err := gpu.New(cfg.Core, gen)
		if err != nil {
			return nil, err
		}
		s.cores = append(s.cores, c)
		s.coreNodes = append(s.coreNodes, node)
		s.coreOf[node] = i
	}
	s.coreQuiet = make([]bool, len(s.cores))

	s.mcOf = make(map[noc.NodeID]*mem.MCNode)
	for _, node := range s.backend.MCs() {
		mc, err := mem.New(cfg.Mem, node, s.mapper)
		if err != nil {
			return nil, err
		}
		mc.SetPool(&s.pool)
		s.mcs = append(s.mcs, mc)
		s.mcOf[node] = mc
		s.mcNodes = append(s.mcNodes, node)
	}
	return s, nil
}

// Run executes the kernel to completion (or until a degradation verdict)
// and returns the run's statistics. A non-nil error is a *fault.HangError
// (cycle cap, deadlock, livelock, system stall, invariant violation, or a
// context verdict); the Result is still populated so harnesses can record
// the degraded run.
//
// The context bounds the run in wall-clock time: a deadline expiry yields
// a "timeout" verdict and a cancellation a "canceled" one, both checked
// every ctxCheckPeriod interconnect cycles so a wedged simulation can
// never outlive its harness. A nil context behaves like
// context.Background().
func Run(ctx context.Context, cfg Config) (Result, error) {
	s, err := NewSystem(cfg)
	if err != nil {
		return Result{}, err
	}
	return s.Run(ctx)
}

// MustRun is Run with a background context; it panics on configuration
// errors. Degraded runs (hang verdicts from the watchdogs or the cycle
// cap) do not panic: the partial Result comes back with its Status field
// set, preserving the historical behaviour where timed-out runs returned a
// TimedOut result.
func MustRun(cfg Config) Result {
	r, err := Run(context.Background(), cfg)
	if err != nil && !fault.IsHang(err) {
		panic(err)
	}
	return r
}

// stallCheckPeriod is how often (in interconnect cycles) Run feeds the
// system-level stall watchdog.
const stallCheckPeriod = 64

// ctxCheckPeriod is how often (in interconnect cycles) Run polls its
// context for a deadline or cancellation. Coarse enough to stay off the
// hot path, fine enough that a timed-out run dies within microseconds.
const ctxCheckPeriod = 256

// ctxCondition maps a context error to the typed fault vocabulary.
func ctxCondition(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return fault.ErrTimeout
	}
	return fault.ErrCanceled
}

// Run drives the clock domains until the kernel completes, the cycle cap
// trips, a health monitor declares the run degraded, or ctx expires.
func (s *System) Run(ctx context.Context) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	maxIcnt := s.cfg.MaxIcntCycles
	if maxIcnt == 0 {
		maxIcnt = defaultMaxIcntCycles
	}
	// The system stall watchdog backs up the network's: it watches total
	// forward progress (instructions, memory work and flit movement), so it
	// also catches hangs outside the network. Same window, in icnt cycles.
	var wd *fault.Watchdog
	if s.cfg.Noc.Fault.Monitored() {
		wd = fault.NewWatchdog(s.cfg.Noc.Fault.WatchdogCycles)
	}
	buf := make([]timing.Domain, 0, 3)
	skip := !s.cfg.NoIdleSkip
	var runErr error
	timedOut := false
	for !s.done() {
		icnt := s.sched.Cycles(timing.DomainInterconnect)
		if icnt >= maxIcnt {
			timedOut = true
			runErr = fault.Hang(fault.ErrCycleCap, s.diagnose("cycle-cap"))
			break
		}
		if icnt%ctxCheckPeriod == 0 {
			if cerr := ctx.Err(); cerr != nil {
				cond := ctxCondition(cerr)
				runErr = fault.Hang(cond, s.diagnose(statusOf(cond)))
				break
			}
		}
		buf = s.sched.Step(buf)
		icntTicked := false
		for _, d := range buf {
			switch d {
			case timing.DomainCore:
				for _, c := range s.cores {
					c.Tick()
				}
			case timing.DomainInterconnect:
				s.icntTick()
				icntTicked = true
			case timing.DomainDRAM:
				for _, mc := range s.mcs {
					mc.TickDRAM()
				}
			}
		}
		if err := s.net.Health(); err != nil {
			runErr = err
			break
		}
		if wd != nil && icnt%stallCheckPeriod == 0 &&
			wd.Observe(icnt, s.progress(), 1) {
			runErr = fault.Hang(fault.ErrStall, s.diagnose("stall"))
			break
		}
		// Attempt a fast-forward only after interconnect edges: idle
		// windows always span whole interconnect cycles, and gating the
		// attempt keeps the horizon scans off the core/DRAM-edge
		// iterations (roughly four in five) during busy phases.
		if skip && icntTicked {
			s.maybeSkip(wd, maxIcnt)
		}
	}
	res := s.result(timedOut)
	res.Status = statusOf(runErr)
	return res, runErr
}

// maybeSkip fast-forwards the scheduler across a fully idle window. It asks
// every subsystem for a conservative next-work horizon, converts each to an
// absolute femtosecond instant, and bulk-advances the scheduler to the
// earliest one with SkipTo; the credited idle edges are replayed onto each
// component with its SkipAhead, which is defined to be bit-identical to
// ticking it that many times under its NextWorkCycle guarantee. When any
// domain has work on its very next edge the method returns without touching
// anything, so the edge-by-edge path stays the ground truth.
func (s *System) maybeSkip(wd *fault.Watchdog, maxIcnt uint64) {
	const never = noc.NeverCycle

	// Core horizon first: in compute-bound phases some core works on its
	// very next tick, so this scan is the cheap early-out. A queued
	// outbound request forces a real interconnect tick (injection). Cores
	// whose NextWorkCycle returned NeverCycle stay asleep until an
	// external event clears coreQuiet, so their warp scans are skipped.
	coreNow := s.sched.Cycles(timing.DomainCore)
	kCore := never
	for i, c := range s.cores {
		if _, ok := c.PeekRequest(); ok {
			return
		}
		if s.coreQuiet[i] {
			continue
		}
		w := c.NextWorkCycle()
		if w == gpu.NeverCycle {
			s.coreQuiet[i] = true
			continue
		}
		if w <= coreNow+1 {
			return // core issues or accesses its L1 on the very next tick
		}
		if k := w - coreNow - 1; k < kCore {
			kCore = k
		}
	}

	// Interconnect horizon: the network itself and each MC's network side
	// ride the same domain. An interconnect tick receives the pre-tick
	// cycle count, so an MC horizon of w means w-icntNow idle ticks, while
	// the network's w (a post-tick count) leaves w-icntNow-1.
	icntNow := s.sched.Cycles(timing.DomainInterconnect)
	kIcnt := never
	if w := s.net.NextWorkCycle(); w != never {
		if w <= icntNow+1 {
			return // network moves flits on the very next tick
		}
		kIcnt = w - icntNow - 1
	}
	for _, mc := range s.mcs {
		w := mc.NextIcntWorkCycle(icntNow)
		if w == mem.NeverCycle {
			continue
		}
		if w <= icntNow {
			return // MC processes or injects on the very next tick
		}
		if k := w - icntNow; k < kIcnt {
			kIcnt = k
		}
	}

	// DRAM horizon. Unlike the gates above, imminent DRAM work only bounds
	// the skip: core and interconnect edges strictly before the next DRAM
	// work edge are still credited, which is where memory-bound phases
	// (every warp parked on an outstanding fetch) win their wall-clock.
	dramNow := s.sched.Cycles(timing.DomainDRAM)
	kDram := never
	for _, mc := range s.mcs {
		w := mc.NextDRAMWorkCycle()
		if w == mem.NeverCycle {
			continue
		}
		if k := w - dramNow - 1; k < kDram {
			kDram = k
		}
	}

	// The stall watchdog samples at interconnect cycles that are multiples
	// of stallCheckPeriod, and Run feeds it the loop-top cycle count; the
	// skip must leave those samples exactly where stepping would put them.
	if wd != nil {
		if wd.Synced(s.progress()) {
			// The recorded window is live: the first sample at or past
			// LastMovement+Window trips (idle windows cannot advance
			// the progress counter). Keep every interconnect edge from
			// that sample's cycle onward un-skipped so the trip — and
			// the domain counters its diagnostic reports — are
			// bit-identical to stepping.
			c := ceilCheck(wd.LastMovement() + wd.Window)
			if c <= icntNow {
				return
			}
			if b := c - icntNow - 1; b < kIcnt {
				kIcnt = b
			}
		} else {
			// Progress advanced since the last sample, so the next
			// sample resets the window; it must observe the same cycle
			// value under skipping as under stepping.
			if b := ceilCheck(icntNow) - icntNow; b < kIcnt {
				kIcnt = b
			}
		}
	}

	// A completed run exits at the next loop-top done() check without
	// ticking again; skipping past that point would tack idle cycles onto
	// the final counters. Checked this late because it only matters once
	// every horizon is quiescent — busy systems returned above.
	if s.done() {
		return
	}

	// Earliest real-work instant across the domains, capped at the cycle
	// limit's own edge so a cycle-cap verdict lands with every counter
	// unchanged.
	h := s.sched.EdgeFs(timing.DomainInterconnect, maxIcnt)
	if kCore != never {
		if t := s.sched.HorizonFs(timing.DomainCore, kCore); t < h {
			h = t
		}
	}
	if kIcnt != never {
		if t := s.sched.HorizonFs(timing.DomainInterconnect, kIcnt); t < h {
			h = t
		}
	}
	if kDram != never {
		if t := s.sched.HorizonFs(timing.DomainDRAM, kDram); t < h {
			h = t
		}
	}
	if h <= s.sched.NextFs() {
		return // no edge strictly inside the idle window
	}
	credits := s.sched.SkipTo(h)
	if n := credits[timing.DomainCore]; n > 0 {
		for _, c := range s.cores {
			c.SkipAhead(n)
		}
	}
	if n := credits[timing.DomainInterconnect]; n > 0 {
		s.net.SkipAhead(n)
		for _, mc := range s.mcs {
			mc.SkipIcnt(n)
		}
	}
	if n := credits[timing.DomainDRAM]; n > 0 {
		for _, mc := range s.mcs {
			mc.SkipDRAM(n)
		}
	}
}

// ceilCheck rounds x up to the next multiple of stallCheckPeriod (a power
// of two).
func ceilCheck(x uint64) uint64 {
	return (x + stallCheckPeriod - 1) &^ uint64(stallCheckPeriod-1)
}

// progress sums the monotonic work counters of every component: cores, MCs
// and the network (flit hops plus the packets it has ever accepted).
func (s *System) progress() uint64 {
	var total uint64
	for _, c := range s.cores {
		total += c.Progress()
	}
	for _, mc := range s.mcs {
		total += mc.Progress()
	}
	ns := s.net.Stats()
	total += ns.FlitHops
	for _, v := range ns.EjectedFlits {
		total += v
	}
	return total
}

// diagnose builds the system-level diagnostic for a cycle-cap or stall
// verdict: per-component work snapshots, plus the network's own dump when
// it has one.
func (s *System) diagnose(kind string) *fault.Diagnostic {
	d := &fault.Diagnostic{
		Kind:  kind,
		Cycle: s.sched.Cycles(timing.DomainInterconnect),
	}
	coresDone := 0
	for _, c := range s.cores {
		if c.Done() {
			coresDone++
		}
	}
	mcsBusy := 0
	for _, mc := range s.mcs {
		if mc.Busy() {
			mcsBusy++
		}
	}
	d.Notes = append(d.Notes,
		fmt.Sprintf("%d/%d cores done, %d/%d MCs busy, network quiet=%v",
			coresDone, len(s.cores), mcsBusy, len(s.mcs), s.net.Quiet()))
	d.Notes = append(d.Notes, fmt.Sprintf("total progress counter %d", s.progress()))
	if nd, ok := s.net.(interface{ Diagnostics() *fault.Diagnostic }); ok {
		if sub := nd.Diagnostics(); sub != nil {
			d.VCs = append(d.VCs, sub.VCs...)
			d.Notes = append(d.Notes, sub.Notes...)
		}
	}
	if !s.net.Quiet() {
		d.InFlight = 1 // at least the network holds work; exact count is its own
	}
	return d
}

// icntTick runs one interconnect cycle: core requests enter the network,
// MCs process and inject replies, the network moves flits, and deliveries
// fan back out to cores and MCs.
func (s *System) icntTick() {
	s.injectCoreRequests()
	cycle := s.net.Cycle()
	for _, mc := range s.mcs {
		mc.TickIcnt(cycle, s.net)
	}
	s.net.Tick()
	s.deliver()
}

func (s *System) injectCoreRequests() {
	for i, c := range s.cores {
		for {
			req, ok := c.PeekRequest()
			if !ok {
				break
			}
			pkt := s.packetFor(s.coreNodes[i], req)
			if !s.net.TryInject(pkt) {
				s.pool.Put(pkt)
				break
			}
			c.PopRequest()
			s.coreQuiet[i] = false // out-queue space may unblock a stalled miss
		}
	}
}

func (s *System) packetFor(src noc.NodeID, req gpu.MemRequest) *noc.Packet {
	bytes := mem.ReadRequestBytes
	if req.Write {
		bytes = mem.WriteRequestBytes
	}
	pkt := s.pool.Get()
	pkt.Src = src
	pkt.Dst = s.mcNodes[s.mapper.MC(req.Line)]
	pkt.Class = noc.ClassRequest
	pkt.Bytes = bytes
	pkt.Line = uint64(req.Line)
	pkt.Write = req.Write
	return pkt
}

func (s *System) deliver() {
	for idx, node := range s.coreNodes {
		for _, pkt := range s.net.Delivered(node) {
			if pkt.Class != noc.ClassReply {
				panic(fmt.Sprintf("core: compute node %d received non-reply packet %d", node, pkt.ID))
			}
			s.cores[idx].DeliverFill(addr.Address(pkt.Line))
			s.coreQuiet[idx] = false
			s.pool.Put(pkt)
		}
	}
	for i, node := range s.mcNodes {
		for _, pkt := range s.net.Delivered(node) {
			s.mcs[i].AcceptRequest(pkt) // copies the payload out
			s.pool.Put(pkt)
		}
	}
}

func (s *System) done() bool {
	for _, c := range s.cores {
		if !c.Done() {
			return false
		}
	}
	if !s.net.Quiet() {
		return false
	}
	for _, mc := range s.mcs {
		if mc.Busy() {
			return false
		}
	}
	return true
}

func (s *System) result(timedOut bool) Result {
	res := Result{
		Benchmark:  s.cfg.Workload.Abbr,
		Config:     s.cfg.Name,
		CoreCycles: s.sched.Cycles(timing.DomainCore),
		IcntCycles: s.sched.Cycles(timing.DomainInterconnect),
		TimedOut:   timedOut,
	}
	var l1Hits, l1Total uint64
	for _, c := range s.cores {
		st := c.Stats()
		res.ScalarInstrs += st.ScalarInstrs
		cs := c.L1Stats()
		l1Hits += cs.Hits
		l1Total += cs.Hits + cs.Misses
	}
	if res.CoreCycles > 0 {
		res.IPC = float64(res.ScalarInstrs) / float64(res.CoreCycles)
	}
	if l1Total > 0 {
		res.L1HitRate = float64(l1Hits) / float64(l1Total)
	}

	ns := s.net.Stats()
	res.AvgNetLatency = ns.NetLatency.Value()
	res.AcceptedBytes = ns.AcceptedBytesPerCycle()
	res.RetxPackets = ns.Retransmits
	res.DroppedPackets = ns.DroppedPackets
	res.AvgRetries = ns.RetriesPerPacket.Mean()
	for _, node := range s.mcNodes {
		res.MCInjRate += ns.InjectionRate(node)
	}
	res.MCInjRate /= float64(len(s.mcNodes))
	for _, node := range s.coreNodes {
		res.CoreInjRate += ns.InjectionRate(node)
	}
	res.CoreInjRate /= float64(len(s.coreNodes))

	var l2Hits, l2Total uint64
	for _, mc := range s.mcs {
		res.MCStallFraction += mc.Stats().StallFraction()
		res.DRAMEfficiency += mc.DRAMStats().Efficiency()
		cs := mc.L2Stats()
		l2Hits += cs.Hits
		l2Total += cs.Hits + cs.Misses
	}
	res.MCStallFraction /= float64(len(s.mcs))
	res.DRAMEfficiency /= float64(len(s.mcs))
	if l2Total > 0 {
		res.L2HitRate = float64(l2Hits) / float64(l2Total)
	}
	return res
}

// NetStats exposes the interconnect's aggregate counters (per-node flit
// tallies included), primarily for determinism digests and calibration
// tooling. For double networks the snapshot merges both slices.
func (s *System) NetStats() *noc.NetStats { return s.net.Stats() }

// RowLocality returns the mean DRAM row-hit rate across channels (used by
// calibration tooling).
func (s *System) RowLocality() float64 {
	total := 0.0
	for _, mc := range s.mcs {
		total += mc.DRAMStats().RowLocality()
	}
	return total / float64(len(s.mcs))
}

// AvgDRAMQueue returns the mean DRAM queue occupancy across channels.
func (s *System) AvgDRAMQueue() float64 {
	total := 0.0
	for _, mc := range s.mcs {
		st := mc.DRAMStats()
		if st.TotalQueueSamples > 0 {
			total += float64(st.QueueOccupancySum) / float64(st.TotalQueueSamples)
		}
	}
	return total / float64(len(s.mcs))
}
