package core

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/gpu"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/timing"
	"repro/internal/workload"
)

// defaultMaxIcntCycles is the safety stop for runs that fail to converge.
const defaultMaxIcntCycles = 30_000_000

// Result summarizes one closed-loop run.
type Result struct {
	Benchmark string
	Config    string

	IPC          float64 // scalar instructions per core clock
	ScalarInstrs uint64
	CoreCycles   uint64
	IcntCycles   uint64

	AvgNetLatency   float64 // mean packet network latency, icnt cycles
	AcceptedBytes   float64 // payload bytes/cycle/node (traffic class metric)
	MCStallFraction float64 // mean over MCs (Fig 11 metric)
	MCInjRate       float64 // mean flits/cycle at MC nodes (Fig 8 x-axis)
	CoreInjRate     float64 // mean flits/cycle at compute nodes
	DRAMEfficiency  float64 // mean over channels
	L1HitRate       float64
	L2HitRate       float64
	TimedOut        bool // hit MaxIcntCycles before completing
}

// System is one assembled accelerator.
type System struct {
	cfg       Config
	sched     *timing.Scheduler
	net       noc.Network
	topo      *noc.Topology
	mapper    *addr.Mapper
	cores     []*gpu.Core
	coreNodes []noc.NodeID
	coreOf    map[noc.NodeID]int
	mcs       []*mem.MCNode
	mcOf      map[noc.NodeID]*mem.MCNode
	mcNodes   []noc.NodeID
}

// NewSystem builds the system for cfg.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sched, err := timing.NewScheduler(cfg.Clocks.CoreMHz, cfg.Clocks.IcntMHz, cfg.Clocks.DRAMMHz)
	if err != nil {
		return nil, err
	}
	s := &System{cfg: cfg, sched: sched}

	switch cfg.Net {
	case NetMesh:
		m, err := noc.NewMesh(cfg.Noc)
		if err != nil {
			return nil, err
		}
		s.net, s.topo = m, m.Topology()
	case NetDouble, NetDoubleBalanced:
		build := noc.NewDouble
		if cfg.Net == NetDoubleBalanced {
			build = noc.NewDoubleBalanced
		}
		d, err := build(cfg.Noc)
		if err != nil {
			return nil, err
		}
		s.net, s.topo = d, d.Subnet(noc.ClassRequest).Topology()
	case NetPerfect, NetIdealCapped:
		capFlits := 0.0
		if cfg.Net == NetIdealCapped {
			capFlits = cfg.IdealCapFlits
		}
		n, err := noc.NewIdeal(cfg.Noc.Width*cfg.Noc.Height, cfg.Noc.FlitBytes, capFlits)
		if err != nil {
			return nil, err
		}
		// Node roles come from a plain topology (half-routers irrelevant).
		topo, err := noc.NewTopology(cfg.Noc.Width, cfg.Noc.Height, false, cfg.Noc.MCs)
		if err != nil {
			return nil, err
		}
		s.net, s.topo = n, topo
	default:
		return nil, fmt.Errorf("core: unknown network kind %v", cfg.Net)
	}

	s.mapper, err = addr.NewMapper(addr.Config{
		NumMCs:     len(cfg.Noc.MCs),
		LineBytes:  uint64(cfg.Core.L1.LineBytes),
		BanksPerMC: uint64(cfg.Mem.DRAM.NumBanks),
	})
	if err != nil {
		return nil, err
	}

	s.coreOf = make(map[noc.NodeID]int)
	computeNodes := s.topo.ComputeNodes()
	for i, node := range computeNodes {
		gen, err := workload.NewGenerator(cfg.Workload, i, len(computeNodes), cfg.Seed)
		if err != nil {
			return nil, err
		}
		c, err := gpu.New(cfg.Core, gen)
		if err != nil {
			return nil, err
		}
		s.cores = append(s.cores, c)
		s.coreNodes = append(s.coreNodes, node)
		s.coreOf[node] = i
	}

	s.mcOf = make(map[noc.NodeID]*mem.MCNode)
	for _, node := range s.topo.MCs() {
		mc, err := mem.New(cfg.Mem, node, s.mapper)
		if err != nil {
			return nil, err
		}
		s.mcs = append(s.mcs, mc)
		s.mcOf[node] = mc
		s.mcNodes = append(s.mcNodes, node)
	}
	return s, nil
}

// Run executes the kernel to completion (or the cycle cap) and returns the
// run's statistics.
func Run(cfg Config) (Result, error) {
	s, err := NewSystem(cfg)
	if err != nil {
		return Result{}, err
	}
	return s.Run(), nil
}

// MustRun is Run but panics on error.
func MustRun(cfg Config) Result {
	r, err := Run(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// Run drives the clock domains until the kernel completes.
func (s *System) Run() Result {
	maxIcnt := s.cfg.MaxIcntCycles
	if maxIcnt == 0 {
		maxIcnt = defaultMaxIcntCycles
	}
	buf := make([]timing.Domain, 0, 3)
	timedOut := false
	for !s.done() {
		if s.sched.Cycles(timing.DomainInterconnect) >= maxIcnt {
			timedOut = true
			break
		}
		buf = s.sched.Step(buf)
		for _, d := range buf {
			switch d {
			case timing.DomainCore:
				for _, c := range s.cores {
					c.Tick()
				}
			case timing.DomainInterconnect:
				s.icntTick()
			case timing.DomainDRAM:
				for _, mc := range s.mcs {
					mc.TickDRAM()
				}
			}
		}
	}
	return s.result(timedOut)
}

// icntTick runs one interconnect cycle: core requests enter the network,
// MCs process and inject replies, the network moves flits, and deliveries
// fan back out to cores and MCs.
func (s *System) icntTick() {
	s.injectCoreRequests()
	cycle := s.net.Cycle()
	for _, mc := range s.mcs {
		mc.TickIcnt(cycle, s.net)
	}
	s.net.Tick()
	s.deliver()
}

func (s *System) injectCoreRequests() {
	for i, c := range s.cores {
		for {
			req, ok := c.PeekRequest()
			if !ok {
				break
			}
			pkt := s.packetFor(s.coreNodes[i], req)
			if !s.net.TryInject(pkt) {
				break
			}
			c.PopRequest()
		}
	}
}

func (s *System) packetFor(src noc.NodeID, req gpu.MemRequest) *noc.Packet {
	bytes := mem.ReadRequestBytes
	if req.Write {
		bytes = mem.WriteRequestBytes
	}
	return &noc.Packet{
		Src:   src,
		Dst:   s.mcNodes[s.mapper.MC(req.Line)],
		Class: noc.ClassRequest,
		Bytes: bytes,
		Meta:  mem.Request{Line: req.Line, Write: req.Write},
	}
}

func (s *System) deliver() {
	for idx, node := range s.coreNodes {
		for _, pkt := range s.net.Delivered(node) {
			line, ok := pkt.Meta.(addr.Address)
			if !ok {
				panic(fmt.Sprintf("core: compute node %d received non-reply packet %d", node, pkt.ID))
			}
			s.cores[idx].DeliverFill(line)
		}
	}
	for i, node := range s.mcNodes {
		for _, pkt := range s.net.Delivered(node) {
			s.mcs[i].AcceptRequest(pkt)
		}
	}
}

func (s *System) done() bool {
	for _, c := range s.cores {
		if !c.Done() {
			return false
		}
	}
	if !s.net.Quiet() {
		return false
	}
	for _, mc := range s.mcs {
		if mc.Busy() {
			return false
		}
	}
	return true
}

func (s *System) result(timedOut bool) Result {
	res := Result{
		Benchmark:  s.cfg.Workload.Abbr,
		Config:     s.cfg.Name,
		CoreCycles: s.sched.Cycles(timing.DomainCore),
		IcntCycles: s.sched.Cycles(timing.DomainInterconnect),
		TimedOut:   timedOut,
	}
	var l1Hits, l1Total uint64
	for _, c := range s.cores {
		st := c.Stats()
		res.ScalarInstrs += st.ScalarInstrs
		cs := c.L1Stats()
		l1Hits += cs.Hits
		l1Total += cs.Hits + cs.Misses
	}
	if res.CoreCycles > 0 {
		res.IPC = float64(res.ScalarInstrs) / float64(res.CoreCycles)
	}
	if l1Total > 0 {
		res.L1HitRate = float64(l1Hits) / float64(l1Total)
	}

	ns := s.net.Stats()
	res.AvgNetLatency = ns.NetLatency.Value()
	res.AcceptedBytes = ns.AcceptedBytesPerCycle()
	for _, node := range s.mcNodes {
		res.MCInjRate += ns.InjectionRate(node)
	}
	res.MCInjRate /= float64(len(s.mcNodes))
	for _, node := range s.coreNodes {
		res.CoreInjRate += ns.InjectionRate(node)
	}
	res.CoreInjRate /= float64(len(s.coreNodes))

	var l2Hits, l2Total uint64
	for _, mc := range s.mcs {
		res.MCStallFraction += mc.Stats().StallFraction()
		res.DRAMEfficiency += mc.DRAMStats().Efficiency()
		cs := mc.L2Stats()
		l2Hits += cs.Hits
		l2Total += cs.Hits + cs.Misses
	}
	res.MCStallFraction /= float64(len(s.mcs))
	res.DRAMEfficiency /= float64(len(s.mcs))
	if l2Total > 0 {
		res.L2HitRate = float64(l2Hits) / float64(l2Total)
	}
	return res
}

// RowLocality returns the mean DRAM row-hit rate across channels (used by
// calibration tooling).
func (s *System) RowLocality() float64 {
	total := 0.0
	for _, mc := range s.mcs {
		total += mc.DRAMStats().RowLocality()
	}
	return total / float64(len(s.mcs))
}

// AvgDRAMQueue returns the mean DRAM queue occupancy across channels.
func (s *System) AvgDRAMQueue() float64 {
	total := 0.0
	for _, mc := range s.mcs {
		st := mc.DRAMStats()
		if st.TotalQueueSamples > 0 {
			total += float64(st.QueueOccupancySum) / float64(st.TotalQueueSamples)
		}
	}
	return total / float64(len(s.mcs))
}
