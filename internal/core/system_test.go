package core

import (
	"context"
	"testing"

	"repro/internal/workload"
)

// quickProfile is a small kernel that finishes fast in tests.
func quickProfile(class string) workload.Profile {
	p := workload.Profile{
		Name: "quick", Abbr: "QCK", Class: class,
		Warps: 8, InstrsPerWarp: 60, MemFraction: 0.10, WriteFraction: 0.2,
		LinesPerMemInstr: 2, ActiveThreads: 32, WorkingSetKB: 256,
		Sequential: 0.8, Reuse: 0.1,
	}
	if class == "HH" {
		p.MemFraction = 0.45
		p.Sequential = 0.4
		p.WorkingSetKB = 1024
	}
	return p
}

func TestConfigValidate(t *testing.T) {
	good := Baseline(quickProfile("LL"))
	if err := good.Validate(); err != nil {
		t.Fatalf("baseline rejected: %v", err)
	}
	bad := good
	bad.Clocks.CoreMHz = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero clock accepted")
	}
	bad = good
	bad.Net = NetIdealCapped
	if err := bad.Validate(); err == nil {
		t.Error("capped net without cap accepted")
	}
	bad = good
	bad.Noc.MCs = nil
	if err := bad.Validate(); err == nil {
		t.Error("no MCs accepted")
	}
}

func TestConfigPresetNames(t *testing.T) {
	p := quickProfile("LL")
	cases := []struct {
		cfg  Config
		name string
	}{
		{Baseline(p), "TB-DOR"},
		{Baseline(p).With2xBW(), "2x-TB-DOR"},
		{Baseline(p).WithCheckerboardPlacement(), "CP-DOR"},
		{Baseline(p).WithCheckerboardRouting(), "CP-CR"},
		{ThroughputEffective(p), "Thr.Eff."},
		{Perfect(p), "Perfect"},
	}
	for _, c := range cases {
		if c.cfg.Name != c.name {
			t.Errorf("config name = %q, want %q", c.cfg.Name, c.name)
		}
		if err := c.cfg.Validate(); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}

func TestCapForBWFraction(t *testing.T) {
	// Paper footnote 3: x = 0.816 corresponds to N = 12 flits/iclk.
	cfg := Baseline(quickProfile("LL"))
	n := cfg.CapForBWFraction(0.816)
	if n < 11.5 || n > 12.5 {
		t.Errorf("CapForBWFraction(0.816) = %v, want ~12", n)
	}
}

func TestBaselineRunCompletes(t *testing.T) {
	res := MustRun(Baseline(quickProfile("LL")))
	if res.TimedOut {
		t.Fatal("baseline run timed out")
	}
	if res.IPC <= 0 || res.IPC > 8*28 {
		t.Errorf("IPC = %v out of plausible range", res.IPC)
	}
	// 28 cores x 8 warps x 60 instrs x 32 threads.
	want := uint64(28 * 8 * 60 * 32)
	if res.ScalarInstrs != want {
		t.Errorf("scalar instrs = %d, want %d", res.ScalarInstrs, want)
	}
	if res.AvgNetLatency <= 0 {
		t.Error("no network latency measured")
	}
}

func TestPerfectBeatsBaselineOnHH(t *testing.T) {
	p := quickProfile("HH")
	base := MustRun(Baseline(p))
	perf := MustRun(Perfect(p))
	if base.TimedOut || perf.TimedOut {
		t.Fatal("run timed out")
	}
	if perf.IPC <= base.IPC {
		t.Errorf("perfect IPC %v not above baseline %v for memory-bound kernel",
			perf.IPC, base.IPC)
	}
	if perf.MCStallFraction != 0 {
		t.Errorf("perfect network should never stall MCs, got %v", perf.MCStallFraction)
	}
}

func TestIdealCapLimitsThroughput(t *testing.T) {
	p := quickProfile("HH")
	loose := MustRun(IdealCapped(p, 20))
	tight := MustRun(IdealCapped(p, 0.5))
	if tight.IPC >= loose.IPC {
		t.Errorf("tight cap IPC %v not below loose cap IPC %v", tight.IPC, loose.IPC)
	}
}

func TestAllNetworkKindsComplete(t *testing.T) {
	p := quickProfile("LL")
	configs := []Config{
		Baseline(p),
		Baseline(p).With2xBW(),
		Baseline(p).With1CycleRouters(),
		Baseline(p).WithCheckerboardPlacement(),
		Baseline(p).WithCheckerboardRouting(),
		Baseline(p).WithCheckerboardRouting().WithDoubleNetwork(),
		ThroughputEffective(p),
		Perfect(p),
		IdealCapped(p, 12),
	}
	for _, cfg := range configs {
		res, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if res.TimedOut {
			t.Fatalf("%s timed out", cfg.Name)
		}
		if res.IPC <= 0 {
			t.Errorf("%s: IPC = %v", cfg.Name, res.IPC)
		}
	}
}

func TestRunDeterminism(t *testing.T) {
	p := quickProfile("HH")
	a := MustRun(Baseline(p))
	b := MustRun(Baseline(p))
	if a.IPC != b.IPC || a.IcntCycles != b.IcntCycles || a.MCStallFraction != b.MCStallFraction {
		t.Errorf("nondeterministic runs: %+v vs %+v", a, b)
	}
}

func TestMemoryBoundKernelStallsMCs(t *testing.T) {
	res := MustRun(Baseline(quickProfile("HH")))
	if res.MCStallFraction <= 0 {
		t.Errorf("memory-bound kernel produced no MC stalls (%v)", res.MCStallFraction)
	}
	if res.MCInjRate <= res.CoreInjRate {
		t.Errorf("MC injection rate %v not above core rate %v (many-to-few imbalance)",
			res.MCInjRate, res.CoreInjRate)
	}
}

func TestScaleWork(t *testing.T) {
	cfg := Baseline(quickProfile("LL")).ScaleWork(0.5)
	if cfg.Workload.InstrsPerWarp != 30 {
		t.Errorf("scaled instrs = %d, want 30", cfg.Workload.InstrsPerWarp)
	}
	if Baseline(quickProfile("LL")).ScaleWork(0.0001).Workload.InstrsPerWarp != 1 {
		t.Error("scale floor not applied")
	}
}

func TestMaxCyclesTimeout(t *testing.T) {
	cfg := Baseline(quickProfile("HH"))
	cfg.MaxIcntCycles = 100
	res := MustRun(cfg)
	if !res.TimedOut {
		t.Error("run with tiny cycle cap did not report timeout")
	}
}

func TestBalancedDoubleNetworkCompletes(t *testing.T) {
	p := quickProfile("HH")
	cfg := Baseline(p).WithCheckerboardRouting().WithBalancedDoubleNetwork()
	res := MustRun(cfg)
	if res.TimedOut || res.IPC <= 0 {
		t.Fatalf("balanced double run failed: %+v", res)
	}
	// On reply-dominated memory-bound traffic the balanced slicing should
	// not be slower than the dedicated split.
	ded := MustRun(Baseline(p).WithCheckerboardRouting().WithDoubleNetwork())
	if res.IPC < ded.IPC*0.95 {
		t.Errorf("balanced double IPC %v well below dedicated %v", res.IPC, ded.IPC)
	}
}
