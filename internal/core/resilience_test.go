package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/fault"
)

func TestFaultyClosedLoopCompletes(t *testing.T) {
	cfg := Baseline(quickProfile("LL")).WithFaults(0.002, 7)
	cfg.Noc.Fault.RetxTimeout = 512
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("faulty run failed: %v", err)
	}
	if !res.OK() || res.TimedOut {
		t.Fatalf("faulty run degraded: status %q timedOut %v", res.Status, res.TimedOut)
	}
	if res.RetxPackets == 0 || res.DroppedPackets == 0 {
		t.Errorf("fault path not exercised: retx=%d dropped=%d", res.RetxPackets, res.DroppedPackets)
	}
	if res.AvgRetries <= 0 {
		t.Errorf("AvgRetries = %v with faults active", res.AvgRetries)
	}
	// Every instruction still retires: the resilience layer recovers all
	// lost memory traffic.
	want := uint64(28 * 8 * 60 * 32)
	if res.ScalarInstrs != want {
		t.Errorf("scalar instrs = %d, want %d", res.ScalarInstrs, want)
	}
}

func TestFaultyRunsDeterministic(t *testing.T) {
	cfg := Baseline(quickProfile("HH")).WithFaults(0.005, 42)
	cfg.Noc.Fault.RetxTimeout = 512
	a := MustRun(cfg)
	b := MustRun(cfg)
	if a.IPC != b.IPC || a.IcntCycles != b.IcntCycles ||
		a.RetxPackets != b.RetxPackets || a.DroppedPackets != b.DroppedPackets {
		t.Errorf("equal-seeded faulty runs diverged:\n%+v\nvs\n%+v", a, b)
	}
}

func TestZeroFaultRateUnchanged(t *testing.T) {
	p := quickProfile("HH")
	base := MustRun(Baseline(p))
	faulted := MustRun(Baseline(p).WithFaults(0, 99)) // rate 0: injector absent
	if base.IPC != faulted.IPC || base.IcntCycles != faulted.IcntCycles ||
		base.AvgNetLatency != faulted.AvgNetLatency {
		t.Errorf("rate-0 fault config perturbed the run: %+v vs %+v", base, faulted)
	}
	if faulted.RetxPackets != 0 || faulted.DroppedPackets != 0 {
		t.Error("rate-0 run recorded fault activity")
	}
}

func TestCycleCapReturnsTypedError(t *testing.T) {
	cfg := Baseline(quickProfile("HH"))
	cfg.MaxIcntCycles = 200 // far too few to finish
	res, err := Run(context.Background(), cfg)
	if err == nil {
		t.Fatal("capped run returned no error")
	}
	if !errors.Is(err, fault.ErrCycleCap) {
		t.Fatalf("error %v is not ErrCycleCap", err)
	}
	var he *fault.HangError
	if !fault.AsHang(err, &he) || he.Diag.Empty() {
		t.Fatal("cycle-cap verdict lacks a diagnostic")
	}
	if !res.TimedOut || res.Status != "cycle-cap" {
		t.Errorf("result not marked degraded: timedOut=%v status=%q", res.TimedOut, res.Status)
	}
	if res.IcntCycles == 0 {
		t.Error("degraded result carries no statistics")
	}
	// MustRun tolerates hang verdicts (graceful degradation, no panic).
	if r := MustRun(cfg); r.Status != "cycle-cap" {
		t.Errorf("MustRun status = %q, want cycle-cap", r.Status)
	}
}

func TestWedgedNetworkSurfacesDeadlock(t *testing.T) {
	cfg := Baseline(quickProfile("HH")).WithFaults(1, 3)
	cfg.Noc.Fault.CreditResyncCycles = 1 << 40
	cfg.Noc.Fault.RetxTimeout = 1 << 40
	cfg.Noc.Fault.WatchdogCycles = 2000
	res, err := Run(context.Background(), cfg)
	if err == nil {
		t.Fatal("wedged system completed")
	}
	if !fault.IsHang(err) {
		t.Fatalf("wedged system returned a non-hang error: %v", err)
	}
	if errors.Is(err, fault.ErrDeadlock) && res.Status != "deadlock" {
		t.Errorf("status %q does not match verdict %v", res.Status, err)
	}
	if res.OK() {
		t.Errorf("degraded run reported status %q", res.Status)
	}
}
