package core

import (
	"fmt"
	"testing"

	"repro/internal/noc"
	"repro/internal/workload"
)

// checkSkipEquivalence runs cfg with idle-horizon fast-forwarding enabled
// (the default) and disabled and fails unless the two runs are
// bit-identical. Field-level comparison runs first so a divergence points
// at the counter that drifted, not just at a hash.
func checkSkipEquivalence(t *testing.T, cfg Config) {
	t.Helper()

	off := cfg
	off.NoIdleSkip = true
	sysOff, err := NewSystem(off)
	if err != nil {
		t.Fatal(err)
	}
	resOff, errOff := sysOff.Run(nil)
	if errOff != nil {
		t.Fatalf("no-skip run degraded: %v", errOff)
	}

	on := cfg
	on.NoIdleSkip = false
	sysOn, err := NewSystem(on)
	if err != nil {
		t.Fatal(err)
	}
	resOn, errOn := sysOn.Run(nil)
	if errOn != nil {
		t.Fatalf("skip run degraded: %v", errOn)
	}

	if resOn != resOff {
		t.Errorf("Result differs with skipping:\n skip:    %+v\n no-skip: %+v", resOn, resOff)
	}
	nsOn, nsOff := sysOn.NetStats(), sysOff.NetStats()
	if nsOn.Cycles != nsOff.Cycles {
		t.Errorf("net Cycles: skip %d, no-skip %d", nsOn.Cycles, nsOff.Cycles)
	}
	if nsOn.FlitHops != nsOff.FlitHops {
		t.Errorf("FlitHops: skip %d, no-skip %d", nsOn.FlitHops, nsOff.FlitHops)
	}
	for i := range nsOn.InjectedFlits {
		if nsOn.InjectedFlits[i] != nsOff.InjectedFlits[i] {
			t.Errorf("InjectedFlits[%d]: skip %d, no-skip %d", i, nsOn.InjectedFlits[i], nsOff.InjectedFlits[i])
		}
	}
	dOn := digestRun(resOn, nsOn)
	dOff := digestRun(resOff, nsOff)
	if dOn != dOff {
		t.Errorf("digest differs with skipping: %s vs %s", dOn, dOff)
	}
}

// TestIdleSkipEquivalence proves idle-horizon fast-forwarding is invisible:
// every golden configuration must produce the SAME digest with skipping
// enabled and disabled, at every shard count of the determinism matrix.
func TestIdleSkipEquivalence(t *testing.T) {
	for _, gc := range goldenMatrix() {
		gc := gc
		for _, shards := range goldenShardCounts {
			shards := shards
			t.Run(fmt.Sprintf("%s/shards-%d", gc.id, shards), func(t *testing.T) {
				checkSkipEquivalence(t, gc.build().WithShards(shards))
			})
		}
	}
}

// TestIdleSkipEquivalenceMemBound covers the stall-dominated regime the
// golden matrix barely enters: a single core parking its only warp on a
// deep (128-cycle) memory pipeline, so nearly every cycle sits inside a
// skippable window and the fast-forward machinery — not the edge-by-edge
// path — produces almost all of the run. This is the configuration
// BenchmarkIdleSkipClosedLoop times.
func TestIdleSkipEquivalenceMemBound(t *testing.T) {
	prof := workload.Profile{
		Name: "MemStall", Abbr: "MSTL", Class: "LH",
		Warps: 1, InstrsPerWarp: 600,
		MemFraction: 1.0, WriteFraction: 0, LinesPerMemInstr: 1,
		ActiveThreads: 32, WorkingSetKB: 64,
		Sequential: 1.0, Reuse: 0,
	}
	cfg := Baseline(prof)
	cfg.Name = "IdleSkip-MemBound"
	nc := noc.DefaultConfig()
	nc.Width, nc.Height = 2, 2
	nc.MCs = []noc.NodeID{1, 2, 3}
	nc.RouterStages = 1
	nc.HalfRouterStages = 1
	nc.FlitBytes = 64
	cfg.Noc = nc
	cfg.Mem.L2Latency = 128
	for _, shards := range []int{1, 2} {
		shards := shards
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			checkSkipEquivalence(t, cfg.WithShards(shards))
		})
	}
}
