// Package core assembles the paper's full system: SIMT compute cores, the
// on-chip network, and memory-controller nodes with L2 banks and GDDR3
// channels, driven in lockstep across three clock domains. It defines the
// named configurations evaluated in the paper (baseline top-bottom mesh,
// 2x-bandwidth, 1-cycle routers, checkerboard placement/routing, double
// network, multi-port MC routers, and the combined throughput-effective
// design) and runs closed-loop simulations that report application-level
// throughput (IPC) plus the network and memory statistics behind every
// figure in the evaluation.
package core

import (
	"fmt"
	"runtime"

	"repro/internal/gpu"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/workload"
)

// NetworkKind selects the interconnect model.
type NetworkKind int

// Interconnect models.
const (
	// NetMesh is the cycle-level mesh (single physical network).
	NetMesh NetworkKind = iota
	// NetDouble is the channel-sliced pair of half-width meshes, one per
	// traffic class (§IV-C's dedicated form).
	NetDouble
	// NetDoubleBalanced is the load-balanced slicing alternative §IV-C
	// mentions: both slices carry both classes with protocol VCs.
	NetDoubleBalanced
	// NetPerfect is the zero-latency infinite-bandwidth network (Fig 7).
	NetPerfect
	// NetIdealCapped is zero-latency with an aggregate flit/cycle cap
	// (the Fig 6 limit study).
	NetIdealCapped
)

// String names the kind.
func (k NetworkKind) String() string {
	switch k {
	case NetMesh:
		return "mesh"
	case NetDouble:
		return "double"
	case NetDoubleBalanced:
		return "double-balanced"
	case NetPerfect:
		return "perfect"
	case NetIdealCapped:
		return "ideal-capped"
	}
	return fmt.Sprintf("net(%d)", int(k))
}

// Clocks holds the three domain frequencies in MHz (Table II).
type Clocks struct {
	CoreMHz float64
	IcntMHz float64
	DRAMMHz float64
}

// DefaultClocks returns the Table II frequencies.
func DefaultClocks() Clocks { return Clocks{CoreMHz: 1296, IcntMHz: 602, DRAMMHz: 1107} }

// Config is a full system configuration for one closed-loop run.
type Config struct {
	Name          string // configuration label (e.g. "TB-DOR")
	Net           NetworkKind
	Noc           noc.Config
	IdealCapFlits float64 // NetIdealCapped: accepted flits/cycle chip-wide
	Core          gpu.Config
	Mem           mem.Config
	Clocks        Clocks
	Workload      workload.Profile
	Seed          uint64
	MaxIcntCycles uint64 // safety stop; 0 means a generous default

	// Shards requests intra-run parallelism for the cycle kernel: the mesh
	// ticks as Shards column bands on worker goroutines (see
	// internal/noc/shard.go). 0 runs serial, ShardsAuto resolves to
	// GOMAXPROCS; the mesh clamps to its column count, and internal/runner
	// further caps the effective value so Jobs×Shards never oversubscribes
	// the machine. Results are bit-identical for every value, so Shards is
	// deliberately excluded from Name suffixes and cache keys.
	Shards int

	// NoIdleSkip disables idle-horizon fast-forwarding: when every
	// subsystem reports a quiescent window (see Network.NextWorkCycle and
	// the per-component SkipAhead contracts in DESIGN.md) the driver
	// normally bulk-advances the scheduler to the earliest work horizon
	// instead of stepping edge by edge. Skipping changes wall-clock time
	// only, never results, so — like Shards — it is deliberately excluded
	// from Name suffixes and cache keys. The zero value keeps skipping on.
	NoIdleSkip bool

	// Lanes requests lane-batched execution when several seeds of this
	// configuration run together (see RunLanes and internal/runner): up to
	// Lanes seed replicas share one cycle loop and one immutable topology
	// backend. Each lane is bit-identical to its solo serial run — the
	// lane kernel only changes wall-clock time — so, like Shards and
	// NoIdleSkip, Lanes is deliberately excluded from Name suffixes and
	// cache keys. 0 and 1 both mean solo execution.
	Lanes int
}

// ShardsAuto asks NewSystem to pick the shard count from the machine:
// GOMAXPROCS, clamped by the mesh to its column count (and by the runner to
// its fair share when several runs execute concurrently).
const ShardsAuto = -1

// ResolveShards maps the Config.Shards knob to a concrete request for the
// network: ShardsAuto becomes GOMAXPROCS (the mesh clamps to min(cols, ...)
// itself); other negatives are treated as serial.
func ResolveShards(requested int) int {
	if requested == ShardsAuto {
		return runtime.GOMAXPROCS(0)
	}
	if requested < 0 {
		return 1
	}
	return requested
}

// WithShards sets the cycle-kernel shard request. Unlike the other builders
// it does NOT suffix Name: sharding changes wall-clock time only, never
// results, so sharded and serial runs must share cache keys.
func (c Config) WithShards(n int) Config {
	c.Shards = n
	return c
}

// WithLanes sets the lane-batching request. Like WithShards it does NOT
// suffix Name: lane batching changes wall-clock time only, never results,
// so lane-batched and solo runs must share cache keys.
func (c Config) WithLanes(n int) Config {
	c.Lanes = n
	return c
}

// Baseline returns the paper's baseline system (§II, Tables II/III) running
// profile p: 6×6 mesh with 16 B channels, DOR, 2 VCs, 4-stage routers and
// top-bottom MC placement.
func Baseline(p workload.Profile) Config {
	return Config{
		Name:     "TB-DOR",
		Net:      NetMesh,
		Noc:      noc.DefaultConfig(),
		Core:     gpu.DefaultConfig(),
		Mem:      mem.DefaultConfig(),
		Clocks:   DefaultClocks(),
		Workload: p,
		Seed:     1,
	}
}

// With2xBW doubles every channel width (the "2x BW" design point of
// Figs 2 and 9; Table VI shows why it is not throughput-effective).
func (c Config) With2xBW() Config {
	c.Name = "2x-TB-DOR"
	c.Noc.FlitBytes *= 2
	return c
}

// With1CycleRouters replaces the 4-stage pipeline with aggressive 1-cycle
// routers (§III-C).
func (c Config) With1CycleRouters() Config {
	c.Name = c.Name + "-1cyc"
	c.Noc.RouterStages = 1
	c.Noc.HalfRouterStages = 1
	return c
}

// WithCheckerboardPlacement staggers the MCs (CP) while keeping full
// routers and DOR (the Fig 16 configuration).
func (c Config) WithCheckerboardPlacement() Config {
	c.Name = "CP-DOR"
	c.Noc.MCs = noc.CheckerboardPlacement(c.Noc.Width, c.Noc.Height, len(c.Noc.MCs))
	return c
}

// WithVCs sets the VC count (Fig 17 compares 2 and 4 VCs).
func (c Config) WithVCs(n int) Config {
	c.Name = fmt.Sprintf("%s-%dVC", c.Name, n)
	c.Noc.NumVCs = n
	return c
}

// WithCheckerboardRouting turns on half-routers at odd-parity tiles and the
// checkerboard routing algorithm (§IV-A/B). Requires CP placement so MCs
// sit at half-router tiles; VCs must cover class × phase (4 on a single
// network).
func (c Config) WithCheckerboardRouting() Config {
	c.Name = "CP-CR"
	c.Noc.Checkerboard = true
	c.Noc.Routing = noc.RoutingCheckerboard
	c.Noc.MCs = noc.CheckerboardPlacement(c.Noc.Width, c.Noc.Height, len(c.Noc.MCs))
	if c.Net == NetMesh && c.Noc.NumVCs < 4 {
		c.Noc.NumVCs = 4
	}
	return c
}

// WithDoubleNetwork slices the channels into two half-width networks, one
// per traffic class (§IV-C). Each slice keeps 2 VCs (XY/YX under CR).
func (c Config) WithDoubleNetwork() Config {
	c.Name = "Double-" + c.Name
	c.Net = NetDouble
	c.Noc.NumVCs = 2
	return c
}

// WithBalancedDoubleNetwork slices the channels into two half-width
// networks that each carry both traffic classes, load-balanced round-robin
// per source. Each slice needs class x phase VCs (4 under CR).
func (c Config) WithBalancedDoubleNetwork() Config {
	c.Name = "BalDouble-" + c.Name
	c.Net = NetDoubleBalanced
	c.Noc.NumVCs = 4
	return c
}

// WithMCInjectionPorts sets the MC routers' injection port count (2P).
func (c Config) WithMCInjectionPorts(n int) Config {
	c.Name = fmt.Sprintf("%s-%dP", c.Name, n)
	c.Noc.MCInjPorts = n
	return c
}

// WithMCEjectionPorts sets the MC routers' ejection port count (2E).
func (c Config) WithMCEjectionPorts(n int) Config {
	c.Name = fmt.Sprintf("%s-%dE", c.Name, n)
	c.Noc.MCEjPorts = n
	return c
}

// ThroughputEffective returns the paper's combined design (Fig 20):
// checkerboard placement and routing, dedicated double network at half
// channel width, and 2 injection ports at MC routers.
func ThroughputEffective(p workload.Profile) Config {
	c := Baseline(p).WithCheckerboardRouting().WithDoubleNetwork().WithMCInjectionPorts(2)
	c.Name = "Thr.Eff."
	return c
}

// ThroughputEffectiveSingle is the combined design without channel
// slicing: checkerboard placement + routing and 2 MC injection ports on
// the single 16-byte network. In this reproduction the dedicated
// half-width reply slice halves reply bandwidth (see EXPERIMENTS.md), so
// this variant is where the paper's combined gains materialize.
func ThroughputEffectiveSingle(p workload.Profile) Config {
	c := Baseline(p).WithCheckerboardRouting().WithMCInjectionPorts(2)
	c.Name = "Thr.Eff.(1net)"
	return c
}

// Perfect returns the zero-latency infinite-bandwidth network system used
// as the limit in Figs 7 and 8.
func Perfect(p workload.Profile) Config {
	c := Baseline(p)
	c.Name = "Perfect"
	c.Net = NetPerfect
	return c
}

// WithTopology switches the interconnect substrate of a topology-neutral
// configuration (plain DOR, full routers) to another backend, retuning the
// router microarchitecture to the backend's natural operating point and
// suffixing Name so the design points never share result-cache keys:
//
//   - ring: 2-port Wu-style ring routers with minimal buffering (4 VCs =
//     class × dateline phase, 4-flit buffers, 2-stage pipeline);
//   - basejump: single-flit DOR mesh with full-width 64 B channels (one
//     packet per flit), one VC per class, 2-flit buffers, 2-stage pipeline.
//
// Mesh-specific features (checkerboard placement/routing, ROMM, channel
// slicing of single-flit networks) are rejected.
func (c Config) WithTopology(kind noc.BackendKind) (Config, error) {
	switch kind {
	case noc.BackendMesh:
		return c, nil
	case noc.BackendRing, noc.BackendBaseJump:
	default:
		return c, fmt.Errorf("core: unknown topology backend %v", kind)
	}
	if c.Noc.Topology == kind {
		return c, nil // already there (e.g. -topology ring on the Ring design point)
	}
	if c.Noc.Topology != noc.BackendMesh {
		return c, fmt.Errorf("core: %q is already a %v configuration, cannot re-target it to %v",
			c.Name, c.Noc.Topology, kind)
	}
	if c.Noc.Checkerboard || c.Noc.Routing != noc.RoutingDOR {
		return c, fmt.Errorf("core: %v topology requires a plain DOR full-router configuration, got %q", kind, c.Name)
	}
	if (c.Net == NetDouble || c.Net == NetDoubleBalanced) && kind == noc.BackendBaseJump {
		return c, fmt.Errorf("core: cannot channel-slice the single-flit basejump network")
	}
	c.Noc.Topology = kind
	switch kind {
	case noc.BackendRing:
		c.Name += "-ring"
		c.Noc.NumVCs = 4 // request/reply × dateline phase
		c.Noc.BufDepth = 4
		c.Noc.RouterStages = 2
		c.Noc.HalfRouterStages = 2 // unused (no half-routers), kept valid
	case noc.BackendBaseJump:
		c.Name += "-bj"
		c.Noc.FlitBytes = mem.ReplyBytes // widest packet rides in one flit
		if mem.WriteRequestBytes > c.Noc.FlitBytes {
			c.Noc.FlitBytes = mem.WriteRequestBytes
		}
		c.Noc.NumVCs = 2 // one VC per traffic class
		c.Noc.BufDepth = 2
		c.Noc.RouterStages = 2
		c.Noc.HalfRouterStages = 2
	}
	return c, nil
}

// Ring returns the Wu-style ring design point: the baseline system on a
// 36-node bidirectional ring with minimal-buffer 2-port routers.
func Ring(p workload.Profile) Config {
	c, err := Baseline(p).WithTopology(noc.BackendRing)
	if err != nil {
		panic(err) // Baseline is topology-neutral by construction
	}
	c.Name = "Ring"
	return c
}

// BaseJump returns the BaseJump-style design point: the baseline system on
// a single-flit DOR mesh with 64 B channels.
func BaseJump(p workload.Profile) Config {
	c, err := Baseline(p).WithTopology(noc.BackendBaseJump)
	if err != nil {
		panic(err)
	}
	c.Name = "BaseJump"
	return c
}

// IdealCapped returns a zero-latency network limited to capFlits accepted
// flits per interconnect cycle chip-wide (Fig 6).
func IdealCapped(p workload.Profile, capFlits float64) Config {
	c := Baseline(p)
	c.Name = fmt.Sprintf("Ideal-%.1ff", capFlits)
	c.Net = NetIdealCapped
	c.IdealCapFlits = capFlits
	return c
}

// CapForBWFraction converts a bandwidth limit expressed as a fraction of
// peak off-chip DRAM bandwidth (the Fig 6 x-axis) into accepted flits per
// interconnect cycle, using the paper's formula (footnote 3):
//
//	x = N [flits/iclk] * 16 [B/flit] * 602 [MHz] / (1107 [MHz] * 8 [MC] * 16 [B/mclk])
func (c Config) CapForBWFraction(x float64) float64 {
	numMC := float64(len(c.Noc.MCs))
	flitB := float64(c.Noc.FlitBytes)
	dramBytesPerCycle := 16.0
	return x * c.Clocks.DRAMMHz * numMC * dramBytesPerCycle / (flitB * c.Clocks.IcntMHz)
}

// WithFaults enables the network fault injector at the given master rate
// with its own seed (decorrelated from the traffic seed). The Name suffix
// keeps faulty runs from sharing result-cache keys with clean ones.
func (c Config) WithFaults(rate float64, seed uint64) Config {
	c.Name = fmt.Sprintf("%s-f%g", c.Name, rate)
	c.Noc.Fault = c.Noc.Fault.WithRate(rate, seed)
	return c
}

// WithWatchdog sets the health watchdog's no-movement window in
// interconnect cycles; 0 disables the watchdog, hop budget and audits.
func (c Config) WithWatchdog(cycles uint64) Config {
	c.Noc.Fault.WatchdogCycles = cycles
	return c
}

// ScaleWork multiplies the kernel length (instructions per warp) by f, for
// quick runs in tests and examples. f must be positive.
func (c Config) ScaleWork(f float64) Config {
	n := int(float64(c.Workload.InstrsPerWarp) * f)
	if n < 1 {
		n = 1
	}
	c.Workload.InstrsPerWarp = n
	return c
}

// Validate checks cross-component consistency.
func (c Config) Validate() error {
	if err := c.Workload.Validate(); err != nil {
		return err
	}
	if err := c.Core.Validate(); err != nil {
		return err
	}
	if c.Clocks.CoreMHz <= 0 || c.Clocks.IcntMHz <= 0 || c.Clocks.DRAMMHz <= 0 {
		return fmt.Errorf("core: clock frequencies must be positive")
	}
	if c.Net == NetIdealCapped && c.IdealCapFlits <= 0 {
		return fmt.Errorf("core: NetIdealCapped needs a positive IdealCapFlits")
	}
	if len(c.Noc.MCs) == 0 {
		return fmt.Errorf("core: configuration has no memory controllers")
	}
	return nil
}
