package core

import (
	"context"

	"repro/internal/addr"
	"repro/internal/fault"
	"repro/internal/gpu"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/timing"
)

// RunLanes executes len(seeds) replicas of cfg — identical except for
// Config.Seed — through one interleaved cycle loop. The replicas ("lanes")
// share the immutable topology backend (geometry, route tables; backends are
// read-only at runtime), while every lane keeps its own mutable state: VC
// buffers, queues, stats, RNG streams and a private clock scheduler. Each
// round advances every live lane by one scheduler step, so a lane executes
// exactly the solo Run algorithm, interleaved in wall-clock with its
// siblings; lanes retire individually as they finish and a retired lane
// costs nothing.
//
// What makes the batch faster than running the seeds back to back is the
// lane kernel's per-component dormancy tracking: a component whose
// NextWorkCycle horizon has not arrived is not ticked at all, and the elided
// idle cycles are paid lazily with its SkipAhead-family credit call — which
// the idle-horizon contract (DESIGN.md) defines to be bit-identical to
// ticking it that many times. Results are therefore bit-identical to solo
// runs for every lane count, which the golden digest matrices pin at lanes
// 1/2/4.
//
// The returned slices are indexed like seeds. A lane's error mirrors what
// Run would have returned for that seed (nil, or a *fault.HangError with the
// Result still populated).
func RunLanes(ctx context.Context, cfg Config, seeds []uint64) ([]Result, []error) {
	results := make([]Result, len(seeds))
	errs := make([]error, len(seeds))
	if len(seeds) == 0 {
		return results, errs
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if len(seeds) == 1 {
		c := cfg
		c.Seed = seeds[0]
		results[0], errs[0] = Run(ctx, c)
		return results, errs
	}

	lanes, buildErrs := runLanes(ctx, cfg, seeds)
	for i, l := range lanes {
		if l == nil {
			errs[i] = buildErrs[i]
			continue
		}
		results[i] = l.res
		errs[i] = l.runErr
	}
	return results, errs
}

// runLanes builds and drives the lane batch, returning the retired lanes
// (nil where construction failed, with the error in the second slice).
// Split from RunLanes so tests can digest per-lane network stats.
func runLanes(ctx context.Context, cfg Config, seeds []uint64) ([]*lane, []error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Build the shared backend once. Only the single-mesh network family
	// can share (Double builds two slices, ideal networks have no kernel);
	// other kinds simply construct per lane, exactly as solo runs do.
	var share noc.Backend
	if cfg.Net == NetMesh {
		if b, err := noc.BuildBackend(cfg.Noc); err == nil {
			share = b
		}
	}

	errs := make([]error, len(seeds))
	lanes := make([]*lane, len(seeds))
	live := 0
	for i, seed := range seeds {
		c := cfg
		c.Seed = seed
		sys, err := newSystem(c, share)
		if err != nil {
			errs[i] = err
			continue
		}
		lanes[i] = newLane(sys)
		live++
	}
	for live > 0 {
		for _, l := range lanes {
			if l == nil || l.finished {
				continue
			}
			if !l.step(ctx) {
				live--
			}
		}
	}
	return lanes, errs
}

// lane is one seed replica inside a lane batch: a full System plus the
// dormancy bookkeeping that lets the shared loop elide ticks on components
// whose work horizon has not arrived.
//
// Per component the lane stores a wake threshold and a credit watermark:
//
//   - cred counts the domain cycles already applied to the component, by
//     real ticks or by SkipAhead-family credits. Paying a component "up to
//     C" means calling its skip credit for the (C - cred) elided idle
//     cycles; by the idle-horizon contract that is bit-identical to having
//     ticked it through them, as long as the window stays inside the bound
//     its NextWorkCycle gave and no external event landed inside it.
//   - wake is the post-step domain cycle count at which the component must
//     really tick again. 0 means awake (tick every edge); NeverCycle means
//     dormant until an external event. Every event that can create work for
//     a component (a delivery, a popped request, the other clock side of an
//     MC doing real work) pays the component up to the current count first
//     and then clears its wake, so no elided window ever spans an event.
type lane struct {
	sys *System
	wd  *fault.Watchdog
	buf []timing.Domain

	maxIcnt uint64
	elide   bool // dormancy elision + idle skips (off under NoIdleSkip)

	coreCred    []uint64
	coreDormant []bool
	coreDone    []bool // sticky Done() results; dormant && !done stays !done
	dormantN    int    // count of dormant cores

	netCred  uint64
	netWake  uint64
	icntCred []uint64 // per MC, interconnect side
	icntWake []uint64
	dramCred []uint64 // per MC, DRAM side
	dramWake []uint64

	runErr   error
	res      Result
	timedOut bool
	finished bool

	// doneKnownFalse short-circuits the next loop-top done() check: the
	// stride gate evaluated done() after the last tick of the previous step
	// and nothing can change lane state between that point and the next
	// loop top.
	doneKnownFalse bool
}

func newLane(sys *System) *lane {
	l := &lane{
		sys:         sys,
		buf:         make([]timing.Domain, 0, timing.NumDomains),
		maxIcnt:     sys.cfg.MaxIcntCycles,
		elide:       !sys.cfg.NoIdleSkip,
		coreCred:    make([]uint64, len(sys.cores)),
		coreDormant: make([]bool, len(sys.cores)),
		coreDone:    make([]bool, len(sys.cores)),
		icntCred:    make([]uint64, len(sys.mcs)),
		icntWake:    make([]uint64, len(sys.mcs)),
		dramCred:    make([]uint64, len(sys.mcs)),
		dramWake:    make([]uint64, len(sys.mcs)),
	}
	if l.maxIcnt == 0 {
		l.maxIcnt = defaultMaxIcntCycles
	}
	if sys.cfg.Noc.Fault.Monitored() {
		l.wd = fault.NewWatchdog(sys.cfg.Noc.Fault.WatchdogCycles)
	}
	return l
}

// step advances the lane by one iteration of the solo Run loop — one
// scheduler step plus its bookkeeping — and reports whether the lane is
// still live. The control flow (loop-top done check, cycle cap, context
// poll, domain ticks, health check, stall watchdog, idle skip) mirrors
// System.Run line for line; only the component ticks are gated by the
// dormancy state.
func (l *lane) step(ctx context.Context) bool {
	s := l.sys
	if l.doneKnownFalse {
		// The stride check at the end of the previous step already evaluated
		// done() and nothing has run since, so the verdict still stands.
		l.doneKnownFalse = false
	} else if l.done() {
		l.finish(false)
		return false
	}
	icnt := s.sched.Cycles(timing.DomainInterconnect)
	if icnt >= l.maxIcnt {
		l.timedOut = true
		l.fail(fault.Hang(fault.ErrCycleCap, s.diagnose("cycle-cap")))
		return false
	}
	if icnt%ctxCheckPeriod == 0 {
		if cerr := ctx.Err(); cerr != nil {
			cond := ctxCondition(cerr)
			l.fail(fault.Hang(cond, s.diagnose(statusOf(cond))))
			return false
		}
	}
	l.buf = s.sched.Step(l.buf)
	icntTicked := false
	for _, d := range l.buf {
		switch d {
		case timing.DomainCore:
			l.coreTicks()
		case timing.DomainInterconnect:
			l.icntTick()
			icntTicked = true
		case timing.DomainDRAM:
			l.dramTicks()
		}
	}
	if err := s.net.Health(); err != nil {
		l.fail(err)
		return false
	}
	if l.wd != nil && icnt%stallCheckPeriod == 0 &&
		l.wd.Observe(icnt, s.progress(), 1) {
		l.fail(fault.Hang(fault.ErrStall, s.diagnose("stall")))
		return false
	}
	if l.elide && icntTicked {
		l.maybeSkip()
		l.strideToNextIcnt()
	}
	return true
}

// strideToNextIcnt bulk-advances the scheduler to the next interconnect
// edge when the interconnect is the only domain with live work: every core
// dormant (NeverCycle horizon, empty out-queue) and every DRAM side fully
// drained. The skipped core/DRAM edges carry no ticks — they would only pay
// the loop prologue — and their idle credits settle lazily like any other
// elision. Observable state at every remaining loop top (interconnect cycle
// count, progress counter, health, watchdog samples) is exactly what
// edge-by-edge stepping produces, since nothing can change between two
// interconnect edges while the other domains are dormant.
func (l *lane) strideToNextIcnt() {
	s := l.sys
	if l.dormantN != len(s.cores) {
		return
	}
	for j := range l.dramWake {
		if l.dramWake[j] != mem.NeverCycle {
			return
		}
	}
	// If the next loop top will retire the lane — run complete, or the cycle
	// cap reached — solo stepping would observe it at the FIRST edge after
	// this one, before any further core/DRAM edges advance their counters.
	// Striding would credit those edges and inflate the final cycle counts,
	// so hold position and let the loop top take the exit exactly.
	ic := s.sched.Cycles(timing.DomainInterconnect)
	if ic >= l.maxIcnt || l.done() {
		return
	}
	l.doneKnownFalse = true
	h := s.sched.EdgeFs(timing.DomainInterconnect, ic+1)
	if h <= s.sched.NextFs() {
		return
	}
	s.sched.SkipTo(h)
}

// fail records a degradation verdict and retires the lane.
func (l *lane) fail(err error) {
	l.payAll()
	l.runErr = err
	l.finish(l.timedOut)
}

// finish pays every component up to its final cycle count and assembles the
// lane's Result.
func (l *lane) finish(timedOut bool) {
	l.payAll()
	l.res = l.sys.result(timedOut)
	l.res.Status = statusOf(l.runErr)
	l.finished = true
}

// payAll settles every outstanding elision credit, bringing each component
// to its domain's current cycle count. Idempotent.
func (l *lane) payAll() {
	s := l.sys
	cc := s.sched.Cycles(timing.DomainCore)
	for i, c := range s.cores {
		if k := cc - l.coreCred[i]; k > 0 {
			c.SkipAhead(k)
			l.coreCred[i] = cc
		}
	}
	ic := s.sched.Cycles(timing.DomainInterconnect)
	if k := ic - l.netCred; k > 0 {
		s.net.SkipAhead(k)
		l.netCred = ic
	}
	dc := s.sched.Cycles(timing.DomainDRAM)
	for j, mc := range s.mcs {
		if k := ic - l.icntCred[j]; k > 0 {
			mc.SkipIcnt(k)
			l.icntCred[j] = ic
		}
		if k := dc - l.dramCred[j]; k > 0 {
			mc.SkipDRAM(k)
			l.dramCred[j] = dc
		}
	}
}

// done mirrors System.done with two caches: sticky per-core Done results
// (completion is monotonic — a finished core has no outstanding work that
// could wake it) and the dormancy rule that a core marked dormant while
// unfinished cannot finish without an external wake event (its horizon was
// NeverCycle, so no tick it is owed can make progress).
func (l *lane) done() bool {
	s := l.sys
	for i, c := range s.cores {
		if l.coreDone[i] {
			continue
		}
		if l.coreDormant[i] {
			return false
		}
		if !c.Done() {
			return false
		}
		l.coreDone[i] = true
	}
	if !s.net.Quiet() {
		return false
	}
	for _, mc := range s.mcs {
		if mc.Busy() {
			return false
		}
	}
	return true
}

// wakeCore pays core i up to the current core-domain count and clears its
// dormancy, so an external event (fill delivery, popped request) never lands
// inside an elided window. On an awake, caught-up core it is a no-op.
func (l *lane) wakeCore(i int) {
	cc := l.sys.sched.Cycles(timing.DomainCore)
	if k := cc - l.coreCred[i]; k > 0 {
		l.sys.cores[i].SkipAhead(k)
		l.coreCred[i] = cc
	}
	if l.coreDormant[i] {
		l.coreDormant[i] = false
		l.dormantN--
	}
}

// coreTicks runs the core-domain edge: every non-dormant core pays any
// pending skip credit (left lazily by maybeSkip's bulk advance) and ticks.
func (l *lane) coreTicks() {
	s := l.sys
	if l.dormantN == len(s.cores) {
		return
	}
	cc := s.sched.Cycles(timing.DomainCore)
	for i, c := range s.cores {
		if l.coreDormant[i] {
			continue
		}
		if k := cc - 1 - l.coreCred[i]; k > 0 {
			c.SkipAhead(k)
		}
		c.Tick()
		l.coreCred[i] = cc
	}
}

// dramTicks runs the DRAM-domain edge for every MC whose DRAM wake has
// arrived. Before a real TickDRAM the MC's interconnect side is paid up
// (TickDRAM can push replies, and SkipIcnt's Busy() accounting must never
// span a state change); afterwards both horizons are recomputed, since a
// completed read wakes the interconnect side.
func (l *lane) dramTicks() {
	s := l.sys
	dc := s.sched.Cycles(timing.DomainDRAM)
	ic := s.sched.Cycles(timing.DomainInterconnect)
	for j, mc := range s.mcs {
		if dc < l.dramWake[j] {
			continue
		}
		if k := ic - l.icntCred[j]; k > 0 {
			mc.SkipIcnt(k)
			l.icntCred[j] = ic
		}
		if k := dc - 1 - l.dramCred[j]; k > 0 {
			mc.SkipDRAM(k)
		}
		mc.TickDRAM()
		l.dramCred[j] = dc
		if l.elide {
			l.dramWake[j] = mc.NextDRAMWorkCycle()
			l.icntWake[j] = icntWakeOf(mc, ic)
		}
	}
}

// icntWakeOf converts an MC's interconnect-side horizon (the cycle argument
// of the first TickIcnt with work, given the current post-step count) into
// the post-step count at which that tick runs.
func icntWakeOf(mc *mem.MCNode, now uint64) uint64 {
	w := mc.NextIcntWorkCycle(now)
	if w == mem.NeverCycle {
		return mem.NeverCycle
	}
	return w + 1
}

// icntTick runs the interconnect-domain edge. When no core has an outbound
// request, no MC's interconnect wake has arrived and the network's horizon
// has not arrived either, the whole edge is provably idle and nothing is
// touched — the elided cycle is paid later by each component's skip credit.
// Otherwise the network is paid up to the pre-tick cycle (injections and MC
// ticks must observe the true network clock) and the edge proceeds exactly
// like System.icntTick, with per-MC gating.
func (l *lane) icntTick() {
	s := l.sys
	ic := s.sched.Cycles(timing.DomainInterconnect) // post-step count
	anyMC := false
	for j := range s.mcs {
		if ic >= l.icntWake[j] {
			anyMC = true
			break
		}
	}
	inject := false
	if l.dormantN < len(s.cores) {
		for i, c := range s.cores {
			if l.coreDormant[i] {
				continue // dormant cores have empty out-queues by construction
			}
			if _, ok := c.PeekRequest(); ok {
				inject = true
				break
			}
		}
	}
	if !anyMC && !inject && ic < l.netWake {
		return
	}
	if k := ic - 1 - l.netCred; k > 0 {
		s.net.SkipAhead(k)
	}
	l.injectCoreRequests()
	cycle := s.net.Cycle() // == ic-1, the pre-tick count solo MCs observe
	dc := s.sched.Cycles(timing.DomainDRAM)
	for j, mc := range s.mcs {
		if ic < l.icntWake[j] {
			continue
		}
		// Pay the DRAM side first: servicing a request may enqueue DRAM
		// work, and SkipDRAM's accounting must never span that change.
		if k := dc - l.dramCred[j]; k > 0 {
			mc.SkipDRAM(k)
			l.dramCred[j] = dc
		}
		if k := ic - 1 - l.icntCred[j]; k > 0 {
			mc.SkipIcnt(k)
		}
		mc.TickIcnt(cycle, s.net)
		l.icntCred[j] = ic
		if l.elide {
			l.icntWake[j] = icntWakeOf(mc, ic)
			l.dramWake[j] = mc.NextDRAMWorkCycle()
		}
	}
	s.net.Tick()
	l.netCred = ic
	l.deliver(ic)
	if l.elide {
		l.netWake = s.net.NextWorkCycle()
	}
}

// injectCoreRequests mirrors System.injectCoreRequests; a successful
// injection pays and wakes the core before PopRequest mutates it.
func (l *lane) injectCoreRequests() {
	s := l.sys
	for i, c := range s.cores {
		if l.coreDormant[i] {
			continue
		}
		for {
			req, ok := c.PeekRequest()
			if !ok {
				break
			}
			pkt := s.packetFor(s.coreNodes[i], req)
			if !s.net.TryInject(pkt) {
				s.pool.Put(pkt)
				break
			}
			l.wakeCore(i)
			c.PopRequest()
			s.coreQuiet[i] = false
		}
	}
}

// deliver mirrors System.deliver, paying and waking the receiving component
// before each delivery lands.
func (l *lane) deliver(ic uint64) {
	s := l.sys
	for idx, node := range s.coreNodes {
		for _, pkt := range s.net.Delivered(node) {
			if pkt.Class != noc.ClassReply {
				panic("core: compute node received non-reply packet")
			}
			l.wakeCore(idx)
			s.cores[idx].DeliverFill(addr.Address(pkt.Line))
			s.coreQuiet[idx] = false
			s.pool.Put(pkt)
		}
	}
	for j, node := range s.mcNodes {
		for _, pkt := range s.net.Delivered(node) {
			if k := ic - l.icntCred[j]; k > 0 {
				s.mcs[j].SkipIcnt(k)
				l.icntCred[j] = ic
			}
			l.icntWake[j] = 0 // a queued request means work on the next edge
			s.mcs[j].AcceptRequest(pkt)
			s.pool.Put(pkt)
		}
	}
}

// maybeSkip is the lane version of System.maybeSkip: identical horizon
// algebra and watchdog clamps, but reading the cached wake state instead of
// re-deriving horizons for dormant components, and leaving the bulk-advance
// credits to be paid lazily from each component's cred watermark. Skipping
// never changes results (the idle-horizon contract), so the cached horizons
// only need to be conservative, which they are: every event that could
// shorten one clears the wake first.
func (l *lane) maybeSkip() {
	s := l.sys
	const never = noc.NeverCycle

	coreNow := s.sched.Cycles(timing.DomainCore)
	kCore := never
	for i, c := range s.cores {
		if l.coreDormant[i] {
			continue // empty out-queue, NeverCycle horizon
		}
		if _, ok := c.PeekRequest(); ok {
			return
		}
		w := c.NextWorkCycle()
		if w == gpu.NeverCycle {
			if !l.coreDone[i] && c.Done() {
				l.coreDone[i] = true
			}
			l.coreDormant[i] = true
			l.dormantN++
			continue
		}
		if w <= coreNow+1 {
			return
		}
		if k := w - coreNow - 1; k < kCore {
			kCore = k
		}
	}

	icntNow := s.sched.Cycles(timing.DomainInterconnect)
	kIcnt := never
	if l.netWake != never {
		if l.netWake <= icntNow+1 {
			return
		}
		kIcnt = l.netWake - icntNow - 1
	}
	for j := range s.mcs {
		w := l.icntWake[j]
		if w == never {
			continue
		}
		if w <= icntNow+1 {
			return
		}
		if k := w - icntNow - 1; k < kIcnt {
			kIcnt = k
		}
	}

	dramNow := s.sched.Cycles(timing.DomainDRAM)
	kDram := never
	for j := range s.mcs {
		w := l.dramWake[j]
		if w == never {
			continue
		}
		k := uint64(0)
		if w > dramNow+1 {
			k = w - dramNow - 1
		}
		if k < kDram {
			kDram = k
		}
	}

	if l.wd != nil {
		if l.wd.Synced(s.progress()) {
			c := ceilCheck(l.wd.LastMovement() + l.wd.Window)
			if c <= icntNow {
				return
			}
			if b := c - icntNow - 1; b < kIcnt {
				kIcnt = b
			}
		} else {
			if b := ceilCheck(icntNow) - icntNow; b < kIcnt {
				kIcnt = b
			}
		}
	}

	if l.done() {
		return
	}

	h := s.sched.EdgeFs(timing.DomainInterconnect, l.maxIcnt)
	if kCore != never {
		if t := s.sched.HorizonFs(timing.DomainCore, kCore); t < h {
			h = t
		}
	}
	if kIcnt != never {
		if t := s.sched.HorizonFs(timing.DomainInterconnect, kIcnt); t < h {
			h = t
		}
	}
	if kDram != never {
		if t := s.sched.HorizonFs(timing.DomainDRAM, kDram); t < h {
			h = t
		}
	}
	if h <= s.sched.NextFs() {
		return
	}
	// The skipped idle edges are paid lazily: each component's cred
	// watermark lags the domain counter, and the next real tick, wake event
	// or retirement settles the difference with one skip credit.
	s.sched.SkipTo(h)
}
