package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/iofault"
	"repro/internal/runner"
	"repro/internal/stats"
)

// Defaults for Options zero values.
const (
	DefaultQueueCap        = 64
	DefaultMaxRunsPerJob   = 256
	DefaultRetries         = 1
	DefaultDeadline        = 10 * time.Minute
	DefaultMaxDeadline     = time.Hour
	DefaultRetryAfter      = 2 * time.Second
	DefaultMaxBodyBytes    = 1 << 20
	forcedDrainGrace       = 10 * time.Second // bound on run-cancellation unwind after a drain deadline
	defaultShutdownTimeout = 30 * time.Second
)

// Options configures a Server. The zero value is usable: in-memory store,
// GOMAXPROCS workers, a 64-deep admission queue.
type Options struct {
	// StorePath is the result-store journal; "" keeps results in memory
	// only (they will not survive a restart).
	StorePath string
	// QueueCap bounds admitted, unfinished jobs; 0 means DefaultQueueCap.
	QueueCap int
	// MaxRunsPerJob bounds one request's config×benchmark product; 0
	// means DefaultMaxRunsPerJob.
	MaxRunsPerJob int
	// Jobs bounds concurrent simulations (runner workers); 0 means
	// GOMAXPROCS.
	Jobs int
	// Shards is the per-run intra-simulation shard request (see
	// runner.Options.Shards).
	Shards int
	// Lanes coalesces a job's same-config/different-seed runs into
	// lane-batched executions of that width (see runner.Options.Lanes and
	// Spec.Seeds). Results are bit-identical to solo runs; 0 and 1 both
	// disable coalescing.
	Lanes int
	// RunTimeout is the per-run wall-clock deadline; 0 disables it.
	RunTimeout time.Duration
	// Retries re-attempts transient DNFs; negative means 0, zero means
	// DefaultRetries.
	Retries int
	// DefaultDeadline bounds jobs that do not request a deadline.
	DefaultDeadline time.Duration
	// MaxDeadline clamps requested deadlines.
	MaxDeadline time.Duration
	// RetryAfter is the hint returned with 429/503 responses.
	RetryAfter time.Duration
	// NoIdleSkip disables idle-horizon fast-forwarding in runs.
	NoIdleSkip bool
	// FS is the filesystem seam under the result store; nil means the
	// real filesystem. Tests inject iofault.FaultFS to prove the
	// ENOSPC/EIO/wounded-mode contract end to end.
	FS iofault.FS
	// Run overrides the simulation entry point (tests only).
	Run runner.RunFunc
	// RunLanes overrides the lane-batch entry point (tests only).
	RunLanes runner.LaneRunFunc
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

// Server is the simulation service: admission control in front of the
// resilient runner pool, a crash-safe result store behind it, and an
// HTTP/JSON job API on top.
type Server struct {
	opts  Options
	store *Store
	pool  *runner.Pool
	adm   *Admission
	mux   *http.ServeMux

	baseCtx context.Context
	stopAll context.CancelFunc

	draining atomic.Bool
	// wounded mirrors the store journal's health for the lock-free
	// readiness path: set when a Put fails, cleared when one succeeds
	// (the journal heals itself on the first append after the fault
	// clears). While wounded, the daemon keeps serving — reads, cached
	// results, even fresh runs — but readiness is degraded and no fresh
	// result is acknowledged as durable.
	wounded atomic.Bool
	started time.Time

	mu     sync.Mutex
	jobs   map[string]*Job
	jobWG  sync.WaitGroup
	closed bool

	statMu  sync.Mutex
	httpLat *stats.LogHistogram // request service time, seconds
	runLat  *stats.LogHistogram // simulation wall time, seconds
}

// New assembles a server: store replay, pool wiring, route table.
func New(opts Options) (*Server, error) {
	if opts.QueueCap <= 0 {
		opts.QueueCap = DefaultQueueCap
	}
	if opts.MaxRunsPerJob <= 0 {
		opts.MaxRunsPerJob = DefaultMaxRunsPerJob
	}
	if opts.Jobs <= 0 {
		opts.Jobs = runtime.GOMAXPROCS(0)
	}
	if opts.Retries == 0 {
		opts.Retries = DefaultRetries
	} else if opts.Retries < 0 {
		opts.Retries = 0
	}
	if opts.DefaultDeadline <= 0 {
		opts.DefaultDeadline = DefaultDeadline
	}
	if opts.MaxDeadline <= 0 {
		opts.MaxDeadline = DefaultMaxDeadline
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = DefaultRetryAfter
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}

	store, err := OpenStoreFS(opts.FS, opts.StorePath)
	if err != nil {
		return nil, err
	}
	if n := store.Skipped(); n > 0 {
		opts.Logf("service: store replay skipped %d torn journal line(s); those runs re-execute on demand", n)
	}
	if n := store.Quarantined(); n > 0 {
		opts.Logf("service: store replay quarantined %d corrupt record(s) to %s; those runs re-execute on demand",
			n, runner.QuarantinePath(store.Path()))
	}
	if err := store.Replay().SidecarErr; err != nil {
		opts.Logf("service: quarantine sidecar write failed (corrupt lines counted but not preserved): %v", err)
	}
	if store.Path() != "" {
		opts.Logf("service: store %s replayed %d completed run(s)", store.Path(), store.Len())
	}

	baseCtx, stopAll := context.WithCancel(context.Background())
	s := &Server{
		opts:    opts,
		store:   store,
		adm:     NewAdmission(opts.QueueCap),
		baseCtx: baseCtx,
		stopAll: stopAll,
		started: time.Now(),
		jobs:    make(map[string]*Job),
		httpLat: stats.NewLogHistogram(1e-6, 3600, 16),
		runLat:  stats.NewLogHistogram(1e-6, 3600, 16),
	}
	s.pool, err = runner.New(baseCtx, runner.Options{
		Jobs:       opts.Jobs,
		RunTimeout: opts.RunTimeout,
		Retries:    opts.Retries,
		Shards:     opts.Shards,
		Lanes:      opts.Lanes,
		Run:        opts.Run,
		RunLanes:   opts.RunLanes,
		Lookup:     store.Get,
		// Persist runs BEFORE the pool publishes an outcome to its cache:
		// the store append is fsynced when it returns, so everything the
		// daemon ever acknowledges — HTTP result documents, cache hits,
		// store hits — is durable by construction. On failure the pool
		// returns an uncached "io_error" outcome, and the wounded flag
		// degrades readiness until a later Put heals the journal.
		Persist: func(rec runner.Record) error {
			err := store.Put(rec)
			if err != nil {
				if s.wounded.CompareAndSwap(false, true) {
					opts.Logf("service: store wounded — append failed, serving degraded until it heals: %v", err)
				}
				return err
			}
			if s.wounded.CompareAndSwap(true, false) {
				opts.Logf("service: store healed; appends are durable again")
			}
			return nil
		},
	})
	if err != nil {
		stopAll()
		store.Close()
		return nil, err
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.instrument(s.handleSubmit))
	mux.HandleFunc("GET /v1/runs/{id}", s.instrument(s.handleGet))
	mux.HandleFunc("GET /v1/runs/{id}/result", s.instrument(s.handleResult))
	mux.HandleFunc("GET /v1/runs/{id}/events", s.handleEvents) // streaming: not latency-instrumented
	mux.HandleFunc("GET /v1/configs", s.instrument(s.handleConfigs))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /statusz", s.instrument(s.handleStatusz))
	s.mux = mux
	return s, nil
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// instrument records request service time in the service's own
// tail-latency histogram.
func (s *Server) instrument(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		h(w, r)
		s.statMu.Lock()
		s.httpLat.Observe(time.Since(t0).Seconds())
		s.statMu.Unlock()
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, code int, msg string) {
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		secs := int((s.opts.RetryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, code, map[string]string{"error": msg})
}

// handleSubmit admits (or recognizes) a job. Responses: 400 malformed,
// 503 draining, 429 queue full, 202 admitted asynchronously, 200 result
// of a completed (or wait=true) job.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	body := http.MaxBytesReader(w, r.Body, DefaultMaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "malformed request: "+err.Error())
		return
	}
	spec, err := req.Spec.Canonical(s.opts.MaxRunsPerJob)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	id := spec.ID()

	if s.draining.Load() {
		// Degrade honestly: a draining daemon still serves finished jobs
		// but admits nothing new.
		if j := s.lookupJob(id); j != nil {
			s.respondJob(w, r, j, req.Wait)
			return
		}
		s.writeError(w, http.StatusServiceUnavailable, "draining: not admitting new work")
		return
	}

	j, created, ok := s.admit(id, spec, req)
	if !ok {
		s.writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("admission queue full (%d/%d jobs)", s.adm.InUse(), s.adm.Cap()))
		return
	}
	if created {
		s.jobWG.Add(1)
		go s.runJob(j)
	}
	s.respondJob(w, r, j, req.Wait)
}

// admit returns the job for id, creating and admitting it when absent.
// An existing ephemeral job (terminal-canceled, or done with non-durable
// io_error runs) is replaced — content addressing must not pin those
// verdicts forever. ok=false means the queue shed it.
func (s *Server) admit(id string, spec Spec, req Request) (j *Job, created, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j := s.jobs[id]; j != nil && !j.ephemeral() {
		return j, false, true
	}
	if !s.adm.TryAcquire() {
		return nil, false, false
	}
	cfgs, err := spec.BuildConfigs()
	if err != nil { // unreachable after Canonical, but fail closed
		s.adm.Release()
		return nil, false, false
	}
	deadline := s.opts.DefaultDeadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	if deadline > s.opts.MaxDeadline {
		deadline = s.opts.MaxDeadline
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, deadline)
	for i := range cfgs {
		cfgs[i].NoIdleSkip = s.opts.NoIdleSkip
	}
	j = newJob(id, spec, cfgs, ctx, cancel, req.Wait)
	s.jobs[id] = j
	return j, true, true
}

func (s *Server) lookupJob(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// runJob executes one admitted job: every run fans out through the pool
// (which bounds real concurrency), under the job's deadline context. With
// lane batching enabled the whole job goes through DoAllContext so
// same-config multi-seed runs (Spec.Seeds) coalesce into lane batches;
// per-run progress then lands when the batch settles, and the latency
// histogram records the amortized per-run cost.
func (s *Server) runJob(j *Job) {
	defer s.jobWG.Done()
	defer s.adm.Release()
	defer j.cancel()
	j.start()
	if s.opts.Lanes >= 2 {
		t0 := time.Now()
		outs := s.pool.DoAllContext(j.ctx, j.cfgs)
		fresh := 0
		for i, out := range outs {
			if !out.Cached && !out.Resumed {
				fresh++
			}
			j.finishRun(i, out)
		}
		if fresh > 0 {
			s.statMu.Lock()
			s.runLat.Observe(time.Since(t0).Seconds() / float64(fresh))
			s.statMu.Unlock()
		}
	} else {
		var wg sync.WaitGroup
		for i := range j.cfgs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				t0 := time.Now()
				out := s.pool.DoContext(j.ctx, j.cfgs[i])
				if !out.Cached && !out.Resumed {
					s.statMu.Lock()
					s.runLat.Observe(time.Since(t0).Seconds())
					s.statMu.Unlock()
				}
				j.finishRun(i, out)
			}(i)
		}
		wg.Wait()
	}
	j.finish()
	status, reason, _, _ := j.snapshot()
	s.opts.Logf("service: job %s %s%s (%d runs)", j.ID, status, suffixIf(reason), len(j.cfgs))
}

func suffixIf(reason string) string {
	if reason == "" {
		return ""
	}
	return ": " + reason
}

// respondJob renders the submit response: wait=true blocks until the job
// (or the client) is done; otherwise 202/200 with the status document.
func (s *Server) respondJob(w http.ResponseWriter, r *http.Request, j *Job, wait bool) {
	if wait {
		j.watch()
		defer j.unwatch()
		select {
		case <-j.done:
		case <-r.Context().Done():
			// Client gone; unwatch may cancel a sync-owned job.
			return
		}
		writeJSON(w, http.StatusOK, s.jobDoc(j))
		return
	}
	code := http.StatusAccepted
	status, _, _, _ := j.snapshot()
	if status == StatusDone || status == StatusCanceled {
		code = http.StatusOK
	}
	writeJSON(w, code, s.jobDoc(j))
}

// jobDoc is the volatile job-status document (GET /v1/runs/{id}).
func (s *Server) jobDoc(j *Job) map[string]any {
	status, reason, doneRuns, outs := j.snapshot()
	runs := make([]map[string]any, 0, len(outs))
	for _, out := range outs {
		if out.Key == "" {
			continue // not finished yet
		}
		runs = append(runs, map[string]any{
			"key":      out.Key,
			"status":   statusLabel(out.Result.Status),
			"attempts": out.Attempts,
			"cached":   out.Cached,
			"resumed":  out.Resumed,
		})
	}
	doc := map[string]any{
		"id":     j.ID,
		"spec":   j.Spec,
		"status": status,
		"done":   doneRuns,
		"total":  len(j.cfgs),
		"runs":   runs,
	}
	if reason != "" {
		doc["reason"] = reason
	}
	if status == StatusDone {
		doc["result_url"] = "/v1/runs/" + j.ID + "/result"
	}
	return doc
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		s.writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, s.jobDoc(j))
}

// handleResult serves the canonical result document: byte-identical for
// every repeat query, restart and store replay. 202 while running, 410
// for a canceled job (re-submit to re-execute).
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		s.writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	status, reason, doneRuns, _ := j.snapshot()
	switch status {
	case StatusDone:
		writeJSON(w, http.StatusOK, j.resultDoc())
	case StatusCanceled:
		s.writeError(w, http.StatusGone, "job canceled ("+reason+"); re-submit to re-execute")
	default:
		writeJSON(w, http.StatusAccepted, map[string]any{
			"id": j.ID, "status": status, "done": doneRuns, "total": len(j.cfgs),
		})
	}
}

// handleEvents streams the job's progress as NDJSON: a replay of past
// events, then live follow until the job ends or the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		s.writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	j.watch()
	defer j.unwatch()
	enc := json.NewEncoder(w)
	seq := 0
	for {
		evs, bump, terminal := j.eventsSince(seq)
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		seq += len(evs)
		if flusher != nil {
			flusher.Flush()
		}
		// finish() appends the terminal event atomically with the status
		// flip, so a terminal snapshot always includes the final event —
		// once drained above, the stream is complete.
		if terminal {
			return
		}
		select {
		case <-bump:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleConfigs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"configs": DesignPoints()})
}

// handleHealthz is liveness: it reads only atomics, so a saturated queue
// or a stuck job can never block it.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "draining": s.draining.Load()})
}

// handleReadyz is readiness, and it degrades honestly: 503 while draining
// or while the admission queue is saturated. Atomics only — never blocked
// by job or store locks.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		s.writeError(w, http.StatusServiceUnavailable, "draining")
	case s.wounded.Load():
		s.writeError(w, http.StatusServiceUnavailable, "store wounded: results are not durable until the journal heals")
	case s.adm.Saturated():
		s.writeError(w, http.StatusServiceUnavailable, "admission queue saturated")
	default:
		writeJSON(w, http.StatusOK, map[string]any{"ready": true})
	}
}

// handleStatusz reports the daemon's own operational statistics,
// including the tail-latency percentiles the stats package computes.
func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	byStatus := map[string]int{}
	for _, j := range s.jobs {
		st, _, _, _ := j.snapshot()
		byStatus[st]++
	}
	s.mu.Unlock()

	s.statMu.Lock()
	lat := map[string]any{
		"http": latencyDoc(s.httpLat),
		"run":  latencyDoc(s.runLat),
	}
	s.statMu.Unlock()

	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_s": int64(time.Since(s.started).Seconds()),
		"draining": s.draining.Load(),
		"queue": map[string]any{
			"in_use": s.adm.InUse(),
			"cap":    s.adm.Cap(),
			"shed":   s.adm.Shed(),
		},
		"jobs":          byStatus,
		"pool_executed": s.pool.Executed(),
		"store": map[string]any{
			"results":     s.store.Len(),
			"skipped":     s.store.Skipped(),
			"quarantined": s.store.Quarantined(),
			"wounded":     s.wounded.Load(),
			"path":        s.store.Path(),
		},
		"latency": lat,
	})
}

func latencyDoc(h *stats.LogHistogram) map[string]any {
	ms := func(v float64) float64 { return v * 1000 }
	return map[string]any{
		"n":       h.N(),
		"mean_ms": ms(h.Mean()),
		"p50_ms":  ms(h.Quantile(0.50)),
		"p99_ms":  ms(h.Quantile(0.99)),
		"p999_ms": ms(h.Quantile(0.999)),
		"max_ms":  ms(h.Max()),
	}
}

// Drain performs the graceful-shutdown contract: stop admitting
// immediately (readiness false, new submissions 503), let in-flight jobs
// finish, and when ctx expires first, checkpoint instead — cancel the
// remaining runs (every completed run is already fsynced in the store)
// and return once executors unwind. Always leaves the store and pool
// closed; the caller exits 0 on a nil error.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.jobWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.opts.Logf("service: drained cleanly; all in-flight jobs finished")
	case <-ctx.Done():
		s.opts.Logf("service: drain deadline reached; checkpointing in-flight runs")
		s.stopAll() // in-flight runs return "canceled"; finished ones are already durable
		select {
		case <-done:
		case <-time.After(forcedDrainGrace):
			s.opts.Logf("service: executors did not unwind within %v; store is still consistent", forcedDrainGrace)
		}
	}
	return s.Close()
}

// Close releases the pool and store. Safe to call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.stopAll()
	perr := s.pool.Close()
	serr := s.store.Close()
	if perr != nil {
		return perr
	}
	return serr
}

// Draining reports whether the server has begun (or finished) draining.
func (s *Server) Draining() bool { return s.draining.Load() }
