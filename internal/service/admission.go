package service

import "sync/atomic"

// Admission is the daemon's bounded admission queue, the service-layer
// analogue of credit-based backpressure: a job occupies one slot from
// acceptance until completion, and when every slot is taken new work is
// shed with 429 + Retry-After instead of queueing without bound. All
// state is atomic so the health endpoints can read it without taking any
// lock a saturated queue could be holding.
type Admission struct {
	capacity int64
	inUse    atomic.Int64
	shed     atomic.Uint64
}

// NewAdmission builds a queue with the given capacity (minimum 1).
func NewAdmission(capacity int) *Admission {
	if capacity < 1 {
		capacity = 1
	}
	return &Admission{capacity: int64(capacity)}
}

// TryAcquire claims a slot, or records a shed and refuses.
func (a *Admission) TryAcquire() bool {
	for {
		n := a.inUse.Load()
		if n >= a.capacity {
			a.shed.Add(1)
			return false
		}
		if a.inUse.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// Release returns a slot.
func (a *Admission) Release() { a.inUse.Add(-1) }

// InUse returns the number of admitted, unfinished jobs.
func (a *Admission) InUse() int { return int(a.inUse.Load()) }

// Cap returns the queue capacity.
func (a *Admission) Cap() int { return int(a.capacity) }

// Saturated reports whether the queue is full right now.
func (a *Admission) Saturated() bool { return a.inUse.Load() >= a.capacity }

// Shed returns how many submissions have been refused for lack of a slot.
func (a *Admission) Shed() uint64 { return a.shed.Load() }
