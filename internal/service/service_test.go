package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/runner"
)

// fakeRun is a deterministic stand-in for core.Run: the result is a pure
// function of the config identity, so store round-trips and restarts can
// be checked for byte-identity without paying for real simulations.
func fakeRun(ctx context.Context, cfg core.Config) (core.Result, error) {
	h := fnv.New64a()
	h.Write([]byte(runner.Key(cfg)))
	return core.Result{
		Benchmark: cfg.Workload.Abbr,
		Config:    cfg.Name,
		Status:    "ok",
		IPC:       float64(h.Sum64()%100000) / 100,
	}, nil
}

// gatedRun blocks every run until release is closed (or the context
// dies), for tests that need work pinned in flight.
func gatedRun(release <-chan struct{}, started chan<- string) runner.RunFunc {
	return func(ctx context.Context, cfg core.Config) (core.Result, error) {
		if started != nil {
			started <- runner.Key(cfg)
		}
		select {
		case <-release:
			return fakeRun(ctx, cfg)
		case <-ctx.Done():
			return core.Result{Benchmark: cfg.Workload.Abbr, Config: cfg.Name, Status: "canceled"}, ctx.Err()
		}
	}
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Run == nil {
		opts.Run = fakeRun
	}
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func post(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

const smallSweep = `{"configs":["TB-DOR","CP-CR"],"benchmarks":["BIN","MUM"],"scale":0.05,"wait":true}`

// TestSubmitWaitAndDigestStableResult: a synchronous submit completes,
// the result document is served, and repeat queries — and a re-submission
// of the same request — return byte-identical bytes without re-executing.
func TestSubmitWaitAndDigestStableResult(t *testing.T) {
	srv, ts := newTestServer(t, Options{})
	resp, body := post(t, ts.URL, smallSweep)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wait submit: %d %s", resp.StatusCode, body)
	}
	var doc struct {
		ID     string `json:"id"`
		Status string `json:"status"`
		Total  int    `json:"total"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Status != StatusDone || doc.Total != 4 {
		t.Fatalf("job doc: %+v", doc)
	}

	r1, res1 := get(t, ts.URL+"/v1/runs/"+doc.ID+"/result")
	r2, res2 := get(t, ts.URL+"/v1/runs/"+doc.ID+"/result")
	if r1.StatusCode != 200 || r2.StatusCode != 200 {
		t.Fatalf("result fetch: %d / %d", r1.StatusCode, r2.StatusCode)
	}
	if !bytes.Equal(res1, res2) {
		t.Fatalf("repeat result queries differ:\n%s\n%s", res1, res2)
	}

	// Re-submitting the identical request maps to the same job and does
	// not execute anything new.
	executedBefore := srv.pool.Executed()
	resp, body = post(t, ts.URL, smallSweep)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-submit: %d %s", resp.StatusCode, body)
	}
	var doc2 struct {
		ID string `json:"id"`
	}
	json.Unmarshal(body, &doc2)
	if doc2.ID != doc.ID {
		t.Fatalf("content addressing broken: %s vs %s", doc2.ID, doc.ID)
	}
	if srv.pool.Executed() != executedBefore {
		t.Errorf("re-submission executed %d new runs", srv.pool.Executed()-executedBefore)
	}

	// List order in the request must not matter: same content address.
	reordered := `{"configs":["CP-CR","TB-DOR"],"benchmarks":["MUM","BIN","BIN"],"scale":0.05,"wait":true}`
	_, body = post(t, ts.URL, reordered)
	json.Unmarshal(body, &doc2)
	if doc2.ID != doc.ID {
		t.Errorf("reordered request got a different job ID: %s vs %s", doc2.ID, doc.ID)
	}
}

// TestCrashRestartServesFromStore is the acceptance-criteria journal
// replay test: a daemon killed after completing runs (we simply never
// close the first server, as kill -9 would) is restarted on the same
// store; re-submitting the same request serves every run from the store
// with zero executions, byte-identical — even with a torn final journal
// line in between.
func TestCrashRestartServesFromStore(t *testing.T) {
	storePath := filepath.Join(t.TempDir(), "store.jsonl")
	var calls1 atomic.Int64
	srv1, err := New(Options{StorePath: storePath, Run: func(ctx context.Context, cfg core.Config) (core.Result, error) {
		calls1.Add(1)
		return fakeRun(ctx, cfg)
	}})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	resp, body := post(t, ts1.URL, smallSweep)
	if resp.StatusCode != 200 {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var doc struct {
		ID string `json:"id"`
	}
	json.Unmarshal(body, &doc)
	_, res1 := get(t, ts1.URL+"/v1/runs/"+doc.ID+"/result")
	if calls1.Load() != 4 {
		t.Fatalf("first daemon executed %d runs, want 4", calls1.Load())
	}
	ts1.Close() // kill -9: no srv1.Close(), no journal close, no drain

	// The crash wound: a run torn mid-append.
	f, err := os.OpenFile(storePath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"torn|TOR|s1|i1","attempts":1,"result":{"IPC":`)
	f.Close()

	var calls2 atomic.Int64
	srv2, ts2 := newTestServer(t, Options{StorePath: storePath, Run: func(ctx context.Context, cfg core.Config) (core.Result, error) {
		calls2.Add(1)
		return fakeRun(ctx, cfg)
	}})
	if srv2.store.Skipped() != 1 {
		t.Errorf("store replay skipped %d lines, want 1 (the torn one)", srv2.store.Skipped())
	}
	resp, body = post(t, ts2.URL, smallSweep)
	if resp.StatusCode != 200 {
		t.Fatalf("re-submit after restart: %d %s", resp.StatusCode, body)
	}
	json.Unmarshal(body, &doc)
	_, res2 := get(t, ts2.URL+"/v1/runs/"+doc.ID+"/result")
	if !bytes.Equal(res1, res2) {
		t.Fatalf("restarted result differs from pre-crash result:\n%s\n%s", res1, res2)
	}
	if calls2.Load() != 0 {
		t.Errorf("restarted daemon re-executed %d runs, want 0 (store replay)", calls2.Load())
	}
	if srv2.pool.Executed() != 0 {
		t.Errorf("pool executed %d runs after restart, want 0", srv2.pool.Executed())
	}
}

// TestAdmissionShedsWith429: a saturated queue refuses with 429 +
// Retry-After while /healthz stays 200 and /readyz reports unready; a
// freed slot restores admission.
func TestAdmissionShedsWith429(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 8)
	_, ts := newTestServer(t, Options{QueueCap: 1, Run: gatedRun(release, started)})

	// Occupy the single slot with an async job pinned in flight.
	resp, body := post(t, ts.URL, `{"configs":["TB-DOR"],"benchmarks":["MUM"]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: %d %s", resp.StatusCode, body)
	}
	<-started

	resp, body = post(t, ts.URL, `{"configs":["TB-DOR"],"benchmarks":["BIN"]}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: %d %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	if r, _ := get(t, ts.URL+"/healthz"); r.StatusCode != 200 {
		t.Errorf("healthz %d during saturation, want 200", r.StatusCode)
	}
	if r, _ := get(t, ts.URL+"/readyz"); r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz %d during saturation, want 503", r.StatusCode)
	}

	close(release)
	// The slot frees once the job finishes; admission recovers.
	deadline := time.After(5 * time.Second)
	for {
		resp, body = post(t, ts.URL, `{"configs":["TB-DOR"],"benchmarks":["BIN"]}`)
		if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("admission never recovered: %d %s", resp.StatusCode, body)
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// TestDrainFinishesInFlightAndRefusesNew: Drain flips readiness and
// refuses new submissions while the in-flight job runs to completion and
// lands in the store; Drain returns nil (exit 0 for the daemon).
func TestDrainFinishesInFlightAndRefusesNew(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 8)
	storePath := filepath.Join(t.TempDir(), "store.jsonl")
	srv, ts := newTestServer(t, Options{StorePath: storePath, Run: gatedRun(release, started)})

	resp, body := post(t, ts.URL, `{"configs":["TB-DOR"],"benchmarks":["MUM"]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var doc struct {
		ID string `json:"id"`
	}
	json.Unmarshal(body, &doc)
	<-started

	drainErr := make(chan error, 1)
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() { drainErr <- srv.Drain(drainCtx) }()

	// Draining: readiness off, new work refused with Retry-After.
	waitFor(t, func() bool { return srv.Draining() })
	if r, _ := get(t, ts.URL+"/readyz"); r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz %d while draining, want 503", r.StatusCode)
	}
	resp, _ = post(t, ts.URL, `{"configs":["CP-CR"],"benchmarks":["BIN"]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("new submit while draining: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining 503 without Retry-After")
	}

	close(release)
	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}

	// The in-flight run finished during drain and is durable.
	recs, stats, err := runner.LoadJournal(storePath)
	if err != nil || stats.Skipped != 0 || stats.Quarantined != 0 || len(recs) != 1 {
		t.Fatalf("journal after drain: recs=%d stats=%+v err=%v, want exactly the drained run", len(recs), stats, err)
	}
}

// TestDrainDeadlineCheckpoints: when in-flight work outlives the drain
// budget, Drain cancels it and still returns cleanly — the checkpoint
// contract — rather than hanging.
func TestDrainDeadlineCheckpoints(t *testing.T) {
	release := make(chan struct{}) // never closed: the run only ends by cancellation
	defer close(release)
	started := make(chan string, 8)
	srv, ts := newTestServer(t, Options{Run: gatedRun(release, started)})

	if resp, body := post(t, ts.URL, `{"configs":["TB-DOR"],"benchmarks":["MUM"]}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	<-started

	drainCtx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := srv.Drain(drainCtx); err != nil {
		t.Fatalf("forced drain: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("forced drain took %v; the deadline is not being honoured", elapsed)
	}
}

// TestJobDeadlineCancelsAndDoesNotPoison: an end-to-end deadline cancels
// in-flight simulation work, the job reports canceled, and a later
// re-submission with a workable deadline re-executes and completes —
// the canceled verdict must not be pinned by content addressing.
func TestJobDeadlineCancelsAndDoesNotPoison(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	var calls atomic.Int64
	_, ts := newTestServer(t, Options{Run: func(ctx context.Context, cfg core.Config) (core.Result, error) {
		if calls.Add(1) == 1 {
			select { // first attempt: stuck until the deadline kills it
			case <-release:
			case <-ctx.Done():
				return core.Result{Benchmark: cfg.Workload.Abbr, Config: cfg.Name, Status: "canceled"}, ctx.Err()
			}
		}
		return fakeRun(ctx, cfg)
	}})

	req := `{"configs":["TB-DOR"],"benchmarks":["MUM"],"wait":true,"deadline_ms":100}`
	resp, body := post(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deadline submit: %d %s", resp.StatusCode, body)
	}
	var doc struct {
		ID     string `json:"id"`
		Status string `json:"status"`
		Reason string `json:"reason"`
	}
	json.Unmarshal(body, &doc)
	if doc.Status != StatusCanceled {
		t.Fatalf("job status %q after deadline, want canceled (%s)", doc.Status, body)
	}
	if r, _ := get(t, ts.URL+"/v1/runs/"+doc.ID+"/result"); r.StatusCode != http.StatusGone {
		t.Errorf("result of canceled job: %d, want 410", r.StatusCode)
	}

	// Same spec, workable deadline: must re-admit and complete.
	resp, body = post(t, ts.URL, `{"configs":["TB-DOR"],"benchmarks":["MUM"],"wait":true,"deadline_ms":60000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-submit: %d %s", resp.StatusCode, body)
	}
	json.Unmarshal(body, &doc)
	if doc.Status != StatusDone {
		t.Fatalf("re-submitted job status %q, want done (%s)", doc.Status, body)
	}
	if calls.Load() < 2 {
		t.Errorf("run executed %d times; the canceled attempt was served from cache", calls.Load())
	}
}

// TestEventsStreamNDJSON: the events endpoint replays and follows a
// job's progress as parseable NDJSON, ending when the job does.
func TestEventsStreamNDJSON(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 8)
	// Jobs: 2 so both gated runs can be in flight at once regardless of
	// the machine's core count (the test releases them together).
	_, ts := newTestServer(t, Options{Jobs: 2, Run: gatedRun(release, started)})

	resp, body := post(t, ts.URL, `{"configs":["TB-DOR"],"benchmarks":["BIN","MUM"]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var doc struct {
		ID string `json:"id"`
	}
	json.Unmarshal(body, &doc)

	stream, err := http.Get(ts.URL + "/v1/runs/" + doc.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events content type %q", ct)
	}
	<-started
	<-started
	close(release)

	var types []string
	runEvents := 0
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if ev.Seq != len(types) {
			t.Errorf("event %d has seq %d", len(types), ev.Seq)
		}
		types = append(types, ev.Type)
		if ev.Type == "run" {
			runEvents++
		}
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	if len(types) == 0 || types[0] != "queued" || types[len(types)-1] != "done" {
		t.Fatalf("event sequence %v, want queued ... done", types)
	}
	if runEvents != 2 {
		t.Errorf("%d run events, want 2", runEvents)
	}
}

// TestBadRequests: malformed and invalid submissions answer 400 with a
// usable message; oversized sweeps are refused.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxRunsPerJob: 4})
	cases := []struct {
		body string
		want string
	}{
		{`{`, "malformed"},
		{`{"benchmarks":["MUM"]}`, "configs required"},
		{`{"configs":["TB-DOR"]}`, "benchmarks required"},
		{`{"configs":["NOPE"],"benchmarks":["MUM"]}`, "unknown config"},
		{`{"configs":["TB-DOR"],"benchmarks":["NOPE"]}`, "NOPE"},
		{`{"configs":["TB-DOR"],"benchmarks":["MUM"],"scale":7}`, "scale"},
		{`{"configs":["TB-DOR","CP-CR","CP-DOR"],"benchmarks":["MUM","BIN"]}`, "caps jobs"},
	}
	for _, c := range cases {
		resp, body := post(t, ts.URL, c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.body, resp.StatusCode)
		}
		if !strings.Contains(string(body), c.want) {
			t.Errorf("%s: body %s does not mention %q", c.body, body, c.want)
		}
	}
	if r, _ := get(t, ts.URL+"/v1/runs/unknown"); r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", r.StatusCode)
	}
}

// TestStatuszPercentiles: the daemon's own latency percentiles are
// exposed once requests have flowed.
func TestStatuszPercentiles(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	post(t, ts.URL, smallSweep)
	resp, body := get(t, ts.URL+"/statusz")
	if resp.StatusCode != 200 {
		t.Fatalf("statusz: %d", resp.StatusCode)
	}
	var doc struct {
		Latency struct {
			HTTP struct {
				N   uint64  `json:"n"`
				P50 float64 `json:"p50_ms"`
				P99 float64 `json:"p99_ms"`
			} `json:"http"`
			Run struct {
				N uint64 `json:"n"`
			} `json:"run"`
		} `json:"latency"`
		Store struct {
			Results int `json:"results"`
		} `json:"store"`
		PoolExecuted int `json:"pool_executed"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("statusz body %s: %v", body, err)
	}
	if doc.Latency.HTTP.N == 0 || doc.Latency.HTTP.P99 < doc.Latency.HTTP.P50 {
		t.Errorf("http latency doc not populated: %s", body)
	}
	if doc.Latency.Run.N != 4 || doc.PoolExecuted != 4 || doc.Store.Results != 4 {
		t.Errorf("run accounting: %s", body)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for !cond() {
		select {
		case <-deadline:
			t.Fatal("condition never became true")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestSpecCanonicalAndID pins the content-addressing contract directly.
func TestSpecCanonicalAndID(t *testing.T) {
	a, err := Spec{Configs: []string{"CP-CR", "TB-DOR", "CP-CR"}, Benchmarks: []string{"MUM", "BIN"}}.Canonical(100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Spec{Configs: []string{"TB-DOR", "CP-CR"}, Benchmarks: []string{"BIN", "MUM", "BIN"}, Seed: 1, Scale: 1}.Canonical(100)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID() != b.ID() {
		t.Errorf("equivalent specs address differently: %s vs %s", a.ID(), b.ID())
	}
	c, _ := Spec{Configs: []string{"TB-DOR", "CP-CR"}, Benchmarks: []string{"BIN", "MUM"}, Seed: 2}.Canonical(100)
	if c.ID() == a.ID() {
		t.Error("different seeds share a content address")
	}
	cfgs, err := a.BuildConfigs()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 4 {
		t.Fatalf("BuildConfigs: %d configs, want 4", len(cfgs))
	}
	for _, cfg := range cfgs {
		if err := cfg.Validate(); err != nil {
			t.Errorf("built config %s invalid: %v", cfg.Name, err)
		}
	}
	if fmt.Sprintf("%s|%s", cfgs[0].Name, cfgs[0].Workload.Abbr) != "CP-CR|BIN" {
		t.Errorf("BuildConfigs order not canonical: first is %s/%s", cfgs[0].Name, cfgs[0].Workload.Abbr)
	}
}

// TestSpecTopology pins the topology field's contract: "mesh" normalizes
// away so job IDs minted before the field existed stay valid, ring and
// basejump re-target only topology-neutral design points, and the built
// configs carry the selected backend.
func TestSpecTopology(t *testing.T) {
	old, err := Spec{Configs: []string{"TB-DOR"}, Benchmarks: []string{"MUM"}}.Canonical(100)
	if err != nil {
		t.Fatal(err)
	}
	mesh, err := Spec{Configs: []string{"TB-DOR"}, Benchmarks: []string{"MUM"}, Topology: "mesh"}.Canonical(100)
	if err != nil {
		t.Fatal(err)
	}
	if mesh.ID() != old.ID() {
		t.Errorf("explicit mesh changes the job ID: %s vs %s", mesh.ID(), old.ID())
	}
	ring, err := Spec{Configs: []string{"TB-DOR"}, Benchmarks: []string{"MUM"}, Topology: "ring"}.Canonical(100)
	if err != nil {
		t.Fatal(err)
	}
	if ring.ID() == old.ID() {
		t.Error("ring and mesh jobs share a content address")
	}
	cfgs, err := ring.BuildConfigs()
	if err != nil {
		t.Fatal(err)
	}
	if cfgs[0].Name != "TB-DOR-ring" || cfgs[0].Noc.Topology != noc.BackendRing {
		t.Errorf("ring spec built %q with topology %v", cfgs[0].Name, cfgs[0].Noc.Topology)
	}
	if err := cfgs[0].Validate(); err != nil {
		t.Errorf("ring config invalid: %v", err)
	}
	if _, err := (Spec{Configs: []string{"CP-CR"}, Benchmarks: []string{"MUM"}, Topology: "ring"}).Canonical(100); err == nil {
		t.Error("mesh-only CP-CR accepted with ring topology")
	}
	if _, err := (Spec{Configs: []string{"TB-DOR"}, Benchmarks: []string{"MUM"}, Topology: "torus"}).Canonical(100); err == nil {
		t.Error("unknown topology accepted")
	}
	named, err := Spec{Configs: []string{"BaseJump", "Ring"}, Benchmarks: []string{"MUM"}}.Canonical(100)
	if err != nil {
		t.Fatal(err)
	}
	ncfgs, err := named.BuildConfigs()
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range ncfgs {
		if err := cfg.Validate(); err != nil {
			t.Errorf("named design point %s invalid: %v", cfg.Name, err)
		}
	}
	if ncfgs[0].Noc.Topology != noc.BackendBaseJump || ncfgs[1].Noc.Topology != noc.BackendRing {
		t.Errorf("named design points built wrong backends: %v, %v",
			ncfgs[0].Noc.Topology, ncfgs[1].Noc.Topology)
	}
}

// TestSpecSeeds pins the multi-seed sweep field: seeds sort and deduplicate,
// a single-element list normalizes into the scalar Seed (so job IDs minted
// before the field existed stay valid), zero seeds are rejected, the run
// count multiplies by the seed count, and BuildConfigs emits the seeds of
// one (config, benchmark) pair adjacently — the shape lane coalescing wants.
func TestSpecSeeds(t *testing.T) {
	old, err := Spec{Configs: []string{"TB-DOR"}, Benchmarks: []string{"MUM"}, Seed: 5}.Canonical(100)
	if err != nil {
		t.Fatal(err)
	}
	single, err := Spec{Configs: []string{"TB-DOR"}, Benchmarks: []string{"MUM"}, Seeds: []uint64{5}}.Canonical(100)
	if err != nil {
		t.Fatal(err)
	}
	if single.ID() != old.ID() {
		t.Errorf("seeds [5] and seed 5 address differently: %s vs %s", single.ID(), old.ID())
	}
	if single.Seeds != nil || single.Seed != 5 {
		t.Errorf("single-element seeds did not normalize into the scalar: %+v", single)
	}

	multi, err := Spec{Configs: []string{"TB-DOR"}, Benchmarks: []string{"BIN", "MUM"},
		Seeds: []uint64{9, 3, 9, 5}}.Canonical(100)
	if err != nil {
		t.Fatal(err)
	}
	if want := []uint64{3, 5, 9}; len(multi.Seeds) != 3 ||
		multi.Seeds[0] != want[0] || multi.Seeds[1] != want[1] || multi.Seeds[2] != want[2] {
		t.Errorf("seeds not sorted/deduplicated: %v, want %v", multi.Seeds, want)
	}
	if multi.ID() == old.ID() {
		t.Error("multi-seed sweep shares a content address with a single run")
	}
	cfgs, err := multi.BuildConfigs()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 6 {
		t.Fatalf("BuildConfigs: %d configs, want 2 benchmarks x 3 seeds", len(cfgs))
	}
	// Seeds of one (config, benchmark) pair must sit adjacent, in order.
	for i, cfg := range cfgs {
		if want := multi.Seeds[i%3]; cfg.Seed != want {
			t.Errorf("cfgs[%d].Seed = %d, want %d (seeds adjacent per pair)", i, cfg.Seed, want)
		}
	}
	if cfgs[0].Workload.Abbr != cfgs[2].Workload.Abbr || cfgs[0].Workload.Abbr == cfgs[3].Workload.Abbr {
		t.Errorf("seed expansion not innermost: abbrs %s,%s,%s,%s",
			cfgs[0].Workload.Abbr, cfgs[1].Workload.Abbr, cfgs[2].Workload.Abbr, cfgs[3].Workload.Abbr)
	}

	if _, err := (Spec{Configs: []string{"TB-DOR"}, Benchmarks: []string{"MUM"},
		Seeds: []uint64{1, 0}}).Canonical(100); err == nil {
		t.Error("zero seed accepted")
	}
	if _, err := (Spec{Configs: []string{"TB-DOR"}, Benchmarks: []string{"MUM"},
		Seeds: []uint64{1, 2, 3}}).Canonical(2); err == nil {
		t.Error("seed multiplier not counted against the run cap")
	}
}

// TestLaneBatchedJob drives the lane path end to end: a multi-seed job on a
// lane-enabled server coalesces its seeds into lane batches, every seed
// still gets its own run row and store record, and a re-submission is
// served from the store without re-executing.
func TestLaneBatchedJob(t *testing.T) {
	var batches atomic.Int64
	fakeLanes := func(ctx context.Context, cfg core.Config, seeds []uint64) ([]core.Result, []error) {
		batches.Add(1)
		results := make([]core.Result, len(seeds))
		errs := make([]error, len(seeds))
		for i, s := range seeds {
			c := cfg
			c.Seed = s
			results[i], errs[i] = fakeRun(ctx, c)
		}
		return results, errs
	}
	dir := t.TempDir()
	_, ts := newTestServer(t, Options{
		StorePath: filepath.Join(dir, "store.jsonl"),
		Lanes:     2,
		RunLanes:  fakeLanes,
	})
	body := `{"configs":["TB-DOR"],"benchmarks":["MUM"],"seeds":[1,2,3,4],"scale":0.05,"wait":true}`
	resp, b := post(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d %s", resp.StatusCode, b)
	}
	var doc struct {
		Status string `json:"status"`
		Runs   []struct {
			Seed   uint64  `json:"seed"`
			Status string  `json:"status"`
			IPC    float64 `json:"ipc"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Status != "done" || len(doc.Runs) != 4 {
		t.Fatalf("job = %s with %d runs, want done with 4", doc.Status, len(doc.Runs))
	}
	for _, r := range doc.Runs {
		if r.Status != "ok" {
			t.Errorf("run status %q, want ok", r.Status)
		}
	}
	if got := batches.Load(); got != 2 {
		t.Errorf("lane batches executed = %d, want 2 (4 seeds at width 2)", got)
	}
	// Re-submission: all four seeds served from the store, no new batches.
	resp, b2 := post(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(b, b2) {
		t.Errorf("re-submission not byte-identical (status %d)", resp.StatusCode)
	}
	if got := batches.Load(); got != 2 {
		t.Errorf("re-submission grew batches to %d", got)
	}
}
