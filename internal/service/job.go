package service

import (
	"context"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/runner"
)

// Job statuses.
const (
	StatusQueued   = "queued"
	StatusRunning  = "running"
	StatusDone     = "done"     // all runs reached a terminal verdict
	StatusCanceled = "canceled" // deadline expired or every waiter left
)

// Event is one line of a job's NDJSON progress stream.
type Event struct {
	Seq    int    `json:"seq"`
	TimeMS int64  `json:"time_ms"` // wall clock, unix milliseconds
	Type   string `json:"type"`    // "queued", "started", "run", "done", "canceled"
	Key    string `json:"key,omitempty"`
	Status string `json:"status,omitempty"`
	Done   int    `json:"done,omitempty"`
	Total  int    `json:"total,omitempty"`
	Cached bool   `json:"cached,omitempty"` // served from memory or the store
}

// RunResult is the deterministic per-run payload of a job's result
// document: the run identity and the full simulation result, with no
// timestamps, attempt counts or cache provenance, so the /result document
// is byte-identical across retries, daemon restarts and store replays.
type RunResult struct {
	Key    string      `json:"key"`
	Result core.Result `json:"result"`
}

// ResultDoc is the canonical GET /v1/runs/{id}/result body.
type ResultDoc struct {
	ID   string      `json:"id"`
	Spec Spec        `json:"spec"`
	Runs []RunResult `json:"runs"`
}

// Job is one admitted submission: a set of runs executing on the pool
// under a shared context that carries the job's end-to-end deadline.
type Job struct {
	ID   string
	Spec Spec

	cfgs   []core.Config
	ctx    context.Context
	cancel context.CancelFunc

	// syncOwned marks a job created by a wait=true request: when its last
	// watcher disconnects before completion, the job is cancelled (nobody
	// is left to receive the result). Async jobs run to completion
	// regardless.
	syncOwned bool

	mu       sync.Mutex
	status   string
	reason   string // why the job was canceled, for the status document
	outs     []runner.Outcome
	doneRuns int
	watchers int
	events   []Event
	bump     chan struct{} // closed and replaced on every event append
	done     chan struct{}
	created  time.Time
	finished time.Time
}

func newJob(id string, spec Spec, cfgs []core.Config, ctx context.Context, cancel context.CancelFunc, syncOwned bool) *Job {
	j := &Job{
		ID:        id,
		Spec:      spec,
		cfgs:      cfgs,
		ctx:       ctx,
		cancel:    cancel,
		syncOwned: syncOwned,
		status:    StatusQueued,
		outs:      make([]runner.Outcome, len(cfgs)),
		bump:      make(chan struct{}),
		done:      make(chan struct{}),
		created:   time.Now(),
	}
	j.appendEvent(Event{Type: "queued", Total: len(cfgs)})
	return j
}

// appendEvent records an event and wakes stream followers. Callers
// must NOT hold j.mu.
func (j *Job) appendEvent(ev Event) {
	j.mu.Lock()
	j.appendEventLocked(ev)
	j.mu.Unlock()
}

func (j *Job) appendEventLocked(ev Event) {
	ev.Seq = len(j.events)
	ev.TimeMS = time.Now().UnixMilli()
	j.events = append(j.events, ev)
	close(j.bump)
	j.bump = make(chan struct{})
}

// start flips the job to running.
func (j *Job) start() {
	j.mu.Lock()
	j.status = StatusRunning
	j.mu.Unlock()
	j.appendEvent(Event{Type: "started", Total: len(j.cfgs)})
}

// finishRun records one run's terminal outcome.
func (j *Job) finishRun(i int, out runner.Outcome) {
	j.mu.Lock()
	j.outs[i] = out
	j.doneRuns++
	done, total := j.doneRuns, len(j.cfgs)
	j.mu.Unlock()
	j.appendEvent(Event{
		Type: "run", Key: out.Key, Status: statusLabel(out.Result.Status),
		Done: done, Total: total, Cached: out.Cached || out.Resumed,
	})
}

// finish settles the job's terminal status once every run has returned.
func (j *Job) finish() {
	status, reason := StatusDone, ""
	if err := j.ctx.Err(); err != nil {
		status = StatusCanceled
		if err == context.DeadlineExceeded {
			reason = "deadline exceeded"
		} else {
			reason = "canceled"
		}
	}
	// Status flip and terminal event land under one lock so that any
	// eventsSince observing a terminal status is guaranteed to already
	// hold the final event — stream followers rely on that to know when
	// the NDJSON stream can end.
	j.mu.Lock()
	j.status = status
	j.reason = reason
	j.finished = time.Now()
	j.appendEventLocked(Event{Type: eventForStatus(status), Status: reason, Done: j.doneRuns, Total: len(j.cfgs)})
	j.mu.Unlock()
	close(j.done)
}

// ephemeral reports whether the job's terminal verdict must not be
// pinned by content addressing: canceled jobs and jobs holding
// non-durable io_error outcomes are replaced on re-submission, so a
// transient disk fault (or an impatient client) never freezes a spec's
// result forever. Running jobs are never ephemeral — the live job is
// always joined, not replaced.
func (j *Job) ephemeral() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.status {
	case StatusCanceled:
		return true
	case StatusDone:
		for _, out := range j.outs {
			if out.Result.Status == "io_error" {
				return true
			}
		}
	}
	return false
}

func eventForStatus(status string) string {
	if status == StatusCanceled {
		return "canceled"
	}
	return "done"
}

func statusLabel(s string) string {
	if s == "" {
		return "ok"
	}
	return s
}

// watch registers interest in the job (a waiting submit or an event
// stream); unwatch withdraws it, cancelling a sync-owned job when the
// last watcher disconnects before completion.
func (j *Job) watch() {
	j.mu.Lock()
	j.watchers++
	j.mu.Unlock()
}

func (j *Job) unwatch() {
	j.mu.Lock()
	j.watchers--
	abandon := j.syncOwned && j.watchers <= 0 && j.status != StatusDone && j.status != StatusCanceled
	j.mu.Unlock()
	if abandon {
		j.cancel()
	}
}

// snapshot returns the volatile status document fields under one lock.
func (j *Job) snapshot() (status, reason string, doneRuns int, outs []runner.Outcome) {
	j.mu.Lock()
	defer j.mu.Unlock()
	outs = make([]runner.Outcome, len(j.outs))
	copy(outs, j.outs)
	return j.status, j.reason, j.doneRuns, outs
}

// eventsSince returns the events past seq, plus the channel that will be
// closed on the next append and whether the job is terminal.
func (j *Job) eventsSince(seq int) ([]Event, <-chan struct{}, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var evs []Event
	if seq < len(j.events) {
		evs = append(evs, j.events[seq:]...)
	}
	terminal := j.status == StatusDone || j.status == StatusCanceled
	return evs, j.bump, terminal
}

// resultDoc renders the canonical, byte-stable result document. Only
// valid once the job is done.
func (j *Job) resultDoc() ResultDoc {
	j.mu.Lock()
	defer j.mu.Unlock()
	doc := ResultDoc{ID: j.ID, Spec: j.Spec, Runs: make([]RunResult, len(j.outs))}
	for i, out := range j.outs {
		res := out.Result
		if res.Status == "" {
			res.Status = "ok"
		}
		doc.Runs[i] = RunResult{Key: out.Key, Result: res}
	}
	return doc
}
