// Package service is the simulation-as-a-service layer: a long-running
// HTTP/JSON daemon (cmd/tesimd) that accepts simulation and sweep
// requests, executes them on the resilient runner pool, and persists
// completed runs in a content-addressed result store built on the
// runner's fsynced checkpoint-journal format.
//
// The robustness surface is the point of the package:
//
//   - a bounded admission queue with load shedding: a full queue answers
//     429 with Retry-After instead of queueing unboundedly;
//   - per-request end-to-end deadlines propagated as contexts through
//     runner.Pool.DoContext into core.Run, so a disconnected client or an
//     expired deadline cancels in-flight simulation work;
//   - a crash-safe result store: every completed run is appended and
//     fsynced in the runner journal format, replayed on startup (torn
//     lines tolerated and counted), so a kill -9 loses at most the runs
//     still in flight and repeat queries are O(1) store hits;
//   - graceful drain on SIGTERM/SIGINT: stop admitting, finish or
//     checkpoint in-flight runs, fsync, exit 0 within a drain deadline;
//   - /healthz and /readyz that degrade honestly: readiness goes false
//     while draining or saturated, liveness never blocks on any lock.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/workload"
)

// designPoints maps the named NoC design points of the paper's evaluation
// to their Config builders. The names are the API vocabulary for
// POST /v1/runs; GET /v1/configs lists them.
var designPoints = map[string]func(workload.Profile) core.Config{
	"TB-DOR":      core.Baseline,
	"2x-TB-DOR":   func(p workload.Profile) core.Config { return core.Baseline(p).With2xBW() },
	"TB-DOR-1cyc": func(p workload.Profile) core.Config { return core.Baseline(p).With1CycleRouters() },
	"CP-DOR":      func(p workload.Profile) core.Config { return core.Baseline(p).WithCheckerboardPlacement() },
	"CP-CR":       func(p workload.Profile) core.Config { return core.Baseline(p).WithCheckerboardRouting() },
	"Double-CP-CR": func(p workload.Profile) core.Config {
		return core.Baseline(p).WithCheckerboardRouting().WithDoubleNetwork()
	},
	"Thr.Eff.":       core.ThroughputEffective,
	"Thr.Eff.(1net)": core.ThroughputEffectiveSingle,
	"Perfect":        core.Perfect,
	"Ring":           core.Ring,
	"BaseJump":       core.BaseJump,
}

// topologyNeutral lists the design points that carry no topology decision of
// their own and can therefore be re-targeted by Spec.Topology. The rest bake
// one in: checkerboard routing and the double network are mesh-only, and the
// named Ring/BaseJump points already are their topology.
var topologyNeutral = map[string]bool{
	"TB-DOR":      true,
	"2x-TB-DOR":   true,
	"TB-DOR-1cyc": true,
	"CP-DOR":      true,
	"Perfect":     true,
}

// topologyNeutralNames returns the sorted topology-neutral design points.
func topologyNeutralNames() []string {
	names := make([]string, 0, len(topologyNeutral))
	for n := range topologyNeutral {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DesignPoints returns the accepted configuration names, sorted.
func DesignPoints() []string {
	names := make([]string, 0, len(designPoints))
	for n := range designPoints {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Spec is the canonical form of one submission: the simulation work a job
// performs, stripped of transport options. Its JSON encoding is the
// content the job ID addresses — two requests that normalize to the same
// Spec are the same job, whatever order their lists arrived in.
type Spec struct {
	// Configs are design-point names (see DesignPoints).
	Configs []string `json:"configs"`
	// Benchmarks are Table I abbreviations (AES, MUM, ...).
	Benchmarks []string `json:"benchmarks"`
	// Seed is the traffic seed; 0 normalizes to 1.
	Seed uint64 `json:"seed"`
	// Seeds runs every (config, benchmark) pair once per listed seed —
	// the multi-seed sweep the lane-batched kernel coalesces. Sorted and
	// deduplicated; zero entries are rejected. A single-element list
	// normalizes into Seed and an empty list (and an empty list means
	// [Seed]), so job IDs from before this field existed stay valid.
	Seeds []uint64 `json:"seeds,omitempty"`
	// Scale multiplies the kernel length in (0, 1]; 0 normalizes to 1.
	Scale float64 `json:"scale"`
	// FaultRate enables the network fault injector when positive.
	FaultRate float64 `json:"fault_rate,omitempty"`
	// FaultSeed seeds the injector (only meaningful with FaultRate > 0).
	FaultSeed uint64 `json:"fault_seed,omitempty"`
	// Topology re-targets topology-neutral configs onto another network
	// backend: "ring" or "basejump". Empty and "mesh" both mean the mesh
	// default; "mesh" normalizes to empty so job IDs from before this field
	// existed stay valid.
	Topology string `json:"topology,omitempty"`
}

// Request is the POST /v1/runs body: a Spec plus per-request transport
// options that deliberately do not participate in content addressing.
type Request struct {
	Spec
	// Wait makes the POST synchronous: the response carries the final
	// result, and the job is cancelled if every waiting client
	// disconnects before it finishes.
	Wait bool `json:"wait,omitempty"`
	// DeadlineMS bounds the job end to end in milliseconds; 0 uses the
	// server default. Clamped to the server maximum.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// Canonical normalizes and validates a Spec: lists sorted and
// deduplicated, defaults filled, every name resolvable, and the run count
// bounded by maxRuns so one request cannot occupy the whole daemon.
func (s Spec) Canonical(maxRuns int) (Spec, error) {
	out := s
	out.Configs = sortedUnique(s.Configs)
	out.Benchmarks = sortedUnique(s.Benchmarks)
	if len(out.Configs) == 0 {
		return Spec{}, fmt.Errorf("configs required (one of %v)", DesignPoints())
	}
	if len(out.Benchmarks) == 0 {
		return Spec{}, fmt.Errorf("benchmarks required (Table I abbreviations, e.g. MUM)")
	}
	for _, name := range out.Configs {
		if _, ok := designPoints[name]; !ok {
			return Spec{}, fmt.Errorf("unknown config %q (want one of %v)", name, DesignPoints())
		}
	}
	for _, abbr := range out.Benchmarks {
		if _, err := workload.ByAbbr(abbr); err != nil {
			return Spec{}, err
		}
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	if len(out.Seeds) > 0 {
		for _, s := range out.Seeds {
			if s == 0 {
				return Spec{}, fmt.Errorf("seeds must be nonzero (got %v)", out.Seeds)
			}
		}
		out.Seeds = sortedUniqueUint64(out.Seeds)
		if len(out.Seeds) == 1 {
			// Canonical single-seed form is the scalar field, keeping job
			// IDs identical to pre-Seeds submissions of the same work.
			out.Seed = out.Seeds[0]
			out.Seeds = nil
		}
	}
	if out.Scale == 0 {
		out.Scale = 1
	}
	if out.Scale < 0 || out.Scale > 1 {
		return Spec{}, fmt.Errorf("scale %g out of (0, 1]", out.Scale)
	}
	if out.FaultRate < 0 || out.FaultRate > 1 {
		return Spec{}, fmt.Errorf("fault_rate %g out of [0, 1]", out.FaultRate)
	}
	switch out.Topology {
	case "mesh":
		out.Topology = "" // normalize: mesh is the zero value, so old job IDs still match
	case "", "ring", "basejump":
	default:
		return Spec{}, fmt.Errorf("unknown topology %q (want mesh, ring or basejump)", out.Topology)
	}
	if out.Topology != "" {
		for _, name := range out.Configs {
			if !topologyNeutral[name] {
				return Spec{}, fmt.Errorf("config %q fixes its own topology; topology %q applies only to %v",
					name, out.Topology, topologyNeutralNames())
			}
		}
	}
	if runs := len(out.Configs) * len(out.Benchmarks) * len(out.SeedList()); runs > maxRuns {
		return Spec{}, fmt.Errorf("request is %d runs, server caps jobs at %d", runs, maxRuns)
	}
	return out, nil
}

// SeedList returns the seeds a canonical Spec runs: the explicit Seeds
// sweep, or the scalar Seed alone.
func (s Spec) SeedList() []uint64 {
	if len(s.Seeds) > 0 {
		return s.Seeds
	}
	return []uint64{s.Seed}
}

// ID derives the content address of a canonical Spec: a stable hash of
// its JSON encoding. Identical work always maps to the same job ID, which
// is what lets a restarted daemon recognize a re-submitted sweep.
func (s Spec) ID() string {
	b, err := json.Marshal(s)
	if err != nil { // a Spec of strings and numbers cannot fail to encode
		panic(err)
	}
	sum := sha256.Sum256(b)
	return "r" + hex.EncodeToString(sum[:10])
}

// BuildConfigs expands a canonical Spec into its concrete run
// configurations in deterministic (config, benchmark) order.
func (s Spec) BuildConfigs() ([]core.Config, error) {
	cfgs := make([]core.Config, 0, len(s.Configs)*len(s.Benchmarks))
	for _, name := range s.Configs {
		build := designPoints[name]
		if build == nil {
			return nil, fmt.Errorf("unknown config %q", name)
		}
		for _, abbr := range s.Benchmarks {
			p, err := workload.ByAbbr(abbr)
			if err != nil {
				return nil, err
			}
			cfg := build(p)
			if s.Topology != "" {
				kind, err := noc.ParseBackendKind(s.Topology)
				if err != nil {
					return nil, err
				}
				cfg, err = cfg.WithTopology(kind)
				if err != nil {
					return nil, err
				}
			}
			if s.Scale != 1 {
				cfg = cfg.ScaleWork(s.Scale)
			}
			if s.FaultRate > 0 {
				cfg = cfg.WithFaults(s.FaultRate, s.FaultSeed)
			}
			// Seeds of one (config, benchmark) pair sit adjacent in the
			// expansion, the shape the pool's lane coalescing batches.
			for _, seed := range s.SeedList() {
				c := cfg
				c.Seed = seed
				cfgs = append(cfgs, c)
			}
		}
	}
	return cfgs, nil
}

func sortedUnique(in []string) []string {
	out := append([]string(nil), in...)
	sort.Strings(out)
	w := 0
	for i, v := range out {
		if i == 0 || v != out[i-1] {
			out[w] = v
			w++
		}
	}
	return out[:w]
}

func sortedUniqueUint64(in []uint64) []uint64 {
	out := append([]uint64(nil), in...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 0
	for i, v := range out {
		if i == 0 || v != out[i-1] {
			out[w] = v
			w++
		}
	}
	return out[:w]
}
