package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// FuzzCanonicalSpec pins the content-addressing contract on arbitrary
// request JSON: canonicalization either rejects a spec or produces a
// fixed point — canonicalizing twice changes nothing, the JSON encoding
// is byte-stable, and the derived ID is well-formed. A violation here
// would split one logical job across several store entries (or worse,
// alias two different jobs to one).
func FuzzCanonicalSpec(f *testing.F) {
	f.Add([]byte(`{"configs":["TB-DOR"],"benchmarks":["MUM"]}`))
	f.Add([]byte(`{"configs":["Thr.Eff.","TB-DOR","TB-DOR"],"benchmarks":["WP","BIN"],"seed":7,"scale":0.5}`))
	f.Add([]byte(`{"configs":[],"benchmarks":[]}`))
	f.Add([]byte(`{"configs":["nope"],"benchmarks":["MUM"]}`))
	f.Add([]byte(`{"scale":-1e308,"seed":18446744073709551615}`))
	f.Add([]byte(`{"fault_rate":0.5,"fault_seed":3,"configs":["CP-CR"],"benchmarks":["AES"]}`))
	f.Add([]byte(`{"configs":["TB-DOR"],"benchmarks":["MUM"],"topology":"ring"}`))
	f.Add([]byte(`{"configs":["Ring","BaseJump"],"benchmarks":["BIN"],"topology":"mesh"}`))
	f.Add([]byte(`{"configs":["CP-CR"],"benchmarks":["MUM"],"topology":"basejump"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var spec Spec
		if err := json.Unmarshal(data, &spec); err != nil {
			return
		}
		canon, err := spec.Canonical(DefaultMaxRunsPerJob)
		if err != nil {
			return // rejection is a fine verdict; it just must not panic
		}
		again, err := canon.Canonical(DefaultMaxRunsPerJob)
		if err != nil {
			t.Fatalf("canonical spec rejected by its own validator: %v", err)
		}
		b1, _ := json.Marshal(canon)
		b2, _ := json.Marshal(again)
		if !bytes.Equal(b1, b2) {
			t.Fatalf("Canonical is not idempotent:\n%s\n%s", b1, b2)
		}
		id := canon.ID()
		if id != again.ID() {
			t.Fatal("ID unstable across re-canonicalization")
		}
		if len(id) != 21 || !strings.HasPrefix(id, "r") {
			t.Fatalf("malformed job id %q", id)
		}
		// Every canonical spec must be buildable — admission relies on it.
		if _, err := canon.BuildConfigs(); err != nil {
			t.Fatalf("canonical spec failed to build: %v", err)
		}
	})
}

// FuzzSubmitHandler throws arbitrary bodies at POST /v1/runs on a live
// server (stub simulator, in-memory store). The handler must never panic
// and never answer 5xx: garbage is a 4xx, overload is 429/503, and
// anything accepted resolves through the normal job machinery.
func FuzzSubmitHandler(f *testing.F) {
	f.Add([]byte(`{"configs":["TB-DOR"],"benchmarks":["MUM"],"wait":true}`))
	f.Add([]byte(`{"configs":["CP-CR"],"benchmarks":["BIN"]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"wait":true,"deadline_ms":-5}`))
	f.Add([]byte(`{"configs":["TB-DOR"],"benchmarks":["MUM"],"deadline_ms":99999999999}`))
	f.Add([]byte("\x00\xff not json"))

	srv, err := New(Options{Run: fakeRun, Jobs: 2, Logf: func(string, ...any) {}})
	if err != nil {
		f.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	f.Cleanup(func() { ts.Close(); srv.Close() })

	f.Fuzz(func(t *testing.T, body []byte) {
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("transport error (did the handler crash?): %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode >= 500 && resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("submit answered %d for body %q", resp.StatusCode, body)
		}
	})
}
