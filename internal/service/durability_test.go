package service

import (
	"encoding/json"
	"net/http"
	"path/filepath"
	"syscall"
	"testing"

	"repro/internal/iofault"
	"repro/internal/runner"
)

// submitWait POSTs a wait=true sweep and returns the decoded job doc.
func submitWait(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, b := post(t, url, body)
	var doc map[string]any
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("response %d not JSON: %s", resp.StatusCode, b)
	}
	return resp.StatusCode, doc
}

func runStatuses(t *testing.T, doc map[string]any) []string {
	t.Helper()
	runs, _ := doc["runs"].([]any)
	var out []string
	for _, r := range runs {
		m := r.(map[string]any)
		out = append(out, m["status"].(string))
	}
	return out
}

// TestStoreFaultDegradesAndRecovers is the satellite-3 contract, end to
// end inside one daemon process: a store append failure (ENOSPC, then
// EIO) must resolve the job with a non-cached io_error outcome, degrade
// /readyz while the process keeps serving, and — once the fault clears —
// a re-submission must re-execute and come back durable, with readiness
// restored and the journal healed.
func TestStoreFaultDegradesAndRecovers(t *testing.T) {
	ff := iofault.NewFaultFS(iofault.OS)
	storePath := filepath.Join(t.TempDir(), "store.jsonl")
	srv, ts := newTestServer(t, Options{StorePath: storePath, FS: ff, Jobs: 2})

	// Healthy baseline: one sweep acked and durable.
	code, doc := submitWait(t, ts.URL, `{"configs":["TB-DOR"],"benchmarks":["MUM"],"wait":true}`)
	if code != http.StatusOK || doc["status"] != "done" {
		t.Fatalf("baseline submit: %d %v", code, doc)
	}
	baseID := doc["id"].(string)
	if got := runStatuses(t, doc); len(got) != 1 || got[0] != "ok" {
		t.Fatalf("baseline run statuses = %v", got)
	}

	// The disk goes bad: every write and sync fails until cleared.
	ff.Inject(iofault.Fault{Op: "write", Err: syscall.ENOSPC, Count: -1})
	ff.Inject(iofault.Fault{Op: "sync", Err: syscall.EIO, Count: -1})

	code, doc = submitWait(t, ts.URL, `{"configs":["CP-CR"],"benchmarks":["MUM"],"wait":true}`)
	if code != http.StatusOK || doc["status"] != "done" {
		t.Fatalf("submit under fault: %d %v (the job must still resolve)", code, doc)
	}
	if got := runStatuses(t, doc); len(got) != 1 || got[0] != "io_error" {
		t.Fatalf("run statuses under fault = %v, want [io_error]", got)
	}
	faultID := doc["id"].(string)

	// Readiness degrades honestly; liveness and existing results survive.
	if r, b := get(t, ts.URL+"/readyz"); r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz under store fault = %d (%s), want 503", r.StatusCode, b)
	}
	if r, _ := get(t, ts.URL+"/healthz"); r.StatusCode != http.StatusOK {
		t.Errorf("healthz under store fault = %d, want 200 (process alive)", r.StatusCode)
	}
	if r, _ := get(t, ts.URL+"/v1/runs/"+baseID+"/result"); r.StatusCode != http.StatusOK {
		t.Errorf("durable result unreachable under store fault: %d", r.StatusCode)
	}
	if r, b := get(t, ts.URL+"/statusz"); r.StatusCode == http.StatusOK {
		var st map[string]any
		json.Unmarshal(b, &st)
		if w := st["store"].(map[string]any)["wounded"]; w != true {
			t.Errorf("statusz store.wounded = %v, want true", w)
		}
	}

	// The io_error outcome was never cached or journaled: the terminal
	// job pins the id, so replace it by re-submitting after the fault
	// clears — the run must re-execute and persist this time.
	ff.Clear()
	code, doc = submitWait(t, ts.URL, `{"configs":["CP-CR"],"benchmarks":["MUM"],"wait":true}`)
	if code != http.StatusOK {
		t.Fatalf("re-submit after fault cleared: %d %v", code, doc)
	}
	if doc["id"].(string) != faultID {
		t.Fatalf("content address changed: %v vs %v", doc["id"], faultID)
	}
	if got := runStatuses(t, doc); len(got) != 1 || got[0] != "ok" {
		t.Fatalf("run statuses after heal = %v, want [ok]", got)
	}
	if r, _ := get(t, ts.URL+"/readyz"); r.StatusCode != http.StatusOK {
		t.Errorf("readyz after heal = %d, want 200", r.StatusCode)
	}
	if srv.store.Wounded() != nil {
		t.Errorf("store still wounded after heal: %v", srv.store.Wounded())
	}

	// The journal on disk holds exactly the two durable runs, cleanly.
	recs, stats, err := runner.LoadJournal(storePath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || stats.Skipped != 0 || stats.Quarantined != 0 {
		t.Fatalf("journal after heal: %d records, stats %+v; want 2 clean records", len(recs), stats)
	}
}

// TestFaultedJobNotServedFromCache pins the "never cache what you could
// not persist" rule at the HTTP layer: while the store is wounded, repeat
// submissions of the same failing spec re-execute every time (no cache
// hit, no store hit), because acknowledging a cached copy of an
// unpersisted result would lie about durability.
func TestFaultedJobNotServedFromCache(t *testing.T) {
	ff := iofault.NewFaultFS(iofault.OS)
	storePath := filepath.Join(t.TempDir(), "store.jsonl")
	srv, ts := newTestServer(t, Options{StorePath: storePath, FS: ff, Jobs: 2})

	ff.Inject(iofault.Fault{Op: "write", Err: syscall.ENOSPC, Count: -1})
	for i := 0; i < 2; i++ {
		code, doc := submitWait(t, ts.URL, `{"configs":["TB-DOR"],"benchmarks":["BIN"],"wait":true}`)
		if code != http.StatusOK {
			t.Fatalf("submit %d: %d %v", i, code, doc)
		}
		runs := doc["runs"].([]any)
		m := runs[0].(map[string]any)
		if m["status"] != "io_error" {
			t.Fatalf("submit %d status = %v, want io_error", i, m["status"])
		}
		if m["cached"] == true {
			t.Fatalf("submit %d served an unpersisted result from cache", i)
		}
	}
	if n := srv.pool.Executed(); n != 2 {
		t.Errorf("pool executed %d runs, want 2 (one per submission, no caching)", n)
	}
	if srv.store.Len() != 0 {
		t.Errorf("store holds %d results under a dead disk, want 0", srv.store.Len())
	}
}
