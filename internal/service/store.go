package service

import (
	"sync"

	"repro/internal/iofault"
	"repro/internal/runner"
)

// Store is the daemon's content-addressed result store: a map from
// runner.Key run identity to the completed record, persisted in the
// runner's CRC-framed checkpoint-journal format. Every Put is appended
// and fsynced before it is acknowledged, so a kill -9 loses at most the
// runs still in flight; OpenStore replays the journal (torn final lines
// sealed and counted, corrupt records quarantined to the .corrupt
// sidecar) so a restarted daemon serves completed runs in O(1) without
// re-executing them. A Put that cannot be made durable fails loudly and
// leaves the journal wounded — read traffic keeps working, but nothing is
// acknowledged that would not survive a restart.
type Store struct {
	mu      sync.RWMutex
	results map[string]runner.Record
	journal *runner.Journal
	replay  runner.ReplayStats
	path    string
}

// OpenStore replays and opens the journal at path on the real filesystem;
// see OpenStoreFS.
func OpenStore(path string) (*Store, error) {
	return OpenStoreFS(nil, path)
}

// OpenStoreFS replays and opens the journal at path through fs (nil means
// the real filesystem). An empty path yields a purely in-memory store
// (tests, ephemeral daemons); a missing file is a fresh store, not an
// error.
func OpenStoreFS(fs iofault.FS, path string) (*Store, error) {
	s := &Store{results: make(map[string]runner.Record), path: path}
	if path == "" {
		return s, nil
	}
	recs, stats, err := runner.LoadJournalFS(fs, path)
	if err != nil {
		return nil, err
	}
	s.replay = stats
	for _, rec := range recs {
		s.results[rec.Key] = rec
	}
	j, err := runner.OpenJournalFS(fs, path)
	if err != nil {
		return nil, err
	}
	s.journal = j
	return s, nil
}

// Get returns the stored record for a run key.
func (s *Store) Get(key string) (runner.Record, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec, ok := s.results[key]
	return rec, ok
}

// Put persists one completed run: appended and fsynced before the map is
// updated or the call returns, so an acknowledged Put is durable by
// definition. A record identical to the stored one is a no-op, so
// re-executions of deterministic runs never grow the journal. A journal
// failure is returned loudly and the record is NOT served from memory —
// a result the daemon could not persist must not be acknowledged.
func (s *Store) Put(rec runner.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.results[rec.Key]; ok && old == rec {
		return nil
	}
	if s.journal != nil {
		iofault.Crashpoint(iofault.CPStorePutBeforeAppend)
		if err := s.journal.Append(rec); err != nil {
			return err
		}
		iofault.Crashpoint(iofault.CPStorePutAfterAppend)
	}
	s.results[rec.Key] = rec
	return nil
}

// Len returns how many completed runs the store holds.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.results)
}

// Skipped returns how many torn journal lines startup replay sealed over.
func (s *Store) Skipped() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.replay.Skipped
}

// Quarantined returns how many corrupt journal records startup replay
// moved to the .corrupt sidecar.
func (s *Store) Quarantined() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.replay.Quarantined
}

// Replay returns the full startup replay statistics.
func (s *Store) Replay() runner.ReplayStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.replay
}

// Wounded returns the journal's first durable-write failure, or nil.
// Note: this takes the store lock; the HTTP readiness path must use the
// server's atomic mirror instead.
func (s *Store) Wounded() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.journal == nil {
		return nil
	}
	return s.journal.Wounded()
}

// Path returns the journal path ("" for an in-memory store).
func (s *Store) Path() string { return s.path }

// Close closes the journal file; records already acknowledged are
// durable, and a close-time fsync failure is propagated.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return nil
	}
	err := s.journal.Close()
	s.journal = nil
	return err
}
