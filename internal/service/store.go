package service

import (
	"sync"

	"repro/internal/runner"
)

// Store is the daemon's content-addressed result store: a map from
// runner.Key run identity to the completed record, persisted in the
// runner's JSONL checkpoint-journal format. Every Put is appended and
// fsynced before it is acknowledged, so a kill -9 loses at most the runs
// still in flight; OpenStore replays the journal (torn lines tolerated
// and counted) so a restarted daemon serves completed runs in O(1)
// without re-executing them.
type Store struct {
	mu      sync.RWMutex
	results map[string]runner.Record
	journal *runner.Journal
	skipped int
	path    string
}

// OpenStore replays and opens the journal at path. An empty path yields a
// purely in-memory store (tests, ephemeral daemons); a missing file is a
// fresh store, not an error.
func OpenStore(path string) (*Store, error) {
	s := &Store{results: make(map[string]runner.Record), path: path}
	if path == "" {
		return s, nil
	}
	recs, skipped, err := runner.LoadJournal(path)
	if err != nil {
		return nil, err
	}
	s.skipped = skipped
	for _, rec := range recs {
		s.results[rec.Key] = rec
	}
	j, err := runner.OpenJournal(path)
	if err != nil {
		return nil, err
	}
	s.journal = j
	return s, nil
}

// Get returns the stored record for a run key.
func (s *Store) Get(key string) (runner.Record, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec, ok := s.results[key]
	return rec, ok
}

// Put persists one completed run. A record identical to the stored one is
// a no-op, so re-executions of deterministic runs never grow the journal.
// The journal write is fsynced before Put returns.
func (s *Store) Put(rec runner.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.results[rec.Key]; ok && old == rec {
		return nil
	}
	if s.journal != nil {
		if err := s.journal.Append(rec); err != nil {
			return err
		}
	}
	s.results[rec.Key] = rec
	return nil
}

// Len returns how many completed runs the store holds.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.results)
}

// Skipped returns how many torn journal lines startup replay ignored.
func (s *Store) Skipped() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.skipped
}

// Path returns the journal path ("" for an in-memory store).
func (s *Store) Path() string { return s.path }

// Close closes the journal file; records already appended are durable.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return nil
	}
	err := s.journal.Close()
	s.journal = nil
	return err
}
