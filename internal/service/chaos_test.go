package service

// Deterministic crash chaos: re-exec the test binary as a real daemon
// child with one crashpoint armed, SIGKILL it mid-write at that exact
// boundary, restart, and assert the durability contract:
//
//   - every acknowledged result survives restart byte-identical and is
//     never re-executed;
//   - every unacknowledged result either re-executes or was already
//     durable (the fsync had completed when the plug was pulled);
//   - replay never quarantines a record that was written correctly.
//
// scripts/chaos.sh runs the same sweep against the real tesimd binary.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/iofault"
)

const (
	chaosChildEnv  = "TESIM_CHAOS_CHILD"
	chaosStoreEnv  = "TESIM_CHAOS_STORE"
	chaosSpecA     = `{"configs":["TB-DOR"],"benchmarks":["MUM"],"wait":true}`
	chaosSpecB     = `{"configs":["CP-CR"],"benchmarks":["MUM"],"wait":true}`
	chaosHTTPLimit = 15 * time.Second
)

func TestMain(m *testing.M) {
	if os.Getenv(chaosChildEnv) == "1" {
		chaosChildMain()
		return
	}
	os.Exit(m.Run())
}

// chaosChildMain is the re-exec'd daemon: a real Server over the real
// store journal, with whatever crashpoint the parent armed via env. It
// prints its address on stdout and serves until killed.
func chaosChildMain() {
	logger := log.New(os.Stderr, "chaos-child: ", 0)
	srv, err := New(Options{
		StorePath: os.Getenv(chaosStoreEnv),
		Run:       fakeRun,
		Jobs:      2,
		Logf:      logger.Printf,
	})
	if err != nil {
		logger.Printf("startup: %v", err)
		os.Exit(3)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		logger.Printf("listen: %v", err)
		os.Exit(3)
	}
	if cp := iofault.Armed(); cp != "" {
		logger.Printf("armed crashpoint %q", cp)
	}
	fmt.Printf("CHAOS_ADDR=%s\n", ln.Addr())
	if err := http.Serve(ln, srv.Handler()); err != nil {
		logger.Printf("serve: %v", err)
		os.Exit(3)
	}
}

type chaosChild struct {
	cmd    *exec.Cmd
	addr   string
	stderr *bytes.Buffer
}

// startChild re-execs the test binary as a chaos daemon child. point ""
// runs it unarmed. When the armed point fires during startup the child
// dies before printing an address; callers that expect that pass
// wantAddr=false.
func startChild(t *testing.T, store, point string, hits int, wantAddr bool) *chaosChild {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		chaosChildEnv+"=1",
		chaosStoreEnv+"="+store,
		iofault.EnvCrashpoint+"="+point,
		iofault.EnvCrashpointHits+"="+strconv.Itoa(hits),
	)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	c := &chaosChild{cmd: cmd, stderr: &stderr}
	t.Cleanup(func() { c.cmd.Process.Kill(); c.cmd.Wait() })

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "CHAOS_ADDR="); ok {
				addrCh <- a
				break
			}
		}
		close(addrCh)
	}()
	select {
	case a, ok := <-addrCh:
		if !ok && wantAddr {
			cmd.Wait()
			t.Fatalf("child died before serving:\n%s", stderr.String())
		}
		c.addr = a
	case <-time.After(30 * time.Second):
		t.Fatalf("child did not report an address:\n%s", stderr.String())
	}
	return c
}

// waitKilled blocks until the child exits and asserts it died by SIGKILL
// (the crashpoint fired) rather than any orderly path.
func (c *chaosChild) waitKilled(t *testing.T) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- c.cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("child outlived its crashpoint:\n%s", c.stderr.String())
	}
	ws := c.cmd.ProcessState
	if ws.ExitCode() != -1 && ws.ExitCode() != 137 {
		t.Fatalf("child exited %d, want SIGKILL:\n%s", ws.ExitCode(), c.stderr.String())
	}
}

func (c *chaosChild) kill() { c.cmd.Process.Kill(); c.cmd.Wait() }

var chaosClient = &http.Client{Timeout: chaosHTTPLimit}

// chaosPost submits a sweep, tolerating transport failure (the child is
// allowed — expected, even — to die mid-request).
func chaosPost(addr, body string) (int, []byte, error) {
	resp, err := chaosClient.Post("http://"+addr+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b, nil
}

func chaosGet(t *testing.T, addr, path string) (int, []byte) {
	t.Helper()
	resp, err := chaosClient.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

// chaosSubmitOK submits and requires a completed all-ok (or resumed) job,
// returning the job id.
func chaosSubmitOK(t *testing.T, addr, body string) string {
	t.Helper()
	code, b, err := chaosPost(addr, body)
	if err != nil || code != http.StatusOK {
		t.Fatalf("submit: code %d err %v body %s", code, err, b)
	}
	var doc struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("submit response: %v (%s)", err, b)
	}
	if doc.Status != "done" {
		t.Fatalf("job %s status %q, want done (%s)", doc.ID, doc.Status, b)
	}
	return doc.ID
}

type chaosStatus struct {
	PoolExecuted int `json:"pool_executed"`
	Store        struct {
		Results     int  `json:"results"`
		Skipped     int  `json:"skipped"`
		Quarantined int  `json:"quarantined"`
		Wounded     bool `json:"wounded"`
	} `json:"store"`
}

func chaosStatusz(t *testing.T, addr string) chaosStatus {
	t.Helper()
	code, b := chaosGet(t, addr, "/statusz")
	if code != http.StatusOK {
		t.Fatalf("statusz: %d %s", code, b)
	}
	var st chaosStatus
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestChaosAppendCrashpoints sweeps every append-path crashpoint: the
// child daemon acks request A (hit 1), then SIGKILLs itself at the armed
// boundary during request B's append (hit 2).
func TestChaosAppendCrashpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep re-execs child daemons")
	}
	// Whether request B's record is durable when the plug is pulled is a
	// property of the boundary: before the write(2) nothing exists; after
	// the write returns, the bytes are in the file (a process kill, unlike
	// a power cut, does not empty the page cache), so replay resumes it.
	durableAfterKill := map[string]bool{
		iofault.CPAppendBeforeWrite:    false,
		iofault.CPAppendAfterWrite:     true,
		iofault.CPAppendAfterSync:      true,
		iofault.CPStorePutBeforeAppend: false,
		iofault.CPStorePutAfterAppend:  true,
	}
	for point, durable := range durableAfterKill {
		t.Run(point, func(t *testing.T) {
			store := filepath.Join(t.TempDir(), "store.jsonl")

			child := startChild(t, store, point, 2, true)
			idA := chaosSubmitOK(t, child.addr, chaosSpecA)
			code, resultA := chaosGet(t, child.addr, "/v1/runs/"+idA+"/result")
			if code != http.StatusOK {
				t.Fatalf("result A: %d", code)
			}
			// Request B crashes the daemon mid-append; any response —
			// including none — is legitimate, the restart is the oracle.
			chaosPost(child.addr, chaosSpecB)
			child.waitKilled(t)

			child = startChild(t, store, "", 0, true)
			defer child.kill()

			// Acked A survives byte-identical and is never re-executed.
			idA2 := chaosSubmitOK(t, child.addr, chaosSpecA)
			if idA2 != idA {
				t.Fatalf("content address drifted: %s vs %s", idA2, idA)
			}
			code, resultA2 := chaosGet(t, child.addr, "/v1/runs/"+idA+"/result")
			if code != http.StatusOK || !bytes.Equal(resultA, resultA2) {
				t.Fatalf("acked result changed across crash:\npre:  %s\npost: %s", resultA, resultA2)
			}
			if st := chaosStatusz(t, child.addr); st.PoolExecuted != 0 {
				t.Fatalf("acked run re-executed %d time(s) after restart", st.PoolExecuted)
			}

			// Unacked B re-executes unless its fsync (or at least its
			// write) had landed — then replay resumes it instead.
			chaosSubmitOK(t, child.addr, chaosSpecB)
			st := chaosStatusz(t, child.addr)
			wantExec := 1
			if durable {
				wantExec = 0
			}
			if st.PoolExecuted != wantExec {
				t.Errorf("unacked run executed %d time(s) after restart, want %d", st.PoolExecuted, wantExec)
			}
			// Zero corrupt-record false positives: the crash must not have
			// manufactured torn or quarantined lines at these boundaries.
			if st.Store.Skipped != 0 || st.Store.Quarantined != 0 {
				t.Errorf("replay skipped=%d quarantined=%d after clean-boundary crash, want 0/0",
					st.Store.Skipped, st.Store.Quarantined)
			}
			if st.Store.Wounded {
				t.Error("store wounded after restart")
			}
		})
	}
}

// TestChaosSealCrashpoints crashes the daemon while it is sealing a torn
// journal tail during startup, then proves the next start still recovers
// every durable record.
func TestChaosSealCrashpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep re-execs child daemons")
	}
	for _, point := range []string{iofault.CPSealBeforeSync, iofault.CPSealAfterSync} {
		t.Run(point, func(t *testing.T) {
			store := filepath.Join(t.TempDir(), "store.jsonl")

			// Build a store holding one acked record, then tear its tail
			// the way a mid-write power cut would.
			child := startChild(t, store, "", 0, true)
			idA := chaosSubmitOK(t, child.addr, chaosSpecA)
			child.kill()
			f, err := os.OpenFile(store, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteString(`*deadbeef 48 {"half-written`); err != nil {
				t.Fatal(err)
			}
			f.Close()

			// Startup seals the torn line and dies at the armed boundary.
			child = startChild(t, store, point, 1, false)
			child.waitKilled(t)

			// Next start must come up clean with the durable record intact;
			// the sealed wreckage becomes one quarantined line, never more.
			child = startChild(t, store, "", 0, true)
			defer child.kill()
			if got := chaosSubmitOK(t, child.addr, chaosSpecA); got != idA {
				t.Fatalf("content address drifted: %s vs %s", got, idA)
			}
			st := chaosStatusz(t, child.addr)
			if st.PoolExecuted != 0 {
				t.Errorf("durable run re-executed %d time(s) after seal crash", st.PoolExecuted)
			}
			if wreck := st.Store.Skipped + st.Store.Quarantined; wreck != 1 {
				t.Errorf("skipped=%d quarantined=%d, want exactly the one torn tail",
					st.Store.Skipped, st.Store.Quarantined)
			}
		})
	}
}

// TestChaosQuarantineCrashpoint crashes the daemon while it is copying a
// corrupt record to the .corrupt sidecar, then proves recovery: the next
// start quarantines it again and every valid record survives.
func TestChaosQuarantineCrashpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep re-execs child daemons")
	}
	store := filepath.Join(t.TempDir(), "store.jsonl")

	child := startChild(t, store, "", 0, true)
	idA := chaosSubmitOK(t, child.addr, chaosSpecA)
	child.kill()
	f, err := os.OpenFile(store, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A complete line whose CRC cannot match: quarantined, not torn.
	if _, err := f.WriteString("*00000000 9 {\"bad\":1}\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	child = startChild(t, store, iofault.CPQuarantineBeforeWrite, 1, false)
	child.waitKilled(t)

	child = startChild(t, store, "", 0, true)
	defer child.kill()
	if got := chaosSubmitOK(t, child.addr, chaosSpecA); got != idA {
		t.Fatalf("content address drifted: %s vs %s", got, idA)
	}
	st := chaosStatusz(t, child.addr)
	if st.PoolExecuted != 0 {
		t.Errorf("valid run re-executed %d time(s) after quarantine crash", st.PoolExecuted)
	}
	if st.Store.Quarantined != 1 || st.Store.Skipped != 0 {
		t.Errorf("skipped=%d quarantined=%d, want 0/1", st.Store.Skipped, st.Store.Quarantined)
	}
	if _, err := os.Stat(store + ".corrupt"); err != nil {
		t.Errorf("quarantine sidecar missing: %v", err)
	}
}
