// Package addr maps global memory addresses onto the memory system:
// which memory-controller (MC) node owns an address, and which DRAM bank,
// row and column it lands in inside that controller.
//
// Following the paper (§II), addresses are low-order interleaved among MCs
// every 256 bytes to reduce hot-spots.
package addr

import "fmt"

// Address is a global byte address in the accelerator's memory space.
type Address uint64

// Mapper decodes addresses. The zero value is not usable; use NewMapper.
type Mapper struct {
	numMCs          int
	interleaveBytes uint64
	lineBytes       uint64
	banksPerMC      uint64
	rowBytes        uint64
}

// Config parameterizes a Mapper. Zero fields take the paper defaults.
type Config struct {
	NumMCs          int    // memory controller count (default 8)
	InterleaveBytes uint64 // MC interleave granularity (default 256)
	LineBytes       uint64 // cache line size (default 64)
	BanksPerMC      uint64 // DRAM banks per controller (default 8)
	RowBytes        uint64 // DRAM row (page) size per bank (default 2048)
}

// Default paper parameters.
const (
	DefaultNumMCs          = 8
	DefaultInterleaveBytes = 256
	DefaultLineBytes       = 64
	DefaultBanksPerMC      = 8
	DefaultRowBytes        = 2048
)

func (c Config) withDefaults() Config {
	if c.NumMCs == 0 {
		c.NumMCs = DefaultNumMCs
	}
	if c.InterleaveBytes == 0 {
		c.InterleaveBytes = DefaultInterleaveBytes
	}
	if c.LineBytes == 0 {
		c.LineBytes = DefaultLineBytes
	}
	if c.BanksPerMC == 0 {
		c.BanksPerMC = DefaultBanksPerMC
	}
	if c.RowBytes == 0 {
		c.RowBytes = DefaultRowBytes
	}
	return c
}

// NewMapper validates cfg and returns a Mapper.
func NewMapper(cfg Config) (*Mapper, error) {
	cfg = cfg.withDefaults()
	if cfg.NumMCs <= 0 {
		return nil, fmt.Errorf("addr: NumMCs must be positive, got %d", cfg.NumMCs)
	}
	for name, v := range map[string]uint64{
		"InterleaveBytes": cfg.InterleaveBytes,
		"LineBytes":       cfg.LineBytes,
		"BanksPerMC":      cfg.BanksPerMC,
		"RowBytes":        cfg.RowBytes,
	} {
		if v == 0 || v&(v-1) != 0 {
			return nil, fmt.Errorf("addr: %s must be a power of two, got %d", name, v)
		}
	}
	if cfg.LineBytes > cfg.InterleaveBytes {
		return nil, fmt.Errorf("addr: LineBytes (%d) must not exceed InterleaveBytes (%d)",
			cfg.LineBytes, cfg.InterleaveBytes)
	}
	return &Mapper{
		numMCs:          cfg.NumMCs,
		interleaveBytes: cfg.InterleaveBytes,
		lineBytes:       cfg.LineBytes,
		banksPerMC:      cfg.BanksPerMC,
		rowBytes:        cfg.RowBytes,
	}, nil
}

// MustNewMapper is NewMapper but panics on error.
func MustNewMapper(cfg Config) *Mapper {
	m, err := NewMapper(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// NumMCs returns the number of memory controllers.
func (m *Mapper) NumMCs() int { return m.numMCs }

// LineBytes returns the cache-line size.
func (m *Mapper) LineBytes() uint64 { return m.lineBytes }

// MC returns the index of the memory controller owning a.
func (m *Mapper) MC(a Address) int {
	return int((uint64(a) / m.interleaveBytes) % uint64(m.numMCs))
}

// LineAddr returns a truncated to its cache-line base.
func (m *Mapper) LineAddr(a Address) Address {
	return a &^ Address(m.lineBytes-1)
}

// Local collapses the MC interleave bits out of a so that each controller
// sees a dense local address space (consecutive 256 B chunks at one MC are
// 256*NumMCs apart globally but adjacent locally).
func (m *Mapper) Local(a Address) uint64 {
	g := uint64(a)
	chunk := g / m.interleaveBytes / uint64(m.numMCs)
	return chunk*m.interleaveBytes + g%m.interleaveBytes
}

// BankRow is a decoded DRAM coordinate within one memory controller.
type BankRow struct {
	Bank uint64
	Row  uint64
	Col  uint64
}

// Decode maps a onto its DRAM bank, row and column within its controller.
// Rows are interleaved across banks so sequential local traffic spreads over
// banks at row granularity (the common GDDR mapping).
func (m *Mapper) Decode(a Address) BankRow {
	local := m.Local(a)
	return BankRow{
		Bank: (local / m.rowBytes) % m.banksPerMC,
		Row:  local / (m.rowBytes * m.banksPerMC),
		Col:  local % m.rowBytes,
	}
}
