package addr

import (
	"testing"
	"testing/quick"
)

func defaultMapper(t *testing.T) *Mapper {
	t.Helper()
	m, err := NewMapper(Config{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDefaults(t *testing.T) {
	m := defaultMapper(t)
	if m.NumMCs() != 8 || m.LineBytes() != 64 {
		t.Errorf("defaults: NumMCs=%d LineBytes=%d", m.NumMCs(), m.LineBytes())
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{NumMCs: -1},
		{InterleaveBytes: 3},
		{LineBytes: 48},
		{BanksPerMC: 6},
		{RowBytes: 1000},
		{LineBytes: 512, InterleaveBytes: 256},
	}
	for i, cfg := range bad {
		if _, err := NewMapper(cfg); err == nil {
			t.Errorf("config %d (%+v): want error", i, cfg)
		}
	}
}

func TestMCInterleave(t *testing.T) {
	m := defaultMapper(t)
	// Consecutive 256-byte chunks rotate through the 8 MCs.
	for chunk := 0; chunk < 32; chunk++ {
		a := Address(chunk * 256)
		if got, want := m.MC(a), chunk%8; got != want {
			t.Errorf("MC(%#x) = %d, want %d", a, got, want)
		}
		// All addresses within a chunk map to the same MC.
		if m.MC(a) != m.MC(a+255) {
			t.Errorf("chunk %d split across MCs", chunk)
		}
	}
}

func TestLineAddr(t *testing.T) {
	m := defaultMapper(t)
	if got := m.LineAddr(0x12345); got != 0x12340 {
		t.Errorf("LineAddr(0x12345) = %#x, want 0x12340", got)
	}
	if got := m.LineAddr(0x40); got != 0x40 {
		t.Errorf("LineAddr(0x40) = %#x, want 0x40", got)
	}
}

func TestLocalDense(t *testing.T) {
	m := defaultMapper(t)
	// For a fixed MC, the k-th 256B chunk owned by that MC must have local
	// address k*256 — i.e. the local space is dense.
	mc := 3
	for k := uint64(0); k < 100; k++ {
		global := Address((k*8 + uint64(mc)) * 256)
		if m.MC(global) != mc {
			t.Fatalf("setup: MC(%#x)=%d, want %d", global, m.MC(global), mc)
		}
		if got, want := m.Local(global), k*256; got != want {
			t.Errorf("Local(%#x) = %d, want %d", global, got, want)
		}
	}
}

func TestLocalPreservesOffset(t *testing.T) {
	m := defaultMapper(t)
	f := func(a uint64) bool {
		a &= (1 << 40) - 1
		return m.Local(Address(a))%256 == a%256
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeGeometry(t *testing.T) {
	m := defaultMapper(t)
	f := func(raw uint64) bool {
		a := Address(raw & ((1 << 40) - 1))
		br := m.Decode(a)
		return br.Bank < 8 && br.Col < 2048
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeRowInterleavedAcrossBanks(t *testing.T) {
	m := defaultMapper(t)
	// Walking local addresses in row-size steps should change bank each step.
	// Local stride of rowBytes = global stride of rowBytes*numMCs restricted
	// to one MC's chunks; easier: construct addresses owned by MC 0.
	prev := m.Decode(mcLocalToGlobal(0, 0))
	for k := uint64(1); k < 8; k++ {
		cur := m.Decode(mcLocalToGlobal(0, k*2048))
		if cur.Bank == prev.Bank {
			t.Errorf("step %d: bank did not change (%d)", k, cur.Bank)
		}
		prev = cur
	}
}

func TestDecodeSameRowSameBankWithinRow(t *testing.T) {
	m := defaultMapper(t)
	base := mcLocalToGlobal(2, 5*2048)
	first := m.Decode(base)
	// Offsets within the same 256-byte chunk stay in the same row/bank.
	for off := Address(0); off < 256; off += 64 {
		got := m.Decode(base + off)
		if got.Bank != first.Bank || got.Row != first.Row {
			t.Errorf("offset %d: decode %+v, want bank/row of %+v", off, got, first)
		}
	}
}

// mcLocalToGlobal builds a global address owned by the given MC whose local
// address equals local (valid when local is 256-byte aligned).
func mcLocalToGlobal(mc int, local uint64) Address {
	chunk := local / 256
	return Address((chunk*8+uint64(mc))*256 + local%256)
}

func TestMCLocalRoundTrip(t *testing.T) {
	m := defaultMapper(t)
	f := func(mcRaw uint8, chunk uint32) bool {
		mc := int(mcRaw % 8)
		local := uint64(chunk) * 256
		g := mcLocalToGlobal(mc, local)
		return m.MC(g) == mc && m.Local(g) == local
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
