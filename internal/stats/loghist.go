package stats

import "math"

// LogHistogram is a fixed-bucket logarithmic histogram for streaming
// tail-latency quantiles (p50/p99/p999). Buckets grow geometrically —
// bucketsPerDecade buckets per factor of ten — so a single small array
// covers microseconds to hours with bounded *relative* error: a quantile
// estimate is always within one bucket ratio of the exact sorted-sample
// quantile. Observing is O(1) with no allocation, which is what the
// service daemon needs on its request path; the linear-bucket Histogram
// above keeps absolute-error semantics for packet-latency distributions.
//
// The zero value is not usable; construct with NewLogHistogram. Methods
// are not synchronized — wrap with a mutex for concurrent writers.
type LogHistogram struct {
	min      float64 // lower bound of bucket 1; bucket 0 holds (-inf, min]
	logMin   float64
	logRatio float64 // ln of the per-bucket growth ratio
	counts   []uint64
	n        uint64
	sum      float64
	minSeen  float64
	maxSeen  float64
}

// NewLogHistogram builds a histogram spanning [min, max] with
// bucketsPerDecade geometric buckets per factor of ten. Samples below min
// clamp into the first bucket and samples above max into the last, so the
// span should generously cover the plausible range (the daemon uses 1µs to
// 1h for request latencies in seconds). Panics on a non-positive min,
// max <= min, or a non-positive bucket density, mirroring NewHistogram.
func NewLogHistogram(min, max float64, bucketsPerDecade int) *LogHistogram {
	if min <= 0 || max <= min || bucketsPerDecade <= 0 {
		panic("stats: log histogram needs 0 < min < max and positive buckets per decade")
	}
	ratio := math.Pow(10, 1/float64(bucketsPerDecade))
	logRatio := math.Log(ratio)
	n := 2 + int(math.Ceil(math.Log(max/min)/logRatio))
	return &LogHistogram{
		min:      min,
		logMin:   math.Log(min),
		logRatio: logRatio,
		counts:   make([]uint64, n),
	}
}

// bucket maps a sample to its bucket index, clamping at both ends.
func (h *LogHistogram) bucket(v float64) int {
	if v <= h.min {
		return 0
	}
	i := 1 + int((math.Log(v)-h.logMin)/h.logRatio)
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	return i
}

// Observe records one sample.
func (h *LogHistogram) Observe(v float64) {
	if h.n == 0 || v < h.minSeen {
		h.minSeen = v
	}
	if v > h.maxSeen {
		h.maxSeen = v
	}
	h.n++
	h.sum += v
	h.counts[h.bucket(v)]++
}

// N returns the number of samples.
func (h *LogHistogram) N() uint64 { return h.n }

// Sum returns the running total.
func (h *LogHistogram) Sum() float64 { return h.sum }

// Mean returns the sample mean (0 when empty).
func (h *LogHistogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Max returns the largest sample seen (exact, not bucketed).
func (h *LogHistogram) Max() float64 { return h.maxSeen }

// Quantile returns the p-quantile (p in [0,1]) as the geometric midpoint
// of the bucket holding the rank-⌈p·n⌉ sample, clamped to the exact
// [min, max] observed so degenerate cases (one sample, saturated clamp
// buckets) stay honest. Relative error is bounded by the bucket ratio,
// 10^(1/bucketsPerDecade). Returns 0 when empty.
func (h *LogHistogram) Quantile(p float64) float64 {
	if h.n == 0 {
		return 0
	}
	target := uint64(math.Ceil(p * float64(h.n)))
	if target == 0 {
		target = 1
	}
	if target > h.n {
		target = h.n
	}
	var cum uint64
	idx := len(h.counts) - 1
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			idx = i
			break
		}
	}
	var est float64
	if idx == 0 {
		est = h.min
	} else {
		// Geometric midpoint of [min·r^(idx-1), min·r^idx).
		est = math.Exp(h.logMin + (float64(idx)-0.5)*h.logRatio)
	}
	if est < h.minSeen {
		est = h.minSeen
	}
	if est > h.maxSeen {
		est = h.maxSeen
	}
	return est
}

// Merge folds o's samples into h. Both histograms must share a shape
// (same min and bucket density); panics otherwise, mirroring the
// constructor's contract.
func (h *LogHistogram) Merge(o *LogHistogram) {
	if o == nil {
		return
	}
	if h.min != o.min || h.logRatio != o.logRatio || len(h.counts) != len(o.counts) {
		panic("stats: merging log histograms with different shapes")
	}
	if o.n == 0 {
		return
	}
	if h.n == 0 || o.minSeen < h.minSeen {
		h.minSeen = o.minSeen
	}
	if o.maxSeen > h.maxSeen {
		h.maxSeen = o.maxSeen
	}
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.n += o.n
	h.sum += o.sum
}
