// Package stats provides the small statistics toolkit used across the
// simulator: accumulators for means (arithmetic and harmonic — the paper
// reports harmonic-mean speedups), rate trackers, and histograms for
// latency distributions.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean accumulates values for an arithmetic mean.
type Mean struct {
	sum float64
	n   int
}

// Add records one value.
func (m *Mean) Add(v float64) { m.sum += v; m.n++ }

// N returns the number of recorded values.
func (m *Mean) N() int { return m.n }

// Merge returns a Mean combining the samples of m and o.
func (m Mean) Merge(o Mean) Mean { return Mean{sum: m.sum + o.sum, n: m.n + o.n} }

// Sum returns the running sum.
func (m *Mean) Sum() float64 { return m.sum }

// Value returns the arithmetic mean, or 0 if no values were recorded.
func (m *Mean) Value() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// HarmonicMean returns the harmonic mean of vs, the aggregate the paper uses
// for cross-benchmark speedups. Returns 0 for an empty slice and panics on
// non-positive values, which have no harmonic mean.
func HarmonicMean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	recip := 0.0
	for _, v := range vs {
		if v <= 0 {
			panic(fmt.Sprintf("stats: harmonic mean of non-positive value %v", v))
		}
		recip += 1 / v
	}
	return float64(len(vs)) / recip
}

// ArithmeticMean returns the arithmetic mean of vs (0 for empty input).
func ArithmeticMean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// HarmonicMeanSpeedup aggregates per-benchmark speedups (each expressed as
// new/old) the way the paper does: harmonic mean over ratios.
func HarmonicMeanSpeedup(ratios []float64) float64 { return HarmonicMean(ratios) }

// Ratio is a convenient two-counter rate: events over opportunities.
type Ratio struct {
	Hits  uint64
	Total uint64
}

// Observe records one opportunity, a hit when hit is true.
func (r *Ratio) Observe(hit bool) {
	r.Total++
	if hit {
		r.Hits++
	}
}

// Value returns hits/total, or 0 when nothing was observed.
func (r *Ratio) Value() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Total)
}

// IntDist accumulates small non-negative integer samples — per-packet
// retry counts, hop counts — keeping exact per-value counts for the low
// values and an overflow tally above Cap.
type IntDist struct {
	counts [16]uint64 // counts[v] for v in [0,15]
	over   uint64     // samples above 15
	n      uint64
	sum    uint64
	max    int
}

// Add records one sample (negative values clamp to 0).
func (d *IntDist) Add(v int) {
	if v < 0 {
		v = 0
	}
	d.n++
	d.sum += uint64(v)
	if v > d.max {
		d.max = v
	}
	if v < len(d.counts) {
		d.counts[v]++
	} else {
		d.over++
	}
}

// N returns the number of samples.
func (d *IntDist) N() uint64 { return d.n }

// Sum returns the running total.
func (d *IntDist) Sum() uint64 { return d.sum }

// Max returns the largest sample seen (0 when empty).
func (d *IntDist) Max() int { return d.max }

// Count returns how many samples equalled v exactly (0 for v > 15).
func (d *IntDist) Count(v int) uint64 {
	if v < 0 || v >= len(d.counts) {
		return 0
	}
	return d.counts[v]
}

// Mean returns the sample mean (0 when empty).
func (d *IntDist) Mean() float64 {
	if d.n == 0 {
		return 0
	}
	return float64(d.sum) / float64(d.n)
}

// Merge returns an IntDist combining the samples of d and o.
func (d IntDist) Merge(o IntDist) IntDist {
	out := d
	for i := range out.counts {
		out.counts[i] += o.counts[i]
	}
	out.over += o.over
	out.n += o.n
	out.sum += o.sum
	if o.max > out.max {
		out.max = o.max
	}
	return out
}

// Histogram is a fixed-width bucket histogram with an overflow bucket,
// used for packet-latency distributions.
type Histogram struct {
	bucketWidth float64
	counts      []uint64
	overflow    uint64
	sum         float64
	n           uint64
	max         float64
}

// NewHistogram creates a histogram with nBuckets buckets of the given width.
func NewHistogram(bucketWidth float64, nBuckets int) *Histogram {
	if bucketWidth <= 0 || nBuckets <= 0 {
		panic("stats: histogram needs positive bucket width and count")
	}
	return &Histogram{bucketWidth: bucketWidth, counts: make([]uint64, nBuckets)}
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	h.sum += v
	h.n++
	if v > h.max {
		h.max = v
	}
	idx := int(v / h.bucketWidth)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.counts) {
		h.overflow++
		return
	}
	h.counts[idx]++
}

// N returns the number of samples.
func (h *Histogram) N() uint64 { return h.n }

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Max returns the largest sample seen.
func (h *Histogram) Max() float64 { return h.max }

// Percentile returns an approximate p-quantile (p in [0,1]) using bucket
// upper bounds; overflow samples report as +Inf.
func (h *Histogram) Percentile(p float64) float64 {
	if h.n == 0 {
		return 0
	}
	target := uint64(math.Ceil(p * float64(h.n)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			return float64(i+1) * h.bucketWidth
		}
	}
	return math.Inf(1)
}

// Dominates reports whether design point a Pareto-dominates design point b
// on the throughput-effectiveness plane: at least as much throughput for at
// most the area, strictly better on one axis. Ties on both axes do not
// dominate, so exact duplicates coexist on a frontier.
func Dominates(ipcA, areaA, ipcB, areaB float64) bool {
	return DominatesWithMargin(ipcA, areaA, ipcB, areaB, 0)
}

// DominatesWithMargin is the explorer's kill rule: a dominates b only when
// a's throughput clears b's by the given relative margin (a.ipc >=
// b.ipc*(1+margin)) at no extra area. The margin is the confidence guard for
// successive halving — early rungs estimate IPC from short warm-up budgets,
// so a near-frontier configuration must not die to estimation noise; the
// margin shrinks to zero as budgets grow. A margin of 0 is plain Pareto
// dominance.
func DominatesWithMargin(ipcA, areaA, ipcB, areaB, margin float64) bool {
	if areaA > areaB {
		return false
	}
	need := ipcB * (1 + margin)
	if ipcA < need {
		return false
	}
	// At least one axis must be strictly better, so identical points never
	// dominate each other.
	return ipcA > ipcB || areaA < areaB
}

// ParetoFrontier returns the indices of the non-dominated points among
// (ipc[i], area[i]), sorted by area ascending then IPC descending then index.
// ipc and area must have equal length.
func ParetoFrontier(ipc, area []float64) []int {
	if len(ipc) != len(area) {
		panic("stats: ParetoFrontier needs matching ipc/area lengths")
	}
	var out []int
	for i := range ipc {
		dominated := false
		for j := range ipc {
			if i != j && Dominates(ipc[j], area[j], ipc[i], area[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		i, j := out[a], out[b]
		if area[i] != area[j] {
			return area[i] < area[j]
		}
		if ipc[i] != ipc[j] {
			return ipc[i] > ipc[j]
		}
		return i < j
	})
	return out
}

// Table formats key/value result rows with aligned columns; the experiment
// harness uses it so every figure prints in a uniform shape.
type Table struct {
	name    string
	headers []string
	rows    [][]string
}

// NewTable creates a named table with the given column headers.
func NewTable(name string, headers ...string) *Table {
	return &Table{name: name, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e9 {
		return fmt.Sprintf("%.1f", v)
	}
	return fmt.Sprintf("%.4g", v)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, hdr := range t.headers {
		widths[i] = len(hdr)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.name)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Outcomes tallies the terminal states of a sweep's runs: how many landed
// in each status ("ok", "deadlock", "timeout", "panic", ...) and the
// distribution of attempts the resilient runner needed per run. The
// experiment CLIs render it as the sweep's closing DNF/attempt summary.
type Outcomes struct {
	byStatus map[string]int
	attempts IntDist

	// Early-termination savings reported by the design-space explorer:
	// how many configurations successive halving killed before their
	// full-length runs, and the simulated-cycle cost of the search versus
	// the exhaustive grid it replaced. Zero values mean no explorer ran.
	killedEarly      int
	simulatedCycles  uint64
	exhaustiveCycles uint64
}

// AddEarlyTermination records a design-space explorer's successive-halving
// savings: killed configurations never reached their full-length runs,
// simulated is the total interconnect cycles the search actually executed,
// and exhaustive is the estimated cycle cost of running the full grid at
// the final budget. Multiple explorer sweeps accumulate.
func (o *Outcomes) AddEarlyTermination(killed int, simulated, exhaustive uint64) {
	o.killedEarly += killed
	o.simulatedCycles += simulated
	o.exhaustiveCycles += exhaustive
}

// KilledEarly returns how many configurations were early-terminated.
func (o *Outcomes) KilledEarly() int { return o.killedEarly }

// SimulatedCycles returns the recorded search cost in interconnect cycles.
func (o *Outcomes) SimulatedCycles() uint64 { return o.simulatedCycles }

// ExhaustiveCycles returns the estimated cost of the exhaustive grid.
func (o *Outcomes) ExhaustiveCycles() uint64 { return o.exhaustiveCycles }

// CycleSavings returns exhaustive/simulated — how many times fewer cycles
// the successive-halving search simulated than the exhaustive grid would
// have (0 when no explorer savings were recorded).
func (o *Outcomes) CycleSavings() float64 {
	if o.simulatedCycles == 0 || o.exhaustiveCycles == 0 {
		return 0
	}
	return float64(o.exhaustiveCycles) / float64(o.simulatedCycles)
}

// Observe records one run's terminal status and attempt count; an empty
// status counts as "ok".
func (o *Outcomes) Observe(status string, attempts int) {
	if o.byStatus == nil {
		o.byStatus = make(map[string]int)
	}
	if status == "" {
		status = "ok"
	}
	o.byStatus[status]++
	o.attempts.Add(attempts)
}

// Total returns the number of observed runs.
func (o *Outcomes) Total() int { return int(o.attempts.N()) }

// DNF returns how many runs did not finish cleanly.
func (o *Outcomes) DNF() int { return o.Total() - o.byStatus["ok"] }

// Count returns how many runs ended with the given status.
func (o *Outcomes) Count(status string) int { return o.byStatus[status] }

// Retried returns how many runs needed more than one attempt.
func (o *Outcomes) Retried() int {
	return o.Total() - int(o.attempts.Count(1)) - int(o.attempts.Count(0))
}

// Table renders the per-status counts with attempt accounting, sorted by
// status for diff-stable output.
func (o *Outcomes) Table() *Table {
	tb := NewTable("run outcomes", "status", "runs", "share")
	statuses := make([]string, 0, len(o.byStatus))
	for s := range o.byStatus {
		statuses = append(statuses, s)
	}
	sort.Strings(statuses)
	total := o.Total()
	for _, s := range statuses {
		n := o.byStatus[s]
		tb.AddRow(s, n, fmt.Sprintf("%.1f%%", 100*float64(n)/float64(total)))
	}
	return tb
}

// Summary renders the one-line sweep verdict the CLIs print after the
// tables, e.g. "12 runs: 10 ok, 2 DNF, 1 retried (max 3 attempts)".
func (o *Outcomes) Summary() string {
	if o.Total() == 0 {
		return "0 runs"
	}
	s := fmt.Sprintf("%d runs: %d ok, %d DNF", o.Total(), o.byStatus["ok"], o.DNF())
	if r := o.Retried(); r > 0 {
		s += fmt.Sprintf(", %d retried (max %d attempts)", r, o.attempts.Max())
	}
	if o.killedEarly > 0 || o.simulatedCycles > 0 {
		s += fmt.Sprintf("; explorer killed %d config(s) early, simulated %d of %d exhaustive cycles (%.1fx saved)",
			o.killedEarly, o.simulatedCycles, o.exhaustiveCycles, o.CycleSavings())
	}
	return s
}

// SortRowsByColumn orders rows by the named column's string value;
// useful for stable, diff-friendly experiment output.
func (t *Table) SortRowsByColumn(header string) {
	col := -1
	for i, h := range t.headers {
		if h == header {
			col = i
			break
		}
	}
	if col < 0 {
		return
	}
	sort.SliceStable(t.rows, func(i, j int) bool { return t.rows[i][col] < t.rows[j][col] })
}
