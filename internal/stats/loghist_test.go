package stats

import (
	"math"
	"sort"
	"testing"

	"repro/internal/xrand"
)

// exactQuantile is the reference the histogram is tested against: the
// rank-⌈p·n⌉ element of the sorted sample slice.
func exactQuantile(sorted []float64, p float64) float64 {
	rank := int(math.Ceil(p * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// TestLogHistogramQuantilesVsSorted drives the histogram with a skewed
// synthetic latency distribution and demands that p50/p99/p999 agree with
// the exact sorted-slice quantiles within the documented relative-error
// bound (one bucket ratio).
func TestLogHistogramQuantilesVsSorted(t *testing.T) {
	const perDecade = 16
	ratio := math.Pow(10, 1.0/perDecade)
	h := NewLogHistogram(1e-6, 3600, perDecade)

	// Log-uniform base load across 100µs..100ms with a heavy tail up to
	// ~10s: the shape tail-latency data actually has.
	rng := xrand.New(7)
	samples := make([]float64, 0, 50000)
	for i := 0; i < 50000; i++ {
		var v float64
		if rng.Float64() < 0.01 {
			v = 0.1 * math.Pow(100, rng.Float64()) // 100ms..10s tail
		} else {
			v = 1e-4 * math.Pow(1000, rng.Float64()) // 100µs..100ms body
		}
		samples = append(samples, v)
		h.Observe(v)
	}
	if h.N() != uint64(len(samples)) {
		t.Fatalf("N = %d, want %d", h.N(), len(samples))
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)

	for _, p := range []float64{0.50, 0.90, 0.99, 0.999} {
		got := h.Quantile(p)
		want := exactQuantile(sorted, p)
		if got < want/ratio || got > want*ratio {
			t.Errorf("p%g: histogram %.6g vs exact %.6g exceeds one bucket ratio (%.4f)",
				100*p, got, want, ratio)
		}
	}

	// Mean and max are tracked exactly, not bucketed.
	var sum float64
	for _, v := range samples {
		sum += v
	}
	if math.Abs(h.Mean()-sum/float64(len(samples))) > 1e-12*sum {
		t.Errorf("Mean = %g, want %g", h.Mean(), sum/float64(len(samples)))
	}
	if h.Max() != sorted[len(sorted)-1] {
		t.Errorf("Max = %g, want %g", h.Max(), sorted[len(sorted)-1])
	}
}

func TestLogHistogramEdgeCases(t *testing.T) {
	h := NewLogHistogram(1e-3, 10, 8)
	if h.Quantile(0.99) != 0 || h.N() != 0 || h.Mean() != 0 {
		t.Error("empty histogram must report zeros")
	}

	// One sample: every quantile is that sample (the clamp to the exact
	// observed range makes this precise, not just within a bucket).
	h.Observe(0.25)
	for _, p := range []float64{0, 0.5, 0.999, 1} {
		if got := h.Quantile(p); got != 0.25 {
			t.Errorf("single sample: Quantile(%g) = %g, want 0.25", p, got)
		}
	}

	// Below-min and above-max samples clamp but stay honest via the
	// exact-range clamp.
	lo := NewLogHistogram(1e-3, 10, 8)
	lo.Observe(1e-9)
	if got := lo.Quantile(0.5); got != 1e-9 {
		t.Errorf("below-min sample: Quantile = %g, want 1e-9", got)
	}
	hi := NewLogHistogram(1e-3, 10, 8)
	hi.Observe(1e6)
	if got := hi.Quantile(0.5); got != 1e6 {
		t.Errorf("above-max sample: Quantile = %g, want 1e6", got)
	}
}

func TestLogHistogramMerge(t *testing.T) {
	a := NewLogHistogram(1e-6, 3600, 16)
	b := NewLogHistogram(1e-6, 3600, 16)
	whole := NewLogHistogram(1e-6, 3600, 16)
	rng := xrand.New(11)
	for i := 0; i < 4000; i++ {
		v := 1e-4 * math.Pow(1000, rng.Float64())
		whole.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(b)
	// Sums accumulate in different orders, so compare with float slack.
	if a.N() != whole.N() || math.Abs(a.Sum()-whole.Sum()) > 1e-9*whole.Sum() || a.Max() != whole.Max() {
		t.Fatalf("merge lost samples: N=%d sum=%g max=%g, want N=%d sum=%g max=%g",
			a.N(), a.Sum(), a.Max(), whole.N(), whole.Sum(), whole.Max())
	}
	for _, p := range []float64{0.5, 0.99, 0.999} {
		if a.Quantile(p) != whole.Quantile(p) {
			t.Errorf("p%g: merged %g != whole %g", 100*p, a.Quantile(p), whole.Quantile(p))
		}
	}

	// Shape mismatch must panic, matching the constructor's contract.
	defer func() {
		if recover() == nil {
			t.Error("merging mismatched shapes did not panic")
		}
	}()
	a.Merge(NewLogHistogram(1e-3, 10, 8))
}
