package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) < 1e-9 || math.Abs(a-b) < 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

func TestMeanBasics(t *testing.T) {
	var m Mean
	if m.Value() != 0 || m.N() != 0 {
		t.Fatal("zero Mean should report 0")
	}
	for _, v := range []float64{1, 2, 3, 4} {
		m.Add(v)
	}
	if !almostEqual(m.Value(), 2.5) {
		t.Errorf("mean = %v, want 2.5", m.Value())
	}
	if m.Sum() != 10 || m.N() != 4 {
		t.Errorf("sum/n = %v/%v, want 10/4", m.Sum(), m.N())
	}
}

func TestHarmonicMeanKnown(t *testing.T) {
	got := HarmonicMean([]float64{1, 2, 4})
	want := 3.0 / (1 + 0.5 + 0.25)
	if !almostEqual(got, want) {
		t.Errorf("harmonic mean = %v, want %v", got, want)
	}
}

func TestHarmonicMeanEmpty(t *testing.T) {
	if HarmonicMean(nil) != 0 {
		t.Error("harmonic mean of empty slice should be 0")
	}
}

func TestHarmonicMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on non-positive value")
		}
	}()
	HarmonicMean([]float64{1, 0, 2})
}

func TestHarmonicLeqArithmetic(t *testing.T) {
	// Property: HM <= AM for positive inputs, equal iff all equal.
	f := func(raw []float64) bool {
		vs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if v := math.Abs(v); v > 1e-6 && v < 1e6 {
				vs = append(vs, v)
			}
		}
		if len(vs) == 0 {
			return true
		}
		return HarmonicMean(vs) <= ArithmeticMean(vs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Value() != 0 {
		t.Error("empty ratio should be 0")
	}
	for i := 0; i < 10; i++ {
		r.Observe(i < 3)
	}
	if !almostEqual(r.Value(), 0.3) {
		t.Errorf("ratio = %v, want 0.3", r.Value())
	}
}

func TestHistogramMeanMax(t *testing.T) {
	h := NewHistogram(10, 10)
	for _, v := range []float64{5, 15, 25, 95, 150} {
		h.Add(v)
	}
	if h.N() != 5 {
		t.Errorf("N = %d, want 5", h.N())
	}
	if !almostEqual(h.Mean(), 58) {
		t.Errorf("mean = %v, want 58", h.Mean())
	}
	if h.Max() != 150 {
		t.Errorf("max = %v, want 150", h.Max())
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram(1, 100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	p50 := h.Percentile(0.5)
	if p50 < 49 || p50 > 51 {
		t.Errorf("p50 = %v, want ~50", p50)
	}
	if !math.IsInf(mustOverflowP(), 1) {
		t.Error("percentile should be +Inf when target falls in overflow")
	}
}

func mustOverflowP() float64 {
	h := NewHistogram(1, 2)
	h.Add(100) // overflow bucket
	return h.Percentile(0.99)
}

func TestHistogramPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero bucket width")
		}
	}()
	NewHistogram(0, 5)
}

func TestTableFormatting(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1.0)
	tb.AddRow("b", 0.12345)
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Errorf("missing title: %q", out)
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "0.1235") {
		t.Errorf("missing cells: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("want 4 lines (title+header+2 rows), got %d: %q", len(lines), out)
	}
}

func TestTableSort(t *testing.T) {
	tb := NewTable("s", "k", "v")
	tb.AddRow("zz", 1.0)
	tb.AddRow("aa", 2.0)
	tb.SortRowsByColumn("k")
	out := tb.String()
	if strings.Index(out, "aa") > strings.Index(out, "zz") {
		t.Errorf("rows not sorted: %q", out)
	}
}

func TestTableSortUnknownColumnIsNoop(t *testing.T) {
	tb := NewTable("s", "k")
	tb.AddRow("b")
	tb.AddRow("a")
	tb.SortRowsByColumn("missing")
	out := tb.String()
	if strings.Index(out, "b") > strings.Index(out, "a") {
		t.Error("sort by missing column should not reorder rows")
	}
}

func TestDominatesWithMargin(t *testing.T) {
	cases := []struct {
		name        string
		ipcA, areaA float64
		ipcB, areaB float64
		margin      float64
		want        bool
	}{
		{"strictly better both axes", 2, 10, 1, 20, 0, true},
		{"better ipc same area", 2, 10, 1, 10, 0, true},
		{"same ipc smaller area", 1, 5, 1, 10, 0, true},
		{"identical points never dominate", 1, 10, 1, 10, 0, false},
		{"larger area never dominates", 3, 20, 1, 10, 0, false},
		{"margin protects near point", 1.05, 10, 1, 10, 0.10, false},
		{"margin cleared", 1.2, 10, 1, 10, 0.10, true},
		{"margin boundary needs strict ipc or area", 1.1, 10, 1, 10, 0.10, true},
		{"worse ipc never dominates", 0.5, 5, 1, 10, 0, false},
	}
	for _, c := range cases {
		if got := DominatesWithMargin(c.ipcA, c.areaA, c.ipcB, c.areaB, c.margin); got != c.want {
			t.Errorf("%s: DominatesWithMargin(%v,%v,%v,%v,%v) = %v, want %v",
				c.name, c.ipcA, c.areaA, c.ipcB, c.areaB, c.margin, got, c.want)
		}
	}
	if !Dominates(2, 10, 1, 20) || Dominates(1, 10, 1, 10) {
		t.Error("Dominates must be DominatesWithMargin at margin 0")
	}
}

func TestParetoFrontier(t *testing.T) {
	// Points: (ipc, area). 0 and 2 are on the frontier; 1 is dominated by 0;
	// 3 duplicates 0 exactly so both survive.
	ipc := []float64{2.0, 1.5, 1.0, 2.0}
	area := []float64{10, 10, 5, 10}
	got := ParetoFrontier(ipc, area)
	want := []int{2, 0, 3} // sorted by area asc, then ipc desc, then index
	if len(got) != len(want) {
		t.Fatalf("frontier = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frontier = %v, want %v", got, want)
		}
	}
	if f := ParetoFrontier(nil, nil); len(f) != 0 {
		t.Errorf("empty input frontier = %v, want empty", f)
	}
}

func TestOutcomesEarlyTermination(t *testing.T) {
	var o Outcomes
	if o.CycleSavings() != 0 {
		t.Error("zero Outcomes should report 0 savings")
	}
	if !strings.Contains(o.Summary(), "0 runs") {
		t.Errorf("summary = %q", o.Summary())
	}
	o.Observe("ok", 1)
	if strings.Contains(o.Summary(), "explorer") {
		t.Errorf("summary should not mention the explorer before savings are recorded: %q", o.Summary())
	}
	o.AddEarlyTermination(90, 1000, 4000)
	o.AddEarlyTermination(10, 0, 0)
	if o.KilledEarly() != 100 {
		t.Errorf("killed = %d, want 100", o.KilledEarly())
	}
	if o.SimulatedCycles() != 1000 || o.ExhaustiveCycles() != 4000 {
		t.Errorf("cycles = %d/%d, want 1000/4000", o.SimulatedCycles(), o.ExhaustiveCycles())
	}
	if got := o.CycleSavings(); math.Abs(got-4.0) > 1e-12 {
		t.Errorf("savings = %v, want 4.0", got)
	}
	sum := o.Summary()
	if !strings.Contains(sum, "killed 100 config(s) early") || !strings.Contains(sum, "4.0x saved") {
		t.Errorf("summary = %q, want early-termination savings", sum)
	}
}
