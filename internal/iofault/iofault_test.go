package iofault

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func tmpfile(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "f.dat")
}

func TestOSPassthrough(t *testing.T) {
	path := tmpfile(t)
	f, err := OS.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "hello" {
		t.Fatalf("read back %q, %v", b, err)
	}
}

func TestScriptedFaults(t *testing.T) {
	ff := NewFaultFS(OS)
	path := tmpfile(t)
	f, err := ff.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	ff.Inject(Fault{Op: "sync", Err: syscall.ENOSPC})
	if _, err := f.Write([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("sync error = %v, want ENOSPC", err)
	}
	// The fault expired; the next sync is clean.
	if err := f.Sync(); err != nil {
		t.Fatalf("post-fault sync: %v", err)
	}

	ff.Inject(Fault{Op: "write", Err: syscall.EIO, Count: 2})
	for i := 0; i < 2; i++ {
		if _, err := f.Write([]byte("b")); !errors.Is(err, syscall.EIO) {
			t.Fatalf("write %d error = %v, want EIO", i, err)
		}
	}
	if _, err := f.Write([]byte("b")); err != nil {
		t.Fatalf("write after count exhausted: %v", err)
	}
}

func TestStickyFaultAndClear(t *testing.T) {
	ff := NewFaultFS(OS)
	path := tmpfile(t)
	f, err := ff.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ff.Inject(Fault{Op: "write", Err: syscall.ENOSPC, Count: -1})
	for i := 0; i < 5; i++ {
		if _, err := f.Write([]byte("x")); !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("sticky fault did not fire on write %d: %v", i, err)
		}
	}
	ff.Clear()
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("write after Clear: %v", err)
	}
}

func TestShortWrite(t *testing.T) {
	ff := NewFaultFS(OS)
	path := tmpfile(t)
	f, err := ff.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	ff.Inject(Fault{Op: "write", Short: 3, Err: syscall.ENOSPC})
	n, err := f.Write([]byte("abcdef"))
	if n != 3 || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("short write = (%d, %v), want (3, ENOSPC)", n, err)
	}
	f.Close()
	b, _ := os.ReadFile(path)
	if string(b) != "abc" {
		t.Fatalf("file holds %q after short write, want \"abc\"", b)
	}
}

// TestPowerCutPreservesSyncedPrefix is the core power-cut contract:
// everything before the last honest sync survives byte-identical, the
// unsynced tail is cut or garbled, and the wound is deterministic in the
// seed.
func TestPowerCutPreservesSyncedPrefix(t *testing.T) {
	for _, garble := range []bool{false, true} {
		ff := NewFaultFS(OS)
		path := tmpfile(t)
		f, err := ff.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		f.Write([]byte("durable-prefix\n"))
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		f.Write([]byte("unsynced-tail-that-may-vanish\n"))
		f.Close()

		if got := ff.Synced(path); got != int64(len("durable-prefix\n")) {
			t.Fatalf("Synced = %d, want %d", got, len("durable-prefix\n"))
		}
		if err := ff.PowerCut(7, garble); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(b) < len("durable-prefix\n") || string(b[:len("durable-prefix\n")]) != "durable-prefix\n" {
			t.Fatalf("garble=%v: synced prefix damaged: %q", garble, b)
		}
		if len(b) > len("durable-prefix\n")+len("unsynced-tail-that-may-vanish\n") {
			t.Fatalf("file grew across power cut: %d bytes", len(b))
		}
	}
}

// TestPowerCutDeterministic pins that the same seed yields the same wound.
func TestPowerCutDeterministic(t *testing.T) {
	wound := func() []byte {
		ff := NewFaultFS(OS)
		path := tmpfile(t)
		f, _ := ff.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
		f.Write([]byte("synced"))
		f.Sync()
		f.Write([]byte("0123456789abcdef0123456789abcdef"))
		f.Close()
		if err := ff.PowerCut(42, true); err != nil {
			t.Fatal(err)
		}
		b, _ := os.ReadFile(path)
		return b
	}
	a, b := wound(), wound()
	if string(a) != string(b) {
		t.Fatalf("same seed, different wounds:\n%q\n%q", a, b)
	}
}

func TestDropSyncsWidensTheWound(t *testing.T) {
	ff := NewFaultFS(OS)
	ff.DropSyncs(true)
	path := tmpfile(t)
	f, _ := ff.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	f.Write([]byte("believed-durable"))
	if err := f.Sync(); err != nil {
		t.Fatalf("lying sync should report success: %v", err)
	}
	f.Close()
	if got := ff.Synced(path); got != 0 {
		t.Fatalf("Synced = %d under DropSyncs, want 0", got)
	}
}

func TestChaosDeterministic(t *testing.T) {
	runs := func() []bool {
		ff := NewFaultFS(OS)
		ff.Chaos(99, 0.5, 0)
		path := tmpfile(t)
		f, _ := ff.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
		defer f.Close()
		var outcomes []bool
		for i := 0; i < 32; i++ {
			_, err := f.Write([]byte("x"))
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := runs(), runs()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chaos stream diverged at write %d", i)
		}
	}
	saw := map[bool]bool{}
	for _, ok := range a {
		saw[ok] = true
	}
	if !saw[true] || !saw[false] {
		t.Fatalf("chaos at p=0.5 produced no mix over 32 writes: %v", a)
	}
}

func TestCrashpointDisarmedIsNoop(t *testing.T) {
	if Armed() != "" {
		t.Skip("crashpoint armed in this process")
	}
	for _, p := range Points() {
		Crashpoint(p) // must simply return
	}
	if len(Points()) < 6 {
		t.Fatalf("only %d registered crashpoints; the chaos sweep expects full append/seal/quarantine coverage", len(Points()))
	}
}
