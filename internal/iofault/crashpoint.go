package iofault

import (
	"os"
	"strconv"
	"sync/atomic"
	"syscall"
)

// Crashpoints are named kill-the-process points compiled into every
// durable-write boundary. In normal operation they cost one atomic load
// of a nil-ish string comparison and do nothing. A chaos harness re-execs
// the process (tesimd, or a test child) with
//
//	TESIM_CRASHPOINT=<name> [TESIM_CRASHPOINT_HITS=<n>]
//
// and the n-th time execution reaches Crashpoint(name) the process
// SIGKILLs itself — no deferred cleanup, no flushing, the closest
// userspace gets to pulling the plug. Sweeping every registered point and
// asserting the restart invariants ("every acknowledged result survives
// byte-identical; nothing acked is re-executed; nothing corrupt is
// falsely accepted") is FoundationDB-style deterministic crash testing
// scaled down to this repo.
const (
	// CPAppendBeforeWrite fires before a journal record's bytes reach the
	// file: the record must simply not exist after restart.
	CPAppendBeforeWrite = "journal.append.before-write"
	// CPAppendAfterWrite fires between write(2) and fsync: the record is
	// in the page cache but was never acknowledged; replay may see a torn
	// or intact-but-unacked line and must cope with either.
	CPAppendAfterWrite = "journal.append.after-write"
	// CPAppendAfterSync fires after fsync but before the append returns:
	// the record is durable but the caller never saw the ack.
	CPAppendAfterSync = "journal.append.after-sync"
	// CPSealBeforeSync fires after the torn-line seal newline is written
	// but before it is fsynced.
	CPSealBeforeSync = "journal.seal.before-sync"
	// CPSealAfterSync fires once the seal is durable, before OpenJournal
	// returns.
	CPSealAfterSync = "journal.seal.after-sync"
	// CPQuarantineBeforeWrite fires as a corrupt record is being copied to
	// the .corrupt sidecar during replay.
	CPQuarantineBeforeWrite = "journal.quarantine.before-write"
	// CPStorePutBeforeAppend fires when the service store has decided to
	// persist a fresh outcome, before the journal append begins.
	CPStorePutBeforeAppend = "store.put.before-append"
	// CPStorePutAfterAppend fires after the store's journal append
	// returned (record durable) but before Put acknowledges to the pool.
	CPStorePutAfterAppend = "store.put.after-append"
)

// EnvCrashpoint and EnvCrashpointHits are the environment variables that
// arm a crashpoint in a child process.
const (
	EnvCrashpoint     = "TESIM_CRASHPOINT"
	EnvCrashpointHits = "TESIM_CRASHPOINT_HITS"
)

// Points returns every registered crashpoint name, in the order a chaos
// sweep should visit them. scripts/chaos.sh discovers them via
// `tesimd -list-crashpoints`.
func Points() []string {
	return []string{
		CPAppendBeforeWrite,
		CPAppendAfterWrite,
		CPAppendAfterSync,
		CPSealBeforeSync,
		CPSealAfterSync,
		CPQuarantineBeforeWrite,
		CPStorePutBeforeAppend,
		CPStorePutAfterAppend,
	}
}

var (
	armedPoint string
	armedHits  int64 = 1
	hitCount   atomic.Int64
)

func init() {
	armedPoint = os.Getenv(EnvCrashpoint)
	if v := os.Getenv(EnvCrashpointHits); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			armedHits = int64(n)
		}
	}
}

// Crashpoint kills the process when the named point is armed and its hit
// budget is exhausted. It is a no-op (one string compare) otherwise.
func Crashpoint(name string) {
	if armedPoint == "" || armedPoint != name {
		return
	}
	if hitCount.Add(1) < armedHits {
		return
	}
	// SIGKILL ourselves: no deferred closes, no buffered flushes — the
	// nearest userspace approximation of a power cut. The fallback exit
	// code matches a SIGKILLed process's 128+9.
	_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
	os.Exit(137)
}

// Armed reports the armed crashpoint name ("" when none); the chaos
// harness's child logs it for debuggability.
func Armed() string { return armedPoint }
