// Package iofault is the injectable filesystem seam under every durable
// write path in the repository (the runner's checkpoint journal and the
// service daemon's content-addressed store). Production code talks to the
// FS interface; iofault.OS forwards straight to the os package, and
// FaultFS wraps any FS with seeded, deterministic fault injection — EIO,
// ENOSPC, short writes, and a power-cut simulator that truncates or
// garbage-fills whatever was written but never fsynced — so the
// durability contract can be adversarially tested in-process, the way the
// NoC kernel is pinned by golden digests.
//
// The package also hosts the crashpoint framework (crashpoint.go): named
// kill-the-process points at every append/fsync/seal/quarantine boundary,
// armed by environment variable in a re-exec'd child so a chaos harness
// can prove "every acknowledged result survives restart" for real
// processes, not just mocked files.
package iofault

import (
	"fmt"
	"io"
	"os"
	"sync"
	"syscall"

	"repro/internal/xrand"
)

// File is the slice of *os.File the journal write paths need. *os.File
// satisfies it directly.
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	Stat() (os.FileInfo, error)
	Sync() error
	Truncate(size int64) error
	Close() error
}

// FS is the filesystem seam: every durable artifact (journal, quarantine
// sidecar) is created, appended, synced and renamed through one of these.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }

// OS is the passthrough FS used by all production code.
var OS FS = osFS{}

// Fault is one scripted fault. The zero Op matches every operation.
type Fault struct {
	// Op selects the operation: "write", "sync", "open", "truncate",
	// "rename", "remove", or "" for any.
	Op string
	// Path, when non-empty, restricts the fault to that file.
	Path string
	// Err is returned by the faulted operation. Typical values are
	// syscall.EIO and syscall.ENOSPC.
	Err error
	// Short, for write faults, writes only Short bytes before failing —
	// the torn-write wound a real ENOSPC or power cut leaves behind.
	Short int
	// Count is how many times the fault fires before expiring; 0 means
	// once, a negative count never expires (a persistently broken disk).
	Count int
}

// FaultFS wraps a base FS with deterministic fault injection. Faults come
// from two sources that compose:
//
//   - a script (Inject): explicit faults consumed in order, for tests that
//     need "the third sync fails with ENOSPC";
//   - a seeded chaos mode (Chaos): every write/sync fails with probability
//     p drawn from a deterministic xrand stream, alternating EIO and
//     ENOSPC, for fuzz-flavoured soak tests that must still replay
//     bit-exactly from a seed.
//
// FaultFS additionally tracks, per file, how many bytes were durable at
// the last successful Sync, so PowerCut can simulate what a power failure
// does to a journal: the synced prefix survives untouched, the unsynced
// tail is truncated at a seeded point and optionally garbage-filled.
// All methods are safe for concurrent use.
type FaultFS struct {
	base FS

	mu     sync.Mutex
	script []Fault
	rng    *xrand.Rand
	pWrite float64
	pSync  float64
	flip   bool // alternates EIO/ENOSPC in chaos mode
	// dropSyncs makes Sync lie: it reports success without advancing the
	// durable horizon, modelling a disk or filesystem that ignores
	// barriers. Combined with PowerCut it yields the nastiest realistic
	// wound: records the writer believed durable are garbage on disk.
	dropSyncs bool
	files     map[string]*fileMeta
}

type fileMeta struct {
	synced int64 // durable bytes as of the last honest Sync
	size   int64 // best-effort current size (advanced by writes)
}

// NewFaultFS wraps base (nil means iofault.OS) with no faults armed.
func NewFaultFS(base FS) *FaultFS {
	if base == nil {
		base = OS
	}
	return &FaultFS{base: base, files: make(map[string]*fileMeta)}
}

// Inject arms one scripted fault; faults fire in injection order as
// matching operations arrive.
func (ff *FaultFS) Inject(f Fault) {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	if f.Err == nil && f.Short == 0 {
		f.Err = syscall.EIO
	}
	ff.script = append(ff.script, f)
}

// Clear disarms every scripted fault and turns chaos mode off; the fault
// "clears" the way a full disk does when space is freed.
func (ff *FaultFS) Clear() {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	ff.script = nil
	ff.pWrite, ff.pSync = 0, 0
}

// Chaos arms seeded random injection: each write fails with probability
// pWrite and each sync with probability pSync, errors alternating between
// EIO and ENOSPC. The stream is deterministic in seed.
func (ff *FaultFS) Chaos(seed uint64, pWrite, pSync float64) {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	ff.rng = xrand.New(seed)
	ff.pWrite, ff.pSync = pWrite, pSync
}

// DropSyncs toggles lying-fsync mode: Sync returns success but the
// durable horizon does not advance, so a later PowerCut treats everything
// since the last honest sync as unsynced tail.
func (ff *FaultFS) DropSyncs(on bool) {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	ff.dropSyncs = on
}

// take pops the first matching scripted fault, or asks the chaos stream.
// Callers hold ff.mu.
func (ff *FaultFS) take(op, path string) *Fault {
	for i := range ff.script {
		f := &ff.script[i]
		if f.Op != "" && f.Op != op {
			continue
		}
		if f.Path != "" && f.Path != path {
			continue
		}
		out := *f
		if f.Count > 0 {
			f.Count--
			if f.Count == 0 {
				ff.script = append(ff.script[:i], ff.script[i+1:]...)
			}
		} else if f.Count == 0 {
			ff.script = append(ff.script[:i], ff.script[i+1:]...)
		} // negative Count: sticky, never removed
		return &out
	}
	var p float64
	switch op {
	case "write":
		p = ff.pWrite
	case "sync":
		p = ff.pSync
	}
	if p > 0 && ff.rng != nil && ff.rng.Bool(p) {
		ff.flip = !ff.flip
		err := error(syscall.EIO)
		if ff.flip {
			err = syscall.ENOSPC
		}
		return &Fault{Op: op, Err: err}
	}
	return nil
}

func (ff *FaultFS) meta(path string) *fileMeta {
	m := ff.files[path]
	if m == nil {
		m = &fileMeta{}
		ff.files[path] = m
	}
	return m
}

// OpenFile opens through the seam, tracking the file for power-cut
// accounting. An O_TRUNC open resets the durable horizon.
func (ff *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	ff.mu.Lock()
	if f := ff.take("open", name); f != nil {
		ff.mu.Unlock()
		return nil, &os.PathError{Op: "open", Path: name, Err: f.Err}
	}
	ff.mu.Unlock()
	f, err := ff.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	ff.mu.Lock()
	_, seen := ff.files[name]
	m := ff.meta(name)
	if st, err := f.Stat(); err == nil {
		m.size = st.Size() // O_TRUNC already took effect in the base FS
		if !seen {
			// First contact: the file predates this FaultFS, so its
			// current contents are assumed durable.
			m.synced = m.size
		}
		if m.synced > m.size {
			m.synced = m.size
		}
	}
	ff.mu.Unlock()
	return &faultFile{ff: ff, f: f, path: name}, nil
}

func (ff *FaultFS) Rename(oldpath, newpath string) error {
	ff.mu.Lock()
	if f := ff.take("rename", oldpath); f != nil {
		ff.mu.Unlock()
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: f.Err}
	}
	if m, ok := ff.files[oldpath]; ok {
		ff.files[newpath] = m
		delete(ff.files, oldpath)
	}
	ff.mu.Unlock()
	return ff.base.Rename(oldpath, newpath)
}

func (ff *FaultFS) Remove(name string) error {
	ff.mu.Lock()
	if f := ff.take("remove", name); f != nil {
		ff.mu.Unlock()
		return &os.PathError{Op: "remove", Path: name, Err: f.Err}
	}
	delete(ff.files, name)
	ff.mu.Unlock()
	return ff.base.Remove(name)
}

// Synced returns how many bytes of path are durable (survive PowerCut).
func (ff *FaultFS) Synced(path string) int64 {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	if m, ok := ff.files[path]; ok {
		return m.synced
	}
	return 0
}

// PowerCut simulates pulling the plug on every tracked file: the synced
// prefix survives byte-for-byte; the unsynced tail is cut at a seeded
// point and, when garble is true, the surviving unsynced bytes are
// overwritten with seeded garbage (modelling a block device that tore the
// sectors). Open faultFile handles become useless afterwards — like the
// process, they did not survive.
func (ff *FaultFS) PowerCut(seed uint64, garble bool) error {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	rng := xrand.New(seed)
	for path, m := range ff.files {
		f, err := ff.base.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return fmt.Errorf("iofault: power-cut %s: %w", path, err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return err
		}
		size := st.Size()
		if size > m.synced {
			// Keep a seeded-random prefix of the unsynced tail, then
			// optionally garble what survives of it.
			keep := m.synced + int64(rng.Intn(int(size-m.synced)+1))
			if err := f.Truncate(keep); err != nil {
				f.Close()
				return err
			}
			if garble && keep > m.synced {
				junk := make([]byte, keep-m.synced)
				for i := range junk {
					junk[i] = byte(rng.Uint64())
				}
				if _, err := f.(io.WriterAt).WriteAt(junk, m.synced); err != nil {
					f.Close()
					return err
				}
			}
			m.size = keep
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// faultFile threads writes and syncs through the injector.
type faultFile struct {
	ff   *FaultFS
	f    File
	path string
}

func (x *faultFile) Read(p []byte) (int, error)              { return x.f.Read(p) }
func (x *faultFile) ReadAt(p []byte, off int64) (int, error) { return x.f.ReadAt(p, off) }
func (x *faultFile) Stat() (os.FileInfo, error)              { return x.f.Stat() }
func (x *faultFile) Close() error                            { return x.f.Close() }

func (x *faultFile) Write(p []byte) (int, error) {
	x.ff.mu.Lock()
	f := x.ff.take("write", x.path)
	x.ff.mu.Unlock()
	if f != nil {
		n := 0
		if f.Short > 0 && f.Short < len(p) {
			n, _ = x.f.Write(p[:f.Short])
		}
		err := f.Err
		if err == nil {
			err = syscall.EIO
		}
		x.ff.mu.Lock()
		x.ff.meta(x.path).size += int64(n)
		x.ff.mu.Unlock()
		return n, &os.PathError{Op: "write", Path: x.path, Err: err}
	}
	n, err := x.f.Write(p)
	x.ff.mu.Lock()
	x.ff.meta(x.path).size += int64(n)
	x.ff.mu.Unlock()
	return n, err
}

func (x *faultFile) Sync() error {
	x.ff.mu.Lock()
	f := x.ff.take("sync", x.path)
	drop := x.ff.dropSyncs
	x.ff.mu.Unlock()
	if f != nil {
		return &os.PathError{Op: "sync", Path: x.path, Err: f.Err}
	}
	if drop {
		return nil // the lie: "durable" without advancing the horizon
	}
	if err := x.f.Sync(); err != nil {
		return err
	}
	x.ff.mu.Lock()
	m := x.ff.meta(x.path)
	if st, err := x.f.Stat(); err == nil {
		m.size = st.Size()
	}
	m.synced = m.size
	x.ff.mu.Unlock()
	return nil
}

func (x *faultFile) Truncate(size int64) error {
	x.ff.mu.Lock()
	f := x.ff.take("truncate", x.path)
	x.ff.mu.Unlock()
	if f != nil {
		return &os.PathError{Op: "truncate", Path: x.path, Err: f.Err}
	}
	if err := x.f.Truncate(size); err != nil {
		return err
	}
	x.ff.mu.Lock()
	m := x.ff.meta(x.path)
	m.size = size
	if m.synced > size {
		m.synced = size
	}
	x.ff.mu.Unlock()
	return nil
}
