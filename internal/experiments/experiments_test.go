package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// quickSuite runs three benchmarks (one per class) at a small scale; it
// exercises the full experiment plumbing without the cost of calibration-
// grade runs.
func quickSuite(t *testing.T) *Suite {
	t.Helper()
	s, err := New(Options{Scale: 0.15, Benchmarks: []string{"BIN", "CON", "MUM"}})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidatesBenchmarks(t *testing.T) {
	if _, err := New(Options{Benchmarks: []string{"NOPE"}}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	s, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Benchmarks()) != 31 {
		t.Errorf("default suite has %d benchmarks, want 31", len(s.Benchmarks()))
	}
}

func TestRunCaching(t *testing.T) {
	s := quickSuite(t)
	r1 := s.Fig11()
	before := s.Executed()
	r2 := s.Fig11()
	if s.Executed() != before {
		t.Error("second Fig11 ran new simulations despite cache")
	}
	if r1.Table.String() != r2.Table.String() {
		t.Error("cached rerun produced different table")
	}
}

func TestFig7ReportShape(t *testing.T) {
	s := quickSuite(t)
	rep := s.Fig7()
	out := rep.String()
	for _, want := range []string{"fig7", "BIN", "CON", "MUM", "paper +36%", "paper +87%"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig7 report missing %q:\n%s", want, out)
		}
	}
	// The memory-bound benchmark must show a larger perfect-net speedup
	// than the compute-bound one even at reduced scale.
	lines := strings.Split(out, "\n")
	var binLine, mumLine string
	for _, l := range lines {
		if strings.HasPrefix(l, "BIN") {
			binLine = l
		}
		if strings.HasPrefix(l, "MUM") {
			mumLine = l
		}
	}
	if binLine == "" || mumLine == "" {
		t.Fatalf("missing rows:\n%s", out)
	}
}

func TestClassOf(t *testing.T) {
	cases := []struct {
		speedup, traffic float64
		want             string
	}{
		{1.05, 0.3, "LL"},
		{1.05, 2.0, "LH"},
		{1.9, 4.0, "HH"},
		{1.31, 0.9, "HL"}, // possible in principle; paper observed none
	}
	for _, c := range cases {
		if got := classOf(c.speedup, c.traffic); got != c.want {
			t.Errorf("classOf(%v,%v) = %s, want %s", c.speedup, c.traffic, got, c.want)
		}
	}
}

func TestPaperClassOf(t *testing.T) {
	if paperClassOf("MUM") != "HH" || paperClassOf("BIN") != "LL" {
		t.Error("paper classes wrong")
	}
	if paperClassOf("XXX") != "?" {
		t.Error("unknown abbr should map to ?")
	}
}

func TestByIDAndIDs(t *testing.T) {
	s := quickSuite(t)
	if _, err := s.ByID("nope"); err == nil {
		t.Error("unknown id accepted")
	}
	// Table6 involves no simulation: safe to run fully.
	rep, err := s.ByID("table6")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.String(), "Baseline") {
		t.Error("table6 missing baseline row")
	}
	if len(IDs()) != 18 {
		t.Errorf("IDs() lists %d experiments, want 18", len(IDs()))
	}
}

func TestSuiteRecordsDNF(t *testing.T) {
	s := quickSuite(t)
	p, err := workload.ByAbbr("MUM")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Baseline(p)
	cfg.Name = "capped"
	cfg.MaxIcntCycles = 200 // far too few: must hit the cycle cap
	r := s.run(cfg)
	if r.OK() {
		t.Fatalf("capped run reported status %q", r.Status)
	}
	dnf := s.DNF()
	if len(dnf) != 1 || !strings.Contains(dnf[0], "capped|MUM: cycle-cap") {
		t.Fatalf("DNF rows = %v, want one capped|MUM cycle-cap entry", dnf)
	}
	// The degraded result is cached like any other: re-running must not
	// simulate again or duplicate the DNF record.
	before := s.Executed()
	_ = s.run(cfg)
	if s.Executed() != before || len(s.DNF()) != 1 {
		t.Error("cached DNF re-ran or duplicated")
	}
}

func TestTable6MatchesPaper(t *testing.T) {
	s := quickSuite(t)
	rep := s.Table6()
	out := rep.String()
	// Spot-check the printed sums against Table VI.
	for _, want := range []string{"69.0", "576", "59.2", "537.4"} {
		if !strings.Contains(out, want) {
			t.Errorf("table6 missing %q:\n%s", want, out)
		}
	}
}

func TestFig11StallsOnMemoryBound(t *testing.T) {
	s := quickSuite(t)
	rep := s.Fig11()
	out := rep.Table.String()
	// MUM is memory bound: its row must show a nonzero stall percentage.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "MUM") {
			if strings.Contains(line, " 0.0%") {
				t.Errorf("MUM shows no MC stall: %q", line)
			}
			return
		}
	}
	t.Fatalf("MUM row missing:\n%s", out)
}

func TestPct(t *testing.T) {
	if pct(1.17) != "+17.0%" {
		t.Errorf("pct(1.17) = %s", pct(1.17))
	}
	if pct(0.95) != "-5.0%" {
		t.Errorf("pct(0.95) = %s", pct(0.95))
	}
}
