package experiments

import (
	"fmt"

	"repro/internal/noc"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// openLoopConfigs returns the five network configurations of Fig 21.
func openLoopConfigs() []struct {
	name string
	cfg  noc.Config
} {
	tb := noc.DefaultConfig() // TB-DOR, 2 VCs (request/reply logical networks)
	tb2x := tb
	tb2x.FlitBytes = 32

	cp := tb
	cp.MCs = noc.CheckerboardPlacement(6, 6, 8)

	cpcr := cp
	cpcr.Checkerboard = true
	cpcr.Routing = noc.RoutingCheckerboard
	cpcr.NumVCs = 4

	cpcr2p := cpcr
	cpcr2p.MCInjPorts = 2

	return []struct {
		name string
		cfg  noc.Config
	}{
		{"TB-DOR", tb},
		{"CP-DOR", cp},
		{"CP-CR", cpcr},
		{"CP-CR-2P", cpcr2p},
		{"2x-TB-DOR", tb2x},
	}
}

// openLoopRates is the offered-load sweep in flits/cycle/compute-node.
func openLoopRates() []float64 {
	return []float64{0.005, 0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09, 0.10, 0.12}
}

// Fig21 sweeps offered load for uniform-random and hotspot
// many-to-few-to-many traffic on the five configurations (paper: CP, CR
// and especially 2P push out the saturation point; hotspot hurts TB most).
func (s *Suite) Fig21() *Report {
	var summary []string
	tb := stats.NewTable("Fig 21: open-loop latency vs offered load",
		"pattern", "config", "offered", "accepted", "latency", "saturated")
	for _, pattern := range []traffic.Pattern{traffic.UniformRandom, traffic.Hotspot} {
		for _, c := range openLoopConfigs() {
			runner := traffic.NewMeshRunner(c.cfg)
			base := traffic.DefaultConfig()
			base.Pattern = pattern
			// Keep the sweep cheap in quick mode.
			if s.opts.Scale < 1 {
				base.WarmupCycles = 500
				base.MeasureCycles = 2000
				base.DrainCycles = 4000
			}
			knee := 0.0
			zeroLoad := 0.0
			for _, rate := range openLoopRates() {
				cfg := base
				cfg.InjectionRate = rate
				res := runner.Run(cfg)
				if zeroLoad == 0 {
					zeroLoad = res.AvgLatency
				}
				sat := "no"
				if res.Saturated {
					sat = "yes"
				}
				// The knee: highest load with latency below 1.5x zero-load
				// and no saturation.
				if !res.Saturated && res.AvgLatency < 1.5*zeroLoad {
					knee = rate
				}
				tb.AddRow(pattern.String(), c.name, res.OfferedLoad, res.AcceptedLoad,
					res.AvgLatency, sat)
			}
			summary = append(summary,
				fmt.Sprintf("%s %s: latency knee at offered load ~%.3f flits/cyc/node",
					pattern, c.name, knee))
		}
	}
	return &Report{
		ID:      "fig21",
		Title:   "Open-loop many-to-few-to-many evaluation",
		Table:   tb,
		Summary: summary,
	}
}
