package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsRun exercises every figure/table end to end on a tiny
// two-benchmark suite. It validates the harness plumbing, not the
// calibration (EXPERIMENTS.md records full-scale numbers). Skipped under
// -short.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short mode")
	}
	s := MustNew(Options{Scale: 0.1, Benchmarks: []string{"BIN", "MUM"}})
	for _, id := range IDs() {
		rep, err := s.ByID(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		out := rep.String()
		if !strings.Contains(out, rep.ID) {
			t.Errorf("%s: report does not carry its id:\n%s", id, out)
		}
		if len(rep.Summary) == 0 {
			t.Errorf("%s: no summary lines", id)
		}
		if !strings.Contains(out, "==") {
			t.Errorf("%s: missing table", id)
		}
	}
	// The All() helper must cover every ID except itself.
	if got := len(s.All()); got != len(IDs())-3 {
		// All() runs the paper-order experiments; ablation, resilience and
		// the backend shootout are extras.
		t.Errorf("All() returned %d reports, want %d", got, len(IDs())-3)
	}
}
