package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// resilienceRates is the fault-rate sweep: clean, then three decades up to
// one corrupted-flit chance per hundred link traversals.
var resilienceRates = []float64{0, 1e-4, 1e-3, 1e-2}

// resilienceBench picks one light (LL) and one heavy (HH) benchmark from the
// suite's set, so the sweep covers both a latency-sensitive and a
// bandwidth-saturated workload without running all 31 benchmarks four times.
func (s *Suite) resilienceBench() []workload.Profile {
	var out []workload.Profile
	for _, class := range []string{"LL", "HH"} {
		for _, p := range s.bench {
			if p.Class == class {
				out = append(out, p)
				break
			}
		}
	}
	if len(out) == 0 {
		n := len(s.bench)
		if n > 2 {
			n = 2
		}
		out = s.bench[:n]
	}
	return out
}

// faultyCfg enables the injector at rate with the sweep's fixed seed. A
// tight retransmission deadline keeps recovery fast relative to the
// scaled-down kernels used in sweeps.
func faultyCfg(cfg core.Config, rate float64) core.Config {
	cfg = cfg.WithFaults(rate, 13)
	cfg.Noc.Fault.RetxTimeout = 512
	return cfg
}

// collapseSeeds averages a sweep point's seed replicas into one
// representative result. A single replica — the suite default — passes
// through untouched, so single-seed tables keep their exact bytes. With
// replicas, IPC and the fault counters become means over the replicas that
// finished; Status stays "ok" only when every replica finished and
// otherwise reports the degraded fraction with the first verdict, so a
// partially-degraded point reads as missing data instead of a polluted
// mean.
func collapseSeeds(runs []core.Result) core.Result {
	if len(runs) == 1 {
		return runs[0]
	}
	agg := runs[0]
	var ok int
	var ipc, retries float64
	var retx, dropped uint64
	var firstBad string
	for _, r := range runs {
		if !r.OK() {
			if firstBad == "" {
				firstBad = r.Status
			}
			continue
		}
		ok++
		ipc += r.IPC
		retries += r.AvgRetries
		retx += r.RetxPackets
		dropped += r.DroppedPackets
	}
	if ok == 0 {
		return agg // every replica degraded: report the first as-is
	}
	agg.IPC = ipc / float64(ok)
	agg.AvgRetries = retries / float64(ok)
	agg.RetxPackets = retx / uint64(ok)
	agg.DroppedPackets = dropped / uint64(ok)
	if ok == len(runs) {
		agg.Status = "ok"
	} else {
		agg.Status = fmt.Sprintf("%d/%d %s", len(runs)-ok, len(runs), firstBad)
	}
	return agg
}

// Resilience is this repository's robustness experiment (not in the paper):
// it sweeps the network fault injector's master rate and reports how much
// application throughput the end-to-end retransmission layer retains, for
// the baseline mesh and the checkerboard design. Runs that wedge or hit the
// cycle cap appear as DNF rows with their degradation status instead of
// aborting the sweep.
func (s *Suite) Resilience() *Report {
	tb := stats.NewTable("Resilience: IPC retention under injected network faults",
		"bench", "config", "fault rate", "IPC", "rel IPC", "retx pkts", "dropped", "avg retries", "status")

	configs := []struct {
		name string
		mk   func(workload.Profile) core.Config
	}{
		{"TB-DOR", func(p workload.Profile) core.Config { return core.Baseline(p) }},
		{"CP-CR", func(p workload.Profile) core.Config { return core.Baseline(p).WithCheckerboardRouting() }},
	}
	bench := s.resilienceBench()
	worstRate := resilienceRates[len(resilienceRates)-1]

	// Warm the full (config × benchmark × fault-rate × seed) grid through
	// the sweep planner: each point's seed replicas differ only in Seed,
	// so they coalesce into one lane batch.
	var cfgs []core.Config
	for _, c := range configs {
		for _, p := range bench {
			cfgs = append(cfgs, s.seedReplicas(c.mk(p))...)
			for _, rate := range resilienceRates {
				if rate > 0 {
					cfgs = append(cfgs, s.seedReplicas(faultyCfg(c.mk(p), rate))...)
				}
			}
		}
	}
	s.runAll(cfgs)

	var summary []string
	for _, c := range configs {
		var retained []float64
		for _, p := range bench {
			base := collapseSeeds(s.runSeeds(c.mk(p)))
			for _, rate := range resilienceRates {
				r := base
				if rate > 0 {
					r = collapseSeeds(s.runSeeds(faultyCfg(c.mk(p), rate)))
				}
				rel := "-"
				if r.OK() && base.OK() && base.IPC > 0 {
					frac := r.IPC / base.IPC
					rel = fmt.Sprintf("%.3f", frac)
					if rate == worstRate {
						retained = append(retained, frac)
					}
				}
				status := r.Status
				if status == "" {
					status = "ok"
				}
				tb.AddRow(p.Abbr, c.name, fmt.Sprintf("%g", rate), r.IPC, rel,
					r.RetxPackets, r.DroppedPackets, fmt.Sprintf("%.3f", r.AvgRetries), status)
			}
		}
		if len(retained) > 0 {
			summary = append(summary, fmt.Sprintf(
				"%s retains %.1f%% of fault-free IPC at fault rate %g (hmean of %d benchmarks)",
				c.name, 100*stats.HarmonicMean(retained), worstRate, len(retained)))
		} else {
			summary = append(summary, fmt.Sprintf(
				"%s: no benchmark finished at fault rate %g (see DNF rows)", c.name, worstRate))
		}
	}
	if dnf := s.DNF(); len(dnf) > 0 {
		summary = append(summary, fmt.Sprintf("%d run(s) did not finish: %v", len(dnf), dnf))
	} else {
		summary = append(summary, "all faulty runs recovered: no deadlock, livelock or cycle-cap DNFs")
	}
	return &Report{
		ID:      "resilience",
		Title:   "IPC degradation vs injected fault rate (end-to-end retransmission active)",
		Table:   tb,
		Summary: summary,
	}
}
