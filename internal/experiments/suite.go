// Package experiments regenerates every table and figure of the paper's
// evaluation (§V). Each FigNN/TableNN method returns a Report containing a
// printable table plus summary lines comparing the paper's headline numbers
// with the measured ones. Closed-loop runs are memoized, so figures sharing
// a configuration (e.g. the baseline) reuse each other's simulations.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Options configures a Suite.
type Options struct {
	// Scale multiplies kernel length; 1.0 is the calibrated default.
	// Values below ~0.5 trade accuracy for speed (tests use ~0.2).
	Scale float64
	// Progress, when non-nil, receives one line per completed run.
	Progress io.Writer
	// Benchmarks restricts the suite to the given abbreviations (all 31
	// when empty).
	Benchmarks []string
}

// Report is one regenerated experiment.
type Report struct {
	ID      string
	Title   string
	Table   *stats.Table
	Summary []string // "paper ... / measured ..." comparison lines
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "---- %s: %s ----\n", r.ID, r.Title)
	b.WriteString(r.Table.String())
	for _, s := range r.Summary {
		b.WriteString("  " + s + "\n")
	}
	return b.String()
}

// Suite runs and caches the experiments.
type Suite struct {
	opts  Options
	bench []workload.Profile
	cache map[string]core.Result
	dnf   map[string]core.Result // degraded runs, keyed like cache
}

// New builds a suite.
func New(opts Options) (*Suite, error) {
	if opts.Scale <= 0 {
		opts.Scale = 1.0
	}
	all := workload.Catalog()
	var bench []workload.Profile
	if len(opts.Benchmarks) == 0 {
		bench = all
	} else {
		for _, abbr := range opts.Benchmarks {
			p, err := workload.ByAbbr(abbr)
			if err != nil {
				return nil, err
			}
			bench = append(bench, p)
		}
	}
	return &Suite{opts: opts, bench: bench,
		cache: make(map[string]core.Result), dnf: make(map[string]core.Result)}, nil
}

// MustNew is New but panics on error.
func MustNew(opts Options) *Suite {
	s, err := New(opts)
	if err != nil {
		panic(err)
	}
	return s
}

// Benchmarks returns the profiles the suite runs.
func (s *Suite) Benchmarks() []workload.Profile { return s.bench }

// run executes (or recalls) one closed-loop simulation. A degraded run
// (cycle cap, deadlock, stall) does not abort the suite: the partial result
// is cached with its Status set and recorded as a DNF, so the remaining
// benchmarks still run and the report marks the failure.
func (s *Suite) run(cfg core.Config) core.Result {
	key := cfg.Name + "|" + cfg.Workload.Abbr
	if r, ok := s.cache[key]; ok {
		return r
	}
	r, err := core.Run(cfg.ScaleWork(s.opts.Scale))
	if err != nil {
		if !fault.IsHang(err) {
			panic(fmt.Sprintf("experiments: %s on %s: %v", cfg.Name, cfg.Workload.Abbr, err))
		}
		s.dnf[key] = r
		if s.opts.Progress != nil {
			fmt.Fprintf(s.opts.Progress, "DNF %-16s %-4s %s\n", cfg.Name, cfg.Workload.Abbr, r.Status)
		}
	} else if s.opts.Progress != nil {
		fmt.Fprintf(s.opts.Progress, "ran %-16s %-4s IPC=%.1f\n", cfg.Name, cfg.Workload.Abbr, r.IPC)
	}
	s.cache[key] = r
	return r
}

// DNF lists the degraded runs as "config|bench: status" lines, sorted.
func (s *Suite) DNF() []string {
	out := make([]string, 0, len(s.dnf))
	for key, r := range s.dnf {
		out = append(out, fmt.Sprintf("%s: %s", key, r.Status))
	}
	sort.Strings(out)
	return out
}

// speedups computes per-benchmark IPC ratios between two config builders.
// Benchmarks where either side did not finish are skipped: a DNF's partial
// IPC would corrupt the harmonic-mean aggregates.
func (s *Suite) speedups(baseCfg, newCfg func(workload.Profile) core.Config) map[string]float64 {
	out := make(map[string]float64, len(s.bench))
	for _, p := range s.bench {
		base := s.run(baseCfg(p))
		alt := s.run(newCfg(p))
		if !base.OK() || !alt.OK() {
			continue
		}
		out[p.Abbr] = alt.IPC / base.IPC
	}
	return out
}

// hm aggregates a speedup map with the paper's harmonic mean.
func hm(ratios map[string]float64, only func(abbr string) bool) float64 {
	var vs []float64
	for abbr, r := range ratios {
		if only == nil || only(abbr) {
			vs = append(vs, r)
		}
	}
	return stats.HarmonicMean(vs)
}

// orderedAbbrs returns benchmark abbreviations in Table I / Fig 7 order.
func (s *Suite) orderedAbbrs() []string {
	out := make([]string, len(s.bench))
	for i, p := range s.bench {
		out[i] = p.Abbr
	}
	return out
}

// classOf returns the measured traffic class for a benchmark using the
// §III-B rule: first letter from the perfect-network speedup (>30% = H),
// second from accepted traffic under the perfect network (>1 B/cycle/node).
func classOf(speedup float64, acceptedBytes float64) string {
	first, second := "L", "L"
	if speedup > 1.30 {
		first = "H"
	}
	if acceptedBytes > 1.0 {
		second = "H"
	}
	return first + second
}

// paperClassOf returns the class Table I/Fig 7 assigns.
func paperClassOf(abbr string) string {
	p, err := workload.ByAbbr(abbr)
	if err != nil {
		return "?"
	}
	return p.Class
}

func isClass(class string) func(string) bool {
	return func(abbr string) bool { return paperClassOf(abbr) == class }
}

func pct(ratio float64) string { return fmt.Sprintf("%+.1f%%", 100*(ratio-1)) }

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
