// Package experiments regenerates every table and figure of the paper's
// evaluation (§V). Each FigNN/TableNN method returns a Report containing a
// printable table plus summary lines comparing the paper's headline numbers
// with the measured ones.
//
// Simulations execute through a resilient worker pool (internal/runner):
// figures warm the pool in parallel, then render serially from the
// memoized results, so tables are byte-identical for any -jobs value and
// figures sharing a configuration (e.g. the baseline) reuse each other's
// simulations. Degraded runs — hangs, wall-clock timeouts, panics —
// surface as DNF rows instead of aborting the sweep, and a checkpoint
// journal lets an interrupted sweep resume without re-running finished
// simulations.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Options configures a Suite.
type Options struct {
	// Scale multiplies kernel length; 1.0 is the calibrated default.
	// Values below ~0.5 trade accuracy for speed (tests use ~0.2).
	Scale float64
	// Progress, when non-nil, receives one line per completed run. With
	// more than one worker the line order is nondeterministic; the
	// rendered tables never are.
	Progress io.Writer
	// Benchmarks restricts the suite to the given abbreviations (all 31
	// when empty).
	Benchmarks []string
	// Jobs bounds concurrent simulations; 0 means GOMAXPROCS. Tables are
	// byte-identical for any value: figures render serially from the
	// memoized results.
	Jobs int
	// Shards requests column-band sharding inside each network tick
	// (0 = serial kernel, negative = auto). The runner caps the effective
	// value so Jobs×Shards never oversubscribes GOMAXPROCS; results are
	// bit-identical at any shard count.
	Shards int
	// Lanes coalesces same-configuration/different-seed runs into
	// lane-batched executions of that width (see runner.Options.Lanes and
	// core.RunLanes). Every lane is bit-identical to its solo run, so like
	// Shards it never enters cache keys; 0 and 1 both disable coalescing.
	// When 0, the sweep planner auto-tunes the width per batch instead.
	Lanes int
	// Seeds lists the traffic seeds for figures that average over seed
	// replicas (resilience). The replicas differ only in Seed, so the
	// sweep planner submits each set as one lane batch. Empty keeps every
	// builder's own seed — single-seed tables stay byte-identical.
	Seeds []uint64
	// NoIdleSkip forces edge-by-edge stepping instead of idle-horizon
	// fast-forwarding. Results are bit-identical either way, so like
	// Shards it never enters cache keys; the zero value keeps skipping on.
	NoIdleSkip bool
	// RunTimeout is the per-run wall-clock deadline; a run that exceeds
	// it becomes a "timeout" DNF row. 0 disables the deadline.
	RunTimeout time.Duration
	// Retries is how many extra attempts transient DNFs (stall, timeout)
	// get before being recorded.
	Retries int
	// RetryBackoff overrides the base retry delay (tests); 0 means the
	// runner default.
	RetryBackoff time.Duration
	// Checkpoint is the JSONL journal path recording each finished run;
	// empty disables checkpointing.
	Checkpoint string
	// Resume preloads the Checkpoint journal and skips finished runs.
	Resume bool
	// Context cancels the whole sweep (SIGINT handling in the CLIs);
	// nil means context.Background().
	Context context.Context
}

// Report is one regenerated experiment.
type Report struct {
	ID      string
	Title   string
	Table   *stats.Table
	Summary []string // "paper ... / measured ..." comparison lines
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "---- %s: %s ----\n", r.ID, r.Title)
	b.WriteString(r.Table.String())
	for _, s := range r.Summary {
		b.WriteString("  " + s + "\n")
	}
	return b.String()
}

// Suite runs and caches the experiments. Every simulation goes through a
// runner.Pool, which supplies the worker pool, per-run deadlines, panic
// isolation, retries and the checkpoint journal.
type Suite struct {
	opts     Options
	bench    []workload.Profile
	pool     *runner.Pool
	frontier *explore.Frontier // last Explore result (nil before any)
}

// New builds a suite.
func New(opts Options) (*Suite, error) {
	if opts.Scale <= 0 {
		opts.Scale = 1.0
	}
	all := workload.Catalog()
	var bench []workload.Profile
	if len(opts.Benchmarks) == 0 {
		bench = all
	} else {
		for _, abbr := range opts.Benchmarks {
			p, err := workload.ByAbbr(abbr)
			if err != nil {
				return nil, err
			}
			bench = append(bench, p)
		}
	}
	s := &Suite{opts: opts, bench: bench}
	pool, err := runner.New(opts.Context, runner.Options{
		Jobs:       opts.Jobs,
		Shards:     opts.Shards,
		Lanes:      opts.Lanes,
		RunTimeout: opts.RunTimeout,
		Retries:    opts.Retries,
		Backoff:    opts.RetryBackoff,
		Checkpoint: opts.Checkpoint,
		Resume:     opts.Resume,
		OnDone:     s.report,
	})
	if err != nil {
		return nil, err
	}
	s.pool = pool
	return s, nil
}

// MustNew is New but panics on error.
func MustNew(opts Options) *Suite {
	s, err := New(opts)
	if err != nil {
		panic(err)
	}
	return s
}

// Benchmarks returns the profiles the suite runs.
func (s *Suite) Benchmarks() []workload.Profile { return s.bench }

// report is the pool's serialized completion callback: one progress line
// per freshly executed run. It fires only for real executions, never for
// cache hits or checkpoint-resumed results.
func (s *Suite) report(out runner.Outcome) {
	if s.opts.Progress == nil {
		return
	}
	r := out.Result
	if !out.OK() {
		fmt.Fprintf(s.opts.Progress, "DNF %-16s %-4s %s (attempt %d)\n",
			r.Config, r.Benchmark, r.Status, out.Attempts)
		if out.Stack != "" {
			fmt.Fprintln(s.opts.Progress, out.Stack)
		}
		return
	}
	fmt.Fprintf(s.opts.Progress, "ran %-16s %-4s IPC=%.1f\n", r.Config, r.Benchmark, r.IPC)
}

// run executes (or recalls) one closed-loop simulation. A degraded run
// (cycle cap, deadlock, stall, timeout, panic, or any unexpected error)
// does not abort the suite: the partial result comes back with its Status
// set and is listed by DNF, so the remaining benchmarks still run and the
// report marks the failure.
func (s *Suite) run(cfg core.Config) core.Result {
	cfg = cfg.ScaleWork(s.opts.Scale)
	cfg.NoIdleSkip = s.opts.NoIdleSkip
	return s.pool.Do(cfg).Result
}

// runAll warms the result cache by pushing cfgs through the sweep planner:
// same-configuration/different-seed replicas coalesce into single lane
// batches and groups are ordered for cache/journal locality. Figures call
// it (directly or via prefetch) before their serial rendering loops, which
// then hit the cache; planning is order-insensitive and lanes are
// bit-identical to solo runs, so rendering order — and thus table bytes —
// is independent of the worker count, the lane width and the plan.
func (s *Suite) runAll(cfgs []core.Config) {
	scaled := make([]core.Config, len(cfgs))
	for i, c := range cfgs {
		scaled[i] = c.ScaleWork(s.opts.Scale)
		scaled[i].NoIdleSkip = s.opts.NoIdleSkip
	}
	ctx := s.opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	s.pool.DoAllPlanned(ctx, scaled)
}

// seedReplicas expands cfg into one copy per suite seed. The replicas share
// a lane group — only Seed differs — so runAll submits the set as one lane
// batch. With no seed list the builder's own seed rides through untouched.
func (s *Suite) seedReplicas(cfg core.Config) []core.Config {
	if len(s.opts.Seeds) == 0 {
		return []core.Config{cfg}
	}
	out := make([]core.Config, len(s.opts.Seeds))
	for i, seed := range s.opts.Seeds {
		c := cfg
		c.Seed = seed
		out[i] = c
	}
	return out
}

// runSeeds executes (or recalls) cfg's replica set and returns the per-seed
// results in seed-list order.
func (s *Suite) runSeeds(cfg core.Config) []core.Result {
	reps := s.seedReplicas(cfg)
	out := make([]core.Result, len(reps))
	for i, c := range reps {
		out[i] = s.run(c)
	}
	return out
}

// prefetch warms the cache for every (benchmark × builder) combination.
func (s *Suite) prefetch(builders ...func(workload.Profile) core.Config) {
	cfgs := make([]core.Config, 0, len(s.bench)*len(builders))
	for _, p := range s.bench {
		for _, b := range builders {
			cfgs = append(cfgs, b(p))
		}
	}
	s.runAll(cfgs)
}

// DNF lists the degraded runs as "config|bench: status" lines, sorted;
// runs that needed retries carry their attempt count.
func (s *Suite) DNF() []string {
	var out []string
	for _, o := range s.pool.Outcomes() {
		if o.OK() {
			continue
		}
		line := fmt.Sprintf("%s|%s: %s", o.Result.Config, o.Result.Benchmark, o.Result.Status)
		if o.Attempts > 1 {
			line += fmt.Sprintf(" (attempts %d)", o.Attempts)
		}
		out = append(out, line)
	}
	sort.Strings(out)
	return out
}

// Outcomes snapshots every terminal run outcome (sorted by key).
func (s *Suite) Outcomes() []runner.Outcome { return s.pool.Outcomes() }

// Executed returns how many simulations actually ran in this process
// (cache hits and checkpoint-resumed runs excluded).
func (s *Suite) Executed() int { return s.pool.Executed() }

// SkippedJournalLines returns how many torn trailing checkpoint lines
// resume ignored (an interrupted final append; at most one).
func (s *Suite) SkippedJournalLines() int { return s.pool.Skipped() }

// QuarantinedJournalLines returns how many corrupt checkpoint records
// resume moved to the .corrupt sidecar (CRC mismatch, bad framing, or
// invalid JSON anywhere in the file).
func (s *Suite) QuarantinedJournalLines() int { return s.pool.Quarantined() }

// Close flushes and closes the checkpoint journal.
func (s *Suite) Close() error { return s.pool.Close() }

// speedups computes per-benchmark IPC ratios between two config builders.
// Both sides are warmed through the worker pool first; benchmarks where
// either side did not finish are skipped, since a DNF's partial IPC would
// corrupt the harmonic-mean aggregates.
func (s *Suite) speedups(baseCfg, newCfg func(workload.Profile) core.Config) map[string]float64 {
	s.prefetch(baseCfg, newCfg)
	out := make(map[string]float64, len(s.bench))
	for _, p := range s.bench {
		base := s.run(baseCfg(p))
		alt := s.run(newCfg(p))
		if !base.OK() || !alt.OK() {
			continue
		}
		out[p.Abbr] = alt.IPC / base.IPC
	}
	return out
}

// hm aggregates a speedup map with the paper's harmonic mean. Ratios
// polluted by degraded runs (zero, negative or non-finite) are skipped:
// HarmonicMean has no value for them, and a DNF row must not abort the
// figure that reports it.
func hm(ratios map[string]float64, only func(abbr string) bool) float64 {
	var vs []float64
	for abbr, r := range ratios {
		if r <= 0 || math.IsInf(r, 0) || math.IsNaN(r) {
			continue
		}
		if only == nil || only(abbr) {
			vs = append(vs, r)
		}
	}
	return stats.HarmonicMean(vs)
}

// orderedAbbrs returns benchmark abbreviations in Table I / Fig 7 order.
func (s *Suite) orderedAbbrs() []string {
	out := make([]string, len(s.bench))
	for i, p := range s.bench {
		out[i] = p.Abbr
	}
	return out
}

// classOf returns the measured traffic class for a benchmark using the
// §III-B rule: first letter from the perfect-network speedup (>30% = H),
// second from accepted traffic under the perfect network (>1 B/cycle/node).
func classOf(speedup float64, acceptedBytes float64) string {
	first, second := "L", "L"
	if speedup > 1.30 {
		first = "H"
	}
	if acceptedBytes > 1.0 {
		second = "H"
	}
	return first + second
}

// paperClassOf returns the class Table I/Fig 7 assigns.
func paperClassOf(abbr string) string {
	p, err := workload.ByAbbr(abbr)
	if err != nil {
		return "?"
	}
	return p.Class
}

func isClass(class string) func(string) bool {
	return func(abbr string) bool { return paperClassOf(abbr) == class }
}

// pct renders a speedup ratio. Real IPC/latency ratios are strictly
// positive; zero only reaches here when every contributing run was a DNF
// (e.g. an empty harmonic mean), which must read as missing data, not
// as a -100% slowdown.
func pct(ratio float64) string {
	if ratio <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(ratio-1))
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
