package experiments

import (
	"repro/internal/area"
	"repro/internal/noc"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// Ablations sweeps the design knobs around the paper's chosen point and
// reports each variant's saturation reply throughput (the quantity the
// many-to-few-to-many bottleneck is about) together with its router area,
// so the throughput/area trade of each choice is visible:
//
//   - virtual channels per port (paper: 2 baseline, 4 for CR)
//   - buffer depth per VC (paper: 8 flits)
//   - router pipeline depth (paper: 4-stage; 1-cycle is not worth its cost)
//   - MC placement (top-bottom vs staggered checkerboard)
//   - channel width (8/16/32 bytes)
//   - MC injection ports (1 vs 2)
//
// This is the repository's extension of the paper's §V sensitivity
// arguments into an explicit ablation table.
func (s *Suite) Ablations() *Report {
	tb := stats.NewTable("Ablations: saturation reply throughput vs router area",
		"variant", "reply B/cyc/MC", "router mm^2 (sum)", "B/cyc/MC per mm^2")

	type variant struct {
		name   string
		cfg    noc.Config
		sliced bool
	}
	mk := func(mutate func(*noc.Config)) noc.Config {
		cfg := noc.DefaultConfig()
		cfg.Checkerboard = true
		cfg.Routing = noc.RoutingCheckerboard
		cfg.MCs = noc.CheckerboardPlacement(6, 6, 8)
		cfg.NumVCs = 4
		mutate(&cfg)
		return cfg
	}
	variants := []variant{
		{"paper point (CP-CR 16B 4VC d8)", mk(func(*noc.Config) {}), false},
		{"VCs=2 (DOR only)", func() noc.Config {
			cfg := noc.DefaultConfig()
			cfg.MCs = noc.CheckerboardPlacement(6, 6, 8)
			return cfg
		}(), false},
		{"VCs=8", mk(func(c *noc.Config) { c.NumVCs = 8 }), false},
		{"buffers=4", mk(func(c *noc.Config) { c.BufDepth = 4 }), false},
		{"buffers=16", mk(func(c *noc.Config) { c.BufDepth = 16 }), false},
		{"1-cycle routers", mk(func(c *noc.Config) { c.RouterStages = 1; c.HalfRouterStages = 1 }), false},
		{"top-bottom placement (DOR)", noc.DefaultConfig(), false},
		{"channels=32B", mk(func(c *noc.Config) { c.FlitBytes = 32 }), false},
		{"MC inj ports=2", mk(func(c *noc.Config) { c.MCInjPorts = 2 }), false},
		{"ROMM, full routers (CP)", func() noc.Config {
			cfg := noc.DefaultConfig()
			cfg.MCs = noc.CheckerboardPlacement(6, 6, 8)
			cfg.Routing = noc.RoutingROMM
			cfg.NumVCs = 4
			return cfg
		}(), false},
	}

	probe := traffic.DefaultConfig()
	probe.InjectionRate = 0.30 // far past saturation: measures capacity
	probe.DrainCycles = 0
	if s.opts.Scale < 1 {
		probe.WarmupCycles = 500
		probe.MeasureCycles = 2500
	}

	var summary []string
	for _, v := range variants {
		res := traffic.NewMeshRunner(v.cfg).Run(probe)
		bytesPerMC := res.ReplyInjectRate * 64
		routers := area.FromConfig(v.cfg, v.sliced).Routers
		tb.AddRow(v.name, bytesPerMC, routers, bytesPerMC/routers)
	}
	summary = append(summary,
		"paper's choices sit near the knee: more VCs/buffers/width add area faster than reply throughput",
		"2 MC injection ports add throughput at ~1% router-area cost (§V-F)")
	return &Report{
		ID:      "ablation",
		Title:   "Design-knob ablation around the throughput-effective point",
		Table:   tb,
		Summary: summary,
	}
}
