package experiments

import (
	"fmt"

	"repro/internal/area"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Shootout compares the three topology backends end to end: the same
// closed-loop system and benchmark set on the baseline mesh, the Wu-style
// bidirectional ring and the BaseJump single-flit mesh, scored by the
// paper's throughput-effectiveness metric — IPC per mm² of die area. The
// mesh buys bisection bandwidth with big 5-port routers; the ring spends
// almost nothing on routers but serializes everything through two links;
// BaseJump pays for 64 B channels but needs only one VC per class and
// 2-flit buffers. The table makes the trade explicit.
func (s *Suite) Shootout() *Report {
	type entry struct {
		name  string
		build func(workload.Profile) core.Config
	}
	entries := []entry{
		{"Mesh (TB-DOR)", core.Baseline},
		{"Ring", core.Ring},
		{"BaseJump", core.BaseJump},
	}
	s.prefetch(core.Baseline, core.Ring, core.BaseJump)

	tb := stats.NewTable("Backend shootout: throughput-effectiveness by topology",
		"backend", "HM IPC", "NoC mm^2", "chip mm^2", "IPC/mm^2 x1000", "vs mesh")

	var summary []string
	var meshTE float64
	for i, e := range entries {
		var ipcs []float64
		for _, p := range s.bench {
			res := s.run(e.build(p))
			if !res.OK() || res.IPC <= 0 {
				continue // DNFs are listed separately; a partial IPC would skew the mean
			}
			ipcs = append(ipcs, res.IPC)
		}
		ipc := stats.HarmonicMean(ipcs)
		na := area.FromConfig(e.build(s.bench[0]).Noc, false)
		te := area.ThroughputEffectiveness(ipc, na)
		rel := "1.00x"
		if i == 0 {
			meshTE = te
		} else if meshTE > 0 {
			rel = fmt.Sprintf("%.2fx", te/meshTE)
		}
		tb.AddRow(e.name, ipc, na.NoC(), na.Chip(), te*1000, rel)
		summary = append(summary, fmt.Sprintf(
			"%s: HM IPC %.2f over %d/%d benchmarks, NoC %.1f mm^2, IPC/mm^2 %.5f",
			e.name, ipc, len(ipcs), len(s.bench), na.NoC(), te))
	}
	return &Report{
		ID:      "shootout",
		Title:   "IPC per mm^2 across topology backends",
		Table:   tb,
		Summary: summary,
	}
}
