package experiments

import (
	"fmt"

	"repro/internal/explore"
	"repro/internal/stats"
)

// Explore runs the design-space exploration engine (internal/explore) on
// the suite's worker pool: the default multi-topology grid is driven
// through successive-halving rungs and scored — like the resilience sweep —
// on one light (LL) and one heavy (HH) benchmark from the suite's set, so
// the frontier reflects both latency- and bandwidth-bound behaviour without
// multiplying the grid by all 31 workloads. Seed replicas (Options.Seeds)
// ride the sweep planner as single lane batches; the suite's checkpoint
// journal makes the exploration resumable mid-rung.
func (s *Suite) Explore() (*Report, error) {
	ex, err := explore.New(s.pool, explore.Options{
		Benchmarks: s.resilienceBench(),
		Seeds:      s.opts.Seeds,
		Scale:      s.opts.Scale,
		Jobs:       s.opts.Jobs,
		NoIdleSkip: s.opts.NoIdleSkip,
		Progress:   s.opts.Progress,
	})
	if err != nil {
		return nil, err
	}
	ctx := s.opts.Context
	f, err := ex.Run(ctx)
	if err != nil {
		return nil, err
	}
	s.frontier = f

	tb := stats.NewTable("Explore: throughput-effectiveness Pareto frontier",
		"candidate", "IPC (hmean)", "NoC mm^2", "chip mm^2", "IPC/mm^2", "runs", "dnf")
	for _, pt := range f.Points {
		tb.AddRow(pt.Candidate, pt.IPC, pt.NoCArea, pt.ChipArea,
			fmt.Sprintf("%.5f", pt.TE), pt.Runs, pt.DNF)
	}

	var summary []string
	summary = append(summary, fmt.Sprintf(
		"grid: %d valid candidates over %v; frontier: %d of %d final survivors",
		f.Grid, f.Benchmarks, len(f.Points), len(f.Survivors)))
	for _, rl := range f.Rungs {
		line := fmt.Sprintf("rung %d (budget %.2f, margin %.2f): %d entered, %d killed, %d dnf, %d promoted",
			rl.Index, rl.Budget, rl.Margin, rl.Entered, len(rl.Killed), len(rl.DNF), rl.Promoted)
		if len(rl.DNF) > 0 {
			line += fmt.Sprintf(" %v", rl.DNF)
		}
		summary = append(summary, line)
	}
	summary = append(summary, fmt.Sprintf(
		"successive halving killed %d of %d candidate(s) before full-length runs; simulated %d of ~%d exhaustive icnt cycles (%.1fx saved)",
		f.KilledEarly, f.Grid, f.SimulatedCycles, f.ExhaustiveCycles, f.CycleSavings()))
	summary = append(summary, fmt.Sprintf(
		"validation: paper combined design %s on frontier: %v", f.PaperPoint, f.PaperPointOnFrontier))

	return &Report{
		ID:      "explore",
		Title:   "Successive-halving design-space exploration (IPC vs chip mm^2)",
		Table:   tb,
		Summary: summary,
	}, nil
}

// Frontier returns the machine-readable result of the last Explore call
// (nil before any). The CLIs serialize it with its JSON method and feed its
// early-termination savings into the closing stats.Outcomes summary.
func (s *Suite) Frontier() *explore.Frontier { return s.frontier }
