package experiments

import (
	"strings"
	"testing"
)

// TestExploreExperimentReport drives the design-space exploration through
// the suite registration ("explore" is invoked by name, not part of All):
// the report carries the frontier table, the rung accounting and the
// validation line, and the machine-readable frontier is exposed for the
// CLI's -frontier-json and savings summary. Scale 0.002 floors every rung
// to probe-length kernels, so the full default grid stays cheap.
func TestExploreExperimentReport(t *testing.T) {
	if testing.Short() {
		t.Skip("default-grid exploration skipped in -short mode")
	}
	s, err := New(Options{Scale: 0.002, Benchmarks: []string{"MUM"}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Frontier() != nil {
		t.Fatal("Frontier() non-nil before any Explore call")
	}
	rep, err := s.ByID("explore")
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	for _, want := range []string{"explore", "Pareto frontier", "rung 0", "rung 2",
		"successive halving killed", "validation: paper combined design"} {
		if !strings.Contains(out, want) {
			t.Errorf("explore report missing %q:\n%s", want, out)
		}
	}
	f := s.Frontier()
	if f == nil {
		t.Fatal("Frontier() nil after Explore")
	}
	if f.SimulatedCycles == 0 || len(f.Points) == 0 {
		t.Errorf("frontier missing data: %d points, %d simulated cycles", len(f.Points), f.SimulatedCycles)
	}
	if _, err := f.JSON(); err != nil {
		t.Fatalf("frontier JSON: %v", err)
	}
}

// TestResilienceSeedsByteIdentical is the satellite guard: routing seed
// replicas through the sweep planner must not change a single byte of the
// default single-seed table — and pinning Seeds to the builders' own seed
// is the same sweep by cache identity, so it cannot re-simulate anything.
func TestResilienceSeedsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("resilience sweep comparison skipped in -short mode")
	}
	base, err := New(Options{Scale: 0.1, Benchmarks: []string{"BIN", "MUM"}})
	if err != nil {
		t.Fatal(err)
	}
	want := base.Resilience().String()

	seeded, err := New(Options{Scale: 0.1, Benchmarks: []string{"BIN", "MUM"}, Seeds: []uint64{1}})
	if err != nil {
		t.Fatal(err)
	}
	got := seeded.Resilience().String()
	if got != want {
		t.Errorf("Seeds{1} resilience table differs from default:\n--- default ---\n%s--- seeded ---\n%s", want, got)
	}
	if seeded.Executed() != base.Executed() {
		t.Errorf("Seeds{1} executed %d runs, default %d — same sweep expected", seeded.Executed(), base.Executed())
	}
}

// TestResilienceSeedAveraging: with real replicas the sweep runs once per
// seed and the rows average the finished replicas.
func TestResilienceSeedAveraging(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed resilience sweep skipped in -short mode")
	}
	single, err := New(Options{Scale: 0.1, Benchmarks: []string{"MUM"}})
	if err != nil {
		t.Fatal(err)
	}
	single.Resilience()

	multi, err := New(Options{Scale: 0.1, Benchmarks: []string{"MUM"}, Seeds: []uint64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	rep := multi.Resilience()
	if got, want := multi.Executed(), 2*single.Executed(); got != want {
		t.Errorf("two-seed sweep executed %d runs, want %d (twice the single-seed sweep)", got, want)
	}
	if !strings.Contains(rep.String(), "retains") && !strings.Contains(rep.String(), "no benchmark finished") {
		t.Errorf("multi-seed resilience summary malformed:\n%s", rep)
	}
}
