package experiments

import (
	"fmt"

	"repro/internal/area"
	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig7 measures the perfect-network speedup over the baseline mesh and the
// LL/LH/HH classification (paper: HM 36% overall, 87% for HH).
func (s *Suite) Fig7() *Report {
	tb := stats.NewTable("Fig 7: speedup of a perfect NoC over baseline",
		"bench", "class(paper)", "class(measured)", "baseIPC", "perfIPC", "speedup", "B/cyc/node")
	s.prefetch(core.Baseline, core.Perfect)
	ratios := map[string]float64{}
	for _, p := range s.bench {
		base := s.run(core.Baseline(p))
		perf := s.run(core.Perfect(p))
		if !base.OK() || !perf.OK() || base.IPC <= 0 {
			tb.AddRow(p.Abbr, p.Class, "-", base.IPC, perf.IPC, "DNF", perf.AcceptedBytes)
			continue
		}
		ratio := perf.IPC / base.IPC
		ratios[p.Abbr] = ratio
		tb.AddRow(p.Abbr, p.Class, classOf(ratio, perf.AcceptedBytes),
			base.IPC, perf.IPC, pct(ratio), perf.AcceptedBytes)
	}
	overall := hm(ratios, nil)
	hhOnly := hm(ratios, isClass("HH"))
	return &Report{
		ID:    "fig7",
		Title: "Perfect interconnect speedup and traffic classes",
		Table: tb,
		Summary: []string{
			fmt.Sprintf("HM speedup all benchmarks: paper +36%%, measured %s", pct(overall)),
			fmt.Sprintf("HM speedup HH benchmarks:  paper +87%%, measured %s", pct(hhOnly)),
		},
	}
}

// Fig8 correlates the perfect-network speedup with the MC injection rate
// (paper: strong positive correlation, pointing at the reply bottleneck).
func (s *Suite) Fig8() *Report {
	tb := stats.NewTable("Fig 8: perfect-NoC speedup vs MC injection rate",
		"bench", "class", "mcInj(flits/cyc/node)", "speedup")
	s.prefetch(core.Baseline, core.Perfect)
	type pt struct{ x, y float64 }
	var pts []pt
	for _, p := range s.bench {
		base := s.run(core.Baseline(p))
		perf := s.run(core.Perfect(p))
		if !base.OK() || !perf.OK() || base.IPC <= 0 {
			tb.AddRow(p.Abbr, p.Class, perf.MCInjRate, "DNF")
			continue
		}
		ratio := perf.IPC / base.IPC
		tb.AddRow(p.Abbr, p.Class, perf.MCInjRate, pct(ratio))
		pts = append(pts, pt{x: perf.MCInjRate, y: ratio})
	}
	// Pearson correlation between log-ish variables, as a summary.
	var sx, sy, sxx, syy, sxy float64
	for _, p := range pts {
		sx += p.x
		sy += p.y
		sxx += p.x * p.x
		syy += p.y * p.y
		sxy += p.x * p.y
	}
	n := float64(len(pts))
	corr := (n*sxy - sx*sy) / (sqrt(n*sxx-sx*sx) * sqrt(n*syy-sy*sy))
	return &Report{
		ID:    "fig8",
		Title: "Speedup correlates with memory-node injection rate",
		Table: tb,
		Summary: []string{
			fmt.Sprintf("correlation(speedup, MC injection rate): paper 'correlated', measured r=%.2f", corr),
		},
	}
}

func sqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	x := v
	for i := 0; i < 40; i++ {
		x = (x + v/x) / 2
	}
	return x
}

// Fig9 compares doubling channel bandwidth against 1-cycle routers
// (paper: +27% HM vs +2.3% HM).
func (s *Suite) Fig9() *Report {
	tb := stats.NewTable("Fig 9: bandwidth vs latency scaling",
		"bench", "class", "2xBW speedup", "1-cycle speedup")
	s.prefetch(core.Baseline,
		func(p workload.Profile) core.Config { return core.Baseline(p).With2xBW() },
		func(p workload.Profile) core.Config { return core.Baseline(p).With1CycleRouters() })
	bw := map[string]float64{}
	lat := map[string]float64{}
	for _, p := range s.bench {
		base := s.run(core.Baseline(p))
		b2 := s.run(core.Baseline(p).With2xBW())
		l1 := s.run(core.Baseline(p).With1CycleRouters())
		if !base.OK() || !b2.OK() || !l1.OK() || base.IPC <= 0 {
			tb.AddRow(p.Abbr, p.Class, "DNF", "DNF")
			continue
		}
		bw[p.Abbr] = b2.IPC / base.IPC
		lat[p.Abbr] = l1.IPC / base.IPC
		tb.AddRow(p.Abbr, p.Class, pct(bw[p.Abbr]), pct(lat[p.Abbr]))
	}
	return &Report{
		ID:    "fig9",
		Title: "Scaling bandwidth helps, scaling router latency barely does",
		Table: tb,
		Summary: []string{
			fmt.Sprintf("HM 2x-bandwidth speedup: paper +27%%, measured %s", pct(hm(bw, nil))),
			fmt.Sprintf("HM 1-cycle-router speedup: paper +2.3%%, measured %s", pct(hm(lat, nil))),
		},
	}
}

// Fig10 reports the network-latency ratio of 1-cycle vs 4-cycle routers
// (paper: 0.5-0.9 across benchmarks).
func (s *Suite) Fig10() *Report {
	tb := stats.NewTable("Fig 10: NoC latency ratio, 1-cycle vs 4-cycle routers",
		"bench", "class", "lat(4cyc)", "lat(1cyc)", "ratio")
	s.prefetch(core.Baseline,
		func(p workload.Profile) core.Config { return core.Baseline(p).With1CycleRouters() })
	lo, hi := 10.0, 0.0
	for _, p := range s.bench {
		base := s.run(core.Baseline(p))
		fast := s.run(core.Baseline(p).With1CycleRouters())
		if !base.OK() || !fast.OK() || base.AvgNetLatency <= 0 {
			tb.AddRow(p.Abbr, p.Class, base.AvgNetLatency, fast.AvgNetLatency, "DNF")
			continue
		}
		ratio := fast.AvgNetLatency / base.AvgNetLatency
		if ratio < lo {
			lo = ratio
		}
		if ratio > hi {
			hi = ratio
		}
		tb.AddRow(p.Abbr, p.Class, base.AvgNetLatency, fast.AvgNetLatency, ratio)
	}
	return &Report{
		ID:    "fig10",
		Title: "Aggressive routers cut network latency but not runtime",
		Table: tb,
		Summary: []string{
			fmt.Sprintf("latency ratio range: paper ~0.5-0.9, measured %.2f-%.2f", lo, hi),
		},
	}
}

// Fig11 reports the fraction of time MC reply injection is blocked
// (paper: up to ~70% for HH benchmarks).
func (s *Suite) Fig11() *Report {
	tb := stats.NewTable("Fig 11: fraction of time MCs are stalled by the reply network",
		"bench", "class", "stall")
	s.prefetch(core.Baseline)
	maxStall := 0.0
	for _, p := range s.bench {
		base := s.run(core.Baseline(p))
		if base.MCStallFraction > maxStall {
			maxStall = base.MCStallFraction
		}
		tb.AddRow(p.Abbr, p.Class, fmt.Sprintf("%.1f%%", 100*base.MCStallFraction))
	}
	return &Report{
		ID:    "fig11",
		Title: "Reply-path blocking at the memory controllers",
		Table: tb,
		Summary: []string{
			fmt.Sprintf("max MC stall fraction: paper ~70%%, measured %.0f%%", 100*maxStall),
		},
	}
}

// Fig16 measures checkerboard (staggered) MC placement against top-bottom
// (paper: +13.2% HM).
func (s *Suite) Fig16() *Report {
	tb := stats.NewTable("Fig 16: checkerboard placement vs top-bottom (2 VCs)",
		"bench", "class", "speedup")
	ratios := s.speedups(core.Baseline, func(p workload.Profile) core.Config {
		return core.Baseline(p).WithCheckerboardPlacement()
	})
	for _, abbr := range s.orderedAbbrs() {
		tb.AddRow(abbr, paperClassOf(abbr), pct(ratios[abbr]))
	}
	return &Report{
		ID:    "fig16",
		Title: "Staggered MC placement",
		Table: tb,
		Summary: []string{
			fmt.Sprintf("HM speedup: paper +13.2%%, measured %s", pct(hm(ratios, nil))),
		},
	}
}

// Fig17 compares DOR-4VC and checkerboard-routing-4VC against DOR-2VC, all
// with checkerboard placement (paper: CR costs only ~1.1% vs DOR-4VC while
// halving router area).
func (s *Suite) Fig17() *Report {
	tb := stats.NewTable("Fig 17: relative performance vs CP-DOR-2VC",
		"bench", "class", "CP-DOR-4VC", "CP-CR-4VC")
	base := func(p workload.Profile) core.Config {
		return core.Baseline(p).WithCheckerboardPlacement()
	}
	dor4 := s.speedups(base, func(p workload.Profile) core.Config {
		return core.Baseline(p).WithCheckerboardPlacement().WithVCs(4)
	})
	cr4 := s.speedups(base, func(p workload.Profile) core.Config {
		return core.Baseline(p).WithCheckerboardRouting()
	})
	for _, abbr := range s.orderedAbbrs() {
		tb.AddRow(abbr, paperClassOf(abbr), pct(dor4[abbr]), pct(cr4[abbr]))
	}
	crVsDor := hm(cr4, nil) / hm(dor4, nil)
	return &Report{
		ID:    "fig17",
		Title: "Checkerboard routing with half-routers",
		Table: tb,
		Summary: []string{
			fmt.Sprintf("HM CP-DOR-4VC vs 2VC: measured %s", pct(hm(dor4, nil))),
			fmt.Sprintf("HM CP-CR-4VC vs 2VC:  measured %s", pct(hm(cr4, nil))),
			fmt.Sprintf("CR cost vs DOR-4VC: paper -1.1%%, measured %s", pct(crVsDor)),
		},
	}
}

// Fig18 compares the channel-sliced double network against the single
// 16-byte 4-VC network (paper: ~+1% HM; our harsher memory-bound workloads
// make the 1-port double network lose more, see EXPERIMENTS.md).
func (s *Suite) Fig18() *Report {
	tb := stats.NewTable("Fig 18: double 8B network vs single 16B 4VC network",
		"bench", "class", "speedup")
	ratios := s.speedups(func(p workload.Profile) core.Config {
		return core.Baseline(p).WithCheckerboardRouting()
	}, func(p workload.Profile) core.Config {
		return core.Baseline(p).WithCheckerboardRouting().WithDoubleNetwork()
	})
	for _, abbr := range s.orderedAbbrs() {
		tb.AddRow(abbr, paperClassOf(abbr), pct(ratios[abbr]))
	}
	return &Report{
		ID:    "fig18",
		Title: "Channel slicing",
		Table: tb,
		Summary: []string{
			fmt.Sprintf("HM speedup: paper ~+1%%, measured %s", pct(hm(ratios, nil))),
		},
	}
}

// Fig19 measures multi-port MC routers on top of the double network
// (paper: injection ports give the wins, up to ~25% for HH; ejection ports
// help only a few benchmarks).
func (s *Suite) Fig19() *Report {
	tb := stats.NewTable("Fig 19: multi-port MC routers vs double network",
		"bench", "class", "2 inj ports", "2 ej ports", "2 inj + 2 ej")
	base := func(p workload.Profile) core.Config {
		return core.Baseline(p).WithCheckerboardRouting().WithDoubleNetwork()
	}
	twoP := s.speedups(base, func(p workload.Profile) core.Config {
		return core.Baseline(p).WithCheckerboardRouting().WithDoubleNetwork().WithMCInjectionPorts(2)
	})
	twoE := s.speedups(base, func(p workload.Profile) core.Config {
		return core.Baseline(p).WithCheckerboardRouting().WithDoubleNetwork().WithMCEjectionPorts(2)
	})
	both := s.speedups(base, func(p workload.Profile) core.Config {
		return core.Baseline(p).WithCheckerboardRouting().WithDoubleNetwork().
			WithMCInjectionPorts(2).WithMCEjectionPorts(2)
	})
	maxP := 0.0
	for _, abbr := range s.orderedAbbrs() {
		if twoP[abbr] > maxP {
			maxP = twoP[abbr]
		}
		tb.AddRow(abbr, paperClassOf(abbr), pct(twoP[abbr]), pct(twoE[abbr]), pct(both[abbr]))
	}
	return &Report{
		ID:    "fig19",
		Title: "Extra terminal bandwidth at the few MC nodes",
		Table: tb,
		Summary: []string{
			fmt.Sprintf("HM 2-injection-port speedup: measured %s (paper: HH gains up to ~25%%)", pct(hm(twoP, nil))),
			fmt.Sprintf("max 2-injection-port speedup: paper ~+25%%, measured %s", pct(maxP)),
			fmt.Sprintf("HM 2-ejection-port speedup: paper ~0%% (few benchmarks), measured %s", pct(hm(twoE, nil))),
		},
	}
}

// Fig20 measures the combined throughput-effective design against the
// baseline (paper: +17% HM, about half of the perfect network's +36%).
// Alongside the paper-exact configuration (with channel slicing) it reports
// the single-network variant, which is where the combined gains appear in
// this reproduction (see EXPERIMENTS.md on the Fig 18 deviation).
func (s *Suite) Fig20() *Report {
	tb := stats.NewTable("Fig 20: combined throughput-effective design vs baseline",
		"bench", "class", "Thr.Eff. (paper cfg)", "Thr.Eff. (single net)")
	ratios := s.speedups(core.Baseline, core.ThroughputEffective)
	single := s.speedups(core.Baseline, core.ThroughputEffectiveSingle)
	for _, abbr := range s.orderedAbbrs() {
		tb.AddRow(abbr, paperClassOf(abbr), pct(ratios[abbr]), pct(single[abbr]))
	}
	return &Report{
		ID:    "fig20",
		Title: "CP + CR + double network + 2 injection ports",
		Table: tb,
		Summary: []string{
			fmt.Sprintf("HM speedup, paper config (CP+CR+double+2P): paper +17%%, measured %s", pct(hm(ratios, nil))),
			fmt.Sprintf("HM speedup, single-network variant (CP+CR+2P): measured %s", pct(hm(single, nil))),
		},
	}
}

// Fig6 is the limit study: application throughput (and throughput per unit
// area) under a zero-latency network with a swept aggregate bandwidth cap
// (paper: ~93%% of infinite-bandwidth throughput at the baseline bisection,
// knee of throughput/cost at 0.7-0.8x DRAM bandwidth).
func (s *Suite) Fig6() *Report {
	xs := []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.816, 0.9, 1.0, 1.2, 1.4, 1.6}
	tb := stats.NewTable("Fig 6: ideal-NoC bandwidth limit study",
		"BW fraction of DRAM", "HM IPC", "normalized", "norm. IPC/area")
	// Warm the whole (benchmark × bandwidth-cap) grid in parallel.
	var cfgs []core.Config
	for _, p := range s.bench {
		cfgs = append(cfgs, core.Perfect(p))
		for _, x := range xs {
			cfgs = append(cfgs, core.IdealCapped(p, core.Baseline(p).CapForBWFraction(x)))
		}
	}
	s.runAll(cfgs)
	// Infinite-bandwidth reference.
	ref := map[string]float64{}
	for _, p := range s.bench {
		ref[p.Abbr] = s.run(core.Perfect(p)).IPC
	}
	baseNoC := area.FromConfig(noc.DefaultConfig(), false).NoC()
	var atBaseline float64
	bestCostX, bestCost := 0.0, 0.0
	for _, x := range xs {
		ratios := map[string]float64{}
		for _, p := range s.bench {
			capFlits := core.Baseline(p).CapForBWFraction(x)
			r := s.run(core.IdealCapped(p, capFlits))
			ratios[p.Abbr] = r.IPC / ref[p.Abbr]
		}
		norm := hm(ratios, nil)
		// NoC area scales with the square of channel bandwidth (§III-A);
		// x=0.816 corresponds to the baseline 16-byte channels.
		chip := area.ComputeAreaMM2 + baseNoC*(x/0.816)*(x/0.816)
		cost := norm / chip * area.ChipAreaMM2 // normalized so baseline chip = 1
		if x == 0.816 {
			atBaseline = norm
		}
		if cost > bestCost {
			bestCost, bestCostX = cost, x
		}
		var ipcs []float64
		for _, p := range s.bench {
			ipcs = append(ipcs, ratios[p.Abbr]*ref[p.Abbr])
		}
		tb.AddRow(x, stats.HarmonicMean(ipcs), norm, cost)
	}
	return &Report{
		ID:    "fig6",
		Title: "Balanced bisection bandwidth",
		Table: tb,
		Summary: []string{
			fmt.Sprintf("throughput at baseline bisection (x=0.816): paper 93%%, measured %.0f%%", 100*atBaseline),
			fmt.Sprintf("throughput/cost optimum: paper x~0.7-0.8, measured x=%.2f", bestCostX),
		},
	}
}

// Fig2 places the four design points of the design-space figure: balanced
// mesh, 2x-bandwidth mesh, throughput-effective design, and the ideal NoC.
func (s *Suite) Fig2() *Report {
	tb := stats.NewTable("Fig 2: throughput-effective design space",
		"design", "avg IPC", "chip mm^2", "IPC/mm^2", "vs baseline")
	type point struct {
		name string
		cfg  func(workload.Profile) core.Config
		area area.NetworkArea
	}
	teCfg := core.ThroughputEffective(s.bench[0])
	teSingleCfg := core.ThroughputEffectiveSingle(s.bench[0])
	pts := []point{
		{"Balanced Mesh", core.Baseline, area.FromConfig(noc.DefaultConfig(), false)},
		{"2x BW", func(p workload.Profile) core.Config { return core.Baseline(p).With2xBW() },
			area.FromConfig(with2x(), false)},
		{"Thr. Eff.", core.ThroughputEffective, area.FromConfig(teCfg.Noc, true)},
		{"Thr. Eff. (1net)", core.ThroughputEffectiveSingle, area.FromConfig(teSingleCfg.Noc, false)},
		{"Ideal NoC", core.Perfect, area.NetworkArea{}},
	}
	builders := make([]func(workload.Profile) core.Config, len(pts))
	for i, pt := range pts {
		builders[i] = pt.cfg
	}
	s.prefetch(builders...)
	var baseEff float64
	var rows []string
	for _, pt := range pts {
		var ipcs []float64
		for _, p := range s.bench {
			ipcs = append(ipcs, s.run(pt.cfg(p)).IPC)
		}
		avg := stats.ArithmeticMean(ipcs)
		eff := avg / pt.area.Chip()
		if pt.name == "Balanced Mesh" {
			baseEff = eff
		}
		tb.AddRow(pt.name, avg, pt.area.Chip(), eff, pct(eff/baseEff))
		rows = append(rows, fmt.Sprintf("%s: %.3f IPC/mm^2", pt.name, eff))
	}
	_ = rows
	return &Report{
		ID:    "fig2",
		Title: "Design points in throughput vs inverse-area space",
		Table: tb,
		Summary: []string{
			"paper: Thr.Eff. strictly dominates 2x BW (more throughput/area); see rows above",
		},
	}
}

func with2x() noc.Config {
	cfg := noc.DefaultConfig()
	cfg.FlitBytes *= 2
	return cfg
}

// Headline computes the +25.4% IPC/mm² claim: Fig 20's HM IPC gain combined
// with Table VI's area reduction, for both the paper-exact combined design
// and the single-network variant.
func (s *Suite) Headline() *Report {
	baseArea := area.FromConfig(noc.DefaultConfig(), false)

	ratios := s.speedups(core.Baseline, core.ThroughputEffective)
	ipcGain := hm(ratios, nil)
	teArea := area.FromConfig(core.ThroughputEffective(s.bench[0]).Noc, true)
	gain := ipcGain * baseArea.Chip() / teArea.Chip()

	singleRatios := s.speedups(core.Baseline, core.ThroughputEffectiveSingle)
	singleIPC := hm(singleRatios, nil)
	singleArea := area.FromConfig(core.ThroughputEffectiveSingle(s.bench[0]).Noc, false)
	singleGain := singleIPC * baseArea.Chip() / singleArea.Chip()

	tb := stats.NewTable("Headline: throughput-effectiveness",
		"metric", "paper", "measured (paper cfg)", "measured (single net)")
	tb.AddRow("HM IPC gain", "+17%", pct(ipcGain), pct(singleIPC))
	tb.AddRow("chip area (mm^2)", 537.44, teArea.Chip(), singleArea.Chip())
	tb.AddRow("IPC/mm^2 gain", "+25.4%", pct(gain), pct(singleGain))
	return &Report{
		ID:    "headline",
		Title: "IPC per mm^2 of the combined design",
		Table: tb,
		Summary: []string{
			fmt.Sprintf("throughput-effectiveness gain, paper config: paper +25.4%%, measured %s", pct(gain)),
			fmt.Sprintf("throughput-effectiveness gain, single-network variant: measured %s", pct(singleGain)),
		},
	}
}
