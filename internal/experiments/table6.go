package experiments

import (
	"fmt"

	"repro/internal/area"
	"repro/internal/noc"
	"repro/internal/stats"
)

// Table6 regenerates the area table (paper Table VI) from the analytic
// ORION-fitted model.
func (s *Suite) Table6() *Report {
	tb := stats.NewTable("Table VI: area estimations (mm^2, 65nm)",
		"config", "router area sum", "link area sum", "NoC overhead", "total chip")

	type row struct {
		name   string
		cfg    noc.Config
		sliced bool
		paper  [2]float64 // router sum, chip
	}
	base := noc.DefaultConfig()
	bw2 := base
	bw2.FlitBytes = 32
	cpcr := base
	cpcr.Checkerboard = true
	cpcr.Routing = noc.RoutingCheckerboard
	cpcr.MCs = noc.CheckerboardPlacement(6, 6, 8)
	cpcr.NumVCs = 4
	dbl := cpcr
	dbl.NumVCs = 2
	dbl2p := dbl
	dbl2p.MCInjPorts = 2

	rows := []row{
		{"Baseline", base, false, [2]float64{69.00, 576}},
		{"2x-BW", bw2, false, [2]float64{263.0, 790.9}},
		{"CP-CR", cpcr, false, [2]float64{59.20, 566.2}},
		{"Double CP-CR", dbl, true, [2]float64{29.74, 536.74}},
		{"Double CP-CR 2P", dbl2p, true, [2]float64{30.44, 537.44}},
	}
	var summary []string
	for _, r := range rows {
		a := area.FromConfig(r.cfg, r.sliced)
		overhead := a.NoC() / area.ChipAreaMM2
		tb.AddRow(r.name, a.Routers, a.Links, fmt.Sprintf("%.1f%%", 100*overhead), a.Chip())
		summary = append(summary, fmt.Sprintf(
			"%s: router sum paper %.1f / measured %.1f; chip paper %.1f / measured %.1f",
			r.name, r.paper[0], a.Routers, r.paper[1], a.Chip()))
	}
	return &Report{
		ID:      "table6",
		Title:   "Router and link area by configuration",
		Table:   tb,
		Summary: summary,
	}
}

// All runs every experiment in paper order.
func (s *Suite) All() []*Report {
	return []*Report{
		s.Fig2(), s.Fig6(), s.Fig7(), s.Fig8(), s.Fig9(), s.Fig10(), s.Fig11(),
		s.Fig16(), s.Fig17(), s.Fig18(), s.Fig19(), s.Fig20(), s.Fig21(),
		s.Table6(), s.Headline(),
	}
}

// ByID returns the report for one experiment id (e.g. "fig7", "table6").
func (s *Suite) ByID(id string) (*Report, error) {
	switch id {
	case "fig2":
		return s.Fig2(), nil
	case "fig6":
		return s.Fig6(), nil
	case "fig7":
		return s.Fig7(), nil
	case "fig8":
		return s.Fig8(), nil
	case "fig9":
		return s.Fig9(), nil
	case "fig10":
		return s.Fig10(), nil
	case "fig11":
		return s.Fig11(), nil
	case "fig16":
		return s.Fig16(), nil
	case "fig17":
		return s.Fig17(), nil
	case "fig18":
		return s.Fig18(), nil
	case "fig19":
		return s.Fig19(), nil
	case "fig20":
		return s.Fig20(), nil
	case "fig21":
		return s.Fig21(), nil
	case "table6":
		return s.Table6(), nil
	case "headline":
		return s.Headline(), nil
	case "ablation":
		return s.Ablations(), nil
	case "resilience":
		return s.Resilience(), nil
	case "shootout":
		return s.Shootout(), nil
	case "explore":
		return s.Explore()
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", id)
}

// IDs lists the experiment identifiers "all" expands to, in paper order.
// The design-space exploration ("explore") is deliberately not among them:
// it sweeps the whole default grid through successive-halving rungs, which
// dwarfs any single figure, so it only runs when invoked by name.
func IDs() []string {
	return []string{"fig2", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
		"fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "table6", "headline",
		"ablation", "resilience", "shootout"}
}
