package experiments

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/runner"
)

// renderQuick runs the two figures the parallel tests compare (they share
// the baseline config, exercising cross-figure memoization too).
func renderQuick(s *Suite) string {
	return s.Fig7().String() + s.Fig9().String()
}

// TestJobsDeterminism is the determinism guard: a sweep rendered with one
// worker and with eight must produce byte-identical tables, because
// figures render serially from the memoized results regardless of the
// execution schedule.
func TestJobsDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel sweep comparison skipped in -short mode")
	}
	var outputs [2]string
	for i, jobs := range []int{1, 8} {
		s, err := New(Options{Scale: 0.1, Benchmarks: []string{"BIN", "MUM"}, Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		outputs[i] = renderQuick(s)
	}
	if outputs[0] != outputs[1] {
		t.Errorf("-jobs 1 and -jobs 8 tables differ:\n--- jobs=1 ---\n%s--- jobs=8 ---\n%s",
			outputs[0], outputs[1])
	}
}

// cancelAfter cancels a context after n progress lines — the test stand-in
// for killing a sweep mid-flight.
type cancelAfter struct {
	mu     sync.Mutex
	left   int
	cancel context.CancelFunc
}

func (c *cancelAfter) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.left--
	if c.left <= 0 {
		c.cancel()
	}
	return len(p), nil
}

// TestCheckpointResumeSweep kills a sweep after one completed run, resumes
// it from the journal, and asserts that (a) no finished run executes
// twice, (b) the resumed sweep's tables are byte-identical to an
// uninterrupted one, and (c) a corrupt journal line only costs that one
// record.
func TestCheckpointResumeSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("checkpoint sweep skipped in -short mode")
	}
	opts := Options{Scale: 0.1, Benchmarks: []string{"BIN", "MUM"}, Jobs: 1}

	// Uninterrupted reference.
	ref, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	want := renderQuick(ref)
	totalRuns := ref.Executed()
	if totalRuns < 4 {
		t.Fatalf("reference sweep ran %d simulations, expected at least 4", totalRuns)
	}

	// Interrupted sweep: cancel after the first completed run.
	journal := filepath.Join(t.TempDir(), "sweep.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	iopts := opts
	iopts.Checkpoint = journal
	iopts.Context = ctx
	iopts.Progress = &cancelAfter{left: 1, cancel: cancel}
	interrupted, err := New(iopts)
	if err != nil {
		t.Fatal(err)
	}
	_ = renderQuick(interrupted)
	if err := interrupted.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, err := runner.LoadJournal(journal)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || len(recs) >= totalRuns {
		t.Fatalf("interrupted journal has %d records, want in [1, %d)", len(recs), totalRuns)
	}

	// Corrupt the tail the way a crash mid-write would.
	f, err := os.OpenFile(journal, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"torn-`)
	f.Close()

	// Resume: finished runs must not re-execute, tables must match the
	// uninterrupted reference byte for byte.
	ropts := opts
	ropts.Checkpoint = journal
	ropts.Resume = true
	resumed, err := New(ropts)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.SkippedJournalLines() != 1 {
		t.Errorf("skipped journal lines = %d, want 1", resumed.SkippedJournalLines())
	}
	got := renderQuick(resumed)
	if err := resumed.Close(); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("resumed tables differ from uninterrupted sweep:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	if exec := resumed.Executed(); exec != totalRuns-len(recs) {
		t.Errorf("resumed sweep executed %d runs, want %d (total %d - %d journaled)",
			exec, totalRuns-len(recs), totalRuns, len(recs))
	}

	// Journal inspection: every key appears exactly once across the
	// interrupted and resumed passes — no run executed twice.
	final, _, err := runner.LoadJournal(journal)
	if err != nil {
		t.Fatal(err)
	}
	if len(final) != totalRuns {
		t.Errorf("final journal has %d records, want %d", len(final), totalRuns)
	}
	seen := make(map[string]bool)
	for _, r := range final {
		if seen[r.Key] {
			t.Errorf("key %s journaled twice: a finished run re-executed", r.Key)
		}
		seen[r.Key] = true
	}
}

// TestSuiteTimeoutDNF drives a real wall-clock timeout through the whole
// suite: full-scale MUM (~10s) blows a 1s deadline and must land as one
// retried "timeout" DNF row while full-scale BIN (<1s) completes.
func TestSuiteTimeoutDNF(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock timeout sweep skipped in -short mode")
	}
	s, err := New(Options{
		Benchmarks: []string{"BIN", "MUM"},
		Jobs:       2,
		RunTimeout: time.Second,
		Retries:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Fig11() // baseline only: one run per benchmark
	dnf := s.DNF()
	if len(dnf) != 1 {
		t.Fatalf("DNF = %v, want exactly the MUM timeout", dnf)
	}
	if !strings.Contains(dnf[0], "TB-DOR|MUM: timeout (attempts 2)") {
		t.Errorf("DNF line = %q, want a retried MUM timeout", dnf[0])
	}
}
