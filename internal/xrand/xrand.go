// Package xrand provides a tiny, fast, deterministic pseudo-random number
// generator (xoshiro256**) for simulation use. Unlike math/rand it has an
// explicit, copyable state, so simulator components can own independent
// streams and whole runs replay bit-exactly from a seed.
package xrand

// Rand is a xoshiro256** generator. The zero value is invalid; use New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64, which guarantees
// a non-degenerate internal state for any seed (including zero).
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p (clamped to [0,1]).
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Fork derives an independent generator from this one, for handing separate
// streams to sub-components without correlating their sequences.
func (r *Rand) Fork() *Rand {
	return New(r.Uint64())
}
