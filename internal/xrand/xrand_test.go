package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequences diverged at %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("seeds 1 and 2 produced %d/100 identical values", same)
	}
}

func TestZeroSeedNotDegenerate(t *testing.T) {
	r := New(0)
	zeros := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == 0 {
			zeros++
		}
	}
	if zeros > 1 {
		t.Errorf("zero seed produced %d zero outputs", zeros)
	}
}

func TestIntnRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		bound := int(n%100) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(bound)
			if v < 0 || v >= bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(99)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Errorf("mean of %d uniforms = %v, want ~0.5", n, mean)
	}
}

func TestBoolExtremes(t *testing.T) {
	r := New(3)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(5)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.28 || frac > 0.32 {
		t.Errorf("Bool(0.3) hit rate %v, want ~0.3", frac)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(11)
	child := parent.Fork()
	// The child must not simply replay the parent's stream.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("fork produced %d/100 identical values with parent", same)
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(13)
	const buckets = 8
	var counts [buckets]int
	const n = 80000
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := n / buckets
	for b, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("bucket %d count %d, want ~%d", b, c, want)
		}
	}
}
