package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequences diverged at %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("seeds 1 and 2 produced %d/100 identical values", same)
	}
}

func TestZeroSeedNotDegenerate(t *testing.T) {
	r := New(0)
	zeros := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == 0 {
			zeros++
		}
	}
	if zeros > 1 {
		t.Errorf("zero seed produced %d zero outputs", zeros)
	}
}

func TestIntnRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		bound := int(n%100) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(bound)
			if v < 0 || v >= bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(99)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Errorf("mean of %d uniforms = %v, want ~0.5", n, mean)
	}
}

func TestBoolExtremes(t *testing.T) {
	r := New(3)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(5)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.28 || frac > 0.32 {
		t.Errorf("Bool(0.3) hit rate %v, want ~0.3", frac)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(11)
	child := parent.Fork()
	// The child must not simply replay the parent's stream.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("fork produced %d/100 identical values with parent", same)
	}
}

// TestNewSeedGolden pins the first outputs of New for a few seeds to
// exact constants. The generator's sequence is part of the repository's
// determinism contract — golden simulation digests, journal replay and
// lane-batched seed replicas all assume New(seed) never changes — so any
// edit to the seeding or the xoshiro step must show up here first.
func TestNewSeedGolden(t *testing.T) {
	golden := map[uint64][4]uint64{
		0:  {0x99ec5f36cb75f2b4, 0xbf6e1f784956452a, 0x1a5f849d4933e6e0, 0x6aa594f1262d2d2c},
		1:  {0xb3f2af6d0fc710c5, 0x853b559647364cea, 0x92f89756082a4514, 0x642e1c7bc266a3a7},
		42: {0x15780b2e0c2ec716, 0x6104d9866d113a7e, 0xae17533239e499a1, 0xecb8ad4703b360a1},
	}
	for seed, want := range golden {
		r := New(seed)
		for i, w := range want {
			if got := r.Uint64(); got != w {
				t.Errorf("New(%d) draw %d = %#016x, want %#016x", seed, i, got, w)
			}
		}
	}
}

// TestStreamIndependence pins the per-lane RNG isolation the lane-batched
// kernel relies on: lane i seeds its streams with seed+i, so adjacent
// seeds must yield streams that share no values at all in a long prefix —
// not merely "diverge eventually". With 4096 draws of 64-bit values from
// 8 streams, any collision overwhelmingly indicates correlated states
// rather than chance (~2^-40).
func TestStreamIndependence(t *testing.T) {
	const streams = 8
	const draws = 1024
	seen := make(map[uint64]int, streams*draws)
	for s := 0; s < streams; s++ {
		r := New(1000 + uint64(s))
		for i := 0; i < draws; i++ {
			v := r.Uint64()
			if prev, dup := seen[v]; dup {
				t.Fatalf("streams %d and %d both drew %#016x within their first %d draws",
					prev, s, v, draws)
			}
			seen[v] = s
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(13)
	const buckets = 8
	var counts [buckets]int
	const n = 80000
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := n / buckets
	for b, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("bucket %d count %d, want ~%d", b, c, want)
		}
	}
}
