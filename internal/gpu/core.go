// Package gpu models the compute nodes of the baseline accelerator (Fig 4):
// fine-grained multithreaded SIMT cores that issue 32-thread warps over an
// 8-wide SIMD pipeline, coalesce global memory accesses, and filter them
// through a write-back write-allocate L1 with MSHRs.
//
// The functional front end (instruction fetch/decode of real CUDA kernels)
// is replaced by a workload.Generator; see the workload package for why
// this substitution preserves the timing behaviour the NoC study needs.
package gpu

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/ring"
	"repro/internal/workload"
)

// Scheduler selects the warp scheduling policy.
type Scheduler int

// Warp schedulers.
const (
	// SchedRR issues round-robin among ready warps (Table II baseline).
	SchedRR Scheduler = iota
	// SchedGTO is greedy-then-oldest: keep issuing from the current warp
	// until it stalls, then fall back to the lowest-numbered ready warp.
	SchedGTO
)

// Config sizes one compute core (Table II defaults via DefaultConfig).
type Config struct {
	WarpSize     int // scalar threads per warp
	SIMDWidth    int // lanes; a warp issues over WarpSize/SIMDWidth cycles
	MSHRs        int
	MSHRMergeCap int // waiters per MSHR entry (<=0: unlimited)
	L1           cache.Config
	OutQueueCap  int // read requests waiting to enter the NoC
	Scheduler    Scheduler
}

// DefaultConfig returns the Table II core: 32-thread warps on an 8-wide
// pipeline, 64 MSHRs and a 16 KB 4-way L1 with 64 B lines.
func DefaultConfig() Config {
	return Config{
		WarpSize:     32,
		SIMDWidth:    8,
		MSHRs:        64,
		MSHRMergeCap: 8,
		L1:           cache.Config{SizeBytes: 16 * 1024, LineBytes: 64, Ways: 4},
		OutQueueCap:  16,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.WarpSize <= 0 || c.SIMDWidth <= 0 || c.WarpSize%c.SIMDWidth != 0 {
		return fmt.Errorf("gpu: WarpSize must be a positive multiple of SIMDWidth")
	}
	if c.MSHRs <= 0 {
		return fmt.Errorf("gpu: MSHRs must be positive")
	}
	if c.OutQueueCap <= 0 {
		return fmt.Errorf("gpu: OutQueueCap must be positive")
	}
	return c.L1.Validate()
}

// MemRequest is a line-sized message from the core to the memory system:
// a read (miss fetch) or a write (dirty line write-back).
type MemRequest struct {
	Line  addr.Address
	Write bool
}

// warpState tracks one resident warp.
type warpState struct {
	pendingLines []addr.Address // accesses of the current memory instruction not yet issued
	pendingWrite bool
	outstanding  int  // line fetches in flight
	atBarrier    bool // waiting for the rest of its CTA
	done         bool
}

func (w *warpState) ready() bool {
	return !w.done && !w.atBarrier && w.outstanding == 0 && len(w.pendingLines) == 0
}

// Stats counts core activity.
type Stats struct {
	Cycles       uint64
	WarpInstrs   uint64
	ScalarInstrs uint64
	MemInstrs    uint64
	Barriers     uint64
	LineAccesses uint64
	IssueStalls  uint64 // cycles with an issue slot but no ready warp
	MemStallFull uint64 // memory-unit retries due to MSHR/out-queue pressure
}

// IPC returns scalar instructions per core cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.ScalarInstrs) / float64(s.Cycles)
}

// Core is one SIMT compute core.
type Core struct {
	cfg    Config
	gen    *workload.Generator
	warps  []warpState
	rrNext int

	l1            *cache.Cache
	mshr          *cache.MSHR
	pendingStores map[addr.Address]bool // in-flight lines that must fill dirty

	memQ          ring.Ring[memAccess]  // coalesced accesses awaiting the L1 port
	outQ          ring.Ring[MemRequest] // grows past OutQueueCap only for write-backs
	issueCooldown int
	memBlocked    bool // memQ front failed tryAccess; only external events unblock it

	flushed  bool
	stats    Stats
	progress uint64 // monotonic work counter for the system stall watchdog
}

type memAccess struct {
	warp  int
	line  addr.Address
	write bool
}

// New builds a core running the given generator.
func New(cfg Config, gen *workload.Generator) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if gen == nil {
		return nil, fmt.Errorf("gpu: generator must not be nil")
	}
	l1, err := cache.New(cfg.L1)
	if err != nil {
		return nil, err
	}
	return &Core{
		cfg:           cfg,
		gen:           gen,
		warps:         make([]warpState, gen.Profile().Warps),
		l1:            l1,
		mshr:          cache.MustNewMSHR(cfg.MSHRs, cfg.MSHRMergeCap),
		pendingStores: make(map[addr.Address]bool),
		memQ:          ring.New[memAccess](16, 0),
		outQ:          ring.New[MemRequest](cfg.OutQueueCap, 0),
	}, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config, gen *workload.Generator) *Core {
	c, err := New(cfg, gen)
	if err != nil {
		panic(err)
	}
	return c
}

// Tick advances one core clock cycle.
func (c *Core) Tick() {
	c.stats.Cycles++
	c.issue()
	c.memoryUnit()
	if !c.flushed && c.gen.AllDone() && c.allWarpsIdle() && c.memQ.Len() == 0 {
		c.flushDirty()
	}
}

// issue dispatches at most one warp instruction per WarpSize/SIMDWidth
// cycles among ready warps, per the configured scheduling policy.
func (c *Core) issue() {
	if c.issueCooldown > 0 {
		c.issueCooldown--
		return
	}
	n := len(c.warps)
	for k := 0; k < n; k++ {
		w := c.pickWarp(k, n)
		ws := &c.warps[w]
		if !ws.ready() {
			continue
		}
		ins, ok := c.gen.Next(w)
		if !ok {
			ws.done = true
			c.releaseBarrierIfComplete(w)
			continue
		}
		if c.cfg.Scheduler == SchedGTO {
			c.rrNext = w // stay greedy on the issuing warp
		} else {
			c.rrNext = (w + 1) % n
		}
		c.issueCooldown = c.cfg.WarpSize/c.cfg.SIMDWidth - 1
		c.progress++
		c.stats.WarpInstrs++
		c.stats.ScalarInstrs += uint64(ins.ActiveThreads)
		switch {
		case ins.Barrier:
			c.stats.Barriers++
			ws.atBarrier = true
			c.releaseBarrierIfComplete(w)
		case ins.Mem:
			c.stats.MemInstrs++
			ws.pendingLines = append(ws.pendingLines[:0], ins.Lines...)
			ws.pendingWrite = ins.Write
		}
		return
	}
	c.stats.IssueStalls++
}

// pickWarp returns the k-th candidate warp for this issue slot: round-robin
// rotation for SchedRR; for SchedGTO the current warp first, then warps in
// age (index) order.
func (c *Core) pickWarp(k, n int) int {
	if c.cfg.Scheduler == SchedGTO {
		if k == 0 {
			return c.rrNext
		}
		idx := k - 1
		if idx >= c.rrNext {
			idx++ // oldest-first order, skipping the greedy warp tried at k==0
		}
		return idx % n
	}
	return (c.rrNext + k) % n
}

// releaseBarrierIfComplete frees warp w's CTA when every member has reached
// the barrier (finished warps do not hold a barrier hostage).
func (c *Core) releaseBarrierIfComplete(w int) {
	prof := c.gen.Profile()
	if prof.CTAs <= 0 {
		c.warps[w].atBarrier = false
		return
	}
	size := len(c.warps) / prof.CTAs
	cta := w / size
	lo, hi := cta*size, (cta+1)*size
	for i := lo; i < hi; i++ {
		if !c.warps[i].atBarrier && !c.warps[i].done {
			return
		}
	}
	for i := lo; i < hi; i++ {
		c.warps[i].atBarrier = false
	}
}

// memoryUnit services one coalesced line access per cycle through the L1.
func (c *Core) memoryUnit() {
	// Move pending accesses of blocked warps into the L1 port queue
	// (one warp's accesses enqueue as a burst, preserving coalescing).
	for w := range c.warps {
		ws := &c.warps[w]
		for _, line := range ws.pendingLines {
			c.memQ.Push(memAccess{warp: w, line: line, write: ws.pendingWrite})
			ws.outstanding++
		}
		ws.pendingLines = ws.pendingLines[:0]
	}
	if c.memQ.Len() == 0 {
		return
	}
	if !c.tryAccess(*c.memQ.Front()) {
		c.memBlocked = true
		c.stats.MemStallFull++
		return
	}
	c.memBlocked = false
	c.progress++
	c.memQ.Pop()
}

// tryAccess performs one L1 access; false means the access must retry
// (MSHR or outbound queue full).
func (c *Core) tryAccess(acc memAccess) bool {
	c.stats.LineAccesses++
	if c.l1.Access(acc.line, acc.write) {
		c.warps[acc.warp].outstanding--
		return true
	}
	// Miss: merge onto an in-flight fetch or start a new one.
	if c.mshr.Pending(acc.line) {
		if c.mshr.Allocate(acc.line, cache.Waiter(acc.warp)) == cache.AllocStallFull {
			c.stats.LineAccesses--
			return false
		}
	} else {
		if c.mshr.Full() || c.outQ.Len() >= c.cfg.OutQueueCap {
			c.stats.LineAccesses--
			return false
		}
		c.mshr.Allocate(acc.line, cache.Waiter(acc.warp))
		c.outQ.Push(MemRequest{Line: acc.line})
	}
	if acc.write {
		c.pendingStores[acc.line] = true
	}
	return true
}

// DeliverFill completes an in-flight line fetch (a read reply arrived).
func (c *Core) DeliverFill(line addr.Address) {
	c.progress++
	c.memBlocked = false // freed MSHR entry / filled line may unblock memQ
	victim, wb := c.l1.Fill(line, c.pendingStores[line])
	delete(c.pendingStores, line)
	if wb {
		// Write-backs bypass the read-request cap: they carry the line out.
		c.outQ.Push(MemRequest{Line: victim, Write: true})
	}
	for _, w := range c.mshr.Fill(line) {
		c.warps[w].outstanding--
	}
}

// PopRequest removes the next outbound memory request, if any.
func (c *Core) PopRequest() (MemRequest, bool) {
	if c.outQ.Len() == 0 {
		return MemRequest{}, false
	}
	c.memBlocked = false // out-queue space may unblock a stalled miss
	return c.outQ.Pop(), true
}

// PeekRequest returns the next outbound request without removing it.
func (c *Core) PeekRequest() (MemRequest, bool) {
	if c.outQ.Len() == 0 {
		return MemRequest{}, false
	}
	return *c.outQ.Front(), true
}

func (c *Core) allWarpsIdle() bool {
	for i := range c.warps {
		ws := &c.warps[i]
		if ws.outstanding > 0 || len(ws.pendingLines) > 0 {
			return false
		}
	}
	return true
}

// flushDirty writes back all dirty L1 lines at kernel end (the baseline's
// software-managed coherence flush, §II).
func (c *Core) flushDirty() {
	for _, line := range c.l1.FlushDirty() {
		c.outQ.Push(MemRequest{Line: line, Write: true})
	}
	c.flushed = true
}

// Done reports whether the kernel finished: all instructions issued, all
// fetches returned, the end-of-kernel flush emitted, and nothing queued.
func (c *Core) Done() bool {
	return c.gen.AllDone() && c.allWarpsIdle() && c.memQ.Len() == 0 &&
		c.flushed && c.outQ.Len() == 0 && c.mshr.InFlight() == 0
}

// Progress returns a monotonic counter of forward progress (instructions
// issued, L1 accesses completed, fills delivered). The system stall
// watchdog compares it across cycles to detect a wedged machine.
func (c *Core) Progress() uint64 { return c.progress }

// NeverCycle is the NextWorkCycle sentinel for "no future work without an
// external event" (a fill delivery or an out-queue drain).
const NeverCycle = ^uint64(0)

// NextWorkCycle returns a conservative bound on the next cycle count at
// which Tick would do something beyond the deterministic idle-tick credits
// that SkipAhead replays (cycle/cooldown/stall counters and blocked
// front-of-memQ retries). Until that cycle — or an external DeliverFill /
// PopRequest, which the caller must treat as invalidating — every Tick is
// equivalent to a unit of SkipAhead.
func (c *Core) NextWorkCycle() uint64 {
	// End-of-kernel flush fires on the next tick.
	if !c.flushed && c.gen.AllDone() && c.allWarpsIdle() && c.memQ.Len() == 0 {
		return c.stats.Cycles + 1
	}
	// An untried (or externally unblocked) memQ front accesses the L1 on
	// the next tick; a blocked front only retries, which SkipAhead credits.
	if c.memQ.Len() > 0 && !c.memBlocked {
		return c.stats.Cycles + 1
	}
	for i := range c.warps {
		ws := &c.warps[i]
		if len(ws.pendingLines) > 0 {
			return c.stats.Cycles + 1
		}
		if ws.ready() {
			// Issues (or discovers generator exhaustion) once the
			// pipeline cooldown expires.
			return c.stats.Cycles + uint64(c.issueCooldown) + 1
		}
	}
	// Every warp is done, at a barrier held open by a fill-waiting peer,
	// or waiting on outstanding fetches; only DeliverFill wakes the core.
	return NeverCycle
}

// SkipAhead credits k consecutive idle ticks in O(1), with counters
// bit-identical to calling Tick k times under NextWorkCycle's guarantee:
// the cycle counter advances, the issue cooldown drains into issue stalls,
// and a blocked memQ front accrues its per-cycle retry miss accounting.
func (c *Core) SkipAhead(k uint64) {
	c.stats.Cycles += k
	if uint64(c.issueCooldown) >= k {
		c.issueCooldown -= int(k)
	} else {
		c.stats.IssueStalls += k - uint64(c.issueCooldown)
		c.issueCooldown = 0
	}
	if c.memQ.Len() > 0 {
		c.stats.MemStallFull += k
		c.l1.CreditMissRetries(k)
	}
}

// Stats returns the activity counters.
func (c *Core) Stats() Stats { return c.stats }

// L1Stats exposes the L1 cache counters.
func (c *Core) L1Stats() cache.Stats { return c.l1.Stats() }
