package gpu

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/workload"
)

func testProfile() workload.Profile {
	return workload.Profile{
		Name: "t", Abbr: "T", Class: "HH",
		Warps: 4, InstrsPerWarp: 50, MemFraction: 0.3, WriteFraction: 0.2,
		LinesPerMemInstr: 2, ActiveThreads: 32, WorkingSetKB: 256,
		Sequential: 0.7, Reuse: 0.1,
	}
}

func newTestCore(t *testing.T, p workload.Profile) *Core {
	t.Helper()
	gen, err := workload.NewGenerator(p, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(DefaultConfig(), gen)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// runToCompletion services the core's memory requests with a fixed-latency
// perfect memory and returns the stats.
func runToCompletion(t *testing.T, c *Core, memLatency int, maxCycles int) Stats {
	t.Helper()
	type inflight struct {
		line addr.Address
		due  uint64
	}
	var fills []inflight
	for cyc := uint64(1); cyc <= uint64(maxCycles); cyc++ {
		c.Tick()
		for req, ok := c.PopRequest(); ok; req, ok = c.PopRequest() {
			if !req.Write {
				fills = append(fills, inflight{line: req.Line, due: cyc + uint64(memLatency)})
			}
		}
		kept := fills[:0]
		for _, f := range fills {
			if f.due <= cyc {
				c.DeliverFill(f.line)
			} else {
				kept = append(kept, f)
			}
		}
		fills = kept
		if c.Done() {
			return c.Stats()
		}
	}
	t.Fatalf("core did not finish in %d cycles (warps idle=%v, mshr=%d, outQ=%d)",
		maxCycles, c.allWarpsIdle(), c.mshr.InFlight(), c.outQ.Len())
	return Stats{}
}

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.WarpSize = 0 },
		func(c *Config) { c.SIMDWidth = 5 }, // 32 % 5 != 0
		func(c *Config) { c.MSHRs = 0 },
		func(c *Config) { c.OutQueueCap = 0 },
		func(c *Config) { c.L1.Ways = 0 },
	}
	for i, m := range bad {
		cfg := DefaultConfig()
		m(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestCoreCompletesAllInstructions(t *testing.T) {
	c := newTestCore(t, testProfile())
	st := runToCompletion(t, c, 100, 200000)
	want := uint64(4 * 50)
	if st.WarpInstrs != want {
		t.Errorf("warp instrs = %d, want %d", st.WarpInstrs, want)
	}
	if st.ScalarInstrs != want*32 {
		t.Errorf("scalar instrs = %d, want %d", st.ScalarInstrs, want*32)
	}
}

func TestIssueRateCap(t *testing.T) {
	// A pure-compute kernel issues at most one warp instr per 4 cycles.
	p := testProfile()
	p.MemFraction = 0
	c := newTestCore(t, p)
	st := runToCompletion(t, c, 1, 100000)
	// 200 warp instrs at 1 per 4 cycles: first at cycle 1, last at 4*199+1.
	if st.Cycles < 4*(st.WarpInstrs-1)+1 {
		t.Errorf("issued %d warp instrs in %d cycles; cap is 1 per 4",
			st.WarpInstrs, st.Cycles)
	}
	if got := st.IPC(); got > 8.05 {
		t.Errorf("IPC %v exceeds peak 8 scalar/cycle", got)
	}
}

func TestLatencyHidingWithManyWarps(t *testing.T) {
	// More warps hide memory latency better: IPC must improve.
	few := testProfile()
	few.Warps = 2
	many := testProfile()
	many.Warps = 24
	cf := newTestCore(t, few)
	cm := newTestCore(t, many)
	ipcFew := runToCompletion(t, cf, 200, 500000).IPC()
	ipcMany := runToCompletion(t, cm, 200, 500000).IPC()
	if ipcMany <= ipcFew {
		t.Errorf("24 warps IPC %v not above 2 warps IPC %v", ipcMany, ipcFew)
	}
}

func TestMemoryLatencySensitivity(t *testing.T) {
	// With few warps, higher memory latency must reduce IPC.
	p := testProfile()
	p.Warps = 2
	fast := runToCompletion(t, newTestCore(t, p), 20, 500000).IPC()
	slow := runToCompletion(t, newTestCore(t, p), 400, 2000000).IPC()
	if slow >= fast {
		t.Errorf("IPC at 400-cycle memory (%v) not below 20-cycle (%v)", slow, fast)
	}
}

func TestWritebacksEmitted(t *testing.T) {
	// A write-heavy kernel with an L1-overflowing working set must emit
	// write-back requests.
	p := testProfile()
	p.WriteFraction = 1.0
	p.MemFraction = 0.8
	p.Sequential, p.Reuse = 1.0, 0
	p.WorkingSetKB = 256 // 16x the L1
	gen := workload.MustNewGenerator(p, 0, 1, 2)
	c := MustNew(DefaultConfig(), gen)
	writes := 0
	var fills []addr.Address
	for cyc := 0; cyc < 300000 && !c.Done(); cyc++ {
		c.Tick()
		for req, ok := c.PopRequest(); ok; req, ok = c.PopRequest() {
			if req.Write {
				writes++
			} else {
				fills = append(fills, req.Line)
			}
		}
		for _, l := range fills {
			c.DeliverFill(l)
		}
		fills = fills[:0]
	}
	if !c.Done() {
		t.Fatal("core did not finish")
	}
	if writes == 0 {
		t.Error("no write-backs emitted by write-heavy kernel")
	}
}

func TestEndOfKernelFlush(t *testing.T) {
	// A small working set that fits in L1 only writes back at the flush.
	p := testProfile()
	p.WriteFraction = 1.0
	p.MemFraction = 0.5
	p.WorkingSetKB = 8 // fits in 16KB L1
	p.Sequential, p.Reuse = 1.0, 0
	gen := workload.MustNewGenerator(p, 0, 1, 3)
	c := MustNew(DefaultConfig(), gen)
	writes := 0
	var fills []addr.Address
	for cyc := 0; cyc < 300000 && !c.Done(); cyc++ {
		c.Tick()
		for req, ok := c.PopRequest(); ok; req, ok = c.PopRequest() {
			if req.Write {
				writes++
			} else {
				fills = append(fills, req.Line)
			}
		}
		for _, l := range fills {
			c.DeliverFill(l)
		}
		fills = fills[:0]
	}
	if !c.Done() {
		t.Fatal("core did not finish")
	}
	if writes == 0 {
		t.Error("flush produced no write-backs for dirty resident lines")
	}
}

func TestMSHRMergingReducesRequests(t *testing.T) {
	// High-reuse traffic with many warps should merge misses: fewer read
	// requests than line accesses.
	p := testProfile()
	p.Warps = 16
	p.MemFraction = 0.6
	p.Sequential, p.Reuse = 0.0, 0.9
	gen := workload.MustNewGenerator(p, 0, 1, 4)
	c := MustNew(DefaultConfig(), gen)
	reads := 0
	var fills []addr.Address
	delay := 0
	for cyc := 0; cyc < 500000 && !c.Done(); cyc++ {
		c.Tick()
		for req, ok := c.PopRequest(); ok; req, ok = c.PopRequest() {
			if !req.Write {
				reads++
				fills = append(fills, req.Line)
			}
		}
		// Delay fills to leave misses outstanding for merging.
		if delay++; delay%50 == 0 {
			for _, l := range fills {
				c.DeliverFill(l)
			}
			fills = fills[:0]
		}
	}
	for _, l := range fills {
		c.DeliverFill(l)
	}
	for cyc := 0; cyc < 1000 && !c.Done(); cyc++ {
		c.Tick()
		for req, ok := c.PopRequest(); ok; req, ok = c.PopRequest() {
			if !req.Write {
				c.DeliverFill(req.Line)
			}
		}
	}
	if !c.Done() {
		t.Fatal("core did not finish")
	}
	if uint64(reads) >= c.Stats().LineAccesses {
		t.Errorf("reads %d not below line accesses %d: no L1 hits or merges",
			reads, c.Stats().LineAccesses)
	}
}

func TestOutQueueBackpressureStallsCore(t *testing.T) {
	// If requests are never drained, the core must stall rather than grow
	// its queues without bound.
	p := testProfile()
	p.MemFraction = 0.9
	p.Sequential, p.Reuse = 1.0, 0
	gen := workload.MustNewGenerator(p, 0, 1, 5)
	cfg := DefaultConfig()
	cfg.OutQueueCap = 4
	c := MustNew(cfg, gen)
	for cyc := 0; cyc < 5000; cyc++ {
		c.Tick()
	}
	if c.outQ.Len() > cfg.OutQueueCap {
		t.Errorf("out queue grew to %d despite cap %d", c.outQ.Len(), cfg.OutQueueCap)
	}
	if c.Done() {
		t.Error("core finished without any memory service")
	}
	if c.Stats().MemStallFull == 0 {
		t.Error("no memory stalls recorded under backpressure")
	}
}

func TestDirtyFillAfterStoreMiss(t *testing.T) {
	// A store miss must install the line dirty so it writes back later.
	p := testProfile()
	p.Warps = 1
	p.InstrsPerWarp = 1
	p.MemFraction = 1.0
	p.WriteFraction = 1.0
	p.LinesPerMemInstr = 1
	p.Sequential, p.Reuse = 1.0, 0
	gen := workload.MustNewGenerator(p, 0, 1, 6)
	c := MustNew(DefaultConfig(), gen)
	var line addr.Address
	for cyc := 0; cyc < 100; cyc++ {
		c.Tick()
		if req, ok := c.PopRequest(); ok {
			if req.Write {
				t.Fatal("store miss should fetch (read) first")
			}
			line = req.Line
			c.DeliverFill(line)
			break
		}
	}
	// Drain: kernel flush must now write the dirty line back.
	sawWB := false
	for cyc := 0; cyc < 1000 && !c.Done(); cyc++ {
		c.Tick()
		if req, ok := c.PopRequest(); ok && req.Write && req.Line == line {
			sawWB = true
		}
	}
	if !sawWB {
		t.Error("dirty line from store miss never written back")
	}
}

func TestBarrierSynchronizesCTA(t *testing.T) {
	// Two CTAs of 2 warps, barrier every 10 instructions. With a slow
	// memory, warps drift; barriers must still all release and the kernel
	// must finish.
	p := testProfile()
	p.Warps = 4
	p.CTAs = 2
	p.BarrierEvery = 10
	p.InstrsPerWarp = 60
	gen := workload.MustNewGenerator(p, 0, 1, 8)
	c := MustNew(DefaultConfig(), gen)
	st := runToCompletion(t, c, 150, 500000)
	if st.Barriers == 0 {
		t.Fatal("no barrier instructions issued")
	}
	// 5 barriers per warp (instrs 10,20,30,40,50) x 4 warps.
	if st.Barriers != 20 {
		t.Errorf("barriers = %d, want 20", st.Barriers)
	}
	if st.WarpInstrs != 4*60 {
		t.Errorf("warp instrs = %d, want 240", st.WarpInstrs)
	}
}

func TestBarrierActuallyBlocks(t *testing.T) {
	// One CTA of 2 warps; warp progress may never diverge past a barrier
	// boundary. Observe by checking issue interleaving: when one warp
	// stalls on memory before its barrier, the other cannot run ahead into
	// the next barrier interval's instructions... approximated by checking
	// total completion still happens and barrier count matches.
	p := testProfile()
	p.Warps = 2
	p.CTAs = 1
	p.BarrierEvery = 5
	p.InstrsPerWarp = 20
	p.MemFraction = 0.5
	gen := workload.MustNewGenerator(p, 0, 1, 9)
	c := MustNew(DefaultConfig(), gen)
	st := runToCompletion(t, c, 300, 500000)
	if st.Barriers != 2*3 {
		t.Errorf("barriers = %d, want 6", st.Barriers)
	}
}

func TestBarrierProfileValidation(t *testing.T) {
	p := testProfile()
	p.BarrierEvery = 10 // without CTAs
	if err := p.Validate(); err == nil {
		t.Error("barriers without CTAs accepted")
	}
	p = testProfile()
	p.Warps = 4
	p.CTAs = 3 // does not divide 4
	if err := p.Validate(); err == nil {
		t.Error("non-dividing CTA count accepted")
	}
}

func TestGTOSchedulerCompletes(t *testing.T) {
	p := testProfile()
	gen := workload.MustNewGenerator(p, 0, 1, 10)
	cfg := DefaultConfig()
	cfg.Scheduler = SchedGTO
	c := MustNew(cfg, gen)
	st := runToCompletion(t, c, 120, 500000)
	if st.WarpInstrs != uint64(p.Warps*p.InstrsPerWarp) {
		t.Errorf("GTO issued %d warp instrs, want %d", st.WarpInstrs, p.Warps*p.InstrsPerWarp)
	}
}

func TestGTOGreedyOnComputeKernel(t *testing.T) {
	// On a pure-compute kernel GTO drains one warp completely before the
	// next: verify via the generator's warp completion order being biased
	// (warp 0 finishes among the first issues).
	p := testProfile()
	p.MemFraction = 0
	p.Warps = 4
	p.InstrsPerWarp = 10
	gen := workload.MustNewGenerator(p, 0, 1, 11)
	cfg := DefaultConfig()
	cfg.Scheduler = SchedGTO
	c := MustNew(cfg, gen)
	for i := 0; i < 50*4*10 && !gen.Done(0); i++ {
		c.Tick()
	}
	if !gen.Done(0) {
		t.Fatal("warp 0 did not finish first under GTO")
	}
	if gen.Done(3) {
		t.Error("warp 3 finished before warp 0's stream drained: not greedy")
	}
}
