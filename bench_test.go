// Benchmarks regenerating the paper's tables and figures. Each benchmark
// drives the same harness as cmd/experiments, at a reduced scale and on a
// class-representative benchmark subset so `go test -bench=.` terminates in
// minutes; run `go run ./cmd/experiments all` for the full-scale numbers
// recorded in EXPERIMENTS.md.
//
// Benchmarks report the headline quantity of their figure as a custom
// metric (e.g. hm_speedup_pct) alongside ns/op.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/area"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/noc"
	"repro/internal/stats"
	"repro/internal/traffic"
	"repro/internal/workload"
)

// benchSubset is one benchmark per traffic class (LL, LH, HH).
var benchSubset = []string{"BIN", "CON", "MUM"}

const benchScale = 0.15

func newSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	s, err := experiments.New(experiments.Options{Scale: benchScale, Benchmarks: benchSubset})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// runPair measures the harmonic-mean speedup of alt over base across the
// benchmark subset.
func runPair(b *testing.B, base, alt func(workload.Profile) core.Config) float64 {
	b.Helper()
	var ratios []float64
	for _, abbr := range benchSubset {
		p, err := workload.ByAbbr(abbr)
		if err != nil {
			b.Fatal(err)
		}
		rb := core.MustRun(base(p).ScaleWork(benchScale))
		ra := core.MustRun(alt(p).ScaleWork(benchScale))
		ratios = append(ratios, ra.IPC/rb.IPC)
	}
	return stats.HarmonicMean(ratios)
}

// BenchmarkFig02DesignSpace regenerates the Fig 2 design points.
func BenchmarkFig02DesignSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(b)
		rep := s.Fig2()
		if len(rep.Table.String()) == 0 {
			b.Fatal("empty fig2")
		}
	}
}

// BenchmarkFig06LimitStudy sweeps the ideal-NoC bandwidth cap (Fig 6).
func BenchmarkFig06LimitStudy(b *testing.B) {
	p, _ := workload.ByAbbr("MUM")
	for i := 0; i < b.N; i++ {
		ref := core.MustRun(core.Perfect(p).ScaleWork(benchScale)).IPC
		cfg := core.Baseline(p)
		capped := core.MustRun(core.IdealCapped(p, cfg.CapForBWFraction(0.816)).ScaleWork(benchScale)).IPC
		b.ReportMetric(100*capped/ref, "pct_of_infinite_bw")
	}
}

// BenchmarkFig07PerfectSpeedup measures the perfect-network speedup (Fig 7).
func BenchmarkFig07PerfectSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hm := runPair(b, core.Baseline, core.Perfect)
		b.ReportMetric(100*(hm-1), "hm_speedup_pct")
	}
}

// BenchmarkFig08SpeedupVsMCRate reproduces the Fig 8 correlation inputs.
func BenchmarkFig08SpeedupVsMCRate(b *testing.B) {
	p, _ := workload.ByAbbr("MUM")
	for i := 0; i < b.N; i++ {
		perf := core.MustRun(core.Perfect(p).ScaleWork(benchScale))
		b.ReportMetric(perf.MCInjRate, "mc_flits_per_cycle")
	}
}

// BenchmarkFig09BWvsLatency compares 2x bandwidth against 1-cycle routers.
func BenchmarkFig09BWvsLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bw := runPair(b, core.Baseline,
			func(p workload.Profile) core.Config { return core.Baseline(p).With2xBW() })
		lat := runPair(b, core.Baseline,
			func(p workload.Profile) core.Config { return core.Baseline(p).With1CycleRouters() })
		b.ReportMetric(100*(bw-1), "hm_2xbw_pct")
		b.ReportMetric(100*(lat-1), "hm_1cycle_pct")
	}
}

// BenchmarkFig10LatencyRatio measures the NoC latency ratio of 1-cycle vs
// 4-cycle routers.
func BenchmarkFig10LatencyRatio(b *testing.B) {
	p, _ := workload.ByAbbr("CON")
	for i := 0; i < b.N; i++ {
		base := core.MustRun(core.Baseline(p).ScaleWork(benchScale))
		fast := core.MustRun(core.Baseline(p).With1CycleRouters().ScaleWork(benchScale))
		b.ReportMetric(fast.AvgNetLatency/base.AvgNetLatency, "latency_ratio")
	}
}

// BenchmarkFig11MCStall measures reply-path blocking at the MCs.
func BenchmarkFig11MCStall(b *testing.B) {
	p, _ := workload.ByAbbr("MUM")
	for i := 0; i < b.N; i++ {
		res := core.MustRun(core.Baseline(p).ScaleWork(benchScale))
		b.ReportMetric(100*res.MCStallFraction, "mc_stall_pct")
	}
}

// BenchmarkFig16Placement measures checkerboard vs top-bottom placement.
func BenchmarkFig16Placement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hm := runPair(b, core.Baseline,
			func(p workload.Profile) core.Config { return core.Baseline(p).WithCheckerboardPlacement() })
		b.ReportMetric(100*(hm-1), "hm_speedup_pct")
	}
}

// BenchmarkFig17Checkerboard measures CR-4VC vs DOR-4VC (both CP).
func BenchmarkFig17Checkerboard(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hm := runPair(b,
			func(p workload.Profile) core.Config {
				return core.Baseline(p).WithCheckerboardPlacement().WithVCs(4)
			},
			func(p workload.Profile) core.Config { return core.Baseline(p).WithCheckerboardRouting() })
		b.ReportMetric(100*(hm-1), "cr_vs_dor4vc_pct")
	}
}

// BenchmarkFig18DoubleNet measures the channel-sliced double network.
func BenchmarkFig18DoubleNet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hm := runPair(b,
			func(p workload.Profile) core.Config { return core.Baseline(p).WithCheckerboardRouting() },
			func(p workload.Profile) core.Config {
				return core.Baseline(p).WithCheckerboardRouting().WithDoubleNetwork()
			})
		b.ReportMetric(100*(hm-1), "hm_speedup_pct")
	}
}

// BenchmarkFig19MultiPort measures 2 injection ports at MC routers.
func BenchmarkFig19MultiPort(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hm := runPair(b,
			func(p workload.Profile) core.Config {
				return core.Baseline(p).WithCheckerboardRouting().WithDoubleNetwork()
			},
			func(p workload.Profile) core.Config {
				return core.Baseline(p).WithCheckerboardRouting().WithDoubleNetwork().WithMCInjectionPorts(2)
			})
		b.ReportMetric(100*(hm-1), "hm_speedup_pct")
	}
}

// BenchmarkFig20Combined measures the full throughput-effective design, in
// both the paper-exact (sliced) and single-network forms.
func BenchmarkFig20Combined(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hm := runPair(b, core.Baseline, core.ThroughputEffective)
		single := runPair(b, core.Baseline, core.ThroughputEffectiveSingle)
		b.ReportMetric(100*(hm-1), "hm_speedup_pct")
		b.ReportMetric(100*(single-1), "hm_speedup_1net_pct")
	}
}

// BenchmarkFig21OpenLoop runs one open-loop latency/load point per pattern.
func BenchmarkFig21OpenLoop(b *testing.B) {
	runner := traffic.NewMeshRunner(noc.DefaultConfig())
	for i := 0; i < b.N; i++ {
		cfg := traffic.DefaultConfig()
		cfg.InjectionRate = 0.03
		cfg.WarmupCycles = 500
		cfg.MeasureCycles = 2000
		cfg.DrainCycles = 4000
		res := runner.Run(cfg)
		b.ReportMetric(res.AvgLatency, "latency_cycles")
	}
}

// idleSkipClosedLoopConfig builds the memory-bound closed-loop system the
// idle-horizon benchmarks measure: a single SIMT core on a 2×2 mesh whose
// other three tiles are memory controllers, one resident warp streaming an
// L2-resident working set through a deep (128-cycle) memory pipeline. Every
// memory instruction parks the warp on an outstanding fill with the mesh
// quiescent and DRAM idle — the bursty stall-dominated regime where
// idle-horizon fast-forwarding pays, and the worst case for edge-by-edge
// stepping. Wide flits and 1-cycle routers keep the busy fraction of each
// round trip small so the skippable window dominates.
func idleSkipClosedLoopConfig() core.Config {
	prof := workload.Profile{
		Name: "MemStall", Abbr: "MSTL", Class: "LH",
		Warps: 1, InstrsPerWarp: 3000,
		MemFraction: 1.0, WriteFraction: 0, LinesPerMemInstr: 1,
		ActiveThreads: 32, WorkingSetKB: 64,
		Sequential: 1.0, Reuse: 0,
	}
	cfg := core.Baseline(prof)
	cfg.Name = "IdleSkip-MemBound"
	nc := noc.DefaultConfig()
	nc.Width, nc.Height = 2, 2
	nc.MCs = []noc.NodeID{1, 2, 3}
	nc.RouterStages = 1
	nc.HalfRouterStages = 1
	nc.FlitBytes = 64
	cfg.Noc = nc
	cfg.Mem.L2Latency = 128
	return cfg
}

// BenchmarkIdleSkipClosedLoop times the memory-bound closed-loop run with
// idle-horizon fast-forwarding on (the default) and off. Results are
// bit-identical between the two modes (TestIdleSkipEquivalence); only
// wall-clock differs, so skip-vs-noskip ns/op is the speedup.
func BenchmarkIdleSkipClosedLoop(b *testing.B) {
	for _, mode := range []struct {
		name   string
		noSkip bool
	}{{"skip", false}, {"noskip", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := idleSkipClosedLoopConfig()
			cfg.NoIdleSkip = mode.noSkip
			var cycles uint64
			for i := 0; i < b.N; i++ {
				res := core.MustRun(cfg)
				if !res.OK() {
					b.Fatal(res.Status)
				}
				cycles = res.IcntCycles
			}
			b.ReportMetric(float64(cycles)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Micnt_cycles_per_sec")
		})
	}
}

// BenchmarkIdleSkipOpenLoopDrain times an open-loop point whose long drain
// phase is almost entirely idle: a low injection rate empties the mesh
// quickly, after which edge-by-edge stepping burns the rest of the drain
// window ticking an empty network while the drain-phase fast-forward jumps
// straight to the end. Digests are bit-identical between modes
// (TestOpenLoopIdleSkipEquivalence).
func BenchmarkIdleSkipOpenLoopDrain(b *testing.B) {
	for _, mode := range []struct {
		name   string
		noSkip bool
	}{{"skip", false}, {"noskip", true}} {
		b.Run(mode.name, func(b *testing.B) {
			runner := traffic.NewMeshRunner(noc.DefaultConfig())
			cfg := traffic.DefaultConfig()
			cfg.InjectionRate = 0.005
			cfg.WarmupCycles = 500
			cfg.MeasureCycles = 2000
			cfg.DrainCycles = 80000
			cfg.NoIdleSkip = mode.noSkip
			for i := 0; i < b.N; i++ {
				res := runner.Run(cfg)
				if res.MeasuredPackets == 0 {
					b.Fatal("no packets measured")
				}
			}
		})
	}
}

// laneManycoreConfig builds the memory-bound manycore family the lane
// throughput benchmark measures: the paper's 6×6 baseline mesh (28 SIMT
// cores, 8 top/bottom MCs) with every core running a few warps of pure
// memory traffic through a deep L2 pipeline. At any instant nearly every
// core is parked on outstanding fills, but their round trips desynchronise
// through MC queueing, so the SYSTEM is almost never globally idle — the
// regime where whole-run idle-skipping (the solo kernel's only lever)
// rarely fires, while the lane kernel's per-component dormancy elides the
// ~27 parked cores and idle MC sides individually on every edge.
func laneManycoreConfig() core.Config {
	prof := workload.Profile{
		Name: "ManycoreMemBound", Abbr: "MCMB", Class: "HH",
		Warps: 12, InstrsPerWarp: 28,
		MemFraction: 1.0, WriteFraction: 0, LinesPerMemInstr: 1,
		ActiveThreads: 32, WorkingSetKB: 64,
		Sequential: 1.0, Reuse: 0,
	}
	cfg := core.Baseline(prof)
	cfg.Name = "Lane-Manycore-MemBound"
	// 1-cycle routers and line-sized flits (both §III-C design points) keep
	// the busy fraction of each round trip small, as in the idle-skip
	// family: the benchmark isolates how the two kernels spend the PARKED
	// cycles, not router pipeline throughput.
	cfg.Noc.RouterStages = 1
	cfg.Noc.HalfRouterStages = 1
	cfg.Noc.FlitBytes = 64
	cfg.Mem.L2Latency = 256
	return cfg
}

// BenchmarkLaneThroughput measures per-seed throughput of the lane-batched
// kernel on the memory-bound manycore family: one op runs L seeds of the
// same configuration, solo back-to-back at L=1 and through core.RunLanes at
// L=4. Sub-benchmark names end in -l<N> so cmd/benchjson derives a
// per-seed speedup_vs_l1 metric (serial ns × L / lane ns). Unlike the
// sharded speedups this holds on any host: lane batching is single-threaded
// work elision (per-component dormancy), not parallelism. Results are
// bit-identical between the rows (TestGoldenDigestsLanes pins it).
func BenchmarkLaneThroughput(b *testing.B) {
	const batch = 4
	for _, lanes := range []int{1, batch} {
		b.Run(fmt.Sprintf("manycore-l%d", lanes), func(b *testing.B) {
			cfg := laneManycoreConfig().WithLanes(lanes)
			seedsPerOp := lanes // one op covers L seeds, so ns/op scales with L
			var seed uint64 = 1
			for i := 0; i < b.N; i++ {
				if lanes == 1 {
					cfg.Seed = seed
					res := core.MustRun(cfg)
					if !res.OK() {
						b.Fatal(res.Status)
					}
					seed++
					continue
				}
				seeds := make([]uint64, seedsPerOp)
				for j := range seeds {
					seeds[j] = seed
					seed++
				}
				results, errs := core.RunLanes(nil, cfg, seeds)
				for j := range results {
					if errs[j] != nil || !results[j].OK() {
						b.Fatalf("lane %d: %v (%s)", j, errs[j], results[j].Status)
					}
				}
			}
			b.ReportMetric(float64(seedsPerOp), "seeds/op")
		})
	}
}

// BenchmarkTable06Area regenerates the area table.
func BenchmarkTable06Area(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := area.FromConfig(noc.DefaultConfig(), false)
		if base.Routers < 60 || base.Routers > 75 {
			b.Fatalf("baseline router area %v off Table VI", base.Routers)
		}
		b.ReportMetric(base.Chip(), "chip_mm2")
	}
}

// BenchmarkHeadlineThroughputEffectiveness measures IPC/mm² of the combined
// design against the baseline (paper: +25.4%).
func BenchmarkHeadlineThroughputEffectiveness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hm := runPair(b, core.Baseline, core.ThroughputEffective)
		single := runPair(b, core.Baseline, core.ThroughputEffectiveSingle)
		baseChip := area.FromConfig(noc.DefaultConfig(), false).Chip()
		p, _ := workload.ByAbbr("MUM")
		teChip := area.FromConfig(core.ThroughputEffective(p).Noc, true).Chip()
		te1Chip := area.FromConfig(core.ThroughputEffectiveSingle(p).Noc, false).Chip()
		b.ReportMetric(100*(hm*baseChip/teChip-1), "ipc_per_mm2_gain_pct")
		b.ReportMetric(100*(single*baseChip/te1Chip-1), "ipc_per_mm2_gain_1net_pct")
	}
}
