#!/bin/sh
# experiments.sh — regenerate experiments_output.txt (the full evaluation
# sweep's raw tables, referenced by EXPERIMENTS.md) on demand instead of
# keeping a stale copy in the repository.
#
# Usage: scripts/experiments.sh [outfile] [extra cmd/experiments flags...]
#
# The full-scale sweep takes a while; pass e.g. "-scale 0.2" for a quick
# approximation, or "-jobs N -shards -1" to use more of the machine.
set -eu
cd "$(dirname "$0")/.."

OUT="${1:-experiments_output.txt}"
[ $# -gt 0 ] && shift

go run ./cmd/experiments "$@" all | tee "$OUT"
echo "wrote $OUT" >&2
