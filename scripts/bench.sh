#!/bin/sh
# bench.sh — capture the repository's benchmark baseline into BENCH_<date>.json.
#
# Runs the cycle-kernel microbenchmark plus the class-representative figure
# benchmarks (one workload per LL/LH/HH traffic class, see bench_test.go)
# with -benchmem, and appends a labelled capture to a JSON file via
# cmd/benchjson. Run it before and after a performance change with different
# labels to record the before/after pair in one file:
#
#	scripts/bench.sh before-refactor
#	... make changes ...
#	scripts/bench.sh after-refactor
#
# Usage: scripts/bench.sh [label] [outfile]
set -eu
cd "$(dirname "$0")/.."

LABEL="${1:-capture}"
OUT="${2:-BENCH_$(date +%F).json}"

{
	# Cycle-kernel microbenchmarks: fixed iteration count so allocs/op and
	# hops/cycle are comparable across captures. The sharded-kernel rows
	# (…-s1/-s2/-s4) additionally get a derived speedup_vs_s1 metric from
	# cmd/benchjson (suppressed on single-core hosts, where the ratio would
	# only measure coordination overhead).
	# The lane-batched kernel rows (…-l1/-l4) likewise get a derived
	# per-seed speedup_vs_l1 metric (valid on any host: lane batching is
	# work elision, not parallelism).
	go test -run '^$' -bench 'BenchmarkCycleKernel|BenchmarkShardedKernel|BenchmarkBackendKernel|BenchmarkLaneKernel' -benchmem -benchtime 2000x ./internal/noc/
	# Sweep-planner microbenchmarks: a warm re-plan of an explorer-shaped
	# sweep (alloc-gated at 0 allocs/op in CI) plus the naive-vs-planned
	# submission comparison on a stub kernel.
	go test -run '^$' -bench 'BenchmarkSweepPlanner|BenchmarkSweepSubmission' -benchmem -benchtime 200x ./internal/runner/
	# Class-representative figure benchmarks (hm_speedup metrics et al) and
	# the idle-horizon fast-forward pairs, whose skip rows get a derived
	# speedup_vs_noskip metric from cmd/benchjson.
	go test -run '^$' -bench 'Fig|Table|Headline|IdleSkip' -benchmem -benchtime 1x .
	# Lane-batched end-to-end throughput (memory-bound manycore closed loop
	# at 1 and 4 seed lanes). Longer benchtime: the per-seed speedup_vs_l1
	# ratio is the headline number and single-iteration noise would swamp it.
	go test -run '^$' -bench 'BenchmarkLaneThroughput' -benchmem -benchtime 5x .
} 2>&1 | go run ./cmd/benchjson -label "$LABEL" -out "$OUT"
