#!/bin/sh
# chaos.sh — deterministic crash-point sweep against a real tesimd process.
#
# For every crashpoint the binary registers (tesimd -list-crashpoints),
# arm it via TESIM_CRASHPOINT, drive the daemon to that exact write
# boundary, let it SIGKILL itself, restart, and assert the durability
# contract:
#
#   - every acknowledged result survives restart byte-identical, with
#     zero re-executions;
#   - an unacknowledged result re-executes (or was already durable);
#   - replay never quarantines a correctly written record; seeded
#     wreckage (torn tail, corrupt line) is contained to exactly one.
#
# Append-path points run with TESIM_CRASHPOINT_HITS=2 so request A is
# acked on hit 1 before request B's append crashes on hit 2. Seal and
# quarantine points fire during startup recovery, so those stores are
# pre-seeded with wreckage and the armed daemon dies before ever serving.
#
# Usage: scripts/chaos.sh [port]
set -eu
cd "$(dirname "$0")/.."

PORT="${1:-8846}"
ADDR="127.0.0.1:$PORT"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
PID=""

cleanup() {
	[ -n "$PID" ] && kill -KILL "$PID" 2>/dev/null || true
	rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

go build -o "$WORK/tesimd" ./cmd/tesimd

SPEC_A='{"configs":["TB-DOR"],"benchmarks":["MUM"],"scale":0.05,"wait":true}'
SPEC_B='{"configs":["CP-CR"],"benchmarks":["MUM"],"scale":0.05,"wait":true}'

start_daemon() { # $1 = crashpoint ("" = unarmed), $2 = hit budget
	TESIM_CRASHPOINT="${1:-}" TESIM_CRASHPOINT_HITS="${2:-1}" \
		"$WORK/tesimd" -addr "$ADDR" -store "$STORE" >"$WORK/tesimd.log" 2>&1 &
	PID=$!
}

wait_ready() {
	i=0
	until curl -fsS "$BASE/readyz" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "daemon never became ready" >&2
			cat "$WORK/tesimd.log" >&2
			exit 1
		fi
		sleep 0.1
	done
}

wait_killed() {
	RC=0
	wait "$PID" || RC=$?
	PID=""
	[ "$RC" = 137 ] || {
		echo "daemon exited $RC, want 137 (SIGKILL at crashpoint)" >&2
		cat "$WORK/tesimd.log" >&2
		exit 1
	}
}

submit_a() { # $1 = output json
	CODE=$(curl -sS -o "$1" -w '%{http_code}' -X POST "$BASE/v1/runs" -d "$SPEC_A")
	[ "$CODE" = 200 ] || { echo "submit A: HTTP $CODE" >&2; cat "$1" >&2; exit 1; }
	[ "$(jq -r .status "$1")" = done ] || { echo "job A not done" >&2; cat "$1" >&2; exit 1; }
	jq -r .id "$1"
}

for CP in $("$WORK/tesimd" -list-crashpoints); do
	echo "== crashpoint $CP"
	STORE="$WORK/$CP.jsonl"

	case "$CP" in
	journal.seal.* | journal.quarantine.*)
		# Startup-recovery points: build a store with one acked record,
		# seed wreckage behind it, and crash the daemon mid-recovery.
		start_daemon "" 1
		wait_ready
		ID_A=$(submit_a "$WORK/job_a.json")
		curl -fsS "$BASE/v1/runs/$ID_A/result" >"$WORK/res_a.json"
		kill -KILL "$PID" 2>/dev/null
		wait "$PID" 2>/dev/null || true
		PID=""
		case "$CP" in
		journal.quarantine.*) printf '*00000000 9 {"bad":1}\n' >>"$STORE" ;;
		*) printf '*deadbeef 48 {"half-written' >>"$STORE" ;;
		esac
		WANT_WRECK=1
		start_daemon "$CP" 1
		wait_killed
		;;
	*)
		# Append-path points: A acks on hit 1, B's append crashes on hit 2.
		start_daemon "$CP" 2
		wait_ready
		ID_A=$(submit_a "$WORK/job_a.json")
		curl -fsS "$BASE/v1/runs/$ID_A/result" >"$WORK/res_a.json"
		curl -sS -X POST "$BASE/v1/runs" -d "$SPEC_B" >/dev/null 2>&1 || true
		WANT_WRECK=0
		wait_killed
		;;
	esac

	# Restart unarmed: the acked run must be served from the store —
	# byte-identical, never re-executed — and recovery must not flag
	# anything beyond the wreckage we seeded ourselves.
	start_daemon "" 1
	wait_ready
	ID_A2=$(submit_a "$WORK/job_a2.json")
	[ "$ID_A2" = "$ID_A" ] || { echo "content address drifted: $ID_A2 vs $ID_A" >&2; exit 1; }
	curl -fsS "$BASE/v1/runs/$ID_A/result" >"$WORK/res_a2.json"
	cmp "$WORK/res_a.json" "$WORK/res_a2.json" || {
		echo "acked result changed across crash at $CP" >&2
		exit 1
	}
	curl -fsS "$BASE/statusz" >"$WORK/statusz.json"
	EXECUTED=$(jq .pool_executed "$WORK/statusz.json")
	[ "$EXECUTED" = 0 ] || { echo "acked run re-executed $EXECUTED time(s) after $CP" >&2; exit 1; }
	WRECK=$(jq '.store.skipped + .store.quarantined' "$WORK/statusz.json")
	[ "$WRECK" = "$WANT_WRECK" ] || {
		echo "replay flagged $WRECK record(s) after $CP, want $WANT_WRECK" >&2
		cat "$WORK/tesimd.log" >&2
		exit 1
	}
	case "$CP" in
	journal.seal.* | journal.quarantine.*) ;;
	*)
		# The unacked run must complete correctly on re-submission.
		CODE=$(curl -sS -o "$WORK/job_b.json" -w '%{http_code}' -X POST "$BASE/v1/runs" -d "$SPEC_B")
		[ "$CODE" = 200 ] || { echo "re-submit B: HTTP $CODE" >&2; exit 1; }
		[ "$(jq -r .status "$WORK/job_b.json")" = done ] || { echo "job B not done after restart" >&2; exit 1; }
		;;
	esac
	kill -TERM "$PID"
	wait "$PID" || { echo "post-crash drain failed" >&2; exit 1; }
	PID=""
done

echo "chaos sweep OK"
