#!/bin/sh
# daemon_smoke.sh — end-to-end smoke test for the tesimd daemon.
#
# Exercises the service contract the unit tests can't: a real process with
# real signals. Flow:
#
#   1. build and start tesimd on a loopback port with a temp store
#   2. submit a small synchronous sweep; expect 200 and a result document
#   3. fetch the result twice; the bytes must be identical (digest-stable)
#   4. submit a larger sweep asynchronously, SIGTERM the daemon mid-run;
#      it must drain and exit 0 within the drain budget
#   5. restart on the same store, re-submit the first sweep; it must be
#      served from the content-addressed store with zero executions and
#      byte-identical result bytes
#
# Usage: scripts/daemon_smoke.sh [port]
set -eu
cd "$(dirname "$0")/.."

PORT="${1:-8845}"
ADDR="127.0.0.1:$PORT"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
STORE="$WORK/store.jsonl"
PID=""

cleanup() {
	[ -n "$PID" ] && kill "$PID" 2>/dev/null || true
	rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

go build -o "$WORK/tesimd" ./cmd/tesimd

start_daemon() {
	"$WORK/tesimd" -addr "$ADDR" -store "$STORE" -drain-timeout 60s >"$WORK/tesimd.log" 2>&1 &
	PID=$!
	i=0
	until curl -fsS "$BASE/readyz" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "daemon never became ready" >&2
			cat "$WORK/tesimd.log" >&2
			exit 1
		fi
		sleep 0.1
	done
}

echo "== start"
start_daemon

echo "== submit small sweep (wait=true)"
REQ='{"configs":["TB-DOR","Thr.Eff."],"benchmarks":["BIN","MUM"],"scale":0.05,"wait":true}'
CODE=$(curl -sS -o "$WORK/job1.json" -w '%{http_code}' -X POST "$BASE/v1/runs" -d "$REQ")
[ "$CODE" = 200 ] || { echo "submit: HTTP $CODE" >&2; cat "$WORK/job1.json" >&2; exit 1; }
ID=$(jq -r .id "$WORK/job1.json")
STATUS=$(jq -r .status "$WORK/job1.json")
[ "$STATUS" = done ] || { echo "job $ID status $STATUS, want done" >&2; exit 1; }

echo "== result digest-stable across repeat queries"
curl -fsS "$BASE/v1/runs/$ID/result" >"$WORK/res1.json"
curl -fsS "$BASE/v1/runs/$ID/result" >"$WORK/res1b.json"
cmp "$WORK/res1.json" "$WORK/res1b.json" || { echo "repeat result queries differ" >&2; exit 1; }
jq -e '.runs | length == 4' "$WORK/res1.json" >/dev/null || { echo "result missing runs" >&2; exit 1; }

echo "== SIGTERM mid-run drains cleanly"
# A bigger async sweep so the daemon has work in flight when the signal
# lands; the drain must still finish it (or checkpoint) and exit 0.
curl -fsS -X POST "$BASE/v1/runs" \
	-d '{"configs":["TB-DOR","CP-CR","Thr.Eff."],"benchmarks":["BIN","MUM","WP"],"scale":0.2}' >/dev/null
sleep 0.3
kill -TERM "$PID"
RC=0
wait "$PID" || RC=$?
PID=""
[ "$RC" = 0 ] || { echo "drain exit code $RC, want 0" >&2; cat "$WORK/tesimd.log" >&2; exit 1; }
grep -q "drained" "$WORK/tesimd.log" || { echo "no drain log line" >&2; cat "$WORK/tesimd.log" >&2; exit 1; }

echo "== restart serves from store without re-execution"
start_daemon
CODE=$(curl -sS -o "$WORK/job2.json" -w '%{http_code}' -X POST "$BASE/v1/runs" -d "$REQ")
[ "$CODE" = 200 ] || { echo "re-submit: HTTP $CODE" >&2; exit 1; }
ID2=$(jq -r .id "$WORK/job2.json")
[ "$ID2" = "$ID" ] || { echo "content address changed across restart: $ID2 vs $ID" >&2; exit 1; }
curl -fsS "$BASE/v1/runs/$ID/result" >"$WORK/res2.json"
cmp "$WORK/res1.json" "$WORK/res2.json" || { echo "result bytes differ across restart" >&2; exit 1; }
EXECUTED=$(curl -fsS "$BASE/statusz" | jq .pool_executed)
[ "$EXECUTED" = 0 ] || { echo "restarted daemon re-executed $EXECUTED runs, want 0" >&2; exit 1; }

echo "== clean shutdown"
kill -TERM "$PID"
wait "$PID" || { echo "final drain failed" >&2; exit 1; }
PID=""

echo "daemon smoke OK"
